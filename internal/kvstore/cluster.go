package kvstore

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// shardClient is the per-shard surface Cluster runs on; both the v1
// Client and the pipelined ClientV2 implement it.
type shardClient interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, val []byte) error
	Delete(key string) error
	Stats() (Stats, error)
	MultiGet(keys []string) ([][]byte, error)
	MultiPut(keys []string, vals [][]byte) error
	Close()
}

// Cluster shards keys across several servers by FNV-1a hash — the
// KV-store alternative to the node-to-node distribution manager. Batch
// ops group keys by shard and fan the per-shard batches out
// concurrently, one round trip per shard.
type Cluster struct {
	clients []shardClient

	// repl is the read-replica count: each key's value is written
	// through to the repl shards after its primary in ring order, and
	// reads may hedge to the first replica (hedge.go). 0 = no
	// replication.
	repl  int
	hedge *hedgeTracker

	// hedgeFired counts hedge requests actually sent; hedgeWon counts
	// races the hedge arm won. fired >> won means the delay is too
	// aggressive; won ≈ fired means the primary is genuinely slow.
	hedgeFired atomic.Uint64
	hedgeWon   atomic.Uint64

	// scratch pools the per-shard grouping state MultiGet/MultiPut
	// rebuild on every call, so the prefetch hot path stops allocating.
	scratch sync.Pool
}

// HedgeCounters snapshots the cluster's hedged-read counters.
func (c *Cluster) HedgeCounters() (fired, won uint64) {
	return c.hedgeFired.Load(), c.hedgeWon.Load()
}

// clusterScratch is one batch op's reusable grouping state.
type clusterScratch struct {
	keys [][]string // per shard: keys routed there
	vals [][][]byte // per shard: values routed there (MultiPut)
	idx  [][]int    // per shard: original positions
}

// NewCluster connects to every shard address with the pipelined v2
// protocol (conns multiplexed connections per shard). Use NewClusterV1
// for v1-only peers.
func NewCluster(addrs []string, conns int) (*Cluster, error) {
	return NewClusterConfig(addrs, ClusterConfig{Conns: conns})
}

// ClusterConfig configures a v2 cluster beyond its shard addresses.
type ClusterConfig struct {
	// Conns is the number of multiplexed connections per shard (min 1).
	Conns int
	// Window is the per-connection in-flight cap (see ClientV2Options).
	Window int
	// Replicas is the read-replica count per key: writes go through to
	// this many extra shards (ring order after the primary) and reads
	// may hedge to the first replica. Clamped to Shards-1; 0 disables
	// replication and hedging.
	Replicas int
	// HedgeDelay, when > 0, fixes the hedge delay. 0 selects the
	// adaptive policy: a tracked quantile of recent primary-read
	// latencies, clamped to [HedgeMin, HedgeMax].
	HedgeDelay time.Duration
	// HedgeQuantile is the tracked latency quantile the adaptive delay
	// follows (default 0.95).
	HedgeQuantile float64
	// HedgeMin and HedgeMax clamp the adaptive delay (defaults 200µs
	// and 5ms).
	HedgeMin, HedgeMax time.Duration
}

// NewClusterConfig connects a v2 cluster with explicit options,
// including read replication and hedged reads (hedge.go).
func NewClusterConfig(addrs []string, cfg ClusterConfig) (*Cluster, error) {
	c, err := newCluster(addrs, func(addr string) (shardClient, error) {
		return NewClientV2Options(addr, ClientV2Options{Conns: cfg.Conns, Window: cfg.Window})
	})
	if err != nil {
		return nil, err
	}
	if cfg.Replicas >= len(addrs) {
		cfg.Replicas = len(addrs) - 1
	}
	if cfg.Replicas > 0 {
		c.repl = cfg.Replicas
		c.hedge = newHedgeTracker(cfg.HedgeDelay, cfg.HedgeQuantile, cfg.HedgeMin, cfg.HedgeMax)
	}
	return c, nil
}

// NewClusterV1 connects with the legacy one-op-per-round-trip protocol
// (poolSize pooled connections per shard). Batch ops degrade to key-
// at-a-time loops; kept for compatibility and as the benchmark
// baseline.
func NewClusterV1(addrs []string, poolSize int) (*Cluster, error) {
	return newCluster(addrs, func(addr string) (shardClient, error) {
		return NewClient(addr, poolSize)
	})
}

func newCluster(addrs []string, dial func(string) (shardClient, error)) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("kvstore: no shard addresses")
	}
	c := &Cluster{}
	shards := len(addrs)
	c.scratch.New = func() any {
		return &clusterScratch{
			keys: make([][]string, shards),
			vals: make([][][]byte, shards),
			idx:  make([][]int, shards),
		}
	}
	for _, addr := range addrs {
		cl, err := dial(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// shardIndex picks the shard for a key.
func (c *Cluster) shardIndex(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // hash.Hash.Write never returns an error
	return int(h.Sum32()) % len(c.clients)
}

// shard picks the client for a key.
func (c *Cluster) shard(key string) shardClient {
	return c.clients[c.shardIndex(key)]
}

// Get fetches a key from its shard, hedging to the first replica when
// replication is configured.
func (c *Cluster) Get(key string) ([]byte, bool, error) {
	s := c.shardIndex(key)
	if pc, rc := c.hedgePair(s); rc != nil {
		return c.hedgedGet(pc, rc, key)
	}
	return c.clients[s].Get(key)
}

// Put stores a key on its shard and writes through to its replicas.
// Replica writes are best-effort: a failed replica degrades a future
// hedge to a cache miss, it does not fail the write.
func (c *Cluster) Put(key string, val []byte) error {
	s := c.shardIndex(key)
	err := c.clients[s].Put(key, val)
	for r := 1; r <= c.repl; r++ {
		_ = c.clients[(s+r)%len(c.clients)].Put(key, val)
	}
	return err
}

// Delete removes a key from its shard and its replicas.
func (c *Cluster) Delete(key string) error {
	s := c.shardIndex(key)
	err := c.clients[s].Delete(key)
	for r := 1; r <= c.repl; r++ {
		_ = c.clients[(s+r)%len(c.clients)].Delete(key)
	}
	return err
}

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.clients) }

// shardMultiGet runs one shard's batch, hedged to the first replica
// when replication is configured.
func (c *Cluster) shardMultiGet(s int, keys []string) ([][]byte, error) {
	if pc, rc := c.hedgePair(s); rc != nil {
		return c.hedgedMultiGet(pc, rc, keys)
	}
	return c.clients[s].MultiGet(keys)
}

// MultiGet fetches a batch of keys: grouped by shard, fanned out
// concurrently (one round trip per shard on v2 clients), reassembled in
// request order. vals[i] is nil when keys[i] is absent and non-nil
// (possibly empty) when present. When some — but not all — shard
// batches fail, the healthy shards' values are returned alongside a
// *PartialError, so tolerant callers keep what arrived.
func (c *Cluster) MultiGet(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(c.clients) == 1 {
		return c.clients[0].MultiGet(keys)
	}
	sc := c.scratch.Get().(*clusterScratch)
	defer c.putScratch(sc)
	for i, key := range keys {
		s := c.shardIndex(key)
		sc.keys[s] = append(sc.keys[s], key)
		sc.idx[s] = append(sc.idx[s], i)
	}
	out := make([][]byte, len(keys))
	var wg sync.WaitGroup
	errs := make([]error, len(c.clients))
	for s := range c.clients {
		if len(sc.keys[s]) == 0 {
			continue
		}
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals, err := c.shardMultiGet(s, sc.keys[s])
			if err != nil {
				errs[s] = err
				return
			}
			for j, v := range vals {
				out[sc.idx[s][j]] = v
			}
		}()
	}
	wg.Wait()
	var firstErr error
	attempted, failed := 0, 0
	for s := range c.clients {
		if len(sc.keys[s]) == 0 {
			continue
		}
		attempted++
		if errs[s] != nil {
			failed++
			if firstErr == nil {
				firstErr = errs[s]
			}
		}
	}
	switch {
	case failed == 0:
		return out, nil
	case failed == attempted:
		return nil, firstErr
	default:
		return out, &PartialError{Failed: failed, Attempted: attempted, Err: firstErr}
	}
}

// MultiPut stores a batch of key/value pairs, grouped by shard and
// fanned out concurrently; with replication each pair is written
// through to its replicas' batches too. Storage is best-effort per key;
// the first error is returned after every shard's batch completes.
func (c *Cluster) MultiPut(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: MultiPut got %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	if len(c.clients) == 1 {
		return c.clients[0].MultiPut(keys, vals)
	}
	sc := c.scratch.Get().(*clusterScratch)
	defer c.putScratch(sc)
	for i, key := range keys {
		s := c.shardIndex(key)
		for r := 0; r <= c.repl; r++ {
			t := (s + r) % len(c.clients)
			sc.keys[t] = append(sc.keys[t], key)
			sc.vals[t] = append(sc.vals[t], vals[i])
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.clients))
	for s, cl := range c.clients {
		if len(sc.keys[s]) == 0 {
			continue
		}
		s, cl := s, cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[s] = cl.MultiPut(sc.keys[s], sc.vals[s])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// putScratch clears and recycles a grouping scratch. Value references
// are nilled so the pool never pins payload bytes across calls.
func (c *Cluster) putScratch(sc *clusterScratch) {
	for s := range sc.keys {
		for j := range sc.vals[s] {
			sc.vals[s][j] = nil
		}
		sc.keys[s] = sc.keys[s][:0]
		sc.vals[s] = sc.vals[s][:0]
		sc.idx[s] = sc.idx[s][:0]
	}
	c.scratch.Put(sc)
}

// Stats aggregates all shards' counters.
func (c *Cluster) Stats() (Stats, error) {
	var total Stats
	for _, cl := range c.clients {
		st, err := cl.Stats()
		if err != nil {
			return Stats{}, err
		}
		total.Items += st.Items
		total.UsedBytes += st.UsedBytes
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		total.TooLarge += st.TooLarge
		total.ShedDeadline += st.ShedDeadline
		total.ShedQuota += st.ShedQuota
		total.ShedQueue += st.ShedQueue
	}
	return total, nil
}

// Close closes every shard client.
func (c *Cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
}
