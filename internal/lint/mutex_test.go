package lint

import "testing"

func TestMutexPairing(t *testing.T) {
	runFixtures(t, Mutex, []fixtureTest{
		{
			name: "missing unlock flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu sync.Mutex
	n  int
}
func (b *box) bump() {
	b.mu.Lock()
	b.n++
}
`,
			want: 1,
			grep: "no matching Unlock",
		},
		{
			name: "early return under lock flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu sync.Mutex
	n  int
}
func (b *box) bump() int {
	b.mu.Lock()
	b.n++
	return b.n
}
`,
			want: 1,
			grep: "return while b.mu is held",
		},
		{
			name: "defer unlock passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu sync.Mutex
	n  int
}
func (b *box) bump() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
	return b.n
}
`,
			want: 0,
		},
		{
			name: "manual unlock in same block passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu sync.Mutex
	n  int
}
func (b *box) bump() int {
	b.mu.Lock()
	b.n++
	v := b.n
	b.mu.Unlock()
	return v
}
`,
			want: 0,
		},
		{
			name: "nested unlock-then-return passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu     sync.Mutex
	closed bool
}
func (b *box) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
}
`,
			want: 0,
		},
		{
			name: "rwmutex rlock needs runlock",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu sync.RWMutex
	n  int
}
func (b *box) read() int {
	b.mu.RLock()
	return b.n
}
`,
			want: 1,
			grep: "return while b.mu is held",
		},
	})
}

func TestMutexChannelOps(t *testing.T) {
	runFixtures(t, Mutex, []fixtureTest{
		{
			name: "send under lock flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type q struct {
	mu    sync.Mutex
	stops chan struct{}
}
func (q *q) shrink() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.stops <- struct{}{}
}
`,
			want: 1,
			grep: "channel send while q.mu is held",
		},
		{
			name: "receive under lock flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type q struct {
	mu   sync.Mutex
	jobs chan int
}
func (q *q) take() int {
	q.mu.Lock()
	v := <-q.jobs
	q.mu.Unlock()
	return v
}
`,
			want: 1,
			grep: "channel receive while q.mu is held",
		},
		{
			name: "blocking select under lock flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type q struct {
	mu   sync.Mutex
	a, b chan int
}
func (q *q) wait() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case <-q.a:
	case <-q.b:
	}
}
`,
			want: 1,
			grep: "blocking select",
		},
		{
			name: "non-blocking select under lock passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type q struct {
	mu   sync.Mutex
	tick chan struct{}
}
func (q *q) poke() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.tick <- struct{}{}:
	default:
	}
}
`,
			want: 0,
		},
		{
			name: "send after unlock passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type q struct {
	mu    sync.Mutex
	stops chan struct{}
}
func (q *q) shrink() {
	q.mu.Lock()
	n := 1
	q.mu.Unlock()
	for ; n > 0; n-- {
		q.stops <- struct{}{}
	}
}
`,
			want: 0,
		},
	})
}

func TestMutexCopies(t *testing.T) {
	runFixtures(t, Mutex, []fixtureTest{
		{
			name: "mutex-bearing parameter by value flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu sync.Mutex
	n  int
}
func read(b box) int { return b.n }
`,
			want: 1,
			grep: "passes sync.Mutex by value",
		},
		{
			name: "value receiver with waitgroup flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type pool struct {
	wg sync.WaitGroup
}
func (p pool) size() int { return 0 }
`,
			want: 1,
			grep: "passes sync.WaitGroup by value",
		},
		{
			name: "pointer parameter passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu sync.Mutex
	n  int
}
func read(b *box) int { return b.n }
`,
			want: 0,
		},
		{
			name: "allow directive suppresses",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "sync"
type box struct {
	mu sync.Mutex
	n  int
}
//lint:allow mutex snapshot copy of a quiesced value, lock is never reused
func read(b box) int { return b.n }
`,
			want: 0,
		},
	})
}
