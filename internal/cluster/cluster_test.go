package cluster

import "testing"

func TestTopologyValidate(t *testing.T) {
	good := ThetaGPULike(8, 40<<30)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.WorldSize() != 64 {
		t.Fatalf("WorldSize = %d, want 64", good.WorldSize())
	}
	bad := []Topology{
		{Nodes: 0, GPUsPerNode: 1, CPUThreads: 4, CacheBytes: 1},
		{Nodes: 1, GPUsPerNode: 0, CPUThreads: 4, CacheBytes: 1},
		{Nodes: 1, GPUsPerNode: 1, CPUThreads: 1, CacheBytes: 1},
		{Nodes: 1, GPUsPerNode: 1, CPUThreads: 4, CacheBytes: 0},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("topology %+v accepted", b)
		}
	}
	// Hierarchy validation must propagate.
	h := ThetaGPULike(1, 1<<30)
	h.Hierarchy.PFSGlobalMBps = 0
	if err := h.Validate(); err == nil {
		t.Error("invalid hierarchy accepted")
	}
}

func TestModelsCatalog(t *testing.T) {
	models := Models()
	if len(models) != 6 {
		t.Fatalf("models = %d, want 6 (Section 5.1)", len(models))
	}
	names := map[string]bool{}
	for _, m := range models {
		if m.IterTime <= 0 || m.BatchSize <= 0 || m.TargetAccuracy <= 0 || m.ConvergeEpochs <= 0 {
			t.Errorf("model %q has non-positive fields: %+v", m.Name, m)
		}
		if names[m.Name] {
			t.Errorf("duplicate model %q", m.Name)
		}
		names[m.Name] = true
	}
	// VGG11 and ResNet50 must be the slow (large) models; the paper's
	// ablation depends on small models training faster.
	r50, _ := ModelByName("resnet50")
	shuffle, _ := ModelByName("shufflenet")
	if r50.IterTime <= shuffle.IterTime {
		t.Error("resnet50 must be slower per iteration than shufflenet")
	}
}

func TestModelByNameUnknown(t *testing.T) {
	if _, err := ModelByName("transformer"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestAllreduceTime(t *testing.T) {
	if AllreduceTime(1) != 0 {
		t.Fatal("single GPU should have zero allreduce")
	}
	t8 := AllreduceTime(8)
	t64 := AllreduceTime(64)
	if t8 <= 0 || t64 <= t8 {
		t.Fatalf("allreduce not growing: t8=%g t64=%g", t8, t64)
	}
	// Must remain small relative to any model's iteration time.
	r50, _ := ModelByName("resnet50")
	if t64 > r50.IterTime/4 {
		t.Fatalf("allreduce %g too large vs iter time %g", t64, r50.IterTime)
	}
}
