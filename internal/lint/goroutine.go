package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goroutine flags `go func() {...}()` launches with no visible
// termination path — the classic leak shape in loading/preprocessing
// pipelines, where worker goroutines outlive the training run and pin
// buffers. A literal passes if its body (a) accounts itself on a
// sync.WaitGroup via Done, (b) consults a context.Context, (c) receives
// from a struct{} signal channel, or (d) ranges over a channel (it
// terminates when the producer closes it). Named-function launches
// (`go p.worker()`) are not flagged: the shutdown contract lives at the
// declaration, which reviews better than a call site heuristic.
var Goroutine = &Analyzer{
	ID: idGoroutine,
	Doc: "goroutine literals must carry a termination signal: WaitGroup.Done, " +
		"a context, a struct{} done channel, or a range over a closable channel",
	Run:   runGoroutine,
	Tests: true,
}

func runGoroutine(p *Package) []Finding {
	var out []Finding
	// Test files included (the second view): a race test that leaks its
	// workers keeps polluting the race detector's view of every later
	// test in the binary.
	for _, v := range p.views() {
		for _, file := range v.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true
				}
				if !hasTerminationSignal(v.Info, lit) {
					out = append(out, v.finding(idGoroutine, gs,
						"goroutine literal has no termination signal; add sync.WaitGroup accounting, a context, or a done channel"))
				}
				return true
			})
		}
	}
	return out
}

func hasTerminationSignal(info *types.Info, lit *ast.FuncLit) bool {
	// A context.Context parameter counts even if the body is still a stub.
	for _, field := range lit.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// wg.Done() (usually deferred) on a sync.WaitGroup.
			if fn := calleeFunc(info, n); isStdFunc(fn, "sync", "Done") {
				found = true
			}
		case *ast.Ident:
			// Any use of a context value: ctx.Done(), ctx.Err(), passing
			// it on — all give the goroutine a cancellation path.
			if obj := info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.UnaryExpr:
			// <-done on a struct{} signal channel.
			if n.Op == token.ARROW {
				if t := info.TypeOf(n.X); t != nil && isSignalChanType(t) {
					found = true
				}
			}
		case *ast.RangeStmt:
			// for v := range ch — ends when the channel closes.
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
