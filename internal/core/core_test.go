package core

import (
	"testing"
)

func TestStrategyByName(t *testing.T) {
	for _, name := range Strategies() {
		spec, err := StrategyByName(name, 8, 24)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if spec.Name != name {
			t.Fatalf("spec name %q for %q", spec.Name, name)
		}
		if err := spec.Validate(8, 24); err != nil {
			t.Fatalf("%s: invalid spec: %v", name, err)
		}
	}
	if _, err := StrategyByName("magic", 8, 24); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestNewConfigDefaults(t *testing.T) {
	cfg, err := NewConfig(Workload{Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pipeline.Dataset == nil || cfg.Pipeline.Epochs != 10 ||
		cfg.Pipeline.Topology.Nodes != 1 || cfg.Pipeline.Strategy.Name != "lobster" {
		t.Fatalf("defaults wrong: %+v", cfg.Pipeline.Strategy)
	}
	if cfg.Pipeline.Model.Name != "resnet50" {
		t.Fatalf("default model %q", cfg.Pipeline.Model.Name)
	}
}

func TestNewConfigErrors(t *testing.T) {
	bad := []Workload{
		{Scale: "galactic"},
		{Scale: "tiny", Dataset: "cifar"},
		{Scale: "tiny", Model: "transformer"},
		{Scale: "tiny", Strategy: "magic"},
	}
	for _, w := range bad {
		if _, err := NewConfig(w); err == nil {
			t.Errorf("workload %+v accepted", w)
		}
	}
}

func TestSimulateSmoke(t *testing.T) {
	cfg, err := NewConfig(Workload{Scale: "tiny", Epochs: 2, Strategy: "lobster"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalTime <= 0 || res.Metrics.Iterations == 0 {
		t.Fatalf("degenerate simulation: %+v", res.Metrics)
	}
}

func TestTrainAttachesAccuracy(t *testing.T) {
	cfg, err := NewConfig(Workload{Scale: "tiny", Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Curve) != 3 || c.FinalAccuracy() <= 0 {
		t.Fatalf("bad campaign: %d points", len(c.Curve))
	}
}

func TestBuildPlan(t *testing.T) {
	cfg, err := NewConfig(Workload{Scale: "tiny", Epochs: 2, Strategy: "lobster"})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PerIteration) != 5 {
		t.Fatalf("plan has %d iterations, want 5", len(plan.PerIteration))
	}
	for _, rec := range plan.PerIteration {
		if len(rec.Threads) != 1 {
			t.Fatalf("plan lacks thread decisions: %+v", rec.Threads)
		}
		th := rec.Threads[0]
		if th.Preproc < 1 || len(th.Loading) != 8 {
			t.Fatalf("bad thread record: %+v", th)
		}
		total := th.Preproc
		for _, l := range th.Loading {
			total += l
		}
		if total > cfg.Pipeline.Topology.CPUThreads {
			t.Fatalf("plan exceeds thread budget: %d > %d", total, cfg.Pipeline.Topology.CPUThreads)
		}
	}
}

func TestRunOnlineSmoke(t *testing.T) {
	cfg, err := NewConfig(Workload{Scale: "tiny", Epochs: 1, Strategy: "nopfs"})
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the run: online time is real. One epoch at tiny scale with a
	// fast time scale.
	cfg.Pipeline.Epochs = 1
	stats, err := RunOnline(cfg, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SamplesVerified == 0 || stats.SamplesVerified != stats.SamplesLoaded {
		t.Fatalf("verification incomplete: %d/%d", stats.SamplesVerified, stats.SamplesLoaded)
	}
}

func TestRunOnlineWithPlan(t *testing.T) {
	cfg, err := NewConfig(Workload{Scale: "tiny", Epochs: 1, Strategy: "lobster"})
	if err != nil {
		t.Fatal(err)
	}
	built, err := BuildPlan(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunOnlineWithPlan(cfg, built.File, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SamplesVerified == 0 || stats.SamplesVerified != stats.SamplesLoaded {
		t.Fatalf("plan-following run incomplete: %d/%d", stats.SamplesVerified, stats.SamplesLoaded)
	}
	// The final threads must come from the plan's wrap window, not the
	// live controller: check they match some planned assignment.
	last := built.File.ThreadsAt(stats.Iterations - 1)
	if stats.FinalPreprocThreads[0] != last[0].Preproc {
		t.Fatalf("final preproc %d, plan says %d", stats.FinalPreprocThreads[0], last[0].Preproc)
	}
}

func TestNewConfigImageNet22K(t *testing.T) {
	cfg, err := NewConfig(Workload{Scale: "tiny", Dataset: "imagenet-22k", Epochs: 1, CacheRatio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pipeline.Dataset.Name() != "imagenet-22k" {
		t.Fatalf("dataset %q", cfg.Pipeline.Dataset.Name())
	}
	wantCache := int64(float64(cfg.Pipeline.Dataset.TotalBytes()) * 0.1)
	if diff := cfg.Pipeline.Topology.CacheBytes - wantCache; diff < -1 || diff > 1 {
		t.Fatalf("cache override not applied: %d vs %d", cfg.Pipeline.Topology.CacheBytes, wantCache)
	}
}
