package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (following method selections), or nil for builtins, conversions, and
// calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isStdFunc reports whether fn is the standard-library function or
// method pkgPath.name (receiver package, for methods).
func isStdFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isBuiltin reports whether the call invokes the named builtin
// (append, close, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isPkgLevel reports whether fn is a package-level function (no
// receiver).
func isPkgLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isSyncLockType reports whether t is exactly sync.Mutex or
// sync.RWMutex, returning its display name.
func isSyncLockType(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
		return "sync." + obj.Name(), true
	}
	return "", false
}

// containsLock reports whether a value of type t embeds a sync
// synchronization primitive (so copying it by value is a bug),
// returning the first such type found. Pointers are fine: only the
// pointee holds the state.
func containsLock(t types.Type) (string, bool) {
	return containsLockSeen(t, map[types.Type]bool{})
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if name, ok := isSyncLockType(t); ok {
		return name, true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := containsLockSeen(u.Field(i).Type(), seen); ok {
				return name, true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return "", false
}

// isSignalChanType reports whether t is a channel of struct{} — the
// conventional done/stop signal shape, exempt from the bounded-queue
// rule and accepted as a goroutine termination signal.
func isSignalChanType(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	s, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// funcBodies walks every function declaration and function literal in
// the file, invoking fn with each non-nil body.
func funcBodies(file *ast.File, fn func(body *ast.BlockStmt, decl *ast.FuncDecl)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body, d)
			}
		case *ast.FuncLit:
			fn(d.Body, nil)
		}
		return true
	})
}
