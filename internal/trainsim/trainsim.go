// Package trainsim runs end-to-end training campaigns on top of the
// pipeline simulator and models the statistical training dynamics the
// evaluation needs: the Fig. 9 accuracy curves.
//
// Section 5.4's point is that Lobster "does not change the randomness of
// data accessing during the distributed training", so accuracy as a
// function of *epochs* is loader-independent (modulo seed noise), while
// accuracy as a function of *wall time* improves exactly by the loader's
// speedup. The accuracy model here encodes that: a saturating convergence
// curve anchored at the model's published target accuracy and convergence
// epoch, with small seed-dependent noise — combined with the pipeline's
// per-epoch virtual times.
package trainsim

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// AccuracyPoint is one epoch of a training curve.
type AccuracyPoint struct {
	Epoch    int
	Time     float64 // virtual seconds since training start
	Accuracy float64 // top-1 validation accuracy in [0, 1]
}

// Campaign is the result of one end-to-end training run.
type Campaign struct {
	Result *pipeline.Result
	Curve  []AccuracyPoint
}

// AccuracyCurve returns the epoch-indexed accuracy trajectory of a model.
// It is a saturating exponential a(e) = target*(1-exp(-k*e)) with k chosen
// so the curve reaches 99% of the target at the model's published
// convergence epoch, plus seed-dependent noise that shrinks as training
// converges (mirroring the "slight variation due to different random
// seeds" of Fig. 9).
func AccuracyCurve(model cluster.DNNModel, epochs int, seed uint64) []float64 {
	if epochs <= 0 {
		return nil
	}
	k := -math.Log(0.01) / float64(model.ConvergeEpochs)
	rng := stats.NewRNG(stats.DeriveSeed(seed, 0xacc))
	curve := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		base := model.TargetAccuracy * (1 - math.Exp(-k*float64(e+1)))
		noise := rng.NormFloat64() * 0.01 * math.Exp(-float64(e)/float64(model.ConvergeEpochs))
		a := base + noise
		if a < 0 {
			a = 0
		}
		if a > 1 {
			a = 1
		}
		curve[e] = a
	}
	return curve
}

// EpochsToAccuracy returns the first epoch (1-based) at which the curve
// reaches the threshold, or -1 if it never does.
func EpochsToAccuracy(curve []float64, threshold float64) int {
	for e, a := range curve {
		if a >= threshold {
			return e + 1
		}
	}
	return -1
}

// Run executes the pipeline simulation and attaches the accuracy curve.
// The accuracy seed is derived from the schedule seed only — NOT from the
// loading strategy — so two strategies over the same schedule produce the
// same learning curve, which is precisely the Fig. 9 claim.
func Run(cfg pipeline.Config) (*Campaign, error) {
	res, err := pipeline.Run(cfg)
	if err != nil {
		return nil, err
	}
	acc := AccuracyCurve(cfg.Model, cfg.Epochs, cfg.Seed)
	if len(res.EpochEndTimes) != len(acc) {
		return nil, fmt.Errorf("trainsim: %d epoch times vs %d accuracy points",
			len(res.EpochEndTimes), len(acc))
	}
	curve := make([]AccuracyPoint, len(acc))
	for e := range acc {
		curve[e] = AccuracyPoint{Epoch: e + 1, Time: res.EpochEndTimes[e], Accuracy: acc[e]}
	}
	return &Campaign{Result: res, Curve: curve}, nil
}

// FinalAccuracy returns the last point's accuracy, or 0 for an empty curve.
func (c *Campaign) FinalAccuracy() float64 {
	if len(c.Curve) == 0 {
		return 0
	}
	return c.Curve[len(c.Curve)-1].Accuracy
}

// TimeToAccuracy returns the virtual time at which the campaign first
// reached the threshold accuracy, or -1 if it never did. This is the
// quantity that improves under a faster loader even though the per-epoch
// curve does not.
func (c *Campaign) TimeToAccuracy(threshold float64) float64 {
	for _, p := range c.Curve {
		if p.Accuracy >= threshold {
			return p.Time
		}
	}
	return -1
}
