package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/preproc"
	"repro/internal/tier"
)

func TestBatchPlacementAdd(t *testing.T) {
	a := BatchPlacement{LocalBytes: 10, RemoteBytes: 20, PFSBytes: 30, LocalOps: 1, RemoteOps: 2, PFSOps: 3}
	b := a
	a.Add(b)
	if a.TotalBytes() != 120 || a.TotalOps() != 12 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestSplitThreadsCoversAllTiers(t *testing.T) {
	h := tier.ThetaGPULike()
	pl := BatchPlacement{LocalBytes: 1e6, RemoteBytes: 1e6, PFSBytes: 1e6,
		LocalOps: 10, RemoteOps: 10, PFSOps: 10}
	for n := 3; n <= 16; n++ {
		a := SplitThreads(h, pl, n, 1)
		if a.Total() != n {
			t.Fatalf("n=%d: total alloc %d", n, a.Total())
		}
		if a.Local < 1 || a.Remote < 1 || a.PFS < 1 {
			t.Fatalf("n=%d: tier with work got zero threads: %+v", n, a)
		}
		// PFS is the slowest tier; it must get the most threads.
		if a.PFS < a.Local || a.PFS < a.Remote {
			t.Fatalf("n=%d: PFS not prioritized: %+v", n, a)
		}
	}
}

func TestSplitThreadsSkipsEmptyTiers(t *testing.T) {
	h := tier.ThetaGPULike()
	pl := BatchPlacement{LocalBytes: 1e6, LocalOps: 10}
	a := SplitThreads(h, pl, 4, 1)
	if a.Local != 4 || a.Remote != 0 || a.PFS != 0 {
		t.Fatalf("all threads should go local: %+v", a)
	}
	if got := SplitThreads(h, BatchPlacement{}, 4, 1); got.Local != 4 {
		t.Fatalf("empty placement should default to local: %+v", got)
	}
	if got := SplitThreads(h, pl, 0, 1); got.Total() != 0 {
		t.Fatalf("zero budget should allocate nothing: %+v", got)
	}
}

func TestSplitThreadsPropertyExact(t *testing.T) {
	h := tier.ThetaGPULike()
	f := func(lb, rb, pb uint32, lo, ro, po uint8, nRaw uint8) bool {
		pl := BatchPlacement{
			LocalBytes: int64(lb), RemoteBytes: int64(rb), PFSBytes: int64(pb),
			LocalOps: int(lo), RemoteOps: int(ro), PFSOps: int(po),
		}
		// Ops imply bytes: clear bytes where ops are zero for coherence.
		if pl.LocalOps == 0 {
			pl.LocalBytes = 0
		}
		if pl.RemoteOps == 0 {
			pl.RemoteBytes = 0
		}
		if pl.PFSOps == 0 {
			pl.PFSBytes = 0
		}
		tiersWithWork := 0
		for _, ops := range []int{pl.LocalOps, pl.RemoteOps, pl.PFSOps} {
			if ops > 0 {
				tiersWithWork++
			}
		}
		n := int(nRaw%16) + tiersWithWork + 1 // enough threads for every busy tier
		a := SplitThreads(h, pl, n, 2)
		if a.Total() != n {
			return false
		}
		if pl.LocalOps > 0 && a.Local == 0 {
			return false
		}
		if pl.RemoteOps > 0 && a.Remote == 0 {
			return false
		}
		if pl.PFSOps > 0 && a.PFS == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTimeEquation1(t *testing.T) {
	h := tier.ThetaGPULike()
	pl := BatchPlacement{LocalBytes: 2e6, RemoteBytes: 3e6, PFSBytes: 4e6,
		LocalOps: 20, RemoteOps: 30, PFSOps: 40}
	alloc := ThreadAlloc{Local: 2, Remote: 2, PFS: 4}
	got := LoadTime(h, pl, alloc, 1)
	want := h.ReadTime(tier.Local, 2e6, 20, 2, 1) +
		h.ReadTime(tier.Remote, 3e6, 30, 2, 1) +
		h.ReadTime(tier.PFS, 4e6, 40, 4, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LoadTime = %g, want %g", got, want)
	}
}

func TestLoadTimeInfiniteWithoutAnyThreads(t *testing.T) {
	h := tier.ThetaGPULike()
	pl := BatchPlacement{PFSBytes: 1e6, PFSOps: 10}
	if got := LoadTime(h, pl, ThreadAlloc{}, 1); !math.IsInf(got, 1) {
		t.Fatalf("work with zero threads gave %g, want +Inf", got)
	}
	if got := LoadTime(h, BatchPlacement{}, ThreadAlloc{}, 1); got != 0 {
		t.Fatalf("no work, no threads gave %g, want 0", got)
	}
}

func TestLoadTimeTimeSharedTier(t *testing.T) {
	// A busy tier with zero dedicated threads is serviced by the whole
	// allocation, so the result equals the sum of per-tier times with the
	// full allocation on the orphan tier.
	h := tier.ThetaGPULike()
	pl := BatchPlacement{LocalBytes: 1e6, LocalOps: 10, PFSBytes: 1e6, PFSOps: 10}
	got := LoadTime(h, pl, ThreadAlloc{Local: 1}, 1)
	want := h.ReadTime(tier.Local, 1e6, 10, 1, 1) + h.ReadTime(tier.PFS, 1e6, 10, 1, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("time-shared LoadTime = %g, want %g", got, want)
	}
}

func TestLoadTimeMoreThreadsFaster(t *testing.T) {
	h := tier.ThetaGPULike()
	pl := BatchPlacement{PFSBytes: 10e6, PFSOps: 100}
	t2 := LoadTime(h, pl, ThreadAlloc{PFS: 2}, 1)
	t8 := LoadTime(h, pl, ThreadAlloc{PFS: 8}, 1)
	if t8 >= t2 {
		t.Fatalf("8 PFS threads (%g) not faster than 2 (%g)", t8, t2)
	}
}

func TestTimeDifferenceSign(t *testing.T) {
	if TimeDifference(2, 1, 4) >= 0 {
		t.Fatal("pipeline faster than training must be negative")
	}
	if TimeDifference(3, 2, 4) <= 0 {
		t.Fatal("pipeline slower than training must be positive")
	}
}

// modelMeasure derives per-sample time from the Observation-3 roofline:
// the "measurement" used to fit the portfolio in tests.
func modelMeasure(size int64, threads int) float64 {
	return preproc.DefaultModel().Time(size, threads)
}

func TestFitPortfolioValidation(t *testing.T) {
	if _, err := FitPortfolio(nil, nil, 8, 3, modelMeasure); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := FitPortfolio(nil, []int64{100}, 1, 3, modelMeasure); err == nil {
		t.Error("maxThreads 1 accepted")
	}
	if _, err := FitPortfolio(nil, []int64{100, 100}, 8, 3, modelMeasure); err == nil {
		t.Error("non-ascending sizes accepted")
	}
}

func TestPortfolioPredictions(t *testing.T) {
	sizes := []int64{32 << 10, 105 << 10, 512 << 10}
	p, err := FitPortfolio(nil, sizes, 16, 6, modelMeasure)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions at fitted grid points should be close to truth.
	for _, size := range sizes {
		for _, n := range []int{1, 4, 6, 12} {
			got := p.SampleTime(size, n)
			want := modelMeasure(size, n)
			if math.Abs(got-want)/want > 0.15 {
				t.Errorf("SampleTime(%d, %d) = %g, want ~%g", size, n, got, want)
			}
		}
	}
	// Peak threads must match the model's (6, per Figure 6).
	if got := p.PeakThreads(105<<10, 16); got < 5 || got > 7 {
		t.Errorf("PeakThreads = %d, want ~6", got)
	}
}

func TestPortfolioClosestSizeSelection(t *testing.T) {
	sizes := []int64{10 << 10, 1 << 20}
	p, err := FitPortfolio(nil, sizes, 8, 4, modelMeasure)
	if err != nil {
		t.Fatal(err)
	}
	// A 12 KB sample must use the 10 KB model (scaled), not the 1 MB one.
	got := p.SampleTime(12<<10, 4)
	want := modelMeasure(12<<10, 4)
	if math.Abs(got-want)/want > 0.2 {
		t.Errorf("closest-size prediction %g, want ~%g", got, want)
	}
	if len(p.Sizes()) != 2 {
		t.Error("Sizes() wrong")
	}
}

func TestPortfolioBatchTime(t *testing.T) {
	p, err := FitPortfolio(nil, []int64{100 << 10}, 8, 4, modelMeasure)
	if err != nil {
		t.Fatal(err)
	}
	bytes := int64(32 * (100 << 10))
	got := p.BatchTime(bytes, 32, 6)
	want := modelMeasure(100<<10, 6) * 32
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("BatchTime = %g, want ~%g", got, want)
	}
	if p.BatchTime(0, 0, 4) != 0 {
		t.Error("empty batch should take zero time")
	}
}
