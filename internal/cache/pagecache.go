package cache

import (
	"container/list"

	"repro/internal/dataset"
)

// pageCache approximates the OS page cache the PyTorch DataLoader and DALI
// effectively rely on: a segmented LRU (Linux's active/inactive lists).
// New samples enter a probationary segment and are evicted from its LRU
// end; a hit promotes the sample to a protected segment that eviction only
// touches when probation is empty. Promotion demotes the protected LRU
// tail once the protected segment exceeds its share of entries.
//
// Under epoch-period reuse (every reuse distance ≈ one epoch, Fig. 4) a
// plain LRU almost never holds a sample long enough to hit (hit ratio
// ~c²/2 for cache fraction c), which contradicts the measured 24.5% of
// Section 5.5. Segmented LRU converges instead to a stable protected set
// of roughly the cache size that hits every epoch — reproducing the
// page-cache behaviour the paper's baselines actually enjoy.
type pageCache struct {
	probation *list.List // front = most recent
	protected *list.List
	entries   map[dataset.SampleID]*pcEntry
	// protectedShare is protected's maximum fraction of total entries,
	// in eighths (e.g. 6 => 6/8 = 75%).
	protectedShareEighths int
}

type pcEntry struct {
	elem      *list.Element
	protected bool
}

// NewPageCache returns the segmented-LRU page-cache model with the Linux
// default-ish 75% protected share.
func NewPageCache() Policy {
	return &pageCache{
		probation:             list.New(),
		protected:             list.New(),
		entries:               make(map[dataset.SampleID]*pcEntry),
		protectedShareEighths: 6,
	}
}

func (p *pageCache) Name() string { return "page-cache" }

func (p *pageCache) OnPut(id dataset.SampleID, _ Iter) {
	if e, ok := p.entries[id]; ok {
		p.touch(id, e)
		return
	}
	p.entries[id] = &pcEntry{elem: p.probation.PushFront(id)}
}

func (p *pageCache) OnGet(id dataset.SampleID, _ Iter) {
	if e, ok := p.entries[id]; ok {
		p.touch(id, e)
	}
}

// touch promotes on re-reference, keeping the protected share bounded.
func (p *pageCache) touch(id dataset.SampleID, e *pcEntry) {
	if e.protected {
		p.protected.MoveToFront(e.elem)
		return
	}
	p.probation.Remove(e.elem)
	e.elem = p.protected.PushFront(id)
	e.protected = true
	// Re-balance: protected must not exceed its share of all entries.
	total := len(p.entries)
	for p.protected.Len()*8 > total*p.protectedShareEighths {
		tail := p.protected.Back()
		if tail == nil {
			break
		}
		tid := tail.Value.(dataset.SampleID)
		te := p.entries[tid]
		p.protected.Remove(tail)
		te.elem = p.probation.PushFront(tid)
		te.protected = false
	}
}

func (p *pageCache) OnRemove(id dataset.SampleID) {
	e, ok := p.entries[id]
	if !ok {
		return
	}
	if e.protected {
		p.protected.Remove(e.elem)
	} else {
		p.probation.Remove(e.elem)
	}
	delete(p.entries, id)
}

// Victim evicts the oldest probationary entry; protected entries are
// only touched when probation is empty. Use-once pages therefore wash
// through probation quickly (surviving for roughly probationBytes /
// missRate — long enough for prefetched-ahead samples to be consumed)
// while re-referenced pages accumulate in the protected segment, which
// converges to a stable set of about the cache size that hits once per
// epoch.
func (p *pageCache) Victim(_ Iter, _ dataset.SampleID) (dataset.SampleID, bool) {
	if tail := p.probation.Back(); tail != nil {
		return tail.Value.(dataset.SampleID), true
	}
	if tail := p.protected.Back(); tail != nil {
		return tail.Value.(dataset.SampleID), true
	}
	return NoSample, false
}

func (p *pageCache) DrainExpired(_ Iter, _ func(dataset.SampleID)) {}
