package core

import (
	"testing"
)

// TestSimulatorAndRuntimeAgree cross-validates the two executions of the
// same design: the virtual-time simulator and the concurrent online
// runtime run the identical workload (same dataset, schedule, policies)
// and must agree on the structural quantities — total lookups, and a
// hit ratio in the same regime. Timing-dependent quantities (prefetch
// volume, exact hit counts) legitimately differ: the runtime's prefetcher
// races real goroutines.
func TestSimulatorAndRuntimeAgree(t *testing.T) {
	type pair struct{ sim, online float64 }
	results := map[string]pair{}
	for _, strategy := range []string{"pytorch", "nopfs"} {
		cfg, err := NewConfig(Workload{
			Scale: "tiny", Epochs: 3, Strategy: strategy, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		online, err := RunOnline(cfg, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		// Identical access structure: both executions replay the exact
		// same deterministic schedule.
		simLookups := sim.Metrics.CacheHits + sim.Metrics.CacheMisses
		onLookups := online.CacheHits + online.CacheMisses
		if simLookups != onLookups {
			t.Fatalf("%s: lookup counts differ: sim %d vs runtime %d", strategy, simLookups, onLookups)
		}
		if uint64(sim.Metrics.Iterations) != uint64(online.Iterations) {
			t.Fatalf("%s: iteration counts differ: %d vs %d", strategy, sim.Metrics.Iterations, online.Iterations)
		}
		results[strategy] = pair{sim.Metrics.HitRatio(), online.HitRatio()}
		t.Logf("%s: hit ratio sim %.3f vs runtime %.3f", strategy, sim.Metrics.HitRatio(), online.HitRatio())
	}

	// Demand-only loading is timing-independent: the two executions must
	// land in the same regime.
	py := results["pytorch"]
	if diff := py.sim - py.online; diff > 0.20 || diff < -0.20 {
		t.Fatalf("pytorch hit ratios diverged: sim %.3f vs runtime %.3f", py.sim, py.online)
	}
	// Prefetching is timing-dependent (the runtime's prefetcher races a
	// compressed clock), so only the direction is invariant: prefetching
	// must raise the hit ratio in BOTH worlds, and the wall-clock runtime
	// cannot beat the virtual-time simulator, whose prefetcher never
	// loses a race.
	np := results["nopfs"]
	if np.sim <= py.sim {
		t.Fatalf("sim: NoPFS (%.3f) not above PyTorch (%.3f)", np.sim, py.sim)
	}
	if np.online <= py.online {
		t.Fatalf("runtime: NoPFS (%.3f) not above PyTorch (%.3f)", np.online, py.online)
	}
	if np.online > np.sim+0.05 {
		t.Fatalf("runtime prefetching (%.3f) beat the clairvoyant simulator (%.3f)", np.online, np.sim)
	}
}
