package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// runImbalance executes all four loaders and reports the fraction (and
// per-epoch count) of iterations with load imbalance — the Fig. 8(a)/(b)
// measurement.
func runImbalance(rep *Report, p Params, top cluster.Topology, ds *dataset.Dataset) error {
	var cfgs []pipeline.Config
	for _, spec := range strategies(top) {
		cfgs = append(cfgs, baseConfig(p, top, ds, resnet50(), spec))
	}
	results, err := runAll(p, cfgs)
	if err != nil {
		return err
	}
	runs := make([]*metrics.Run, len(results))
	var itersPerEpoch int
	for i, res := range results {
		runs[i] = res.Metrics
		itersPerEpoch = res.IterationsPerEpoch
	}
	rep.Printf("%-12s %10s %14s %16s", "strategy", "imbal%", "imbal/epoch", "reduction(pp)")
	lob := runs[len(runs)-1]
	for _, r := range runs {
		red := (r.ImbalanceFraction() - lob.ImbalanceFraction()) * 100
		rep.Printf("%-12s %10.1f %14.1f %16.1f", r.Strategy,
			r.ImbalanceFraction()*100,
			r.ImbalanceFraction()*float64(itersPerEpoch), red)
		rep.Set(fmt.Sprintf("imbalance_%s", r.Strategy), r.ImbalanceFraction())
	}
	return nil
}

// Fig08aImbalanceSingle reproduces Fig. 8(a): iterations with load
// imbalance, single node, ResNet50, ImageNet-22K. Paper: Lobster reduces
// imbalanced iterations by 31.4/16.4/7.9 pp vs PyTorch/DALI/NoPFS; only
// 17.5% of Lobster's iterations remain imbalanced.
func Fig08aImbalanceSingle() Experiment {
	return Experiment{
		ID:    "fig08a",
		Title: "Load-imbalanced iterations, single node, ImageNet-22K (Fig. 8a)",
		Paper: "reduction 31.4/16.4/7.9 pp vs PyT/DALI/NoPFS; Lobster at 17.5%",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet22K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio22K)
			rep := &Report{ID: "fig08a", Title: "Imbalanced iterations, single node (Fig. 8a)"}
			if err := runImbalance(rep, p, top, ds); err != nil {
				return nil, err
			}
			return rep, nil
		},
	}
}

// Fig08bImbalanceMulti reproduces Fig. 8(b): the same measurement on eight
// nodes. Paper: reduction 35.2/25.8/9.7 pp; Lobster at 22.8%.
func Fig08bImbalanceMulti() Experiment {
	return Experiment{
		ID:    "fig08b",
		Title: "Load-imbalanced iterations, eight nodes, ImageNet-22K (Fig. 8b)",
		Paper: "reduction 35.2/25.8/9.7 pp vs PyT/DALI/NoPFS; Lobster at 22.8%",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet22K(p, 64)
			if err != nil {
				return nil, err
			}
			top := topology(8, ds, CacheRatio22K)
			rep := &Report{ID: "fig08b", Title: "Imbalanced iterations, eight nodes (Fig. 8b)"}
			if err := runImbalance(rep, p, top, ds); err != nil {
				return nil, err
			}
			return rep, nil
		},
	}
}

// Fig08cBatchTime reproduces Fig. 8(c): the distribution of per-iteration
// (batch) times for ResNet50 on ImageNet-1K, one node. Paper: Lobster has
// both shorter and less variable batch times than the baselines.
func Fig08cBatchTime() Experiment {
	return Experiment{
		ID:    "fig08c",
		Title: "Batch time distribution, single node, ImageNet-1K (Fig. 8c)",
		Paper: "Lobster: shorter batch times with less variance",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio1K)
			rep := &Report{ID: "fig08c", Title: "Batch time distribution (Fig. 8c)"}
			rep.Printf("%-12s %9s %9s %9s %9s %9s %8s", "strategy",
				"mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)", "std(ms)", "CV")
			specs := strategies(top)
			var cfgs []pipeline.Config
			for _, spec := range specs {
				cfgs = append(cfgs, baseConfig(p, top, ds, resnet50(), spec))
			}
			results, err := runAll(p, cfgs)
			if err != nil {
				return nil, err
			}
			for si, spec := range specs {
				bt := results[si].Metrics.BatchTimes
				rep.Printf("%-12s %9.1f %9.1f %9.1f %9.1f %9.1f %8.3f", spec.Name,
					bt.Mean()*1000, bt.Median()*1000, bt.Percentile(95)*1000,
					bt.Percentile(99)*1000, bt.StdDev()*1000, bt.CoefVar())
				rep.Set(fmt.Sprintf("mean_%s", spec.Name), bt.Mean())
				rep.Set(fmt.Sprintf("cv_%s", spec.Name), bt.CoefVar())
			}
			return rep, nil
		},
	}
}
