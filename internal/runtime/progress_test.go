package runtime

import (
	"sync"
	"testing"

	"repro/internal/loader"
	"repro/internal/monitor"
)

func TestOnProgressPublishes(t *testing.T) {
	opts := testOptions(t, loader.NoPFS(2, 8), 1, 2)
	var mu sync.Mutex
	var snaps []Progress
	opts.OnProgress = func(p Progress) {
		mu.Lock()
		snaps = append(snaps, p)
		mu.Unlock()
	}
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) != stats.Iterations {
		t.Fatalf("got %d progress snapshots, want %d", len(snaps), stats.Iterations)
	}
	prev := 0
	for _, p := range snaps {
		if p.Iteration != prev+1 {
			t.Fatalf("iterations out of order: %d after %d", p.Iteration, prev)
		}
		prev = p.Iteration
		if p.TotalIters != stats.Iterations || p.HitRatio < 0 || p.HitRatio > 1 {
			t.Fatalf("bad snapshot: %+v", p)
		}
	}
	last := snaps[len(snaps)-1]
	if last.CacheHits+last.CacheMiss != stats.CacheHits+stats.CacheMisses {
		t.Fatalf("final snapshot lookups %d, stats %d",
			last.CacheHits+last.CacheMiss, stats.CacheHits+stats.CacheMisses)
	}
}

func TestProgressIntoMonitor(t *testing.T) {
	srv, err := monitor.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	opts := testOptions(t, loader.PyTorch(2, 8), 1, 1)
	opts.OnProgress = func(p Progress) { srv.Update(p) }
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Updates() != uint64(stats.Iterations) {
		t.Fatalf("monitor saw %d updates, want %d", srv.Updates(), stats.Iterations)
	}
}
