package runtime

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/tier"
)

func TestDirectoryPurgeAndCount(t *testing.T) {
	d, err := NewDirectory(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 8; id++ {
		d.Add(1, dataset.SampleID(id))
	}
	d.Add(2, dataset.SampleID(0))
	if got := d.CountNode(1); got != 8 {
		t.Fatalf("CountNode(1) = %d, want 8", got)
	}
	if purged := d.PurgeNode(1); purged != 8 {
		t.Fatalf("PurgeNode(1) = %d, want 8", purged)
	}
	if got := d.CountNode(1); got != 0 {
		t.Fatalf("CountNode(1) after purge = %d", got)
	}
	// Sample 0's copy on node 2 survives; the rest have no holder.
	if got := d.Holder(dataset.SampleID(0), 0); got != 2 {
		t.Fatalf("Holder(0) = %d, want 2", got)
	}
	for id := 1; id < 8; id++ {
		if got := d.Holder(dataset.SampleID(id), 0); got != -1 {
			t.Fatalf("Holder(%d) = %d after purge, want -1", id, got)
		}
	}
}

func TestDistributionManagerNodeDown(t *testing.T) {
	dm := NewDistributionManager(2, tier.ThetaGPULike().Remote, 0.0001)
	defer dm.Close()
	dm.SetNodeDown(1, true)
	if !dm.NodeDown(1) || dm.NodeDown(0) {
		t.Fatal("down flags wrong")
	}
	// A fetch from a down peer returns nil without touching its inbox
	// (nobody is serving it) — the requester's failover path.
	if p := dm.Fetch(1, 0, 128); p != nil {
		t.Fatalf("Fetch from down node returned %d bytes", len(p))
	}
	dm.SetNodeDown(1, false)
	if dm.NodeDown(1) {
		t.Fatal("revive did not clear the down flag")
	}
	// Straggler profile survives a down/up transition.
	dm.SetNodeFault(1, chaos.Fault{Lag: time.Millisecond, Seed: 1})
	dm.SetNodeDown(1, true)
	dm.SetNodeDown(1, false)
	if dm.faults[1].Load() == nil || dm.faults[1].Load().lag != time.Millisecond {
		t.Fatal("straggler profile lost across down/up")
	}
	dm.SetNodeFault(1, chaos.Fault{})
	if dm.faults[1].Load() != nil {
		t.Fatal("zero fault on healthy node did not clear state")
	}
}

func TestNodeCacheCrashRepairsDirectory(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 2, 1)
	sched := chaos.NewSchedule(5)
	// Crash node 1's cache a third of the way in; revive two thirds in.
	iters := opts.Dataset.Len() / (2 * 2 * opts.Model.BatchSize)
	sched.CacheCrash(1, iters/3, 2*iters/3)
	ctl, err := chaos.NewController(sched)
	if err != nil {
		t.Fatal(err)
	}
	opts.Chaos = ctl
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(stats.Iterations) * uint64(2*2*opts.Model.BatchSize)
	if stats.SamplesVerified != want {
		t.Fatalf("verified %d/%d with a cache crash mid-run", stats.SamplesVerified, want)
	}
	if inj, rev := ctl.Counts(); inj != 1 || rev != 1 {
		t.Fatalf("controller counts = (%d,%d), want (1,1)", inj, rev)
	}
}

// TestTrainingSurvivesPeerLossMidEpoch is the headline recovery
// scenario: one node's peer cache goes fully dark mid-epoch (every
// promised peer read fails), then the node crashes outright. Training
// must complete with every sample verified and the failover counter
// must show the PFS picked up the slack.
func TestTrainingSurvivesPeerLossMidEpoch(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 2, 2)
	iters := opts.Dataset.Len() / (2 * 2 * opts.Model.BatchSize) // per epoch
	sched := chaos.NewSchedule(11)
	// Both peers serve nothing for the whole run (stragglers with 100%
	// timeouts): every remote fetch the directory promises must fail
	// over to the PFS. End 0 = the fault outlives the run.
	for node := 0; node < 2; node++ {
		sched.Add(chaos.Event{
			Kind: chaos.KindStraggler, Target: node,
			Fault: chaos.Fault{ErrRate: 1},
		})
	}
	// Epoch 1: node 1's cache is lost mid-epoch, revived 4 iters later.
	sched.CacheCrash(1, iters+iters/2, iters+iters/2+4)
	ctl, err := chaos.NewController(sched)
	if err != nil {
		t.Fatal(err)
	}
	opts.Chaos = ctl
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(stats.Iterations) * uint64(2*2*opts.Model.BatchSize)
	if stats.SamplesVerified != want {
		t.Fatalf("verified %d/%d under peer loss", stats.SamplesVerified, want)
	}
	if stats.Failovers == 0 {
		t.Fatal("no failovers recorded despite fully dark peers")
	}
	// 3 injected; the cache crash reverted mid-run, the stragglers at
	// Finish.
	if inj, rev := ctl.Counts(); inj != 3 || rev != 3 {
		t.Fatalf("controller counts = (%d,%d), want (3,3)", inj, rev)
	}
	if ctl.DegradedIters() == 0 {
		t.Fatal("no degraded iterations recorded")
	}
}

func TestTrainingSurvivesBrownout(t *testing.T) {
	opts := testOptions(t, loader.NoPFS(2, 8), 1, 2)
	sched := chaos.NewSchedule(3)
	// PFS brownout for the middle of the run: transient failures the
	// retry loop must absorb, plus a little extra latency.
	sched.Brownout(4, 12, 200*time.Microsecond, 100*time.Microsecond, 0.5)
	ctl, err := chaos.NewController(sched)
	if err != nil {
		t.Fatal(err)
	}
	opts.Chaos = ctl
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(stats.Iterations) * uint64(2*opts.Model.BatchSize)
	if stats.SamplesVerified != want {
		t.Fatalf("verified %d/%d through the brownout", stats.SamplesVerified, want)
	}
	if stats.PFSRetries == 0 {
		t.Fatal("no PFS retries despite a 50% brownout window")
	}
}

// TestChaosEventLogDeterministic pins the replayability contract: the
// same schedule against the same run produces the identical event log.
func TestChaosEventLogDeterministic(t *testing.T) {
	run := func() []string {
		opts := testOptions(t, loader.Lobster(), 2, 1)
		sched := chaos.NewSchedule(21).
			SlowDecode(0, 1, 4, 100*time.Microsecond, 100*time.Microsecond).
			Brownout(3, 6, 0, 0, 0.25).
			CacheCrash(1, 5, 9)
		ctl, err := chaos.NewController(sched)
		if err != nil {
			t.Fatal(err)
		}
		opts.Chaos = ctl
		if _, err := Run(opts); err != nil {
			t.Fatal(err)
		}
		return ctl.EventLog()
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("event log differs across identical runs:\n%v\n%v", a, b)
	}
	if len(a) != 6 { // 3 injects + 3 reverts
		t.Fatalf("event log = %v, want 6 lines", a)
	}
}
