package runtime

import (
	"sync/atomic"
	"time"
)

// stallCause indexes the attribution buckets of the per-iteration stall
// ledger (DESIGN.md §14). Every nanosecond a demand load spends between
// a GPU dispatching its batch and holding the tensor is charged to
// exactly one cause, so the per-cause totals decompose the "stall" span
// instead of merely correlating with it:
//
//	local_hit   serving the sample from this node's cache (the happy
//	            path; large totals here mean the cache itself is slow
//	            or the batch is huge, not that I/O is)
//	peer_fetch  the shared-tier leg — a peer-cache fetch through the
//	            distribution manager or a KV-cluster Get — whether it
//	            delivered or failed (a slow failing peer stalls the
//	            GPU exactly as long as a slow succeeding one)
//	pfs         a demand read from the parallel file system on the
//	            normal path: no holder was promised and the KV tier
//	            reported a clean miss. Includes retry backoff.
//	decode_wait time a decode job sat in the preprocessing queue
//	            before a worker picked it up (decode-bound node)
//	queue_wait  time a load request sat in its per-GPU queue before a
//	            loading worker picked it up (loader-bound node)
//	recovery    the fallback PFS read (including retry backoff) paid
//	            because the shared tier broke a promise — a directory
//	            holder that delivered nothing or an unreachable KV
//	            shard, i.e. exactly the failover-counted events
type stallCause int

const (
	causeLocalHit stallCause = iota
	causePeerFetch
	causePFS
	causeDecodeWait
	causeQueueWait
	causeRecovery
	numStallCauses
)

// stallCauseNames are the wire names: trace span names on the per-rank
// stall tracks, and the <cause> segment of the
// lobster_runtime_stall_<cause>_seconds histograms. lobster-doctor keys
// on them verbatim.
var stallCauseNames = [numStallCauses]string{
	"local_hit", "peer_fetch", "pfs", "decode_wait", "queue_wait", "recovery",
}

// loadSideCause marks the causes that make up a rank's load time — the
// storage-facing legs, excluding the queueing waits — which feed the
// load-imbalance gauge (max over mean of per-rank load time, the
// paper's load-balance signal).
func loadSideCause(c stallCause) bool {
	return c == causeLocalHit || c == causePeerFetch || c == causePFS || c == causeRecovery
}

// stallRow accumulates one rank's current-iteration attribution. Padded
// so concurrent loading workers charging different ranks never share a
// cache line.
type stallRow struct {
	ns [numStallCauses]atomic.Int64
	_  [64]byte
}

// stallLedger is the run's attribution accumulator: one row per global
// rank, holding only the iteration in flight. Safe without locks
// because of the iteration ordering the barrier already enforces: every
// demand load (and the preproc job it spawns) for rank r's iteration h
// completes before r's batch wait returns, which happens-before r
// arrives at barrier h; the barrier's last arriver flushes the rows
// strictly before any rank submits iteration h+1's loads. So add and
// flush never race on the same iteration's nanoseconds.
type stallLedger struct {
	rows []stallRow
}

func newStallLedger(world int) *stallLedger {
	return &stallLedger{rows: make([]stallRow, world)}
}

// add charges d to (rank, cause). Nil-safe; out-of-range ranks (a
// clamped trace context from a hostile frame) are dropped rather than
// mis-charged.
func (l *stallLedger) add(rank int, c stallCause, d time.Duration) {
	if l == nil || rank < 0 || rank >= len(l.rows) || d <= 0 {
		return
	}
	l.rows[rank].ns[c].Add(int64(d))
}

// drain swaps rank r's row to zero and returns the accumulated
// durations per cause.
func (l *stallLedger) drain(r int, out *[numStallCauses]time.Duration) {
	for c := range out {
		out[c] = time.Duration(l.rows[r].ns[c].Swap(0))
	}
}
