// Package distcache coordinates the node-local caches of a node group into
// the distributed cache of Section 2: "each compute node exposes its local
// cache to other compute nodes, greatly reducing the need for the compute
// nodes as a group to interact with the repository."
//
// A Group tracks which nodes hold which samples, answers the three-way
// placement question of Equation 1 (local cache / remote cache / PFS), and
// provides the "last copy in the group" predicate that Lobster's
// reuse-count eviction rule needs.
package distcache

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/perfmodel"
	"repro/internal/tier"
)

// Group is the set of node-local caches participating in one training run.
// Not safe for concurrent use (the simulator is single-goroutine; the
// online runtime maintains its own synchronized directory).
type Group struct {
	nodes    []*cache.Cache
	replicas []int16 // per sample: number of caches holding it
}

// NewGroup wraps the per-node caches. numSamples bounds sample IDs.
func NewGroup(nodes []*cache.Cache, numSamples int) (*Group, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("distcache: no nodes")
	}
	for i, c := range nodes {
		if c == nil {
			return nil, fmt.Errorf("distcache: nil cache for node %d", i)
		}
	}
	if numSamples <= 0 {
		return nil, fmt.Errorf("distcache: numSamples %d <= 0", numSamples)
	}
	return &Group{nodes: nodes, replicas: make([]int16, numSamples)}, nil
}

// Nodes returns the number of participating nodes.
func (g *Group) Nodes() int { return len(g.nodes) }

// Cache returns node i's cache.
func (g *Group) Cache(node int) *cache.Cache { return g.nodes[node] }

// ReplicaCount returns the number of nodes currently holding the sample.
func (g *Group) ReplicaCount(id dataset.SampleID) int { return int(g.replicas[id]) }

// Locate reports where node would find the sample right now, without
// touching any cache state: its own cache (Local), some peer's cache
// (Remote), or the PFS.
func (g *Group) Locate(node int, id dataset.SampleID) tier.Kind {
	if g.nodes[node].Contains(id) {
		return tier.Local
	}
	if g.replicas[id] > 0 {
		return tier.Remote
	}
	return tier.PFS
}

// Get performs node's lookup of the sample at iteration now, recording the
// hit/miss on the node's own cache, and returns the tier the sample must be
// read from.
func (g *Group) Get(node int, id dataset.SampleID, now cache.Iter) tier.Kind {
	if g.nodes[node].Get(id, now) {
		return tier.Local
	}
	if g.replicas[id] > 0 {
		return tier.Remote
	}
	return tier.PFS
}

// GetBatch resolves one GPU mini-batch against the distributed cache and
// returns its tier placement: per sample it performs the same
// get-then-put sequence as the equivalent Get/Put loop — the
// interleaving matters, since each miss's insert can evict samples
// consulted later in the batch. The placement doubles as the batch's
// transfer accounting: RemoteOps counts remote-cache hits and PFSOps
// counts PFS fetches.
func (g *Group) GetBatch(node int, ids []dataset.SampleID, sizeOf func(dataset.SampleID) int64, now cache.Iter) perfmodel.BatchPlacement {
	var pl perfmodel.BatchPlacement
	for _, id := range ids {
		size := sizeOf(id)
		switch g.Get(node, id, now) {
		case tier.Local:
			pl.LocalBytes += size
			pl.LocalOps++
		case tier.Remote:
			pl.RemoteBytes += size
			pl.RemoteOps++
			g.Put(node, id, size, now)
		default:
			pl.PFSBytes += size
			pl.PFSOps++
			g.Put(node, id, size, now)
		}
	}
	return pl
}

// Put inserts the sample into node's cache (typically after fetching it
// from a slower tier), keeping replica counts consistent across evictions.
// It reports whether the insert was admitted.
func (g *Group) Put(node int, id dataset.SampleID, size int64, now cache.Iter) bool {
	already := g.nodes[node].Contains(id)
	evicted, ok := g.nodes[node].Put(id, size, now)
	for _, ev := range evicted {
		g.decReplica(ev)
	}
	if ok && !already {
		g.replicas[id]++
	}
	return ok
}

// Maintain runs proactive policy evictions on node's cache at iteration
// now, updating replica counts, and returns the number evicted.
func (g *Group) Maintain(node int, now cache.Iter) int {
	evicted := g.nodes[node].Maintain(now)
	for _, ev := range evicted {
		g.decReplica(ev)
	}
	return len(evicted)
}

// Remove invalidates the sample on node (replica-count aware).
func (g *Group) Remove(node int, id dataset.SampleID) bool {
	if !g.nodes[node].Remove(id) {
		return false
	}
	g.decReplica(id)
	return true
}

// Crash wipes node's cache as a process loss would: every resident
// sample is removed with its replica count decremented, so the group's
// shard map is consistent the moment the call returns — no peer is
// promised a copy the dead node no longer has, and IsLastCopy stays
// truthful for the survivors. Returns the number of samples lost.
func (g *Group) Crash(node int) int {
	n := 0
	for id := range g.replicas {
		if g.Remove(node, dataset.SampleID(id)) {
			n++
		}
	}
	return n
}

func (g *Group) decReplica(id dataset.SampleID) {
	if g.replicas[id] <= 0 {
		panic(fmt.Sprintf("distcache: replica underflow for sample %d", id))
	}
	g.replicas[id]--
}

// IsLastCopy returns the predicate for node's Lobster eviction policy:
// true when node holds the only cached copy in the group. Evicting such a
// copy would force a future PFS re-fetch (Section 4.4's exception).
//
// Note the predicate is closed over the group, not a snapshot: policies
// must consult it at decision time, which they do.
func (g *Group) IsLastCopy(node int) func(dataset.SampleID) bool {
	return func(id dataset.SampleID) bool {
		return g.replicas[id] == 1 && g.nodes[node].Contains(id)
	}
}

// AggregateStats sums the cache counters across all nodes.
func (g *Group) AggregateStats() cache.Stats {
	var total cache.Stats
	for _, c := range g.nodes {
		s := c.Stats()
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Evictions += s.Evictions
		total.Rejected += s.Rejected
	}
	return total
}

// CheckInvariants verifies replica counts against actual cache contents by
// full scan; used by tests and debug assertions.
func (g *Group) CheckInvariants() error {
	counts := make([]int16, len(g.replicas))
	for _, c := range g.nodes {
		for id := range g.replicas {
			if c.Contains(dataset.SampleID(id)) {
				counts[id]++
			}
		}
	}
	for id := range counts {
		if counts[id] != g.replicas[id] {
			return fmt.Errorf("distcache: sample %d replica count %d, actual %d",
				id, g.replicas[id], counts[id])
		}
	}
	return nil
}
