// Chaos experiment suite: the recovery scenarios behind `make
// bench-chaos` and BENCH_chaos.json. Each scenario runs the live
// runtime (internal/runtime) under a seeded chaos schedule
// (internal/chaos) and judges recovery against explicit criteria.
//
// Criteria come in two tiers. Structural criteria — the run completed,
// every sample was verified, every injected fault was reverted, the
// degraded window matched the schedule, failovers/retries were observed
// where the scenario guarantees them — are deterministic for a given
// seed and are what CI asserts. Wall-clock criteria — throughput
// degradation during the fault window, recovery time after it — are
// measured on every run and recorded in the results, but only the full
// bench run (a quiet machine) gates on them.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tier"
)

// chaosTraceDirEnv names a directory where a failed scenario dumps its
// trace ring as Chrome trace JSON — CI sets it and uploads the dumps as
// artifacts, so a red chaos gate ships the evidence (feed the file to
// lobster-doctor or Perfetto). Empty disables tracing entirely.
const chaosTraceDirEnv = "LOBSTER_CHAOS_TRACE_DIR"

// dumpChaosTrace writes a failed scenario's trace; best-effort (a
// failed dump must not mask the scenario verdict) but logged into the
// result either way.
func dumpChaosTrace(dir, scenario string, ring *obs.TraceRing, res *ChaosResult) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		res.EventLog = append(res.EventLog, "trace dump failed: "+err.Error())
		return
	}
	path := filepath.Join(dir, "chaos-"+scenario+"-trace.json")
	f, err := os.Create(path)
	if err != nil {
		res.EventLog = append(res.EventLog, "trace dump failed: "+err.Error())
		return
	}
	defer f.Close()
	if err := ring.WriteJSON(f); err != nil {
		res.EventLog = append(res.EventLog, "trace dump failed: "+err.Error())
		return
	}
	res.EventLog = append(res.EventLog, "trace dumped to "+path)
}

// ChaosParams configure a scenario-suite run.
type ChaosParams struct {
	// Samples sizes the dataset (default 256; the full bench uses 512).
	Samples int
	// Epochs is the training length (default 4).
	Epochs int
	// Seed seeds the dataset, the run, and every chaos schedule.
	Seed uint64
	// Strict additionally gates on the wall-clock criteria (degradation
	// observed, recovery within bound) — full-bench runs only; CI boxes
	// are too noisy for latency assertions.
	Strict bool
}

func (p ChaosParams) withDefaults() ChaosParams {
	if p.Samples <= 0 {
		p.Samples = 256
	}
	if p.Epochs <= 0 {
		p.Epochs = 4
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// ChaosResult is one scenario's outcome, serialized into
// BENCH_chaos.json. EventLog, the criteria lines, and Passed are
// deterministic for a given seed; the counters and the wall-clock
// measurements (degradation, recovery) vary run to run and are recorded
// for the report only.
type ChaosResult struct {
	Name            string   `json:"name"`
	Passed          bool     `json:"passed"`
	Criteria        []string `json:"criteria"`
	EventLog        []string `json:"event_log"`
	Iterations      int      `json:"iterations"`
	SamplesVerified uint64   `json:"samples_verified"`
	SamplesExpected uint64   `json:"samples_expected"`
	Failovers       uint64   `json:"failovers"`
	PartialFanouts  uint64   `json:"partial_fanouts"`
	PFSRetries      uint64   `json:"pfs_retries"`
	RemoteHits      uint64   `json:"remote_hits"`
	Injected        int      `json:"injected"`
	Reverted        int      `json:"reverted"`
	DegradedIters   int      `json:"degraded_iters"`
	// RecoveryIters is how many iterations after the last revert the
	// per-iteration time needed to return to within 1.5x the healthy
	// baseline (0 = the first post-fault iteration was already healthy).
	RecoveryIters int `json:"recovery_iters"`
	// DegradationPct is the mean per-iteration slowdown inside the fault
	// window versus the healthy baseline, in percent.
	DegradationPct float64 `json:"throughput_degradation_pct"`
}

// chaosScenario is one recovery scenario's definition. The schedule
// builder receives the run's total iteration count so windows scale
// with Params.
type chaosScenario struct {
	name string
	// build appends the scenario's events and returns the fault window
	// [start, end) used for degradation/recovery measurement.
	build func(s *chaos.Schedule, totalIters int) (faultStart, faultEnd int)
	// wantFailovers / wantRetries add the respective structural criteria.
	wantFailovers bool
	wantRetries   bool
}

// chaosScenarios returns the suite in report order.
func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{
			// One peer serves slowly and drops half its fetches for a
			// quarter of the run; the others must absorb the window.
			name: "straggler",
			build: func(s *chaos.Schedule, total int) (int, int) {
				start, end := total/4, total/2
				s.Add(chaos.Event{
					Kind: chaos.KindStraggler, Target: 1, Start: start, End: end,
					Fault: chaos.Fault{Lag: 2 * time.Millisecond, Jitter: time.Millisecond, ErrRate: 0.5},
				})
				return start, end
			},
		},
		{
			// The PFS browns out: every read pays extra latency and half
			// fail transiently; the retry loop must carry the window.
			name: "brownout",
			build: func(s *chaos.Schedule, total int) (int, int) {
				start, end := total/4, total/2
				s.Brownout(start, end, time.Millisecond, 500*time.Microsecond, 0.5)
				return start, end
			},
			wantRetries: true,
		},
		{
			// Node loss mid-epoch: first every peer goes dark (promised
			// reads fail, guaranteeing failovers), then node 1's cache is
			// lost outright and revived later. Training must finish with
			// every sample verified on a repaired shard map.
			name: "nodeloss",
			build: func(s *chaos.Schedule, total int) (int, int) {
				darkEnd, crashEnd := total/2, 3*total/4
				for node := 0; node < 2; node++ {
					s.Add(chaos.Event{
						Kind: chaos.KindStraggler, Target: node, Start: 2, End: darkEnd,
						Fault: chaos.Fault{ErrRate: 1},
					})
				}
				s.CacheCrash(1, darkEnd, crashEnd)
				// Measure from total/4 so cache warm-up (which overlaps
				// the dark window's start) does not pollute the
				// degradation number.
				return total / 4, crashEnd
			},
			wantFailovers: true,
		},
	}
}

// chaosProbe records the cumulative elapsed time at every iteration
// boundary via Options.OnProgress.
type chaosProbe struct {
	mu      sync.Mutex
	elapsed []float64
}

func (p *chaosProbe) onProgress(pr runtime.Progress) {
	p.mu.Lock()
	p.elapsed = append(p.elapsed, pr.ElapsedSec)
	p.mu.Unlock()
}

// iterTimes differences the cumulative elapsed samples into
// per-iteration durations.
func (p *chaosProbe) iterTimes() []float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]float64, len(p.elapsed))
	prev := 0.0
	for i, e := range p.elapsed {
		out[i] = e - prev
		prev = e
	}
	return out
}

// median returns the middle value (0 for an empty slice).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// mean returns the average (0 for an empty slice).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// expectedDegraded replays the schedule's windows over the run's
// iteration boundaries (0..totalIters inclusive, matching the
// controller's ticks) and counts boundaries with at least one active
// event — the deterministic value Controller.DegradedIters must report.
func expectedDegraded(s *chaos.Schedule, totalIters int) int {
	n := 0
	for h := 0; h <= totalIters; h++ {
		for _, e := range s.Events {
			if h >= e.Start && (e.End <= 0 || h < e.End) {
				n++
				break
			}
		}
	}
	return n
}

// chaosOptions builds the live-runtime configuration every scenario
// shares: 2 nodes x 2 GPUs, batch 8, Lobster dynamic strategy.
func chaosOptions(p ChaosParams) (runtime.Options, error) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "chaos", NumSamples: p.Samples, MeanSize: 8 << 10, SigmaLog: 0.3,
		MinSize: 1 << 10, Classes: 4, Seed: p.Seed,
	})
	if err != nil {
		return runtime.Options{}, err
	}
	top := cluster.Topology{
		Nodes:       2,
		GPUsPerNode: 2,
		CPUThreads:  8,
		CacheBytes:  ds.TotalBytes() / 3,
		NUMADomains: 2,
		Hierarchy:   tier.ThetaGPULike(),
	}
	model := cluster.DNNModel{Name: "toy", IterTime: 0.004, BatchSize: 8, TargetAccuracy: 0.7, ConvergeEpochs: 10}
	return runtime.Options{
		Topology:  top,
		Dataset:   ds,
		Model:     model,
		Epochs:    p.Epochs,
		Seed:      p.Seed,
		Strategy:  loader.Lobster(),
		TimeScale: 0.02,
	}, nil
}

// ChaosScenarios runs the full recovery suite and returns one result
// per scenario, in order. An error means a scenario could not run at
// all; a failed recovery is reported through ChaosResult.Passed.
func ChaosScenarios(p ChaosParams) ([]ChaosResult, error) {
	p = p.withDefaults()
	var results []ChaosResult
	for _, sc := range chaosScenarios() {
		r, err := runChaosScenario(sc, p)
		if err != nil {
			return nil, fmt.Errorf("chaos scenario %s: %w", sc.name, err)
		}
		results = append(results, r)
	}
	return results, nil
}

func runChaosScenario(sc chaosScenario, p ChaosParams) (ChaosResult, error) {
	opts, err := chaosOptions(p)
	if err != nil {
		return ChaosResult{}, err
	}
	ranks := opts.Topology.Nodes * opts.Topology.GPUsPerNode
	totalIters := p.Samples / (ranks * opts.Model.BatchSize) * p.Epochs
	sched := chaos.NewSchedule(p.Seed)
	faultStart, faultEnd := sc.build(sched, totalIters)
	ctl, err := chaos.NewController(sched)
	if err != nil {
		return ChaosResult{}, err
	}
	probe := &chaosProbe{}
	opts.Chaos = ctl
	opts.OnProgress = probe.onProgress
	var ring *obs.TraceRing
	traceDir := os.Getenv(chaosTraceDirEnv)
	if traceDir != "" {
		ring = obs.NewTraceRing(1 << 16)
		ring.SetProcess(0, "chaos/"+sc.name)
		opts.Trace = ring
	}

	res := ChaosResult{Name: sc.name}
	stats, err := runtime.Run(opts)
	if err != nil {
		// A run error is itself a failed recovery, not a harness error.
		res.Criteria = append(res.Criteria, fmt.Sprintf("FAIL: run aborted: %v", err))
		if ring != nil {
			dumpChaosTrace(traceDir, sc.name, ring, &res)
		}
		return res, nil
	}

	res.Iterations = stats.Iterations
	res.SamplesVerified = stats.SamplesVerified
	res.SamplesExpected = uint64(stats.Iterations) * uint64(ranks*opts.Model.BatchSize)
	res.Failovers = stats.Failovers
	res.PartialFanouts = stats.PartialFanouts
	res.PFSRetries = stats.PFSRetries
	res.RemoteHits = stats.RemoteHits
	res.Injected, res.Reverted = ctl.Counts()
	res.DegradedIters = ctl.DegradedIters()
	res.EventLog = ctl.EventLog()

	// Wall-clock measurements. The healthy baseline is the post-fault
	// steady state (caches warm, every fault reverted) rather than the
	// pre-fault iterations, which are polluted by cold-cache warm-up.
	times := probe.iterTimes()
	if faultEnd > len(times) {
		faultEnd = len(times)
	}
	healthy := median(times[faultEnd:])
	degraded := mean(times[min(faultStart, len(times)):faultEnd])
	if healthy > 0 {
		res.DegradationPct = (degraded/healthy - 1) * 100
	}
	res.RecoveryIters = len(times) - faultEnd // pessimistic: never recovered
	for i := faultEnd; i < len(times); i++ {
		if times[i] <= 1.5*healthy {
			res.RecoveryIters = i - faultEnd
			break
		}
	}

	// Structural criteria (deterministic for a given seed).
	check := func(ok bool, format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if ok {
			res.Criteria = append(res.Criteria, "ok: "+line)
		} else {
			res.Criteria = append(res.Criteria, "FAIL: "+line)
		}
	}
	check(stats.Iterations == totalIters, "completed all %d iterations", totalIters)
	check(res.SamplesVerified == res.SamplesExpected,
		"every scheduled sample verified (%d expected)", res.SamplesExpected)
	check(res.Injected == len(sched.Events) && res.Reverted == res.Injected,
		"all %d faults injected and reverted", len(sched.Events))
	wantDegraded := expectedDegraded(sched, totalIters)
	check(res.DegradedIters == wantDegraded,
		"degraded window matches schedule (%d boundaries)", wantDegraded)
	if sc.wantFailovers {
		check(res.Failovers > 0, "peer failovers to the PFS observed")
	}
	if sc.wantRetries {
		check(res.PFSRetries > 0, "transient PFS failures retried")
	}

	// Wall-clock criteria (Strict / full-bench only; always recorded).
	if p.Strict {
		check(res.DegradationPct > 0, "fault window measurably degraded throughput")
		bound := 6
		if sc.wantFailovers {
			bound = 12 // cache refill after a crash takes longer
		}
		check(res.RecoveryIters <= bound,
			"throughput recovered within %d iterations of the last revert", bound)
	}

	res.Passed = true
	for _, c := range res.Criteria {
		if len(c) >= 4 && c[:4] == "FAIL" {
			res.Passed = false
		}
	}
	if ring != nil && !res.Passed {
		dumpChaosTrace(traceDir, sc.name, ring, &res)
	}
	return res, nil
}

// ExtChaos is the chaos-recovery extension experiment: the paper
// evaluates Lobster on healthy clusters; this extension verifies the
// reproduction's I/O stack survives the faults a real cluster throws —
// stragglers, PFS brownouts, and peer-cache loss mid-epoch — with
// bounded degradation and no lost samples.
func ExtChaos() Experiment {
	return Experiment{
		ID:    "ext-chaos",
		Title: "Extension: recovery under stragglers, brownouts, and node loss",
		Paper: "not in the paper (extension); anchors: Section 2's distributed-cache architecture",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			rep := &Report{ID: "ext-chaos", Title: "Chaos recovery (extension)"}
			results, err := ChaosScenarios(ChaosParams{Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			passed := 0
			rep.Printf("%-10s %-6s %10s %10s %12s %14s", "scenario", "pass", "failovers", "retries", "degraded_it", "degradation%")
			for _, r := range results {
				verdict := "FAIL"
				if r.Passed {
					verdict = "pass"
					passed++
				}
				rep.Printf("%-10s %-6s %10d %10d %12d %14.1f",
					r.Name, verdict, r.Failovers, r.PFSRetries, r.DegradedIters, r.DegradationPct)
				v := 0.0
				if r.Passed {
					v = 1
				}
				rep.Set(r.Name+"_passed", v)
				rep.Set(r.Name+"_degraded_iters", float64(r.DegradedIters))
			}
			rep.Set("scenarios_passed", float64(passed))
			return rep, nil
		},
	}
}
