package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

// runComparison executes all four loaders on one workload and renders the
// Fig. 7-style speedup table (PyTorch = 1.0). The four campaigns are
// independent and fan out over p.Pool; the table is rendered afterwards
// from the index-ordered results.
func runComparison(rep *Report, p Params, top cluster.Topology, ds *dataset.Dataset, prefix string) error {
	var cfgs []pipeline.Config
	for _, spec := range strategies(top) {
		cfgs = append(cfgs, baseConfig(p, top, ds, resnet50(), spec))
	}
	results, err := runAll(p, cfgs)
	if err != nil {
		return err
	}
	runs := make([]*metrics.Run, len(results))
	for i, res := range results {
		runs[i] = res.Metrics
	}
	rep.Lines = append(rep.Lines, splitLines(metrics.Table(runs))...)
	base := runs[0]
	lob := runs[len(runs)-1]
	for _, r := range runs {
		rep.Set(fmt.Sprintf("%stime_%s", prefix, r.Strategy), r.TotalTime)
		rep.Set(fmt.Sprintf("%sspeedup_%s", prefix, r.Strategy), r.Speedup(base))
		rep.Set(fmt.Sprintf("%shit_%s", prefix, r.Strategy), r.HitRatio())
	}
	rep.Printf("Lobster speedups: %.2fx vs pytorch, %.2fx vs dali, %.2fx vs nopfs",
		lob.Speedup(runs[0]), lob.Speedup(runs[1]), lob.Speedup(runs[2]))
	return nil
}

// Fig07aSingleNode1K reproduces Fig. 7(a): single node, eight GPUs,
// ImageNet-1K. Paper: Lobster 1.6x vs PyTorch DataLoader, 1.7x vs DALI,
// 1.2x vs NoPFS.
func Fig07aSingleNode1K() Experiment {
	return Experiment{
		ID:    "fig07a",
		Title: "Single-node multi-GPU training, ImageNet-1K (Fig. 7a)",
		Paper: "Lobster 1.6x vs PyTorch, 1.7x vs DALI, 1.2x vs NoPFS",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio1K)
			rep := &Report{ID: "fig07a", Title: "Single node, ImageNet-1K (Fig. 7a)"}
			if err := runComparison(rep, p, top, ds, ""); err != nil {
				return nil, err
			}
			return rep, nil
		},
	}
}

// Fig07bSingleNode22K reproduces Fig. 7(b): single node, ImageNet-22K.
// Paper: Lobster 1.8x vs PyTorch (larger than the 1K case because the
// dataset dwarfs the cache).
func Fig07bSingleNode22K() Experiment {
	return Experiment{
		ID:    "fig07b",
		Title: "Single-node multi-GPU training, ImageNet-22K (Fig. 7b)",
		Paper: "Lobster 1.8x vs PyTorch",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet22K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio22K)
			rep := &Report{ID: "fig07b", Title: "Single node, ImageNet-22K (Fig. 7b)"}
			if err := runComparison(rep, p, top, ds, ""); err != nil {
				return nil, err
			}
			return rep, nil
		},
	}
}

// Fig07cMultiNode22K reproduces Fig. 7(c): eight nodes, 64 GPUs,
// ImageNet-22K. Paper: Lobster 2.0x / 1.4x / 1.2x vs PyTorch / DALI /
// NoPFS — the distributed cache amplifies the gain.
func Fig07cMultiNode22K() Experiment {
	return Experiment{
		ID:    "fig07c",
		Title: "Multi-node distributed training, ImageNet-22K, 8x8 GPUs (Fig. 7c)",
		Paper: "Lobster 2.0x vs PyTorch, 1.4x vs DALI, 1.2x vs NoPFS",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet22K(p, 64)
			if err != nil {
				return nil, err
			}
			top := topology(8, ds, CacheRatio22K)
			rep := &Report{ID: "fig07c", Title: "Eight nodes, ImageNet-22K (Fig. 7c)"}
			if err := runComparison(rep, p, top, ds, ""); err != nil {
				return nil, err
			}
			return rep, nil
		},
	}
}

// Fig07dScalability reproduces Fig. 7(d): Lobster vs PyTorch across node
// counts on ImageNet-22K. Paper: average speedup 1.53x, up to 1.9x;
// consistent 1.2x-2.0x across scales.
func Fig07dScalability() Experiment {
	return Experiment{
		ID:    "fig07d",
		Title: "Scalability across node counts, ImageNet-22K (Fig. 7d)",
		Paper: "average 1.53x speedup over PyTorch (up to 1.9x)",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet22K(p, 64)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig07d", Title: "Scalability (Fig. 7d)"}
			rep.Printf("%6s %12s %12s %9s", "nodes", "pytorch(s)", "lobster(s)", "speedup")
			nodeCounts := []int{1, 2, 4, 8}
			var cfgs []pipeline.Config
			for _, nodes := range nodeCounts {
				top := topology(nodes, ds, CacheRatio22K)
				cfgs = append(cfgs,
					baseConfig(p, top, ds, resnet50(), loader.PyTorch(top.GPUsPerNode, top.CPUThreads)),
					baseConfig(p, top, ds, resnet50(), loader.Lobster()))
			}
			results, err := runAll(p, cfgs)
			if err != nil {
				return nil, err
			}
			sum, count := 0.0, 0
			maxSp := 0.0
			for i, nodes := range nodeCounts {
				base, lob := results[2*i], results[2*i+1]
				sp := base.Metrics.TotalTime / lob.Metrics.TotalTime
				rep.Printf("%6d %12.2f %12.2f %9.2f", nodes,
					base.Metrics.TotalTime, lob.Metrics.TotalTime, sp)
				rep.Set(fmt.Sprintf("speedup_%dnodes", nodes), sp)
				sum += sp
				count++
				if sp > maxSp {
					maxSp = sp
				}
			}
			rep.Printf("average speedup %.2fx (paper: 1.53x), max %.2fx (paper: up to 1.9x)",
				sum/float64(count), maxSp)
			rep.Set("avg_speedup", sum/float64(count))
			rep.Set("max_speedup", maxSp)
			return rep, nil
		},
	}
}
