package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
)

// Fixtures are type-checked in-memory against GOROOT source, sharing
// one FileSet and importer across the test binary (the importer caches
// the std packages it checks).
var (
	fixtureMu       sync.Mutex
	fixtureFset     = token.NewFileSet()
	fixtureImporter = importer.ForCompiler(fixtureFset, "source", nil)
	fixtureSeq      int
)

// checkFixture type-checks one in-memory source file as package pkgPath
// and wraps it for analysis.
func checkFixture(t *testing.T, pkgPath, src string) *Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	fixtureSeq++
	name := fmt.Sprintf("fixture%03d.go", fixtureSeq)
	f, err := parser.ParseFile(fixtureFset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	pkg, info, err := typecheck(pkgPath, fixtureFset, []*ast.File{f}, fixtureImporter)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	return &Package{Path: pkgPath, Fset: fixtureFset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

// fixtureSrc is one package of a multi-package module fixture.
type fixtureSrc struct {
	path string // import path the package pretends to live at
	src  string
}

// importerFunc adapts a lookup function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// checkFixtureModule type-checks the given packages in order
// (dependencies first, so later packages can import earlier ones) and
// wraps them for module-level analysis. Imports outside the fixture
// set fall through to the shared GOROOT importer.
func checkFixtureModule(t *testing.T, srcs ...fixtureSrc) []*Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	local := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := local[path]; ok {
			return p, nil
		}
		return fixtureImporter.Import(path)
	})
	var pkgs []*Package
	for _, fs := range srcs {
		fixtureSeq++
		name := fmt.Sprintf("fixture%03d.go", fixtureSeq)
		f, err := parser.ParseFile(fixtureFset, name, fs.src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture %s: %v", fs.path, err)
		}
		pkg, info, err := typecheck(fs.path, fixtureFset, []*ast.File{f}, imp)
		if err != nil {
			t.Fatalf("typecheck fixture %s: %v", fs.path, err)
		}
		local[fs.path] = pkg
		pkgs = append(pkgs, &Package{Path: fs.path, Fset: fixtureFset, Files: []*ast.File{f}, Pkg: pkg, Info: info})
	}
	return pkgs
}

// moduleFindings runs one module analyzer over the fixture packages
// through the full pipeline and returns its findings.
func moduleFindings(t *testing.T, a *Analyzer, pkgs []*Package) []Finding {
	t.Helper()
	var got []Finding
	for _, f := range Run(pkgs, []*Analyzer{a}) {
		if f.Check == a.ID {
			got = append(got, f)
		}
	}
	return got
}

// checkFixtureWithTest builds a Package with both a production file and
// an in-package _test.go file, mirroring what LoadModule produces.
func checkFixtureWithTest(t *testing.T, pkgPath, src, testSrc string) *Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	fixtureSeq++
	name := fmt.Sprintf("fixture%03d.go", fixtureSeq)
	f, err := parser.ParseFile(fixtureFset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	tf, err := parser.ParseFile(fixtureFset, strings.TrimSuffix(name, ".go")+"_test.go", testSrc,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse test fixture: %v", err)
	}
	pkg, info, err := typecheck(pkgPath, fixtureFset, []*ast.File{f}, fixtureImporter)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	tpkg, tinfo, err := typecheck(pkgPath, fixtureFset, []*ast.File{f, tf}, fixtureImporter)
	if err != nil {
		t.Fatalf("typecheck augmented fixture: %v", err)
	}
	return &Package{Path: pkgPath, Fset: fixtureFset,
		Files: []*ast.File{f}, TestFiles: []*ast.File{tf},
		Pkg: pkg, Info: info, TestPkg: tpkg, TestInfo: tinfo}
}

// fixtureTest is one positive/negative case for a single analyzer.
type fixtureTest struct {
	name string
	pkg  string // package path the fixture pretends to live at
	src  string
	want int    // expected finding count for the analyzer under test
	grep string // substring expected in the first finding's message
}

// runFixtures drives an analyzer over each fixture through the full
// pipeline (including //lint:allow filtering) and checks the finding
// count for that analyzer's ID.
func runFixtures(t *testing.T, a *Analyzer, tests []fixtureTest) {
	t.Helper()
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := checkFixture(t, tc.pkg, tc.src)
			var got []Finding
			for _, f := range Run([]*Package{p}, []*Analyzer{a}) {
				if f.Check == a.ID {
					got = append(got, f)
				}
			}
			if len(got) != tc.want {
				t.Fatalf("got %d %s findings, want %d:\n%s", len(got), a.ID, tc.want, renderFindings(got))
			}
			if tc.grep != "" {
				if len(got) == 0 || !strings.Contains(got[0].Message, tc.grep) {
					t.Fatalf("first finding does not contain %q:\n%s", tc.grep, renderFindings(got))
				}
			}
		})
	}
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

func TestFindingSortingAndString(t *testing.T) {
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"

func a() time.Time { return time.Now() }
func b() time.Time { return time.Now() }
`)
	fs := Run([]*Package{p}, Analyzers())
	if len(fs) != 2 {
		t.Fatalf("want 2 findings, got:\n%s", renderFindings(fs))
	}
	if fs[0].Pos.Line > fs[1].Pos.Line {
		t.Fatalf("findings not sorted by line:\n%s", renderFindings(fs))
	}
	s := fs[0].String()
	if !strings.Contains(s, ".go:4:") || !strings.Contains(s, "[determinism]") {
		t.Fatalf("finding rendering missing position or check id: %s", s)
	}
}

func TestAnalyzersRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, a := range Analyzers() {
		if a.ID == "" || a.Doc == "" || (a.Run == nil && a.RunModule == nil) {
			t.Fatalf("analyzer %+v incomplete", a)
		}
		if ids[a.ID] {
			t.Fatalf("duplicate analyzer id %q", a.ID)
		}
		ids[a.ID] = true
	}
	for _, want := range []string{"determinism", "goroutine", "mutex", "errcheck", "boundedchan", "obsnaming", "lockorder", "hotpath"} {
		if !ids[want] {
			t.Fatalf("missing analyzer %q", want)
		}
	}
}
