package preproc

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestPoolResizeRace hammers Resize from several goroutines while
// submissions are in flight — the shape the thread manager produces
// when per-GPU decisions land on a shared node pool. Run under -race
// this guards the lock-free stop-token delivery (tokens are sent after
// p.mu is released; see Resize).
func TestPoolResizeRace(t *testing.T) {
	p, err := NewPool(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 300
	done := make(chan Result, jobs)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sizes := []int{1, 6, 2, 8, 3, 5, 1, 7}
			for i, s := range sizes {
				if err := p.Resize(s + g%2); err != nil {
					t.Errorf("Resize: %v", err)
				}
				_ = p.Workers()
				_ = i
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < jobs; i++ {
			buf := make([]byte, 256)
			dataset.FillPayload(buf, 7, dataset.SampleID(i))
			p.Submit(Job{ID: dataset.SampleID(i), Payload: buf, Seed: uint64(i), Done: done})
		}
	}()
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if r := <-done; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	p.Close()
	if got := p.Processed(); got != jobs {
		t.Fatalf("processed = %d, want %d", got, jobs)
	}
}
