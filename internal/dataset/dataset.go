// Package dataset models training datasets: collections of variable-size
// samples identified by dense integer IDs.
//
// The paper evaluates on ImageNet-1K (1.28 M images, 135 GB) and
// ImageNet-22K (14.2 M images, 1.3 TB, "most with an image size of between
// 10 KB and 50 KB"). Real pixels are irrelevant to I/O behaviour — only the
// per-sample byte sizes and the access order matter — so this package
// synthesises datasets with matching count and size distributions, plus
// deterministic payload generation for the online runtime (which moves and
// decodes actual bytes).
package dataset

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/stats"
)

// SampleID is the dense index of a sample within its dataset.
type SampleID int32

// Dataset is an immutable collection of sample sizes. It is shared
// read-only across goroutines in the online runtime.
type Dataset struct {
	name   string
	sizes  []int64 // bytes per sample, indexed by SampleID
	total  int64
	labels []int32 // class label per sample (used by the accuracy model)
	seed   uint64
}

// Spec describes a synthetic dataset to generate.
type Spec struct {
	Name       string
	NumSamples int
	// MeanSize and SigmaLog parameterise the log-normal size body.
	MeanSize int64   // target mean sample size in bytes
	SigmaLog float64 // sigma of the underlying normal (spread); 0 => constant sizes
	MinSize  int64   // clamp floor (e.g. 10 KB for ImageNet-22K)
	MaxSize  int64   // clamp ceiling (0 = unbounded)
	Classes  int     // number of class labels (>=1)
	Seed     uint64
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.NumSamples <= 0 {
		return fmt.Errorf("dataset: %q: NumSamples %d <= 0", s.Name, s.NumSamples)
	}
	if s.MeanSize <= 0 {
		return fmt.Errorf("dataset: %q: MeanSize %d <= 0", s.Name, s.MeanSize)
	}
	if s.SigmaLog < 0 {
		return fmt.Errorf("dataset: %q: SigmaLog %g < 0", s.Name, s.SigmaLog)
	}
	if s.MinSize < 0 || (s.MaxSize != 0 && s.MaxSize < s.MinSize) {
		return fmt.Errorf("dataset: %q: invalid size clamp [%d, %d]", s.Name, s.MinSize, s.MaxSize)
	}
	if s.Classes < 1 {
		return fmt.Errorf("dataset: %q: Classes %d < 1", s.Name, s.Classes)
	}
	return nil
}

// Generate synthesises the dataset described by the spec.
func Generate(spec Spec) (*Dataset, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRNG(stats.DeriveSeed(spec.Seed, 0x5a5a))
	d := &Dataset{
		name:   spec.Name,
		sizes:  make([]int64, spec.NumSamples),
		labels: make([]int32, spec.NumSamples),
		seed:   spec.Seed,
	}
	// For a log-normal with parameters (mu, sigma), mean = exp(mu+sigma^2/2).
	// Choose mu so the configured MeanSize is the distribution mean.
	mu := math.Log(float64(spec.MeanSize)) - spec.SigmaLog*spec.SigmaLog/2
	for i := range d.sizes {
		var sz int64
		if spec.SigmaLog == 0 {
			sz = spec.MeanSize
		} else {
			sz = int64(r.LogNormal(mu, spec.SigmaLog))
		}
		if sz < spec.MinSize {
			sz = spec.MinSize
		}
		if spec.MaxSize > 0 && sz > spec.MaxSize {
			sz = spec.MaxSize
		}
		if sz < 1 {
			sz = 1
		}
		d.sizes[i] = sz
		d.total += sz
		d.labels[i] = int32(r.Intn(spec.Classes))
	}
	return d, nil
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.sizes) }

// Size returns the byte size of sample id.
func (d *Dataset) Size(id SampleID) int64 { return d.sizes[id] }

// Label returns the class label of sample id.
func (d *Dataset) Label(id SampleID) int32 { return d.labels[id] }

// TotalBytes returns the sum of all sample sizes (S in the paper's model).
func (d *Dataset) TotalBytes() int64 { return d.total }

// MeanSize returns the average sample size in bytes.
func (d *Dataset) MeanSize() int64 {
	if len(d.sizes) == 0 {
		return 0
	}
	return d.total / int64(len(d.sizes))
}

// Payload deterministically regenerates the raw bytes of a sample for the
// online runtime. The content is a function of (dataset seed, sample id)
// only, so every node's PFS store serves identical bytes — which lets
// integration tests verify end-to-end data integrity after cache hops.
//
// The first 12 bytes are a header (sample id + length) that the preproc
// decoder validates; the rest is a cheap xorshift stream.
func (d *Dataset) Payload(id SampleID) []byte {
	size := d.sizes[id]
	buf := make([]byte, size)
	FillPayload(buf, d.seed, id)
	return buf
}

// PayloadHeaderSize is the number of leading bytes carrying sample
// metadata inside a payload. Samples smaller than this carry a truncated
// header.
const PayloadHeaderSize = 12

// FillPayload writes the deterministic payload of sample id into buf
// (whose length defines the sample size written).
func FillPayload(buf []byte, seed uint64, id SampleID) {
	var hdr [PayloadHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(id))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(buf)))
	n := copy(buf, hdr[:])
	state := stats.DeriveSeed(seed, uint64(id)+1)
	for i := n; i < len(buf); i += 8 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], state)
		copy(buf[i:], w[:])
	}
}

// VerifyPayload checks that buf is the payload of sample id under seed.
// It validates the header and a sparse sample of body words, returning a
// descriptive error on mismatch.
func VerifyPayload(buf []byte, seed uint64, id SampleID) error {
	want := make([]byte, len(buf))
	FillPayload(want, seed, id)
	if len(buf) >= 4 {
		gotID := binary.LittleEndian.Uint32(buf[0:4])
		if gotID != uint32(id) {
			return fmt.Errorf("dataset: payload header id %d, want %d", gotID, id)
		}
	}
	// Sparse comparison: 64 probe positions cover corruption cheaply.
	step := len(buf)/64 + 1
	for i := 0; i < len(buf); i += step {
		if buf[i] != want[i] {
			return fmt.Errorf("dataset: payload of sample %d corrupt at offset %d", id, i)
		}
	}
	return nil
}
