package runtime

import (
	"testing"

	"repro/internal/loader"
	"repro/internal/plan"
)

func testPlanFile(nodes, gpus, iters, itersPerEpoch int) *plan.Plan {
	p := &plan.Plan{
		Version:            plan.Version,
		Strategy:           "lobster",
		Nodes:              nodes,
		GPUsPerNode:        gpus,
		IterationsPerEpoch: itersPerEpoch,
	}
	for h := 0; h < iters; h++ {
		it := plan.Iteration{Epoch: h / itersPerEpoch, Iter: h % itersPerEpoch}
		for n := 0; n < nodes; n++ {
			loading := make([]int, gpus)
			for j := range loading {
				loading[j] = 3 // distinctive value the controller would not pick
			}
			it.Threads = append(it.Threads, plan.NodeThreads{Preproc: 2, Loading: loading})
		}
		p.Iterations = append(p.Iterations, it)
	}
	return p
}

func TestPlanFollowingMode(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 1, 2)
	opts.ThreadPlan = testPlanFile(1, 2, 4, 4)
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The runtime must end on the plan's assignment, not a controller
	// decision.
	if stats.FinalPreprocThreads[0] != 2 {
		t.Fatalf("final preproc threads %d, want planned 2", stats.FinalPreprocThreads[0])
	}
	for _, l := range stats.FinalLoadThreads[0] {
		if l != 3 {
			t.Fatalf("final loading threads %v, want all planned 3", stats.FinalLoadThreads[0])
		}
	}
	want := uint64(stats.Iterations) * uint64(2*opts.Model.BatchSize)
	if stats.SamplesVerified != want {
		t.Fatalf("verified %d, want %d", stats.SamplesVerified, want)
	}
}

func TestPlanTopologyMismatchRejected(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 1, 1)
	opts.ThreadPlan = testPlanFile(2, 2, 4, 4) // two nodes, run has one
	if _, err := Run(opts); err == nil {
		t.Fatal("mismatched plan accepted")
	}
	opts.ThreadPlan = testPlanFile(1, 2, 0, 4) // invalid (no iterations)
	if _, err := Run(opts); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
