# Convenience targets around the tier-1 gate (verify.sh is the source
# of truth; CI runs it directly).

GO ?= go

.PHONY: check build vet test race lint bench

## check: the full tier-1 gate (build + vet + race tests + lobster-lint)
check:
	./verify.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## lint: the project-specific static analysis suite
lint:
	$(GO) run ./cmd/lobster-lint ./...

bench:
	$(GO) test -bench=. -benchmem .
