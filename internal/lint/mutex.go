package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mutex enforces three locking rules across the whole module:
//
//  1. Pairing: a Lock()/RLock() must be followed by `defer Unlock()` as
//     the very next statement, or by a matching Unlock() later in the
//     same block with no intervening top-level return. Anything else is
//     either a leaked lock or a lock held across an early return.
//  2. No copies: function parameters, results, and receivers must not
//     pass a value containing a sync primitive by value.
//  3. No blocking channel operations while a lock is held: a send or
//     receive that blocks under a mutex stalls every other goroutine
//     contending for it — in this codebase that means a stalled GPU
//     queue stalls the allreduce barrier for everyone. Non-blocking
//     selects (with a default case) are fine.
var Mutex = &Analyzer{
	ID: idMutex,
	Doc: "Lock must pair with defer Unlock or a same-block Unlock with no early return; " +
		"no lock values copied by value; no blocking channel ops under a lock",
	Run:   runMutex,
	Tests: true,
}

func runMutex(p *Package) []Finding {
	var out []Finding
	// Test files included (the second view): tests hold the same
	// production locks, and a test that leaks one wedges the whole race
	// run.
	for _, v := range p.views() {
		for _, file := range v.Files {
			funcBodies(file, func(body *ast.BlockStmt, decl *ast.FuncDecl) {
				if decl != nil {
					out = append(out, lockCopyFindings(v, decl)...)
				}
			})
			ast.Inspect(file, func(n ast.Node) bool {
				block, ok := n.(*ast.BlockStmt)
				if !ok {
					return true
				}
				out = append(out, lockPairingFindings(v, block)...)
				return true
			})
		}
	}
	return out
}

// lockCall decodes stmt as `x.Lock()` / `x.RLock()` on a sync mutex,
// returning the receiver expression rendering ("nc.mu") and the
// matching unlock method name.
func lockCall(p *Package, stmt ast.Stmt) (recv, unlockName string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	return lockExpr(p, es.X)
}

func lockExpr(p *Package, x ast.Expr) (recv, unlockName string, ok bool) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	var unlock string
	switch fn.Name() {
	case "Lock":
		unlock = "Unlock"
	case "RLock":
		unlock = "RUnlock"
	default:
		return "", "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	return types.ExprString(sel.X), unlock, true
}

// unlockMatches decodes stmt as `recv.unlockName()` (possibly through
// an embedded mutex, i.e. recv itself carrying the method).
func unlockMatches(p *Package, stmt ast.Stmt, recv, unlockName string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	return unlockExprMatches(p, es.X, recv, unlockName)
}

func unlockExprMatches(p *Package, x ast.Expr, recv, unlockName string) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != unlockName {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && types.ExprString(sel.X) == recv
}

func deferUnlockMatches(p *Package, stmt ast.Stmt, recv, unlockName string) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	return unlockExprMatches(p, ds.Call, recv, unlockName)
}

// lockPairingFindings analyzes one statement list for rules 1 and 3.
func lockPairingFindings(p *Package, block *ast.BlockStmt) []Finding {
	var out []Finding
	stmts := block.List
	for i, stmt := range stmts {
		recv, unlockName, ok := lockCall(p, stmt)
		if !ok {
			continue
		}
		// Preferred shape: defer Unlock immediately after.
		if i+1 < len(stmts) && deferUnlockMatches(p, stmts[i+1], recv, unlockName) {
			out = append(out, heldRegionFindings(p, stmts[i+2:], recv)...)
			continue
		}
		// Manual shape: scan the rest of the block for the unlock.
		resolved := false
		for j := i + 1; j < len(stmts); j++ {
			if unlockMatches(p, stmts[j], recv, unlockName) || deferUnlockMatches(p, stmts[j], recv, unlockName) {
				out = append(out, heldRegionFindings(p, stmts[i+1:j], recv)...)
				resolved = true
				break
			}
			if ret, isRet := stmts[j].(*ast.ReturnStmt); isRet {
				out = append(out, p.finding(idMutex, ret,
					"return while %s is held (locked at line %d); unlock first or use defer %s.%s()",
					recv, p.position(stmt).Line, recv, unlockName))
				resolved = true
				break
			}
		}
		if !resolved {
			out = append(out, p.finding(idMutex, stmt,
				"%s.%s() has no matching %s() in this block; use defer %s.%s() on the next line",
				recv, map[string]string{"Unlock": "Lock", "RUnlock": "RLock"}[unlockName], unlockName, recv, unlockName))
		}
	}
	return out
}

// heldRegionFindings flags blocking channel operations in statements
// executed while recv is locked (rule 3). Nested function literals are
// skipped: they execute later, not under this critical section (a defer
// running under the lock is rare enough to accept the false negative).
// Selects with a default case are non-blocking and pass.
func heldRegionFindings(p *Package, stmts []ast.Stmt, recv string) []Finding {
	var out []Finding
	for _, stmt := range stmts {
		// A nested unlock/lock cycle inside the region is beyond this
		// straight-line analysis; the block-level scan above still
		// covers the nested blocks themselves.
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						return true // has default: non-blocking probe
					}
				}
				out = append(out, p.finding(idMutex, n,
					"blocking select while %s is held; add a default case or move it outside the critical section", recv))
				return false
			case *ast.SendStmt:
				if !insideNonBlockingSelect(n, stmts) {
					out = append(out, p.finding(idMutex, n,
						"channel send while %s is held can block every goroutine contending for the lock; send after unlocking", recv))
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !insideNonBlockingSelect(n, stmts) {
					out = append(out, p.finding(idMutex, n,
						"channel receive while %s is held can block every goroutine contending for the lock; receive before locking", recv))
				}
			}
			return true
		})
	}
	return out
}

// insideNonBlockingSelect reports whether node is a comm clause of a
// select that has a default case (a non-blocking try-send/try-recv).
func insideNonBlockingSelect(node ast.Node, stmts []ast.Stmt) bool {
	found := false
	for _, stmt := range stmts {
		ast.Inspect(stmt, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return !found
			}
			hasDefault := false
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, clause := range sel.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				if node.Pos() >= cc.Comm.Pos() && node.End() <= cc.Comm.End() {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// lockCopyFindings implements rule 2 for one function declaration:
// receivers, parameters, and results must not carry a sync primitive by
// value.
func lockCopyFindings(p *Package, decl *ast.FuncDecl) []Finding {
	var out []Finding
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if name, ok := containsLock(t); ok {
				out = append(out, p.finding(idMutex, field,
					"%s of %s passes %s by value (type %s); use a pointer so the lock state is shared",
					kind, decl.Name.Name, name, typeString(t)))
			}
		}
	}
	check(decl.Recv, "receiver")
	check(decl.Type.Params, "parameter")
	check(decl.Type.Results, "result")
	return out
}
