package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): # HELP / # TYPE headers per
// family, one sample line per series, histogram families expanded into
// cumulative _bucket{le=...} series plus _sum and _count. Families are
// emitted in name order and series in registration order, so scrapes of
// an unchanged registry are byte-identical — the golden-scrape test
// relies on that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			ws(bw, "# HELP ", f.name, " ", escapeHelp(f.help), "\n")
		}
		ws(bw, "# TYPE ", f.name, " ", f.typ, "\n")
		for _, s := range f.series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

// ws writes string parts to a bufio.Writer; bufio errors are sticky and
// surface at the caller's Flush.
func ws(bw *bufio.Writer, parts ...string) {
	for _, p := range parts {
		_, _ = bw.WriteString(p)
	}
}

// writeSeries renders one series' sample line(s).
func writeSeries(bw *bufio.Writer, f *family, s *series) {
	switch {
	case s.hist != nil:
		writeHistogram(bw, f.name, s)
	case s.fn != nil:
		writeSample(bw, f.name, s.labels, formatFloat(s.fn()))
	case s.counter != nil:
		writeSample(bw, f.name, s.labels, strconv.FormatUint(s.counter.Value(), 10))
	case s.gauge != nil:
		writeSample(bw, f.name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
	}
}

// writeHistogram expands one histogram series into its bucket, sum and
// count lines. The le label is appended to the series' pre-rendered
// label set.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	cum, count, sum := s.hist.snapshot()
	for i, bound := range s.hist.bounds {
		writeSample(bw, name+"_bucket", mergeLabels(s.labels, "le", formatFloat(bound)),
			strconv.FormatUint(cum[i], 10))
	}
	writeSample(bw, name+"_bucket", mergeLabels(s.labels, "le", "+Inf"),
		strconv.FormatUint(count, 10))
	writeSample(bw, name+"_sum", s.labels, formatFloat(sum))
	writeSample(bw, name+"_count", s.labels, strconv.FormatUint(count, 10))
}

func writeSample(bw *bufio.Writer, name, labels, value string) {
	ws(bw, name, labels, " ", value, "\n")
}

// mergeLabels appends one extra label to a pre-rendered label set.
func mergeLabels(rendered, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip decimal, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value: backslash, double quote and
// newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
