package loader

import (
	"testing"

	"repro/internal/access"
	"repro/internal/dataset"
	"repro/internal/sampler"
)

func testPlan(t *testing.T) *access.Plan {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "l", NumSamples: 200, MeanSize: 1024, Classes: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(ds, sampler.Config{WorldSize: 2, BatchSize: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := access.Build(s, 0, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestCatalogSpecsValidate(t *testing.T) {
	const gpus, threads = 8, 24
	specs := []Spec{
		PyTorch(gpus, threads),
		DALI(threads),
		NoPFS(gpus, threads),
		Lobster(),
		LobsterTh(),
		LobsterEvict(gpus, threads),
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(gpus, threads); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
	}
	if len(Baselines(gpus, threads)) != 3 {
		t.Error("Baselines should return the paper's three systems")
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []Spec{
		{Name: "", Mode: ThreadsStatic, PreprocThreads: 1, LoadingPerGPU: 1},
		{Name: "x", PrefetchDepth: -1, Mode: ThreadsStatic, PreprocThreads: 1, LoadingPerGPU: 1},
		{Name: "x", Mode: ThreadsStatic, PreprocThreads: 0, LoadingPerGPU: 1},
		{Name: "x", Mode: ThreadsStatic, PreprocThreads: 20, LoadingPerGPU: 2}, // 20+16 > 24
		{Name: "x", Mode: ThreadsSharedPool, PreprocThreads: 1, SharedLoading: 0},
		{Name: "x", Mode: ThreadsSharedPool, PreprocThreads: 24, SharedLoading: 4},
		{Name: "x", Mode: ThreadMode(99)},
	}
	for _, s := range bad {
		if err := s.Validate(8, 24); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestBuildPolicyKinds(t *testing.T) {
	plan := testPlan(t)
	cases := map[PolicyKind]string{
		PolicyPageCache:  "page-cache",
		PolicyLRU:        "lru",
		PolicyFIFO:       "fifo",
		PolicyNeverEvict: "never-evict",
		PolicyNoPFS:      "nopfs",
		PolicyBelady:     "belady",
		PolicyLobster:    "lobster",
	}
	for kind, want := range cases {
		spec := Spec{Name: "t", Policy: kind}
		p := spec.BuildPolicy(plan, nil)
		if p.Name() != want {
			t.Errorf("kind %d built %q, want %q", kind, p.Name(), want)
		}
	}
}

func TestBuildPolicyUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy kind did not panic")
		}
	}()
	Spec{Policy: PolicyKind(99)}.BuildPolicy(testPlan(t), nil)
}

func TestStrategyRoles(t *testing.T) {
	if PyTorch(8, 24).PrefetchDepth != 0 {
		t.Error("PyTorch must be demand-only")
	}
	if NoPFS(8, 24).PrefetchDepth < 8 {
		t.Error("NoPFS must prefetch deep")
	}
	if Lobster().Mode != ThreadsDynamic {
		t.Error("Lobster must use dynamic thread management")
	}
	if LobsterTh().Policy == PolicyLobster {
		t.Error("lobster_th must exclude the reuse-based eviction")
	}
	if LobsterEvict(8, 24).Mode == ThreadsDynamic {
		t.Error("lobster_evict must exclude dynamic thread management")
	}
	if DALI(24).Mode != ThreadsSharedPool {
		t.Error("DALI uses a shared loading pool")
	}
	// Tight budgets must still produce valid specs.
	if err := DALI(4).Validate(2, 4); err != nil {
		t.Errorf("DALI with tiny budget: %v", err)
	}
	if err := PyTorch(2, 4).Validate(2, 4); err != nil {
		t.Errorf("PyTorch with tiny budget: %v", err)
	}
}
