// Package monitor exposes a running training job's statistics over HTTP —
// the minimal observability surface a production data-loading runtime
// needs: a JSON metrics endpoint for scrapers, a human-readable text
// dashboard, and a health probe.
//
// The server is generic: anything that can produce a snapshot value can be
// monitored. The online runtime publishes a runtime.Progress every
// iteration (see runtime.Options.OnProgress).
package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Server serves the most recently published snapshot.
type Server struct {
	ln      net.Listener
	httpSrv *http.Server

	mu       sync.RWMutex
	snapshot any
	updated  time.Time
	updates  atomic.Uint64
}

// Serve starts the monitor on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", s.handleJSON)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/", s.handleText)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln) //lint:allow errcheck Serve always returns non-nil on Close; nothing to do with it
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Update publishes a new snapshot. Safe for concurrent use.
func (s *Server) Update(snapshot any) {
	s.mu.Lock()
	s.snapshot = snapshot
	s.updated = time.Now()
	s.mu.Unlock()
	s.updates.Add(1)
}

// Updates returns the number of snapshots published.
func (s *Server) Updates() uint64 { return s.updates.Load() }

// Close shuts the server down.
func (s *Server) Close() error { return s.httpSrv.Close() }

func (s *Server) handleJSON(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	snap, updated := s.snapshot, s.updated
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	out := map[string]any{
		"updated_unix_ms": updated.UnixMilli(),
		"updates":         s.updates.Load(),
		"snapshot":        snap,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	stale := s.snapshot == nil
	s.mu.RUnlock()
	if stale {
		http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok") //lint:allow errcheck best-effort health probe; client disconnects are not actionable
}

func (s *Server) handleText(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	snap, updated := s.snapshot, s.updated
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//lint:allow errcheck best-effort text dashboard; client disconnects are not actionable
	fmt.Fprintf(w, "lobster monitor — %d updates, last at %s\n\n",
		s.updates.Load(), updated.Format(time.RFC3339Nano))
	if snap == nil {
		fmt.Fprintln(w, "(no snapshot published yet)") //lint:allow errcheck best-effort text dashboard
		return
	}
	// Render the snapshot as indented JSON; a text template would need to
	// know the concrete type.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //lint:allow errcheck best-effort dashboard; a failed render is visible to the client
}
