package retry

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky")

func TestDoSucceedsAfterRetries(t *testing.T) {
	calls, retries := 0, 0
	err := Do(Policy{Base: time.Microsecond}, nil,
		func(attempt int, err error) {
			retries++
			if attempt != retries {
				t.Errorf("onRetry attempt = %d, want %d", attempt, retries)
			}
			if !errors.Is(err, errFlaky) {
				t.Errorf("onRetry err = %v", err)
			}
		},
		func() error {
			calls++
			if calls < 3 {
				return errFlaky
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls = %d, retries = %d; want 3, 2", calls, retries)
	}
}

func TestDoStopsOnNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Do(Policy{Base: time.Microsecond},
		func(err error) bool { return errors.Is(err, errFlaky) },
		nil,
		func() error { calls++; return fatal })
	if !errors.Is(err, fatal) {
		t.Fatalf("Do = %v, want %v unwrapped", err, fatal)
	}
	if calls != 1 {
		t.Fatalf("non-retryable error retried: %d calls", calls)
	}
}

func TestDoExhaustsAttemptBudget(t *testing.T) {
	calls := 0
	err := Do(Policy{Base: time.Microsecond, Attempts: 4}, nil, nil,
		func() error { calls++; return errFlaky })
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	if err == nil {
		t.Fatal("exhausted budget returned nil")
	}
	// The last error must still match through the wrap.
	if !errors.Is(err, errFlaky) {
		t.Fatalf("wrapped error lost the sentinel: %v", err)
	}
	want := fmt.Sprintf("retry: 4 attempts exhausted: %v", errFlaky)
	if err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
}

func TestDoBackoffCapped(t *testing.T) {
	// Base 1ms, multiplier 4, max 2ms over 3 retries: sleeps 1+2+2 = 5ms.
	// Verify total wall time stays well under the uncapped 1+4+16 = 21ms.
	start := time.Now()
	_ = Do(Policy{Base: time.Millisecond, Multiplier: 4, Max: 2 * time.Millisecond, Attempts: 4},
		nil, nil, func() error { return errFlaky })
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Fatalf("backoff cap not applied: %v elapsed", elapsed)
	}
}

func TestDoDefaults(t *testing.T) {
	// Zero policy: base defaults to 1ms, multiplier to 2, unbounded
	// attempts. Succeed on the second call to keep it quick.
	calls := 0
	if err := Do(Policy{}, nil, nil, func() error {
		calls++
		if calls < 2 {
			return errFlaky
		}
		return nil
	}); err != nil {
		t.Fatalf("Do = %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestDoImmediateSuccessSkipsHooks(t *testing.T) {
	hooked := false
	err := Do(Policy{Attempts: 1}, nil,
		func(int, error) { hooked = true },
		func() error { return nil })
	if err != nil || hooked {
		t.Fatalf("err = %v, hooked = %v", err, hooked)
	}
}
