package trainsim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/pipeline"
)

func TestAccuracyCurveShape(t *testing.T) {
	model, _ := cluster.ModelByName("resnet50")
	curve := AccuracyCurve(model, 60, 1)
	if len(curve) != 60 {
		t.Fatalf("curve length %d", len(curve))
	}
	// Monotone-ish rise: allow small noise wiggles but the trend must
	// climb and saturate near the target.
	if curve[0] > 0.4 {
		t.Fatalf("first epoch accuracy %g suspiciously high", curve[0])
	}
	last := curve[59]
	if math.Abs(last-model.TargetAccuracy) > 0.02 {
		t.Fatalf("final accuracy %g, want ~%g", last, model.TargetAccuracy)
	}
	// The paper's anchor: ~76% reached around epoch 40.
	reach := EpochsToAccuracy(curve, model.TargetAccuracy*0.985)
	if reach < 30 || reach > 50 {
		t.Fatalf("reached target at epoch %d, want ~40", reach)
	}
	for _, a := range curve {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy %g out of range", a)
		}
	}
}

func TestAccuracyCurveSeedNoiseSmall(t *testing.T) {
	model, _ := cluster.ModelByName("resnet50")
	a := AccuracyCurve(model, 50, 1)
	b := AccuracyCurve(model, 50, 2)
	var maxDiff float64
	for e := range a {
		d := math.Abs(a[e] - b[e])
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff == 0 {
		t.Fatal("different seeds produced identical curves")
	}
	if maxDiff > 0.05 {
		t.Fatalf("seed noise %g too large for 'similar learning curves'", maxDiff)
	}
}

func TestAccuracyCurveEmpty(t *testing.T) {
	model, _ := cluster.ModelByName("resnet50")
	if AccuracyCurve(model, 0, 1) != nil {
		t.Fatal("zero epochs should give nil curve")
	}
	if EpochsToAccuracy([]float64{0.1, 0.2}, 0.9) != -1 {
		t.Fatal("unreachable accuracy should return -1")
	}
}

func campaignConfig(t *testing.T, spec loader.Spec) pipeline.Config {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "ts", NumSamples: 4000, MeanSize: 64 << 10, SigmaLog: 0.4, Classes: 5, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, _ := cluster.ModelByName("resnet50")
	return pipeline.Config{
		Topology: cluster.ThetaGPULike(1, ds.TotalBytes()/3),
		Model:    model,
		Dataset:  ds,
		Epochs:   5,
		Seed:     11,
		Strategy: spec,
	}
}

func TestRunAttachesCurve(t *testing.T) {
	c, err := Run(campaignConfig(t, loader.Lobster()))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Curve) != 5 {
		t.Fatalf("curve length %d, want 5", len(c.Curve))
	}
	prevTime := 0.0
	for i, p := range c.Curve {
		if p.Epoch != i+1 {
			t.Fatalf("epoch numbering wrong at %d", i)
		}
		if p.Time <= prevTime {
			t.Fatalf("epoch end times not increasing at %d", i)
		}
		prevTime = p.Time
	}
	if c.FinalAccuracy() <= 0 {
		t.Fatal("final accuracy not positive")
	}
}

func TestCurveIndependentOfStrategy(t *testing.T) {
	// The Fig. 9 property: identical schedules => identical accuracy per
	// epoch, regardless of the loader; only wall time differs.
	slow, err := Run(campaignConfig(t, loader.PyTorch(8, 24)))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(campaignConfig(t, loader.Lobster()))
	if err != nil {
		t.Fatal(err)
	}
	for e := range slow.Curve {
		if slow.Curve[e].Accuracy != fast.Curve[e].Accuracy {
			t.Fatalf("epoch %d accuracy differs between strategies", e)
		}
	}
	if fast.Curve[len(fast.Curve)-1].Time >= slow.Curve[len(slow.Curve)-1].Time {
		t.Fatal("Lobster did not finish the same curve earlier in wall time")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	c, err := Run(campaignConfig(t, loader.Lobster()))
	if err != nil {
		t.Fatal(err)
	}
	thr := c.Curve[2].Accuracy
	tt := c.TimeToAccuracy(thr)
	if tt <= 0 || tt > c.Curve[len(c.Curve)-1].Time {
		t.Fatalf("TimeToAccuracy = %g out of range", tt)
	}
	if c.TimeToAccuracy(2.0) != -1 {
		t.Fatal("impossible accuracy should return -1")
	}
}

func TestRunPropagatesPipelineErrors(t *testing.T) {
	cfg := campaignConfig(t, loader.Lobster())
	cfg.Epochs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFinalAccuracyEmptyCampaign(t *testing.T) {
	c := &Campaign{}
	if c.FinalAccuracy() != 0 {
		t.Fatal("empty campaign should report zero accuracy")
	}
	if c.TimeToAccuracy(0.1) != -1 {
		t.Fatal("empty campaign should never reach any accuracy")
	}
}

func TestAccuracyCurveClamped(t *testing.T) {
	// A model with absurd anchors must still produce values in [0, 1].
	m := cluster.DNNModel{Name: "toy", IterTime: 0.01, BatchSize: 8,
		TargetAccuracy: 0.999, ConvergeEpochs: 1}
	for _, a := range AccuracyCurve(m, 30, 3) {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy %g out of range", a)
		}
	}
}
