// Package metrics defines the measurement types every experiment reports:
// end-to-end time, cache hit ratio, GPU utilization, load-imbalance
// iteration counts, and batch-time distributions — the quantities behind
// Figures 7, 8, 10 and the Section 5.5 hit-ratio comparison.
package metrics

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Run aggregates the measurements of one simulated training run.
type Run struct {
	Strategy string
	Model    string
	Dataset  string
	Nodes    int
	GPUs     int // per node
	Epochs   int

	// TotalTime is the end-to-end wall time (virtual seconds).
	TotalTime float64
	// TrainTimeTotal is the sum of pure training compute across GPUs.
	TrainTimeTotal float64
	// Iterations is the total number of global iterations executed.
	Iterations int

	// Cache counters aggregated over all nodes.
	CacheHits   uint64
	CacheMisses uint64
	// RemoteHits/PFSFetches split the misses by where the sample came from.
	RemoteHits uint64
	PFSFetches uint64
	// PrefetchedBytes counts bytes moved by prefetching.
	PrefetchedBytes int64

	// ImbalancedIterations counts iterations where the spread of per-GPU
	// data-ready delays exceeded the imbalance threshold (Fig. 8).
	ImbalancedIterations int

	// BatchTimes is the distribution of per-iteration durations (Fig. 8c).
	BatchTimes *stats.Summary

	// StallTotal is the cumulative GPU time spent waiting for data across
	// all GPUs.
	StallTotal float64
}

// HitRatio returns local cache hits over all lookups (Section 5.5's
// "memory cache hit ratio").
func (r *Run) HitRatio() float64 {
	total := r.CacheHits + r.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(total)
}

// GPUUtilization returns the fraction of GPU time spent in the training
// stage (Fig. 10): total training compute over (GPUs × wall time).
func (r *Run) GPUUtilization() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return r.TrainTimeTotal / (r.TotalTime * float64(r.Nodes*r.GPUs))
}

// ImbalanceFraction returns the fraction of iterations with load imbalance.
func (r *Run) ImbalanceFraction() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(r.ImbalancedIterations) / float64(r.Iterations)
}

// Throughput returns samples consumed per virtual second.
func (r *Run) Throughput(samplesPerIteration int) float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(r.Iterations*samplesPerIteration) / r.TotalTime
}

// String renders a one-line summary.
func (r *Run) String() string {
	return fmt.Sprintf("%-10s %-10s %dx%d: time=%8.2fs hit=%5.1f%% util=%5.1f%% imbalanced=%5.1f%%",
		r.Strategy, r.Model, r.Nodes, r.GPUs, r.TotalTime,
		r.HitRatio()*100, r.GPUUtilization()*100, r.ImbalanceFraction()*100)
}

// Speedup returns baseline.TotalTime / r.TotalTime, the convention of
// Figures 7 and 11 ("speedup compared with X").
func (r *Run) Speedup(baseline *Run) float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return baseline.TotalTime / r.TotalTime
}

// Table formats a set of runs as an aligned text table with speedups
// against the first run.
func Table(runs []*Run) string {
	if len(runs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %8s %7s %7s %10s %9s\n",
		"strategy", "time(s)", "speedup", "hit%", "util%", "imbal%", "p95batch")
	base := runs[0]
	for _, r := range runs {
		p95 := 0.0
		if r.BatchTimes != nil {
			p95 = r.BatchTimes.Percentile(95)
		}
		fmt.Fprintf(&b, "%-12s %10.2f %8.2f %7.1f %7.1f %10.1f %9.4f\n",
			r.Strategy, r.TotalTime, r.Speedup(base),
			r.HitRatio()*100, r.GPUUtilization()*100,
			r.ImbalanceFraction()*100, p95)
	}
	return b.String()
}
