package lint

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestRepoIsLintClean is the self-check gate: the committed tree must
// pass its own static analysis. Any intentional exception must carry a
// //lint:allow directive with a justification; everything else is a
// regression.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source file")
	}
	root, err := FindModuleRoot(filepath.Dir(thisFile))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded (%d); loader regression?", len(pkgs))
	}
	findings := Run(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("repo is not lint-clean: %d finding(s); fix them or add //lint:allow <check> <why>", len(findings))
	}
}

// TestLoadModulePackages sanity-checks the stdlib-only loader against
// known packages of this module.
func TestLoadModulePackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source file")
	}
	root, err := FindModuleRoot(filepath.Dir(thisFile))
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for i, p := range pkgs {
		byPath[p.Path] = p
		if i > 0 && pkgs[i-1].Path >= p.Path {
			t.Fatalf("packages not sorted: %s before %s", pkgs[i-1].Path, p.Path)
		}
	}
	for _, want := range []string{"/internal/sim", "/internal/runtime", "/internal/lint", "/cmd/lobster-lint"} {
		p := byPath[modPath+want]
		if p == nil {
			t.Fatalf("package %s%s not loaded", modPath, want)
		}
		if p.Pkg == nil || p.Info == nil || len(p.Files) == 0 {
			t.Fatalf("package %s incompletely loaded", p.Path)
		}
		// Test files must be excluded: the gates police production code.
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if filepath.Base(name) == "selfcheck_test.go" {
				t.Fatalf("test file %s was loaded", name)
			}
		}
	}
	// In-package test files load into their own universe...
	lintPkg := byPath[modPath+"/internal/lint"]
	if len(lintPkg.TestFiles) == 0 || lintPkg.TestPkg == nil || lintPkg.TestInfo == nil {
		t.Fatal("internal/lint test files not loaded into the test universe")
	}
	// ...and external test packages (package foo_test) load as their own
	// *Package with no production files.
	xt := byPath[modPath+"/internal/cache_test"]
	if xt == nil {
		t.Fatal("external test package internal/cache_test not loaded")
	}
	if len(xt.Files) != 0 || len(xt.TestFiles) == 0 {
		t.Fatalf("xtest package shape wrong: %d prod files, %d test files",
			len(xt.Files), len(xt.TestFiles))
	}
}
