package runtime

import (
	"path/filepath"
	"testing"

	"repro/internal/datafile"
	"repro/internal/loader"
)

func TestFileBackedPFS(t *testing.T) {
	opts := testOptions(t, loader.NoPFS(2, 8), 1, 2)
	path := filepath.Join(t.TempDir(), "ds.lobster")
	if err := datafile.Write(path, opts.Dataset, opts.Seed); err != nil {
		t.Fatal(err)
	}
	opts.DataFilePath = path
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(stats.Iterations) * uint64(2*opts.Model.BatchSize)
	if stats.SamplesVerified != want {
		t.Fatalf("verified %d/%d from file-backed PFS", stats.SamplesVerified, want)
	}
	if stats.PFSReads == 0 {
		t.Fatal("no PFS reads recorded")
	}
}

func TestFileBackedPFSRejectsMismatch(t *testing.T) {
	opts := testOptions(t, loader.NoPFS(2, 8), 1, 1)
	path := filepath.Join(t.TempDir(), "wrong.lobster")
	// Write with a different seed: the store must refuse it.
	if err := datafile.Write(path, opts.Dataset, opts.Seed+1); err != nil {
		t.Fatal(err)
	}
	opts.DataFilePath = path
	if _, err := Run(opts); err == nil {
		t.Fatal("mismatched data file accepted")
	}
	opts.DataFilePath = filepath.Join(t.TempDir(), "missing")
	if _, err := Run(opts); err == nil {
		t.Fatal("missing data file accepted")
	}
}
