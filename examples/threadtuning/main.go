// Threadtuning: run the REAL concurrent runtime (goroutine worker pools,
// throttled storage, channel-based distribution manager) and watch
// Lobster's flexible thread manager at work: every decoded tensor is
// verified end to end, and the final thread assignment shows preprocessing
// throttled to its peak-throughput size with the remaining threads spread
// over the per-GPU loading queues.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/runtime"
)

func main() {
	monAddr := flag.String("monitor", "127.0.0.1:0",
		"address for /metrics, /metrics.json, /trace.json, /healthz and pprof")
	flag.Parse()

	fmt.Println("online runtime, 2 nodes x 8 GPUs, Lobster strategy:")
	fmt.Println()
	cfg, err := core.NewConfig(core.Workload{
		Dataset:  "imagenet-1k",
		Scale:    "tiny",
		Model:    "resnet50",
		Nodes:    2,
		Epochs:   2,
		Strategy: "lobster",
	})
	if err != nil {
		log.Fatal(err)
	}
	// Expose live progress over HTTP while the run executes — the
	// observability surface a production deployment would scrape: a
	// Prometheus registry of per-stage instruments, a span ring for
	// Perfetto traces, and the JSON progress snapshot.
	mon, err := monitor.Serve(*monAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	reg := obs.NewRegistry()
	trace := obs.NewTraceRing(8192)
	mon.SetRegistry(reg)
	mon.SetTrace(trace)
	fmt.Printf("live metrics at http://%s/metrics (trace at /trace.json)\n\n", mon.Addr())

	stats, err := runtime.Run(runtime.Options{
		Topology:   cfg.Pipeline.Topology,
		Dataset:    cfg.Pipeline.Dataset,
		Model:      cfg.Pipeline.Model,
		Epochs:     cfg.Pipeline.Epochs,
		Seed:       cfg.Pipeline.Seed,
		Strategy:   cfg.Pipeline.Strategy,
		TimeScale:  0.002, // 500x faster than modeled time
		Obs:        reg,
		Trace:      trace,
		OnProgress: func(p runtime.Progress) { mon.Update(p) },
	})
	if err != nil {
		log.Fatal(err)
	}
	// One last scrape of the instruments, as a monitoring client would
	// see them.
	if resp, err := http.Get("http://" + mon.Addr() + "/metrics"); err == nil {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		_ = resp.Body.Close()
		fmt.Printf("final /metrics scrape (truncated):\n%s...\n\n", body)
	}
	fmt.Printf("trace ring holds %d spans (stall/train per rank, load, preproc, prefetch windows)\n\n", trace.Len())
	fmt.Printf("iterations: %d   wall time: %v\n", stats.Iterations, stats.WallTime)
	fmt.Printf("samples loaded: %d, all verified: %v\n",
		stats.SamplesLoaded, stats.SamplesVerified == stats.SamplesLoaded)
	fmt.Printf("cache hit ratio: %.1f%%   remote hits: %d   PFS reads: %d   prefetched: %d\n",
		stats.HitRatio()*100, stats.RemoteHits, stats.PFSReads, stats.Prefetched)
	fmt.Println()
	for n := range stats.FinalPreprocThreads {
		fmt.Printf("node %d final threads: preprocessing=%d, loading per GPU=%v\n",
			n, stats.FinalPreprocThreads[n], stats.FinalLoadThreads[n])
	}
	fmt.Println()
	fmt.Println("The controller re-runs Algorithm 1 every iteration: preprocessing")
	fmt.Println("is held near its peak-throughput thread count (Observation 3) and")
	fmt.Println("loading threads follow each GPU queue's predicted demand.")
}
