// Command lobster-lint runs the project-specific static-analysis suite
// over the module: determinism gates on the simulation/planning
// packages, goroutine/mutex hygiene on the concurrent runtime, dropped
// errors, and the bounded-queue contract. It is part of the tier-1
// verification gate (see verify.sh).
//
// Usage:
//
//	lobster-lint [-list] [packages]
//
// Packages are module-relative patterns: "./..." (default, the whole
// module), "./internal/..." (a subtree), or "./internal/sim" (one
// package). Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lobster-lint [-list] [packages]\n\n"+
			"Project static analysis: %d checks over every non-test package.\n", len(lint.Analyzers()))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.ID, a.Doc)
		}
		return
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	modPath, err := lint.ModulePath(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err = filterPackages(pkgs, modPath, flag.Args())
	if err != nil {
		fatal(err)
	}

	findings := lint.Run(pkgs, lint.Analyzers())
	for _, f := range findings {
		fmt.Println(f)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "lobster-lint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}

// filterPackages keeps packages matching the command-line patterns
// ("./...", "./internal/...", "./internal/sim"). With no patterns
// everything is kept. A pattern that matches no package is an error —
// a typo'd path must not pass as a clean run.
func filterPackages(pkgs []*lint.Package, modPath string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	match := func(rel, pat string) bool {
		pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
		if pat == "..." || pat == "." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			return rel == sub || strings.HasPrefix(rel, sub+"/")
		}
		return rel == pat
	}
	matched := make([]bool, len(patterns))
	var out []*lint.Package
	for _, p := range pkgs {
		// Module-relative path of the package ("" for the root package).
		rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, modPath), "/")
		keep := false
		for i, pat := range patterns {
			if match(rel, pat) {
				matched[i] = true
				keep = true
			}
		}
		if keep {
			out = append(out, p)
		}
	}
	for i, pat := range patterns {
		if !matched[i] {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-lint:", err)
	os.Exit(2)
}
