package cache

import (
	"testing"

	"repro/internal/access"
	"repro/internal/dataset"
	"repro/internal/sampler"
)

// replayHitRatio replays a node's full demand access stream against a
// cache and returns the hit ratio. Misses are inserted after the access
// (demand caching, no prefetch) — a policy-only comparison.
func replayHitRatio(t *testing.T, policy Policy, s *sampler.Schedule, plan *access.Plan, epochs int, capacity int64) float64 {
	t.Helper()
	c, err := New(capacity, policy)
	if err != nil {
		t.Fatal(err)
	}
	ds := s.Dataset()
	var batch []dataset.SampleID
	for epoch := 0; epoch < epochs; epoch++ {
		for it := 0; it < s.IterationsPerEpoch(); it++ {
			now := Iter(epoch*s.IterationsPerEpoch() + it)
			batch = s.NodeBatch(batch[:0], epoch, it, 0, 1)
			for _, id := range batch {
				if !c.Get(id, now) {
					c.Put(id, ds.Size(id), now)
				}
			}
			c.Maintain(now)
		}
	}
	return c.Stats().HitRatio()
}

func TestPolicyHitRatioOrdering(t *testing.T) {
	// One node, one GPU, cache holding ~30% of the dataset (the paper's
	// 40 GB / 135 GB ratio). Expected ordering on demand replay:
	// Belady >= Lobster >= LRU, and Belady >= FIFO.
	ds, err := dataset.Generate(dataset.Spec{
		Name: "cmp", NumSamples: 2000, MeanSize: 1000, SigmaLog: 0.3, Classes: 2, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(ds, sampler.Config{WorldSize: 1, BatchSize: 20, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 6
	plan, err := access.Build(s, 0, 1, epochs, 0)
	if err != nil {
		t.Fatal(err)
	}
	capacity := ds.TotalBytes() * 30 / 100

	hr := map[string]float64{}
	hr["lru"] = replayHitRatio(t, NewLRU(), s, plan, epochs, capacity)
	hr["fifo"] = replayHitRatio(t, NewFIFO(), s, plan, epochs, capacity)
	hr["belady"] = replayHitRatio(t, NewBelady(plan), s, plan, epochs, capacity)
	hr["lobster"] = replayHitRatio(t, NewLobster(plan, LobsterOptions{}), s, plan, epochs, capacity)
	hr["nopfs"] = replayHitRatio(t, NewNoPFS(plan), s, plan, epochs, capacity)

	t.Logf("hit ratios: %v", hr)
	if hr["belady"] < hr["lru"] || hr["belady"] < hr["fifo"] || hr["belady"] < hr["nopfs"] {
		t.Errorf("Belady not the upper bound: %v", hr)
	}
	if hr["lobster"] < hr["lru"] {
		t.Errorf("Lobster below LRU on demand replay: %v", hr)
	}
	if hr["belady"]+1e-9 < hr["lobster"] {
		t.Errorf("Lobster above Belady, impossible: %v", hr)
	}
	// All policies must see identical access counts.
	if hr["lru"] <= 0 || hr["lru"] >= 1 {
		t.Errorf("degenerate LRU hit ratio %g", hr["lru"])
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Spec{
		Name: "cap", NumSamples: 500, MeanSize: 1000, SigmaLog: 0.5, Classes: 2, Seed: 5,
	})
	s, _ := sampler.New(ds, sampler.Config{WorldSize: 1, BatchSize: 10, Seed: 5})
	plan, _ := access.Build(s, 0, 1, 3, 0)
	for _, mk := range []func() Policy{
		NewLRU, NewFIFO, NewNeverEvict,
		func() Policy { return NewBelady(plan) },
		func() Policy { return NewLobster(plan, LobsterOptions{}) },
		func() Policy { return NewNoPFS(plan) },
	} {
		p := mk()
		c, _ := New(ds.TotalBytes()/5, p)
		var batch []dataset.SampleID
		for epoch := 0; epoch < 3; epoch++ {
			for it := 0; it < s.IterationsPerEpoch(); it++ {
				now := Iter(epoch*s.IterationsPerEpoch() + it)
				batch = s.NodeBatch(batch[:0], epoch, it, 0, 1)
				for _, id := range batch {
					if !c.Get(id, now) {
						c.Put(id, ds.Size(id), now)
					}
					if c.Used() > c.Capacity() {
						t.Fatalf("%s: used %d > capacity %d", p.Name(), c.Used(), c.Capacity())
					}
					if c.Used() < 0 {
						t.Fatalf("%s: negative used %d", p.Name(), c.Used())
					}
				}
				c.Maintain(now)
			}
		}
	}
}
