package repro

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/pipeline"
)

// ablationWorkload builds the single-node ImageNet-1K workload all design
// ablations run on.
func ablationWorkload(b *testing.B) (cluster.Topology, cluster.DNNModel, *dataset.Dataset) {
	b.Helper()
	spec := dataset.ImageNet1K(benchScale(b), 42)
	min := 12 * 8 * 32
	if spec.NumSamples < min {
		spec.NumSamples = min
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	top := cluster.ThetaGPULike(1, ds.TotalBytes()*30/100)
	model, err := cluster.ModelByName("resnet50")
	if err != nil {
		b.Fatal(err)
	}
	return top, model, ds
}

func runSpec(b *testing.B, top cluster.Topology, model cluster.DNNModel, ds *dataset.Dataset, spec loader.Spec) *pipeline.Result {
	b.Helper()
	res, err := pipeline.Run(pipeline.Config{
		Topology: top, Model: model, Dataset: ds, Epochs: 6, Seed: 42, Strategy: spec,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblEviction sweeps the eviction policy under otherwise-fixed
// Lobster mechanics (DESIGN.md ablation 3): how much of the win is the
// reuse-based policy vs. LRU/FIFO/page-cache/NoPFS, with the clairvoyant
// Belady policy as the ceiling. Reported metrics are cache hit ratios.
func BenchmarkAblEviction(b *testing.B) {
	top, model, ds := ablationWorkload(b)
	policies := []struct {
		name string
		kind loader.PolicyKind
	}{
		{"fifo", loader.PolicyFIFO},
		{"lru", loader.PolicyLRU},
		{"pagecache", loader.PolicyPageCache},
		{"nopfs", loader.PolicyNoPFS},
		{"lobster", loader.PolicyLobster},
		{"belady", loader.PolicyBelady},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range policies {
			spec := loader.Lobster()
			spec.Name = "lobster+" + p.name
			spec.Policy = p.kind
			res := runSpec(b, top, model, ds, spec)
			if i == b.N-1 {
				b.ReportMetric(res.Metrics.HitRatio(), p.name+"Hit")
			}
		}
	}
}

// BenchmarkAblQueues compares the multi-queue design of Section 4.2
// (a request queue per GPU) against a single shared loading pool with the
// same total thread count (DESIGN.md ablation 4). The reported metric is
// the end-to-end time ratio shared/perGPU — above 1 means per-GPU queues
// win.
func BenchmarkAblQueues(b *testing.B) {
	top, model, ds := ablationWorkload(b)
	perGPU := loader.NoPFS(top.GPUsPerNode, top.CPUThreads) // per-GPU static queues
	shared := perGPU
	shared.Name = "nopfs_sharedpool"
	shared.Mode = loader.ThreadsSharedPool
	shared.SharedLoading = perGPU.LoadingPerGPU * top.GPUsPerNode
	shared.LoadingPerGPU = 0

	var ratio float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := runSpec(b, top, model, ds, perGPU)
		s := runSpec(b, top, model, ds, shared)
		ratio = s.Metrics.TotalTime / a.Metrics.TotalTime
	}
	b.StopTimer()
	b.ReportMetric(ratio, "sharedOverPerGPU")
}

// BenchmarkAblPrefetchDepth sweeps the clairvoyant lookahead (DESIGN.md
// ablation on prefetching): demand-only, shallow, and deep windows under
// the Lobster policy.
func BenchmarkAblPrefetchDepth(b *testing.B) {
	top, model, ds := ablationWorkload(b)
	depths := []int{0, 2, 8, 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range depths {
			spec := loader.Lobster()
			spec.PrefetchDepth = d
			res := runSpec(b, top, model, ds, spec)
			if i == b.N-1 {
				b.ReportMetric(res.Metrics.HitRatio(), "hitAtDepth"+itoa(d))
			}
		}
	}
}

// BenchmarkAblPipelineDepth sweeps how far the loading pipeline may run
// ahead of training (double-buffering depth).
func BenchmarkAblPipelineDepth(b *testing.B) {
	top, model, ds := ablationWorkload(b)
	var times []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		times = times[:0]
		for _, depth := range []int{1, 2, 4} {
			res, err := pipeline.Run(pipeline.Config{
				Topology: top, Model: model, Dataset: ds, Epochs: 6, Seed: 42,
				Strategy: loader.Lobster(), PipelineDepth: depth,
			})
			if err != nil {
				b.Fatal(err)
			}
			times = append(times, res.Metrics.TotalTime)
		}
	}
	b.StopTimer()
	b.ReportMetric(times[0]/times[1], "depth1Over2")
	b.ReportMetric(times[2]/times[1], "depth4Over2")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblDecideFrequency sweeps how often Lobster re-runs its thread
// manager (Section 4.1's overhead-vs-adaptivity trade-off). The reported
// metrics are the slowdown relative to per-iteration decisions.
func BenchmarkAblDecideFrequency(b *testing.B) {
	top, model, ds := ablationWorkload(b)
	var times []float64
	freqs := []int{1, 4, 16, 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		times = times[:0]
		for _, every := range freqs {
			res, err := pipeline.Run(pipeline.Config{
				Topology: top, Model: model, Dataset: ds, Epochs: 6, Seed: 42,
				Strategy: loader.Lobster(), DecideEvery: every,
			})
			if err != nil {
				b.Fatal(err)
			}
			times = append(times, res.Metrics.TotalTime)
		}
	}
	b.StopTimer()
	for i, every := range freqs[1:] {
		b.ReportMetric(times[i+1]/times[0], "slowdownEvery"+itoa(every))
	}
}
