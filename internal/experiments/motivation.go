package experiments

import (
	"repro/internal/access"
	"repro/internal/loader"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/preproc"
	"repro/internal/sampler"
	"repro/internal/trace"
)

// Fig03Breakdown reproduces Figure 3: the per-iteration execution-time
// breakdown of the DALI-based pipeline on three GPUs (two co-located, one
// on another node), sliced from the beginning/middle/end of the second
// epoch, plus the Section 3 statistics (imbalance in 65.3% of iterations,
// bottleneck shifts).
func Fig03Breakdown() Experiment {
	return Experiment{
		ID:    "fig03",
		Title: "Execution time breakdown of the training pipeline (DALI, ResNet50, ImageNet-1K, 8x8 GPUs)",
		Paper: "load imbalance in 65.3% of iterations; bottleneck shifts between loading and training",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 64)
			if err != nil {
				return nil, err
			}
			top := topology(8, ds, CacheRatio1K/8) // paper ratio split across 8 nodes
			cfg := baseConfig(p, top, ds, resnet50(), loader.DALI(top.CPUThreads))
			cfg.CollectTrace = true
			cfg.MaxTraceIters = 1 << 20
			res, err := pipeline.Run(cfg)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig03", Title: "Pipeline breakdown (Fig. 3)"}

			// The three displayed GPUs: GPU0/GPU1 of node 0, GPU0 of node 1.
			gpus := []int{0, 1, top.GPUsPerNode}
			epoch := 1 // second epoch, as in the paper (cache warmed)
			slice := trace.Slice(res.Trace, epoch, 8)
			rep.Lines = append(rep.Lines, splitLines(trace.Render(slice, gpus, 120))...)

			full := filterEpochOnward(res.Trace, 1) // exclude warm-up epoch
			st := trace.Analyze(full, cfg.Model.IterTime, 1.0)
			rep.Printf("iterations analysed (epochs >= 2): %d", st.Iterations)
			rep.Printf("iterations with load imbalance: %.1f%% (paper: 65.3%%)", st.ImbalancedFrac*100)
			rep.Printf("(iteration,GPU) pairs where loading > training: %.1f%%", st.LoadBottleneckFrac*100)
			rep.Printf("bottleneck shifts between consecutive iterations: %d", st.BottleneckShifts)
			rep.Printf("mean GPU idle fraction per iteration: %.1f%%", st.MeanIdleFrac*100)
			rep.Set("imbalanced_frac", st.ImbalancedFrac)
			rep.Set("load_bottleneck_frac", st.LoadBottleneckFrac)
			rep.Set("bottleneck_shifts", float64(st.BottleneckShifts))
			return rep, nil
		},
	}
}

func filterEpochOnward(recs []pipeline.IterRecord, epoch int) []pipeline.IterRecord {
	var out []pipeline.IterRecord
	for _, r := range recs {
		if r.Epoch >= epoch {
			out = append(out, r)
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// Fig04ReuseDistance reproduces Figure 4: the histogram of reuse distances
// (in iterations) of the training samples accessed by one node, with the
// headline fraction of samples whose reuse distance exceeds an epoch-plus
// horizon ("80% of the training samples have the reuse distance larger
// than 1,000 iterations" — 1,000 iterations is ~1.6 epochs at the paper's
// scale, so the scale-free quantity is the fraction beyond 1.6·I).
func Fig04ReuseDistance() Experiment {
	return Experiment{
		ID:    "fig04",
		Title: "Reuse-distance histogram of training samples (node 1 of 8)",
		Paper: "~80% of samples have reuse distance > 1000 iterations (~1.6 epochs)",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 64)
			if err != nil {
				return nil, err
			}
			top := topology(8, ds, CacheRatio1K/8)
			model := resnet50()
			sched, err := sampler.New(ds, sampler.Config{
				WorldSize: top.WorldSize(), BatchSize: model.BatchSize, Seed: p.Seed,
			})
			if err != nil {
				return nil, err
			}
			// Reuse distances on one node of eight average ~8 epochs, so
			// the histogram needs a horizon well past that; short horizons
			// truncate the long tail the paper's claim is about.
			epochs := p.epochs()
			if epochs < 24 {
				epochs = 24
			}
			plan, err := access.Build(sched, 1, top.GPUsPerNode, epochs, 0)
			if err != nil {
				return nil, err
			}
			hist, err := plan.ReuseDistanceHistogram(16)
			if err != nil {
				return nil, err
			}
			rep := &Report{ID: "fig04", Title: "Reuse distance histogram (Fig. 4)"}
			rep.Lines = append(rep.Lines, splitLines(hist.Render(48))...)
			iters := float64(sched.IterationsPerEpoch())
			fracLong := hist.FractionAbove(1.6 * iters)
			mean, pairs := plan.MeanReuseDistance()
			rep.Printf("iterations per epoch I = %.0f", iters)
			rep.Printf("fraction with reuse distance > 1.6*I: %.1f%% (paper: ~80%%)", fracLong*100)
			rep.Printf("mean reuse distance: %.0f iterations (%.1f epochs) over %d reuse pairs",
				mean, mean/iters, pairs)
			rep.Set("frac_long", fracLong)
			rep.Set("mean_reuse_epochs", mean/iters)
			return rep, nil
		},
	}
}

// Fig06PreprocThreads reproduces Figure 6: preprocessing throughput as a
// function of thread count — rising to a peak (~6 threads), then flat to
// slightly declining. It reports both the calibrated roofline model and a
// live measurement of the real decode/augment kernels through the worker
// pool (the latter is hardware-dependent; on a single-core CI box it is
// flat by construction and reported only for reference).
func Fig06PreprocThreads() Experiment {
	return Experiment{
		ID:    "fig06",
		Title: "Preprocessing throughput vs thread count",
		Paper: "throughput peaks at ~6 threads, then flattens and slightly degrades",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			model := preproc.DefaultModel()
			rep := &Report{ID: "fig06", Title: "Preprocessing threads vs throughput (Fig. 6)"}
			peakN := model.PeakThreads(16)
			peak := model.Throughput(peakN)
			rep.Printf("%7s %14s %8s", "threads", "MB/s (model)", "bar")
			for n := 1; n <= 16; n++ {
				tp := model.Throughput(n)
				rep.Printf("%7d %14.0f %s", n, tp, barOf(tp/peak, 40))
			}
			rep.Printf("peak at %d threads (paper: ~6)", peakN)
			rep.Set("peak_threads", float64(peakN))
			rep.Set("peak_mbps", peak)
			rep.Set("degradation_at_16", 1-model.Throughput(16)/peak)

			// Per-sample time predictions from the fitted portfolio (the
			// planner-side view of the same curve).
			portfolio, err := perfmodel.FitPortfolio(p.Pool, []int64{105 << 10}, 16, 6,
				func(size int64, threads int) float64 { return model.Time(size, threads) })
			if err != nil {
				return nil, err
			}
			rep.Printf("fitted portfolio peak threads for 105 KB samples: %d",
				portfolio.PeakThreads(105<<10, 16))
			return rep, nil
		},
	}
}

func barOf(frac float64, width int) string {
	n := int(frac * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
