package doctor

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseMetrics(t *testing.T) {
	text := `# HELP lobster_kvstore_ops_total ops served
# TYPE lobster_kvstore_ops_total counter
lobster_kvstore_ops_total{shard="0",op="get"} 10
lobster_kvstore_ops_total{shard="1",op="get"} 32 1700000000000
lobster_runtime_load_imbalance 1.75
escaped{msg="a \"b\" c\nd\\e"} 1
`
	m, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Sum("lobster_kvstore_ops_total", nil); got != 42 {
		t.Errorf("Sum(ops_total) = %v, want 42", got)
	}
	if got := m.Sum("lobster_kvstore_ops_total", map[string]string{"shard": "1"}); got != 32 {
		t.Errorf("Sum(ops_total, shard=1) = %v, want 32 (timestamp mishandled?)", got)
	}
	if v, ok := m.Value("lobster_runtime_load_imbalance", nil); !ok || v != 1.75 {
		t.Errorf("Value(load_imbalance) = %v,%v want 1.75,true", v, ok)
	}
	if got := m.LabelValues("lobster_kvstore_ops_total", "shard"); len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Errorf("LabelValues(shard) = %v, want [0 1]", got)
	}
	if v, ok := m.Value("escaped", map[string]string{"msg": "a \"b\" c\nd\\e"}); !ok || v != 1 {
		t.Errorf("escaped label round-trip failed: %v,%v", v, ok)
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	if _, err := ParseMetrics(strings.NewReader("not a metric line at all\n")); err == nil {
		t.Fatal("want error on malformed exposition text")
	}
}

// stall builds one attribution span the way the ledger flush emits it.
func stall(cause string, pid int, iter, rank, durUS float64) TraceEvent {
	return TraceEvent{
		Name: cause, Cat: "stall", Ph: "X", Pid: pid, Dur: durUS,
		Args: map[string]float64{"iter": iter, "rank": rank},
	}
}

func TestDiagnoseWindowBlamesExcess(t *testing.T) {
	tr := &Trace{}
	for iter := 0; iter < 10; iter++ {
		// Constant background: decode queueing dwarfs everything in
		// absolute seconds but has zero excess over baseline.
		tr.Events = append(tr.Events, stall("decode_wait", 0, float64(iter), 0, 5000))
		tr.Events = append(tr.Events, stall("pfs", 0, float64(iter), 0, 100))
	}
	// The fault: pfs surges only in iters [4,7).
	for iter := 4; iter < 7; iter++ {
		tr.Events = append(tr.Events, stall("pfs", 0, float64(iter), 0, 2000))
	}
	if got := tr.TopCauseInWindow(4, 7); got != "pfs" {
		t.Errorf("TopCauseInWindow(4,7) = %q, want pfs\ndiag: %+v", got, tr.DiagnoseWindow(4, 7))
	}
	diag := tr.DiagnoseWindow(4, 7)
	for _, wc := range diag {
		if wc.Cause == "decode_wait" && wc.ExcessPerIter != 0 {
			t.Errorf("constant background decode_wait has excess %v, want 0", wc.ExcessPerIter)
		}
	}
	if got := tr.TopCauseInWindow(0, 4); got == "pfs" {
		t.Errorf("healthy window blamed pfs; diag: %+v", tr.DiagnoseWindow(0, 4))
	}
}

func TestTopCauseFallsBackToPipeline(t *testing.T) {
	tr := &Trace{}
	for iter := 0; iter < 6; iter++ {
		dur := 100.0
		if iter >= 3 {
			dur = 5000 // queueing regression with no data-path movement
		}
		tr.Events = append(tr.Events, stall("queue_wait", 0, float64(iter), 0, dur))
	}
	if got := tr.TopCauseInWindow(3, 6); got != "queue_wait" {
		t.Errorf("TopCauseInWindow = %q, want queue_wait when only pipeline causes moved", got)
	}
}

func TestMergeRemapsCollidingPids(t *testing.T) {
	a := &Trace{
		Events:    []TraceEvent{stall("pfs", 4242, 1, 0, 10)},
		Processes: map[int]string{4242: "node0"},
	}
	b := &Trace{
		Events:    []TraceEvent{stall("pfs", 4242, 1, 1, 10)},
		Processes: map[int]string{4242: "node1"},
	}
	m := Merge(a, b)
	if len(m.Events) != 2 || len(m.Processes) != 2 {
		t.Fatalf("merged %d events / %d processes, want 2/2", len(m.Events), len(m.Processes))
	}
	if m.Events[0].Pid == m.Events[1].Pid {
		t.Errorf("colliding pids not remapped: both %d", m.Events[0].Pid)
	}
	names := map[string]bool{}
	for _, n := range m.Processes {
		names[n] = true
	}
	if !names["node0"] || !names["node1"] {
		t.Errorf("process names lost in merge: %v", m.Processes)
	}
}

// metricsFixture is a scrape with rank 2 a clear straggler (load time
// 3.0s vs 0.5s for its peers) whose dominant cause is peer_fetch.
const metricsFixture = `lobster_runtime_stall_local_hit_seconds_sum{rank="0"} 0.4
lobster_runtime_stall_local_hit_seconds_sum{rank="1"} 0.4
lobster_runtime_stall_local_hit_seconds_sum{rank="2"} 0.5
lobster_runtime_stall_local_hit_seconds_sum{rank="3"} 0.4
lobster_runtime_stall_pfs_seconds_sum{rank="0"} 0.1
lobster_runtime_stall_pfs_seconds_sum{rank="1"} 0.1
lobster_runtime_stall_pfs_seconds_sum{rank="2"} 0.2
lobster_runtime_stall_pfs_seconds_sum{rank="3"} 0.1
lobster_runtime_stall_peer_fetch_seconds_sum{rank="2"} 2.3
lobster_runtime_stall_decode_wait_seconds_sum{rank="0"} 0.3
lobster_runtime_stall_recovery_seconds_sum{rank="2"} 0.05
lobster_runtime_load_imbalance 2.4
lobster_runtime_iters_per_epoch 8
lobster_runtime_failover_total 5
lobster_kvstore_hedge_fired_total 10
lobster_kvstore_hedge_won_total 7
`

func TestAnalyzeAndReport(t *testing.T) {
	m, err := ParseMetrics(strings.NewReader(metricsFixture))
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	for rank := 0; rank < 4; rank++ {
		for iter := 0; iter < 16; iter++ {
			dur := 100.0
			if rank == 2 {
				dur = 400
			}
			tr.Events = append(tr.Events, stall("local_hit", 0, float64(iter), float64(rank), dur))
		}
	}
	rep := Analyze(m, tr)

	if len(rep.Ranks) != 4 {
		t.Fatalf("report covers %d ranks, want 4", len(rep.Ranks))
	}
	if got := rep.Stragglers; len(got) != 1 || got[0] != 2 {
		t.Errorf("Stragglers = %v, want [2]", got)
	}
	if len(rep.TopCauses) == 0 || rep.TopCauses[0].Cause != "peer_fetch" {
		t.Errorf("TopCauses = %+v, want peer_fetch first", rep.TopCauses)
	}
	if rep.Imbalance != 2.4 {
		t.Errorf("Imbalance = %v, want 2.4", rep.Imbalance)
	}
	// 16 iters at 8 per epoch -> two epoch rows, rank 2 maxing both at
	// 400/175 coefficient.
	if len(rep.EpochImbalance) != 2 {
		t.Fatalf("EpochImbalance rows = %d, want 2", len(rep.EpochImbalance))
	}
	for _, ei := range rep.EpochImbalance {
		if ei.MaxRank != 2 {
			t.Errorf("epoch %d max rank = %d, want 2", ei.Epoch, ei.MaxRank)
		}
		want := 400.0 / 175.0
		if diff := ei.Coefficient - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("epoch %d coefficient = %v, want %v", ei.Epoch, ei.Coefficient, want)
		}
	}
	if rep.Failovers != 5 || rep.HedgesFired != 10 || rep.HedgesWon != 7 {
		t.Errorf("recovery counters = %v/%v/%v, want 5/10/7",
			rep.Failovers, rep.HedgesFired, rep.HedgesWon)
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"1. peer_fetch",
		"Stragglers",
		"ranks [2]",
		"Load imbalance",
		"epoch 1:",
		"hedged reads: 10 fired, 7 won (70% efficacy)",
		"failovers: 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeEmptyInputs(t *testing.T) {
	rep := Analyze(nil, nil)
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no stall attribution found") {
		t.Errorf("empty report should say what to scrape:\n%s", buf.String())
	}
}
