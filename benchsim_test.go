package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/par"
)

// TestBenchSimJSON is the simulation-benchmark recording harness behind
// `make bench-sim`.
//
// Default (no env) it is a CI-safe smoke test: it validates the schema of
// the committed BENCH_sim.json — every entry carries a name and positive
// timing, the seed baseline is present, and the headline block is
// internally consistent — so a malformed regeneration fails `go test ./...`
// without burning benchmark time.
//
// With LOBSTER_BENCH_SIM=1 it reruns the representative figure benchmarks
// (fig07a, tab-hitratio, fig10) and the multi-campaign sweep fan-out bench
// (fig07d serial and at GOMAXPROCS workers) via testing.Benchmark at tiny
// scale, and rewrites BENCH_sim.json at the repository root with wall time,
// ns/op, B/op and allocs/op next to the committed pre-rework baseline.
func TestBenchSimJSON(t *testing.T) {
	if os.Getenv("LOBSTER_BENCH_SIM") == "" {
		benchSimSmoke(t)
		return
	}
	benchSimFull(t)
}

// simEntry is one benchmark row in BENCH_sim.json.
type simEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	WallSeconds float64 `json:"wall_seconds"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// simFile is the schema of BENCH_sim.json.
type simFile struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Scale     string `json:"scale"`
	Note      string `json:"note"`
	// SeedBaseline is the pre-rework iteration hot path (map-backed cache
	// and policy state, slice-of-slices access plans, per-iteration slice
	// churn, serial campaigns) measured at commit 308c3ed with the same
	// workloads on the same machine as the rest of this file.
	SeedBaseline []simEntry `json:"seed_baseline"`
	Results      []simEntry `json:"results"`
	Headline     struct {
		SweepBaselineNs   float64 `json:"sweep_baseline_ns"`
		SweepNs           float64 `json:"sweep_ns"`
		SweepSpeedup      float64 `json:"sweep_speedup"`
		Fig07aAllocsDrop  float64 `json:"fig07a_allocs_drop"`
		Fig07aTimeSpeedup float64 `json:"fig07a_time_speedup"`
	} `json:"headline"`
}

// simSeedBaseline holds the commit-308c3ed measurements (tiny scale,
// -benchtime 3x, Go 1.24, one CPU). The sweep row is BenchmarkFig07d
// Scalability, which at that commit ran its eight campaigns serially —
// the baseline the sweep fan-out benches compare against.
var simSeedBaseline = []simEntry{
	{Name: "fig07a", NsPerOp: 21110339, BytesPerOp: 5220973, AllocsPerOp: 150674},
	{Name: "tab-hitratio", NsPerOp: 21663626, BytesPerOp: 5218504, AllocsPerOp: 150625},
	{Name: "fig10", NsPerOp: 147944876, BytesPerOp: 31046074, AllocsPerOp: 896313},
	{Name: "sweep-fig07d", NsPerOp: 641804862, BytesPerOp: 110873914, AllocsPerOp: 2855325},
}

func benchSimSmoke(t *testing.T) {
	root, err := simRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(root, "BENCH_sim.json"))
	if err != nil {
		t.Fatalf("BENCH_sim.json missing (regenerate with `make bench-sim`): %v", err)
	}
	var f simFile
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatalf("BENCH_sim.json does not parse: %v", err)
	}
	if f.Generated == "" || f.GoVersion == "" || f.NumCPU < 1 || f.Scale == "" {
		t.Fatalf("BENCH_sim.json header incomplete: %+v", f)
	}
	if len(f.SeedBaseline) == 0 || len(f.Results) == 0 {
		t.Fatalf("BENCH_sim.json needs both seed_baseline (%d) and results (%d)",
			len(f.SeedBaseline), len(f.Results))
	}
	names := map[string]bool{}
	for _, e := range append(append([]simEntry{}, f.SeedBaseline...), f.Results...) {
		if e.Name == "" || e.NsPerOp <= 0 || e.AllocsPerOp < 0 || e.BytesPerOp < 0 {
			t.Fatalf("malformed entry: %+v", e)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"fig07a", "tab-hitratio", "fig10", "sweep-serial", "sweep-parallel"} {
		if !names[want] {
			t.Fatalf("BENCH_sim.json missing required entry %q", want)
		}
	}
	h := f.Headline
	if h.SweepBaselineNs <= 0 || h.SweepNs <= 0 || h.SweepSpeedup <= 0 {
		t.Fatalf("headline incomplete: %+v", h)
	}
	if got := h.SweepBaselineNs / h.SweepNs; got/h.SweepSpeedup > 1.01 || h.SweepSpeedup/got > 1.01 {
		t.Fatalf("headline sweep_speedup %.3f inconsistent with %.0f/%.0f",
			h.SweepSpeedup, h.SweepBaselineNs, h.SweepNs)
	}
}

// benchSim runs one experiment under testing.Benchmark, optionally fanning
// its campaigns out over a pool.
func benchSim(t *testing.T, name, id string, pool *par.Pool) simEntry {
	t.Helper()
	var failed error
	r := testing.Benchmark(func(b *testing.B) {
		exp, err := experiments.ByID(id)
		if err != nil {
			failed = err
			b.Skip()
		}
		params := experiments.Params{Scale: dataset.ScaleTiny, Seed: 42, Pool: pool}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := exp.Run(params); err != nil {
				failed = err
				b.Skip()
			}
		}
	})
	if failed != nil {
		t.Fatalf("bench %s: %v", name, failed)
	}
	if r.N == 0 {
		t.Fatalf("bench %s: no iterations", name)
	}
	e := simEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		WallSeconds: r.T.Seconds(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	t.Logf("%-16s %12.1f ms/op  %10d B/op  %9d allocs/op",
		name, e.NsPerOp/1e6, e.BytesPerOp, e.AllocsPerOp)
	return e
}

func benchSimFull(t *testing.T) {
	width := goruntime.GOMAXPROCS(0)
	var pool *par.Pool
	if width > 1 {
		pool = par.NewPool(width)
	}
	entries := []simEntry{
		benchSim(t, "fig07a", "fig07a", nil),
		benchSim(t, "tab-hitratio", "tab-hitratio", nil),
		benchSim(t, "fig10", "fig10", nil),
		benchSim(t, "sweep-serial", "fig07d", nil),
		benchSim(t, "sweep-parallel", "fig07d", pool),
	}

	var out simFile
	out.Generated = time.Now().UTC().Format(time.RFC3339)
	out.GoVersion = goruntime.Version()
	out.NumCPU = goruntime.NumCPU()
	out.Scale = "tiny"
	out.Note = fmt.Sprintf("sweep-* runs the fig07d 8-campaign sweep; "+
		"sweep-parallel fans out over %d workers (GOMAXPROCS) and can only "+
		"beat sweep-serial on a multi-core box; reported figure values are "+
		"identical across all variants by construction", width)
	out.SeedBaseline = simSeedBaseline
	out.Results = entries

	best := entries[3] // sweep-serial
	if entries[4].NsPerOp < best.NsPerOp {
		best = entries[4]
	}
	out.Headline.SweepBaselineNs = simSeedBaseline[3].NsPerOp
	out.Headline.SweepNs = best.NsPerOp
	out.Headline.SweepSpeedup = out.Headline.SweepBaselineNs / best.NsPerOp
	out.Headline.Fig07aAllocsDrop = float64(simSeedBaseline[0].AllocsPerOp) / float64(entries[0].AllocsPerOp)
	out.Headline.Fig07aTimeSpeedup = simSeedBaseline[0].NsPerOp / entries[0].NsPerOp
	t.Logf("headline: sweep %.2fx vs seed, fig07a %.2fx time / %.0fx allocs",
		out.Headline.SweepSpeedup, out.Headline.Fig07aTimeSpeedup, out.Headline.Fig07aAllocsDrop)

	root, err := simRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "BENCH_sim.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
	if out.Headline.SweepSpeedup < 2 {
		t.Logf("WARNING: sweep speedup %.2fx below the 2x target; box may be loaded or single-core",
			out.Headline.SweepSpeedup)
	}
}

// simRepoRoot walks up from the working directory to the module root.
func simRepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
