package pipeline

import (
	"testing"

	"repro/internal/loader"
)

func TestDecideEveryReducesAdaptivity(t *testing.T) {
	every1, err := Run(testConfig(t, loader.Lobster(), 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, loader.Lobster(), 4)
	cfg.DecideEvery = 32
	every32, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Infrequent decisions must not be faster than per-iteration ones
	// (beyond noise), and both must complete correctly.
	if every32.Metrics.TotalTime < every1.Metrics.TotalTime*0.97 {
		t.Fatalf("stale decisions faster than fresh ones: %.2f vs %.2f",
			every32.Metrics.TotalTime, every1.Metrics.TotalTime)
	}
	if every32.Metrics.Iterations != every1.Metrics.Iterations {
		t.Fatal("iteration counts differ")
	}
}
