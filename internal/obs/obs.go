// Package obs is the live instrumentation layer: a named registry of
// atomic counters, gauges and lock-striped latency histograms, plus a
// bounded span recorder that exports Chrome trace-event JSON
// (trace.go). The paper's whole argument rests on seeing where time
// goes — Fig. 3's per-stage breakdown, Fig. 8's imbalance counts,
// §5.5's hit ratios — and this package gives the online runtime and the
// kvstore the per-stage visibility those figures need, while a run is
// in flight rather than after it.
//
// Design constraints, in order:
//
//   - Stdlib only. The exposition endpoint speaks the Prometheus text
//     format (prometheus.go) so any stock scraper works, but nothing
//     here imports anything beyond the standard library and
//     internal/stats.
//   - Allocation-free on the hot path. Recording — Counter.Add,
//     Gauge.Set, Histogram.Observe, TraceRing.Span — never allocates.
//     All allocation happens at registration time or at scrape time.
//   - Near-zero cost when disabled. Every instrument checks one shared
//     atomic flag (plus a nil-receiver check, so un-instrumented code
//     paths need no conditionals); a disabled registry costs a couple
//     of predictable branches per call. BENCH_obs.json records the
//     measured overhead on the runtime iteration hot path.
//
// Naming convention: every instrument is lobster_<component>_<metric>
// (e.g. lobster_runtime_pfs_reads_total); counters end in _total,
// histograms in _seconds or _bytes. lobster-lint's obsnaming check
// enforces this at the call site.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Instrument family types, as emitted in Prometheus # TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry is a named set of instruments. Registration (Counter, Gauge,
// Histogram, ...) is idempotent: asking for an already-registered
// name+label series returns the existing instrument, so per-run setup
// code can re-register against a long-lived registry. A registry is
// enabled at creation; SetEnabled(false) turns every owned instrument
// into a near-free no-op without detaching it.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	families map[string]*family
}

// family groups every label-series registered under one metric name.
type family struct {
	name   string
	help   string
	typ    string
	series []*series
	byKey  map[string]*series
}

// series is one (name, labels) instrument instance.
type series struct {
	labels  string // rendered {k="v",...}, or ""
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc / GaugeFunc callback
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.enabled.Store(true)
	return r
}

// SetEnabled flips recording for every instrument owned by the
// registry. Disabled instruments drop observations; callbacks
// (GaugeFunc/CounterFunc) are still evaluated at scrape time.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is recording.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// Counter registers (or returns the existing) monotonic counter.
// Labels are alternating key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, typeCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{en: &r.enabled}
	}
	r.mu.Unlock()
	return s.counter
}

// Gauge registers (or returns the existing) settable gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, typeGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{en: &r.enabled}
	}
	r.mu.Unlock()
	return s.gauge
}

// GaugeFunc registers a gauge whose value is fn(), evaluated at scrape
// time — the zero-hot-path-cost way to expose an existing atomic or a
// queue length. Re-registering the same series replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, typeGauge, labels)
	s.fn = fn
	r.mu.Unlock()
}

// CounterFunc is GaugeFunc for monotonic values maintained elsewhere
// (e.g. a kvstore.Server's hit counter surfaced over /metrics).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	s := r.register(name, help, typeCounter, labels)
	s.fn = fn
	r.mu.Unlock()
}

// Histogram registers (or returns the existing) lock-striped latency
// histogram with the given bucket upper bounds (strictly increasing;
// +Inf is implicit). See histogram.go.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s := r.register(name, help, typeHistogram, labels)
	if s.hist == nil {
		s.hist = newHistogram(&r.enabled, buckets)
	}
	r.mu.Unlock()
	return s.hist
}

// register validates and interns the (name, labels) series, returning
// with r.mu HELD so the caller can finish initializing the series
// before anyone can look it up. Misuse (bad name, odd label count,
// re-registering a name as a different type) panics: instrument
// registration is programmer-controlled setup code, not input handling.
func (r *Registry) register(name, help, typ string, labels []string) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s registered with odd label list %q", name, labels))
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		r.mu.Unlock()
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	s := f.byKey[rendered]
	if s == nil {
		s = &series{labels: rendered}
		f.byKey[rendered] = s
		f.series = append(f.series, s)
	}
	//lint:allow mutex returns with r.mu held by contract; every caller unlocks
	return s
}

// validMetricName enforces the Prometheus metric-name charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*). The stricter lobster_<component>_<metric>
// project convention is enforced statically by lobster-lint.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels pre-renders the {k="v",...} suffix at registration time
// so scrapes never re-escape. Label order is the caller's: series
// identity is the rendered string.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	out := "{"
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			out += ","
		}
		out += labels[i] + `="` + escapeLabelValue(labels[i+1]) + `"`
	}
	return out + "}"
}

// sortedFamilies snapshots the family list for a deterministic scrape.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Counter is a monotonically increasing instrument. The zero method set
// is safe on a nil receiver, so un-instrumented code paths can hold nil
// pointers and call Add unconditionally.
type Counter struct {
	v  atomic.Uint64
	en *atomic.Bool
}

// Inc adds one.
//
//lint:hotpath recording must stay allocation-free (BENCH_obs.json asserts 0 allocs/op)
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter. No-op when nil or the registry is
// disabled.
//
//lint:hotpath recording must stay allocation-free (BENCH_obs.json asserts 0 allocs/op)
func (c *Counter) Add(n uint64) {
	if c == nil || !c.en.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 when nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instrument holding an int64 (queue depths,
// in-flight ops, worker counts). Nil-receiver safe like Counter.
type Gauge struct {
	v  atomic.Int64
	en *atomic.Bool
}

// Set stores an absolute value.
//
//lint:hotpath recording must stay allocation-free (BENCH_obs.json asserts 0 allocs/op)
func (g *Gauge) Set(v int64) {
	if g == nil || !g.en.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (use negative deltas to decrement).
//
//lint:hotpath recording must stay allocation-free (BENCH_obs.json asserts 0 allocs/op)
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.en.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 when nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
