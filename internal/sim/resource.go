package sim

import "fmt"

// Resource models a capacity-limited facility (a thread pool, a link, a
// PFS server pool) inside a simulation. Acquire requests queue FIFO and are
// granted as capacity frees up.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []func() // FIFO grant callbacks
	name     string

	// Utilization accounting.
	lastChange Time
	busyArea   float64 // integral of inUse over time
}

// NewResource creates a resource with the given capacity attached to eng.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{eng: eng, capacity: capacity, name: name, lastChange: eng.Now()}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of pending acquisitions.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire requests one unit; granted calls when it is allocated (possibly
// synchronously, at the current virtual time).
func (r *Resource) Acquire(granted func()) {
	if r.inUse < r.capacity {
		r.account()
		r.inUse++
		granted()
		return
	}
	r.waiters = append(r.waiters, granted)
}

// Release returns one unit, granting the oldest waiter if any. The grant
// runs as a zero-delay event so the releaser's stack unwinds first.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Capacity transfers directly to the waiter; inUse is unchanged.
		r.eng.After(0, next)
		return
	}
	r.account()
	r.inUse--
}

// Utilization returns the time-averaged fraction of capacity in use since
// the resource was created.
func (r *Resource) Utilization() float64 {
	elapsed := float64(r.eng.Now())
	if elapsed <= 0 {
		return 0
	}
	area := r.busyArea + float64(r.inUse)*float64(r.eng.Now()-r.lastChange)
	return area / (elapsed * float64(r.capacity))
}

func (r *Resource) account() {
	now := r.eng.Now()
	r.busyArea += float64(r.inUse) * float64(now-r.lastChange)
	r.lastChange = now
}
