package cache

import (
	"testing"

	"repro/internal/dataset"
)

// The denseList and the hand-rolled planned-policy heap carry
// //lint:hotpath annotations: lobster-lint proves statically that no
// allocating construct is reachable from them, and these tests measure
// the same property dynamically — steady-state list and heap traffic
// must be allocation-free once the id-indexed slices have grown to the
// working set.

func warmDenseList(n int) *denseList {
	l := newDenseList()
	for i := 0; i < n; i++ {
		l.pushFront(dataset.SampleID(i))
	}
	return l
}

func TestDenseListSteadyStateDoesNotAllocate(t *testing.T) {
	l := warmDenseList(1024)
	allocs := testing.AllocsPerRun(1000, func() {
		l.remove(7)
		l.pushFront(7)
		l.moveToFront(3)
		if !l.contains(9) {
			t.Fatal("id 9 vanished")
		}
		if _, ok := l.back(); !ok {
			t.Fatal("list empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("denseList steady-state ops allocate %.1f times per run, want 0", allocs)
	}
}

func TestPlannedHeapSteadyStateDoesNotAllocate(t *testing.T) {
	p := &plannedPolicy{}
	// Grow the heap's backing array to the working-set size first: the
	// //lint:allow on heapPush covers exactly this amortized growth.
	for i := 0; i < 1024; i++ {
		p.heapPush(heapEntry{id: dataset.SampleID(i), key: Iter(i), ver: 1})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		p.heapPop()
		p.heapPush(heapEntry{id: 3, key: 512, ver: 2})
	})
	if allocs != 0 {
		t.Fatalf("heap steady-state ops allocate %.1f times per run, want 0", allocs)
	}
}

func BenchmarkDenseListMoveToFront(b *testing.B) {
	l := warmDenseList(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.moveToFront(dataset.SampleID(i % 1024))
	}
}

func BenchmarkDenseListPushRemove(b *testing.B) {
	l := warmDenseList(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := dataset.SampleID(i % 1024)
		l.remove(id)
		l.pushFront(id)
	}
}

func BenchmarkPlannedHeapPushPop(b *testing.B) {
	p := &plannedPolicy{}
	for i := 0; i < 1024; i++ {
		p.heapPush(heapEntry{id: dataset.SampleID(i), key: Iter(i), ver: 1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.heapPop()
		p.heapPush(heapEntry{id: dataset.SampleID(i % 1024), key: Iter(i % 2048), ver: 2})
	}
}
