package lint

import "testing"

func TestDeterminism(t *testing.T) {
	runFixtures(t, Determinism, []fixtureTest{
		{
			name: "time.Now flagged in sim",
			pkg:  "repro/internal/sim",
			src: `package sim
import "time"
func Stamp() time.Time { return time.Now() }
`,
			want: 1,
			grep: "wall-clock read time.Now",
		},
		{
			name: "time.Since flagged in plan",
			pkg:  "repro/internal/plan",
			src: `package plan
import "time"
func Elapsed(t0 time.Time) time.Duration { return time.Since(t0) }
`,
			want: 1,
			grep: "time.Since",
		},
		{
			name: "wall clock fine outside scope",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "time"
func Stamp() time.Time { return time.Now() }
`,
			want: 0,
		},
		{
			name: "global rand flagged",
			pkg:  "repro/internal/cache",
			src: `package cache
import "math/rand"
func Pick(n int) int { return rand.Intn(n) }
`,
			want: 1,
			grep: "global RNG rand.Intn",
		},
		{
			name: "seeded rand fine",
			pkg:  "repro/internal/access",
			src: `package access
import "math/rand"
func Shuffle(n int, seed int64) []int {
	r := rand.New(rand.NewSource(seed))
	return r.Perm(n)
}
`,
			want: 0,
		},
		{
			name: "map range building slice flagged",
			pkg:  "repro/internal/perfmodel",
			src: `package perfmodel
func Keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: 1,
			grep: "append to out inside range over map",
		},
		{
			name: "map range printing flagged",
			pkg:  "repro/internal/trainsim",
			src: `package trainsim
import "fmt"
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`,
			want: 1,
			grep: "output order depends on map iteration order",
		},
		{
			name: "map range channel send flagged",
			pkg:  "repro/internal/sim",
			src: `package sim
func Drain(m map[int]int, ch chan<- int) {
	for _, v := range m {
		ch <- v
	}
}
`,
			want: 1,
			grep: "channel send inside range over map",
		},
		{
			name: "order-independent map range fine",
			pkg:  "repro/internal/cache",
			src: `package cache
func Sum(m map[int]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}
`,
			want: 0,
		},
		{
			name: "append to loop-local slice fine",
			pkg:  "repro/internal/access",
			src: `package access
func Widths(m map[int][]int) int {
	total := 0
	for _, row := range m {
		var local []int
		local = append(local, row...)
		total += len(local)
	}
	return total
}
`,
			want: 0,
		},
		{
			name: "range over slice fine",
			pkg:  "repro/internal/plan",
			src: `package plan
func Copy(in []int) []int {
	var out []int
	for _, v := range in {
		out = append(out, v)
	}
	return out
}
`,
			want: 0,
		},
		{
			name: "allow directive suppresses",
			pkg:  "repro/internal/sim",
			src: `package sim
import "time"
//lint:allow determinism calibration helper, result never reaches a plan
func Stamp() time.Time { return time.Now() }
`,
			want: 0,
		},
	})
}
