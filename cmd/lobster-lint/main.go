// Command lobster-lint runs the project-specific static-analysis suite
// over the module: determinism gates on the simulation/planning
// packages, goroutine/mutex hygiene on the concurrent runtime (test
// files included), dropped errors, the bounded-queue contract, and the
// module-wide interprocedural analyses — lock-order deadlock detection
// and machine-checked zero-allocation hot paths. It is part of the
// tier-1 verification gate (see verify.sh).
//
// Usage:
//
//	lobster-lint [-list] [-check ids] [-json|-github] [-time] [-parallel n] [packages]
//
// Packages are module-relative patterns: "./..." (default, the whole
// module), "./internal/..." (a subtree), or "./internal/sim" (one
// package; its external test package, if any, rides along). Exit
// status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/lint"
	"repro/internal/par"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	checks := flag.String("check", "", "comma-separated analyzer IDs to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	timing := flag.Bool("time", false, "print per-analyzer wall time to stderr")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "analyzer worker count (1 = serial)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lobster-lint [flags] [packages]\n\n"+
			"Project static analysis: %d checks over every package of the module.\n", len(lint.Analyzers()))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.ID, a.Doc)
		}
		return
	}
	if *asJSON && *github {
		fatal(fmt.Errorf("-json and -github are mutually exclusive"))
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}

	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	modPath, err := lint.ModulePath(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err = filterPackages(pkgs, modPath, flag.Args())
	if err != nil {
		fatal(err)
	}

	var pool *par.Pool
	if *parallel > 1 {
		pool = par.NewPool(*parallel)
	}
	findings, timings := lint.RunConcurrent(pkgs, analyzers, pool)
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "lobster-lint: %-12s %8.1fms\n", tm.ID, float64(tm.Wall.Microseconds())/1e3)
		}
	}

	switch {
	case *asJSON:
		writeJSON(os.Stdout, root, findings)
	case *github:
		for _, f := range findings {
			// ::error annotations surface inline on the PR diff; paths
			// must be repo-relative.
			fmt.Printf("::error file=%s,line=%d,col=%d::[%s] %s\n",
				relPath(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Message)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(os.Stderr, "lobster-lint: %d finding(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
}

// selectAnalyzers resolves a -check list against the registry; an
// unknown ID is an error, not a silently clean run.
func selectAnalyzers(spec string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if spec == "" {
		return all, nil
	}
	byID := map[string]*lint.Analyzer{}
	for _, a := range all {
		byID[a.ID] = a
	}
	var out []*lint.Analyzer
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		a := byID[id]
		if a == nil {
			return nil, fmt.Errorf("unknown check %q (run -list for the registry)", id)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-check selected no analyzers")
	}
	return out, nil
}

// jsonFinding is the -json wire shape, stable for tooling.
type jsonFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func writeJSON(w *os.File, root string, findings []lint.Finding) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Check: f.Check, File: relPath(root, f.Pos.Filename),
			Line: f.Pos.Line, Col: f.Pos.Column, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// relPath renders a finding position module-relative when possible.
func relPath(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// filterPackages keeps packages matching the command-line patterns
// ("./...", "./internal/...", "./internal/sim"). With no patterns
// everything is kept. An external test package ("<path>_test") matches
// wherever its package under test does. A pattern that matches no
// package is an error — a typo'd path must not pass as a clean run.
func filterPackages(pkgs []*lint.Package, modPath string, patterns []string) ([]*lint.Package, error) {
	if len(patterns) == 0 {
		return pkgs, nil
	}
	match := func(rel, pat string) bool {
		pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
		if pat == "..." || pat == "." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			return rel == sub || strings.HasPrefix(rel, sub+"/")
		}
		return rel == pat
	}
	matched := make([]bool, len(patterns))
	var out []*lint.Package
	for _, p := range pkgs {
		// Module-relative path of the package ("" for the root package).
		rel := strings.TrimPrefix(strings.TrimPrefix(p.Path, modPath), "/")
		if len(p.Files) == 0 && strings.HasSuffix(rel, "_test") {
			// package foo_test lives in foo's directory.
			rel = strings.TrimSuffix(rel, "_test")
		}
		keep := false
		for i, pat := range patterns {
			if match(rel, pat) {
				matched[i] = true
				keep = true
			}
		}
		if keep {
			out = append(out, p)
		}
	}
	for i, pat := range patterns {
		if !matched[i] {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-lint:", err)
	os.Exit(2)
}
