// Package preproc implements the data preprocessing stage of the training
// pipeline (Figure 1): decoding, augmentation, and batching.
//
// Two layers live here. First, real CPU kernels that the online runtime
// executes on actual payload bytes — a stand-in for JPEG decode and image
// augmentation with the property that matters: cost proportional to sample
// bytes, with a streaming memory access pattern. Second, the roofline
// throughput model of Observation 3: preprocessing throughput rises with
// threads until memory bandwidth saturates (~6 threads in the paper's
// Figure 6), then flattens and slightly degrades.
package preproc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dataset"
)

// Tensor is a decoded training sample ready for augmentation/batching.
type Tensor struct {
	ID   dataset.SampleID
	Data []float32
	// Checksum is a fold of the decoded values, used by integration tests
	// to verify end-to-end integrity (and to keep the compiler from
	// eliding the decode work in benchmarks).
	Checksum uint64
}

// Decode turns a raw payload into a Tensor. It validates the payload
// header (id + length) and expands each byte to a float32 with a little
// arithmetic per element — enough work per byte to make decoding the
// dominant preprocessing cost, as JPEG decode is in the real pipeline.
func Decode(payload []byte, want dataset.SampleID) (*Tensor, error) {
	if len(payload) < dataset.PayloadHeaderSize {
		return nil, fmt.Errorf("preproc: payload of %d bytes shorter than header", len(payload))
	}
	id := dataset.SampleID(binary.LittleEndian.Uint32(payload[0:4]))
	if id != want {
		return nil, fmt.Errorf("preproc: payload header id %d, want %d", id, want)
	}
	length := binary.LittleEndian.Uint64(payload[4:12])
	if length != uint64(len(payload)) {
		return nil, fmt.Errorf("preproc: payload header length %d, actual %d", length, len(payload))
	}
	body := payload[dataset.PayloadHeaderSize:]
	// Tensors come from the size-classed pool; the training loop returns
	// them with PutTensor once the batch is consumed (DESIGN.md §12).
	t := getTensor(len(body))
	t.ID = id
	var sum uint64
	for i, b := range body {
		// Byte -> normalized float with a nonlinearity, like a decode+
		// normalize step would do.
		v := float32(b)/255*2 - 1
		v = v * (1 - v*v/3)
		t.Data[i] = v
		sum = sum*31 + uint64(b)
	}
	t.Checksum = sum
	return t, nil
}

// Augment applies deterministic-by-seed augmentation in place: a random
// horizontal flip and a brightness jitter — streaming passes over the
// tensor, like real augmentation.
func Augment(t *Tensor, seed uint64) {
	if len(t.Data) == 0 {
		return
	}
	if seed&1 == 1 { // flip
		for i, j := 0, len(t.Data)-1; i < j; i, j = i+1, j-1 {
			t.Data[i], t.Data[j] = t.Data[j], t.Data[i]
		}
	}
	jitter := float32((seed>>1)%100)/1000 - 0.05
	for i := range t.Data {
		t.Data[i] += jitter
	}
}

// Batch groups tensors; the training stage consumes whole batches.
type Batch struct {
	Tensors []*Tensor
	Bytes   int64
}

// Assemble builds a Batch, summing payload sizes.
func Assemble(tensors []*Tensor) Batch {
	var total int64
	for _, t := range tensors {
		total += int64(len(t.Data))
	}
	return Batch{Tensors: tensors, Bytes: total}
}
