package kvstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestBenchKVJSON is the benchmark-recording harness behind
// `make bench-kv`.
//
// Default (no env) it is a CI-safe smoke test: it drives a few hundred
// ops through both protocols against a live server and fails on any
// protocol error — enough to catch a broken frame encoder without
// burning benchmark time in `go test ./...`.
//
// With LOBSTER_BENCH_KV=1 it runs the kvstore micro-benchmarks via
// testing.Benchmark and writes the results (ops/sec, B/op, allocs/op,
// p99) to BENCH_kv.json at the repository root, including the
// v1-vs-v2 headline comparison at 16 concurrent clients.
func TestBenchKVJSON(t *testing.T) {
	if os.Getenv("LOBSTER_BENCH_KV") == "" {
		benchSmoke(t)
		return
	}
	benchFull(t)
}

func benchSmoke(t *testing.T) {
	s, err := newBenchServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	window := make([]string, 16)
	for i := range window {
		window[i] = benchKey(i)
	}
	for _, proto := range []string{"v1", "v2"} {
		var c benchClient
		switch proto {
		case "v1":
			cl, err := NewClient(s.Addr(), 2)
			if err != nil {
				t.Fatal(err)
			}
			c = cl
		default:
			cl, err := NewClientV2(s.Addr(), 1)
			if err != nil {
				t.Fatal(err)
			}
			c = cl
		}
		for i := 0; i < 100; i++ {
			v, found, err := c.Get(benchKey(i % benchKeys))
			if err != nil || !found || len(v) != benchValBytes {
				c.Close()
				t.Fatalf("%s smoke Get: len=%d found=%v err=%v", proto, len(v), found, err)
			}
		}
		vals, err := c.MultiGet(window)
		if err != nil {
			c.Close()
			t.Fatalf("%s smoke MultiGet: %v", proto, err)
		}
		for i, v := range vals {
			if len(v) != benchValBytes {
				c.Close()
				t.Fatalf("%s smoke MultiGet[%d]: len=%d", proto, i, len(v))
			}
		}
		if err := c.Put("smoke", []byte("x")); err != nil {
			c.Close()
			t.Fatalf("%s smoke Put: %v", proto, err)
		}
		c.Close()
	}
}

// benchEntry is one benchmark row in BENCH_kv.json.
type benchEntry struct {
	Name        string  `json:"name"`
	Proto       string  `json:"proto"`
	Clients     int     `json:"clients"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
}

func toEntry(name, proto string, clients int, r testing.BenchmarkResult) benchEntry {
	ns := float64(r.NsPerOp())
	e := benchEntry{
		Name:        name,
		Proto:       proto,
		Clients:     clients,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if ns > 0 {
		e.OpsPerSec = 1e9 / ns
	}
	if p99, ok := r.Extra["p99-ns"]; ok {
		e.P99Ns = p99
	}
	return e
}

func benchFull(t *testing.T) {
	s, err := newBenchServer()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var entries []benchEntry
	get := func(proto string, clients int) benchEntry {
		r := testing.Benchmark(func(b *testing.B) {
			c := benchDial(b, s, proto)
			defer c.Close()
			runClients(b, clients, func(g, i int) error {
				_, found, err := c.Get(benchKey((g*7919 + i) % benchKeys))
				if err == nil && !found {
					err = fmt.Errorf("bench key missing")
				}
				return err
			})
		})
		e := toEntry("get", proto, clients, r)
		t.Logf("get/%s/clients=%d: %.0f ops/sec, %d B/op, %d allocs/op, p99 %.0fns",
			proto, clients, e.OpsPerSec, e.BytesPerOp, e.AllocsPerOp, e.P99Ns)
		return e
	}
	for _, proto := range []string{"v1", "v2"} {
		for _, clients := range []int{1, 4, 16, 64} {
			entries = append(entries, get(proto, clients))
		}
	}

	window := make([]string, 32)
	for k := range window {
		window[k] = benchKey(k * 31 % benchKeys)
	}
	for _, clients := range []int{1, 16} {
		clients := clients
		r := testing.Benchmark(func(b *testing.B) {
			c := benchDial(b, s, "v1")
			defer c.Close()
			runClients(b, clients, func(g, i int) error {
				for _, key := range window {
					if _, _, err := c.Get(key); err != nil {
						return err
					}
				}
				return nil
			})
		})
		entries = append(entries, toEntry("multiget-window32", "v1-loop", clients, r))
		r = testing.Benchmark(func(b *testing.B) {
			c := benchDial(b, s, "v2")
			defer c.Close()
			runClients(b, clients, func(g, i int) error {
				_, err := c.MultiGet(window)
				return err
			})
		})
		entries = append(entries, toEntry("multiget-window32", "v2-batch", clients, r))
	}

	val := make([]byte, benchValBytes)
	for _, proto := range []string{"v1", "v2"} {
		proto := proto
		r := testing.Benchmark(func(b *testing.B) {
			c := benchDial(b, s, proto)
			defer c.Close()
			runClients(b, 16, func(g, i int) error {
				return c.Put(benchKey((g*7919+i)%benchKeys), val)
			})
		})
		entries = append(entries, toEntry("put", proto, 16, r))
	}

	var v1at16, v2at16 *benchEntry
	for i := range entries {
		e := &entries[i]
		if e.Name == "get" && e.Clients == 16 {
			switch e.Proto {
			case "v1":
				v1at16 = e
			case "v2":
				v2at16 = e
			}
		}
	}
	if v1at16 == nil || v2at16 == nil {
		t.Fatal("missing 16-client entries")
	}
	speedup := v2at16.OpsPerSec / v1at16.OpsPerSec
	t.Logf("headline: v2 %.0f ops/sec vs v1 %.0f ops/sec at 16 clients = %.2fx",
		v2at16.OpsPerSec, v1at16.OpsPerSec, speedup)

	out := struct {
		Generated string `json:"generated"`
		GoVersion string `json:"go_version"`
		NumCPU    int    `json:"num_cpu"`
		Note      string `json:"note"`
		// SeedBaseline is the pre-rework data path (single-op blocking
		// round trips, unstriped mutex LRU, no pooling) measured at
		// commit dd14fa7 with the same 16-client Get workload on the
		// same machine as the rest of this file.
		SeedBaseline benchEntry   `json:"seed_baseline"`
		Headline     struct {
			V1OpsPerSec float64 `json:"v1_ops_per_sec"`
			V2OpsPerSec float64 `json:"v2_ops_per_sec"`
			Speedup     float64 `json:"speedup_v2_over_v1"`
		} `json:"headline_get_16_clients"`
		Results []benchEntry `json:"results"`
	}{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Note: "get/put: 4KiB values, 1024 keys; v1 uses a 4-conn pool, " +
			"v2 one pipelined conn; multiget fetches a 32-key window",
		SeedBaseline: benchEntry{
			Name: "get-seed-dd14fa7", Proto: "v1-seed", Clients: 16,
			NsPerOp: 12008, OpsPerSec: 83278, BytesPerOp: 4162, AllocsPerOp: 9,
		},
		Results: entries,
	}
	out.Headline.V1OpsPerSec = v1at16.OpsPerSec
	out.Headline.V2OpsPerSec = v2at16.OpsPerSec
	out.Headline.Speedup = speedup

	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "BENCH_kv.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
	if speedup < 2 {
		t.Logf("WARNING: v2 speedup %.2fx below the 2x target; box may be loaded", speedup)
	}
}

// repoRoot walks up from the working directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
