package kvstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMixedOpsV2 drives every pipelined-client operation —
// Put, Get, Delete, MultiGet, MultiPut, Stats — from concurrent
// goroutines over two multiplexed connections. Under -race this covers
// the writer/reader goroutines, the pending-map dispatch, the call pool
// and the striped store end to end.
func TestConcurrentMixedOpsV2(t *testing.T) {
	s := testServer(t, 1<<20)
	c, err := NewClientV2(s.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys := make([]string, 6)
			vals := make([][]byte, 6)
			for i := range keys {
				keys[i] = fmt.Sprintf("g%d-k%d", g, i)
				vals[i] = []byte(fmt.Sprintf("v%d-%d", g, i))
			}
			for i := 0; i < 30; i++ {
				switch i % 5 {
				case 0:
					if err := c.MultiPut(keys, vals); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := c.MultiGet(keys); err != nil {
						errs <- err
						return
					}
				case 2:
					if err := c.Put(keys[i%6], vals[i%6]); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, _, err := c.Get(keys[i%6]); err != nil {
						errs <- err
						return
					}
				default:
					if err := c.Delete(keys[i%6]); err != nil {
						errs <- err
						return
					}
					if _, err := c.Stats(); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentMixedOps drives every client operation — Put, Get,
// Delete, client Stats and server Stats — from concurrent goroutines
// against one shard. Under -race this covers the server's single-mutex
// LRU (the paths the mutex-discipline analyzer audits) end to end over
// real TCP connections.
func TestConcurrentMixedOps(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClient(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%8)
				switch i % 4 {
				case 0:
					if err := c.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, _, err := c.Get(key); err != nil {
						errs <- err
						return
					}
				case 2:
					if err := c.Delete(key); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := c.Stats(); err != nil {
						errs <- err
						return
					}
					s.Stats() // in-process snapshot racing the TCP path
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
