package lint

import (
	"go/ast"
	"go/types"
)

// determinismScope is the set of packages whose outputs must be a pure
// function of their inputs: the offline planner simulates exactly what
// the runtime will replay (PAPER.md §3), so a wall clock, the global
// RNG, or map iteration order leaking into a plan silently breaks the
// load-balance guarantee. Matched by module-relative suffix so fixtures
// and renamed modules both work.
var determinismScope = []string{
	"internal/sim",
	"internal/trainsim",
	"internal/plan",
	"internal/perfmodel",
	"internal/access",
	"internal/cache",
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that draw from the shared, seed-ambient source. Explicitly
// seeded generators (rand.New(rand.NewSource(seed))) are fine — that is
// how the samplers get reproducible shuffles.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// Determinism forbids nondeterminism sources in simulation/planning
// packages: wall-clock reads, global-RNG draws, and map iteration that
// feeds order-sensitive output (append to an outer slice, a channel
// send, or formatted printing).
var Determinism = &Analyzer{
	ID: idDeterminism,
	Doc: "sim/plan packages must be deterministic: no time.Now/Since, " +
		"no math/rand global functions, no map-range feeding ordered output",
	Run: runDeterminism,
}

func runDeterminism(p *Package) []Finding {
	if !hasSuffixPkg(p.Path, determinismScope) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if fn == nil {
					return true
				}
				switch {
				case isStdFunc(fn, "time", "Now"), isStdFunc(fn, "time", "Since"), isStdFunc(fn, "time", "Until"):
					out = append(out, p.finding(idDeterminism, n,
						"wall-clock read time.%s in deterministic package %s; use the virtual clock (sim.Engine.Now) or take the instant as a parameter",
						fn.Name(), p.Path))
				}
			case *ast.SelectorExpr:
				if f := randGlobal(p.Info, n); f != nil {
					out = append(out, p.finding(idDeterminism, n,
						"global RNG %s.%s in deterministic package %s; draw from an explicitly seeded *rand.Rand instead",
						f.Pkg().Name(), f.Name(), p.Path))
				}
			case *ast.RangeStmt:
				out = append(out, mapRangeFindings(p, n)...)
			}
			return true
		})
	}
	return out
}

// randGlobal resolves sel to a package-level math/rand function drawing
// from the shared source, or nil.
func randGlobal(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // method on *rand.Rand: explicitly seeded, fine
	}
	if !globalRandFuncs[fn.Name()] {
		return nil // New, NewSource, NewZipf...: constructors are fine
	}
	return fn
}

// mapRangeFindings flags `for ... range m` over a map whose body feeds
// order-sensitive sinks. Per-key updates (counting, deleting, rewriting
// m[k]) are order-independent and pass; building a slice, sending on a
// channel, or printing inherits the randomized iteration order.
func mapRangeFindings(p *Package, rs *ast.RangeStmt) []Finding {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}
	var out []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(p.Info, n, "append") && len(n.Args) > 0 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && !declaredWithin(obj, rs) {
						out = append(out, p.finding(idDeterminism, n,
							"append to %s inside range over map %s: slice order depends on map iteration order; collect and sort keys first",
							id.Name, types.ExprString(rs.X)))
					}
				}
				return true
			}
			if fn := calleeFunc(p.Info, n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "fmt" && isPkgLevel(fn) {
				out = append(out, p.finding(idDeterminism, n,
					"fmt.%s inside range over map %s: output order depends on map iteration order; iterate over sorted keys",
					fn.Name(), types.ExprString(rs.X)))
			}
		case *ast.SendStmt:
			out = append(out, p.finding(idDeterminism, n,
				"channel send inside range over map %s: delivery order depends on map iteration order; iterate over sorted keys",
				types.ExprString(rs.X)))
		}
		return true
	})
	return out
}
