package access

import "fmt"

// MergePlans combines the future-access plans of several training jobs
// that share the same node and training data — the paper's "different DNN
// models sharing the same training data" scenario (Section 2). The merged
// plan answers NextUse/UsesRemaining across all jobs, so a shared
// node-local cache can apply the Lobster eviction rules against the union
// of futures: a sample one job is done with may still be hot for another.
//
// The plans must share the same iteration geometry (iterations per epoch
// and epoch count); jobs are assumed to advance in lockstep on the shared
// node, which is how co-located trainers sharing a cache behave once the
// slowest job paces the I/O.
func MergePlans(plans ...*Plan) (*Plan, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("access: no plans to merge")
	}
	first := plans[0]
	for _, p := range plans[1:] {
		if p.iters != first.iters || p.epochs != first.epochs {
			return nil, fmt.Errorf("access: cannot merge plans with geometry %dx%d vs %dx%d",
				p.epochs, p.iters, first.epochs, first.iters)
		}
		if len(p.accesses) != len(first.accesses) {
			return nil, fmt.Errorf("access: cannot merge plans over different datasets (%d vs %d samples)",
				len(p.accesses), len(first.accesses))
		}
	}
	merged := &Plan{
		node:        first.node,
		gpusPerNode: first.gpusPerNode,
		iters:       first.iters,
		epochs:      first.epochs,
		accesses:    make([][]Iter, len(first.accesses)),
	}
	for id := range merged.accesses {
		merged.accesses[id] = mergeSorted(plans, id)
	}
	return merged, nil
}

// mergeSorted k-way merges the (already ascending) access lists of one
// sample. Duplicate timestamps (two jobs touching the sample in the same
// iteration) are kept: they are distinct future uses.
func mergeSorted(plans []*Plan, id int) []Iter {
	total := 0
	for _, p := range plans {
		total += len(p.accesses[id])
	}
	if total == 0 {
		return nil
	}
	out := make([]Iter, 0, total)
	idx := make([]int, len(plans))
	for len(out) < total {
		best := -1
		var bestV Iter
		for pi, p := range plans {
			list := p.accesses[id]
			if idx[pi] >= len(list) {
				continue
			}
			if best == -1 || list[idx[pi]] < bestV {
				best, bestV = pi, list[idx[pi]]
			}
		}
		out = append(out, bestV)
		idx[best]++
	}
	return out
}
