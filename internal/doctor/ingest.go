package doctor

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// scrapeTimeout bounds each endpoint fetch; a hung monitor should not
// hang the diagnosis.
const scrapeTimeout = 10 * time.Second

// Collect ingests every source and returns the merged metrics and
// trace. A source is either
//
//   - a monitor base URL (http://host:port): its /metrics and
//     /trace.json are both scraped, tolerating 404 on either (a monitor
//     without a registry or ring attached still contributes the other);
//   - a URL naming an endpoint directly (ends in /metrics or
//     /trace.json): only that endpoint is fetched;
//   - a file path: the content is sniffed — a JSON object is a saved
//     trace dump, anything else parses as Prometheus text.
//
// Sources that contribute nothing at all (both endpoints 404) are an
// error: a typo'd port should not silently produce an empty report.
func Collect(sources []string) (*Metrics, *Trace, error) {
	metrics := &Metrics{}
	var traces []*Trace
	for _, src := range sources {
		if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
			m, t, err := collectHTTP(src)
			if err != nil {
				return nil, nil, err
			}
			if m == nil && t == nil {
				return nil, nil, fmt.Errorf("doctor: %s serves neither /metrics nor /trace.json", src)
			}
			metrics.Merge(m)
			if t != nil {
				traces = append(traces, t)
			}
			continue
		}
		m, t, err := collectFile(src)
		if err != nil {
			return nil, nil, err
		}
		metrics.Merge(m)
		if t != nil {
			traces = append(traces, t)
		}
	}
	return metrics, Merge(traces...), nil
}

func collectHTTP(src string) (*Metrics, *Trace, error) {
	base := strings.TrimRight(src, "/")
	metricsURL, traceURL := base+"/metrics", base+"/trace.json"
	switch {
	case strings.HasSuffix(base, "/metrics"):
		metricsURL, traceURL = base, ""
	case strings.HasSuffix(base, "/trace.json"):
		metricsURL, traceURL = "", base
	}
	var m *Metrics
	var t *Trace
	if metricsURL != "" {
		body, found, err := fetch(metricsURL)
		if err != nil {
			return nil, nil, err
		}
		if found {
			if m, err = ParseMetrics(bytes.NewReader(body)); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", metricsURL, err)
			}
		}
	}
	if traceURL != "" {
		body, found, err := fetch(traceURL)
		if err != nil {
			return nil, nil, err
		}
		if found {
			if t, err = ParseTrace(bytes.NewReader(body)); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", traceURL, err)
			}
		}
	}
	return m, t, nil
}

// fetch GETs url; found=false on 404 (endpoint not attached), error on
// anything else non-2xx.
func fetch(url string) (body []byte, found bool, err error) {
	client := &http.Client{Timeout: scrapeTimeout}
	resp, err := client.Get(url)
	if err != nil {
		return nil, false, fmt.Errorf("doctor: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode/100 != 2 {
		return nil, false, fmt.Errorf("doctor: %s returned %s", url, resp.Status)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, fmt.Errorf("doctor: reading %s: %w", url, err)
	}
	return body, true, nil
}

func collectFile(path string) (*Metrics, *Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("doctor: %w", err)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		t, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		return nil, t, nil
	}
	m, err := ParseMetrics(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil, nil
}
