// Package kvstore implements a sharded, TCP-based in-memory key-value
// store — the "alternatives to distributed caching like for example
// KV-stores" the paper names as a drop-in substitute for its peer-cache
// distribution manager (Section 2). The online runtime can mount a
// kvstore.Cluster as its shared cache layer instead of node-to-node
// fetches.
//
// Two wire protocols share every connection, classified per frame by
// the first byte:
//
// v1 (legacy, one blocking request per round trip):
//
//	request : op(1) keyLen(u32) key valLen(u32) val
//	response: status(1) valLen(u32) val
//
// v2 (pipelined): requests carry a magic byte and a request ID so many
// ops can be in flight per connection, and MultiGet/MultiPut move a
// whole plan window in one round trip (frame layout in store.go and
// DESIGN.md §8). All lengths are big-endian.
//
// Servers bound their memory with an LRU over value bytes, striped
// across N key-hashed sub-shards so concurrent clients do not serialize
// on one mutex.
package kvstore

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// connBufSize sizes the per-connection bufio reader/writer. Large
// enough that a pipelined burst of small ops coalesces into one
// syscall each way.
const connBufSize = 64 << 10

// Server is one KV shard.
type Server struct {
	ln net.Listener
	st *store

	wg     sync.WaitGroup
	closed chan struct{}

	mu    sync.Mutex // guards conns; never held across handler calls
	conns map[net.Conn]struct{}
}

// NewServer starts a shard listening on addr ("127.0.0.1:0" for an
// ephemeral port) with the given byte capacity. The LRU stripe count is
// chosen automatically (capacities below 64 KiB per stripe collapse to
// fewer stripes, tiny shards to a single global LRU). Note the
// admission bound: striping splits the capacity, so the largest
// admissible value is capacity / Stripes(), not capacity — larger puts
// are refused with ErrTooLarge and counted in Stats.TooLarge. Size the
// capacity (or pick an explicit stripe count via NewServerStriped) so
// the per-stripe budget comfortably exceeds the largest value stored.
func NewServer(addr string, capacity int64) (*Server, error) {
	return NewServerStriped(addr, capacity, 0)
}

// NewServerStriped is NewServer with an explicit LRU stripe count
// (rounded down to a power of two; <= 0 selects automatically). One
// stripe reproduces the exact global-LRU eviction order of the v1
// store; more stripes trade that for concurrency, with the byte budget
// — and therefore the largest admissible value and the eviction
// pressure — split evenly per stripe.
func NewServerStriped(addr string, capacity int64, stripes int) (*Server, error) {
	return NewServerOptions(addr, ServerOptions{Capacity: capacity, Stripes: stripes})
}

// ServerOptions configures a shard beyond its capacity: LRU striping
// and the overload-control gates (admission.go, DESIGN.md §11).
type ServerOptions struct {
	// Capacity is the shard's byte budget (required, > 0).
	Capacity int64
	// Stripes is the LRU stripe count (<= 0 auto-sizes; see
	// NewServerStriped).
	Stripes int
	// Admission configures deadline-aware load shedding, per-connection
	// quotas and the bounded in-flight gate. The zero value disables
	// them all.
	Admission AdmissionConfig
	// Trace, when non-nil, records one server-side span per traced
	// (0xA4-framed) request, stamped with the originating rank/iter so
	// this shard's /trace.json merges with the requesting rank's trace.
	// Untraced frames record nothing.
	Trace *obs.TraceRing
}

// NewServerOptions starts a shard with explicit options.
func NewServerOptions(addr string, opts ServerOptions) (*Server, error) {
	if opts.Capacity <= 0 {
		return nil, fmt.Errorf("kvstore: capacity %d <= 0", opts.Capacity)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: listen: %w", err)
	}
	st := newStore(opts.Capacity, opts.Stripes)
	st.adm = newAdmitter(opts.Admission)
	st.trace = opts.Trace
	s := &Server{
		ln:     ln,
		st:     st,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetFault installs the shard's fault-injection profile (fault.go):
// per-request lag/jitter, statusError rate, connection-drop rate,
// optionally scoped per op — the generalization of SetLag shared by the
// chaos harness, the hedged-read tests and the overload benchmarks. A
// zero config restores health. Safe to call while serving.
func (s *Server) SetFault(cfg FaultConfig) { s.st.setFault(cfg) }

// SetLag injects an artificial per-request service delay, applied while
// the request occupies its in-flight slot — the lag-only special case
// of SetFault kept for the common "this shard is slow" call sites.
// Zero removes the lag. Safe to call while serving.
func (s *Server) SetLag(d time.Duration) { s.SetFault(FaultConfig{Lag: d}) }

// QueueDepth reports requests executing or waiting at the admission
// gate right now (0 when admission is disabled).
func (s *Server) QueueDepth() int64 { return s.st.adm.queueDepth() }

// Addr returns the shard's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stripes returns the shard's LRU stripe count.
func (s *Server) Stripes() int { return len(s.st.stripes) }

// Close stops the listener, severs every live connection, and waits
// for connection handlers to exit. Clients see the drop as an I/O
// error mid-operation — the same failure mode as a crashed shard —
// which is what the cluster's partial-failure and hedged-read paths
// are built to absorb.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close() // severing; the handler's own close also races here
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// track registers a live connection for teardown by Close. It refuses
// connections that race with Close so none slip past the sever loop.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Stats is a shard's counter snapshot.
type Stats struct {
	Items     int
	UsedBytes int64
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// TooLarge counts puts refused because the value exceeded the
	// per-stripe byte budget (capacity / stripe count). Best-effort
	// writers that discard Put errors — e.g. the runtime's cache
	// write-backs — silently lose those samples from the shared tier, so
	// a growing TooLarge is the signal that values are outrunning the
	// striped admission bound and the shard needs more capacity or fewer
	// stripes.
	TooLarge uint64
	// ShedDeadline counts requests rejected with statusRetryLater
	// because their client-supplied deadline budget ran out before an
	// in-flight slot opened (admission.go gate 1).
	ShedDeadline uint64
	// ShedQuota counts requests rejected because their connection's
	// token bucket was empty (gate 2).
	ShedQuota uint64
	// ShedQueue counts deadline-less requests rejected because the
	// admission queue was full or the MaxWait slot wait expired (gate 3).
	ShedQueue uint64
}

// Stats returns a snapshot aggregated across stripes.
func (s *Server) Stats() Stats { return s.st.stats() }

// HealthSignals implements monitor.HealthSignaler (structurally; the
// kvstore does not import the monitor): a shard monitor's /healthz
// probe surfaces the overload-control shed counters and refused
// oversized puts alongside liveness.
func (st Stats) HealthSignals() map[string]uint64 {
	return map[string]uint64{
		"shed_deadline": st.ShedDeadline,
		"shed_quota":    st.ShedQuota,
		"shed_queue":    st.ShedQueue,
		"too_large":     st.TooLarge,
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			// Transient accept failure: keep serving.
			continue
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

// serve processes frames from one connection until it drops. Each
// frame's first byte selects the protocol: a v1 op byte or the v2
// magic. Responses are written in request order and flushed only when
// the read buffer holds no further request bytes, so a pipelined burst
// of N ops costs one write syscall, not N.
func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	if !s.track(conn) {
		return // lost the race with Close
	}
	defer s.untrack(conn)
	r := bufio.NewReaderSize(conn, connBufSize)
	w := bufio.NewWriterSize(conn, connBufSize)
	q := s.st.adm.newConnQuota(time.Now())
	var tid int64
	if s.st.trace != nil {
		tid = s.st.trace.NewThread("kv/conn")
	}
	for {
		first, err := r.ReadByte()
		if err != nil {
			return // EOF or protocol error: drop the connection
		}
		switch first {
		case frameV2Magic, frameV2DeadlineMagic, frameV2TraceMagic:
			err = s.st.handleV2(r, w, q, first, tid)
		default:
			err = s.st.handleV1(first, r, w, q)
		}
		if err != nil {
			return
		}
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}
