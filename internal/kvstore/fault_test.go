package kvstore

import (
	"fmt"
	"testing"
	"time"
)

func TestFaultOpsScoping(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClient(t, s)

	// Error every Get; Puts must pass untouched.
	s.SetFault(FaultConfig{ErrRate: 1, Ops: FaultGet})
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put under Get-scoped fault: %v", err)
	}
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("Get-scoped fault did not fire")
	}
	errs, drops := s.FaultCounts()
	if errs != 1 || drops != 0 {
		t.Fatalf("fault counts = (%d,%d), want (1,0)", errs, drops)
	}

	// Clear: both ops healthy again.
	s.SetFault(FaultConfig{})
	if v, found, err := c.Get("k"); err != nil || !found || string(v) != "v" {
		t.Fatalf("Get after clearing fault = %q, %v, %v", v, found, err)
	}

	// Zero Ops mask matches all data ops.
	s.SetFault(FaultConfig{ErrRate: 1})
	if err := c.Put("k2", []byte("v")); err == nil {
		t.Fatal("all-ops fault did not hit Put")
	}
	// Stats is always exempt: monitoring survives chaos.
	if _, err := c.Stats(); err != nil {
		t.Fatalf("Stats under all-ops fault: %v", err)
	}
}

func TestFaultErrorVisibleToV2Batches(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClientV2(t, s)
	if err := c.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}

	s.SetFault(FaultConfig{ErrRate: 1, Ops: FaultMultiGet | FaultMultiPut})
	if _, err := c.MultiGet([]string{"a", "b"}); err == nil {
		t.Fatal("injected MultiGet error not surfaced")
	}
	if err := c.MultiPut([]string{"x"}, [][]byte{[]byte("y")}); err == nil {
		t.Fatal("injected MultiPut error not surfaced")
	}

	// Framing must survive the injected error: the same connection keeps
	// answering once the fault clears.
	s.SetFault(FaultConfig{})
	v, found, err := c.Get("a")
	if err != nil || !found || string(v) != "1" {
		t.Fatalf("connection desynced after injected batch error: %q, %v, %v", v, found, err)
	}
}

func TestFaultDropAndRedial(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClientV2(t, s)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Every request severs the connection: ops fail.
	s.SetFault(FaultConfig{DropRate: 1})
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("dropped connection reported success")
	}
	if _, drops := s.FaultCounts(); drops == 0 {
		t.Fatal("no drops counted")
	}

	// The crashed shard "restarts": the client must redial and recover
	// without being rebuilt.
	s.SetFault(FaultConfig{})
	var lastErr error
	for i := 0; i < 50; i++ {
		v, found, err := c.Get("k")
		if err == nil && found && string(v) == "v" {
			return
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("client never recovered after drops cleared: %v", lastErr)
}

func TestFaultLagDelays(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClient(t, s)
	s.SetFault(FaultConfig{Lag: 20 * time.Millisecond, Ops: FaultGet})
	start := time.Now()
	if _, _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("lagged Get returned in %v", elapsed)
	}
}

// chaosCluster builds servers plus a replicated v2 cluster over them.
func chaosCluster(t *testing.T, shards, replicas int) ([]*Server, *Cluster) {
	t.Helper()
	servers := make([]*Server, shards)
	addrs := make([]string, shards)
	for i := range servers {
		servers[i] = testServer(t, 8<<20)
		addrs[i] = servers[i].Addr()
	}
	c, err := NewClusterConfig(addrs, ClusterConfig{Conns: 1, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return servers, c
}

func TestClusterRoutesAroundDownShard(t *testing.T) {
	_, c := chaosCluster(t, 3, 1)
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if err := c.Put(keys[i], []byte(keys[i])); err != nil {
			t.Fatal(err)
		}
	}

	victim := c.shardIndex(keys[0])
	c.SetShardDown(victim, true)
	if !c.ShardDown(victim) {
		t.Fatal("shard not marked down")
	}

	// Every key is still readable: primaries on the dead shard route to
	// their replica; the rest are untouched.
	for _, k := range keys {
		v, found, err := c.Get(k)
		if err != nil || !found || string(v) != k {
			t.Fatalf("Get(%s) with shard %d down = %q, %v, %v", k, victim, v, found, err)
		}
	}

	// Batch reads route per key too.
	vals, err := c.MultiGet(keys)
	if err != nil {
		t.Fatalf("MultiGet with a down shard: %v", err)
	}
	for i, v := range vals {
		if string(v) != keys[i] {
			t.Fatalf("MultiGet[%d] = %q, want %q", i, v, keys[i])
		}
	}

	// Writes succeed while the shard is down (the down copy is skipped).
	if err := c.Put("during-outage", []byte("x")); err != nil {
		t.Fatalf("Put with a down shard: %v", err)
	}
	c.SetShardDown(victim, false)
}

func TestClusterRepairRestoresReplicas(t *testing.T) {
	_, c := chaosCluster(t, 3, 1)
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if err := c.Put(keys[i], []byte(keys[i])); err != nil {
			t.Fatal(err)
		}
	}

	// Crash shard 1: mark it down and wipe its store (a restarted shard
	// comes back empty).
	victim := 1
	c.SetShardDown(victim, true)
	for _, k := range keys {
		if err := c.clients[victim].Delete(k); err != nil {
			t.Fatal(err)
		}
	}

	// Revive and repair: every key readable from any ring member again.
	c.SetShardDown(victim, false)
	restored, err := c.Repair(keys)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if restored != len(keys) {
		t.Fatalf("Repair restored %d/%d keys", restored, len(keys))
	}
	for _, k := range keys {
		s := c.shardIndex(k)
		for r := 0; r <= 1; r++ {
			cl := c.clients[(s+r)%3]
			v, found, err := cl.Get(k)
			if err != nil || !found || string(v) != k {
				t.Fatalf("post-repair copy %d of %s = %q, %v, %v", r, k, v, found, err)
			}
		}
	}
}

func TestClusterAllShardsDown(t *testing.T) {
	_, c := chaosCluster(t, 2, 1)
	c.SetShardDown(0, true)
	c.SetShardDown(1, true)
	if err := c.Put("k", []byte("v")); err == nil {
		t.Fatal("Put with every shard down succeeded")
	}
	c.SetShardDown(0, false)
	c.SetShardDown(1, false)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put after revival: %v", err)
	}
}

func TestSetLagWrapsSetFault(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClient(t, s)
	s.SetLag(15 * time.Millisecond)
	start := time.Now()
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("SetLag no longer delays: %v", elapsed)
	}
	s.SetLag(0)
}

// TestDownShardReadsNeverHedgeOutsideReplicaWindow is the regression
// pin for a race the chaos suite exposed: with a key's primary down,
// its reads re-route to the replica — and used to hedge from there to
// the *replica's* successor, a shard that never held a copy. When that
// hedge won the race it returned a spurious clean miss. Here the hedge
// is made near-certain to win if it fires at all (1µs hedge delay, the
// routed shard lagged 5ms), so any wrong-window hedge fails the test
// deterministically rather than one run in ten.
func TestDownShardReadsNeverHedgeOutsideReplicaWindow(t *testing.T) {
	servers := make([]*Server, 3)
	addrs := make([]string, 3)
	for i := range servers {
		servers[i] = testServer(t, 8<<20)
		addrs[i] = servers[i].Addr()
	}
	c, err := NewClusterConfig(addrs, ClusterConfig{Conns: 1, Replicas: 1, HedgeDelay: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	keys := make([]string, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("pin-%03d", i)
		if err := c.Put(keys[i], []byte(keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.shardIndex(keys[0])
	routed := (victim + 1) % 3
	c.SetShardDown(victim, true)
	servers[routed].SetLag(5 * time.Millisecond)
	defer servers[routed].SetLag(0)

	if h := c.hedgeIndex(victim, routed); h != -1 {
		t.Fatalf("hedgeIndex(%d, %d) = %d, want -1: the only other copy-holder is down", victim, routed, h)
	}
	if v, found, err := c.Get(keys[0]); err != nil || !found || string(v) != keys[0] {
		t.Fatalf("Get(%s) with primary down = %q, %v, %v", keys[0], v, found, err)
	}
	vals, err := c.MultiGet(keys)
	if err != nil {
		t.Fatalf("MultiGet with primary down: %v", err)
	}
	for i, v := range vals {
		if string(v) != keys[i] {
			t.Fatalf("MultiGet[%d] = %q, want %q", i, v, keys[i])
		}
	}
	c.SetShardDown(victim, false)
}
