package runtime

import (
	"strings"
	"testing"

	"repro/internal/loader"
	"repro/internal/obs"
)

// TestRunInstrumented runs the real runtime with a registry and trace
// ring attached and checks every advertised instrument family recorded,
// and that the trace carries the per-stage spans (stall/train per GPU,
// load, preproc) Perfetto renders.
func TestRunInstrumented(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 2, 1)
	reg := obs.NewRegistry()
	trace := obs.NewTraceRing(4096)
	opts.Obs = reg
	opts.Trace = trace
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SamplesLoaded == 0 {
		t.Fatal("run loaded nothing")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	scrape := sb.String()
	for _, family := range []string{
		"lobster_runtime_stall_seconds_count{rank=\"0\"}",
		"lobster_runtime_train_seconds_count{rank=\"3\"}",
		"lobster_runtime_load_seconds_count{node=\"1\"}",
		"lobster_preproc_job_seconds_count{node=\"0\"}",
		"lobster_preproc_threads{node=\"0\"}",
		"lobster_runtime_queue_depth{node=\"0\",gpu=\"1\"}",
		"lobster_runtime_load_threads{node=\"1\",gpu=\"0\"}",
		"lobster_runtime_cache_hits_total{node=\"0\"}",
		"lobster_runtime_pfs_reads_total{node=\"1\"}",
		"lobster_runtime_prefetched_total{node=\"0\"}",
		"lobster_preproc_jobs_total{node=\"1\"}",
	} {
		if !strings.Contains(scrape, family) {
			t.Errorf("scrape missing %s", family)
		}
	}
	// The hot-path histograms must actually have recorded.
	stall := reg.Histogram("lobster_runtime_stall_seconds", "", obs.LatencyBuckets(), "rank", "0")
	if stall.Count() == 0 {
		t.Error("stall histogram recorded nothing")
	}
	load := reg.Histogram("lobster_runtime_load_seconds", "", obs.LatencyBuckets(), "node", "0")
	if load.Count() == 0 {
		t.Error("load histogram recorded nothing")
	}

	// Trace spans: stall+train on every rank track, load on loader
	// tracks, preproc on pool-worker tracks.
	byName := map[string]int{}
	rankSpans := map[int64]bool{}
	for _, e := range trace.Events() {
		byName[e.Name]++
		if e.Name == "stall" {
			rankSpans[e.TID] = true
		}
	}
	for _, name := range []string{"stall", "train", "load", "preproc"} {
		if byName[name] == 0 {
			t.Errorf("trace has no %q spans (got %v)", name, byName)
		}
	}
	world := opts.Topology.Nodes * opts.Topology.GPUsPerNode
	if len(rankSpans) != world {
		t.Errorf("stall spans on %d rank tracks, want %d", len(rankSpans), world)
	}
	if trace.ThreadName(1) == "" {
		t.Error("trace track 1 has no name")
	}
}

// TestRunUninstrumented guards the default path: no registry, no trace,
// no recording side effects.
func TestRunUninstrumented(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 1, 1)
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SamplesLoaded == 0 {
		t.Fatal("run loaded nothing")
	}
}

// TestRunTraceOnly attaches only a span ring (no registry) — the
// cheap-tracing configuration — and checks spans still record.
func TestRunTraceOnly(t *testing.T) {
	opts := testOptions(t, loader.PyTorch(2, 8), 1, 1)
	trace := obs.NewTraceRing(1024)
	opts.Trace = trace
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	if trace.Len() == 0 {
		t.Fatal("trace-only run recorded no spans")
	}
}
