package runtime

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/allreduce"
	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/datafile"
	"repro/internal/dataset"
	"repro/internal/kvstore"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/plan"
	"repro/internal/preproc"
	"repro/internal/sampler"
	"repro/internal/threadmgr"
)

// Options configure an online training run.
type Options struct {
	Topology cluster.Topology
	Dataset  *dataset.Dataset
	Model    cluster.DNNModel
	Epochs   int
	Seed     uint64
	Strategy loader.Spec
	// TimeScale multiplies all modeled durations (storage latencies,
	// training compute). 0.01 runs 100x faster than modeled time —
	// examples finish in tens of milliseconds while still exercising real
	// contention. Default 0.01.
	TimeScale float64
	// PrefetchWorkers bounds the background prefetching concurrency
	// (default 2 for strategies with PrefetchDepth > 0).
	PrefetchWorkers int
	// Verify enables end-to-end payload verification of every decoded
	// tensor (default true).
	Verify *bool
	// PerSample forces the legacy one-channel-send-per-sample data path
	// (one queue submit and one chan receive per sample) instead of the
	// batched one. Kept as a differential baseline: both paths must
	// produce identical Stats.DataFold and SamplesVerified for the same
	// options, and the runtime benchmark reports both.
	PerSample bool
	// ThreadPlan, when non-nil, switches thread management into
	// plan-following mode: each iteration's pool sizes come from the
	// pre-computed offline plan (Section 4.5) instead of the live
	// controller. The plan's topology must match.
	ThreadPlan *plan.Plan
	// DataFilePath, when set, backs the PFS store with a packed on-disk
	// dataset file (written by cmd/lobster-pack or datafile.Write): every
	// PFS read becomes a real positional file read, checksum-verified.
	DataFilePath string
	// PFSFailureRate injects transient PFS read failures with the given
	// per-read probability (failure-injection testing; loaders retry with
	// backoff). Default 0.
	PFSFailureRate float64
	// DecideEvery is how often (iterations) the dynamic thread controller
	// re-runs (Section 4.1's overhead/adaptivity trade-off; default 1).
	DecideEvery int
	// GradientSize is the per-iteration pseudo-gradient length each GPU
	// contributes to the ring allreduce that implements the data-parallel
	// barrier (default 64; -1 disables the collective and leaves only
	// the synchronization barrier). All ranks must obtain bit-identical
	// averaged gradients; the run fails verification otherwise.
	GradientSize int
	// OnProgress, when non-nil, receives a Progress snapshot at the end
	// of every iteration (from the barrier's last arriver). Keep the
	// callback cheap; it runs on the training critical path.
	OnProgress func(Progress)
	// Obs, when non-nil, is the instrument registry the run records into:
	// per-stage latency histograms (stall/load/preproc), per-GPU queue
	// depths, cache/PFS counters — everything a monitor.Server serves at
	// /metrics. When the run uses a KVCache, its shard clients are
	// instrumented into the same registry.
	Obs *obs.Registry
	// Trace, when non-nil, receives per-stage spans (stall/train per
	// rank, load per loading worker, preproc per pool worker, prefetch
	// windows, thread-resize instants) for /trace.json dumps.
	Trace *obs.TraceRing
	// Chaos, when non-nil, drives deterministic fault injection: the
	// barrier's last arriver ticks the controller at every iteration
	// boundary, and the runtime registers default injectors for the fault
	// kinds it owns (PFS brownouts, straggler peers, cache-node crashes,
	// slow decode workers) — see internal/chaos and DESIGN.md §13. Kinds
	// the runtime has no handle on (kv shard crash, connection drops) are
	// the harness's to Register before the run.
	Chaos *chaos.Controller
	// KVCache, when non-nil, replaces the node-to-node distribution
	// manager with a shared KV-store cluster as the middle cache tier
	// (the "alternatives to distributed caching like for example
	// KV-stores" of Section 2). Demand misses go local cache -> KV
	// cluster -> PFS, with PFS fetches written back to the cluster; the
	// background prefetcher fetches each plan window through one batched
	// MultiGet round trip per shard and writes PFS fallbacks back with a
	// single MultiPut.
	KVCache *kvstore.Cluster
}

// Progress is a live mid-run snapshot published through
// Options.OnProgress (and typically forwarded to a monitor.Server).
type Progress struct {
	Iteration  int     `json:"iteration"`
	TotalIters int     `json:"total_iterations"`
	Epoch      int     `json:"epoch"`
	CacheHits  uint64  `json:"cache_hits"`
	CacheMiss  uint64  `json:"cache_misses"`
	RemoteHits uint64  `json:"remote_hits"`
	PFSReads   uint64  `json:"pfs_reads"`
	Prefetched uint64  `json:"prefetched"`
	// Failovers and PartialFanouts mirror the Stats fields of the same
	// names mid-run, so health endpoints can surface recovery-layer
	// pressure while the run is still going.
	Failovers      uint64  `json:"failovers"`
	PartialFanouts uint64  `json:"partial_fanouts"`
	HitRatio       float64 `json:"hit_ratio"`
	ElapsedSec     float64 `json:"elapsed_sec"`
}

// HealthSignals implements monitor.HealthSignaler (structurally; the
// runtime does not import the monitor): a /healthz probe on a monitor
// fed with Progress snapshots shows recovery-layer pressure inline.
func (p Progress) HealthSignals() map[string]uint64 {
	return map[string]uint64{
		"failovers":       p.Failovers,
		"partial_fanouts": p.PartialFanouts,
	}
}

// Stats summarize an online run.
type Stats struct {
	WallTime        time.Duration
	Iterations      int
	SamplesLoaded   uint64
	SamplesVerified uint64
	CacheHits       uint64
	CacheMisses     uint64
	RemoteHits      uint64
	PFSReads        uint64
	PFSRetries      uint64
	Prefetched      uint64
	AllreduceRounds uint64
	// Failovers counts shared-tier reads that fell over to the PFS
	// (promised peer copy not delivered, KV shard unreachable, or a whole
	// prefetch window degraded by a full MultiGet failure) — the recovery
	// layer's "how often did the middle tier let us down" number.
	Failovers uint64
	// PartialFanouts counts KV MultiGet fan-outs that came back partial
	// (kvstore.PartialError: some shards failed, the rest delivered).
	PartialFanouts uint64
	// DataFold is a deterministic fold of every decoded tensor checksum:
	// a rank-major chain of per-iteration folds, where each iteration's
	// fold is order-independent (results may finish in any order within
	// a batch). Identical across the batched and per-sample paths and
	// across runs with the same options — the differential tests pin it.
	DataFold uint64
	// FinalPreprocThreads/FinalLoadThreads record the last thread
	// decision per node (diagnostics for the thread-tuning example).
	FinalPreprocThreads []int
	FinalLoadThreads    [][]int
}

// HitRatio returns local cache hits over lookups.
func (s *Stats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Runtime is one online training run's shared state.
type Runtime struct {
	opts  Options
	ds    *dataset.Dataset
	sched *sampler.Schedule
	dir   *Directory
	dm    *DistributionManager
	pfs   *PFSStore
	kv    *kvstore.Cluster
	nodes []*nodeRuntime
	mgrs  []*threadmgr.Manager
	ro    *runtimeObs // nil when the run is un-instrumented

	gpus          int
	itersPerEpoch int
	totalIters    int
	tick          chan struct{}
	runDone       chan struct{}

	// decideThreads scratch, reused across iterations (only the barrier's
	// last-arriving rank runs decisions, one iteration at a time, so no
	// synchronization is needed).
	decideDemands []threadmgr.GPUDemand
	decideBatch   []dataset.SampleID
	decideLocal   []bool
	decideRemote  []bool
}

// barrier is the data-parallel allreduce stand-in: all GPUs arrive, the
// last one runs the per-iteration action (cache maintenance, thread
// decisions), then everyone proceeds.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	arrived int
	gen     int
	onLast  func(completedIter int)
}

func newBarrier(size int, onLast func(int)) *barrier {
	b := &barrier{size: size, onLast: onLast}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	if b.arrived == b.size {
		if b.onLast != nil {
			b.onLast(b.gen)
		}
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
}

// Run executes the online training and returns its statistics.
func Run(opts Options) (*Stats, error) {
	return RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: when ctx is cancelled, every GPU
// stops at its next iteration boundary, the runtime shuts down cleanly
// (queues drained, pools closed, remote servers stopped), and the partial
// statistics are returned alongside ctx.Err().
func RunContext(ctx context.Context, opts Options) (*Stats, error) {
	if opts.Dataset == nil {
		return nil, fmt.Errorf("runtime: nil dataset")
	}
	if err := opts.Topology.Validate(); err != nil {
		return nil, err
	}
	if opts.Epochs < 1 {
		return nil, fmt.Errorf("runtime: epochs %d < 1", opts.Epochs)
	}
	if err := opts.Strategy.Validate(opts.Topology.GPUsPerNode, opts.Topology.CPUThreads); err != nil {
		return nil, err
	}
	if opts.TimeScale <= 0 {
		opts.TimeScale = 0.01
	}
	if opts.PrefetchWorkers <= 0 {
		opts.PrefetchWorkers = 2
	}
	if opts.GradientSize == 0 {
		opts.GradientSize = 64
	}
	if opts.DecideEvery < 1 {
		opts.DecideEvery = 1
	}
	verify := true
	if opts.Verify != nil {
		verify = *opts.Verify
	}
	if opts.ThreadPlan != nil {
		if err := opts.ThreadPlan.Validate(); err != nil {
			return nil, err
		}
		if opts.ThreadPlan.Nodes != opts.Topology.Nodes ||
			opts.ThreadPlan.GPUsPerNode != opts.Topology.GPUsPerNode {
			return nil, fmt.Errorf("runtime: plan topology %dx%d does not match run topology %dx%d",
				opts.ThreadPlan.Nodes, opts.ThreadPlan.GPUsPerNode,
				opts.Topology.Nodes, opts.Topology.GPUsPerNode)
		}
	}

	top := opts.Topology
	sched, err := sampler.New(opts.Dataset, sampler.Config{
		WorldSize: top.WorldSize(),
		BatchSize: opts.Model.BatchSize,
		Seed:      opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	dir, err := NewDirectory(opts.Dataset.Len(), top.Nodes)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		opts:          opts,
		kv:            opts.KVCache,
		ds:            opts.Dataset,
		sched:         sched,
		dir:           dir,
		dm:            NewDistributionManager(top.Nodes, top.Hierarchy.Remote, opts.TimeScale),
		pfs:           newPFSStoreWithFailures(opts),
		gpus:          top.GPUsPerNode,
		itersPerEpoch: sched.IterationsPerEpoch(),
		tick:          make(chan struct{}, 4*top.Nodes*opts.PrefetchWorkers),
		runDone:       make(chan struct{}),
	}
	rt.totalIters = opts.Epochs * rt.itersPerEpoch
	rt.ro = newRuntimeObs(opts.Obs, opts.Trace, top.WorldSize(), top.Nodes, rt.itersPerEpoch)
	if rt.kv != nil && opts.Obs != nil {
		rt.kv.Instrument(opts.Obs)
	}
	if fileReader, err := openDataFile(opts, rt.pfs); err != nil {
		return nil, err
	} else if fileReader != nil {
		defer fileReader.Close()
	}

	// Per-node runtimes.
	dynamic := opts.Strategy.Mode == loader.ThreadsDynamic
	var portfolio *perfmodel.PreprocPortfolio
	if dynamic {
		truth := preproc.DefaultModel()
		portfolio, err = perfmodel.FitPortfolio(nil,
			[]int64{16 << 10, 64 << 10, 105 << 10, 512 << 10}, top.CPUThreads, 6,
			func(size int64, threads int) float64 { return truth.Time(size, threads) })
		if err != nil {
			return nil, err
		}
	}
	for n := 0; n < top.Nodes; n++ {
		plan, err := access.Build(sched, n, rt.gpus, opts.Epochs, 0)
		if err != nil {
			return nil, err
		}
		node := &nodeRuntime{node: n, rt: rt, plan: plan, stopPref: make(chan struct{})}
		nc, err := newNodeCache(n, top.CacheBytes, buildNodePolicy(opts.Strategy, plan, n, dir), dir)
		if err != nil {
			return nil, err
		}
		node.cache = nc

		preWorkers, loadWorkers := initialThreads(opts.Strategy, rt.gpus, top.CPUThreads)
		node.pre, err = preproc.NewPool(preWorkers, 1024)
		if err != nil {
			return nil, err
		}
		node.queues = make([]*gpuQueue, rt.gpus)
		for j := 0; j < rt.gpus; j++ {
			node.queues[j] = newGPUQueue(node, j, loadWorkers[j], &node.loadWG)
		}
		if rt.ro != nil {
			rt.ro.instrumentNode(node)
		}
		node.serverWG.Add(1)
		go node.serveRemote()
		if opts.Strategy.PrefetchDepth > 0 {
			node.prefetcher(opts.PrefetchWorkers, opts.Strategy.PrefetchDepth)
		}
		rt.nodes = append(rt.nodes, node)

		if dynamic {
			mgr, err := threadmgr.New(threadmgr.Config{
				Hierarchy:    top.Hierarchy,
				Portfolio:    portfolio,
				TotalThreads: top.CPUThreads,
				Tau:          opts.Model.IterTime * 0.05,
			})
			if err != nil {
				return nil, err
			}
			rt.mgrs = append(rt.mgrs, mgr)
		} else {
			rt.mgrs = append(rt.mgrs, nil)
		}
	}

	stats := &Stats{Iterations: rt.totalIters}
	var verifyFail error
	var verifyMu sync.Mutex

	// Cooperative cancellation: stopIter < 0 means "run to completion";
	// otherwise every GPU stops before starting iteration stopIter. The
	// barrier's last arriver publishes the stop boundary so all GPUs
	// agree and nobody is left waiting at the barrier.
	var stopIter atomic.Int64
	stopIter.Store(-1)
	cancelled := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			close(cancelled)
		case <-rt.runDone:
		}
	}()

	start := time.Now()
	bar := newBarrier(top.WorldSize(), func(completed int) {
		select {
		case <-cancelled:
			if stopIter.Load() < 0 {
				stopIter.Store(int64(completed + 1))
			}
		default:
		}
		now := cache.Iter(completed)
		for _, node := range rt.nodes {
			node.iterNow.Store(int32(completed + 1))
			node.cache.maintain(now)
		}
		// Flush the stall ledger while every rank waits at the barrier:
		// all of iteration `completed`'s attribution has landed, none of
		// the next iteration's has started (see stallLedger).
		rt.ro.flushLedger(completed)
		rt.decideThreads(completed + 1)
		if opts.Chaos != nil {
			opts.Chaos.OnIteration(completed + 1)
		}
		if opts.OnProgress != nil {
			opts.OnProgress(rt.progress(completed, start))
		}
		// Wake prefetchers without blocking.
		for i := 0; i < cap(rt.tick); i++ {
			select {
			case rt.tick <- struct{}{}:
			default:
				i = cap(rt.tick)
			}
		}
	})

	var ring *allreduce.Ring
	if opts.GradientSize > 0 {
		ring, err = allreduce.NewRing(top.WorldSize())
		if err != nil {
			return nil, err
		}
	}
	gradFolds := make([]uint64, top.WorldSize())
	rankFolds := make([]uint64, top.WorldSize())
	allreduceRounds := make([]uint64, top.WorldSize())

	if opts.Chaos != nil {
		// Wire the runtime-owned injectors (soft: a harness's explicit
		// Register wins) and process boundary 0 so Start-0 events are
		// active before the first iteration; Finish reverts whatever is
		// still active when the run — however it ends — returns.
		rt.registerChaosInjectors(opts.Chaos)
		opts.Chaos.OnIteration(0)
		defer opts.Chaos.Finish()
	}

	var wg sync.WaitGroup
	rt.decideThreads(0)
	for rank := 0; rank < top.WorldSize(); rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := rt.nodes[rank/rt.gpus]
			q := node.queues[rank%rt.gpus]
			// Per-rank scratch, reused across every iteration: the batch
			// id slice, the verify set (legacy path, only under verify),
			// and either the legacy result channel or the batched
			// completion.
			perSample := opts.PerSample
			var out chan preproc.Result
			var expect map[dataset.SampleID]bool
			var comp *preproc.Completion
			if perSample {
				out = make(chan preproc.Result, opts.Model.BatchSize)
				if verify {
					expect = make(map[dataset.SampleID]bool, opts.Model.BatchSize)
				}
			} else {
				comp = preproc.GetCompletion()
				defer comp.Release()
			}
			chunk := opts.Strategy.LoadChunk
			var batch []dataset.SampleID
			var grad []float64
			var rankFold uint64
			if ring != nil {
				grad = make([]float64, opts.GradientSize)
			}
			ro := rt.ro
			var stallH, trainH *obs.Histogram
			var rankTID int64
			if ro != nil {
				stallH, trainH = ro.stallSeconds[rank], ro.trainSeconds[rank]
				rankTID = ro.rankTID[rank]
			}
			for h := 0; h < rt.totalIters; h++ {
				if stopIter.Load() >= 0 && h >= int(stopIter.Load()) {
					break
				}
				epoch, it := h/rt.itersPerEpoch, h%rt.itersPerEpoch
				batch = rt.sched.Batch(batch[:0], epoch, it, rank)
				iterSeed := opts.Seed ^ uint64(h)<<20
				// The pre-check keeps the un-instrumented (and
				// disabled-registry) path clock-free; when recording, the
				// batch is dispatched with a trace context (this rank,
				// epoch, global iteration) and a submit timestamp so the
				// stall ledger can decompose the wait by cause.
				rec := ro != nil && (ro.trace != nil || stallH.On())
				var tctx obs.TraceCtx
				var enq time.Time
				if rec {
					tctx = obs.NewTraceCtx(rank, epoch, int64(h))
					enq = time.Now()
				}
				if perSample {
					if verify {
						clear(expect)
						for _, id := range batch {
							expect[id] = true
						}
					}
					for _, id := range batch {
						q.submit(loadRequest{id: id, seed: iterSeed ^ uint64(id), out: out, ctx: tctx, enq: enq})
					}
				} else {
					comp.Reset(len(batch))
					q.submitBatch(batch, iterSeed, comp, chunk, tctx, enq)
				}
				// The data-stall stage: everything between dispatching the
				// batch and holding every tensor.
				var stallStart time.Time
				if rec {
					stallStart = time.Now()
				}
				var batchFold uint64
				verified := 0
				var firstErr error
				if perSample {
					for range batch {
						res := <-out
						if res.Tensor != nil {
							batchFold ^= mix64(res.Tensor.Checksum)
						}
						if verify {
							if err := checkResult(res, expect); err != nil {
								if firstErr == nil {
									firstErr = err
								}
							} else {
								verified++
							}
						}
					}
				} else {
					for i, res := range comp.Wait() {
						if res.Tensor != nil {
							batchFold ^= mix64(res.Tensor.Checksum)
						}
						if verify {
							if err := checkBatchResult(res, batch[i]); err != nil {
								if firstErr == nil {
									firstErr = err
								}
							} else {
								verified++
							}
						}
						// The tensor is consumed; recycle it (DESIGN.md
						// §12 — the training loop owns delivered tensors).
						preproc.PutTensor(res.Tensor)
					}
				}
				rankFold = rankFold*1099511628211 + mix64(batchFold)
				verifyMu.Lock()
				stats.SamplesLoaded += uint64(len(batch))
				stats.SamplesVerified += uint64(verified)
				if firstErr != nil && verifyFail == nil {
					verifyFail = firstErr
				}
				verifyMu.Unlock()
				var trainStart time.Time
				if rec {
					ro.gpuSpan("stall", stallH, rankTID, h, stallStart)
					trainStart = time.Now()
				}
				// The training stage: compute, then average the
				// pseudo-gradient with every other GPU — the collective
				// that makes any straggler a global stall.
				time.Sleep(time.Duration(opts.Model.IterTime * opts.TimeScale * float64(time.Second)))
				if ring != nil {
					for i := range grad {
						grad[i] = float64((batchFold>>uint(i%32))&0xFFFF) / 65536
					}
					if err := ring.Average(rank, grad); err != nil {
						verifyMu.Lock()
						if verifyFail == nil {
							verifyFail = err
						}
						verifyMu.Unlock()
					} else {
						// Fold the averaged gradient so ranks can be
						// compared for bit-identical results at the end.
						fold := uint64(1469598103934665603)
						for _, v := range grad {
							fold = fold*1099511628211 + math.Float64bits(v)
						}
						gradFolds[rank] = gradFolds[rank]*31 + fold
						allreduceRounds[rank]++
					}
				}
				if rec {
					ro.gpuSpan("train", trainH, rankTID, h, trainStart)
				}
				bar.wait()
			}
			rankFolds[rank] = rankFold
		}()
	}
	wg.Wait()
	close(rt.runDone)
	<-watcherDone
	stats.WallTime = time.Since(start)
	if stop := stopIter.Load(); stop >= 0 {
		stats.Iterations = int(stop)
	}

	// Shut down: prefetchers, queues, preproc pools, remote servers.
	for _, node := range rt.nodes {
		close(node.stopPref)
	}
	// Drain any blocked prefetcher ticks.
	for i := 0; i < cap(rt.tick); i++ {
		select {
		case rt.tick <- struct{}{}:
		default:
		}
	}
	for _, node := range rt.nodes {
		node.prefWG.Wait()
		close(node.queues[0].reqs)
		for j := 1; j < len(node.queues); j++ {
			close(node.queues[j].reqs)
		}
		node.loadWG.Wait()
		node.pre.Close()
	}
	rt.dm.Close()
	for _, node := range rt.nodes {
		node.serverWG.Wait()
	}

	for _, node := range rt.nodes {
		cs := node.cache.stats()
		stats.CacheHits += cs.Hits
		stats.CacheMisses += cs.Misses
		stats.RemoteHits += node.remoteHits.Load()
		stats.PFSReads += node.pfsReads.Load()
		stats.PFSRetries += node.pfsRetries.Load()
		stats.Prefetched += node.prefetched.Load()
		stats.Failovers += node.failovers.Load()
		stats.PartialFanouts += node.partials.Load()
		stats.FinalPreprocThreads = append(stats.FinalPreprocThreads, node.pre.Workers())
		row := make([]int, len(node.queues))
		for j, q := range node.queues {
			row[j] = q.workers()
		}
		stats.FinalLoadThreads = append(stats.FinalLoadThreads, row)
	}
	for _, f := range rankFolds {
		stats.DataFold = stats.DataFold*1099511628211 + f
	}
	if ring != nil {
		stats.AllreduceRounds = allreduceRounds[0]
		for rank := 1; rank < len(gradFolds); rank++ {
			if gradFolds[rank] != gradFolds[0] && verifyFail == nil {
				verifyFail = fmt.Errorf("runtime: rank %d averaged gradients diverged from rank 0", rank)
			}
		}
	}
	if verifyFail != nil {
		return stats, verifyFail
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}

// newPFSStoreWithFailures builds the PFS store with optional failure
// injection.
func newPFSStoreWithFailures(opts Options) *PFSStore {
	store := NewPFSStore(opts.Dataset, opts.Seed, opts.Topology.Hierarchy.PFS, opts.TimeScale)
	if opts.PFSFailureRate > 0 {
		store.SetFailureRate(opts.PFSFailureRate)
	}
	return store
}

// openDataFile attaches the on-disk dataset to the PFS store when
// configured.
func openDataFile(opts Options, store *PFSStore) (*datafile.Reader, error) {
	if opts.DataFilePath == "" {
		return nil, nil
	}
	r, err := datafile.Open(opts.DataFilePath, true)
	if err != nil {
		return nil, err
	}
	if err := store.UseFile(r); err != nil {
		_ = r.Close() // read-only descriptor; the UseFile error is what matters
		return nil, err
	}
	return r, nil
}

// progress assembles a live snapshot after `completed` finished.
func (rt *Runtime) progress(completed int, start time.Time) Progress {
	p := Progress{
		Iteration:  completed + 1,
		TotalIters: rt.totalIters,
		Epoch:      completed / rt.itersPerEpoch,
		ElapsedSec: time.Since(start).Seconds(),
	}
	for _, node := range rt.nodes {
		cs := node.cache.stats()
		p.CacheHits += cs.Hits
		p.CacheMiss += cs.Misses
		p.RemoteHits += node.remoteHits.Load()
		p.PFSReads += node.pfsReads.Load()
		p.Prefetched += node.prefetched.Load()
		p.Failovers += node.failovers.Load()
		p.PartialFanouts += node.partials.Load()
	}
	if total := p.CacheHits + p.CacheMiss; total > 0 {
		p.HitRatio = float64(p.CacheHits) / float64(total)
	}
	return p
}

// mix64 is the splitmix64 finalizer: a bijective bit mixer. Per-batch
// checksum folds XOR mixed checksums so the fold is independent of the
// order results arrive in — which makes the per-sample path (channel
// arrival order) and the batched path (slot order) byte-identical.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// checkBatchResult validates one slot of a batched iteration: slot order
// is batch order, so the expected id is known without a lookup set.
func checkBatchResult(res preproc.Result, want dataset.SampleID) error {
	if res.Err != nil {
		return res.Err
	}
	if res.Tensor.ID != want {
		return fmt.Errorf("runtime: slot for sample %d delivered sample %d", want, res.Tensor.ID)
	}
	if res.Tensor.Checksum == 0 {
		return fmt.Errorf("runtime: sample %d decoded to zero checksum", res.Tensor.ID)
	}
	return nil
}

// checkResult validates a preprocessing result against the expected batch.
func checkResult(res preproc.Result, expect map[dataset.SampleID]bool) error {
	if res.Err != nil {
		return res.Err
	}
	if !expect[res.Tensor.ID] {
		return fmt.Errorf("runtime: unexpected sample %d in batch", res.Tensor.ID)
	}
	if res.Tensor.Checksum == 0 {
		return fmt.Errorf("runtime: sample %d decoded to zero checksum", res.Tensor.ID)
	}
	return nil
}

// initialThreads derives the starting thread assignment from the strategy.
func initialThreads(spec loader.Spec, gpus, total int) (pre int, load []int) {
	load = make([]int, gpus)
	switch spec.Mode {
	case loader.ThreadsStatic:
		pre = spec.PreprocThreads
		for j := range load {
			load[j] = spec.LoadingPerGPU
		}
	case loader.ThreadsSharedPool:
		// The shared pool is approximated by spreading its workers over
		// the per-GPU queues (the online runtime always uses multi-queue
		// plumbing; the pool size is what varies).
		pre = spec.PreprocThreads
		for j := range load {
			load[j] = spec.SharedLoading/gpus + 1
		}
	default: // dynamic: start proportional, controller adjusts
		pre = total / 3
		if pre < 1 {
			pre = 1
		}
		for j := range load {
			load[j] = (total - pre) / gpus
			if load[j] < 1 {
				load[j] = 1
			}
		}
	}
	return pre, load
}

// decideThreads sets iteration h's thread assignment: from the offline
// plan when one is loaded, otherwise from the live controller (dynamic
// strategies only).
func (rt *Runtime) decideThreads(h int) {
	if h >= rt.totalIters {
		return
	}
	if rt.opts.ThreadPlan != nil {
		for n, node := range rt.nodes {
			th := rt.opts.ThreadPlan.ThreadsAt(h)[n]
			if err := node.pre.Resize(th.Preproc); err == nil {
				total := 0
				for j, q := range node.queues {
					q.resize(th.Loading[j])
					total += th.Loading[j]
				}
				rt.ro.resizeInstant(n, th.Preproc, total)
			}
		}
		return
	}
	if h%rt.opts.DecideEvery != 0 {
		return // keep the previous allocation (Section 4.1 frequency knob)
	}
	epoch, it := h/rt.itersPerEpoch, h%rt.itersPerEpoch
	for n, node := range rt.nodes {
		mgr := rt.mgrs[n]
		if mgr == nil {
			continue
		}
		if cap(rt.decideDemands) < rt.gpus {
			rt.decideDemands = make([]threadmgr.GPUDemand, rt.gpus)
		}
		demands := rt.decideDemands[:rt.gpus]
		for j := 0; j < rt.gpus; j++ {
			rt.decideBatch = rt.sched.Batch(rt.decideBatch[:0], epoch, it, n*rt.gpus+j)
			batch := rt.decideBatch
			// Classify the whole batch with one cache lock and one
			// directory lock instead of two lock round trips per sample.
			if cap(rt.decideLocal) < len(batch) {
				rt.decideLocal = make([]bool, len(batch))
				rt.decideRemote = make([]bool, len(batch))
			}
			local := rt.decideLocal[:len(batch)]
			remote := rt.decideRemote[:len(batch)]
			node.cache.peekBatch(batch, local)
			rt.dir.HolderBatch(batch, n, remote)
			var pl perfmodel.BatchPlacement
			for i, id := range batch {
				size := rt.ds.Size(id)
				switch {
				case local[i]:
					pl.LocalBytes += size
					pl.LocalOps++
				case remote[i]:
					pl.RemoteBytes += size
					pl.RemoteOps++
				default:
					pl.PFSBytes += size
					pl.PFSOps++
				}
			}
			demands[j] = threadmgr.GPUDemand{
				Placement:    pl,
				QueueLen:     pl.TotalOps() + int(node.queues[j].pending.Load()),
				PreprocBytes: pl.TotalBytes(),
				PreprocCount: pl.TotalOps(),
			}
		}
		dec := mgr.Decide(demands, rt.opts.Model.IterTime, rt.opts.Topology.Nodes)
		if err := node.pre.Resize(dec.PreprocThreads); err == nil {
			total := 0
			for j, q := range node.queues {
				q.resize(dec.Loading[j])
				total += dec.Loading[j]
			}
			rt.ro.resizeInstant(n, dec.PreprocThreads, total)
		}
	}
}
