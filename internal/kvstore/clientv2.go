package kvstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClientClosed is returned for ops issued after Close.
var ErrClientClosed = errors.New("kvstore: client closed")

// writeQueueDepth bounds each connection's in-flight request queue.
const writeQueueDepth = 512

// ClientV2 speaks the pipelined v2 protocol to one shard: every request
// carries an ID, a per-connection writer goroutine coalesces frames
// into large writes, and a reader goroutine dispatches responses to
// their waiters — so one connection sustains many concurrent ops
// instead of one per round trip. Safe for concurrent use.
type ClientV2 struct {
	addr   string
	window int
	mu     sync.Mutex
	conns  []*pipeConn
	rr     atomic.Uint32
	shut   bool

	// ins is the optional observability hookup (SetInstruments); an
	// atomic pointer so it can be attached while ops are in flight. The
	// un-instrumented fast path costs one pointer load per op.
	ins atomic.Pointer[ClientInstruments]
}

// SetInstruments attaches (or with nil detaches) per-op latency and
// counter instruments. Safe to call concurrently with ops.
func (cl *ClientV2) SetInstruments(ins *ClientInstruments) { cl.ins.Store(ins) }

// opStart begins timing one op: bumps the in-flight gauge and returns
// the histogram plus start time. A nil return (no instruments, or
// metrics disabled) means opDone must be skipped.
func (cl *ClientV2) opStart(op byte) (*obs.Histogram, *obs.Gauge, time.Time) {
	ins := cl.ins.Load()
	if ins == nil {
		return nil, nil, time.Time{}
	}
	h := ins.opSeconds(op)
	if !h.On() {
		return nil, nil, time.Time{}
	}
	ins.InFlight.Add(1)
	return h, ins.InFlight, time.Now()
}

// opDone finishes timing started by opStart.
func opDone(h *obs.Histogram, g *obs.Gauge, start time.Time) {
	g.Add(-1)
	h.Observe(time.Since(start).Seconds())
}

// NewClientV2 connects to a shard with the given number of multiplexed
// connections (a handful is plenty; each carries hundreds of in-flight
// ops).
func NewClientV2(addr string, conns int) (*ClientV2, error) {
	return NewClientV2Options(addr, ClientV2Options{Conns: conns})
}

// ClientV2Options configures the pipelined client beyond its connection
// count.
type ClientV2Options struct {
	// Conns is the number of multiplexed connections (min 1).
	Conns int
	// Window caps requests in flight per connection — registered but not
	// yet completed. An op arriving at a full window blocks (respecting
	// its context), which is the client half of the kv tier's
	// backpressure: callers slow down instead of piling unbounded work
	// onto an overloaded shard. 0 defaults to writeQueueDepth.
	Window int
}

// NewClientV2Options connects to a shard with explicit options.
func NewClientV2Options(addr string, opts ClientV2Options) (*ClientV2, error) {
	if opts.Conns < 1 {
		opts.Conns = 1
	}
	if opts.Window <= 0 {
		opts.Window = writeQueueDepth
	}
	cl := &ClientV2{addr: addr, window: opts.Window}
	for i := 0; i < opts.Conns; i++ {
		p, err := dialPipe(addr, opts.Window)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.conns = append(cl.conns, p)
	}
	return cl, nil
}

// conn picks a connection round-robin, transparently replacing dead
// ones.
func (cl *ClientV2) conn() (*pipeConn, error) {
	cl.mu.Lock()
	if cl.shut {
		cl.mu.Unlock()
		return nil, ErrClientClosed
	}
	// Unsigned modulo before the int conversion: on 32-bit platforms a
	// wrapped counter would otherwise go negative and panic the index.
	i := int(cl.rr.Add(1) % uint32(len(cl.conns)))
	p := cl.conns[i]
	cl.mu.Unlock()
	if !p.dead.Load() {
		return p, nil
	}
	return cl.replace(i, p)
}

// replace redials slot i if it still holds the dead connection old.
func (cl *ClientV2) replace(i int, old *pipeConn) (*pipeConn, error) {
	fresh, err := dialPipe(cl.addr, cl.window)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if cl.shut {
		cl.mu.Unlock()
		fresh.shutdown(ErrClientClosed)
		return nil, ErrClientClosed
	}
	cur := cl.conns[i]
	if cur != old && !cur.dead.Load() {
		// Someone else already replaced the slot; use theirs.
		cl.mu.Unlock()
		fresh.shutdown(ErrClientClosed)
		return cur, nil
	}
	cl.conns[i] = fresh
	cl.mu.Unlock()
	if ins := cl.ins.Load(); ins != nil {
		ins.Redials.Inc()
	}
	old.shutdown(errors.New("kvstore: connection replaced"))
	return fresh, nil
}

// Close tears down every connection; in-flight ops fail with
// ErrClientClosed.
func (cl *ClientV2) Close() {
	cl.mu.Lock()
	cl.shut = true
	conns := cl.conns
	cl.mu.Unlock()
	for _, p := range conns {
		p.shutdown(ErrClientClosed)
	}
}

// call is one in-flight request/response pair. Instances are pooled
// under a strict ownership rule: a call may be recycled (putCall) only
// after a successful round trip, because the response proves the writer
// goroutine finished serializing the request (see call.wrote). A call
// whose round trip errored may still be queued for — or held by — the
// writer, so error paths drop it for the GC instead of recycling it.
type call struct {
	op  byte
	id  uint32
	key string
	val []byte
	// Batch request fields (opMultiGet/opMultiPut).
	keys []string
	vals [][]byte
	// Response fields.
	status   byte
	out      []byte
	statuses []byte   // per-key statuses (opMultiPut)
	outs     [][]byte // per-key values (opMultiGet), nil = not found
	err      error
	done     chan *call
	// expiry is the op's context deadline; non-zero sends the 0xA3
	// deadline frame so the server can shed the request once its budget
	// is gone. The remaining budget is computed at serialization time,
	// after any window/queue wait on the client.
	expiry time.Time
	// tctx is the op's trace context; valid and with expiry zero it
	// sends the 0xA4 trace frame so the server-side span carries the
	// originating rank/iter. When a deadline is also set the deadline
	// frame wins and the context is dropped (see frameV2TraceMagic).
	tctx obs.TraceCtx
	// window, when non-nil, holds one slot of the connection's
	// backpressure semaphore; whoever completes the call returns it
	// (completeCall), so the window tracks true in-flight work even when
	// the original caller abandoned the op on context cancellation.
	window chan struct{}
	// skipped marks a call withdrawn by abandon() before serialization;
	// the writer discards it instead of framing it. Guarded by the
	// owning pipeConn's mu.
	skipped bool
	// wrote is released by the writer goroutine once the request frame
	// is fully serialized and acquired by the reader before it completes
	// the call, ordering the writer's reads of the request fields before
	// any reuse of the call (or the caller's key/value buffers).
	wrote atomic.Bool
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan *call, 1)} }}

func getCall(op byte) *call {
	c := callPool.Get().(*call)
	c.op = op
	return c
}

func putCall(c *call) {
	select {
	case <-c.done: // drain a stray completion, never carry it to reuse
	default:
	}
	// Field-by-field: a struct assignment would copy the atomic.
	c.op, c.id, c.key, c.val = 0, 0, "", nil
	c.keys, c.vals = nil, nil
	c.status, c.out, c.statuses, c.outs = 0, nil, nil, nil
	c.err = nil
	c.expiry = time.Time{}
	c.tctx = 0
	c.window, c.skipped = nil, false
	c.wrote.Store(false)
	callPool.Put(c)
}

// completeCall wakes c's waiter and returns its backpressure window
// slot. The slot is captured before the done send: a successful waiter
// may recycle c the instant it wakes, so c must not be touched after.
func completeCall(c *call) {
	w := c.window
	c.window = nil
	c.done <- c
	if w != nil {
		<-w
	}
}

// releaseWindow returns c's window slot when no completer ever will
// (the call was refused or withdrawn before it became in-flight).
func releaseWindow(c *call) {
	if w := c.window; w != nil {
		c.window = nil
		<-w
	}
}

// pipeConn is one multiplexed connection: a writer goroutine drains wq
// and coalesces frames, a reader goroutine dispatches responses to the
// pending map by request ID.
type pipeConn struct {
	c    net.Conn
	wq   chan *call
	stop chan struct{}
	// window is the connection's backpressure semaphore: one slot per
	// registered-but-uncompleted call (see call.window).
	window chan struct{}

	stopOnce sync.Once
	dead     atomic.Bool

	mu      sync.Mutex
	err     error
	nextID  uint32
	pending map[uint32]*call
	// held is the call the writer goroutine is serializing right now.
	// While a call is held, only the writer may complete it (fail and
	// the reader leave it alone), so nothing can wake its caller — and
	// free it to reuse its key/value buffers — mid-serialization.
	held *call

	wg sync.WaitGroup
}

func dialPipe(addr string, window int) (*pipeConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", addr, err)
	}
	if window <= 0 {
		window = writeQueueDepth
	}
	p := &pipeConn{
		c:       c,
		wq:      make(chan *call, writeQueueDepth),
		stop:    make(chan struct{}),
		window:  make(chan struct{}, window),
		pending: make(map[uint32]*call),
	}
	p.wg.Add(2)
	go p.writeLoop()
	go p.readLoop()
	return p, nil
}

// shutdown fails the connection (idempotent) and waits for its
// goroutines.
func (p *pipeConn) shutdown(err error) {
	p.fail(err)
	p.wg.Wait()
}

// fail marks the connection dead, closes the socket (unblocking both
// loops) and completes every pending call with err — except the call
// the writer is serializing, which the writer itself completes.
func (p *pipeConn) fail(err error) {
	p.stopOnce.Do(func() {
		p.dead.Store(true)
		p.mu.Lock()
		p.err = err
		p.mu.Unlock()
		close(p.stop)
		_ = p.c.Close() // unblocks the reader; its error is the close itself
	})
	// Whoever gets here drains whatever is pending at this moment —
	// except the call the writer currently holds, which the writer
	// completes itself after the frame is written (endWrite). Calls
	// registered later see p.err at registration and never enqueue;
	// calls queued but never written are completed here and skipped by
	// the writer (beginWrite).
	p.mu.Lock()
	var drained []*call
	for id, c := range p.pending {
		if c == p.held {
			continue
		}
		delete(p.pending, id)
		drained = append(drained, c)
	}
	failErr := p.err
	p.mu.Unlock()
	for _, c := range drained {
		c.err = failErr
		completeCall(c)
	}
}

// register assigns a request ID and parks the call in the pending map.
func (p *pipeConn) register(c *call) error {
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	c.id = p.nextID
	p.nextID++
	p.pending[c.id] = c
	p.mu.Unlock()
	return nil
}

// take removes a pending call; nil when already completed elsewhere.
func (p *pipeConn) take(id uint32) *call {
	p.mu.Lock()
	c := p.pending[id]
	delete(p.pending, id)
	p.mu.Unlock()
	return c
}

// failCall completes one call with err unless someone else already did.
func (p *pipeConn) failCall(c *call, err error) {
	if got := p.take(c.id); got != nil {
		got.err = err
		completeCall(got)
	}
}

// failDesync handles a response that was matched to a pending call but
// contradicts it (wrong op, or a frame the writer never finished
// writing): it drops the connection and completes the taken call so its
// waiter cannot hang. The connection is failed *first* so the writer
// refuses to start serializing c after its waiter wakes; if the writer
// already holds c, it is handed back to pending and the writer
// completes it in endWrite once the frame is out.
func (p *pipeConn) failDesync(c *call, err error) {
	p.fail(err)
	p.mu.Lock()
	if p.held == c {
		p.pending[c.id] = c
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.err = err
	completeCall(c)
}

// abandon withdraws a context-cancelled call before serialization. On
// success the call was never written — it is removed from pending (its
// ID will never appear on the wire, so a late response cannot desync
// the connection), marked for the writer to discard, and its window
// slot is returned here. On failure the writer already claimed (or
// finished) the frame; the eventual response or connection failure
// completes the call and returns the slot.
func (p *pipeConn) abandon(c *call) bool {
	p.mu.Lock()
	if p.pending[c.id] != c || p.held == c || c.wrote.Load() {
		p.mu.Unlock()
		return false
	}
	delete(p.pending, c.id)
	c.skipped = true
	p.mu.Unlock()
	releaseWindow(c)
	return true
}

// roundTrip runs one pipelined op to completion, bounded by ctx. A
// cancelled op returns ctx.Err() immediately; if its frame could not be
// withdrawn before serialization the request still reaches the server,
// whose response completes the (now abandoned, never recycled) call.
// Callers must treat a mutable value buffer handed to a cancelled Put
// as borrowed until the op would have completed.
func (p *pipeConn) roundTrip(ctx context.Context, c *call) error {
	// Backpressure: one window slot per in-flight call, held from here
	// until completion. A deadlined call spends at most 3/4 of its
	// remaining budget waiting here, reserving the rest for wire and
	// server time — without the reservation, a FIFO window under
	// sustained overload self-selects waiters that acquire a slot just
	// before their deadline and whose frames can only buy the server
	// zombie work (see DESIGN.md §11).
	var windowTimeout <-chan time.Time
	if !c.expiry.IsZero() {
		d := time.Until(c.expiry)
		if d <= 0 {
			return context.DeadlineExceeded
		}
		timer := time.NewTimer(d - d/4)
		defer timer.Stop()
		windowTimeout = timer.C
	}
	select {
	case p.window <- struct{}{}:
		c.window = p.window
	case <-p.stop:
		return p.connErr()
	case <-windowTimeout:
		return context.DeadlineExceeded
	case <-ctx.Done():
		return ctx.Err()
	}
	if err := p.register(c); err != nil {
		releaseWindow(c)
		return err
	}
	select {
	case p.wq <- c:
	case <-p.stop:
		p.failCall(c, ErrClientClosed)
	case <-ctx.Done():
		// Registered but never queued: the withdrawal cannot lose a race
		// with the writer, though fail() may have completed c already.
		if !p.abandon(c) {
			<-c.done
		}
		return ctx.Err()
	}
	select {
	case <-c.done:
		return c.err
	case <-ctx.Done():
		if !p.abandon(c) {
			// In flight (or just completed): the completer owns cleanup.
			select {
			case <-c.done:
				return c.err
			default:
			}
		}
		return ctx.Err()
	}
}

// writeLoop serializes queued requests onto the socket, flushing only
// when the queue momentarily drains — a burst of N ops from concurrent
// callers coalesces into one write syscall.
func (p *pipeConn) writeLoop() {
	defer p.wg.Done()
	w := bufio.NewWriterSize(p.c, connBufSize)
	for {
		select {
		case <-p.stop:
			p.drainQueue()
			return
		case c := <-p.wq:
			if !p.beginWrite(c) {
				continue
			}
			if p.dropExpired(c) {
				continue
			}
			writeV2Request(w, c)
			p.endWrite(c)
			if len(p.wq) == 0 {
				// The enqueue that woke this loop typically readied us
				// before the caller's siblings got to run; yield once so
				// every runnable caller enqueues, then flush the whole
				// burst as one write.
				runtime.Gosched()
			}
			if len(p.wq) == 0 {
				if err := w.Flush(); err != nil {
					p.fail(err)
				}
			}
		}
	}
}

// beginWrite claims c for serialization, so that until endWrite
// releases the claim no one else completes it. A call withdrawn by
// abandon() is discarded unserialized (its waiter already returned and
// released the window slot). On a failed connection it refuses the
// claim: c must not be serialized, and is completed here unless fail()
// already did (c gone from pending).
func (p *pipeConn) beginWrite(c *call) bool {
	p.mu.Lock()
	if c.skipped {
		p.mu.Unlock()
		return false
	}
	err := p.err
	ours := false
	if err != nil {
		if ours = p.pending[c.id] == c; ours {
			delete(p.pending, c.id)
		}
	} else {
		p.held = c
	}
	p.mu.Unlock()
	if err == nil {
		return true
	}
	if ours {
		c.err = err
		completeCall(c)
	}
	return false
}

// dropExpired discards a writer-claimed call whose deadline budget is
// already spent at serialization time: the frame could only buy the
// server zombie work (a response nobody is waiting for), so the call
// is completed locally with the context error instead of written.
// Exclusivity holds because beginWrite set p.held: fail() skips held
// calls, abandon() refuses them, and the reader only completes calls
// after endWrite publishes wrote.
func (p *pipeConn) dropExpired(c *call) bool {
	if c.expiry.IsZero() || time.Now().Before(c.expiry) {
		return false
	}
	p.mu.Lock()
	delete(p.pending, c.id)
	p.held = nil
	p.mu.Unlock()
	c.err = context.DeadlineExceeded
	completeCall(c)
	return true
}

// endWrite publishes that c's frame is fully serialized (the release
// half of call.wrote — the reader acquires it before completing c) and
// drops the writer's claim. If the connection failed mid-write, fail()
// skipped c because it was held, so it is completed here.
func (p *pipeConn) endWrite(c *call) {
	// Capture the ID before publishing: once wrote is set a fast
	// response can complete c and recycle it under us.
	id := c.id
	c.wrote.Store(true)
	p.mu.Lock()
	p.held = nil
	var err error
	if p.err != nil && p.pending[id] == c {
		delete(p.pending, id)
		err = p.err
	}
	p.mu.Unlock()
	if err != nil {
		c.err = err
		completeCall(c)
	}
}

// drainQueue fails whatever was queued but never written.
func (p *pipeConn) drainQueue() {
	for {
		select {
		case c := <-p.wq:
			p.failCall(c, p.connErr())
		default:
			return
		}
	}
}

func (p *pipeConn) connErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	return ErrClientClosed
}

// writeV2Request encodes one request frame (layout in store.go). A call
// with a deadline gets the 0xA3 extension carrying its remaining budget
// in microseconds — computed here, at serialization time, so client-side
// window and queue waits have already been charged against it. An
// already-expired budget is clamped to 1µs: the frame still goes out
// (withdrawing it would desync the stream) and the server sheds it at
// its cheapest gate. A deadline-less call with a trace context gets the
// 0xA4 extension instead, carrying the packed rank/epoch/iter.
//
//lint:hotpath one frame encode per op; the write loop must not allocate between pooled calls
func writeV2Request(w *bufio.Writer, c *call) {
	// bufio errors are sticky; the writeLoop's Flush surfaces the first.
	switch {
	case !c.expiry.IsZero():
		_ = w.WriteByte(frameV2DeadlineMagic)
	case c.tctx.Valid():
		_ = w.WriteByte(frameV2TraceMagic)
	default:
		_ = w.WriteByte(frameV2Magic)
	}
	_ = w.WriteByte(c.op)
	writeU32(w, c.id)
	if !c.expiry.IsZero() {
		budget := int64(time.Until(c.expiry) / time.Microsecond)
		if budget < 1 {
			budget = 1
		}
		if budget > math.MaxUint32 {
			budget = math.MaxUint32
		}
		writeU32(w, uint32(budget))
	} else if c.tctx.Valid() {
		writeU64(w, uint64(c.tctx))
	}
	switch c.op {
	case opMultiGet:
		writeU32(w, uint32(len(c.keys)))
		for _, k := range c.keys {
			writeU32(w, uint32(len(k)))
			_, _ = w.WriteString(k)
		}
	case opMultiPut:
		writeU32(w, uint32(len(c.keys)))
		for i, k := range c.keys {
			writeU32(w, uint32(len(k)))
			_, _ = w.WriteString(k)
			writeU32(w, uint32(len(c.vals[i])))
			_, _ = w.Write(c.vals[i])
		}
	default:
		writeU32(w, uint32(len(c.key)))
		_, _ = w.WriteString(c.key)
		writeU32(w, uint32(len(c.val)))
		_, _ = w.Write(c.val)
	}
}

// readLoop parses response frames and hands each to its waiter.
func (p *pipeConn) readLoop() {
	defer p.wg.Done()
	r := bufio.NewReaderSize(p.c, connBufSize)
	for {
		op, err := r.ReadByte()
		if err != nil {
			p.fail(err)
			return
		}
		id, err := readU32(r)
		if err != nil {
			p.fail(err)
			return
		}
		status, err := r.ReadByte()
		if err != nil {
			p.fail(err)
			return
		}
		c := p.take(id)
		if c == nil {
			p.fail(fmt.Errorf("kvstore: response for unknown request %d (op %d)", id, op))
			return
		}
		// The acquire pairs with the writer's release in endWrite: after
		// it, the writer's reads of c's request fields happened before
		// this point, so completing c — and the caller then recycling it
		// — cannot race the serialization. A response whose frame the
		// writer never finished, or whose op does not match, is frame
		// desync from a corrupt peer.
		if !c.wrote.Load() || c.op != op {
			p.failDesync(c, fmt.Errorf("kvstore: mismatched response for request %d (op %d)", id, op))
			return
		}
		c.status = status
		if err := readV2Body(r, op, c); err != nil {
			c.err = err
			completeCall(c)
			p.fail(err)
			return
		}
		completeCall(c)
	}
}

// readV2Body parses a response frame's op-specific body into c. The
// only allocations are the response values themselves (they escape to
// the caller, so pooled scratch cannot hold them) and cold
// protocol-error formatting; the framing reads are allocation-free.
//
//lint:hotpath one frame decode per op; anything beyond the escaping response values is per-op garbage
func readV2Body(r *bufio.Reader, op byte, c *call) error {
	switch op {
	case opMultiGet:
		count, err := readLen(r, maxBatchLen)
		if err != nil {
			return err
		}
		if int(count) != len(c.keys) {
			// A shed or fault-injected batch legitimately answers with
			// count 0 and a non-OK status: the server drained the request
			// and did none of the work.
			if count == 0 && c.status != statusOK {
				return nil
			}
			//lint:allow hotpath cold protocol-error path; the connection is dropped right after
			return fmt.Errorf("kvstore: MultiGet response has %d entries, want %d", count, len(c.keys))
		}
		//lint:allow hotpath response values escape to the caller and cannot come from the pool
		c.outs = make([][]byte, count)
		for i := uint32(0); i < count; i++ {
			st, err := r.ReadByte()
			if err != nil {
				return err
			}
			n, err := readLen(r, maxValLen)
			if err != nil {
				return err
			}
			//lint:allow hotpath response values escape to the caller and cannot come from the pool
			v := make([]byte, n)
			if _, err := io.ReadFull(r, v); err != nil {
				return err
			}
			if st == statusOK {
				c.outs[i] = v
			}
		}
		return nil
	case opMultiPut:
		count, err := readLen(r, maxBatchLen)
		if err != nil {
			return err
		}
		if int(count) != len(c.keys) {
			// count 0 on a shed or fault-injected batch: see opMultiGet.
			if count == 0 && c.status != statusOK {
				return nil
			}
			//lint:allow hotpath cold protocol-error path; the connection is dropped right after
			return fmt.Errorf("kvstore: MultiPut response has %d entries, want %d", count, len(c.keys))
		}
		//lint:allow hotpath per-key status vector escapes to the caller and cannot come from the pool
		c.statuses = make([]byte, count)
		if _, err := io.ReadFull(r, c.statuses); err != nil {
			return err
		}
		return nil
	default:
		n, err := readLen(r, maxValLen)
		if err != nil {
			return err
		}
		//lint:allow hotpath response values escape to the caller and cannot come from the pool
		out := make([]byte, n)
		if _, err := io.ReadFull(r, out); err != nil {
			return err
		}
		c.out = out
		return nil
	}
}

// Retry policy for the context ops: jittered exponential backoff on
// statusRetryLater, bounded by the context and by retryAttempts.
const (
	retryBase     = time.Millisecond
	retryMax      = 50 * time.Millisecond
	retryAttempts = 8
)

// retryDelay is the backoff before retry number attempt (0-based):
// exponential from retryBase, capped at retryMax, uniformly jittered
// over [d/2, d) so synchronized clients shed by the same overload spike
// do not stampede back in lockstep.
func retryDelay(attempt int) time.Duration {
	d := retryBase
	for i := 0; i < attempt && d < retryMax; i++ {
		d *= 2
	}
	if d > retryMax {
		d = retryMax
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)))
}

// sleepCtx sleeps d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// noteRetry counts one absorbed shed on the retry counter.
func (cl *ClientV2) noteRetry() {
	if ins := cl.ins.Load(); ins != nil {
		ins.RetryLater.Inc()
	}
}

// do runs one single-key op on some connection, timing it when
// instruments are attached (inline rather than deferred — this is the
// per-sample hot path and a defer closure would allocate).
func (cl *ClientV2) do(op byte, key string, val []byte) (byte, []byte, error) {
	return cl.doTraced(op, key, val, 0)
}

// doTraced is do carrying an optional trace context onto the wire.
func (cl *ClientV2) doTraced(op byte, key string, val []byte, tctx obs.TraceCtx) (byte, []byte, error) {
	h, g, start := cl.opStart(op)
	status, out, err := cl.doRaw(context.Background(), op, key, val, tctx)
	if h != nil {
		opDone(h, g, start)
	}
	return status, out, err
}

// doCtx is do with cancellation, deadline propagation and shed retry.
func (cl *ClientV2) doCtx(ctx context.Context, op byte, key string, val []byte) (byte, []byte, error) {
	h, g, start := cl.opStart(op)
	status, out, err := cl.doRawRetry(ctx, op, key, val)
	if h != nil {
		opDone(h, g, start)
	}
	return status, out, err
}

func (cl *ClientV2) doRawRetry(ctx context.Context, op byte, key string, val []byte) (byte, []byte, error) {
	for attempt := 0; ; attempt++ {
		status, out, err := cl.doRaw(ctx, op, key, val, 0)
		if err != nil || status != statusRetryLater || attempt >= retryAttempts {
			return status, out, err
		}
		cl.noteRetry()
		if err := sleepCtx(ctx, retryDelay(attempt)); err != nil {
			return 0, nil, err
		}
	}
}

func (cl *ClientV2) doRaw(ctx context.Context, op byte, key string, val []byte, tctx obs.TraceCtx) (byte, []byte, error) {
	p, err := cl.conn()
	if err != nil {
		return 0, nil, err
	}
	c := getCall(op)
	c.key, c.val = key, val
	c.tctx = tctx
	if d, ok := ctx.Deadline(); ok {
		c.expiry = d
	}
	if err := p.roundTrip(ctx, c); err != nil {
		// Failed calls may still be referenced by the writer goroutine;
		// drop them for the GC rather than recycling (see call).
		return 0, nil, err
	}
	status, out := c.status, c.out
	putCall(c)
	return status, out, nil
}

// getStatus maps a Get response status to the public return triple.
func getStatus(status byte, out []byte, key string) ([]byte, bool, error) {
	switch status {
	case statusOK:
		return out, true, nil
	case statusNotFound:
		return nil, false, nil
	case statusRetryLater:
		return nil, false, fmt.Errorf("kvstore: Get(%q): %w", key, ErrRetryLater)
	default:
		return nil, false, fmt.Errorf("kvstore: server error on Get(%q)", key)
	}
}

// Get fetches a value; found=false when the key is absent.
func (cl *ClientV2) Get(key string) ([]byte, bool, error) {
	status, out, err := cl.do(opGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	return getStatus(status, out, key)
}

// GetTraced is Get carrying a trace context: the request goes out as an
// 0xA4 frame, so a Trace-equipped server records a span stamped with
// the originating rank/iter for this read.
func (cl *ClientV2) GetTraced(key string, tctx obs.TraceCtx) ([]byte, bool, error) {
	status, out, err := cl.doTraced(opGet, key, nil, tctx)
	if err != nil {
		return nil, false, err
	}
	return getStatus(status, out, key)
}

// GetContext is Get with context cancellation, deadline propagation
// (the 0xA3 frame extension lets the server shed the request once its
// budget is spent) and jittered-backoff retry on server sheds.
func (cl *ClientV2) GetContext(ctx context.Context, key string) ([]byte, bool, error) {
	status, out, err := cl.doCtx(ctx, opGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	return getStatus(status, out, key)
}

// Put stores a value; ErrTooLarge when the shard can never admit it.
func (cl *ClientV2) Put(key string, val []byte) error {
	status, _, err := cl.do(opPut, key, val)
	if err != nil {
		return err
	}
	if status == statusTooLarge {
		if ins := cl.ins.Load(); ins != nil {
			ins.TooLarge.Inc()
		}
	}
	return putStatusErr(status, key)
}

// PutContext is Put with cancellation, deadline propagation and shed
// retry (see GetContext). The value buffer is borrowed until the op
// completes: after a cancellation it may still be serialized onto the
// wire, so callers must not mutate it on the error path.
func (cl *ClientV2) PutContext(ctx context.Context, key string, val []byte) error {
	status, _, err := cl.doCtx(ctx, opPut, key, val)
	if err != nil {
		return err
	}
	if status == statusTooLarge {
		if ins := cl.ins.Load(); ins != nil {
			ins.TooLarge.Inc()
		}
	}
	return putStatusErr(status, key)
}

// Delete removes a key (no-op when absent).
func (cl *ClientV2) Delete(key string) error {
	status, _, err := cl.do(opDelete, key, nil)
	if err != nil {
		return err
	}
	return deleteStatusErr(status, key)
}

// DeleteContext is Delete with cancellation, deadline propagation and
// shed retry (see GetContext).
func (cl *ClientV2) DeleteContext(ctx context.Context, key string) error {
	status, _, err := cl.doCtx(ctx, opDelete, key, nil)
	if err != nil {
		return err
	}
	return deleteStatusErr(status, key)
}

// deleteStatusErr maps a Delete response status to the client error.
func deleteStatusErr(status byte, key string) error {
	switch status {
	case statusOK:
		return nil
	case statusRetryLater:
		return fmt.Errorf("kvstore: Delete(%q): %w", key, ErrRetryLater)
	default:
		return fmt.Errorf("kvstore: server error on Delete(%q)", key)
	}
}

// Stats fetches the shard's counters.
func (cl *ClientV2) Stats() (Stats, error) {
	status, out, err := cl.do(opStats, "", nil)
	if err != nil {
		return Stats{}, err
	}
	if status != statusOK || len(out) != statsWireLen {
		return Stats{}, fmt.Errorf("kvstore: bad stats response")
	}
	return decodeStats(out), nil
}

// MultiGet fetches a whole batch of keys in one round trip. vals[i] is
// nil when keys[i] is absent and non-nil (possibly empty) when present.
func (cl *ClientV2) MultiGet(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(keys) > maxBatchLen {
		return nil, fmt.Errorf("kvstore: MultiGet batch %d exceeds %d keys", len(keys), maxBatchLen)
	}
	h, g, start := cl.opStart(opMultiGet)
	outs, err := cl.multiGetRaw(context.Background(), keys, 0)
	if h != nil {
		opDone(h, g, start)
	}
	return outs, err
}

// MultiGetTraced is MultiGet carrying a trace context (see GetTraced).
func (cl *ClientV2) MultiGetTraced(keys []string, tctx obs.TraceCtx) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(keys) > maxBatchLen {
		return nil, fmt.Errorf("kvstore: MultiGet batch %d exceeds %d keys", len(keys), maxBatchLen)
	}
	h, g, start := cl.opStart(opMultiGet)
	outs, err := cl.multiGetRaw(context.Background(), keys, tctx)
	if h != nil {
		opDone(h, g, start)
	}
	return outs, err
}

// MultiGetContext is MultiGet with cancellation, deadline propagation
// and jittered-backoff retry on server sheds (see GetContext).
func (cl *ClientV2) MultiGetContext(ctx context.Context, keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(keys) > maxBatchLen {
		return nil, fmt.Errorf("kvstore: MultiGet batch %d exceeds %d keys", len(keys), maxBatchLen)
	}
	h, g, start := cl.opStart(opMultiGet)
	var outs [][]byte
	var err error
	for attempt := 0; ; attempt++ {
		outs, err = cl.multiGetRaw(ctx, keys, 0)
		if !errors.Is(err, ErrRetryLater) || attempt >= retryAttempts {
			break
		}
		cl.noteRetry()
		if serr := sleepCtx(ctx, retryDelay(attempt)); serr != nil {
			err = serr
			break
		}
	}
	if h != nil {
		opDone(h, g, start)
	}
	return outs, err
}

func (cl *ClientV2) multiGetRaw(ctx context.Context, keys []string, tctx obs.TraceCtx) ([][]byte, error) {
	p, err := cl.conn()
	if err != nil {
		return nil, err
	}
	c := getCall(opMultiGet)
	c.keys = keys
	c.tctx = tctx
	if d, ok := ctx.Deadline(); ok {
		c.expiry = d
	}
	if err := p.roundTrip(ctx, c); err != nil {
		// Drop, don't recycle: the writer may still hold the call.
		return nil, err
	}
	outs := c.outs
	status := c.status
	putCall(c)
	switch status {
	case statusOK:
		return outs, nil
	case statusRetryLater:
		return nil, fmt.Errorf("kvstore: MultiGet(%d keys): %w", len(keys), ErrRetryLater)
	default:
		return nil, fmt.Errorf("kvstore: server error on MultiGet(%d keys)", len(keys))
	}
}

// MultiPut stores a whole batch of key/value pairs in one round trip.
// Storage is best-effort per key; the first per-key refusal (e.g.
// ErrTooLarge) is returned after the batch completes.
func (cl *ClientV2) MultiPut(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: MultiPut got %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	if len(keys) > maxBatchLen {
		return fmt.Errorf("kvstore: MultiPut batch %d exceeds %d keys", len(keys), maxBatchLen)
	}
	h, g, start := cl.opStart(opMultiPut)
	err := cl.multiPutRaw(context.Background(), keys, vals)
	if h != nil {
		opDone(h, g, start)
	}
	return err
}

// MultiPutContext is MultiPut with cancellation, deadline propagation
// and shed retry (see GetContext and PutContext's buffer caveat).
func (cl *ClientV2) MultiPutContext(ctx context.Context, keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: MultiPut got %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	if len(keys) > maxBatchLen {
		return fmt.Errorf("kvstore: MultiPut batch %d exceeds %d keys", len(keys), maxBatchLen)
	}
	h, g, start := cl.opStart(opMultiPut)
	var err error
	for attempt := 0; ; attempt++ {
		err = cl.multiPutRaw(ctx, keys, vals)
		if !errors.Is(err, ErrRetryLater) || attempt >= retryAttempts {
			break
		}
		cl.noteRetry()
		if serr := sleepCtx(ctx, retryDelay(attempt)); serr != nil {
			err = serr
			break
		}
	}
	if h != nil {
		opDone(h, g, start)
	}
	return err
}

func (cl *ClientV2) multiPutRaw(ctx context.Context, keys []string, vals [][]byte) error {
	p, err := cl.conn()
	if err != nil {
		return err
	}
	c := getCall(opMultiPut)
	c.keys, c.vals = keys, vals
	if d, ok := ctx.Deadline(); ok {
		c.expiry = d
	}
	if err := p.roundTrip(ctx, c); err != nil {
		// Drop, don't recycle: the writer may still hold the call.
		return err
	}
	statuses := c.statuses
	status := c.status
	putCall(c)
	switch status {
	case statusOK:
	case statusRetryLater:
		return fmt.Errorf("kvstore: MultiPut(%d keys): %w", len(keys), ErrRetryLater)
	default:
		return fmt.Errorf("kvstore: server error on MultiPut(%d keys)", len(keys))
	}
	var firstErr error
	for i, st := range statuses {
		if st == statusOK {
			continue
		}
		if st == statusTooLarge {
			if ins := cl.ins.Load(); ins != nil {
				ins.TooLarge.Inc()
			}
		}
		if firstErr == nil {
			firstErr = putStatusErr(st, keys[i])
		}
	}
	return firstErr
}
