package chaos

import (
	"fmt"
	"sync"
)

// Injector applies and reverts one fault kind on a live target. Inject
// and Revert run on the barrier's last arriver (one goroutine at a
// time, under the controller's lock), so implementations need no
// synchronization among themselves — only against the data path they
// perturb.
type Injector interface {
	Inject(Event) error
	Revert(Event) error
}

// funcInjector adapts a pair of functions to Injector.
type funcInjector struct {
	inject func(Event) error
	revert func(Event) error
}

func (f funcInjector) Inject(e Event) error { return f.inject(e) }
func (f funcInjector) Revert(e Event) error {
	if f.revert == nil {
		return nil
	}
	return f.revert(e)
}

// Funcs builds an Injector from an inject and an (optional, may be nil)
// revert function.
func Funcs(inject, revert func(Event) error) Injector {
	return funcInjector{inject: inject, revert: revert}
}

// Controller drives one schedule through a run: OnIteration(h) — called
// at every iteration boundary, monotonically — injects events whose
// window opened and reverts those whose window closed, appending one
// deterministic line per transition to the event log.
type Controller struct {
	sched *Schedule

	mu        sync.Mutex
	injectors map[Kind]Injector
	active    []bool // event currently injected
	done      []bool // event fully processed (reverted, skipped, or failed)
	log       []string
	injected  int
	reverted  int
	degraded  int // iteration boundaries with >= 1 active event
	lastIter  int
}

// NewController validates the schedule and builds its controller.
func NewController(s *Schedule) (*Controller, error) {
	if s == nil {
		return nil, fmt.Errorf("chaos: nil schedule")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		sched:     s,
		injectors: make(map[Kind]Injector),
		active:    make([]bool, len(s.Events)),
		done:      make([]bool, len(s.Events)),
		lastIter:  -1,
	}, nil
}

// Schedule returns the controller's schedule.
func (c *Controller) Schedule() *Schedule { return c.sched }

// Register wires the injector for one fault kind. Later registrations
// for the same kind win, except that Register keeps an existing
// injector when inj is nil. RegisterDefault is the soft variant used by
// subsystems wiring their own hook points.
func (c *Controller) Register(k Kind, inj Injector) {
	if inj == nil {
		return
	}
	c.mu.Lock()
	c.injectors[k] = inj
	c.mu.Unlock()
}

// RegisterDefault wires an injector only when the kind has none yet —
// the runtime uses it so a harness's explicit Register always wins.
func (c *Controller) RegisterDefault(k Kind, inj Injector) {
	if inj == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.injectors[k]; !ok {
		c.injectors[k] = inj
	}
	c.mu.Unlock()
}

// OnIteration advances the controller to iteration boundary iter
// (0 = before the first training iteration). Events whose window
// contains iter and are not yet active are injected; active events
// whose window closed are reverted. Calls with a boundary at or before
// the last one are ignored, so the hook is safe to invoke defensively.
func (c *Controller) OnIteration(iter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if iter <= c.lastIter {
		return
	}
	c.lastIter = iter
	for i, ev := range c.sched.Events {
		if c.active[i] && ev.End > 0 && iter >= ev.End {
			c.revertLocked(i, ev, iter)
		}
		if !c.done[i] && !c.active[i] && iter >= ev.Start && (ev.End <= 0 || iter < ev.End) {
			c.injectLocked(i, ev, iter)
		}
	}
	for _, a := range c.active {
		if a {
			c.degraded++
			break
		}
	}
}

// Finish reverts every still-active event (end of run). The boundary
// logged is the last one seen.
func (c *Controller) Finish() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, ev := range c.sched.Events {
		if c.active[i] {
			c.revertLocked(i, ev, c.lastIter)
		}
	}
}

func (c *Controller) injectLocked(i int, ev Event, iter int) {
	inj, ok := c.injectors[ev.Kind]
	if !ok {
		c.done[i] = true
		c.log = append(c.log, fmt.Sprintf("iter=%d skip %s target=%d: no injector", iter, ev.Kind, ev.Target))
		return
	}
	if err := inj.Inject(ev); err != nil {
		c.done[i] = true
		c.log = append(c.log, fmt.Sprintf("iter=%d inject %s target=%d failed: %v", iter, ev.Kind, ev.Target, err))
		return
	}
	c.active[i] = true
	c.injected++
	c.log = append(c.log, fmt.Sprintf("iter=%d inject %s target=%d", iter, ev.Kind, ev.Target))
}

func (c *Controller) revertLocked(i int, ev Event, iter int) {
	c.active[i] = false
	c.done[i] = true
	inj := c.injectors[ev.Kind]
	if err := inj.Revert(ev); err != nil {
		c.log = append(c.log, fmt.Sprintf("iter=%d revert %s target=%d failed: %v", iter, ev.Kind, ev.Target, err))
		return
	}
	c.reverted++
	c.log = append(c.log, fmt.Sprintf("iter=%d revert %s target=%d", iter, ev.Kind, ev.Target))
}

// EventLog returns a copy of the transition log: one line per inject,
// revert, or skip, in boundary order. For a given schedule the log is
// identical across runs — the determinism tests pin it.
func (c *Controller) EventLog() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.log))
	copy(out, c.log)
	return out
}

// Counts reports how many events were injected and reverted so far.
func (c *Controller) Counts() (injected, reverted int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected, c.reverted
}

// DegradedIters reports how many iteration boundaries had at least one
// fault active — the "degraded window" length in iterations.
func (c *Controller) DegradedIters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}
