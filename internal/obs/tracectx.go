package obs

// TraceCtx is the compact trace context threaded through the data path
// so a stall observed deep in the stack — a preproc queue wait, a peer
// fetch, a kvstore op on another machine — can be attributed back to
// the (rank, epoch, iteration) that paid for it. It is a single uint64
// so it rides in hot-path structs and on the kvstore v2 wire (the 0xA4
// frame) without allocating:
//
//	bits 63..48  rank   (uint16)
//	bits 47..32  epoch  (uint16)
//	bits 31..0   iter   (uint32, global iteration index)
//
// The zero TraceCtx means "no context" and is never emitted by
// NewTraceCtx (the marker bit below keeps rank 0 / epoch 0 / iter 0
// distinguishable from absent).
type TraceCtx uint64

// traceCtxMarker keeps a real context for rank 0, epoch 0, iteration 0
// from encoding as the zero (absent) TraceCtx. Bit 47 of the epoch
// field is sacrificed for it, capping epochs at 1<<15-1 — far beyond
// any training run this runtime models.
const traceCtxMarker TraceCtx = 1 << 47

// NewTraceCtx packs a trace context. Out-of-range values saturate
// rather than corrupt neighboring fields.
func NewTraceCtx(rank, epoch int, iter int64) TraceCtx {
	return traceCtxMarker |
		TraceCtx(clampU(rank, 1<<16-1))<<48 |
		TraceCtx(clampU(epoch, 1<<15-1))<<32 |
		TraceCtx(clampU64(iter, 1<<32-1))
}

func clampU(v, max int) uint64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return uint64(max)
	}
	return uint64(v)
}

func clampU64(v, max int64) uint64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return uint64(max)
	}
	return uint64(v)
}

// Valid reports whether the context carries real attribution.
func (c TraceCtx) Valid() bool { return c != 0 }

// Rank returns the originating data-parallel rank.
func (c TraceCtx) Rank() int { return int(c >> 48) }

// Epoch returns the originating epoch.
func (c TraceCtx) Epoch() int { return int((c >> 32) & (1<<15 - 1)) }

// Iter returns the originating global iteration index.
func (c TraceCtx) Iter() int64 { return int64(uint32(c)) }
