// Command lobster-pack writes a synthetic dataset to the packed on-disk
// format (internal/datafile) the online runtime's PFS store can serve
// real bytes from, and verifies existing files.
//
// Examples:
//
//	lobster-pack -dataset imagenet-1k -scale tiny -o /tmp/in1k.lobster
//	lobster-pack -verify /tmp/in1k.lobster
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datafile"
	"repro/internal/dataset"
)

func main() {
	var (
		datasetName = flag.String("dataset", "imagenet-1k", "imagenet-1k | imagenet-22k")
		scale       = flag.String("scale", "tiny", "tiny | small | medium | full")
		seed        = flag.Uint64("seed", 42, "dataset generation seed")
		output      = flag.String("o", "", "output path for the packed file")
		verify      = flag.String("verify", "", "verify an existing packed file and exit")
	)
	flag.Parse()

	if *verify != "" {
		r, err := datafile.Open(*verify, true)
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		if err := r.Verify(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d samples, seed %d — all checksums OK\n", *verify, r.Len(), r.Seed())
		return
	}
	if *output == "" {
		fatal(fmt.Errorf("need -o <path> (or -verify <path>)"))
	}
	sc, err := dataset.ParseScale(*scale)
	if err != nil {
		fatal(err)
	}
	var spec dataset.Spec
	switch *datasetName {
	case "imagenet-1k":
		spec = dataset.ImageNet1K(sc, *seed)
	case "imagenet-22k":
		spec = dataset.ImageNet22K(sc, *seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *datasetName))
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("packing %s (%d samples, %.1f MB) to %s...\n",
		ds.Name(), ds.Len(), float64(ds.TotalBytes())/1e6, *output)
	if err := datafile.Write(*output, ds, *seed); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(*output)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %.1f MB\n", float64(fi.Size())/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-pack:", err)
	os.Exit(1)
}
