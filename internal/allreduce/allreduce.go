// Package allreduce implements the data-parallel gradient averaging that
// makes stragglers everyone's problem: "as all GPUs must cooperate to
// average their gradients during the backward pass, these stragglers
// ultimately slow all GPUs" (Section 1).
//
// The implementation is the classic two-phase ring allreduce (reduce-
// scatter + all-gather) over an in-process channel transport — the same
// algorithm NCCL uses across a node group, with channels standing in for
// NVLink/IB exactly as they stand in for MPI elsewhere in this
// reproduction. Each of the W participants sends and receives 2·(W−1)
// chunks of N/W elements, so bandwidth per rank is independent of W.
package allreduce

import (
	"fmt"
	"sync"
)

// chunkMsg is one chunk on the wire. Messages are pooled per ring: the
// receiver consumes the data and returns the message, so steady-state
// rounds move 2·W·(W−1) chunks with zero allocations — at large world
// sizes the copies out of each rank's gradient would otherwise dominate
// the whole runtime's allocation profile.
type chunkMsg struct {
	data []float64
}

// Ring is a W-participant allreduce group. Create once, then call Reduce
// from exactly W goroutines (one per rank) per round. Successive rounds
// reuse the group.
type Ring struct {
	world int
	// links[r] carries chunks from rank r-1 to rank r (mod world).
	links []chan *chunkMsg
	// pool recycles chunk messages between rounds (receivers return what
	// senders lease).
	pool sync.Pool
	// barrier resynchronizes ranks between rounds so a fast rank cannot
	// race ahead into the next Reduce while a slow one still drains
	// channels.
	barrier *barrier
}

// NewRing creates an allreduce group of the given world size.
func NewRing(world int) (*Ring, error) {
	if world < 1 {
		return nil, fmt.Errorf("allreduce: world %d < 1", world)
	}
	r := &Ring{world: world, links: make([]chan *chunkMsg, world), barrier: newBarrier(world)}
	for i := range r.links {
		r.links[i] = make(chan *chunkMsg, 1)
	}
	return r, nil
}

// send copies a gradient chunk into a pooled message and puts it on the
// wire. The copy decouples the sender's gradient from the receiver: both
// sides keep mutating their own slices while the message is in flight.
func (r *Ring) send(link chan *chunkMsg, chunk []float64) {
	m, _ := r.pool.Get().(*chunkMsg)
	if m == nil {
		m = &chunkMsg{}
	}
	m.data = append(m.data[:0], chunk...)
	link <- m
}

// World returns the group size.
func (r *Ring) World() int { return r.world }

// Reduce sums `grad` element-wise across all ranks, in place: when every
// rank has called Reduce, each rank's slice holds the identical global
// sum. All ranks must pass slices of the same length. The call blocks
// until the collective completes.
func (r *Ring) Reduce(rank int, grad []float64) error {
	if rank < 0 || rank >= r.world {
		return fmt.Errorf("allreduce: rank %d out of [0, %d)", rank, r.world)
	}
	if r.world == 1 {
		return nil
	}
	n := len(grad)
	w := r.world
	// Chunk c covers [start(c), start(c+1)): near-equal splits.
	start := func(c int) int { return (n * c) / w }
	chunk := func(c int) []float64 { return grad[start(((c%w)+w)%w):start((((c%w)+w)%w)+1)] }

	next := r.links[(rank+1)%w] // we send into our successor's inbox
	prev := r.links[rank]       // we receive from our predecessor

	// Phase 1: reduce-scatter. In step s, rank sends chunk (rank-s) and
	// receives chunk (rank-s-1), accumulating into it. After W-1 steps,
	// chunk (rank+1) holds the full sum on this rank.
	for s := 0; s < w-1; s++ {
		r.send(next, chunk(rank-s))
		m := <-prev
		in := m.data
		dst := chunk(rank - s - 1)
		if len(in) != len(dst) {
			return fmt.Errorf("allreduce: rank %d step %d: chunk length %d, want %d (mismatched gradient sizes?)",
				rank, s, len(in), len(dst))
		}
		for i, v := range in {
			dst[i] += v
		}
		r.pool.Put(m)
	}
	// Phase 2: all-gather. Rank starts by sending its completed chunk
	// (rank+1), then forwards what it receives.
	for s := 0; s < w-1; s++ {
		r.send(next, chunk(rank+1-s))
		m := <-prev
		in := m.data
		dst := chunk(rank - s)
		if len(in) != len(dst) {
			return fmt.Errorf("allreduce: rank %d gather step %d: chunk length mismatch", rank, s)
		}
		copy(dst, in)
		r.pool.Put(m)
	}
	r.barrier.wait()
	return nil
}

// Average is Reduce followed by division by the world size — the actual
// gradient-averaging step of data-parallel SGD.
func (r *Ring) Average(rank int, grad []float64) error {
	if err := r.Reduce(rank, grad); err != nil {
		return err
	}
	inv := 1 / float64(r.world)
	for i := range grad {
		grad[i] *= inv
	}
	return nil
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	arrived int
	gen     int
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	if b.arrived == b.size {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
}
