// Command lobster-sim runs one simulated training and prints its metrics,
// or — with -compare — runs every loading strategy on the same workload
// and prints the Fig. 7-style comparison table.
//
// Examples:
//
//	lobster-sim -strategy lobster -dataset imagenet-1k -scale small -epochs 10
//	lobster-sim -compare -dataset imagenet-22k -nodes 8 -scale small
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	var (
		datasetName = flag.String("dataset", "imagenet-1k", "imagenet-1k | imagenet-22k")
		scale       = flag.String("scale", "small", "tiny | small | medium | full")
		model       = flag.String("model", "resnet50", "DNN model (resnet50, resnet32, shufflenet, alexnet, squeezenet, vgg11)")
		nodes       = flag.Int("nodes", 1, "number of nodes (8 GPUs each)")
		epochs      = flag.Int("epochs", 10, "training epochs")
		strategy    = flag.String("strategy", "lobster", "loading strategy")
		seed        = flag.Uint64("seed", 42, "schedule seed")
		compare     = flag.Bool("compare", false, "run all strategies and print the comparison table")
		jsonOut     = flag.Bool("json", false, "emit machine-readable JSON instead of text")
	)
	flag.Parse()

	names := []string{*strategy}
	if *compare {
		names = []string{"pytorch", "dali", "nopfs", "lobster"}
	}
	var runs []*metrics.Run
	var rows []jsonRow
	for _, name := range names {
		cfg, err := core.NewConfig(core.Workload{
			Dataset: *datasetName, Scale: *scale, Model: *model,
			Nodes: *nodes, Epochs: *epochs, Strategy: name, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		res, err := core.Simulate(cfg)
		if err != nil {
			fatal(err)
		}
		runs = append(runs, res.Metrics)
		rows = append(rows, rowOf(res.Metrics))
		if *jsonOut {
			continue
		}
		if !*compare {
			fmt.Println(res.Metrics)
			fmt.Printf("  batch times: %s\n", res.Metrics.BatchTimes)
			fmt.Printf("  remote hits: %d  PFS fetches: %d  prefetched: %.1f MB\n",
				res.Metrics.RemoteHits, res.Metrics.PFSFetches,
				float64(res.Metrics.PrefetchedBytes)/1e6)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fatal(err)
		}
		return
	}
	if *compare {
		fmt.Print(metrics.Table(runs))
	}
}

// jsonRow is the machine-readable summary of one run.
type jsonRow struct {
	Strategy       string  `json:"strategy"`
	Model          string  `json:"model"`
	Dataset        string  `json:"dataset"`
	Nodes          int     `json:"nodes"`
	GPUsPerNode    int     `json:"gpus_per_node"`
	Epochs         int     `json:"epochs"`
	Iterations     int     `json:"iterations"`
	TotalTimeS     float64 `json:"total_time_s"`
	HitRatio       float64 `json:"hit_ratio"`
	GPUUtilization float64 `json:"gpu_utilization"`
	ImbalanceFrac  float64 `json:"imbalance_fraction"`
	RemoteHits     uint64  `json:"remote_hits"`
	PFSFetches     uint64  `json:"pfs_fetches"`
	PrefetchedMB   float64 `json:"prefetched_mb"`
	BatchMeanS     float64 `json:"batch_mean_s"`
	BatchP95S      float64 `json:"batch_p95_s"`
	BatchCoefVar   float64 `json:"batch_coef_var"`
}

func rowOf(m *metrics.Run) jsonRow {
	return jsonRow{
		Strategy:       m.Strategy,
		Model:          m.Model,
		Dataset:        m.Dataset,
		Nodes:          m.Nodes,
		GPUsPerNode:    m.GPUs,
		Epochs:         m.Epochs,
		Iterations:     m.Iterations,
		TotalTimeS:     m.TotalTime,
		HitRatio:       m.HitRatio(),
		GPUUtilization: m.GPUUtilization(),
		ImbalanceFrac:  m.ImbalanceFraction(),
		RemoteHits:     m.RemoteHits,
		PFSFetches:     m.PFSFetches,
		PrefetchedMB:   float64(m.PrefetchedBytes) / 1e6,
		BatchMeanS:     m.BatchTimes.Mean(),
		BatchP95S:      m.BatchTimes.Percentile(95),
		BatchCoefVar:   m.BatchTimes.CoefVar(),
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-sim:", err)
	os.Exit(1)
}
