// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation, one testing.B target per experiment (the mapping
// is in DESIGN.md's per-experiment index). Each benchmark runs its
// experiment at the benchmark scale and reports the headline quantities as
// custom metrics — e.g. Lobster's speedup over PyTorch for Fig. 7(a) — so
// `go test -bench=.` prints a compact paper-vs-measured summary.
//
// Environment knob: REPRO_BENCH_SCALE=tiny|small|medium|full (default
// tiny, so the full suite completes in well under a minute on one core).
package repro

import (
	"os"
	goruntime "runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/par"
)

func benchScale(b *testing.B) dataset.Scale {
	name := os.Getenv("REPRO_BENCH_SCALE")
	if name == "" {
		return dataset.ScaleTiny
	}
	s, err := dataset.ParseScale(name)
	if err != nil {
		b.Fatalf("REPRO_BENCH_SCALE: %v", err)
	}
	return s
}

// runExperiment executes the experiment once per benchmark iteration and
// publishes the selected headline values as custom metrics.
func runExperiment(b *testing.B, id string, metrics map[string]string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	params := experiments.Params{Scale: benchScale(b), Seed: 42}
	var rep *experiments.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err = exp.Run(params)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for key, unit := range metrics {
		v, ok := rep.Values[key]
		if !ok {
			b.Fatalf("experiment %s did not report %q", id, key)
		}
		b.ReportMetric(v, unit)
	}
}

// BenchmarkFig03Breakdown regenerates Fig. 3 (pipeline breakdown; paper:
// imbalance in 65.3% of iterations under DALI).
func BenchmarkFig03Breakdown(b *testing.B) {
	runExperiment(b, "fig03", map[string]string{
		"imbalanced_frac":      "imbalancedFrac",
		"load_bottleneck_frac": "loadBoundFrac",
	})
}

// BenchmarkFig04ReuseDistance regenerates Fig. 4 (paper: ~80% of samples
// have reuse distance beyond ~1.6 epochs).
func BenchmarkFig04ReuseDistance(b *testing.B) {
	runExperiment(b, "fig04", map[string]string{
		"frac_long": "fracLongReuse",
	})
}

// BenchmarkFig06PreprocThreads regenerates Fig. 6 (paper: preprocessing
// throughput peaks at ~6 threads).
func BenchmarkFig06PreprocThreads(b *testing.B) {
	runExperiment(b, "fig06", map[string]string{
		"peak_threads": "peakThreads",
	})
}

// BenchmarkFig07aSingleNode1K regenerates Fig. 7(a) (paper: Lobster 1.6x
// vs PyTorch, 1.7x vs DALI, 1.2x vs NoPFS).
func BenchmarkFig07aSingleNode1K(b *testing.B) {
	runExperiment(b, "fig07a", map[string]string{
		"speedup_lobster": "lobsterVsPytorch",
		"speedup_nopfs":   "nopfsVsPytorch",
	})
}

// BenchmarkFig07bSingleNode22K regenerates Fig. 7(b) (paper: 1.8x vs
// PyTorch on the larger dataset).
func BenchmarkFig07bSingleNode22K(b *testing.B) {
	runExperiment(b, "fig07b", map[string]string{
		"speedup_lobster": "lobsterVsPytorch",
	})
}

// BenchmarkFig07cMultiNode22K regenerates Fig. 7(c) (paper: 2.0x / 1.4x /
// 1.2x vs PyTorch / DALI / NoPFS on 8 nodes).
func BenchmarkFig07cMultiNode22K(b *testing.B) {
	runExperiment(b, "fig07c", map[string]string{
		"speedup_lobster": "lobsterVsPytorch",
		"speedup_nopfs":   "nopfsVsPytorch",
	})
}

// BenchmarkFig07dScalability regenerates Fig. 7(d) (paper: avg 1.53x, up
// to 1.9x across node counts).
func BenchmarkFig07dScalability(b *testing.B) {
	runExperiment(b, "fig07d", map[string]string{
		"avg_speedup": "avgSpeedup",
		"max_speedup": "maxSpeedup",
	})
}

// BenchmarkFig08aImbalanceSingle regenerates Fig. 8(a) (paper: Lobster
// cuts imbalanced iterations to 17.5%).
func BenchmarkFig08aImbalanceSingle(b *testing.B) {
	runExperiment(b, "fig08a", map[string]string{
		"imbalance_lobster": "lobsterImbalance",
		"imbalance_pytorch": "pytorchImbalance",
	})
}

// BenchmarkFig08bImbalanceMulti regenerates Fig. 8(b) (paper: Lobster at
// 22.8% on 8 nodes).
func BenchmarkFig08bImbalanceMulti(b *testing.B) {
	runExperiment(b, "fig08b", map[string]string{
		"imbalance_lobster": "lobsterImbalance",
		"imbalance_pytorch": "pytorchImbalance",
	})
}

// BenchmarkFig08cBatchTime regenerates Fig. 8(c) (paper: Lobster has
// shorter, less variable batch times).
func BenchmarkFig08cBatchTime(b *testing.B) {
	runExperiment(b, "fig08c", map[string]string{
		"mean_lobster": "lobsterMeanBatchS",
		"mean_pytorch": "pytorchMeanBatchS",
	})
}

// BenchmarkFig09Accuracy regenerates Fig. 9 (paper: identical per-epoch
// curves, Lobster faster in wall time).
func BenchmarkFig09Accuracy(b *testing.B) {
	runExperiment(b, "fig09", map[string]string{
		"curves_identical": "curvesIdentical",
		"walltime_speedup": "walltimeSpeedup",
	})
}

// BenchmarkTabHitRatio regenerates the Section 5.5 hit-ratio comparison
// (paper: 63.2 / 48.9 / 32.6 / 24.5 %).
func BenchmarkTabHitRatio(b *testing.B) {
	runExperiment(b, "tab-hitratio", map[string]string{
		"hit_lobster": "lobsterHit",
		"hit_nopfs":   "nopfsHit",
		"hit_dali":    "daliHit",
		"hit_pytorch": "pytorchHit",
	})
}

// BenchmarkFig10GPUUtil regenerates Fig. 10 (paper averages: 76.1 / 72.4 /
// 57.5 / 52.3 %).
func BenchmarkFig10GPUUtil(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"avg_util_lobster": "lobsterUtil",
		"avg_util_pytorch": "pytorchUtil",
	})
}

// BenchmarkFig11Ablation regenerates Fig. 11 (paper: thread management avg
// 1.3x vs DALI, eviction ~1.15x, full Lobster 1.7x).
func BenchmarkFig11Ablation(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"avg_speedup_lobster_th":    "thVsDali",
		"avg_speedup_lobster_evict": "evictVsDali",
		"avg_speedup_lobster":       "lobsterVsDali",
	})
}

// BenchmarkExtCacheSweep regenerates the cache-size sensitivity extension
// (not in the paper; see EXPERIMENTS.md).
func BenchmarkExtCacheSweep(b *testing.B) {
	runExperiment(b, "ext-cachesweep", map[string]string{
		"speedup_at_30": "speedupAt30pct",
		"speedup_at_80": "speedupAt80pct",
	})
}

// BenchmarkExtPolicyZoo regenerates the eviction-policy-zoo extension.
func BenchmarkExtPolicyZoo(b *testing.B) {
	runExperiment(b, "ext-policyzoo", map[string]string{
		"hit_lobster": "lobsterHit",
		"hit_belady":  "beladyHit",
		"hit_arc":     "arcHit",
	})
}

// BenchmarkExtTimeToAccuracy regenerates the time-to-target-accuracy
// extension (Fig. 9 curves x Fig. 7 speedups).
func BenchmarkExtTimeToAccuracy(b *testing.B) {
	runExperiment(b, "ext-tta", map[string]string{
		"speedup_lobster": "lobsterTTASpeedup",
		"speedup_nopfs":   "nopfsTTASpeedup",
	})
}

// runSweep executes the Fig. 7(d) scalability sweep — eight independent
// campaigns (four node counts x two loaders) — through a bounded pool of
// the given width; width 0 means serial. The report is identical at any
// width (see internal/par); only wall time responds, which is exactly what
// this benchmark measures.
func runSweep(b *testing.B, width int) {
	exp, err := experiments.ByID("fig07d")
	if err != nil {
		b.Fatal(err)
	}
	params := experiments.Params{Scale: benchScale(b), Seed: 42}
	if width > 1 {
		params.Pool = par.NewPool(width)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepFanOutSerial is the multi-campaign sweep with campaigns
// run one after another — the pre-fan-out execution model.
func BenchmarkSweepFanOutSerial(b *testing.B) { runSweep(b, 0) }

// BenchmarkSweepFanOutParallel is the same sweep fanned out over
// GOMAXPROCS workers. Comparing against the serial variant isolates the
// wall-time win of the parallel fan-out on this machine.
func BenchmarkSweepFanOutParallel(b *testing.B) { runSweep(b, goruntime.GOMAXPROCS(0)) }
