// Package runtime is the online half of Lobster (Section 4.5): a real,
// concurrent data-loading runtime built on goroutines. Where
// internal/pipeline computes what would happen in virtual time, this
// package actually does it: worker pools load payload bytes through
// throttled storage tiers, a resizable preprocessing pool decodes and
// augments them, per-GPU request queues feed trainer goroutines that
// synchronize on a data-parallel barrier, and a channel-based distribution
// manager stands in for MPI between node-local caches.
//
// Wall-clock durations are the modeled ones multiplied by Options.
// TimeScale, so integration tests and examples run in milliseconds while
// exercising the same code paths a full-speed deployment would.
package runtime

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/datafile"
	"repro/internal/dataset"
	"repro/internal/preproc"
	"repro/internal/stats"
	"repro/internal/tier"
)

// Throttle serializes access to a shared bandwidth resource: each Acquire
// reserves a transfer slot and sleeps until it completes. It models the
// aggregate-throughput curves of internal/tier in real time.
type Throttle struct {
	mu    sync.Mutex
	next  time.Time
	scale float64 // time scale factor (1.0 = modeled real time)
}

// NewThrottle creates a throttle with the given time scale.
func NewThrottle(scale float64) *Throttle {
	return &Throttle{scale: scale}
}

// Acquire reserves `cost` modeled seconds of the resource and sleeps until
// the reservation completes. Concurrent acquirers queue FIFO, which is
// exactly how a saturated link behaves.
func (t *Throttle) Acquire(cost float64) {
	d := time.Duration(cost * t.scale * float64(time.Second))
	t.mu.Lock()
	now := time.Now()
	start := t.next
	if start.Before(now) {
		start = now
	}
	end := start.Add(d)
	t.next = end
	t.mu.Unlock()
	time.Sleep(time.Until(end))
}

// PFSStore serves sample payloads the way a parallel file system would:
// deterministic contents, per-operation latency, and a shared bandwidth
// throttle across all clients.
type PFSStore struct {
	ds       *dataset.Dataset
	seed     uint64
	curve    tier.Curve
	throttle *Throttle
	scale    float64
	file     *datafile.Reader // optional: serve real bytes from disk

	mu       sync.Mutex
	nOps     int64
	failures int64
	fault    chaos.Fault // degraded-mode state: error rate + extra latency
	rng      *stats.RNG
}

// ErrTransient is the sentinel for injected transient read failures (RPC
// timeouts, OST hiccups). Callers retry, matching with errors.Is so
// wrapped transients — as the retry helper produces on an exhausted
// budget — still count. See SetFailureRate and SetFault.
var ErrTransient = errors.New("runtime: transient PFS failure")

// NewPFSStore builds the store for a dataset. seed must match the
// dataset's generation seed so payload verification passes end to end.
func NewPFSStore(ds *dataset.Dataset, seed uint64, curve tier.Curve, scale float64) *PFSStore {
	return &PFSStore{
		ds:       ds,
		seed:     seed,
		curve:    curve,
		throttle: NewThrottle(scale),
		scale:    scale,
		rng:      stats.NewRNG(stats.DeriveSeed(seed, 0xfa11)),
	}
}

// UseFile switches the store to serve payloads from a packed on-disk
// dataset file (see internal/datafile) instead of regenerating them — the
// PFS then performs real file I/O per sample read. The file must contain
// this dataset (same count and seed).
func (s *PFSStore) UseFile(r *datafile.Reader) error {
	if r.Len() != s.ds.Len() {
		return fmt.Errorf("runtime: data file has %d samples, dataset %d", r.Len(), s.ds.Len())
	}
	if r.Seed() != s.seed {
		return fmt.Errorf("runtime: data file seed %d, dataset seed %d", r.Seed(), s.seed)
	}
	s.mu.Lock()
	s.file = r
	s.mu.Unlock()
	return nil
}

// SetFailureRate injects transient failures: each Read independently fails
// with the given probability (after paying its latency, as a timed-out
// request would). It is SetFault restricted to the error rate; the two
// share the degraded-mode state, so a chaos brownout reverting to the
// configured baseline rate goes through SetFault.
func (s *PFSStore) SetFailureRate(rate float64) {
	s.mu.Lock()
	s.fault.ErrRate = rate
	s.mu.Unlock()
}

// SetFault applies a chaos brownout to the store: every Read pays
// Fault.Lag plus a uniform draw from [0, Jitter) on top of the modeled
// latency, and independently fails with ErrRate (returning
// ErrTransient). A non-zero Fault.Seed reseeds the draw RNG, making the
// brownout window's failure pattern replayable. The zero Fault restores
// health.
func (s *PFSStore) SetFault(f chaos.Fault) {
	s.mu.Lock()
	s.fault = f
	if f.Seed != 0 {
		s.rng = stats.NewRNG(f.Seed)
	}
	s.mu.Unlock()
}

// Failures returns the number of injected failures so far.
func (s *PFSStore) Failures() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures
}

// Read fetches one sample, paying latency and bandwidth.
func (s *PFSStore) Read(id dataset.SampleID) ([]byte, error) {
	if int(id) < 0 || int(id) >= s.ds.Len() {
		return nil, fmt.Errorf("runtime: sample %d out of range", id)
	}
	size := s.ds.Size(id)
	// Latency is per-op and independent; bandwidth is shared.
	time.Sleep(time.Duration(s.curve.OpLatency * s.scale * float64(time.Second)))
	s.mu.Lock()
	f := s.fault
	extra := f.Lag
	if f.Jitter > 0 {
		extra += time.Duration(s.rng.Int63() % int64(f.Jitter))
	}
	failed := f.ErrRate > 0 && s.rng.Float64() < f.ErrRate
	if failed {
		s.failures++
	} else {
		s.nOps++
	}
	file := s.file
	s.mu.Unlock()
	// Brownout latency is wall-clock and applies to failures too — a
	// timed-out request costs its timeout.
	if extra > 0 {
		time.Sleep(extra)
	}
	if failed {
		return nil, ErrTransient
	}
	s.throttle.Acquire(float64(size) / (s.curve.PeakMBps * 1e6))
	if file != nil {
		return file.Read(id)
	}
	// Regenerated payloads draw from the size-classed pool; the data
	// path recycles them after decode when it still owns them
	// (DESIGN.md §12).
	buf := preproc.GetPayloadBuf(int(size))
	dataset.FillPayload(buf, s.seed, id)
	return buf, nil
}

// PooledReads reports whether Read returns buffers drawn from the
// size-classed payload pool (true for regenerated payloads, false when
// serving from a packed data file, whose reader allocates its own
// buffers). Callers use it to decide whether a buffer they are done
// with may be recycled (DESIGN.md §12).
func (s *PFSStore) PooledReads() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.file == nil
}

// Ops returns the number of reads served.
func (s *PFSStore) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nOps
}

// Directory tracks which nodes hold which samples — the metadata of the
// distributed cache. Safe for concurrent use.
type Directory struct {
	mu      sync.Mutex
	holders []uint64 // bitmask of nodes per sample (supports <= 64 nodes)
}

// NewDirectory creates a directory for numSamples samples across at most
// 64 nodes.
func NewDirectory(numSamples, nodes int) (*Directory, error) {
	if nodes > 64 {
		return nil, fmt.Errorf("runtime: directory supports <= 64 nodes, got %d", nodes)
	}
	return &Directory{holders: make([]uint64, numSamples)}, nil
}

// Add records that node holds the sample.
func (d *Directory) Add(node int, id dataset.SampleID) {
	d.mu.Lock()
	d.holders[id] |= 1 << uint(node)
	d.mu.Unlock()
}

// Remove records that node dropped the sample.
func (d *Directory) Remove(node int, id dataset.SampleID) {
	d.mu.Lock()
	d.holders[id] &^= 1 << uint(node)
	d.mu.Unlock()
}

// Holder returns some node holding the sample other than `not`, or -1.
func (d *Directory) Holder(id dataset.SampleID, not int) int {
	d.mu.Lock()
	mask := d.holders[id] &^ (1 << uint(not))
	d.mu.Unlock()
	if mask == 0 {
		return -1
	}
	for n := 0; n < 64; n++ {
		if mask&(1<<uint(n)) != 0 {
			return n
		}
	}
	return -1
}

// HolderBatch fills out[i] with whether any node other than `not` holds
// ids[i], taking the directory lock once for the whole batch (the thread
// controller scans entire iteration batches per decision).
func (d *Directory) HolderBatch(ids []dataset.SampleID, not int, out []bool) {
	clear := ^(uint64(1) << uint(not))
	d.mu.Lock()
	for i, id := range ids {
		out[i] = d.holders[id]&clear != 0
	}
	d.mu.Unlock()
}

// IsLastCopy reports whether node holds the only copy.
func (d *Directory) IsLastCopy(node int, id dataset.SampleID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.holders[id] == 1<<uint(node)
}

// PurgeNode clears every holder bit of node in one pass — the shard-map
// repair step after a cache-node loss: no sample may keep advertising a
// copy on the dead node, or peers would burn a fetch round trip on it.
// Returns how many entries were purged.
func (d *Directory) PurgeNode(node int) int {
	mask := uint64(1) << uint(node)
	n := 0
	d.mu.Lock()
	for i := range d.holders {
		if d.holders[i]&mask != 0 {
			d.holders[i] &^= mask
			n++
		}
	}
	d.mu.Unlock()
	return n
}

// CountNode returns how many samples the directory records node as
// holding (repair assertions and diagnostics).
func (d *Directory) CountNode(node int) int {
	mask := uint64(1) << uint(node)
	n := 0
	d.mu.Lock()
	for i := range d.holders {
		if d.holders[i]&mask != 0 {
			n++
		}
	}
	d.mu.Unlock()
	return n
}

// fetchRequest is a peer cache read over the distribution manager.
type fetchRequest struct {
	id    dataset.SampleID
	reply chan []byte // nil payload = not found
}

// DistributionManager routes peer-cache reads between nodes over channels
// — the MPI substitute. Each registered node serves its inbox from its
// own goroutine (started by the node runtime).
type DistributionManager struct {
	inboxes []chan fetchRequest
	curve   tier.Curve
	scale   float64
	// faults holds each node's serving fault: nil is healthy. Immutable
	// once published (setters swap whole states), except the seeded RNG,
	// which the jitter/error draws guard with the state's own mutex.
	faults []atomic.Pointer[peerFault]
}

// peerFault is one node's degraded serving state: down (crashed, every
// fetch from it times out empty), or a straggler profile (extra lag,
// jitter, and a flaky-fetch rate).
type peerFault struct {
	down    bool
	lag     time.Duration
	jitter  time.Duration
	errRate float64
	mu      sync.Mutex
	rng     *stats.RNG
}

// NewDistributionManager creates the manager for n nodes.
func NewDistributionManager(n int, curve tier.Curve, scale float64) *DistributionManager {
	dm := &DistributionManager{
		inboxes: make([]chan fetchRequest, n),
		curve:   curve,
		scale:   scale,
		faults:  make([]atomic.Pointer[peerFault], n),
	}
	for i := range dm.inboxes {
		dm.inboxes[i] = make(chan fetchRequest, 256)
	}
	return dm
}

// SetNodeFault applies a chaos straggler profile to node n's serving:
// every Fetch from it pays Fault.Lag plus a draw from [0, Jitter), and
// Fault.ErrRate of fetches return empty (peer timeout). The down flag
// is preserved; a zero fault on a healthy node clears the state.
func (dm *DistributionManager) SetNodeFault(n int, f chaos.Fault) {
	prev := dm.faults[n].Load()
	down := prev != nil && prev.down
	if f.IsZero() && !down {
		dm.faults[n].Store(nil)
		return
	}
	dm.faults[n].Store(&peerFault{
		down:    down,
		lag:     f.Lag,
		jitter:  f.Jitter,
		errRate: f.ErrRate,
		rng:     stats.NewRNG(f.Seed),
	})
}

// SetNodeDown marks node n's peer serving crashed (every fetch times
// out empty, paying one op latency) or revives it. The straggler
// profile, if any, is preserved across the transition.
func (dm *DistributionManager) SetNodeDown(n int, down bool) {
	prev := dm.faults[n].Load()
	// A fresh RNG per transition keeps states self-contained (a shared
	// stream across two published states would race); the draw sequence
	// stays deterministic because transitions are schedule-driven.
	next := &peerFault{down: down, rng: stats.NewRNG(0)}
	if prev != nil {
		next.lag, next.jitter, next.errRate = prev.lag, prev.jitter, prev.errRate
	}
	if !down && next.lag == 0 && next.jitter == 0 && next.errRate == 0 {
		dm.faults[n].Store(nil)
		return
	}
	dm.faults[n].Store(next)
}

// NodeDown reports whether node n's peer serving is marked crashed.
func (dm *DistributionManager) NodeDown(n int) bool {
	pf := dm.faults[n].Load()
	return pf != nil && pf.down
}

// Inbox returns node n's request stream (consumed by its server loop).
func (dm *DistributionManager) Inbox(n int) <-chan fetchRequest { return dm.inboxes[n] }

// fetchReplyPool recycles Fetch reply channels: each request uses one for
// exactly one send/receive pair, so after the receive the channel is
// empty and safe to lease out again. Channels are pointer-shaped, so the
// pool round trip itself never allocates.
var fetchReplyPool = sync.Pool{New: func() any { return make(chan []byte, 1) }}

// Fetch asks `from` for a sample, paying interconnect latency + transfer.
// Returns nil if the peer no longer holds it (a benign race: the directory
// is advisory, exactly as in a real distributed cache). The returned
// slice is a pooled copy made by the serving node — the caller owns it
// exclusively (DESIGN.md §12).
func (dm *DistributionManager) Fetch(from int, id dataset.SampleID, size int64) []byte {
	var extra time.Duration
	fail := false
	if pf := dm.faults[from].Load(); pf != nil {
		if pf.down {
			// Crashed peer: the requester pays one op latency (its
			// timeout) and gets nothing — the failover-to-PFS path.
			time.Sleep(time.Duration(dm.curve.OpLatency * dm.scale * float64(time.Second)))
			return nil
		}
		extra = pf.lag
		if pf.jitter > 0 || pf.errRate > 0 {
			pf.mu.Lock()
			if pf.jitter > 0 {
				extra += time.Duration(pf.rng.Int63() % int64(pf.jitter))
			}
			fail = pf.errRate > 0 && pf.rng.Float64() < pf.errRate
			pf.mu.Unlock()
		}
	}
	cost := dm.curve.OpLatency + float64(size)/(dm.curve.PeakMBps*1e6)
	// Straggler lag/jitter are wall-clock (chaos faults do not scale
	// with TimeScale) on top of the modeled transfer cost.
	time.Sleep(time.Duration(cost*dm.scale*float64(time.Second)) + extra)
	if fail {
		return nil
	}
	reply := fetchReplyPool.Get().(chan []byte)
	dm.inboxes[from] <- fetchRequest{id: id, reply: reply}
	payload := <-reply
	fetchReplyPool.Put(reply)
	return payload
}

// Close shuts the inboxes down (after all node servers stopped reading).
func (dm *DistributionManager) Close() {
	for _, ch := range dm.inboxes {
		close(ch)
	}
}
