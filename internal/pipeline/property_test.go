package pipeline

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
)

// TestMoreCacheNeverHurtsMuch: growing the node cache must not slow
// Lobster down (a small tolerance absorbs noise reshuffling — the PFS
// burstiness draws depend on miss patterns, which change with the cache).
func TestMoreCacheNeverHurtsMuch(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "mono", NumSamples: 6000, MeanSize: 105 << 10, SigmaLog: 0.45,
		MinSize: 4 << 10, Classes: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, _ := cluster.ModelByName("resnet50")
	prev := 0.0
	for _, frac := range []int{10, 25, 50, 90} {
		top := cluster.ThetaGPULike(1, ds.TotalBytes()*int64(frac)/100)
		res, err := Run(Config{
			Topology: top, Model: model, Dataset: ds, Epochs: 4, Seed: 3,
			Strategy: loader.Lobster(),
		})
		if err != nil {
			t.Fatal(err)
		}
		tt := res.Metrics.TotalTime
		if prev > 0 && tt > prev*1.10 {
			t.Fatalf("cache %d%%: time %.2f worse than smaller cache's %.2f", frac, tt, prev)
		}
		prev = tt
	}
}

// TestMoreEpochsScaleLinearly: doubling epochs must roughly double total
// time once past warm-up (the steady state is stationary).
func TestMoreEpochsScaleLinearly(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "lin", NumSamples: 6000, MeanSize: 105 << 10, SigmaLog: 0.45,
		MinSize: 4 << 10, Classes: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, _ := cluster.ModelByName("resnet50")
	top := cluster.ThetaGPULike(1, ds.TotalBytes()*30/100)
	run := func(epochs int) float64 {
		res, err := Run(Config{
			Topology: top, Model: model, Dataset: ds, Epochs: epochs, Seed: 5,
			Strategy: loader.NoPFS(top.GPUsPerNode, top.CPUThreads),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.TotalTime
	}
	t4, t8 := run(4), run(8)
	ratio := t8 / t4
	// Warm-up epochs are slower, so the ratio sits a bit under 2.
	if ratio < 1.5 || ratio > 2.2 {
		t.Fatalf("8-epoch time %.2f vs 4-epoch %.2f (ratio %.2f), want ~2", t8, t4, ratio)
	}
}

// TestSeedChangesScheduleNotShape: different seeds must give different
// totals (different shuffles and noise) but the Lobster-vs-PyTorch
// ordering must hold for every seed.
func TestSeedChangesScheduleNotShape(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "seed", NumSamples: 6000, MeanSize: 105 << 10, SigmaLog: 0.45,
		MinSize: 4 << 10, Classes: 10, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, _ := cluster.ModelByName("resnet50")
	top := cluster.ThetaGPULike(1, ds.TotalBytes()*30/100)
	var prevLob float64
	for _, seed := range []uint64{1, 2, 3} {
		base, err := Run(Config{Topology: top, Model: model, Dataset: ds, Epochs: 4, Seed: seed,
			Strategy: loader.PyTorch(top.GPUsPerNode, top.CPUThreads)})
		if err != nil {
			t.Fatal(err)
		}
		lob, err := Run(Config{Topology: top, Model: model, Dataset: ds, Epochs: 4, Seed: seed,
			Strategy: loader.Lobster()})
		if err != nil {
			t.Fatal(err)
		}
		if lob.Metrics.TotalTime >= base.Metrics.TotalTime {
			t.Fatalf("seed %d: Lobster (%.2f) not faster than PyTorch (%.2f)",
				seed, lob.Metrics.TotalTime, base.Metrics.TotalTime)
		}
		if prevLob != 0 && lob.Metrics.TotalTime == prevLob {
			t.Fatalf("seed change did not change the run at all")
		}
		prevLob = lob.Metrics.TotalTime
	}
}
