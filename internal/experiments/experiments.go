// Package experiments regenerates every table and figure of the paper's
// evaluation (and the measured figures of the motivation section). Each
// experiment is a self-contained runner that builds its workload, executes
// the simulation, and renders the same rows/series the paper reports,
// alongside machine-readable headline values used by tests and
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/par"
)

// Params control an experiment run.
type Params struct {
	// Scale selects dataset sizes (see dataset.Scale). Defaults to
	// ScaleSmall.
	Scale dataset.Scale
	// Epochs overrides the per-scale default epoch count (0 = default).
	Epochs int
	// Seed is the base seed for schedules and noise.
	Seed uint64
	// Pool, when non-nil, fans independent simulation campaigns within an
	// experiment out across its workers (nil = serial). Every campaign is
	// seeded independently and results are slotted by campaign index, so
	// a report is byte-identical for any pool width — parallelism changes
	// wall time only, never a reported number.
	Pool *par.Pool
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// epochs returns the effective epoch count: explicit override, or the
// scale default. The paper trains 50 epochs; reduced scales use fewer so
// every experiment finishes in seconds while keeping enough epochs past
// cache warm-up for steady-state behaviour.
func (p Params) epochs() int {
	if p.Epochs > 0 {
		return p.Epochs
	}
	switch p.Scale {
	case dataset.ScaleTiny:
		return 4
	case dataset.ScaleSmall:
		return 10
	case dataset.ScaleMedium:
		return 20
	default:
		return 50
	}
}

// Report is an experiment's rendered output.
type Report struct {
	ID    string
	Title string
	// Lines is the human-readable reproduction (rows/series/bars).
	Lines []string
	// Values holds headline numbers keyed by stable names, used by tests
	// and the EXPERIMENTS.md generator.
	Values map[string]float64
}

// Printf appends a formatted line to the report.
func (r *Report) Printf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Set records a headline value.
func (r *Report) Set(key string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[key] = v
}

// Text renders the full report.
func (r *Report) Text() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		out += l + "\n"
	}
	return out
}

// SortedValues returns the headline values in key order.
func (r *Report) SortedValues() []string {
	keys := make([]string, 0, len(r.Values))
	for k := range r.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%.4g", k, r.Values[k])
	}
	return out
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Title string
	// Paper summarises the published result this experiment reproduces.
	Paper string
	Run   func(Params) (*Report, error)
}

// All returns every experiment in figure order.
func All() []Experiment {
	return []Experiment{
		Fig03Breakdown(),
		Fig04ReuseDistance(),
		Fig06PreprocThreads(),
		Fig07aSingleNode1K(),
		Fig07bSingleNode22K(),
		Fig07cMultiNode22K(),
		Fig07dScalability(),
		Fig08aImbalanceSingle(),
		Fig08bImbalanceMulti(),
		Fig08cBatchTime(),
		Fig09Accuracy(),
		TabHitRatio(),
		Fig10GPUUtil(),
		Fig11Ablation(),
		ExtCacheSweep(),
		ExtPolicyZoo(),
		ExtTimeToAccuracy(),
		ExtChaos(),
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}
