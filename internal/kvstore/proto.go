package kvstore

import (
	"bufio"
	"errors"
	"math/bits"
	"sync"
)

// Protocol ops, shared by v1 and v2. The batch ops exist only in v2
// frames; a v1 peer sending them gets statusError.
const (
	opGet byte = iota + 1
	opPut
	opDelete
	opStats
	opMultiGet // v2 only
	opMultiPut // v2 only
)

// Response statuses.
const (
	statusOK byte = iota + 1
	statusNotFound
	statusError
	statusTooLarge
	// statusRetryLater is the admission layer's cheap rejection: the
	// request was shed (deadline expired, over quota, or queue full)
	// without occupying a worker. Clients back off and retry.
	statusRetryLater
)

// statsWireLen is the encoded size of a Stats payload: nine big-endian
// u64 counters (items, used bytes, hits, misses, evictions, too-large
// refusals, and the three admission shed counters).
const statsWireLen = 72

// frameV2Magic introduces a v2 request frame. It is disjoint from every
// v1 op byte, so the server classifies each incoming frame by its first
// byte and one connection can carry either protocol (or both).
const frameV2Magic byte = 0xA2

// frameV2DeadlineMagic introduces the v2 frame extension that carries a
// client deadline: the layout is identical to a frameV2Magic frame with
// one extra u32 after the request ID — the remaining deadline budget in
// microseconds, measured by the client when the frame is serialized.
// A relative budget needs no clock synchronization; the server restarts
// it at parse time, so it bounds the time a request may spend queued
// behind the admission gate and executing, not time on the wire.
const frameV2DeadlineMagic byte = 0xA3

// frameV2TraceMagic introduces the v2 frame extension that carries a
// trace context: the layout is identical to a frameV2Magic frame with
// one extra u64 after the request ID — an obs.TraceCtx packing the
// originating (rank, epoch, iter). The server stamps it on the span it
// records for the request, so /trace.json scraped from a kv shard can
// be merged with the requesting rank's trace and correlated on the
// rank/iter labels. Deadline and trace extensions are disjoint frames:
// when a call carries both, the deadline wins (overload control
// outranks attribution) and the trace context is dropped for that
// request.
const frameV2TraceMagic byte = 0xA4

// maxKeyLen, maxValLen and maxBatchLen bound request sizes (defense
// against corrupt or hostile peers).
const (
	maxKeyLen   = 1 << 10
	maxValLen   = 64 << 20
	maxBatchLen = 1 << 16 // keys per MultiGet/MultiPut frame
)

// ErrTooLarge is returned by Put/MultiPut when a value exceeds the
// receiving shard's capacity and can never be admitted.
var ErrTooLarge = errors.New("kvstore: value exceeds shard capacity")

// ErrRetryLater is returned when the server sheds a request at
// admission (statusRetryLater) and the retry budget — if any — is
// exhausted. The context-carrying client ops retry it internally with
// jittered exponential backoff; the plain ops surface it immediately.
var ErrRetryLater = errors.New("kvstore: server overloaded, retry later")

// errFrame is the generic malformed-frame error; connections carrying a
// malformed frame are dropped, matching v1 behaviour.
var errFrame = errors.New("kvstore: malformed frame")

// readLen and friends move u32 length fields byte-at-a-time through
// bufio: unlike an io.ReadFull/Write with a stack array, nothing
// escapes, so the frame hot path stays allocation-free.
//
//lint:hotpath length fields move byte-at-a-time exactly so the per-frame path stays allocation-free
func readLen(r *bufio.Reader, max uint32) (uint32, error) {
	n, err := readU32(r)
	if err != nil {
		return 0, err
	}
	if n > max {
		return 0, errors.New("kvstore: frame too large")
	}
	return n, nil
}

//lint:hotpath length fields move byte-at-a-time exactly so the per-frame path stays allocation-free
func writeU32(w *bufio.Writer, v uint32) {
	// bufio errors are sticky; the eventual Flush surfaces the first.
	_ = w.WriteByte(byte(v >> 24))
	_ = w.WriteByte(byte(v >> 16))
	_ = w.WriteByte(byte(v >> 8))
	_ = w.WriteByte(byte(v))
}

//lint:hotpath length fields move byte-at-a-time exactly so the per-frame path stays allocation-free
func writeU64(w *bufio.Writer, v uint64) {
	writeU32(w, uint32(v>>32))
	writeU32(w, uint32(v))
}

//lint:hotpath length fields move byte-at-a-time exactly so the per-frame path stays allocation-free
func readU64(r *bufio.Reader) (uint64, error) {
	hi, err := readU32(r)
	if err != nil {
		return 0, err
	}
	lo, err := readU32(r)
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

//lint:hotpath length fields move byte-at-a-time exactly so the per-frame path stays allocation-free
func readU32(r *bufio.Reader) (uint32, error) {
	var v uint32
	for i := 0; i < 4; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		v = v<<8 | uint32(b)
	}
	return v, nil
}

// bufpool is a size-classed free list for transient request/response
// scratch (key buffers, status vectors). Classes are powers of two from
// 32 B up to maxValLen; anything larger is allocated directly. Buffers
// travel inside a reusable *pbuf wrapper so recycling one allocates
// nothing (a bare []byte would box a fresh slice header on every
// Pool.Put). They flow through getBuf/putBuf on both the client and
// the server, so the steady-state hot path allocates (almost) nothing
// per op.
var bufpool [27]sync.Pool

// pbuf is a pooled buffer; use p.b, return with putBuf.
type pbuf struct{ b []byte }

// sizeClass returns the pool index whose capacity (1<<idx) fits n.
func sizeClass(n int) int {
	if n <= 32 {
		return 5
	}
	return bits.Len(uint(n - 1))
}

// getBuf returns a wrapper holding a length-n buffer.
func getBuf(n int) *pbuf {
	if n > maxValLen {
		return &pbuf{b: make([]byte, n)}
	}
	c := sizeClass(n)
	if p, ok := bufpool[c].Get().(*pbuf); ok {
		p.b = p.b[:n]
		return p
	}
	return &pbuf{b: make([]byte, n, 1<<c)}
}

// putBuf recycles a buffer obtained from getBuf. Callers must not
// retain p or p.b afterwards.
func putBuf(p *pbuf) {
	c := cap(p.b)
	if c < 32 || c > maxValLen || c&(c-1) != 0 {
		return // oversized one-off: let the GC have it
	}
	p.b = p.b[:0]
	bufpool[sizeClass(c)].Put(p)
}
