package cache

import (
	"container/list"

	"repro/internal/dataset"
)

// lruPolicy evicts the least-recently-used sample. It models the behaviour
// a loader gets "for free" from the OS page cache — the effective policy
// under PyTorch DataLoader and DALI, which have no application-level
// eviction logic of their own.
type lruPolicy struct {
	name       string
	order      *list.List // front = most recent
	entries    map[dataset.SampleID]*list.Element
	touchOnGet bool // false turns this into FIFO
}

// NewLRU returns a least-recently-used policy.
func NewLRU() Policy {
	return &lruPolicy{
		name:       "lru",
		order:      list.New(),
		entries:    make(map[dataset.SampleID]*list.Element),
		touchOnGet: true,
	}
}

// NewFIFO returns a first-in-first-out policy (insertion order, ignoring
// hits) — a common low-cost baseline.
func NewFIFO() Policy {
	return &lruPolicy{
		name:    "fifo",
		order:   list.New(),
		entries: make(map[dataset.SampleID]*list.Element),
	}
}

func (p *lruPolicy) Name() string { return p.name }

func (p *lruPolicy) OnPut(id dataset.SampleID, _ Iter) {
	if e, ok := p.entries[id]; ok {
		p.order.MoveToFront(e)
		return
	}
	p.entries[id] = p.order.PushFront(id)
}

func (p *lruPolicy) OnGet(id dataset.SampleID, _ Iter) {
	if !p.touchOnGet {
		return
	}
	if e, ok := p.entries[id]; ok {
		p.order.MoveToFront(e)
	}
}

func (p *lruPolicy) OnRemove(id dataset.SampleID) {
	if e, ok := p.entries[id]; ok {
		p.order.Remove(e)
		delete(p.entries, id)
	}
}

func (p *lruPolicy) Victim(_ Iter, _ dataset.SampleID) (dataset.SampleID, bool) {
	back := p.order.Back()
	if back == nil {
		return NoSample, false
	}
	return back.Value.(dataset.SampleID), true
}

func (p *lruPolicy) DrainExpired(_ Iter, _ func(dataset.SampleID)) {}

// neverEvict refuses all evictions: once the cache fills, further inserts
// are rejected. This is the MinIO behaviour the related-work section calls
// out: "once data samples are cached, they are never evicted out of the
// cache".
type neverEvict struct{}

// NewNeverEvict returns the never-evict (MinIO-style) policy.
func NewNeverEvict() Policy { return neverEvict{} }

func (neverEvict) Name() string                              { return "never-evict" }
func (neverEvict) OnPut(dataset.SampleID, Iter)              {}
func (neverEvict) OnGet(dataset.SampleID, Iter)              {}
func (neverEvict) OnRemove(dataset.SampleID)                 {}
func (neverEvict) DrainExpired(Iter, func(dataset.SampleID)) {}
func (neverEvict) Victim(Iter, dataset.SampleID) (dataset.SampleID, bool) {
	return NoSample, false
}
