package access

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/sampler"
)

func testSchedule(t testing.TB, n, world, batch int) *sampler.Schedule {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "a", NumSamples: n, MeanSize: 1024, Classes: 2, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(ds, sampler.Config{WorldSize: world, BatchSize: batch, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	s := testSchedule(t, 200, 4, 5)
	if _, err := Build(nil, 0, 1, 1, 0); err == nil {
		t.Error("nil schedule accepted")
	}
	if _, err := Build(s, -1, 1, 1, 0); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := Build(s, 2, 2, 1, 0); err == nil {
		t.Error("node beyond world accepted")
	}
	if _, err := Build(s, 0, 2, 0, 0); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestAccessListsMatchSchedule(t *testing.T) {
	s := testSchedule(t, 200, 4, 5)
	const epochs = 3
	p, err := Build(s, 1, 2, epochs, 0) // node 1 of 2 nodes x 2 GPUs
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct accesses directly and compare.
	want := map[dataset.SampleID][]Iter{}
	for epoch := 0; epoch < epochs; epoch++ {
		for it := 0; it < s.IterationsPerEpoch(); it++ {
			g := Iter(epoch*s.IterationsPerEpoch() + it)
			for _, id := range s.NodeBatch(nil, epoch, it, 1, 2) {
				want[id] = append(want[id], g)
			}
		}
	}
	for id, w := range want {
		got := p.AccessesOf(id)
		if len(got) != len(w) {
			t.Fatalf("sample %d: %d accesses, want %d", id, len(got), len(w))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("sample %d access %d = %d, want %d", id, i, got[i], w[i])
			}
		}
	}
}

func TestAccessListsAscending(t *testing.T) {
	s := testSchedule(t, 300, 2, 10)
	p, err := Build(s, 0, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 300; id++ {
		list := p.AccessesOf(dataset.SampleID(id))
		for i := 1; i < len(list); i++ {
			if list[i] <= list[i-1] {
				t.Fatalf("sample %d access list not strictly ascending: %v", id, list)
			}
		}
	}
}

func TestNextUse(t *testing.T) {
	s := testSchedule(t, 100, 1, 10) // single GPU: node sees every sample once per epoch
	p, err := Build(s, 0, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := dataset.SampleID(0)
	list := p.AccessesOf(id)
	if len(list) != 2 {
		t.Fatalf("sample 0 accessed %d times in 2 epochs, want 2", len(list))
	}
	if got := p.NextUse(id, -1); got != list[0] {
		t.Fatalf("NextUse(-1) = %d, want %d", got, list[0])
	}
	if got := p.NextUse(id, list[0]); got != list[1] {
		t.Fatalf("NextUse(%d) = %d, want %d", list[0], got, list[1])
	}
	if got := p.NextUse(id, list[1]); got != NoAccess {
		t.Fatalf("NextUse after last = %d, want NoAccess", got)
	}
}

func TestUsesRemaining(t *testing.T) {
	s := testSchedule(t, 100, 1, 10)
	const epochs = 5
	p, _ := Build(s, 0, 1, epochs, 0)
	id := dataset.SampleID(42)
	if got := p.UsesRemaining(id, -1); got != epochs {
		t.Fatalf("UsesRemaining(-1) = %d, want %d", got, epochs)
	}
	list := p.AccessesOf(id)
	for i, g := range list {
		if got := p.UsesRemaining(id, g); got != epochs-i-1 {
			t.Fatalf("UsesRemaining after access %d = %d, want %d", i, got, epochs-i-1)
		}
	}
}

func TestNextReuseDistance(t *testing.T) {
	s := testSchedule(t, 100, 1, 10)
	p, _ := Build(s, 0, 1, 3, 0)
	id := dataset.SampleID(7)
	list := p.AccessesOf(id)
	d := p.NextReuseDistance(id, list[0])
	if d != list[1]-list[0] {
		t.Fatalf("NextReuseDistance = %d, want %d", d, list[1]-list[0])
	}
	if got := p.NextReuseDistance(id, list[len(list)-1]); got != NoAccess {
		t.Fatalf("distance after last access = %d, want NoAccess", got)
	}
}

func TestHorizonBoundsLists(t *testing.T) {
	s := testSchedule(t, 100, 1, 10)
	p, err := Build(s, 0, 1, 10, 2) // plan 10 epochs, detail only 2
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalIterations() != Iter(10*s.IterationsPerEpoch()) {
		t.Fatalf("TotalIterations = %d", p.TotalIterations())
	}
	for id := 0; id < 100; id++ {
		if got := len(p.AccessesOf(dataset.SampleID(id))); got != 2 {
			t.Fatalf("sample %d has %d accesses with horizon 2, want 2", id, got)
		}
	}
}

func TestReuseDistanceHistogramLongDistances(t *testing.T) {
	// With a single node consuming the whole dataset each epoch, every
	// reuse distance is around I iterations — i.e., "long" in the paper's
	// sense (>= one epoch). This mirrors the Fig. 4 observation that most
	// samples have reuse distance around/above an epoch length.
	s := testSchedule(t, 1000, 1, 10) // I = 100
	p, _ := Build(s, 0, 1, 4, 0)
	h, err := p.ReuseDistanceHistogram(20)
	if err != nil {
		t.Fatal(err)
	}
	iters := float64(s.IterationsPerEpoch())
	// All reuse distances lie in (0, 2I): consecutive epoch accesses. The
	// tolerance absorbs linear apportioning within log-histogram bins.
	if frac := h.FractionAbove(2 * iters); frac > 0.05 {
		t.Fatalf("%.2f%% of distances above 2I, want ~0", frac*100)
	}
	if frac := h.FractionAbove(iters / 2); frac < 0.8 {
		t.Fatalf("only %.2f%% of distances above I/2, want most", frac*100)
	}
	mean, n := p.MeanReuseDistance()
	if n != 3*1000 {
		t.Fatalf("reuse pairs = %d, want 3000", n)
	}
	if mean < 0.5*iters || mean > 1.5*iters {
		t.Fatalf("mean reuse distance = %g, want ~I=%g", mean, iters)
	}
}

func TestMultiNodeFewerAccesses(t *testing.T) {
	// With 2 nodes, each node accesses ~half the samples per epoch, so
	// per-sample per-node access counts across E epochs average E/2.
	s := testSchedule(t, 400, 4, 10)
	const epochs = 8
	p0, _ := Build(s, 0, 2, epochs, 0)
	var total int
	for id := 0; id < 400; id++ {
		total += len(p0.AccessesOf(dataset.SampleID(id)))
	}
	wantTotal := epochs * s.SamplesPerEpoch() / 2 // half the world on node 0
	if total != wantTotal {
		t.Fatalf("node 0 total accesses = %d, want %d", total, wantTotal)
	}
}

func TestNextUsePropertyConsistent(t *testing.T) {
	s := testSchedule(t, 150, 1, 10)
	p, _ := Build(s, 0, 1, 3, 0)
	f := func(idRaw uint8, afterRaw int16) bool {
		id := dataset.SampleID(int(idRaw) % 150)
		after := Iter(afterRaw)
		next := p.NextUse(id, after)
		if next == NoAccess {
			return p.UsesRemaining(id, after) == 0
		}
		// next must be an actual access, strictly after `after`, and
		// UsesRemaining must count it.
		if next <= after || p.UsesRemaining(id, after) < 1 {
			return false
		}
		found := false
		for _, g := range p.AccessesOf(id) {
			if g == next {
				found = true
			}
			if g > after && g < next {
				return false // skipped an earlier access
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
