package runtime

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/loader"
)

func TestKVClusterAsSharedCacheTier(t *testing.T) {
	// Three shards back the shared tier; two nodes miss into it.
	var addrs []string
	for i := 0; i < 3; i++ {
		s, err := kvstore.NewServer("127.0.0.1:0", 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		addrs = append(addrs, s.Addr())
	}
	cluster, err := kvstore.NewCluster(addrs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	opts := testOptions(t, loader.Lobster(), 2, 2)
	opts.KVCache = cluster
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(stats.Iterations) * uint64(4*opts.Model.BatchSize)
	if stats.SamplesVerified != want {
		t.Fatalf("verified %d, want %d", stats.SamplesVerified, want)
	}
	// Node B must find node A's PFS write-backs in the cluster.
	if stats.RemoteHits == 0 {
		t.Fatal("no KV-cluster hits across nodes")
	}
	st, err := cluster.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Items == 0 || st.Hits == 0 {
		t.Fatalf("cluster unused: %+v", st)
	}
}
