//go:build !race

package preproc

const raceEnabled = false
