package dataset

import "fmt"

// Scale selects how large the synthetic datasets are relative to the
// paper's real ones. The experiments' logical structure (iterations per
// epoch, cache-to-dataset ratio) is preserved at every scale; only absolute
// sample counts shrink, so reduced scales run quickly on one core.
type Scale int

const (
	// ScaleTiny is for unit tests: thousands of samples.
	ScaleTiny Scale = iota
	// ScaleSmall is the default bench scale: tens of thousands of samples.
	ScaleSmall
	// ScaleMedium trades a few seconds per experiment for tighter
	// statistics.
	ScaleMedium
	// ScaleFull uses the paper's true sample counts (1.28 M / 14.2 M).
	// Virtual-time simulation handles it, but expect minutes per run.
	ScaleFull
)

// String returns the flag-friendly name of the scale.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a flag value into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return ScaleTiny, nil
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("dataset: unknown scale %q (want tiny|small|medium|full)", s)
	}
}

// divisor returns the sample-count reduction factor for the scale.
func (s Scale) divisor() int {
	switch s {
	case ScaleTiny:
		return 512
	case ScaleSmall:
		return 64
	case ScaleMedium:
		return 16
	default:
		return 1
	}
}

// ImageNet1K returns a Spec matching ImageNet-1K at the given scale:
// 1.28 M training images, 135 GB total (mean ≈ 105 KB), 1000 classes.
func ImageNet1K(scale Scale, seed uint64) Spec {
	n := 1281167 / scale.divisor()
	return Spec{
		Name:       "imagenet-1k",
		NumSamples: n,
		MeanSize:   105 * 1024,
		SigmaLog:   0.45,
		MinSize:    4 * 1024,
		MaxSize:    1024 * 1024,
		Classes:    1000,
		Seed:       seed,
	}
}

// ImageNet22K returns a Spec matching ImageNet-22K at the given scale:
// 14 197 103 training images, 1.3 TB total, sizes mostly 10–50 KB,
// 21 841 classes.
func ImageNet22K(scale Scale, seed uint64) Spec {
	n := 14197103 / scale.divisor()
	return Spec{
		Name:       "imagenet-22k",
		NumSamples: n,
		MeanSize:   92 * 1024, // 1.3 TB / 14.2 M
		SigmaLog:   0.8,       // heavier spread: body 10-50 KB, long tail
		MinSize:    10 * 1024,
		MaxSize:    2048 * 1024,
		Classes:    21841,
		Seed:       seed,
	}
}
