package pipeline

import (
	"math"
	"testing"
	"testing/quick"

	dessim "repro/internal/sim"
	"repro/internal/stats"
)

// eventPoolTimes approximates processor sharing with a discrete-event
// round-robin server: the pool serves active queues in fixed quanta,
// rotating fairly. As the quantum shrinks it converges to the analytic
// water-filling solution used by sharedPoolTimes — an independent check
// of the shared-pool model from internal/sim's event engine.
func eventPoolTimes(works []float64, quantum float64) []float64 {
	eng := dessim.NewEngine()
	remaining := append([]float64(nil), works...)
	done := make([]float64, len(works))
	var serve func()
	serve = func() {
		// Pick the next active queue round-robin by smallest remaining
		// index order each quantum cycle; simpler: serve every active
		// queue one quantum per cycle.
		active := 0
		for _, r := range remaining {
			if r > 1e-12 {
				active++
			}
		}
		if active == 0 {
			return
		}
		// One cycle serves each active queue for quantum pool-seconds of
		// its own work; the cycle's wall duration is active*min(quantum,
		// max remaining) — modeled by sequential quanta.
		cycle := 0.0
		for i := range remaining {
			if remaining[i] <= 1e-12 {
				continue
			}
			q := quantum
			if remaining[i] < q {
				q = remaining[i]
			}
			remaining[i] -= q
			cycle += q
			if remaining[i] <= 1e-12 {
				at := float64(eng.Now()) + cycle
				i := i
				eng.At(dessim.Time(at), func() { done[i] = at })
			}
		}
		eng.After(dessim.Time(cycle), serve)
	}
	eng.At(0, serve)
	eng.Run()
	return done
}

func TestSharedPoolMatchesEventSimulation(t *testing.T) {
	cases := [][]float64{
		{1, 1, 1, 1},
		{1, 4},
		{0.5, 0.5, 3},
		{2},
		{0, 1, 2},
	}
	for _, works := range cases {
		analytic := make([]float64, len(works))
		sharedPoolTimes(works, analytic, make([]poolQueue, len(works)))
		event := eventPoolTimes(works, 1e-4)
		for i := range works {
			if math.Abs(analytic[i]-event[i]) > 1e-2*(analytic[i]+1e-9)+1e-3 {
				t.Errorf("works %v queue %d: analytic %.4f vs event %.4f",
					works, i, analytic[i], event[i])
			}
		}
	}
}

func TestSharedPoolPropertyVsEvents(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := r.Intn(5) + 1
		works := make([]float64, n)
		for i := range works {
			works[i] = r.Float64() * 2
		}
		analytic := make([]float64, n)
		sharedPoolTimes(works, analytic, make([]poolQueue, n))
		event := eventPoolTimes(works, 5e-4)
		for i := range works {
			if math.Abs(analytic[i]-event[i]) > 0.02*(analytic[i]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSharedPoolConservation: total served pool-seconds equal total work,
// and the last completion equals the sum (a single pool serves one
// pool-second per second).
func TestSharedPoolConservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := r.Intn(8) + 1
		works := make([]float64, n)
		sum := 0.0
		for i := range works {
			works[i] = r.Float64() * 3
			sum += works[i]
		}
		out := make([]float64, n)
		sharedPoolTimes(works, out, make([]poolQueue, n))
		last := 0.0
		for i, v := range out {
			if v > last {
				last = v
			}
			// No queue finishes before its own work could complete even
			// alone, nor after the total.
			if v+1e-9 < works[i] || v > sum+1e-9 {
				return false
			}
		}
		return math.Abs(last-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
