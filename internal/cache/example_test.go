package cache_test

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/dataset"
)

// futureOracle is a toy clairvoyant oracle for the example (I = 100):
// sample 1 is reused at iteration 5, sample 2 at iteration 150 (within
// the next epoch), sample 9 at iteration 900 (far beyond it), and sample
// 3 never again.
type futureOracle struct{}

func (futureOracle) NextUse(id dataset.SampleID, after cache.Iter) cache.Iter {
	uses := map[dataset.SampleID]cache.Iter{1: 5, 2: 150, 9: 900}
	if u, ok := uses[id]; ok && after < u {
		return u
	}
	return cache.NoAccess
}

func (o futureOracle) UsesRemaining(id dataset.SampleID, after cache.Iter) int {
	if o.NextUse(id, after) == cache.NoAccess {
		return 0
	}
	return 1
}

func (futureOracle) IterationsPerEpoch() int { return 100 }

// Example demonstrates the two sides of the Lobster policy (Section 4.4):
// prefetch coordination refuses to evict samples needed sooner than the
// incoming one, and the reuse-distance rule proactively drops samples not
// needed within the next epoch.
func Example() {
	policy := cache.NewLobster(futureOracle{}, cache.LobsterOptions{})
	c, err := cache.New(20, policy)
	if err != nil {
		log.Fatal(err)
	}
	c.Put(1, 10, 0) // next use at iteration 5
	c.Put(2, 10, 0) // next use at iteration 150 (within the next epoch)

	// Sample 3 is never used again: both residents are needed sooner, so
	// the insert is refused rather than wasting an eviction (the
	// "prioritize prefetches with the nearest reuse distance" rule).
	_, admitted := c.Put(3, 10, 0)
	fmt.Println("useless sample admitted:", admitted)

	// Sample 9 is needed only at iteration 900 — beyond the next epoch
	// (distance > 2*I - h). With free space it is cached, but the
	// reuse-distance rule immediately flags it, and the next maintenance
	// pass drops it to make room for more prefetches.
	c.Remove(2)
	_, admitted = c.Put(9, 10, 0)
	fmt.Println("far-future sample admitted:", admitted)
	fmt.Println("proactively dropped:", c.Maintain(0))
	// Output:
	// useless sample admitted: false
	// far-future sample admitted: true
	// proactively dropped: [9]
}
