package lint

import (
	"strings"
	"testing"
)

func lockorderFindings(t *testing.T, srcs ...fixtureSrc) []Finding {
	t.Helper()
	return moduleFindings(t, LockOrder, checkFixtureModule(t, srcs...))
}

func TestLockOrderSamePackageCycle(t *testing.T) {
	got := lockorderFindings(t, fixtureSrc{path: "fix/cycle", src: `package cycle

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func takeBoth(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b) // A.mu -> B.mu
}

func lockB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

func takeBothReversed(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // B.mu -> A.mu: closes the cycle
	a.mu.Unlock()
}
`})
	if len(got) != 1 {
		t.Fatalf("got %d lockorder findings, want 1:\n%s", len(got), renderFindings(got))
	}
	msg := got[0].Message
	if !strings.Contains(msg, "potential deadlock: lock-order cycle among 2 locks") {
		t.Fatalf("unexpected message: %s", msg)
	}
	// Both lock identities and at least one interprocedural witness chain
	// must be named so the report is actionable.
	for _, want := range []string{"cycle.A.mu", "cycle.B.mu", "via"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message missing %q: %s", want, msg)
		}
	}
}

func TestLockOrderCrossPackageCycle(t *testing.T) {
	got := lockorderFindings(t,
		fixtureSrc{path: "fix/a", src: `package a

import "sync"

type Table struct{ Mu sync.Mutex }

var Shared Table

// Poke acquires the shared table lock.
func Poke() {
	Shared.Mu.Lock()
	defer Shared.Mu.Unlock()
}
`},
		fixtureSrc{path: "fix/b", src: `package b

import (
	"sync"

	"fix/a"
)

var mu sync.Mutex

func outer() {
	mu.Lock()
	defer mu.Unlock()
	a.Poke() // b.mu -> a.Table.Mu
}

func reversed() {
	a.Shared.Mu.Lock()
	defer a.Shared.Mu.Unlock()
	lockLocal() // a.Table.Mu -> b.mu
}

func lockLocal() {
	mu.Lock()
	mu.Unlock()
}
`})
	if len(got) != 1 {
		t.Fatalf("got %d lockorder findings, want 1:\n%s", len(got), renderFindings(got))
	}
	msg := got[0].Message
	if !strings.Contains(msg, "lock-order cycle") ||
		!strings.Contains(msg, "a.Table.Mu") || !strings.Contains(msg, "b.mu") {
		t.Fatalf("cross-package cycle not reported with both identities: %s", msg)
	}
}

func TestLockOrderBlockingOpUnderLock(t *testing.T) {
	got := lockorderFindings(t, fixtureSrc{path: "fix/blocking", src: `package blocking

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

func (s *S) deliver() {
	s.ch <- 1 // unbuffered send: blocks until a receiver shows up
}

func (s *S) locked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deliver()
}
`})
	if len(got) != 1 {
		t.Fatalf("got %d lockorder findings, want 1:\n%s", len(got), renderFindings(got))
	}
	msg := got[0].Message
	if !strings.Contains(msg, "reaches a blocking channel op") ||
		!strings.Contains(msg, "deliver") {
		t.Fatalf("blocking-op chain not reported: %s", msg)
	}
}

func TestLockOrderReLockSameReceiver(t *testing.T) {
	got := lockorderFindings(t, fixtureSrc{path: "fix/relock", src: `package relock

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) poke() {
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *S) bad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.poke()
}
`})
	if len(got) != 1 {
		t.Fatalf("got %d lockorder findings, want 1:\n%s", len(got), renderFindings(got))
	}
	if !strings.Contains(got[0].Message, "not reentrant") {
		t.Fatalf("re-lock not reported: %s", got[0].Message)
	}
}

func TestLockOrderDirectDoubleLock(t *testing.T) {
	got := lockorderFindings(t, fixtureSrc{path: "fix/dlock", src: `package dlock

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) bad() {
	s.mu.Lock()
	s.mu.Lock() // self-deadlock
	s.mu.Unlock()
	s.mu.Unlock()
}
`})
	if len(got) != 1 {
		t.Fatalf("got %d lockorder findings, want 1:\n%s", len(got), renderFindings(got))
	}
	if !strings.Contains(got[0].Message, "already holds it") {
		t.Fatalf("double-lock not reported: %s", got[0].Message)
	}
}

func TestLockOrderCleanCases(t *testing.T) {
	// Each function here is a pattern lockorder must NOT flag.
	got := lockorderFindings(t, fixtureSrc{path: "fix/clean", src: `package clean

import "sync"

type S struct {
	mu sync.Mutex
	ch chan int
}

// Consistent ordering: A then B everywhere — edges but no cycle.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func ordered1(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func ordered2(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b)
}

func lockB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

// Non-blocking send in the callee: select with default never blocks.
func (s *S) tryDeliver() {
	select {
	case s.ch <- 1:
	default:
	}
}

func (s *S) lockedTry() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tryDeliver()
}

// The blocking send runs on a NEW goroutine, which does not hold the lock.
func (s *S) lockedSpawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() { s.ch <- 1 }()
}

// Call made AFTER an early unlock in a guard clause is not under the lock.
func (s *S) guarded(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		s.deliverClean()
		return
	}
	s.mu.Unlock()
}

func (s *S) deliverClean() {
	s.ch <- 1
}
`})
	if len(got) != 0 {
		t.Fatalf("clean fixture produced findings:\n%s", renderFindings(got))
	}
}
