package kvstore

import (
	"strconv"

	"repro/internal/obs"
)

// ClientInstruments is the pipelined client's optional observability
// hookup: per-op latency histograms, an in-flight gauge, a redial
// counter for transparently replaced dead connections, and a counter of
// puts the shard refused as too large for its striped admission bound.
// Build one per shard with NewClientInstruments and attach via
// ClientV2.SetInstruments (or every shard at once with
// Cluster.Instrument).
type ClientInstruments struct {
	GetSeconds      *obs.Histogram
	PutSeconds      *obs.Histogram
	DeleteSeconds   *obs.Histogram
	StatsSeconds    *obs.Histogram
	MultiGetSeconds *obs.Histogram
	MultiPutSeconds *obs.Histogram
	InFlight        *obs.Gauge
	Redials         *obs.Counter
	TooLarge        *obs.Counter
	// RetryLater counts server sheds (statusRetryLater) seen by the
	// context ops' retry loop — each increment is one backoff+retry.
	RetryLater *obs.Counter
}

// NewClientInstruments registers one shard's client instruments in reg
// under the lobster_kvstore_* names, labelled with the shard id.
func NewClientInstruments(reg *obs.Registry, shard string) *ClientInstruments {
	hist := func(op string) *obs.Histogram {
		h := reg.Histogram("lobster_kvstore_op_seconds",
			"KV client operation latency, per op and shard.",
			obs.LatencyBuckets(), "op", op, "shard", shard)
		// Median and tail gauges computed from the same histogram at
		// scrape time, so /metrics and the bench harness report identical
		// numbers (to bucket resolution).
		reg.GaugeFunc("lobster_kvstore_op_p50_seconds",
			"KV client median operation latency, per op and shard.",
			func() float64 { return h.Quantile(0.5) }, "op", op, "shard", shard)
		reg.GaugeFunc("lobster_kvstore_op_p99_seconds",
			"KV client p99 operation latency, per op and shard.",
			func() float64 { return h.Quantile(0.99) }, "op", op, "shard", shard)
		reg.GaugeFunc("lobster_kvstore_op_p999_seconds",
			"KV client p999 operation latency, per op and shard.",
			func() float64 { return h.Quantile(0.999) }, "op", op, "shard", shard)
		return h
	}
	return &ClientInstruments{
		GetSeconds:      hist("get"),
		PutSeconds:      hist("put"),
		DeleteSeconds:   hist("delete"),
		StatsSeconds:    hist("stats"),
		MultiGetSeconds: hist("multiget"),
		MultiPutSeconds: hist("multiput"),
		InFlight: reg.Gauge("lobster_kvstore_inflight_ops",
			"KV client operations currently in flight.", "shard", shard),
		Redials: reg.Counter("lobster_kvstore_redials_total",
			"Dead connections transparently replaced by the client.", "shard", shard),
		TooLarge: reg.Counter("lobster_kvstore_client_toolarge_total",
			"Puts refused by the shard as exceeding its per-stripe byte budget.", "shard", shard),
		RetryLater: reg.Counter("lobster_kvstore_client_retries_total",
			"Server sheds (retry-later) absorbed by the client's backoff loop.", "shard", shard),
	}
}

// opSeconds maps a wire op byte to its latency histogram.
func (ci *ClientInstruments) opSeconds(op byte) *obs.Histogram {
	switch op {
	case opGet:
		return ci.GetSeconds
	case opPut:
		return ci.PutSeconds
	case opDelete:
		return ci.DeleteSeconds
	case opMultiGet:
		return ci.MultiGetSeconds
	case opMultiPut:
		return ci.MultiPutSeconds
	default:
		return ci.StatsSeconds
	}
}

// InstrumentServer surfaces a shard server's counters through reg at
// scrape time (lobster_kvstore_shard_*). The server's hot path is left
// untouched: every value is read from Server.Stats() when /metrics is
// scraped, so serving instruments costs the data path nothing.
func InstrumentServer(reg *obs.Registry, srv *Server) {
	if reg == nil || srv == nil {
		return
	}
	reg.GaugeFunc("lobster_kvstore_shard_items",
		"Entries resident in the shard.",
		func() float64 { return float64(srv.Stats().Items) })
	reg.GaugeFunc("lobster_kvstore_shard_used_bytes",
		"Bytes resident in the shard.",
		func() float64 { return float64(srv.Stats().UsedBytes) })
	reg.CounterFunc("lobster_kvstore_shard_hits_total",
		"Get requests served from the shard.",
		func() float64 { return float64(srv.Stats().Hits) })
	reg.CounterFunc("lobster_kvstore_shard_misses_total",
		"Get requests for absent keys.",
		func() float64 { return float64(srv.Stats().Misses) })
	reg.CounterFunc("lobster_kvstore_shard_evictions_total",
		"Entries evicted by the shard's LRU.",
		func() float64 { return float64(srv.Stats().Evictions) })
	reg.CounterFunc("lobster_kvstore_shard_toolarge_total",
		"Puts refused because the value exceeded the per-stripe byte budget.",
		func() float64 { return float64(srv.Stats().TooLarge) })
	reg.CounterFunc("lobster_kvstore_shard_shed_deadline_total",
		"Requests shed because their client deadline budget expired.",
		func() float64 { return float64(srv.Stats().ShedDeadline) })
	reg.CounterFunc("lobster_kvstore_shard_shed_quota_total",
		"Requests shed by the per-connection token-bucket quota.",
		func() float64 { return float64(srv.Stats().ShedQuota) })
	reg.CounterFunc("lobster_kvstore_shard_shed_queue_total",
		"Requests shed because the admission queue or slot wait ran out.",
		func() float64 { return float64(srv.Stats().ShedQueue) })
	reg.GaugeFunc("lobster_kvstore_shard_queue_depth",
		"Requests executing or waiting at the shard's admission gate.",
		func() float64 { return float64(srv.QueueDepth()) })
}

// Instrument attaches per-shard client instruments from reg to every
// pipelined (v2) shard client; v1 clients are left untouched. Shards
// are labelled by index in cluster order. Hedged-read counters are
// surfaced at scrape time.
func (c *Cluster) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i, cl := range c.clients {
		if v2, ok := cl.(*ClientV2); ok {
			v2.SetInstruments(NewClientInstruments(reg, strconv.Itoa(i)))
		}
	}
	reg.CounterFunc("lobster_kvstore_hedge_fired_total",
		"Hedge requests sent after the primary outlived the hedge delay.",
		func() float64 { fired, _ := c.HedgeCounters(); return float64(fired) })
	reg.CounterFunc("lobster_kvstore_hedge_won_total",
		"Hedged-read races won by the replica arm.",
		func() float64 { _, won := c.HedgeCounters(); return float64(won) })
}
