package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a streaming accumulator for scalar observations. It keeps the
// full sample so exact percentiles are available; experiment populations are
// bounded (one value per iteration), so memory is not a concern.
type Summary struct {
	values []float64
	sum    float64
	sumSq  float64
	min    float64
	max    float64
	sorted bool
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sumSq += v * v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.sorted = false
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.max
}

// Variance returns the population variance.
func (s *Summary) Variance() float64 {
	n := float64(len(s.values))
	if n == 0 {
		return 0
	}
	m := s.sum / n
	v := s.sumSq/n - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// StdDev returns the population standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CoefVar returns the coefficient of variation (stddev / mean), a
// scale-free spread measure used for the batch-time distribution
// comparison (Fig. 8c).
func (s *Summary) CoefVar() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.StdDev() / m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.values[lo]
	}
	frac := rank - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Median returns the 50th percentile.
func (s *Summary) Median() float64 { return s.Percentile(50) }

// String renders a compact one-line description.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N(), s.Mean(), s.StdDev(), s.Min(), s.Median(), s.Percentile(95), s.Max())
}

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (s *Summary) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	sort.Float64s(out)
	return out
}
