package runtime

import (
	"context"
	"testing"
	"time"

	"repro/internal/loader"
)

func TestRunContextCancellation(t *testing.T) {
	opts := testOptions(t, loader.NoPFS(2, 8), 1, 50) // far more epochs than we will run
	opts.TimeScale = 0.05                             // slow enough to cancel mid-run
	ctx, cancel := context.WithCancel(context.Background())
	//lint:allow goroutine sleeps a fixed 300ms, cancels, and exits; nothing outlives the test body
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	stats, err := RunContext(ctx, opts)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats == nil {
		t.Fatal("no partial stats returned")
	}
	fullIters := 50 * 32 // epochs * itersPerEpoch for this config
	if stats.Iterations <= 0 || stats.Iterations >= fullIters {
		t.Fatalf("partial iterations = %d, want in (0, %d)", stats.Iterations, fullIters)
	}
	// Shutdown must be prompt: well under the full-run duration.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// Every sample the run did load must still verify.
	if stats.SamplesVerified != stats.SamplesLoaded {
		t.Fatalf("verified %d of %d after cancellation", stats.SamplesVerified, stats.SamplesLoaded)
	}
}

func TestRunContextCompletesWithoutCancel(t *testing.T) {
	opts := testOptions(t, loader.PyTorch(2, 8), 1, 1)
	stats, err := RunContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 * 32 // one epoch
	if stats.Iterations != want {
		t.Fatalf("iterations = %d, want %d", stats.Iterations, want)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	opts := testOptions(t, loader.PyTorch(2, 8), 1, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunContext(ctx, opts)
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	// At most one iteration can slip in before the first barrier.
	if stats.Iterations > 1 {
		t.Fatalf("ran %d iterations under a pre-cancelled context", stats.Iterations)
	}
}
