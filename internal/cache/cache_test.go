package cache

import (
	"testing"

	"repro/internal/dataset"
)

// fakeOracle implements Oracle from explicit access lists.
type fakeOracle struct {
	accesses map[dataset.SampleID][]Iter
	iters    int
}

func (f *fakeOracle) NextUse(id dataset.SampleID, after Iter) Iter {
	for _, g := range f.accesses[id] {
		if g > after {
			return g
		}
	}
	return NoAccess
}

func (f *fakeOracle) UsesRemaining(id dataset.SampleID, after Iter) int {
	n := 0
	for _, g := range f.accesses[id] {
		if g > after {
			n++
		}
	}
	return n
}

func (f *fakeOracle) IterationsPerEpoch() int { return f.iters }

func mustCache(t *testing.T, capacity int64, p Policy) *Cache {
	t.Helper()
	c, err := New(capacity, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, NewLRU()); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(10, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestPutGetBasic(t *testing.T) {
	c := mustCache(t, 100, NewLRU())
	if c.Get(1, 0) {
		t.Fatal("hit on empty cache")
	}
	if _, ok := c.Put(1, 40, 0); !ok {
		t.Fatal("put rejected with free space")
	}
	if !c.Get(1, 1) {
		t.Fatal("miss after put")
	}
	if c.Used() != 40 || c.Len() != 1 || c.Free() != 60 {
		t.Fatalf("accounting wrong: used=%d len=%d free=%d", c.Used(), c.Len(), c.Free())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %g, want 0.5", st.HitRatio())
	}
}

func TestPutDuplicateIsNoop(t *testing.T) {
	c := mustCache(t, 100, NewLRU())
	c.Put(1, 40, 0)
	ev, ok := c.Put(1, 40, 1)
	if !ok || len(ev) != 0 {
		t.Fatalf("duplicate put: ev=%v ok=%v", ev, ok)
	}
	if c.Used() != 40 {
		t.Fatalf("duplicate put changed accounting: %d", c.Used())
	}
}

func TestPutTooLargeRejected(t *testing.T) {
	c := mustCache(t, 100, NewLRU())
	if _, ok := c.Put(1, 101, 0); ok {
		t.Fatal("oversized sample accepted")
	}
	if c.Stats().Rejected != 1 {
		t.Fatal("rejection not counted")
	}
}

func TestPutZeroSizePanics(t *testing.T) {
	c := mustCache(t, 100, NewLRU())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size put did not panic")
		}
	}()
	c.Put(1, 0, 0)
}

func TestLRUEvictionOrder(t *testing.T) {
	c := mustCache(t, 30, NewLRU())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Put(3, 10, 2)
	c.Get(1, 3) // 1 becomes MRU; LRU order now 2, 3, 1
	ev, ok := c.Put(4, 10, 4)
	if !ok || len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2]", ev)
	}
	ev, ok = c.Put(5, 20, 5) // needs to evict two: 3 then 1
	if !ok || len(ev) != 2 || ev[0] != 3 || ev[1] != 1 {
		t.Fatalf("evicted %v, want [3 1]", ev)
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	c := mustCache(t, 30, NewFIFO())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Put(3, 10, 2)
	c.Get(1, 3) // FIFO ignores the hit
	ev, ok := c.Put(4, 10, 4)
	if !ok || len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
}

func TestNeverEvictRejectsWhenFull(t *testing.T) {
	c := mustCache(t, 20, NewNeverEvict())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	ev, ok := c.Put(3, 10, 2)
	if ok || len(ev) != 0 {
		t.Fatalf("never-evict evicted %v ok=%v", ev, ok)
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("resident samples lost")
	}
}

func TestRemove(t *testing.T) {
	c := mustCache(t, 100, NewLRU())
	c.Put(1, 10, 0)
	if !c.Remove(1) {
		t.Fatal("remove of present sample returned false")
	}
	if c.Remove(1) {
		t.Fatal("second remove returned true")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("remove did not free space")
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("Remove must not count as eviction")
	}
}

func TestBeladyEvictsFarthest(t *testing.T) {
	o := &fakeOracle{iters: 100, accesses: map[dataset.SampleID][]Iter{
		1: {10},
		2: {50},
		3: {5},
		4: {7},
	}}
	c := mustCache(t, 30, NewBelady(o))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	c.Put(3, 10, 0)
	// Incoming 4 (next use 7): farthest resident is 2 (next use 50).
	ev, ok := c.Put(4, 10, 0)
	if !ok || len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2]", ev)
	}
}

func TestBeladyRefusesWorseIncoming(t *testing.T) {
	o := &fakeOracle{iters: 100, accesses: map[dataset.SampleID][]Iter{
		1: {10},
		2: {20},
		3: {90}, // incoming, needed later than anything resident
	}}
	c := mustCache(t, 20, NewBelady(o))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	ev, ok := c.Put(3, 10, 0)
	if ok || len(ev) != 0 {
		t.Fatalf("belady admitted a worse sample: ev=%v ok=%v", ev, ok)
	}
	if c.Stats().Rejected != 1 {
		t.Fatal("refusal not counted as rejection")
	}
}

func TestBeladyNeverAgainEvictedFirst(t *testing.T) {
	o := &fakeOracle{iters: 100, accesses: map[dataset.SampleID][]Iter{
		1: {}, // never used again
		2: {50},
		3: {5},
	}}
	c := mustCache(t, 20, NewBelady(o))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	ev, ok := c.Put(3, 10, 0)
	if !ok || len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1] (never used again)", ev)
	}
}

func TestBeladyKeyUpdatesOnGet(t *testing.T) {
	o := &fakeOracle{iters: 100, accesses: map[dataset.SampleID][]Iter{
		1: {5, 60},
		2: {40},
		3: {30},
	}}
	c := mustCache(t, 20, NewBelady(o))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	c.Get(1, 5) // 1's next use becomes 60: now the farthest
	ev, ok := c.Put(3, 10, 6)
	if !ok || len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1] after its key update", ev)
	}
}

func TestLobsterReuseCountRule(t *testing.T) {
	o := &fakeOracle{iters: 100, accesses: map[dataset.SampleID][]Iter{
		1: {5}, // last use at 5
		2: {50},
	}}
	c := mustCache(t, 100, NewLobster(o, LobsterOptions{}))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	c.Get(1, 5) // consumes the final use
	ev := c.Maintain(5)
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("Maintain evicted %v, want [1]", ev)
	}
	if !c.Contains(2) {
		t.Fatal("sample 2 wrongly evicted")
	}
}

func TestLobsterLastCopyProtection(t *testing.T) {
	o := &fakeOracle{iters: 100, accesses: map[dataset.SampleID][]Iter{1: {5}}}
	lastCopy := true
	c := mustCache(t, 100, NewLobster(o, LobsterOptions{
		IsLastCopy: func(id dataset.SampleID) bool { return lastCopy },
	}))
	c.Put(1, 10, 0)
	c.Get(1, 5)
	if ev := c.Maintain(5); len(ev) != 0 {
		t.Fatalf("last copy evicted: %v", ev)
	}
	// Once another node holds a copy, the rule applies on the next touch.
	lastCopy = false
	c.Get(1, 6)
	if ev := c.Maintain(6); len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("Maintain evicted %v, want [1] once not last copy", ev)
	}
}

func TestLobsterReuseDistanceRule(t *testing.T) {
	// I = 10. At h=3 (within epoch 0), a sample whose next use is more
	// than 2*10-3 = 17 iterations away (i.e. beyond the next epoch) must
	// be proactively evicted.
	o := &fakeOracle{iters: 10, accesses: map[dataset.SampleID][]Iter{
		1: {3, 25}, // distance 22 > 17 after the access at 3
		2: {3, 15}, // distance 12 <= 17: stays
	}}
	c := mustCache(t, 100, NewLobster(o, LobsterOptions{}))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	c.Get(1, 3)
	c.Get(2, 3)
	ev := c.Maintain(3)
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("Maintain evicted %v, want [1]", ev)
	}
}

func TestLobsterAblationSwitches(t *testing.T) {
	o := &fakeOracle{iters: 10, accesses: map[dataset.SampleID][]Iter{
		1: {3, 25},
		2: {3},
	}}
	c := mustCache(t, 100, NewLobster(o, LobsterOptions{
		DisableReuseCount:    true,
		DisableReuseDistance: true,
	}))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	c.Get(1, 3)
	c.Get(2, 3)
	if ev := c.Maintain(3); len(ev) != 0 {
		t.Fatalf("disabled rules still evicted %v", ev)
	}
}

func TestLobsterVictimPrefersFarthest(t *testing.T) {
	o := &fakeOracle{iters: 1000, accesses: map[dataset.SampleID][]Iter{
		1: {100},
		2: {900},
		3: {50},
	}}
	c := mustCache(t, 20, NewLobster(o, LobsterOptions{}))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	ev, ok := c.Put(3, 10, 0)
	if !ok || len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2]", ev)
	}
}

func TestNoPFSCountRuleNoProtection(t *testing.T) {
	o := &fakeOracle{iters: 100, accesses: map[dataset.SampleID][]Iter{
		1: {5},
		2: {7, 50},
	}}
	c := mustCache(t, 100, NewNoPFS(o))
	c.Put(1, 10, 0)
	c.Put(2, 10, 0)
	c.Get(1, 5)
	if ev := c.Maintain(5); len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("NoPFS Maintain evicted %v, want [1]", ev)
	}
}

func TestNoPFSVictimIsLRU(t *testing.T) {
	o := &fakeOracle{iters: 100, accesses: map[dataset.SampleID][]Iter{
		1: {90}, // far future — Lobster would evict this one
		2: {10},
		3: {20},
	}}
	c := mustCache(t, 20, NewNoPFS(o))
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Get(1, 2) // LRU order: 2 (oldest), 1
	ev, ok := c.Put(3, 10, 3)
	if !ok || len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("NoPFS evicted %v, want [2] (LRU), proving it ignores reuse distance", ev)
	}
}

func TestMaintainBaselinesNoop(t *testing.T) {
	for _, p := range []Policy{NewLRU(), NewFIFO(), NewNeverEvict()} {
		c := mustCache(t, 100, p)
		c.Put(1, 10, 0)
		if ev := c.Maintain(50); len(ev) != 0 {
			t.Errorf("%s Maintain evicted %v", p.Name(), ev)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	o := &fakeOracle{iters: 1}
	names := map[string]Policy{
		"lru":         NewLRU(),
		"fifo":        NewFIFO(),
		"never-evict": NewNeverEvict(),
		"belady":      NewBelady(o),
		"lobster":     NewLobster(o, LobsterOptions{}),
		"nopfs":       NewNoPFS(o),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("policy name = %q, want %q", p.Name(), want)
		}
	}
}
