package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

// fuzzStore builds a small striped store for decoder fuzzing.
func fuzzStore() *store { return newStore(1<<20, 4) }

// FuzzHandleV1 throws arbitrary bytes at the v1 frame handler: it must
// never panic, and must either serve a well-formed request or return an
// error — no partial state.
func FuzzHandleV1(f *testing.F) {
	// Seed corpus: a valid PUT, a valid GET, truncations, and oversized
	// length fields.
	valid := func(op byte, key string, val []byte) []byte {
		var buf bytes.Buffer
		buf.WriteByte(op)
		buf.Write([]byte{0, 0, 0, byte(len(key))})
		buf.WriteString(key)
		buf.Write([]byte{0, 0, 0, byte(len(val))})
		buf.Write(val)
		return buf.Bytes()
	}
	f.Add(valid(opPut, "k", []byte("v")))
	f.Add(valid(opGet, "key", nil))
	f.Add([]byte{opGet})
	f.Add([]byte{opPut, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	st := fuzzStore()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		r := bufio.NewReader(bytes.NewReader(data[1:]))
		w := bufio.NewWriter(io.Discard)
		if err := st.handleV1(data[0], r, w, nil); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("discard writer failed: %v", err)
		}
	})
}

// FuzzHandleV2 drives the v2 frame decoder (everything after the magic
// byte) with arbitrary bytes: it must never panic and must produce
// either a well-formed response frame or an error that drops the
// connection.
func FuzzHandleV2(f *testing.F) {
	u32 := func(v uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		return b[:]
	}
	frame := func(op byte, id uint32, body ...[]byte) []byte {
		var buf bytes.Buffer
		buf.WriteByte(op)
		buf.Write(u32(id))
		for _, b := range body {
			buf.Write(b)
		}
		return buf.Bytes()
	}
	chunk := func(b []byte) []byte { return append(u32(uint32(len(b))), b...) }
	// Seeds: valid single ops, a 3-key MultiGet, a 2-pair MultiPut,
	// truncations, an unknown op, and hostile counts.
	f.Add(frame(opGet, 1, chunk([]byte("key")), u32(0)))
	f.Add(frame(opPut, 2, chunk([]byte("key")), chunk([]byte("value"))))
	f.Add(frame(opStats, 3, u32(0), u32(0)))
	f.Add(frame(opMultiGet, 4, u32(3), chunk([]byte("a")), chunk([]byte("b")), chunk([]byte("c"))))
	f.Add(frame(opMultiPut, 5, u32(2),
		chunk([]byte("a")), chunk([]byte("1")), chunk([]byte("b")), chunk([]byte("2"))))
	f.Add(frame(opMultiGet, 6, u32(0xFFFFFFFF)))
	f.Add(frame(0x7F, 7))
	f.Add([]byte{opGet})
	f.Add([]byte{})
	st := fuzzStore()
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		w := bufio.NewWriter(io.Discard)
		if err := st.handleV2(r, w, nil, frameV2Magic, 0); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("discard writer failed: %v", err)
		}
	})
}

// FuzzHandleV2Deadline drives the 0xA3 deadline frame extension decoder
// against a store with every admission gate armed, so the shed/drain
// paths (drainChunk, writeV2Shed) see hostile bytes too.
func FuzzHandleV2Deadline(f *testing.F) {
	u32 := func(v uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		return b[:]
	}
	frame := func(op byte, id, budget uint32, body ...[]byte) []byte {
		var buf bytes.Buffer
		buf.WriteByte(op)
		buf.Write(u32(id))
		buf.Write(u32(budget))
		for _, b := range body {
			buf.Write(b)
		}
		return buf.Bytes()
	}
	chunk := func(b []byte) []byte { return append(u32(uint32(len(b))), b...) }
	// Seeds: deadlined single ops with generous and with ~expired
	// budgets, a deadlined MultiGet, truncation after the budget field.
	f.Add(frame(opGet, 1, 1_000_000, chunk([]byte("key")), u32(0)))
	f.Add(frame(opPut, 2, 1, chunk([]byte("key")), chunk([]byte("value"))))
	f.Add(frame(opMultiGet, 3, 500_000, u32(2), chunk([]byte("a")), chunk([]byte("b"))))
	f.Add(frame(opMultiPut, 4, 0, u32(1), chunk([]byte("a")), chunk([]byte("1"))))
	f.Add(frame(opStats, 5, 250, u32(0), u32(0)))
	f.Add([]byte{opGet, 0, 0})
	f.Add([]byte{})
	st := fuzzStore()
	st.adm = newAdmitter(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, QuotaRate: 1e6})
	f.Fuzz(func(t *testing.T, data []byte) {
		q := st.adm.newConnQuota(time.Now())
		r := bufio.NewReader(bytes.NewReader(data))
		w := bufio.NewWriter(io.Discard)
		if err := st.handleV2(r, w, q, frameV2DeadlineMagic, 0); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("discard writer failed: %v", err)
		}
	})
}

// FuzzServerRoundTrip drives the real TCP server with fuzzed keys and
// values through both typed clients: data integrity must hold for
// whatever fits the protocol limits, on either wire protocol.
func FuzzServerRoundTrip(f *testing.F) {
	s, err := NewServer("127.0.0.1:0", 1<<20)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })
	c1, err := NewClient(s.Addr(), 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(c1.Close)
	c2, err := NewClientV2(s.Addr(), 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(c2.Close)

	f.Add("key", []byte("value"))
	f.Add("", []byte{})
	f.Add("unicode-κλειδί", []byte{0, 1, 2, 255})
	f.Fuzz(func(t *testing.T, key string, val []byte) {
		if len(key) > maxKeyLen || len(val) > 1<<15 {
			return
		}
		for name, c := range map[string]shardClient{"v1": c1, "v2": c2} {
			if err := c.Put(key, val); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got, found, err := c.Get(key)
			if err != nil || !found {
				t.Fatalf("%s: Get(%q) = %v %v", name, key, found, err)
			}
			if !bytes.Equal(got, val) {
				t.Fatalf("%s: round trip corrupted %q: %d vs %d bytes", name, key, len(got), len(val))
			}
		}
	})
}
