// Package chaos is the deterministic fault-injection layer of the
// reproduction: a seeded Schedule of timed fault events — straggler
// peers, PFS brownouts, cache-node crashes, kv shard loss, connection
// drops, slow decode workers — driven through a common Injector
// interface by a Controller that advances on iteration boundaries.
//
// Determinism is the point. Events activate and revert on iteration
// numbers (the data-parallel barrier's last arriver ticks the
// controller), never on wall-clock timers, and every probabilistic draw
// an injectee makes (error rates, latency jitter) comes from a
// per-event RNG seeded from the schedule's own seed. Two runs of the
// same schedule therefore produce the identical fault event log and —
// for the structural recovery criteria (samples verified, failovers
// observed, shard map repaired) — the identical verdicts, which is what
// makes chaos scenarios regression-testable instead of anecdotes.
//
// The package deliberately knows nothing about the subsystems it
// breaks: internal/runtime, internal/kvstore, internal/preproc and the
// experiment harness each register the injectors for the fault kinds
// they own (DESIGN.md §13).
package chaos

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Kind identifies a fault class. Each kind is wired to one Injector;
// the Target index is interpreted per kind (a cache node for
// Straggler/CacheCrash/SlowDecode, a kv shard for ShardCrash/ConnDrop,
// unused for Brownout).
type Kind uint8

const (
	// KindStraggler is a sustained lag on one node's peer-cache serving:
	// every remote fetch from that node pays Fault.Lag (+Jitter), and
	// Fault.ErrRate of them time out empty.
	KindStraggler Kind = iota + 1
	// KindBrownout is a PFS degradation window: elevated per-read
	// latency (Fault.Lag/Jitter) plus transient read failures
	// (Fault.ErrRate) that callers must retry through.
	KindBrownout
	// KindCacheCrash is the loss of one node's cache mid-run: resident
	// payloads are wiped, the directory (shard map) is repaired so no
	// peer keeps reading from the dead node, and peer serving stays down
	// until the event reverts ("restart"). The node's training itself
	// continues — only its cache tier is lost.
	KindCacheCrash
	// KindShardCrash is a kv shard crash and restart. The runtime has no
	// handle on external kv servers, so the harness that owns them
	// registers this injector (see internal/experiments).
	KindShardCrash
	// KindConnDrop injects connection drops on a kv shard: Fault.DropRate
	// of requests sever the connection mid-op, exercising client redial.
	KindConnDrop
	// KindSlowDecode slows one node's preprocessing workers by
	// Fault.Lag (+Jitter) per job.
	KindSlowDecode
)

// String renders the kind for event logs.
func (k Kind) String() string {
	switch k {
	case KindStraggler:
		return "straggler"
	case KindBrownout:
		return "brownout"
	case KindCacheCrash:
		return "cache-crash"
	case KindShardCrash:
		return "shard-crash"
	case KindConnDrop:
		return "conn-drop"
	case KindSlowDecode:
		return "slow-decode"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is the quantitative half of an event: how broken the target is
// while the event is active. The zero value means healthy; injectors
// revert by applying it.
type Fault struct {
	// Lag is a fixed extra wall-clock latency per affected operation.
	Lag time.Duration
	// Jitter adds a uniform extra latency in [0, Jitter) per operation,
	// drawn from the fault's seeded RNG.
	Jitter time.Duration
	// ErrRate is the per-operation probability of a transient failure.
	ErrRate float64
	// DropRate is the per-operation probability of a connection drop
	// (kv tier only).
	DropRate float64
	// Seed seeds the injectee's RNG for the jitter/error draws. Schedule
	// builders derive it from the schedule seed when left zero, so every
	// probabilistic draw of a chaos run is replayable.
	Seed uint64
}

// IsZero reports whether the fault is the healthy state.
func (f Fault) IsZero() bool {
	return f.Lag == 0 && f.Jitter == 0 && f.ErrRate == 0 && f.DropRate == 0
}

// Event is one scheduled fault: Kind hits Target for iterations
// [Start, End). End <= 0 means the fault never reverts (it outlives the
// run). Iteration h is the boundary before the h-th training iteration
// runs; Start 0 injects before training begins.
type Event struct {
	Kind   Kind
	Target int
	Start  int
	End    int
	Fault  Fault
}

func (e Event) String() string {
	return fmt.Sprintf("%s target=%d iters=[%d,%d)", e.Kind, e.Target, e.Start, e.End)
}

// Schedule is a seeded list of fault events. Build one with NewSchedule
// and the Add/convenience methods; the builder derives each event's
// Fault.Seed from the schedule seed and the event's position, so the
// same (seed, events) pair replays identically.
type Schedule struct {
	Seed   uint64
	Events []Event
}

// NewSchedule starts an empty schedule with the given seed.
func NewSchedule(seed uint64) *Schedule {
	return &Schedule{Seed: seed}
}

// Add appends an event, deriving its Fault.Seed (when unset) from the
// schedule seed, the event index and the kind. Returns the schedule for
// chaining.
func (s *Schedule) Add(e Event) *Schedule {
	if e.Fault.Seed == 0 {
		e.Fault.Seed = stats.DeriveSeed(s.Seed, uint64(len(s.Events))<<8|uint64(e.Kind))
	}
	s.Events = append(s.Events, e)
	return s
}

// Straggler schedules sustained peer-serving lag on one node.
func (s *Schedule) Straggler(node, start, end int, lag, jitter time.Duration) *Schedule {
	return s.Add(Event{Kind: KindStraggler, Target: node, Start: start, End: end,
		Fault: Fault{Lag: lag, Jitter: jitter}})
}

// Brownout schedules a PFS degradation window.
func (s *Schedule) Brownout(start, end int, lag, jitter time.Duration, errRate float64) *Schedule {
	return s.Add(Event{Kind: KindBrownout, Start: start, End: end,
		Fault: Fault{Lag: lag, Jitter: jitter, ErrRate: errRate}})
}

// CacheCrash schedules the loss of one node's cache at start, revived
// (peer serving restored, cache refilling from scratch) at revive.
func (s *Schedule) CacheCrash(node, start, revive int) *Schedule {
	return s.Add(Event{Kind: KindCacheCrash, Target: node, Start: start, End: revive})
}

// ShardCrash schedules a kv shard crash at start, restarted at revive.
func (s *Schedule) ShardCrash(shard, start, revive int) *Schedule {
	return s.Add(Event{Kind: KindShardCrash, Target: shard, Start: start, End: revive})
}

// ConnDrop schedules a connection-drop window on a kv shard.
func (s *Schedule) ConnDrop(shard, start, end int, dropRate float64) *Schedule {
	return s.Add(Event{Kind: KindConnDrop, Target: shard, Start: start, End: end,
		Fault: Fault{DropRate: dropRate}})
}

// SlowDecode schedules slowed preprocessing on one node.
func (s *Schedule) SlowDecode(node, start, end int, lag, jitter time.Duration) *Schedule {
	return s.Add(Event{Kind: KindSlowDecode, Target: node, Start: start, End: end,
		Fault: Fault{Lag: lag, Jitter: jitter}})
}

// Validate checks every event for well-formedness.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if e.Kind < KindStraggler || e.Kind > KindSlowDecode {
			return fmt.Errorf("chaos: event %d has unknown kind %d", i, e.Kind)
		}
		if e.Target < 0 {
			return fmt.Errorf("chaos: event %d (%s) has negative target", i, e.Kind)
		}
		if e.Start < 0 {
			return fmt.Errorf("chaos: event %d (%s) starts at %d < 0", i, e.Kind, e.Start)
		}
		if e.End > 0 && e.End <= e.Start {
			return fmt.Errorf("chaos: event %d (%s) has empty window [%d,%d)", i, e.Kind, e.Start, e.End)
		}
		if e.Fault.ErrRate < 0 || e.Fault.ErrRate > 1 {
			return fmt.Errorf("chaos: event %d (%s) error rate %g outside [0,1]", i, e.Kind, e.Fault.ErrRate)
		}
		if e.Fault.DropRate < 0 || e.Fault.DropRate > 1 {
			return fmt.Errorf("chaos: event %d (%s) drop rate %g outside [0,1]", i, e.Kind, e.Fault.DropRate)
		}
		if e.Fault.Lag < 0 || e.Fault.Jitter < 0 {
			return fmt.Errorf("chaos: event %d (%s) has negative lag or jitter", i, e.Kind)
		}
	}
	return nil
}
