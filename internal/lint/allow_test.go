package lint

import (
	"strings"
	"testing"
)

func TestAllowDirectiveMissingJustification(t *testing.T) {
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"
//lint:allow determinism
func Stamp() time.Time { return time.Now() }
`)
	fs := Run([]*Package{p}, Analyzers())
	var directive, determinism int
	for _, f := range fs {
		switch f.Check {
		case "directive":
			directive++
			if !strings.Contains(f.Message, "no justification") {
				t.Fatalf("unexpected directive message: %s", f.Message)
			}
		case "determinism":
			determinism++
		}
	}
	if directive != 1 {
		t.Fatalf("want 1 directive finding, got %d:\n%s", directive, renderFindings(fs))
	}
	// A malformed directive must not suppress the underlying finding.
	if determinism != 1 {
		t.Fatalf("want 1 determinism finding (directive is void), got %d:\n%s", determinism, renderFindings(fs))
	}
}

func TestAllowDirectiveNoCheckID(t *testing.T) {
	p := checkFixture(t, "repro/internal/sim", `package sim
//lint:allow
func F() {}
`)
	fs := Run([]*Package{p}, Analyzers())
	if len(fs) != 1 || fs[0].Check != "directive" {
		t.Fatalf("want exactly one directive finding, got:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveScopedToCheck(t *testing.T) {
	// The directive names errcheck, so the determinism finding on the
	// same line must survive.
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"
//lint:allow errcheck wrong check named here
func Stamp() time.Time { return time.Now() }
`)
	fs := Run([]*Package{p}, Analyzers())
	found := false
	for _, f := range fs {
		if f.Check == "determinism" {
			found = true
		}
	}
	if !found {
		t.Fatalf("determinism finding should survive an errcheck allow:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveEndOfLine(t *testing.T) {
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"
func Stamp() time.Time { return time.Now() } //lint:allow determinism calibration-only helper
`)
	if fs := Run([]*Package{p}, Analyzers()); len(fs) != 0 {
		t.Fatalf("end-of-line allow should suppress:\n%s", renderFindings(fs))
	}
}
