package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/tier"
)

func testOptions(t testing.TB, spec loader.Spec, nodes, epochs int) Options {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "rt", NumSamples: 512, MeanSize: 8 << 10, SigmaLog: 0.3,
		MinSize: 1 << 10, Classes: 4, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := cluster.Topology{
		Nodes:       nodes,
		GPUsPerNode: 2,
		CPUThreads:  8,
		CacheBytes:  ds.TotalBytes() / 3,
		NUMADomains: 2,
		Hierarchy:   tier.ThetaGPULike(),
	}
	model := cluster.DNNModel{Name: "toy", IterTime: 0.004, BatchSize: 8, TargetAccuracy: 0.7, ConvergeEpochs: 10}
	return Options{
		Topology:  top,
		Dataset:   ds,
		Model:     model,
		Epochs:    epochs,
		Seed:      77,
		Strategy:  spec,
		TimeScale: 0.02,
	}
}

func TestRunValidation(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 1, 1)
	bad := opts
	bad.Dataset = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil dataset accepted")
	}
	bad = opts
	bad.Epochs = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero epochs accepted")
	}
	bad = opts
	bad.Topology.Nodes = 0
	if _, err := Run(bad); err == nil {
		t.Error("bad topology accepted")
	}
}

func TestSingleNodeLobsterEndToEnd(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 1, 3)
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	world := opts.Topology.WorldSize()
	wantSamples := uint64(stats.Iterations) * uint64(world*opts.Model.BatchSize)
	if stats.SamplesLoaded != wantSamples {
		t.Fatalf("loaded %d samples, want %d", stats.SamplesLoaded, wantSamples)
	}
	if stats.SamplesVerified != wantSamples {
		t.Fatalf("verified %d samples, want %d (every tensor must verify)", stats.SamplesVerified, wantSamples)
	}
	if stats.CacheHits+stats.CacheMisses != wantSamples {
		t.Fatalf("cache lookups %d != samples %d", stats.CacheHits+stats.CacheMisses, wantSamples)
	}
	if stats.HitRatio() <= 0 {
		t.Fatal("no cache hits at all after three epochs")
	}
	if stats.Prefetched == 0 {
		t.Fatal("Lobster never prefetched")
	}
	if stats.WallTime <= 0 {
		t.Fatal("wall time not measured")
	}
}

func TestMultiNodeRemoteHits(t *testing.T) {
	// Demand-only loading makes peer fetches structural rather than a
	// race: after epoch 1, every sample is cached on the node that used
	// it, and the shuffle reassigns most samples to a different node —
	// whose miss must find the peer copy through the directory.
	opts := testOptions(t, loader.PyTorch(2, 8), 3, 3)
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemoteHits == 0 {
		t.Fatal("no peer-cache fetches on a 3-node run with generous caches")
	}
	if stats.PFSReads == 0 {
		t.Fatal("PFS never used (first epoch must miss)")
	}
}

func TestAllStrategiesComplete(t *testing.T) {
	for _, spec := range []loader.Spec{
		loader.PyTorch(2, 8),
		loader.DALI(8),
		loader.NoPFS(2, 8),
		loader.Lobster(),
		loader.LobsterTh(),
	} {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			opts := testOptions(t, spec, 1, 2)
			stats, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			want := uint64(stats.Iterations) * uint64(2*opts.Model.BatchSize)
			if stats.SamplesVerified != want {
				t.Fatalf("verified %d, want %d", stats.SamplesVerified, want)
			}
		})
	}
}

func TestDynamicControllerAdjustsThreads(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 1, 2)
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.FinalPreprocThreads) != 1 || stats.FinalPreprocThreads[0] < 1 {
		t.Fatalf("no preprocessing threads recorded: %v", stats.FinalPreprocThreads)
	}
	total := stats.FinalPreprocThreads[0]
	for _, l := range stats.FinalLoadThreads[0] {
		if l < 1 {
			t.Fatalf("GPU with %d loading threads", l)
		}
		total += l
	}
	if total > opts.Topology.CPUThreads {
		t.Fatalf("final thread total %d exceeds budget %d", total, opts.Topology.CPUThreads)
	}
}

func TestThrottleSerializes(t *testing.T) {
	th := NewThrottle(1.0)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th.Acquire(0.01) // 10 ms each
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("4 x 10ms acquisitions finished in %v; throttle not serializing", elapsed)
	}
}

func TestDirectory(t *testing.T) {
	d, err := NewDirectory(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirectory(10, 65); err == nil {
		t.Fatal("65 nodes accepted")
	}
	d.Add(1, 5)
	if got := d.Holder(5, 0); got != 1 {
		t.Fatalf("Holder = %d, want 1", got)
	}
	if got := d.Holder(5, 1); got != -1 {
		t.Fatalf("Holder excluding self = %d, want -1", got)
	}
	if !d.IsLastCopy(1, 5) {
		t.Fatal("sole holder not last copy")
	}
	d.Add(2, 5)
	if d.IsLastCopy(1, 5) {
		t.Fatal("replicated sample reported last copy")
	}
	d.Remove(1, 5)
	if got := d.Holder(5, 0); got != 2 {
		t.Fatalf("after remove, Holder = %d, want 2", got)
	}
}

func TestPFSStoreServesValidPayloads(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Spec{
		Name: "p", NumSamples: 10, MeanSize: 4 << 10, Classes: 1, Seed: 5,
	})
	store := NewPFSStore(ds, 5, tier.ThetaGPULike().PFS, 0.001)
	p, err := store.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.VerifyPayload(p, 5, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Read(100); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if store.Ops() != 1 {
		t.Fatalf("ops = %d, want 1", store.Ops())
	}
}
