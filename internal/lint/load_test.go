package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir:
// files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadModuleUnparseableFile(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fix\n\ngo 1.22\n",
		"bad.go": "package fix\n\nfunc broken( {\n",
	})
	_, err := LoadModule(root)
	if err == nil {
		t.Fatal("LoadModule succeeded on an unparseable file")
	}
	if !strings.Contains(err.Error(), "bad.go") {
		t.Fatalf("error does not name the broken file: %v", err)
	}
}

func TestLoadModuleTypeError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fix\n\ngo 1.22\n",
		"a.go":   "package fix\n\nfunc F() int { return undefinedIdent }\n",
	})
	_, err := LoadModule(root)
	if err == nil {
		t.Fatal("LoadModule succeeded on a type error")
	}
	if !strings.Contains(err.Error(), "type errors in fix") ||
		!strings.Contains(err.Error(), "undefinedIdent") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLoadModuleTestFileTypeError(t *testing.T) {
	// Production code is clean; only the in-package test file is broken.
	// The augmented test pass must surface the error rather than drop it.
	root := writeModule(t, map[string]string{
		"go.mod":    "module fix\n\ngo 1.22\n",
		"a.go":      "package fix\n\nfunc F() int { return 1 }\n",
		"a_test.go": "package fix\n\nfunc TestF() { missingTestingImport(F()) }\n",
	})
	_, err := LoadModule(root)
	if err == nil {
		t.Fatal("LoadModule succeeded with a broken test file")
	}
	if !strings.Contains(err.Error(), "missingTestingImport") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLoadModuleBuildConstraints(t *testing.T) {
	// A mutually exclusive tagged pair (the race/!race idiom) declares
	// the same symbol in both files; only the default-configuration file
	// (!race — the lint binary is never compiled with -race) may load,
	// or the package redeclares it. The GOOS-excluded production file
	// would be a type error if loaded.
	root := writeModule(t, map[string]string{
		"go.mod":        "module fix\n\ngo 1.22\n",
		"p/p.go":        "package p\n\nfunc F() bool { return true }\n",
		"p/off_test.go": "//go:build !race\n\npackage p\n\nconst raceOn = false\n",
		"p/on_test.go":  "//go:build race\n\npackage p\n\nconst raceOn = true\n",
		"p/nowhere.go":  "//go:build plan9\n\npackage p\n\nfunc G() int { return undefinedOnPlan9 }\n",
		"p/p_test.go":   "package p\n\nimport \"testing\"\n\nfunc TestF(t *testing.T) { _ = F() && raceOn }\n",
	})
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if pkg.Path != "fix/p" {
			continue
		}
		if n := len(pkg.Files); n != 1 {
			t.Fatalf("production files loaded: %d, want 1 (plan9-tagged file must be skipped)", n)
		}
		if n := len(pkg.TestFiles); n != 2 {
			t.Fatalf("in-package test files loaded: %d, want 2 (race-tagged file must be skipped)", n)
		}
		return
	}
	t.Fatal("package fix/p not loaded")
}

func TestLoadModuleMissingModuleDirective(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "go 1.22\n",
		"a.go":   "package fix\n",
	})
	if _, err := LoadModule(root); err == nil || !strings.Contains(err.Error(), "no module directive") {
		t.Fatalf("want missing-module-directive error, got %v", err)
	}
}

func TestLoadModuleImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module fix\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"fix/b\"\n\nvar X = b.Y\n",
		"b/b.go": "package b\n\nimport \"fix/a\"\n\nvar Y = a.X\n",
	})
	_, err := LoadModule(root)
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("want import-cycle error, got %v", err)
	}
}

func TestFindModuleRootNotFound(t *testing.T) {
	// A bare temp dir has no go.mod anywhere above it.
	if root, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Fatalf("FindModuleRoot found %q for a dir outside any module", root)
	}
}

func TestLoadModuleTestPackages(t *testing.T) {
	// One package with production code, an in-package test file, and an
	// external (package foo_test) test file: the loader must keep the
	// three universes apart.
	root := writeModule(t, map[string]string{
		"go.mod": "module fix\n\ngo 1.22\n",
		"p/p.go": "package p\n\nfunc F() int { return 1 }\n",
		"p/in_test.go": `package p

func helperUsingInternals() int { return F() }
`,
		"p/ext_test.go": `package p_test

import "fix/p"

var _ = p.F
`,
	})
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	prod := byPath["fix/p"]
	if prod == nil {
		t.Fatal("package fix/p not loaded")
	}
	if len(prod.Files) != 1 {
		t.Fatalf("production file set polluted: %d files", len(prod.Files))
	}
	if len(prod.TestFiles) != 1 || prod.TestPkg == nil || prod.TestInfo == nil {
		t.Fatalf("in-package test universe not loaded: %d test files", len(prod.TestFiles))
	}
	// The augmented type-check must not replace the production universe:
	// the call graph depends on production object identity.
	if prod.TestPkg == prod.Pkg || prod.TestInfo == prod.Info {
		t.Fatal("test type-check aliased into the production universe")
	}
	xt := byPath["fix/p_test"]
	if xt == nil {
		t.Fatal("external test package fix/p_test not loaded")
	}
	if len(xt.Files) != 0 || len(xt.TestFiles) != 1 {
		t.Fatalf("xtest package shape wrong: %d prod files, %d test files", len(xt.Files), len(xt.TestFiles))
	}
}
