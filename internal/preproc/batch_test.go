package preproc

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

// makeJobs builds n decodable jobs against comp, drawing payloads from
// the size-classed pool (Owned, so workers recycle them after decode).
func makeJobs(jobs []Job, n, size int, comp *Completion) []Job {
	jobs = jobs[:0]
	for i := 0; i < n; i++ {
		buf := GetPayloadBuf(size)
		dataset.FillPayload(buf, 7, dataset.SampleID(i))
		jobs = append(jobs, Job{
			ID:      dataset.SampleID(i),
			Payload: buf,
			Seed:    uint64(i),
			Comp:    comp,
			Slot:    i,
			Owned:   true,
		})
	}
	return jobs
}

func TestSubmitBatchSlotOrdered(t *testing.T) {
	p, err := NewPool(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	comp := GetCompletion()
	defer comp.Release()
	const n = 32
	var jobs []Job
	for round := 0; round < 5; round++ {
		comp.Reset(n)
		jobs = makeJobs(jobs, n, 256, comp)
		p.SubmitBatch(jobs)
		results := comp.Wait()
		if len(results) != n {
			t.Fatalf("round %d: %d results, want %d", round, len(results), n)
		}
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("round %d slot %d: %v", round, i, res.Err)
			}
			if res.Tensor == nil || res.Tensor.ID != dataset.SampleID(i) {
				t.Fatalf("round %d slot %d holds sample %v, want %d (results must be slot-ordered)",
					round, i, res.Tensor, i)
			}
			if res.Tensor.Checksum == 0 {
				t.Fatalf("round %d slot %d: zero checksum", round, i)
			}
			PutTensor(res.Tensor)
		}
	}
	if got := p.Processed(); got != 5*n {
		t.Fatalf("processed %d jobs, want %d", got, 5*n)
	}
}

// TestSubmitBatchMatchesSubmit pins that batched delivery decodes to the
// same tensors as per-sample delivery for identical inputs.
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	p, err := NewPool(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 16
	done := make(chan Result, n)
	want := make(map[dataset.SampleID]uint64, n)
	for i := 0; i < n; i++ {
		buf := make([]byte, 300)
		dataset.FillPayload(buf, 7, dataset.SampleID(i))
		p.Submit(Job{ID: dataset.SampleID(i), Payload: buf, Seed: uint64(i), Done: done})
	}
	for i := 0; i < n; i++ {
		res := <-done
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want[res.Tensor.ID] = res.Tensor.Checksum
	}
	comp := GetCompletion()
	defer comp.Release()
	comp.Reset(n)
	var jobs []Job
	for i := 0; i < n; i++ {
		buf := make([]byte, 300)
		dataset.FillPayload(buf, 7, dataset.SampleID(i))
		jobs = append(jobs, Job{ID: dataset.SampleID(i), Payload: buf, Seed: uint64(i), Comp: comp, Slot: i})
	}
	p.SubmitBatch(jobs)
	for i, res := range comp.Wait() {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Tensor.Checksum != want[dataset.SampleID(i)] {
			t.Fatalf("slot %d checksum %#x, per-sample path got %#x",
				i, res.Tensor.Checksum, want[dataset.SampleID(i)])
		}
	}
}

// TestBatchedSteadyStateDoesNotAllocate is the dynamic twin of the
// //lint:hotpath annotations on SubmitBatch, Completion.Reset/complete/
// Wait and the pooled buffers: one warmed-up batch round trip —
// payload lease, submit, decode, deliver, tensor recycle — must not
// allocate.
func TestBatchedSteadyStateDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and defeats sync.Pool")
	}
	p, err := NewPool(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	comp := GetCompletion()
	defer comp.Release()
	const n, size = 8, 256
	var jobs []Job
	jobs = make([]Job, 0, n)
	round := func() {
		comp.Reset(n)
		jobs = makeJobs(jobs, n, size, comp)
		p.SubmitBatch(jobs)
		for _, res := range comp.Wait() {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			PutTensor(res.Tensor)
		}
	}
	// Warm the pools (completion results, payload and tensor classes)
	// before measuring.
	for i := 0; i < 10; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(200, round); allocs != 0 {
		t.Fatalf("batched steady state allocates %.1f times per round, want 0", allocs)
	}
}

// TestResizeStormDoesNotBlock forces the stop-token channel to
// overflow: all workers are wedged mid-job, so nobody drains tokens,
// and a shrink far past the channel bound must return immediately by
// banking the overflow as stop debt (the documented bound — see
// poolStopsCap — affects promptness only, never controller liveness).
func TestResizeStormDoesNotBlock(t *testing.T) {
	p, err := newPool(8, 64, 2) // stop channel bound of 2
	if err != nil {
		t.Fatal(err)
	}
	// Wedge every worker: unbuffered Done with no receiver blocks the
	// delivery send.
	stuck := make(chan Result)
	const wedged = 8
	for i := 0; i < wedged; i++ {
		buf := make([]byte, 128)
		dataset.FillPayload(buf, 7, dataset.SampleID(i))
		p.Submit(Job{ID: dataset.SampleID(i), Payload: buf, Seed: 0, Done: stuck})
	}
	// A storm of full-range resizes. Before the debt mechanism the third
	// shrink would block forever on the size-2 stops channel.
	for i := 0; i < 50; i++ {
		if err := p.Resize(1); err != nil {
			t.Fatal(err)
		}
		if err := p.Resize(8); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Resize(4); err != nil {
		t.Fatal(err)
	}
	// Unwedge and check the pool still works and converges: every job
	// completes, including fresh ones submitted after the storm.
	var sub sync.WaitGroup
	sub.Add(1)
	go func() {
		defer sub.Done()
		buf := make([]byte, 128)
		dataset.FillPayload(buf, 7, 99)
		p.Submit(Job{ID: 99, Payload: buf, Seed: 0, Done: stuck})
	}()
	for i := 0; i < wedged+1; i++ {
		if res := <-stuck; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	sub.Wait()
	p.Close()
	if got := p.Processed(); got != wedged+1 {
		t.Fatalf("processed %d, want %d", got, wedged+1)
	}
	if p.Workers() != 4 {
		t.Fatalf("target %d after storm, want 4", p.Workers())
	}
}

// TestSubmitBatchResizeRace runs 8 batching ranks against a resize
// storm under the race detector — the shape the dynamic thread manager
// produces every iteration on a shared node pool.
func TestSubmitBatchResizeRace(t *testing.T) {
	p, err := NewPool(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	const ranks, rounds, n = 8, 20, 8
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			comp := GetCompletion()
			defer comp.Release()
			var jobs []Job
			for round := 0; round < rounds; round++ {
				comp.Reset(n)
				jobs = makeJobs(jobs, n, 512, comp)
				p.SubmitBatch(jobs)
				for i, res := range comp.Wait() {
					if res.Err != nil {
						t.Errorf("slot %d: %v", i, res.Err)
						return
					}
					PutTensor(res.Tensor)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if err := p.Resize(1 + i%7); err != nil {
				t.Errorf("Resize: %v", err)
			}
		}
	}()
	wg.Wait()
	p.Close()
	if got := p.Processed(); got != ranks*rounds*n {
		t.Fatalf("processed %d, want %d", got, ranks*rounds*n)
	}
}
