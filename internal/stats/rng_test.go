package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestDeriveSeedDecorrelates(t *testing.T) {
	seen := map[uint64]bool{}
	for stream := uint64(0); stream < 1000; stream++ {
		s := DeriveSeed(7, stream)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at stream %d", stream)
		}
		seen[s] = true
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %g, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(11, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(500)
	seen := make([]bool, 500)
	for _, v := range p {
		if v < 0 || v >= 500 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestPermPropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleUniformity(t *testing.T) {
	// Each element should land in each position roughly uniformly.
	const n = 5
	const trials = 60000
	counts := [n][n]int{}
	r := NewRNG(23)
	for trial := 0; trial < trials; trial++ {
		a := [n]int{0, 1, 2, 3, 4}
		r.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		for pos, v := range a {
			counts[v][pos]++
		}
	}
	want := float64(trials) / n
	for v := 0; v < n; v++ {
		for pos := 0; pos < n; pos++ {
			got := float64(counts[v][pos])
			if math.Abs(got-want)/want > 0.05 {
				t.Fatalf("element %d at position %d: count %g, want ~%g", v, pos, got, want)
			}
		}
	}
}
