// Command lobster-doctor diagnoses a training run's bottlenecks from
// its observability exhaust. Point it at one or more monitor endpoints
// (the runtime's and/or lobster-kv shards') or at saved /metrics and
// /trace.json files, and it prints a ranked report: the dominant stall
// causes per rank and overall, straggler ranks, the per-epoch load
// imbalance coefficient, and the recovery layer's efficacy (hedged
// reads won, failover cost).
//
// Examples:
//
//	lobster-doctor http://127.0.0.1:7100                 # live monitor
//	lobster-doctor http://node0:7100 http://node1:7100   # merged nodes
//	lobster-doctor metrics.txt trace.json                # saved files
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/doctor"
)

func main() {
	flag.Usage = func() {
		_, _ = fmt.Fprintf(flag.CommandLine.Output(), // best-effort usage text; stderr has no recovery
			"usage: lobster-doctor <monitor-url|file> [...]\n\n"+
				"Sources are monitor base URLs (their /metrics and /trace.json are\n"+
				"scraped) or saved files (content-sniffed). Multiple sources merge\n"+
				"into one cross-node report.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	metrics, trace, err := doctor.Collect(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lobster-doctor:", err)
		os.Exit(1)
	}
	report := doctor.Analyze(metrics, trace)
	if err := report.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lobster-doctor:", err)
		os.Exit(1)
	}
}
