// Package monitor exposes a running training job's statistics over HTTP —
// the observability surface a production data-loading runtime needs:
//
//	/metrics.json    the most recent snapshot, JSON
//	/metrics         Prometheus text exposition of an attached
//	                 obs.Registry (404 until SetRegistry)
//	/trace.json      Chrome trace-event dump of an attached
//	                 obs.TraceRing, loadable in Perfetto
//	                 (404 until SetTrace)
//	/debug/pprof/*   the standard Go profiling endpoints
//	/healthz         liveness probe, staleness-aware (SetMaxStale);
//	                 healthy responses are JSON and include the
//	                 snapshot's HealthSignaler counters when it has them
//	/                human-readable text dashboard
//
// The server is generic: anything that can produce a snapshot value can
// be monitored. The online runtime publishes a runtime.Progress every
// iteration (see runtime.Options.OnProgress); attach the run's
// obs.Registry and obs.TraceRing for the live per-stage view.
package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// shutdownTimeout bounds how long Close waits for in-flight scrapes to
// finish before forcibly closing connections.
const shutdownTimeout = 2 * time.Second

// Server serves the most recently published snapshot.
type Server struct {
	ln      net.Listener
	httpSrv *http.Server

	mu       sync.RWMutex
	snapshot any
	updated  time.Time
	updates  atomic.Uint64

	// maxStale (ns) is the /healthz staleness window; 0 disables the
	// staleness check (a snapshot, once published, keeps the probe ok).
	maxStale atomic.Int64

	reg   atomic.Pointer[obs.Registry]
	trace atomic.Pointer[obs.TraceRing]
}

// Serve starts the monitor on addr ("127.0.0.1:0" for an ephemeral port).
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: %w", err)
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", s.handleJSON)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace.json", s.handleTrace)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleText)
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln) //lint:allow errcheck Serve always returns non-nil on Close; nothing to do with it
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Update publishes a new snapshot. Safe for concurrent use.
func (s *Server) Update(snapshot any) {
	s.mu.Lock()
	s.snapshot = snapshot
	s.updated = time.Now()
	s.mu.Unlock()
	s.updates.Add(1)
}

// Updates returns the number of snapshots published.
func (s *Server) Updates() uint64 { return s.updates.Load() }

// SetMaxStale makes /healthz fail once the last Update is older than d.
// A runtime that hangs mid-run stops publishing; without a staleness
// window the probe would report ok forever on the frozen snapshot.
// d <= 0 disables the check.
func (s *Server) SetMaxStale(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.maxStale.Store(int64(d))
}

// SetRegistry attaches the instrument registry served at /metrics.
func (s *Server) SetRegistry(r *obs.Registry) { s.reg.Store(r) }

// SetTrace attaches the span ring served at /trace.json.
func (s *Server) SetTrace(tr *obs.TraceRing) { s.trace.Store(tr) }

// Close shuts the server down gracefully: in-flight scrapes get up to
// shutdownTimeout to finish before connections are forcibly closed.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := s.httpSrv.Shutdown(ctx); err != nil {
		// Stragglers past the deadline: cut them.
		return s.httpSrv.Close()
	}
	return nil
}

func (s *Server) handleJSON(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	snap, updated := s.snapshot, s.updated
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	out := map[string]any{
		"updated_unix_ms": updated.UnixMilli(),
		"updates":         s.updates.Load(),
		"snapshot":        snap,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := s.reg.Load()
	if reg == nil {
		http.Error(w, "no instrument registry attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := reg.WritePrometheus(w); err != nil {
		// Headers are gone; the truncated body is the client's signal.
		return
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	tr := s.trace.Load()
	if tr == nil {
		http.Error(w, "no trace ring attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="lobster-trace.json"`)
	if err := tr.WriteJSON(w); err != nil {
		return // client disconnect mid-dump; nothing actionable
	}
}

// HealthSignaler lets a snapshot type surface recovery- and
// overload-pressure counters through /healthz: a published snapshot
// implementing it gets its counters embedded in the healthy JSON body
// (runtime.Progress reports failovers and partial fan-outs,
// kvstore.Stats its shed counters), so a probe that is "up" can still
// show a deployment degrading before anyone opens /metrics.
type HealthSignaler interface {
	HealthSignals() map[string]uint64
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	snap := s.snapshot
	updated := s.updated
	s.mu.RUnlock()
	if snap == nil {
		http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
		return
	}
	if window := time.Duration(s.maxStale.Load()); window > 0 {
		if age := time.Since(updated); age > window {
			http.Error(w, fmt.Sprintf("snapshot stale: last update %s ago (max %s)", age.Round(time.Millisecond), window),
				http.StatusServiceUnavailable)
			return
		}
	}
	out := map[string]any{
		"status":  "ok",
		"updates": s.updates.Load(),
	}
	if hs, ok := snap.(HealthSignaler); ok {
		out["signals"] = hs.HealthSignals()
	}
	w.Header().Set("Content-Type", "application/json")
	// Best-effort health probe; client disconnects are not actionable.
	_ = json.NewEncoder(w).Encode(out)
}

func (s *Server) handleText(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	snap, updated := s.snapshot, s.updated
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// Best-effort text dashboard; client disconnects are not actionable.
	_, _ = fmt.Fprintf(w, "lobster monitor — %d updates, last at %s\n\n",
		s.updates.Load(), updated.Format(time.RFC3339Nano))
	if snap == nil {
		_, _ = fmt.Fprintln(w, "(no snapshot published yet)")
		return
	}
	// Render the snapshot as indented JSON; a text template would need to
	// know the concrete type.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed render is visible to the client; nothing to do here.
	_ = enc.Encode(snap)
}
