package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/doctor"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// TestDoctorEndToEnd exercises the doctor exactly as an operator would
// use it: an instrumented run publishes its registry and span ring
// through a live monitor endpoint, and the doctor scrapes /metrics and
// /trace.json over HTTP, merges them, and writes a report that names at
// least one stall cause.
func TestDoctorEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full training loop")
	}
	p := ChaosParams{}.withDefaults()
	opts, err := chaosOptions(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(1 << 16)
	ring.SetProcess(1, "e2e")
	opts.Obs = reg
	opts.Trace = ring
	if _, err := runtime.Run(opts); err != nil {
		t.Fatalf("run aborted: %v", err)
	}

	mon, err := monitor.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SetRegistry(reg)
	mon.SetTrace(ring)

	metrics, trace, err := doctor.Collect([]string{"http://" + mon.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	rep := doctor.Analyze(metrics, trace)
	if len(rep.TopCauses) == 0 {
		t.Fatal("scraped report ranks no stall causes")
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, rep.TopCauses[0].Cause) {
		t.Errorf("report text does not name the top cause %q:\n%s", rep.TopCauses[0].Cause, out)
	}
	if !strings.Contains(out, "Per-rank decomposition") {
		t.Errorf("report text missing per-rank decomposition:\n%s", out)
	}
}
