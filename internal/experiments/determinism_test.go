package experiments

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/par"
)

// golden renders everything an experiment reports — the human-readable
// lines and the machine-readable headline values — as one comparable blob.
func golden(t *testing.T, id string, p Params) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return rep.Text() + strings.Join(rep.SortedValues(), "\n")
}

// TestReportsIdenticalAcrossPoolWidths is the fan-out determinism
// contract: the same experiment produces a byte-identical report whether
// its campaigns run serially, on a width-8 pool, or on a second repeated
// same-seed run. Parallelism may only change wall time, never a reported
// number. fig07d exercises the deepest fan-out (eight campaigns across
// four node counts); fig09 covers the trainsim path.
func TestReportsIdenticalAcrossPoolWidths(t *testing.T) {
	for _, id := range []string{"fig07d", "fig09"} {
		serial := Params{Scale: dataset.ScaleTiny, Seed: 42}
		want := golden(t, id, serial)
		if again := golden(t, id, serial); again != want {
			t.Fatalf("%s: same-seed serial reruns differ:\n--- first\n%s\n--- second\n%s", id, want, again)
		}
		wide := serial
		wide.Pool = par.NewPool(8)
		if got := golden(t, id, wide); got != want {
			t.Fatalf("%s: -parallel 8 report differs from serial:\n--- serial\n%s\n--- parallel\n%s", id, want, got)
		}
	}
}
