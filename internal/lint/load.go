package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every package under the module
// rooted at root (the directory containing go.mod) and returns them
// sorted by import path. It is a small stdlib-only substitute for
// golang.org/x/tools/go/packages: module-local imports are resolved by
// walking the tree, standard-library imports are type-checked from
// GOROOT source via go/importer's source compiler.
//
// Test files are loaded too, but kept apart, in two extra passes that
// run after every production package is cached (test files may import
// production packages in ways that would look like import cycles
// mid-load — e.g. package a's tests importing b while b's tests import
// a, which Go permits): in-package _test.go files are type-checked
// together with their production sources into Package.TestFiles and
// Package.TestInfo, so the checks that extend to tests (goroutine,
// mutex) see fully typed test code while the production-only checks —
// and the call graph, which must keep production object identity —
// keep using Package.Info. External test packages (package foo_test)
// become their own *Package with Path "<importpath>_test" and no
// production Files.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ld := &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  map[string]*loadResult{},
		intests: map[string][]*ast.File{},
		xtests:  map[string][]*ast.File{},
	}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ok, err := hasGoSources(path)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var pkgs []*Package
	var errs []error
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ipath := modPath
		if rel != "." {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := ld.load(ipath)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		pkgs = append(pkgs, p)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	// In-package test pass: re-type-check production + test files as one
	// augmented package. Every production package is cached now, so test
	// imports that would have looked like cycles mid-load resolve.
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, ipath := range sortedKeys(ld.intests) {
		p := byPath[ipath]
		if p == nil {
			continue
		}
		all := append(append([]*ast.File{}, p.Files...), ld.intests[ipath]...)
		pkg, info, err := typecheck(ipath, fset, all, ld)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		p.TestFiles = ld.intests[ipath]
		p.TestPkg, p.TestInfo = pkg, info
	}

	// External test packages: they import the (cached) production
	// packages, including the one under test.
	for _, ipath := range sortedKeys(ld.xtests) {
		files := ld.xtests[ipath]
		pkg, info, err := typecheck(ipath+"_test", fset, files, ld)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		pkgs = append(pkgs, &Package{Path: ipath + "_test", Fset: fset, TestFiles: files, Pkg: pkg, Info: info})
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func sortedKeys(m map[string][]*ast.File) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModulePath reads the module path from the go.mod in root.
func ModulePath(root string) (string, error) {
	return modulePath(filepath.Join(root, "go.mod"))
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

func hasGoSources(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// loader resolves imports: module-local paths recursively through
// itself, everything else through the GOROOT source importer. It
// implements types.Importer.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	loaded  map[string]*loadResult
	// intests and xtests stash in-package and external (package
	// foo_test) test files by the import path of the package under
	// test, for the post-passes in LoadModule.
	intests map[string][]*ast.File
	xtests  map[string][]*ast.File
}

type loadResult struct {
	pkg *Package
	err error
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(ipath string) (*Package, error) {
	if r, ok := ld.loaded[ipath]; ok {
		if r == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", ipath)
		}
		return r.pkg, r.err
	}
	ld.loaded[ipath] = nil // cycle marker
	pkg, err := ld.check(ipath)
	ld.loaded[ipath] = &loadResult{pkg: pkg, err: err}
	return pkg, err
}

func (ld *loader) check(ipath string) (*Package, error) {
	dir := ld.root
	if ipath != ld.modPath {
		dir = filepath.Join(ld.root, filepath.FromSlash(strings.TrimPrefix(ipath, ld.modPath+"/")))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, testFiles, xtestFiles []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(f) {
			continue
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			files = append(files, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			xtestFiles = append(xtestFiles, f)
		default:
			testFiles = append(testFiles, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go sources in %s", dir)
	}
	if len(testFiles) > 0 {
		ld.intests[ipath] = testFiles
	}
	if len(xtestFiles) > 0 {
		ld.xtests[ipath] = xtestFiles
	}
	pkg, info, err := typecheck(ipath, ld.fset, files, ld)
	if err != nil {
		return nil, err
	}
	return &Package{Path: ipath, Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// buildConstraintSatisfied reports whether the file's //go:build line
// (if any) is satisfied for the default build configuration — what
// `go build` with no extra tags would compile, which is also how the
// lint binary itself is built. GOOS, GOARCH, the gc compiler, and
// go1.N language-version tags evaluate true; every custom tag (race,
// integration, ...) evaluates false. Without this, mutually exclusive
// tagged pairs (//go:build race vs !race) load into one package and
// redeclare each other's symbols.
func buildConstraintSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				// Malformed constraint: load the file and let the
				// compiler be the one to complain about it.
				return true
			}
			return expr.Eval(defaultBuildTag)
		}
	}
	return true
}

func defaultBuildTag(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == runtime.Compiler {
		return true
	}
	// Language-version tags: the toolchain compiling this module is at
	// least the go.mod version, so treat every go1.N as satisfied.
	return strings.HasPrefix(tag, "go1.")
}

// typecheck runs go/types over the files, collecting every error rather
// than stopping at the first.
func typecheck(ipath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	pkg, err := conf.Check(ipath, fset, files, info)
	if len(terrs) > 0 {
		return nil, nil, fmt.Errorf("lint: type errors in %s: %w", ipath, errors.Join(terrs...))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %w", ipath, err)
	}
	return pkg, info, nil
}
