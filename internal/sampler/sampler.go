// Package sampler produces the deterministic sample access schedule of a
// data-parallel training run.
//
// Section 2 of the paper: "a pseudo-random number generator is used to
// shuffle the training samples ... Since the seed of the pseudo-random
// number generator is known in advance, the I/O access pattern necessary to
// read the training samples can be made fully deterministic." This package
// is that property, reified: given (seed, epoch) every rank reconstructs
// the identical global permutation, and therefore every node can compute
// any other node's future accesses — the foundation of clairvoyant
// prefetching (NoPFS) and of Lobster's reuse-distance eviction.
//
// The distribution of samples to ranks follows the PyTorch
// DistributedSampler convention: a single global permutation per epoch,
// with rank r taking elements perm[r], perm[r+G], perm[r+2G], ... so that
// batch h of rank r is perm[(h*B+k)*G + r] for k in [0, B).
package sampler

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Schedule is the deterministic access schedule of one training run.
// It is immutable after construction and safe for concurrent readers
// except for the epoch-permutation cache, which is guarded internally.
type Schedule struct {
	ds        *dataset.Dataset
	worldSize int // total number of GPUs (N*M)
	batch     int // per-GPU mini-batch size |B|
	seed      uint64
	iters     int // iterations per epoch, I = floor(|D| / (B*G))

	// Tiny permutation cache: schedules are consumed epoch by epoch, and
	// planner + runtime may look one epoch ahead, so two slots suffice.
	// Guarded by mu: the online runtime calls Batch from many goroutines.
	mu    sync.Mutex
	cache [2]permEntry
}

type permEntry struct {
	epoch int
	perm  []dataset.SampleID
}

// Config describes a schedule.
type Config struct {
	WorldSize int    // total GPUs
	BatchSize int    // per-GPU mini-batch size
	Seed      uint64 // base seed; epoch seeds derive from it
}

// New builds a schedule for the dataset under cfg. The last partial
// iteration of each epoch is dropped (the paper's floor variant).
func New(ds *dataset.Dataset, cfg Config) (*Schedule, error) {
	if ds == nil {
		return nil, fmt.Errorf("sampler: nil dataset")
	}
	if cfg.WorldSize < 1 {
		return nil, fmt.Errorf("sampler: WorldSize %d < 1", cfg.WorldSize)
	}
	if cfg.BatchSize < 1 {
		return nil, fmt.Errorf("sampler: BatchSize %d < 1", cfg.BatchSize)
	}
	iters := ds.Len() / (cfg.BatchSize * cfg.WorldSize)
	if iters < 1 {
		return nil, fmt.Errorf("sampler: dataset of %d samples too small for %d GPUs x batch %d",
			ds.Len(), cfg.WorldSize, cfg.BatchSize)
	}
	s := &Schedule{
		ds:        ds,
		worldSize: cfg.WorldSize,
		batch:     cfg.BatchSize,
		seed:      cfg.Seed,
		iters:     iters,
	}
	s.cache[0].epoch = -1
	s.cache[1].epoch = -1
	return s, nil
}

// Dataset returns the underlying dataset.
func (s *Schedule) Dataset() *dataset.Dataset { return s.ds }

// WorldSize returns the total number of GPUs.
func (s *Schedule) WorldSize() int { return s.worldSize }

// BatchSize returns the per-GPU mini-batch size.
func (s *Schedule) BatchSize() int { return s.batch }

// IterationsPerEpoch returns I.
func (s *Schedule) IterationsPerEpoch() int { return s.iters }

// SamplesPerEpoch returns the number of samples actually consumed per
// epoch (excluding the dropped tail).
func (s *Schedule) SamplesPerEpoch() int { return s.iters * s.batch * s.worldSize }

// EpochPerm returns the global permutation of the given epoch. The returned
// slice is shared and must not be modified. Safe for concurrent use.
func (s *Schedule) EpochPerm(epoch int) []dataset.SampleID {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.cache {
		if s.cache[i].epoch == epoch {
			return s.cache[i].perm
		}
	}
	perm := s.buildPerm(epoch)
	// Evict the older slot (the one whose epoch is farther from this one).
	slot := 0
	if abs(s.cache[0].epoch-epoch) < abs(s.cache[1].epoch-epoch) {
		slot = 1
	}
	s.cache[slot] = permEntry{epoch: epoch, perm: perm}
	return perm
}

func (s *Schedule) buildPerm(epoch int) []dataset.SampleID {
	r := stats.NewRNG(stats.DeriveSeed(s.seed, uint64(epoch)+0x10001))
	perm := make([]dataset.SampleID, s.ds.Len())
	for i := range perm {
		perm[i] = dataset.SampleID(i)
	}
	r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// Batch appends the mini-batch of (epoch, iteration, rank) to dst and
// returns it. iteration must be in [0, I); rank in [0, WorldSize).
func (s *Schedule) Batch(dst []dataset.SampleID, epoch, iteration, rank int) []dataset.SampleID {
	if iteration < 0 || iteration >= s.iters {
		panic(fmt.Sprintf("sampler: iteration %d out of [0, %d)", iteration, s.iters))
	}
	if rank < 0 || rank >= s.worldSize {
		panic(fmt.Sprintf("sampler: rank %d out of [0, %d)", rank, s.worldSize))
	}
	perm := s.EpochPerm(epoch)
	for k := 0; k < s.batch; k++ {
		dst = append(dst, perm[(iteration*s.batch+k)*s.worldSize+rank])
	}
	return dst
}

// NodeBatch appends the union of the mini-batches of all GPUs of a node
// (ranks [node*gpusPerNode, (node+1)*gpusPerNode)) for one iteration.
// Order is GPU-major: all of GPU 0's batch, then GPU 1's, etc.
func (s *Schedule) NodeBatch(dst []dataset.SampleID, epoch, iteration, node, gpusPerNode int) []dataset.SampleID {
	for j := 0; j < gpusPerNode; j++ {
		dst = s.Batch(dst, epoch, iteration, node*gpusPerNode+j)
	}
	return dst
}

// BatchBytes returns the total byte size of the mini-batch of
// (epoch, iteration, rank).
func (s *Schedule) BatchBytes(epoch, iteration, rank int) int64 {
	perm := s.EpochPerm(epoch)
	var total int64
	for k := 0; k < s.batch; k++ {
		total += s.ds.Size(perm[(iteration*s.batch+k)*s.worldSize+rank])
	}
	return total
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
