#!/usr/bin/env bash
# Tier-1 verification gate for the Lobster reproduction. Everything a PR
# must pass, in dependency order:
#
#   1. go build        — the tree compiles
#   2. go vet          — the stock correctness checks
#   3. go test -race   — the full suite, module-wide, under the race detector
#   4. lobster-lint    — the project's own static analysis (determinism,
#                        goroutine/mutex hygiene, errcheck, bounded
#                        queues, lock-order deadlocks, zero-alloc hot
#                        paths), analyzers fanned out across cores with
#                        per-analyzer wall time printed
#   5. bench smoke     — quick protocol sanity pass of the kvstore
#                        benchmark harness (full run: make bench-kv)
#   6. overload smoke  — tiny-scale sustained-overload + hedged-read
#                        bench plus schema check of the tail-latency
#                        fields in BENCH_kv.json (DESIGN.md §11)
#   7. sim bench smoke — BENCH_sim.json schema validation
#                        (full regeneration: make bench-sim)
#   8. obs bench smoke — BENCH_obs.json schema + overhead-budget
#                        validation (full regeneration: make bench-obs)
#   9. runtime bench smoke — tiny end-to-end measurement of the batched
#                        vs per-sample data path plus schema/headline
#                        check of BENCH_runtime.json (DESIGN.md §12;
#                        full regeneration: make bench-runtime)
#  10. chaos bench smoke — tiny live run of the chaos recovery suite
#                        (straggler / brownout / node-loss scenarios,
#                        structural criteria) plus schema check of the
#                        committed BENCH_chaos.json (DESIGN.md §13;
#                        full regeneration: make bench-chaos)
#  11. monitor smoke   — boot lobster-kv with its monitor attached and
#                        scrape the live /metrics and /healthz endpoints
#  12. doctor smoke    — point lobster-doctor at the live monitor (the
#                        scrape/report path end to end over HTTP), then
#                        run an instrumented mini training run and check
#                        the doctor names at least one stall cause
#                        (DESIGN.md §14)
#
# Run from anywhere: the script cds to the repo root. `make check` is an
# alias for this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> lobster-lint -time ./..."
go run ./cmd/lobster-lint -time ./...

echo "==> kvstore bench smoke"
# Short protocol sanity pass of the bench harness (the full run is
# `make bench-kv`, which writes BENCH_kv.json).
go test ./internal/kvstore -run TestBenchKVJSON -count=1

echo "==> kvstore overload bench smoke"
# Tiny-scale sustained-overload + hedged-read bench (DESIGN.md §11):
# proves the tail-latency harness runs end to end and schema-checks the
# goodput/shed/p99/p999 fields in its output and in the committed
# BENCH_kv.json.
LOBSTER_BENCH_KV=tiny go test ./internal/kvstore -run TestBenchKVJSON -count=1

echo "==> sim bench smoke"
# Schema validation of the committed BENCH_sim.json (the full run is
# `make bench-sim`, which regenerates it).
go test . -run TestBenchSimJSON -count=1

echo "==> obs bench smoke"
# Schema + disabled-overhead-budget validation of the committed
# BENCH_obs.json (the full run is `make bench-obs`, which regenerates it).
go test . -run TestBenchObsJSON -count=1

echo "==> runtime bench smoke"
# Tiny end-to-end run of the batched-vs-per-sample data-path harness
# (proves the batched path's alloc advantage live) plus schema and
# headline validation of the committed BENCH_runtime.json (the full run
# is `make bench-runtime`, which regenerates it).
LOBSTER_BENCH_RUNTIME=tiny go test . -run TestBenchRuntimeJSON -count=1

echo "==> chaos bench smoke"
# Tiny live run of the chaos recovery scenarios (deterministic schedules,
# structural pass criteria) plus schema validation of the committed
# BENCH_chaos.json (the full run is `make bench-chaos`, which regenerates
# it with the wall-clock criteria enabled).
LOBSTER_BENCH_CHAOS=tiny go test . -run TestBenchChaosJSON -count=1

echo "==> monitor scrape smoke"
# End-to-end over real TCP: boot lobster-kv with its monitor sidecar and
# scrape the live endpoints the way an operator's Prometheus would.
kv_bin="$(mktemp -d)/lobster-kv"
kv_log="$(mktemp)"
go build -o "$kv_bin" ./cmd/lobster-kv
"$kv_bin" -addr 127.0.0.1:0 -capacity 4MiB -stats-interval 1 -monitor 127.0.0.1:0 >"$kv_log" 2>&1 &
kv_pid=$!
trap 'kill "$kv_pid" 2>/dev/null || true' EXIT
mon_url=""
for _ in $(seq 1 100); do
  mon_url="$(sed -n 's#^monitor at \(http://[^/]*\)/metrics$#\1#p' "$kv_log")"
  [ -n "$mon_url" ] && break
  sleep 0.1
done
if [ -z "$mon_url" ]; then
  echo "monitor never came up; lobster-kv log:" >&2
  cat "$kv_log" >&2
  exit 1
fi
curl -fsS "$mon_url/metrics" | grep -q '^lobster_kvstore_shard_items ' \
  || { echo "live /metrics scrape missing lobster_kvstore_shard_items" >&2; exit 1; }
curl -fsS "$mon_url/metrics" | grep -q '^# TYPE lobster_kvstore_shard_hits_total counter' \
  || { echo "live /metrics scrape missing kvstore counter metadata" >&2; exit 1; }
curl -fsS "$mon_url/healthz" | grep -q '"status":"ok"' \
  || { echo "live /healthz is not healthy" >&2; exit 1; }
curl -fsS "$mon_url/healthz" | grep -q '"signals"' \
  || { echo "live /healthz carries no health signals" >&2; exit 1; }

echo "==> doctor smoke"
# The doctor must ingest the live monitor over HTTP (its /metrics plus
# the 0xA4-fed /trace.json) and produce a report...
doctor_bin="$(dirname "$kv_bin")/lobster-doctor"
go build -o "$doctor_bin" ./cmd/lobster-doctor
"$doctor_bin" "$mon_url" | grep -q '^lobster-doctor report' \
  || { echo "lobster-doctor could not report on the live monitor" >&2; exit 1; }
kill "$kv_pid"
wait "$kv_pid" 2>/dev/null || true
trap - EXIT
# ...and, fed an instrumented training run, rank at least one stall
# cause (the in-process end-to-end: run -> monitor -> HTTP scrape ->
# ranked report).
go test ./internal/experiments -run TestDoctorEndToEnd -count=1

echo "ALL CHECKS PASSED"
