package access

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/sampler"
)

func twoJobPlans(t *testing.T) (*Plan, *Plan, *sampler.Schedule, *sampler.Schedule, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "share", NumSamples: 1200, MeanSize: 1000, Classes: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two jobs over the same data, different shuffles (different seeds).
	sa, err := sampler.New(ds, sampler.Config{WorldSize: 2, BatchSize: 10, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sampler.New(ds, sampler.Config{WorldSize: 2, BatchSize: 10, Seed: 200})
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 3
	pa, err := Build(sa, 0, 2, epochs, 0)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Build(sb, 0, 2, epochs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pa, pb, sa, sb, ds
}

func TestMergePlansValidation(t *testing.T) {
	if _, err := MergePlans(); err == nil {
		t.Error("empty merge accepted")
	}
	pa, _, sa, _, _ := twoJobPlans(t)
	short, err := Build(sa, 0, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergePlans(pa, short); err == nil {
		t.Error("mismatched epoch counts accepted")
	}
}

func TestMergePlansUnionSemantics(t *testing.T) {
	pa, pb, _, _, ds := twoJobPlans(t)
	merged, err := MergePlans(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < ds.Len(); id++ {
		sid := dataset.SampleID(id)
		la, lb := pa.AccessesOf(sid), pb.AccessesOf(sid)
		lm := merged.AccessesOf(sid)
		if len(lm) != len(la)+len(lb) {
			t.Fatalf("sample %d: merged %d accesses, want %d+%d", id, len(lm), len(la), len(lb))
		}
		for i := 1; i < len(lm); i++ {
			if lm[i] < lm[i-1] {
				t.Fatalf("sample %d: merged list not sorted", id)
			}
		}
		// Remaining-use counts are additive.
		if merged.UsesRemaining(sid, -1) != pa.UsesRemaining(sid, -1)+pb.UsesRemaining(sid, -1) {
			t.Fatalf("sample %d: UsesRemaining not additive", id)
		}
		// NextUse is the min of the two plans' next uses.
		na, nb := pa.NextUse(sid, -1), pb.NextUse(sid, -1)
		want := na
		if na == NoAccess || (nb != NoAccess && nb < na) {
			want = nb
		}
		if got := merged.NextUse(sid, -1); got != want {
			t.Fatalf("sample %d: merged NextUse %d, want %d", id, got, want)
		}
	}
}

// TestSharedCacheMergedOracleWins replays two interleaved jobs against one
// shared cache and compares the Lobster policy driven by the merged plan
// with the same policy driven by only job A's plan (blind to job B).
// The merged oracle must hit more: it knows a sample job A is finished
// with is still needed by job B.
func TestSharedCacheMergedOracleWins(t *testing.T) {
	pa, pb, sa, sb, ds := twoJobPlans(t)
	merged, err := MergePlans(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	replay := func(oracle interface {
		NextUse(dataset.SampleID, Iter) Iter
		UsesRemaining(dataset.SampleID, Iter) int
		IterationsPerEpoch() int
	}) float64 {
		c, err := cache.New(ds.TotalBytes()/4, cache.NewLobster(oracle, cache.LobsterOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		var batch []dataset.SampleID
		const epochs = 3
		for epoch := 0; epoch < epochs; epoch++ {
			for it := 0; it < sa.IterationsPerEpoch(); it++ {
				now := cache.Iter(epoch*sa.IterationsPerEpoch() + it)
				// Both jobs access the shared cache in the same iteration.
				for _, s := range []*sampler.Schedule{sa, sb} {
					batch = s.NodeBatch(batch[:0], epoch, it, 0, 2)
					for _, id := range batch {
						if !c.Get(id, now) {
							c.Put(id, ds.Size(id), now)
						}
					}
				}
				c.Maintain(now)
			}
		}
		return c.Stats().HitRatio()
	}
	mergedHit := replay(merged)
	blindHit := replay(pa)
	t.Logf("merged oracle hit %.3f vs single-job oracle %.3f", mergedHit, blindHit)
	if mergedHit <= blindHit {
		t.Fatalf("merged oracle (%.3f) not better than job-A-only oracle (%.3f)", mergedHit, blindHit)
	}
}
