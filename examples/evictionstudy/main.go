// Evictionstudy: isolate the cache-eviction question of Section 4.4. The
// same deterministic access stream of one node replays against every
// eviction policy — LRU, FIFO, the OS page-cache model, never-evict
// (MinIO), the NoPFS policy, Lobster's reuse-based policy, and the
// clairvoyant Belady bound — and the hit ratios are compared directly,
// with no pipeline effects in the way.
package main

import (
	"fmt"
	"log"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/sampler"
)

func main() {
	const epochs = 8
	ds, err := dataset.Generate(dataset.Spec{
		Name: "study", NumSamples: 20000, MeanSize: 105 << 10, SigmaLog: 0.45,
		MinSize: 4 << 10, Classes: 100, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := sampler.New(ds, sampler.Config{WorldSize: 8, BatchSize: 32, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := access.Build(sched, 0, 8, epochs, 0)
	if err != nil {
		log.Fatal(err)
	}
	capacity := ds.TotalBytes() * 30 / 100 // the paper's 40 GB / 135 GB ratio

	policies := []struct {
		name string
		mk   func() cache.Policy
	}{
		{"fifo", cache.NewFIFO},
		{"lru", cache.NewLRU},
		{"page-cache", cache.NewPageCache},
		{"never-evict", cache.NewNeverEvict},
		{"nopfs", func() cache.Policy { return cache.NewNoPFS(plan) }},
		{"lobster", func() cache.Policy { return cache.NewLobster(plan, cache.LobsterOptions{}) }},
		{"belady", func() cache.Policy { return cache.NewBelady(plan) }},
	}

	fmt.Printf("demand-replay hit ratios, cache = 30%% of dataset, %d epochs:\n\n", epochs)
	fmt.Printf("%-12s %8s %10s %10s\n", "policy", "hit%", "evictions", "rejected")
	for _, p := range policies {
		c, err := cache.New(capacity, p.mk())
		if err != nil {
			log.Fatal(err)
		}
		var batch []dataset.SampleID
		for epoch := 0; epoch < epochs; epoch++ {
			for it := 0; it < sched.IterationsPerEpoch(); it++ {
				now := cache.Iter(epoch*sched.IterationsPerEpoch() + it)
				batch = sched.NodeBatch(batch[:0], epoch, it, 0, 8)
				for _, id := range batch {
					if !c.Get(id, now) {
						c.Put(id, ds.Size(id), now)
					}
				}
				c.Maintain(now)
			}
		}
		st := c.Stats()
		fmt.Printf("%-12s %8.1f %10d %10d\n", p.name, st.HitRatio()*100, st.Evictions, st.Rejected)
	}
	fmt.Println("\nBelady is the clairvoyant upper bound; Lobster's reuse-distance")
	fmt.Println("policy approaches it, the baselines do not (Section 5.5).")
}
