package threadmgr

import (
	"math"
	"testing"
)

// exhaustiveBest brute-forces the loading thread count in [1, lmax] that
// minimizes |T_L + T_P - T_train| for one GPU — the optimum Algorithm 1's
// binary search approximates.
func exhaustiveBest(m *Manager, d GPUDemand, lmax, p, gpus int, trainTime float64, activeNodes int) (int, float64) {
	best, bestDiff := 1, math.Inf(1)
	for n := 1; n <= lmax; n++ {
		diff := math.Abs(m.timeDiff(d, n, p, gpus, trainTime, activeNodes))
		if diff < bestDiff {
			best, bestDiff = n, diff
		}
	}
	return best, bestDiff
}

// TestSearchThreadsNearOptimal verifies DESIGN.md's ablation 2: the
// Algorithm 1 binary search lands within a small factor of the exhaustive
// optimum across a grid of workloads. The objective is not unimodal in
// general (tier splits change discretely with the thread count), so exact
// optimality is not guaranteed — the paper calls the result
// "near-optimal" — but the gap must stay small.
func TestSearchThreadsNearOptimal(t *testing.T) {
	m := testManager(t, 24)
	const lmax = 16
	cases := 0
	badCases := 0
	for _, misses := range []int{2, 6, 12, 20, 28, 32} {
		for _, train := range []float64{0.012, 0.030, 0.050, 0.070} {
			for _, p := range []int{4, 6, 8} {
				d := demand(misses)
				got := m.searchThreads(d, 2, lmax, p, 4, train, 1)
				gotDiff := math.Abs(m.timeDiff(d, got, p, 4, train, 1))
				_, bestDiff := exhaustiveBest(m, d, lmax, p, 4, train, 1)
				cases++
				// Accept the heuristic when it converges below tau (both
				// are "good enough") or lands within 50% of the optimum
				// gap plus an absolute millisecond of slack.
				if gotDiff < m.cfg.Tau {
					continue
				}
				if gotDiff > bestDiff*1.5+0.001 {
					badCases++
					t.Logf("misses=%d train=%g p=%d: heuristic |diff|=%.4f vs optimum %.4f",
						misses, train, p, gotDiff, bestDiff)
				}
			}
		}
	}
	if badCases*10 > cases {
		t.Fatalf("heuristic far from optimum in %d/%d cases", badCases, cases)
	}
}

// TestSearchThreadsCheaperThanExhaustive sanity-checks the complexity
// argument of Section 4.3/4.4: the binary search evaluates the model
// O(log lmax) times where exhaustive search needs lmax evaluations. We
// count evaluations indirectly by instrumenting timeDiff through a
// wrapper (the manager itself is not hookable, so this asserts on the
// algorithmic bound rather than a counter: the search must terminate
// within the window bound even for adversarial τ).
func TestSearchThreadsTerminatesUnderTinyTau(t *testing.T) {
	pmPortfolio := testManager(t, 24)
	// τ = 1 nanosecond: never converges; the window/stall guards must
	// stop the search.
	tiny := *pmPortfolio
	tiny.cfg.Tau = 1e-9
	d := demand(16)
	got := tiny.searchThreads(d, 1, 16, 6, 4, 0.05, 1)
	if got < 1 || got > 16 {
		t.Fatalf("searchThreads out of range under tiny tau: %d", got)
	}
}
