// Package lint implements lobster-lint, the project-specific static
// analysis suite. Lobster's planner assumes the sample access order and
// tier timings it simulates are exactly what the runtime replays;
// nondeterminism leaking into the simulation/planning packages, or
// goroutine/lock bugs in the concurrent runtime, silently invalidate the
// load-balance results. These analyzers turn those conventions into
// machine-checked gates:
//
//	determinism  no wall clocks, global RNG, or map-order-dependent
//	             output in sim/plan packages
//	goroutine    every goroutine literal has a termination signal
//	mutex        Lock/Unlock pairing, no lock copies, no blocking
//	             channel ops under a lock
//	errcheck     no silently dropped error returns
//	boundedchan  hot-path request queues are bounded
//	obsnaming    metric registrations follow lobster_<component>_<metric>
//	             with the family-specific suffix rules
//
// The framework uses only the standard library (go/parser, go/ast,
// go/types): each analyzer is a pure function from a type-checked
// package to findings, so analyzers are unit-testable against in-memory
// fixture sources. Deliberate exceptions are annotated in the source as
//
//	//lint:allow <check-id> <justification>
//
// which suppresses findings of that check on the directive's own line
// and the line directly below it. A directive without a justification is
// itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Check IDs, as reported in findings and accepted by //lint:allow.
const (
	idDeterminism = "determinism"
	idGoroutine   = "goroutine"
	idMutex       = "mutex"
	idErrcheck    = "errcheck"
	idBoundedChan = "boundedchan"
	idObsNaming   = "obsnaming"
)

// Finding is one analyzer hit, positioned for file:line reporting.
type Finding struct {
	Check   string         // analyzer ID, e.g. "determinism"
	Pos     token.Position // file:line:col of the offending node
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Package is one type-checked, non-test package of the module under
// analysis. Analyzers receive it read-only.
type Package struct {
	Path  string // import path, e.g. "repro/internal/sim"
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

func (p *Package) position(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

func (p *Package) finding(check string, n ast.Node, format string, args ...any) Finding {
	return Finding{Check: check, Pos: p.position(n), Message: fmt.Sprintf(format, args...)}
}

// Analyzer is one named check: a pure function from a typed package to
// findings.
type Analyzer struct {
	ID  string
	Doc string
	Run func(*Package) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, Goroutine, Mutex, Errcheck, BoundedChan, ObsNaming}
}

// Run applies the analyzers to every package, filters findings through
// the //lint:allow directives, and returns the survivors sorted by
// position. Malformed directives (no justification) are reported as
// findings of check "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		allows, bad := collectAllows(p)
		out = append(out, bad...)
		for _, a := range analyzers {
			for _, f := range a.Run(p) {
				if allows.permits(f) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// hasSuffixPkg reports whether the package path ends with one of the
// given module-relative suffixes (so checks scoped to e.g.
// "internal/sim" work regardless of the module name).
func hasSuffixPkg(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || len(path) > len(s) && path[len(path)-len(s)-1] == '/' && path[len(path)-len(s):] == s {
			return true
		}
	}
	return false
}

// typeString renders a type compactly for messages.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
