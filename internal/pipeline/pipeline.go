// Package pipeline simulates the distributed DNN training pipeline of
// Figure 1 in virtual time: overlapped data loading, preprocessing and
// training across N nodes × M GPUs, with a distributed sample cache, PFS
// contention, per-iteration thread management, and clairvoyant
// prefetching.
//
// The simulation advances one global iteration at a time with the same
// quantities the paper's performance model uses: per-GPU mini-batch
// placements (Equation 1's B_HL/B_HR/B_M), tier read times T_l/T_r/T_PFS,
// preprocessing throughput, a constant per-model T_train, and the
// data-parallel allreduce barrier that turns any one GPU's data stall into
// everyone's idle time (Observation 1). The paper's own planner is
// simulator-based (Section 4.5); this package is that simulator.
package pipeline

import (
	"fmt"
	"math"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/distcache"
	"repro/internal/loader"
	"repro/internal/metrics"
	"repro/internal/numa"
	"repro/internal/par"
	"repro/internal/perfmodel"
	"repro/internal/plan"
	"repro/internal/preproc"
	"repro/internal/sampler"
	"repro/internal/stats"
	"repro/internal/threadmgr"
	"repro/internal/tier"
)

// Config describes one simulated training run.
type Config struct {
	Topology cluster.Topology
	Model    cluster.DNNModel
	Dataset  *dataset.Dataset
	Epochs   int
	Seed     uint64
	Strategy loader.Spec

	// Tau is Algorithm 1's convergence threshold in seconds
	// (default: 5% of the model's iteration time).
	Tau float64
	// ImbalanceFrac is the fraction of the training-stage duration by
	// which per-GPU data delays must differ for the iteration to count as
	// imbalanced (default 1.0: a straggler held the node for at least one
	// extra training-stage's worth of time — calibrated so the DALI
	// motivation study reproduces the paper's "65.3% of iterations").
	ImbalanceFrac float64
	// TrainJitter is the sigma of the log-normal multiplicative noise on
	// the training stage (default 0.02; 0 disables explicitly via -1).
	TrainJitter float64
	// PFSNoise is the sigma of the log-normal burstiness multiplier on
	// per-GPU PFS read times (default 0.20; -1 disables). Lustre serves
	// small random reads with highly variable latency depending on OST
	// load — the source of the "bursty pattern" of Observation 2.
	PFSNoise float64
	// PFSNoiseRho is the AR(1) autocorrelation of the burstiness across
	// iterations (default 0.6): OST congestion persists, which is what
	// makes per-iteration re-planning worthwhile.
	PFSNoiseRho float64
	// PipelineDepth is how many iterations the loading pipeline may run
	// ahead of training (default 2, the usual double-buffering).
	PipelineDepth int
	// DecideEvery is how often (in iterations) dynamic strategies re-run
	// the thread manager; between decisions the last allocation is kept.
	// Section 4.1: "The frequency of running this algorithm can be
	// adjusted to reach a trade-off where we avoid excessive overheads
	// ... while maintaining the capability to adapt quickly". Default 1.
	DecideEvery int
	// PlanWindowEpochs, when > 0, bounds the planner's memory: the cache
	// policies see a sliding access.Windowed oracle with this many epochs
	// of detail instead of the full-run plan. Use for full-scale runs
	// (the Lobster rules only look two epochs ahead; 3 is the minimum).
	PlanWindowEpochs int

	// CollectTrace records per-iteration breakdowns (Fig. 3); capped at
	// MaxTraceIters records (default 4096).
	CollectTrace  bool
	MaxTraceIters int

	// Preproc is the ground-truth preprocessing throughput model
	// (default preproc.DefaultModel()).
	Preproc *preproc.ThroughputModel

	// Pool, when non-nil, parallelizes internal setup work that is
	// independent per item (currently the per-size portfolio fits of
	// dynamic strategies). It never changes a reported number — results
	// are slotted by index, so output is identical for any pool width.
	Pool *par.Pool
}

// GPUIter is the per-GPU breakdown of one iteration (the bars of Fig. 3).
type GPUIter struct {
	Load    float64 // data loading duration
	Preproc float64 // preprocessing duration
	Train   float64 // training compute duration
	Stall   float64 // GPU idle waiting for its own data
	Idle    float64 // GPU idle waiting for stragglers at the allreduce
}

// NodeThreads is one node's thread decision for one iteration (the
// serializable plan entry; see internal/plan).
type NodeThreads = plan.NodeThreads

// IterRecord is one iteration of the trace.
type IterRecord struct {
	Epoch     int
	Iter      int
	BatchTime float64
	PerGPU    []GPUIter
	// Threads records each node's thread decision (filled for every
	// strategy; static strategies repeat their fixed split).
	Threads []NodeThreads
}

// Result bundles the run metrics with the optional trace.
type Result struct {
	Metrics *metrics.Run
	Trace   []IterRecord
	// Schedule gives access to the run's iteration arithmetic.
	IterationsPerEpoch int
	// EpochEndTimes[e] is the virtual time at which epoch e's last
	// allreduce completed (the X coordinates of Fig. 9's curves).
	EpochEndTimes []float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Tau == 0 {
		out.Tau = out.Model.IterTime * 0.05
	}
	if out.ImbalanceFrac == 0 {
		out.ImbalanceFrac = 1.0
	}
	if out.TrainJitter == 0 {
		out.TrainJitter = 0.02
	} else if out.TrainJitter < 0 {
		out.TrainJitter = 0
	}
	if out.PFSNoise == 0 {
		out.PFSNoise = 0.20
	} else if out.PFSNoise < 0 {
		out.PFSNoise = 0
	}
	if out.PFSNoiseRho == 0 {
		out.PFSNoiseRho = 0.6
	} else if out.PFSNoiseRho < 0 {
		out.PFSNoiseRho = 0
	}
	if out.PipelineDepth == 0 {
		out.PipelineDepth = 2
	}
	if out.MaxTraceIters == 0 {
		out.MaxTraceIters = 4096
	}
	if out.DecideEvery < 1 {
		out.DecideEvery = 1
	}
	if out.Preproc == nil {
		m := preproc.DefaultModel()
		out.Preproc = &m
	}
	return out
}

// Run executes the simulation and returns its metrics (and trace when
// requested).
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("pipeline: nil dataset")
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("pipeline: epochs %d < 1", cfg.Epochs)
	}
	if err := cfg.Strategy.Validate(cfg.Topology.GPUsPerNode, cfg.Topology.CPUThreads); err != nil {
		return nil, err
	}
	if err := cfg.Preproc.Validate(); err != nil {
		return nil, err
	}
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// sim holds all mutable state of one run.
type sim struct {
	cfg      Config
	sched    *sampler.Schedule
	plans    []*access.Plan
	windowed []*access.Windowed // non-nil when PlanWindowEpochs > 0
	group    *distcache.Group
	mgr      *threadmgr.Manager // dynamic mode only
	truth    *preproc.ThroughputModel
	hier     tier.Hierarchy
	rng      *stats.RNG

	nodes, gpus int
	world       int
	iters       int // per epoch
	totalIters  int

	// Recurrence state. Loading and preprocessing are distinct stage
	// servers (I/O threads vs preprocessing pool), so they pipeline: GPU
	// g's loading of iteration h+1 overlaps the preprocessing of h
	// (Figure 1: "All these stages in the pipeline are overlapping").
	loadFree      []float64 // per global GPU: when its loading stage frees up
	preFree       []float64 // per global GPU: when its preprocessing stage frees up
	allreduceHist []float64 // ring of allreduce completion times for depth gating
	allreduceDone float64

	// Prefetch cursors, one per node.
	cursors []prefetchCursor

	// Per-GPU PFS burstiness state: log-space AR(1) process and the
	// factor realized for the current iteration. pfsFactorAlt is the
	// other half of a double buffer: each step writes the new factors
	// into it and swaps, so the previous iteration's factors stay
	// readable without a per-iteration allocation.
	pfsNoiseX    []float64
	pfsFactor    []float64
	pfsFactorAlt []float64

	// Scratch (reused across iterations).
	placements  [][]perfmodel.BatchPlacement // [node][gpu]
	loadTimes   [][]float64
	preTimes    [][]float64
	loadThreads [][]int              // per-GPU loading threads of the last decision
	preThreads  []int                // per-node preprocessing threads of the last decision
	iterCount   int                  // current global iteration (for DecideEvery)
	lastDecide  []threadmgr.Decision // cached decision per node
	demands     []threadmgr.GPUDemand
	batchBuf    []dataset.SampleID
	works       []float64
	numaBytes   []int64
	poolScratch []poolQueue

	// Outputs.
	runOut  *metrics.Run
	trace   []IterRecord
	perIter []GPUIter // scratch for trace rows
}

type prefetchCursor struct {
	iter   int                // next global iteration to scan
	off    int                // offset within that iteration's node batch
	batch  []dataset.SampleID // reused across refills
	filled bool               // batch holds cur.iter's samples
}

func newSim(cfg Config) (*sim, error) {
	top := cfg.Topology
	sched, err := sampler.New(cfg.Dataset, sampler.Config{
		WorldSize: top.WorldSize(),
		BatchSize: cfg.Model.BatchSize,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:   cfg,
		sched: sched,
		truth: cfg.Preproc,
		hier:  top.Hierarchy,
		rng:   stats.NewRNG(stats.DeriveSeed(cfg.Seed, 0x717e)),
		nodes: top.Nodes,
		gpus:  top.GPUsPerNode,
		world: top.WorldSize(),
		iters: sched.IterationsPerEpoch(),
	}
	s.totalIters = cfg.Epochs * s.iters

	// Future-access oracles and per-node caches: a full plan by default,
	// or a memory-bounded sliding window when PlanWindowEpochs is set.
	oracles := make([]cache.Oracle, s.nodes)
	if cfg.PlanWindowEpochs > 0 {
		s.windowed = make([]*access.Windowed, s.nodes)
		for n := 0; n < s.nodes; n++ {
			w, err := access.BuildWindowed(sched, n, s.gpus, cfg.Epochs, cfg.PlanWindowEpochs)
			if err != nil {
				return nil, err
			}
			s.windowed[n] = w
			oracles[n] = w
		}
	} else {
		s.plans = make([]*access.Plan, s.nodes)
		for n := 0; n < s.nodes; n++ {
			plan, err := access.Build(sched, n, s.gpus, cfg.Epochs, 0)
			if err != nil {
				return nil, err
			}
			s.plans[n] = plan
			oracles[n] = plan
		}
	}
	caches := make([]*cache.Cache, s.nodes)
	for n := 0; n < s.nodes; n++ {
		n := n
		policy := cfg.Strategy.BuildPolicy(oracles[n], func(id dataset.SampleID) bool {
			return s.group.IsLastCopy(n)(id)
		})
		c, err := cache.New(top.CacheBytes, policy)
		if err != nil {
			return nil, err
		}
		caches[n] = c
	}
	s.group, err = distcache.NewGroup(caches, cfg.Dataset.Len())
	if err != nil {
		return nil, err
	}

	if cfg.Strategy.Mode == loader.ThreadsDynamic {
		portfolio, err := perfmodel.FitPortfolio(cfg.Pool,
			[]int64{16 << 10, 32 << 10, 64 << 10, 105 << 10, 256 << 10, 512 << 10},
			top.CPUThreads, 6,
			func(size int64, threads int) float64 { return s.truth.Time(size, threads) },
		)
		if err != nil {
			return nil, err
		}
		s.mgr, err = threadmgr.New(threadmgr.Config{
			Hierarchy:    s.hier,
			Portfolio:    portfolio,
			TotalThreads: top.CPUThreads,
			Tau:          cfg.Tau,
		})
		if err != nil {
			return nil, err
		}
	}

	s.loadFree = make([]float64, s.world)
	s.preFree = make([]float64, s.world)
	s.pfsNoiseX = make([]float64, s.world)
	s.pfsFactor = make([]float64, s.world)
	s.pfsFactorAlt = make([]float64, s.world)
	for g := range s.pfsFactor {
		s.pfsFactor[g] = 1
	}
	// Ring of length depth: the slot read at iteration h was written at
	// h-depth, gating the pipeline to at most depth iterations ahead.
	s.allreduceHist = make([]float64, cfg.PipelineDepth)
	s.cursors = make([]prefetchCursor, s.nodes)
	s.placements = make([][]perfmodel.BatchPlacement, s.nodes)
	s.loadTimes = make([][]float64, s.nodes)
	s.preTimes = make([][]float64, s.nodes)
	s.loadThreads = make([][]int, s.nodes)
	s.preThreads = make([]int, s.nodes)
	s.lastDecide = make([]threadmgr.Decision, s.nodes)
	for n := range s.placements {
		s.placements[n] = make([]perfmodel.BatchPlacement, s.gpus)
		s.loadTimes[n] = make([]float64, s.gpus)
		s.preTimes[n] = make([]float64, s.gpus)
		s.loadThreads[n] = make([]int, s.gpus)
	}
	s.demands = make([]threadmgr.GPUDemand, s.gpus)
	s.works = make([]float64, s.gpus)
	s.numaBytes = make([]int64, s.gpus)
	s.poolScratch = make([]poolQueue, s.gpus)
	s.perIter = make([]GPUIter, s.world)

	s.runOut = &metrics.Run{
		Strategy:   cfg.Strategy.Name,
		Model:      cfg.Model.Name,
		Dataset:    cfg.Dataset.Name(),
		Nodes:      s.nodes,
		GPUs:       s.gpus,
		Epochs:     cfg.Epochs,
		BatchTimes: stats.NewSummary(),
	}
	return s, nil
}

func (s *sim) run() (*Result, error) {
	epochEnds := make([]float64, 0, s.cfg.Epochs)
	for h := 0; h < s.totalIters; h++ {
		s.step(h)
		if (h+1)%s.iters == 0 {
			epochEnds = append(epochEnds, s.allreduceDone)
			if s.windowed != nil {
				for _, w := range s.windowed {
					w.Advance((h + 1) / s.iters)
				}
			}
		}
	}
	s.runOut.TotalTime = s.allreduceDone
	s.runOut.Iterations = s.totalIters
	agg := s.group.AggregateStats()
	s.runOut.CacheHits = agg.Hits
	s.runOut.CacheMisses = agg.Misses
	return &Result{
		Metrics:            s.runOut,
		Trace:              s.trace,
		IterationsPerEpoch: s.iters,
		EpochEndTimes:      epochEnds,
	}, nil
}

// step simulates global iteration h.
func (s *sim) step(h int) {
	s.iterCount = h
	epoch, it := h/s.iters, h%s.iters
	now := cache.Iter(h)

	// Phase A: demand accesses. Each GPU's mini-batch is resolved against
	// the distributed cache, recording hits and fetching misses (which
	// are then cached locally, subject to policy admission).
	activePFS := 0
	for n := 0; n < s.nodes; n++ {
		nodeHasPFS := false
		for j := 0; j < s.gpus; j++ {
			rank := n*s.gpus + j
			s.batchBuf = s.sched.Batch(s.batchBuf[:0], epoch, it, rank)
			pl := s.group.GetBatch(n, s.batchBuf, s.cfg.Dataset.Size, now)
			s.runOut.RemoteHits += uint64(pl.RemoteOps)
			s.runOut.PFSFetches += uint64(pl.PFSOps)
			if pl.PFSOps > 0 {
				nodeHasPFS = true
			}
			s.placements[n][j] = pl
		}
		if nodeHasPFS {
			activePFS++
		}
	}
	if activePFS == 0 {
		activePFS = 1
	}

	// Phase B: advance the PFS burstiness state. Thread decisions see
	// only the PREVIOUS iteration's realized factors (observable
	// feedback); actual load times use the new ones.
	prevFactor := s.pfsFactor
	if sigma := s.cfg.PFSNoise; sigma > 0 {
		rho := s.cfg.PFSNoiseRho
		innov := sigma * math.Sqrt(1-rho*rho)
		newFactor := s.pfsFactorAlt
		for g := 0; g < s.world; g++ {
			s.pfsNoiseX[g] = rho*s.pfsNoiseX[g] + innov*s.rng.NormFloat64()
			newFactor[g] = math.Exp(s.pfsNoiseX[g] - sigma*sigma/2)
		}
		s.pfsFactor, s.pfsFactorAlt = newFactor, prevFactor
	}

	// Phases C-D: thread decisions, load times, preprocessing times,
	// NUMA placement effects.
	for n := 0; n < s.nodes; n++ {
		s.nodeTimes(n, activePFS, prevFactor)
		s.applyNUMA(n)
	}

	// Phase E: the pipeline recurrence and the allreduce barrier.
	prevDone := s.allreduceDone
	gate := s.allreduceHist[h%len(s.allreduceHist)] // allreduce of h-depth
	maxDone := 0.0
	var minStall, maxStall = math.Inf(1), math.Inf(-1)
	collectTrace := s.cfg.CollectTrace && len(s.trace) < s.cfg.MaxTraceIters
	for n := 0; n < s.nodes; n++ {
		for j := 0; j < s.gpus; j++ {
			g := n*s.gpus + j
			loadStart := s.loadFree[g]
			if gate > loadStart {
				loadStart = gate
			}
			loadDone := loadStart + s.loadTimes[n][j]
			s.loadFree[g] = loadDone
			preStart := s.preFree[g]
			if loadDone > preStart {
				preStart = loadDone
			}
			ready := preStart + s.preTimes[n][j]
			s.preFree[g] = ready
			trainStart := prevDone
			if ready > trainStart {
				trainStart = ready
			}
			stall := trainStart - prevDone
			dur := s.cfg.Model.IterTime * s.jitter()
			done := trainStart + dur
			if done > maxDone {
				maxDone = done
			}
			if stall < minStall {
				minStall = stall
			}
			if stall > maxStall {
				maxStall = stall
			}
			s.runOut.TrainTimeTotal += dur
			s.runOut.StallTotal += stall
			if collectTrace {
				s.perIter[g] = GPUIter{
					Load:    s.loadTimes[n][j],
					Preproc: s.preTimes[n][j],
					Train:   dur,
					Stall:   stall,
				}
			}
		}
	}
	s.allreduceDone = maxDone + cluster.AllreduceTime(s.world)
	s.allreduceHist[h%len(s.allreduceHist)] = s.allreduceDone
	batchTime := s.allreduceDone - prevDone
	s.runOut.BatchTimes.Add(batchTime)
	if maxStall-minStall > s.cfg.ImbalanceFrac*s.cfg.Model.IterTime {
		s.runOut.ImbalancedIterations++
	}
	if collectTrace {
		rec := IterRecord{Epoch: epoch, Iter: it, BatchTime: batchTime, PerGPU: make([]GPUIter, s.world)}
		copy(rec.PerGPU, s.perIter)
		rec.Threads = make([]NodeThreads, s.nodes)
		for n := 0; n < s.nodes; n++ {
			rec.Threads[n] = NodeThreads{
				Preproc: s.preThreads[n],
				Loading: append([]int(nil), s.loadThreads[n]...),
			}
		}
		for g := range rec.PerGPU {
			// Idle: waiting at the barrier for stragglers.
			rec.PerGPU[g].Idle = batchTime - rec.PerGPU[g].Stall - rec.PerGPU[g].Train
			if rec.PerGPU[g].Idle < 0 {
				rec.PerGPU[g].Idle = 0
			}
		}
		s.trace = append(s.trace, rec)
	}

	// Phase F: proactive eviction then prefetching into the spare
	// loading capacity of the iteration.
	for n := 0; n < s.nodes; n++ {
		s.group.Maintain(n, now)
	}
	if s.cfg.Strategy.PrefetchDepth > 0 {
		for n := 0; n < s.nodes; n++ {
			s.prefetch(n, h, batchTime, activePFS)
		}
	}
}

// nodeTimes fills loadTimes[n] and preTimes[n] for iteration h.
// prevFactor carries the previous iteration's realized PFS slowdowns,
// which dynamic strategies feed back into their predictions.
func (s *sim) nodeTimes(n, activePFS int, prevFactor []float64) {
	spec := s.cfg.Strategy
	switch spec.Mode {
	case loader.ThreadsStatic:
		p := spec.PreprocThreads
		s.preThreads[n] = p
		for j := 0; j < s.gpus; j++ {
			pl := s.placements[n][j]
			alloc := perfmodel.SplitThreads(s.hier, pl, spec.LoadingPerGPU, activePFS)
			s.loadTimes[n][j] = s.noisyLoadTime(n*s.gpus+j, pl, alloc, activePFS)
			s.preTimes[n][j] = s.preShare(pl, p)
			s.loadThreads[n][j] = spec.LoadingPerGPU
		}
	case loader.ThreadsSharedPool:
		p := spec.PreprocThreads
		s.preThreads[n] = p
		for j := 0; j < s.gpus; j++ {
			pl := s.placements[n][j]
			alloc := perfmodel.SplitThreads(s.hier, pl, spec.SharedLoading, activePFS)
			s.works[j] = s.noisyLoadTime(n*s.gpus+j, pl, alloc, activePFS)
		}
		sharedPoolTimes(s.works, s.loadTimes[n], s.poolScratch)
		share := spec.SharedLoading / s.gpus
		if share < 1 {
			share = 1
		}
		for j := 0; j < s.gpus; j++ {
			s.preTimes[n][j] = s.preShare(s.placements[n][j], p)
			// For prefetch budgeting the pool is accounted node-wide, but
			// NUMA placement sees the pool spread over the GPU queues.
			s.loadThreads[n][j] = share
		}
	case loader.ThreadsDynamic:
		for j := 0; j < s.gpus; j++ {
			pl := s.placements[n][j]
			s.demands[j] = threadmgr.GPUDemand{
				Placement:    pl,
				QueueLen:     pl.TotalOps(),
				PreprocBytes: pl.TotalBytes(),
				PreprocCount: pl.TotalOps(),
				PFSSlowdown:  prevFactor[n*s.gpus+j],
			}
		}
		var dec threadmgr.Decision
		if s.iterCount%s.cfg.DecideEvery == 0 || s.lastDecide[n].Loading == nil {
			dec = s.mgr.Decide(s.demands, s.cfg.Model.IterTime, activePFS)
			s.lastDecide[n] = dec
		} else {
			dec = s.lastDecide[n]
		}
		s.preThreads[n] = dec.PreprocThreads
		for j := 0; j < s.gpus; j++ {
			pl := s.placements[n][j]
			alloc := perfmodel.SplitThreads(s.hier, pl, dec.Loading[j], activePFS)
			s.loadTimes[n][j] = s.noisyLoadTime(n*s.gpus+j, pl, alloc, activePFS)
			s.preTimes[n][j] = s.preShare(pl, dec.PreprocThreads)
			s.loadThreads[n][j] = dec.Loading[j]
		}
	}
}

// preShare models the node preprocessing pool shared fairly by the M
// GPUs: each GPU's batch is processed at 1/M of the pool's throughput.
func (s *sim) preShare(pl perfmodel.BatchPlacement, p int) float64 {
	if pl.TotalOps() == 0 {
		return 0
	}
	return s.truth.Time(pl.TotalBytes()*int64(s.gpus), p)
}

// applyNUMA inflates node n's preprocessing times by the cross-socket
// traffic its thread placement causes: loaded bytes decoded on the other
// socket stream over the inter-socket link (Section 5.2's NUMA effect).
// NUMA-aware strategies co-locate and pay (almost) nothing.
func (s *sim) applyNUMA(n int) {
	domains := s.cfg.Topology.NUMADomains
	if domains <= 1 {
		return
	}
	perDomain := s.cfg.Topology.CPUThreads / domains
	if perDomain < 1 {
		perDomain = 1
	}
	placement, err := numa.Assign(domains, perDomain, s.loadThreads[n], s.preThreads[n], s.cfg.Strategy.NUMAAware)
	if err != nil {
		return
	}
	bytes := s.numaBytes
	for j := 0; j < s.gpus; j++ {
		bytes[j] = s.placements[n][j].TotalBytes()
	}
	factor := numa.Penalty(numa.CrossTrafficFraction(placement, bytes))
	if factor >= 1 {
		return
	}
	for j := 0; j < s.gpus; j++ {
		s.preTimes[n][j] /= factor
	}
}

// noisyLoadTime evaluates Equation 1 with the GPU's current burstiness
// factor applied to the PFS term, mapping the "no threads at all" infinity
// onto a large finite stall so the simulation continues (and the strategy
// pays dearly).
func (s *sim) noisyLoadTime(g int, pl perfmodel.BatchPlacement, alloc perfmodel.ThreadAlloc, activePFS int) float64 {
	local, remote, pfs := perfmodel.LoadTimeParts(s.hier, pl, alloc, activePFS)
	if math.IsInf(local, 1) {
		return 3600 // an hour of virtual stall; only reachable via misconfiguration
	}
	return local + remote + pfs*s.pfsFactor[g]
}

// poolQueue is one GPU queue's (work, index) pair for sharedPoolTimes;
// the scratch slice lives on the sim so the per-iteration call does not
// allocate.
type poolQueue struct {
	w float64
	i int
}

// sharedPoolTimes computes per-GPU completion times when each GPU's work
// (expressed as "seconds alone with the whole pool") is served by a single
// pool shared fairly among the currently-active queues (processor-sharing
// / water-filling). A queue that needs w pool-seconds while k queues are
// active drains at rate 1/k. qs is caller-provided scratch of len(works).
func sharedPoolTimes(works []float64, out []float64, qs []poolQueue) {
	n := len(works)
	for i, w := range works {
		qs[i] = poolQueue{w, i}
	}
	// Insertion sort by work: n is the GPU count (8), tiny.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && qs[j].w < qs[j-1].w; j-- {
			qs[j], qs[j-1] = qs[j-1], qs[j]
		}
	}
	t, prev := 0.0, 0.0
	active := n
	for _, q := range qs {
		t += (q.w - prev) * float64(active)
		prev = q.w
		out[q.i] = t
		active--
	}
}

// jitter returns the multiplicative training-time noise (mean 1).
func (s *sim) jitter() float64 {
	sigma := s.cfg.TrainJitter
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma*s.rng.NormFloat64() - sigma*sigma/2)
}

// prefetch fills node n's spare loading capacity of iteration h with
// future samples. Candidates are scanned in access order (nearest future
// use first — Lobster's "prioritizing the prefetches with the nearest
// reuse distance"); the cursor is monotone so the whole run's scan cost is
// linear in the schedule length.
func (s *sim) prefetch(n, h int, batchTime float64, activePFS int) {
	// Budget in thread-seconds. Strategies with fixed thread assignments
	// prefetch only with their dedicated background helpers (the paper's
	// second challenge: "rigid resource allocations ... lead to idle
	// resources"); Lobster's dynamic thread management additionally
	// converts every idle loading thread-second into prefetch work.
	budget := float64(s.cfg.Strategy.PrefetchThreads) * batchTime
	if s.cfg.Strategy.Mode == loader.ThreadsDynamic {
		// Idle-to-prefetch conversion efficiency: redirected threads pay
		// wake-up and coordination costs and share memory bandwidth with
		// the preprocessing pool, so an idle thread-second yields a bit
		// less than a second of useful prefetch I/O.
		const conversionEff = 0.3
		for j := 0; j < s.gpus; j++ {
			if spare := batchTime - s.loadTimes[n][j]; spare > 0 {
				budget += spare * float64(s.loadThreads[n][j]) * conversionEff
			}
		}
	}
	if budget <= 0 {
		return
	}
	// Per-candidate cost in thread-seconds: one op's latency plus the
	// transfer at the rate a single thread sees when the whole loading
	// pool is active — prefetch threads share the tier with each other
	// and with demand reads, so the solo-thread rate is not available.
	poolSize := 0
	if s.cfg.Strategy.Mode == loader.ThreadsSharedPool {
		poolSize = s.cfg.Strategy.SharedLoading
	} else {
		for j := 0; j < s.gpus; j++ {
			poolSize += s.loadThreads[n][j]
		}
	}
	if poolSize < 1 {
		poolSize = 1
	}
	now := cache.Iter(h)
	cur := &s.cursors[n]
	if cur.iter <= h {
		cur.iter, cur.off, cur.filled = h+1, 0, false
	}
	limit := h + s.cfg.Strategy.PrefetchDepth
	if limit > s.totalIters-1 {
		limit = s.totalIters - 1
	}
	for budget > 0 && cur.iter <= limit {
		if !cur.filled {
			epoch, it := cur.iter/s.iters, cur.iter%s.iters
			cur.batch = s.sched.NodeBatch(cur.batch[:0], epoch, it, n, s.gpus)
			cur.off = 0
			cur.filled = true
		}
		if cur.off >= len(cur.batch) {
			cur.iter++
			cur.off = 0
			cur.filled = false
			continue
		}
		// The node batch is GPU-major; walk it interleaved (sample k of
		// every GPU before sample k+1 of any) so a partial budget covers
		// all GPUs evenly instead of fully prefetching low ranks and
		// starving high ranks into permanent stragglers.
		batchSize := len(cur.batch) / s.gpus
		j, k := cur.off%s.gpus, cur.off/s.gpus
		id := cur.batch[j*batchSize+k]
		where := s.group.Locate(n, id)
		if where == tier.Local {
			cur.off++
			continue
		}
		size := s.cfg.Dataset.Size(id)
		cost := s.prefetchCost(where, size, poolSize, activePFS)
		if cost > budget {
			// Leave the cursor on this candidate; the next iteration's
			// budget resumes here.
			break
		}
		cur.off++
		if !s.group.Put(n, id, size, now) {
			// The policy refused: every remaining candidate is needed
			// even later, so it would refuse them too.
			return
		}
		budget -= cost
		s.runOut.PrefetchedBytes += size
	}
}

// prefetchCost is the thread-seconds cost of prefetching one sample of
// `size` bytes from `where`, with `pool` loading threads concurrently
// active on the node.
func (s *sim) prefetchCost(where tier.Kind, size int64, pool, activePFS int) float64 {
	curve := s.hier.CurveOf(where)
	if where == tier.PFS {
		curve = s.hier.PFSNodeCurve(activePFS)
	}
	perThread := curve.PerThread(pool)
	if perThread <= 0 {
		return math.Inf(1)
	}
	return curve.OpLatency + float64(size)/(perThread*1e6)
}
