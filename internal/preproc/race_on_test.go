//go:build race

package preproc

// raceEnabled reports whether the race detector is on: its
// instrumentation allocates (and sync.Pool deliberately drops puts
// under race), so allocation pins skip themselves.
const raceEnabled = true
