package pipeline

import (
	"testing"

	"repro/internal/loader"
	"repro/internal/metrics"
)

// TestCalibrationShape verifies the headline comparative shape of the
// paper's evaluation on a reduced-scale single-node run: end-to-end,
// Lobster > NoPFS > {DALI, PyTorch}, with hit ratios ordered
// Lobster > NoPFS > DALI > PyTorch (Section 5.5) and GPU utilization
// ordered the same way (Fig. 10).
func TestCalibrationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	specs := []loader.Spec{
		loader.PyTorch(8, 24),
		loader.DALI(24),
		loader.NoPFS(8, 24),
		loader.Lobster(),
	}
	runs := map[string]*metrics.Run{}
	var ordered []*metrics.Run
	for _, spec := range specs {
		res, err := Run(testConfig(t, spec, 4))
		if err != nil {
			t.Fatal(err)
		}
		runs[spec.Name] = res.Metrics
		ordered = append(ordered, res.Metrics)
	}
	t.Logf("\n%s", metrics.Table(ordered))

	if runs["lobster"].TotalTime >= runs["nopfs"].TotalTime {
		t.Errorf("Lobster (%.2fs) not faster than NoPFS (%.2fs)",
			runs["lobster"].TotalTime, runs["nopfs"].TotalTime)
	}
	if runs["nopfs"].TotalTime >= runs["pytorch"].TotalTime {
		t.Errorf("NoPFS (%.2fs) not faster than PyTorch (%.2fs)",
			runs["nopfs"].TotalTime, runs["pytorch"].TotalTime)
	}
	if runs["lobster"].HitRatio() <= runs["nopfs"].HitRatio() {
		t.Errorf("Lobster hit ratio %.3f not above NoPFS %.3f",
			runs["lobster"].HitRatio(), runs["nopfs"].HitRatio())
	}
	if runs["nopfs"].HitRatio() <= runs["pytorch"].HitRatio() {
		t.Errorf("NoPFS hit ratio %.3f not above PyTorch %.3f",
			runs["nopfs"].HitRatio(), runs["pytorch"].HitRatio())
	}
	if runs["lobster"].GPUUtilization() <= runs["pytorch"].GPUUtilization() {
		t.Errorf("Lobster utilization %.3f not above PyTorch %.3f",
			runs["lobster"].GPUUtilization(), runs["pytorch"].GPUUtilization())
	}
	if runs["lobster"].ImbalanceFraction() >= runs["pytorch"].ImbalanceFraction() {
		t.Errorf("Lobster imbalance %.3f not below PyTorch %.3f",
			runs["lobster"].ImbalanceFraction(), runs["pytorch"].ImbalanceFraction())
	}
}
