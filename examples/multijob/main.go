// Multijob: the paper notes Lobster's techniques generalize to "different
// DNN models sharing the same training data". Two training jobs with
// independent shuffles share one node-local cache; this example compares
// three ways of running that cache:
//
//   - plain LRU (no future knowledge),
//   - the Lobster policy driven by job A's plan only (job B invisible),
//   - the Lobster policy driven by the MERGED future-access plan of both
//     jobs (access.MergePlans).
//
// The merged oracle keeps samples that job A has finished with but job B
// still needs — the reuse-count rule evaluated over the union of futures.
package main

import (
	"fmt"
	"log"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/sampler"
)

func main() {
	const epochs = 6
	ds, err := dataset.Generate(dataset.Spec{
		Name: "shared", NumSamples: 16000, MeanSize: 105 << 10, SigmaLog: 0.45,
		MinSize: 4 << 10, Classes: 100, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	jobA, err := sampler.New(ds, sampler.Config{WorldSize: 4, BatchSize: 32, Seed: 100})
	if err != nil {
		log.Fatal(err)
	}
	jobB, err := sampler.New(ds, sampler.Config{WorldSize: 4, BatchSize: 32, Seed: 200})
	if err != nil {
		log.Fatal(err)
	}
	planA, err := access.Build(jobA, 0, 4, epochs, 0)
	if err != nil {
		log.Fatal(err)
	}
	planB, err := access.Build(jobB, 0, 4, epochs, 0)
	if err != nil {
		log.Fatal(err)
	}
	merged, err := access.MergePlans(planA, planB)
	if err != nil {
		log.Fatal(err)
	}

	replay := func(name string, policy cache.Policy) {
		c, err := cache.New(ds.TotalBytes()*30/100, policy)
		if err != nil {
			log.Fatal(err)
		}
		var batch []dataset.SampleID
		for epoch := 0; epoch < epochs; epoch++ {
			for it := 0; it < jobA.IterationsPerEpoch(); it++ {
				now := cache.Iter(epoch*jobA.IterationsPerEpoch() + it)
				for _, job := range []*sampler.Schedule{jobA, jobB} {
					batch = job.NodeBatch(batch[:0], epoch, it, 0, 4)
					for _, id := range batch {
						if !c.Get(id, now) {
							c.Put(id, ds.Size(id), now)
						}
					}
				}
				c.Maintain(now)
			}
		}
		st := c.Stats()
		fmt.Printf("%-24s hit ratio %5.1f%%  (evictions %d, refused inserts %d)\n",
			name, st.HitRatio()*100, st.Evictions, st.Rejected)
	}

	fmt.Printf("two jobs share one cache (30%% of the dataset), %d epochs:\n\n", epochs)
	replay("lru", cache.NewLRU())
	replay("lobster (job A plan)", cache.NewLobster(planA, cache.LobsterOptions{}))
	replay("lobster (merged plan)", cache.NewLobster(merged, cache.LobsterOptions{}))
	fmt.Println()
	fmt.Println("The merged future-access plan sees both jobs' reuse, so the")
	fmt.Println("reuse-count rule stops evicting samples the other job still needs.")
}
