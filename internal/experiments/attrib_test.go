package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/doctor"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// TestChaosAttribution pins the stall-attribution acceptance criterion:
// for each chaos scenario, the injected fault's cause must be the
// top-ranked stall cause in the doctor's view of the fault window.
// The doctor ranks a window by excess over the run's baseline rate
// (DiagnoseWindow), so constant background costs — decode queueing,
// cache serving — net out and the injected fault stands out:
//
//   - straggler: the flaky peer injects BOTH lag and errors
//     (ErrRate 0.5), so its signature is the peer-side pair — lag on
//     served fetches charges peer_fetch, failed fetches fall over to
//     recovery reads. Which of the two tops depends on how much the
//     build inflates baseline fetch legs (-race makes healthy fetches
//     as slow as lagged ones), so the test accepts either;
//   - brownout: every demand PFS read pays injected lag plus retry
//     backoff, dwarfing the warm-run pfs rate;
//   - nodeloss: during the dark phase every promised peer fetch fails
//     over to a full-cost recovery read — the one cause with no healthy
//     baseline at all. (Demand pfs reads also surge, but the cold-start
//     warm-up sets a high pfs baseline, so they rank below recovery on
//     excess.)
//
// The ranking blames data-path causes first (TopCauseInWindow):
// pipeline queue waits inflate second-hand under any data-path fault,
// and their wall-clock jitter would otherwise be a coin-flip
// competitor. Everything else is seeded (dataset, run, schedule), so
// the ranking is stable.
func TestChaosAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full chaos suite with instrumentation")
	}
	wantTop := map[string][]string{
		"straggler": {"peer_fetch", "recovery"},
		"brownout":  {"pfs"},
		"nodeloss":  {"recovery"},
	}
	p := ChaosParams{}.withDefaults()
	for _, sc := range chaosScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			want, ok := wantTop[sc.name]
			if !ok {
				t.Fatalf("scenario %q has no expected top cause; update this test", sc.name)
			}
			opts, err := chaosOptions(p)
			if err != nil {
				t.Fatal(err)
			}
			ranks := opts.Topology.Nodes * opts.Topology.GPUsPerNode
			totalIters := p.Samples / (ranks * opts.Model.BatchSize) * p.Epochs
			sched := chaos.NewSchedule(p.Seed)
			faultStart, faultEnd := sc.build(sched, totalIters)
			ctl, err := chaos.NewController(sched)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			ring := obs.NewTraceRing(1 << 16)
			ring.SetProcess(0, "chaos/"+sc.name)
			opts.Chaos = ctl
			opts.Obs = reg
			opts.Trace = ring

			if _, err := runtime.Run(opts); err != nil {
				t.Fatalf("run aborted: %v", err)
			}

			// Round-trip through the same wire formats the doctor scrapes.
			var mbuf, tbuf bytes.Buffer
			if err := reg.WritePrometheus(&mbuf); err != nil {
				t.Fatal(err)
			}
			if err := ring.WriteJSON(&tbuf); err != nil {
				t.Fatal(err)
			}
			metrics, err := doctor.ParseMetrics(&mbuf)
			if err != nil {
				t.Fatal(err)
			}
			trace, err := doctor.ParseTrace(&tbuf)
			if err != nil {
				t.Fatal(err)
			}

			// The top-cause pin needs the injected wall-clock costs to
			// dominate baseline legs; under the race detector they do not
			// (see raceEnabled), so only the structural checks run there.
			from, to := int64(faultStart), int64(faultEnd)
			if sc.name == "nodeloss" {
				// The scenario's window spans both the dark phase and the
				// post-crash refill; the crash itself repairs the shard map
				// atomically, so the refill reads as ordinary pfs demand.
				// The broken-promise signal lives in the dark steady state.
				to = int64(totalIters / 2)
			}
			if !raceEnabled {
				diag := trace.DiagnoseWindow(from, to)
				if len(diag) == 0 {
					t.Fatalf("no attribution spans in fault window [%d,%d)", from, to)
				}
				got := trace.TopCauseInWindow(from, to)
				accepted := false
				for _, w := range want {
					if got == w {
						accepted = true
					}
				}
				if !accepted {
					t.Errorf("top cause in fault window [%d,%d) = %s, want one of %v\nwindow diagnosis: %s",
						from, to, got, want, fmtDiag(diag))
				}
				if sc.wantFailovers {
					found := false
					for _, wc := range diag {
						if wc.Cause == "recovery" && wc.Seconds > 0 {
							found = true
						}
					}
					if !found {
						t.Errorf("fault window has no recovery-attributed stalls\nwindow diagnosis: %s", fmtDiag(diag))
					}
				}
			}

			// The full-run report must decompose every rank and rank the
			// causes; the gauge-backed signals must be present.
			rep := doctor.Analyze(metrics, trace)
			if len(rep.Ranks) != ranks {
				t.Errorf("report covers %d ranks, want %d", len(rep.Ranks), ranks)
			}
			if len(rep.TopCauses) == 0 {
				t.Error("report has no ranked causes")
			}
			if len(rep.EpochImbalance) == 0 {
				t.Error("report has no per-epoch imbalance (iters_per_epoch gauge missing?)")
			}
			if sc.wantFailovers && rep.Failovers == 0 {
				t.Error("scenario guarantees failovers but the report shows none")
			}
		})
	}
}

func fmtDiag(diag []doctor.WindowCause) string {
	var b bytes.Buffer
	for _, wc := range diag {
		fmt.Fprintf(&b, "%s=%.4fs(excess %+.5fs/iter) ", wc.Cause, wc.Seconds, wc.ExcessPerIter)
	}
	return b.String()
}
