package pipeline

import (
	"math"
	"testing"

	"repro/internal/loader"
)

// TestWindowedPlannerCloseToFull: running Lobster with the memory-bounded
// 3-epoch planning window must land within a few percent of the full-plan
// run — beyond the window the policies only need "far", not "when".
func TestWindowedPlannerCloseToFull(t *testing.T) {
	full, err := Run(testConfig(t, loader.Lobster(), 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, loader.Lobster(), 6)
	cfg.PlanWindowEpochs = 3
	windowed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullHit := full.Metrics.HitRatio()
	winHit := windowed.Metrics.HitRatio()
	if math.Abs(fullHit-winHit) > 0.05 {
		t.Fatalf("windowed hit ratio %.3f vs full %.3f: window changed behaviour", winHit, fullHit)
	}
	ratio := windowed.Metrics.TotalTime / full.Metrics.TotalTime
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("windowed time %.2f vs full %.2f (ratio %.3f)",
			windowed.Metrics.TotalTime, full.Metrics.TotalTime, ratio)
	}
}

func TestWindowedPlannerAllStrategies(t *testing.T) {
	for _, spec := range []loader.Spec{loader.NoPFS(8, 24), loader.Lobster()} {
		cfg := testConfig(t, spec, 4)
		cfg.PlanWindowEpochs = 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Metrics.HitRatio() <= 0 {
			t.Fatalf("%s: no hits under windowed planning", spec.Name)
		}
	}
}
