package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotPathPrefix marks a function whose whole static call tree must stay
// allocation-free:
//
//	//lint:hotpath <why this path must not allocate>
//
// in the function's doc comment. The benchmarks assert 0 allocs/op on
// these paths once; this analyzer asserts it on every commit, for every
// call chain the benchmarks don't happen to cover.
const hotPathPrefix = "//lint:hotpath"

// HotPath transitively forbids heap-allocating constructs in every
// function reachable (through the static call graph) from a
// //lint:hotpath-annotated function:
//
//   - make, new, and append (append can grow the backing array)
//   - slice and map composite literals
//   - string concatenation (+ and +=) and allocating string conversions
//     (string<->[]byte/[]rune, integer-to-string)
//   - interface boxing: passing a non-pointer-shaped concrete value as
//     an interface argument
//   - function literals (closure capture) and go statements
//   - any call into fmt (formats into fresh buffers and boxes operands)
//
// Each offending construct is its own finding, tagged with the call
// chain from the annotated root. Known exceptions — amortized slice
// growth, cold error paths — are annotated //lint:allow hotpath at the
// site. Blind spots: calls through interfaces and function values, and
// non-module callees other than fmt, are not checked.
var HotPath = &Analyzer{
	ID: idHotPath,
	Doc: "//lint:hotpath functions and everything they statically call must not " +
		"allocate: no make/new/append, string concat/conversion, interface boxing, " +
		"closures, go statements, or fmt calls",
	RunModule: runHotPath,
}

func runHotPath(m *Module) []Finding {
	type workItem struct {
		mf    *moduleFunc
		chain []string
	}
	var queue []workItem
	visited := map[*moduleFunc]bool{}
	for _, fn := range m.order {
		mf := m.funcs[fn]
		if hotPathAnnotated(mf.decl) && !visited[mf] {
			visited[mf] = true
			queue = append(queue, workItem{mf, []string{funcDisplay(fn)}})
		}
	}

	var out []Finding
	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		out = append(out, hotPathScan(item.mf, item.chain)...)
		for _, c := range item.mf.calls {
			cf := m.declOf(c.callee)
			if cf == nil || visited[cf] {
				continue
			}
			visited[cf] = true
			queue = append(queue, workItem{cf, append(append([]string{}, item.chain...), funcDisplay(cf.fn))})
		}
	}
	return out
}

func hotPathAnnotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == hotPathPrefix || strings.HasPrefix(c.Text, hotPathPrefix+" ") {
			return true
		}
	}
	return false
}

// hotPathScan reports every allocating construct in one function on a
// hot path. chain is the call path from the annotated root to mf.
func hotPathScan(mf *moduleFunc, chain []string) []Finding {
	p := mf.pkg
	at := chainString(chain)
	var out []Finding
	report := func(n ast.Node, format string, args ...any) {
		f := p.finding(idHotPath, n, format, args...)
		f.Message = "hot path " + at + ": " + f.Message
		out = append(out, f)
	}
	ast.Inspect(mf.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "function literal captures its environment (closure allocation); hoist it or pass state explicitly")
			return false
		case *ast.GoStmt:
			report(n, "go statement allocates a goroutine and escapes its arguments; hot paths must not spawn")
			return false
		case *ast.CallExpr:
			hotPathCallFindings(p, n, report)
		case *ast.CompositeLit:
			t := p.Info.TypeOf(n)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(n, "slice literal allocates its backing array; reuse a buffer or predeclare it")
			case *types.Map:
				report(n, "map literal allocates; hoist the map out of the hot path")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(p, n) && !isConstExpr(p, n) {
				report(n, "string concatenation allocates the result; format outside the hot path or use a reused buffer")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(p, n.Lhs[0]) {
				report(n, "string += allocates a new string each time; build outside the hot path")
			}
		}
		return true
	})
	return out
}

// hotPathCallFindings classifies one call expression on a hot path:
// allocating builtins, allocating conversions, fmt calls, and interface
// boxing of arguments.
func hotPathCallFindings(p *Package, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	switch {
	case isBuiltin(p.Info, call, "make"):
		report(call, "make allocates; preallocate outside the hot path and reuse")
		return
	case isBuiltin(p.Info, call, "new"):
		report(call, "new allocates; keep hot-path state in preallocated structs")
		return
	case isBuiltin(p.Info, call, "append"):
		report(call, "append may grow the backing array (heap allocation); preallocate capacity or reuse a buffer")
		return
	}
	if tv, ok := p.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && conversionAllocates(tv.Type, p.Info.TypeOf(call.Args[0])) {
			report(call, "conversion %s allocates a copy", types.ExprString(call))
		}
		return
	}
	if fn := calleeFunc(p.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call, "fmt.%s formats into fresh buffers and boxes its operands; hot paths must not call fmt", fn.Name())
		return
	}
	// Interface boxing of arguments: a concrete, non-pointer-shaped
	// value passed as an interface parameter is copied to the heap.
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // f(xs...) passes the slice through, no per-arg boxing
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			sl, ok := last.Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || pointerShaped(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue // nil fills the interface word directly
		}
		if tv, ok := p.Info.Types[arg]; ok && tv.Value != nil {
			// Constants convert at compile time; small ints and constant
			// strings may still allocate an interface word, but flagging
			// every literal argument would drown the signal.
			continue
		}
		report(arg, "passing %s as interface %s boxes it onto the heap; take a concrete type or a pointer",
			typeString(at), typeString(pt))
	}
}

// pointerShaped reports whether values of t fit an interface word
// without allocating: pointers, channels, maps, funcs, unsafe pointers,
// and values that are already interfaces.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// conversionAllocates reports whether converting from -> to copies data
// onto the heap: string <-> []byte/[]rune and integer -> string.
func conversionAllocates(to, from types.Type) bool {
	if from == nil {
		return false
	}
	toB, toBasic := to.Underlying().(*types.Basic)
	fromB, fromBasic := from.Underlying().(*types.Basic)
	if toBasic && toB.Info()&types.IsString != 0 {
		if fromBasic && fromB.Info()&types.IsInteger != 0 {
			return true // string(rune) builds a fresh string
		}
		return byteOrRuneSlice(from)
	}
	if fromBasic && fromB.Info()&types.IsString != 0 {
		return byteOrRuneSlice(to)
	}
	return false
}

func byteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isStringExpr(p *Package, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression folds to a compile-time
// constant (constant string concatenation does not allocate at run
// time).
func isConstExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
