package kvstore

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestClientInstruments checks the pipelined client records per-op
// latency, in-flight, and TooLarge refusals into an attached registry.
func TestClientInstruments(t *testing.T) {
	s := testServer(t, 10)
	c := testClientV2(t, s)
	reg := obs.NewRegistry()
	ins := NewClientInstruments(reg, "0")
	c.SetInstruments(ins)

	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("big", make([]byte, 100)); err == nil {
		t.Fatal("oversized Put must fail")
	}
	_ = c.MultiPut([]string{"a", "big2"}, [][]byte{[]byte("x"), make([]byte, 100)})
	if _, err := c.MultiGet([]string{"a", "k"}); err != nil {
		t.Fatal(err)
	}

	if got := ins.PutSeconds.Count(); got != 2 {
		t.Fatalf("put observations = %d, want 2", got)
	}
	if got := ins.GetSeconds.Count(); got != 1 {
		t.Fatalf("get observations = %d, want 1", got)
	}
	if got := ins.MultiGetSeconds.Count(); got != 1 {
		t.Fatalf("multiget observations = %d, want 1", got)
	}
	if got := ins.MultiPutSeconds.Count(); got != 1 {
		t.Fatalf("multiput observations = %d, want 1", got)
	}
	// One refusal from Put, one from the MultiPut batch.
	if got := ins.TooLarge.Value(); got != 2 {
		t.Fatalf("toolarge = %d, want 2", got)
	}
	if got := ins.InFlight.Value(); got != 0 {
		t.Fatalf("in-flight after quiesce = %d, want 0", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lobster_kvstore_op_seconds_count{op="put",shard="0"} 2`,
		`lobster_kvstore_client_toolarge_total{shard="0"} 2`,
		`lobster_kvstore_inflight_ops{shard="0"} 0`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestClusterInstrument checks Cluster.Instrument attaches per-shard
// instruments to every v2 shard client.
func TestClusterInstrument(t *testing.T) {
	s0 := testServer(t, 1<<20)
	s1 := testServer(t, 1<<20)
	cl, err := NewCluster([]string{s0.Addr(), s1.Addr()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	reg := obs.NewRegistry()
	cl.Instrument(reg)

	for i := 0; i < 16; i++ {
		if err := cl.Put(string(rune('a'+i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `op="put",shard="0"`) ||
		!strings.Contains(sb.String(), `op="put",shard="1"`) {
		t.Fatalf("scrape missing per-shard series:\n%s", sb.String())
	}
}

// TestInstrumentServer checks the shard server's counters surface
// through a registry at scrape time.
func TestInstrumentServer(t *testing.T) {
	s := testServer(t, 1<<20)
	reg := obs.NewRegistry()
	InstrumentServer(reg, s)
	c := testClientV2(t, s)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("missing"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lobster_kvstore_shard_items 1",
		"lobster_kvstore_shard_hits_total 1",
		"lobster_kvstore_shard_misses_total 1",
		"lobster_kvstore_shard_toolarge_total 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("scrape missing %q:\n%s", want, sb.String())
		}
	}
}
