// Distributed: the paper's headline scenario — eight nodes (64 GPUs)
// training ResNet50 on ImageNet-22K, whose 1.3 TB dwarf the 40 GB node
// caches. All four loading systems run on the identical deterministic
// schedule; the distributed cache, PFS contention, prefetching and thread
// management determine who keeps the GPUs busy.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	fmt.Println("ResNet50 on synthetic ImageNet-22K, 8 nodes x 8 GPUs:")
	fmt.Println()
	var runs []*metrics.Run
	for _, strategy := range []string{"pytorch", "dali", "nopfs", "lobster"} {
		cfg, err := core.NewConfig(core.Workload{
			Dataset:  "imagenet-22k",
			Scale:    "tiny",
			Model:    "resnet50",
			Nodes:    8,
			Epochs:   4,
			Strategy: strategy,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		runs = append(runs, m)
		fmt.Printf("%-10s remote hits %6d, PFS fetches %7d, prefetched %7.1f MB\n",
			strategy, m.RemoteHits, m.PFSFetches, float64(m.PrefetchedBytes)/1e6)
	}
	fmt.Println()
	fmt.Print(metrics.Table(runs))
	fmt.Println()
	fmt.Println("Compare with the paper's Fig. 7(c): Lobster 2.0x vs PyTorch,")
	fmt.Println("1.4x vs DALI, 1.2x vs NoPFS on the real testbed.")
}
