package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// Example runs the smallest possible simulated comparison: Lobster vs the
// PyTorch DataLoader baseline on one node.
func Example() {
	var times = map[string]float64{}
	for _, strategy := range []string{"pytorch", "lobster"} {
		cfg, err := core.NewConfig(core.Workload{
			Scale:    "tiny",
			Epochs:   4,
			Strategy: strategy,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		times[strategy] = res.Metrics.TotalTime
	}
	fmt.Printf("lobster faster: %v\n", times["lobster"] < times["pytorch"])
	// Output:
	// lobster faster: true
}

// ExampleBuildPlan shows the offline planner producing a serializable
// thread plan (Section 4.5 of the paper).
func ExampleBuildPlan() {
	cfg, err := core.NewConfig(core.Workload{Scale: "tiny", Epochs: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := core.BuildPlan(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %d iterations for %d node(s), %d GPUs each\n",
		len(plan.File.Iterations), plan.File.Nodes, plan.File.GPUsPerNode)
	// Output:
	// planned 4 iterations for 1 node(s), 8 GPUs each
}

// ExampleStrategyByName resolves the paper's comparison systems.
func ExampleStrategyByName() {
	for _, name := range core.Strategies() {
		spec, err := core.StrategyByName(name, 8, 24)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(spec.Name)
	}
	// Output:
	// pytorch
	// dali
	// nopfs
	// lobster
	// lobster_th
	// lobster_evict
}
