package lint

import "testing"

func TestGoroutine(t *testing.T) {
	runFixtures(t, Goroutine, []fixtureTest{
		{
			name: "unbounded literal flagged",
			pkg:  "repro/internal/pipeline",
			src: `package pipeline
func Leak(work chan int) {
	go func() {
		for {
			work <- 1
		}
	}()
}
`,
			want: 1,
			grep: "no termination signal",
		},
		{
			name: "waitgroup done passes",
			pkg:  "repro/internal/pipeline",
			src: `package pipeline
import "sync"
func Tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
		}
	}()
}
`,
			want: 0,
		},
		{
			name: "captured context passes",
			pkg:  "repro/internal/preproc",
			src: `package preproc
import "context"
func Watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
`,
			want: 0,
		},
		{
			name: "context parameter passes",
			pkg:  "repro/internal/preproc",
			src: `package preproc
import "context"
func Spawn(ctx context.Context) {
	go func(c context.Context) {
	}(ctx)
}
`,
			want: 0,
		},
		{
			name: "struct{} done channel passes",
			pkg:  "repro/internal/threadmgr",
			src: `package threadmgr
func Worker(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}
`,
			want: 0,
		},
		{
			name: "range over channel passes",
			pkg:  "repro/internal/threadmgr",
			src: `package threadmgr
func Consume(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}
`,
			want: 0,
		},
		{
			name: "data channel receive alone is not a signal",
			pkg:  "repro/internal/pipeline",
			src: `package pipeline
func Pull(work chan int) {
	go func() {
		for {
			_ = <-work
		}
	}()
}
`,
			want: 1,
		},
		{
			name: "named function launch not flagged",
			pkg:  "repro/internal/pipeline",
			src: `package pipeline
type pool struct{}
func (p *pool) worker() {}
func (p *pool) start() {
	go p.worker()
}
`,
			want: 0,
		},
		{
			name: "allow directive suppresses",
			pkg:  "repro/internal/pipeline",
			src: `package pipeline
func Fire(work chan int) {
	//lint:allow goroutine fire-and-forget by design; process exit reaps it
	go func() {
		work <- 1
	}()
}
`,
			want: 0,
		},
	})
}
