package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceRing is a bounded, lock-striped span recorder. Writers claim a
// slot with one atomic add and fill it under that slot's own mutex, so
// recording never allocates, never blocks on other writers (different
// slots), and wraps silently when full — the ring always holds the most
// recent spans, which is what a live "why is iteration time spiking
// right now" scrape wants. WriteJSON renders the contents as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing.
//
// Timestamps are monotonic nanoseconds since the ring's creation
// (time.Time.Sub uses the monotonic clock), so spans from different
// goroutines line up even across wall-clock adjustments.
//
// All methods are safe on a nil *TraceRing and do nothing, so
// un-instrumented code paths need no conditionals.
type TraceRing struct {
	slots []spanSlot
	mask  uint64
	head  atomic.Uint64
	epoch time.Time

	tidSeq  atomic.Int64
	nameMu  sync.Mutex
	threads map[int64]string

	// Process identity, stamped on every exported event so traces from
	// different nodes can be merged into one Chrome trace file without
	// their tracks colliding (pid 0, name "lobster" until SetProcess).
	procPid  int
	procName string
}

// spanSlot is one recorded event. Strings stored here are the caller's
// (by convention compile-time constants), so filling a slot allocates
// nothing.
type spanSlot struct {
	mu   sync.Mutex
	used bool
	ph   byte // 'X' complete span, 'i' instant
	tid  int64
	name string
	cat  string
	ts   int64 // ns since epoch
	dur  int64 // ns ('X' only)
	a1n  string
	a1   int64
	a2n  string
	a2   int64
}

// Event is one exported ring entry (tests and programmatic consumers;
// WriteJSON is the interchange path).
type Event struct {
	Ph       byte
	Name     string
	Cat      string
	TID      int64
	TsNs     int64
	DurNs    int64
	Arg1Name string
	Arg1     int64
	Arg2Name string
	Arg2     int64
}

// NewTraceRing creates a ring holding the most recent `capacity` events
// (rounded up to a power of two, minimum 64).
func NewTraceRing(capacity int) *TraceRing {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &TraceRing{
		slots:   make([]spanSlot, n),
		mask:    uint64(n - 1),
		epoch:   time.Now(),
		threads: make(map[int64]string),
	}
}

// SetProcess names the process this ring records for. WriteJSON stamps
// the pid on every event and emits matching process_name metadata, so
// /trace.json streams scraped from N nodes (each with a distinct pid,
// conventionally the rank of its first GPU or the node index) merge
// collide-free. Setup-time code; not safe to race with WriteJSON.
func (t *TraceRing) SetProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.procPid, t.procName = pid, name
}

// process returns the exported (pid, name) identity.
func (t *TraceRing) process() (int, string) {
	if t.procName == "" {
		return t.procPid, "lobster"
	}
	return t.procPid, t.procName
}

// NewThread allocates a trace thread ID and names its track. Not a hot
// path (one call per worker goroutine spawned); the name may be built
// with fmt.
func (t *TraceRing) NewThread(name string) int64 {
	if t == nil {
		return 0
	}
	tid := t.tidSeq.Add(1)
	t.nameMu.Lock()
	t.threads[tid] = name
	t.nameMu.Unlock()
	return tid
}

// ThreadName returns the track name registered for tid ("" if none).
func (t *TraceRing) ThreadName(tid int64) string {
	if t == nil {
		return ""
	}
	t.nameMu.Lock()
	defer t.nameMu.Unlock()
	return t.threads[tid]
}

// Span records a complete ('X') span that started at start and lasted
// dur, on track tid. Allocation-free: name and cat should be constants.
//
//lint:hotpath span recording runs inside the training iteration; it must not allocate
func (t *TraceRing) Span(name, cat string, tid int64, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.record('X', name, cat, tid, start.Sub(t.epoch).Nanoseconds(), dur.Nanoseconds(), "", 0, "", 0)
}

// SpanArgs is Span with up to two integer arguments attached (pass ""
// to skip an argument slot).
//
//lint:hotpath span recording runs inside the training iteration; it must not allocate
func (t *TraceRing) SpanArgs(name, cat string, tid int64, start time.Time, dur time.Duration,
	a1n string, a1 int64, a2n string, a2 int64) {
	if t == nil {
		return
	}
	t.record('X', name, cat, tid, start.Sub(t.epoch).Nanoseconds(), dur.Nanoseconds(), a1n, a1, a2n, a2)
}

// Instant records a zero-duration instant event ('i') at now — e.g. a
// thread-controller resize decision.
//
//lint:hotpath span recording runs inside the training iteration; it must not allocate
func (t *TraceRing) Instant(name, cat string, tid int64, a1n string, a1 int64, a2n string, a2 int64) {
	if t == nil {
		return
	}
	t.record('i', name, cat, tid, time.Since(t.epoch).Nanoseconds(), 0, a1n, a1, a2n, a2)
}

func (t *TraceRing) record(ph byte, name, cat string, tid int64, ts, dur int64,
	a1n string, a1 int64, a2n string, a2 int64) {
	i := t.head.Add(1) - 1
	s := &t.slots[i&t.mask]
	s.mu.Lock()
	s.used, s.ph, s.name, s.cat, s.tid = true, ph, name, cat, tid
	s.ts, s.dur = ts, dur
	s.a1n, s.a1, s.a2n, s.a2 = a1n, a1, a2n, a2
	s.mu.Unlock()
}

// Len returns the number of events currently held (capped at capacity).
func (t *TraceRing) Len() int {
	if t == nil {
		return 0
	}
	n := t.head.Load()
	if n > uint64(len(t.slots)) {
		return len(t.slots)
	}
	return int(n)
}

// Events snapshots the ring's contents, oldest first.
func (t *TraceRing) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		s.mu.Lock()
		if s.used {
			out = append(out, Event{
				Ph: s.ph, Name: s.name, Cat: s.cat, TID: s.tid,
				TsNs: s.ts, DurNs: s.dur,
				Arg1Name: s.a1n, Arg1: s.a1, Arg2Name: s.a2n, Arg2: s.a2,
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TsNs != out[j].TsNs {
			return out[i].TsNs < out[j].TsNs
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// traceEvent is the Chrome trace-event JSON shape (ts/dur in
// microseconds).
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON dumps the ring as a Chrome trace-event file: thread-name
// metadata first, then the events oldest-first. Load the output in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Scrape-time code:
// allocates freely.
func (t *TraceRing) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil trace ring")
	}
	pid, pname := t.process()
	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": pname},
	}}
	t.nameMu.Lock()
	tids := make([]int64, 0, len(t.threads))
	for tid := range t.threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": t.threads[tid]},
		})
	}
	t.nameMu.Unlock()
	for _, e := range t.Events() {
		te := traceEvent{
			Name: e.Name, Cat: e.Cat, Pid: pid, Tid: e.TID,
			Ts: float64(e.TsNs) / 1e3,
		}
		switch e.Ph {
		case 'i':
			te.Ph, te.S = "i", "t"
		default:
			te.Ph, te.Dur = "X", float64(e.DurNs)/1e3
		}
		if e.Arg1Name != "" || e.Arg2Name != "" {
			te.Args = make(map[string]any, 2)
			if e.Arg1Name != "" {
				te.Args[e.Arg1Name] = e.Arg1
			}
			if e.Arg2Name != "" {
				te.Args[e.Arg2Name] = e.Arg2
			}
		}
		events = append(events, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"})
}
