package lint

import "testing"

func TestErrcheck(t *testing.T) {
	runFixtures(t, Errcheck, []fixtureTest{
		{
			name: "dropped error flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "os"
func cleanup(path string) {
	os.Remove(path)
}
`,
			want: 1,
			grep: "os.Remove returns an error that is dropped",
		},
		{
			name: "dropped method error flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "os"
func drop(f *os.File) {
	f.Close()
}
`,
			want: 1,
			grep: "Close returns an error that is dropped",
		},
		{
			name: "dropped error in go statement flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "os"
func bg(path string) {
	go os.Remove(path)
}
`,
			want: 1,
		},
		{
			name: "checked error passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "os"
func cleanup(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}
`,
			want: 0,
		},
		{
			name: "explicit blank assignment passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "os"
func cleanup(path string) {
	_ = os.Remove(path) // best effort
}
`,
			want: 0,
		},
		{
			name: "deferred close passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "os"
func read(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}
`,
			want: 0,
		},
		{
			name: "fmt.Println passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "fmt"
func report(n int) {
	fmt.Println("loaded", n)
}
`,
			want: 0,
		},
		{
			name: "fprintf to stdout passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import (
	"fmt"
	"os"
)
func report(n int) {
	fmt.Fprintf(os.Stdout, "loaded %d\n", n)
}
`,
			want: 0,
		},
		{
			name: "fprintf to arbitrary writer flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import (
	"fmt"
	"io"
)
func report(w io.Writer, n int) {
	fmt.Fprintf(w, "loaded %d\n", n)
}
`,
			want: 1,
		},
		{
			name: "strings.Builder writes pass",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "strings"
func render() string {
	var b strings.Builder
	b.WriteString("hello")
	return b.String()
}
`,
			want: 0,
		},
		{
			name: "allow directive suppresses",
			pkg:  "repro/internal/runtime",
			src: `package runtime
import "os"
func cleanup(path string) {
	os.Remove(path) //lint:allow errcheck scratch file, already gone on retry
}
`,
			want: 0,
		},
	})
}
