package distcache

import (
	"testing"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/perfmodel"
	"repro/internal/sampler"
	"repro/internal/tier"
)

func newGroup(t *testing.T, nodes int, capacity int64) *Group {
	t.Helper()
	caches := make([]*cache.Cache, nodes)
	for i := range caches {
		c, err := cache.New(capacity, cache.NewLRU())
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = c
	}
	g, err := NewGroup(caches, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGroupValidation(t *testing.T) {
	if _, err := NewGroup(nil, 10); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewGroup([]*cache.Cache{nil}, 10); err == nil {
		t.Error("nil cache accepted")
	}
	c, _ := cache.New(10, cache.NewLRU())
	if _, err := NewGroup([]*cache.Cache{c}, 0); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestLocateThreeTiers(t *testing.T) {
	g := newGroup(t, 2, 100)
	if got := g.Locate(0, 1); got != tier.PFS {
		t.Fatalf("uncached sample located at %v, want pfs", got)
	}
	g.Put(1, 1, 10, 0)
	if got := g.Locate(0, 1); got != tier.Remote {
		t.Fatalf("peer-cached sample located at %v, want remote", got)
	}
	g.Put(0, 1, 10, 0)
	if got := g.Locate(0, 1); got != tier.Local {
		t.Fatalf("locally cached sample located at %v, want local", got)
	}
}

func TestGetRecordsStatsOnOwnNode(t *testing.T) {
	g := newGroup(t, 2, 100)
	g.Put(1, 1, 10, 0)
	if got := g.Get(0, 1, 1); got != tier.Remote {
		t.Fatalf("Get = %v, want remote", got)
	}
	// Node 0 counted a miss, node 1 must be untouched.
	if s := g.Cache(0).Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("node 0 stats = %+v", s)
	}
	if s := g.Cache(1).Stats(); s.Misses != 0 || s.Hits != 0 {
		t.Fatalf("node 1 stats = %+v (remote lookup must not count)", s)
	}
}

func TestReplicaCounting(t *testing.T) {
	g := newGroup(t, 3, 100)
	g.Put(0, 7, 10, 0)
	g.Put(1, 7, 10, 0)
	if got := g.ReplicaCount(7); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
	g.Remove(0, 7)
	if got := g.ReplicaCount(7); got != 1 {
		t.Fatalf("after remove, replicas = %d, want 1", got)
	}
	if g.Remove(0, 7) {
		t.Fatal("double remove succeeded")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePutDoesNotDoubleCount(t *testing.T) {
	g := newGroup(t, 1, 100)
	g.Put(0, 3, 10, 0)
	g.Put(0, 3, 10, 1)
	if got := g.ReplicaCount(3); got != 1 {
		t.Fatalf("replicas = %d after duplicate put, want 1", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionUpdatesReplicas(t *testing.T) {
	g := newGroup(t, 2, 20)
	g.Put(0, 1, 10, 0)
	g.Put(0, 2, 10, 1)
	g.Put(0, 3, 10, 2) // evicts 1 (LRU)
	if got := g.ReplicaCount(1); got != 0 {
		t.Fatalf("evicted sample still counted: %d", got)
	}
	if got := g.Locate(1, 1); got != tier.PFS {
		t.Fatalf("evicted sample located at %v, want pfs", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectedPutNotCounted(t *testing.T) {
	caches := []*cache.Cache{}
	c, _ := cache.New(20, cache.NewNeverEvict())
	caches = append(caches, c)
	g, _ := NewGroup(caches, 100)
	g.Put(0, 1, 10, 0)
	g.Put(0, 2, 10, 0)
	if ok := g.Put(0, 3, 10, 0); ok {
		t.Fatal("never-evict admitted over capacity")
	}
	if got := g.ReplicaCount(3); got != 0 {
		t.Fatalf("rejected sample counted: %d", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIsLastCopy(t *testing.T) {
	g := newGroup(t, 2, 100)
	isLast0 := g.IsLastCopy(0)
	g.Put(0, 5, 10, 0)
	if !isLast0(5) {
		t.Fatal("sole copy on node 0 not reported as last")
	}
	g.Put(1, 5, 10, 0)
	if isLast0(5) {
		t.Fatal("replicated sample reported as last copy")
	}
	g.Remove(0, 5)
	if isLast0(5) {
		t.Fatal("sample not on node 0 reported as its last copy")
	}
}

func TestMaintainWithLobsterPolicyUpdatesReplicas(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "g", NumSamples: 200, MeanSize: 10, Classes: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(ds, sampler.Config{WorldSize: 2, BatchSize: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 2
	plans := make([]*access.Plan, 2)
	caches := make([]*cache.Cache, 2)
	var g *Group
	for n := 0; n < 2; n++ {
		p, err := access.Build(s, n, 1, epochs, 0)
		if err != nil {
			t.Fatal(err)
		}
		plans[n] = p
	}
	for n := 0; n < 2; n++ {
		n := n
		c, err := cache.New(ds.TotalBytes(), cache.NewLobster(plans[n], cache.LobsterOptions{
			IsLastCopy: func(id dataset.SampleID) bool { return g.IsLastCopy(n)(id) },
		}))
		if err != nil {
			t.Fatal(err)
		}
		caches[n] = c
	}
	g, err = NewGroup(caches, ds.Len())
	if err != nil {
		t.Fatal(err)
	}
	// Replay both nodes' streams; Maintain after each iteration.
	var batch []dataset.SampleID
	for epoch := 0; epoch < epochs; epoch++ {
		for it := 0; it < s.IterationsPerEpoch(); it++ {
			now := cache.Iter(epoch*s.IterationsPerEpoch() + it)
			for n := 0; n < 2; n++ {
				batch = s.NodeBatch(batch[:0], epoch, it, n, 1)
				for _, id := range batch {
					if g.Get(n, id, now) != tier.Local {
						g.Put(n, id, ds.Size(id), now)
					}
				}
				g.Maintain(n, now)
			}
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	agg := g.AggregateStats()
	if agg.Hits+agg.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}

// TestGetBatchMatchesLoop checks GetBatch is step-for-step equivalent to
// the per-sample Get/Put loop it replaces: same placement, same cache
// stats, same replica state — including when mid-batch inserts evict
// samples consulted later in the same batch (a tight 2-sample cache
// forces that interleaving to matter).
func TestGetBatchMatchesLoop(t *testing.T) {
	sizeOf := func(id dataset.SampleID) int64 { return 10 + int64(id%3) }
	batches := [][]dataset.SampleID{
		{1, 2, 3, 1, 2}, // reuse within the batch
		{4, 5, 6, 7, 4}, // evictions mid-batch (cap fits ~2)
		{1, 6, 2, 7, 3}, // mix of evicted and resident
	}
	run := func(batched bool) (*Group, []perfmodel.BatchPlacement) {
		g := newGroup(t, 2, 25)
		// Seed node 1 so node 0 sees remote hits.
		for _, id := range []dataset.SampleID{2, 5} {
			if !g.Put(1, id, sizeOf(id), 0) {
				t.Fatal("seed insert refused")
			}
		}
		var pls []perfmodel.BatchPlacement
		for h, ids := range batches {
			now := cache.Iter(h + 1)
			if batched {
				pls = append(pls, g.GetBatch(0, ids, sizeOf, now))
				continue
			}
			var pl perfmodel.BatchPlacement
			for _, id := range ids {
				size := sizeOf(id)
				switch g.Get(0, id, now) {
				case tier.Local:
					pl.LocalBytes += size
					pl.LocalOps++
				case tier.Remote:
					pl.RemoteBytes += size
					pl.RemoteOps++
					g.Put(0, id, size, now)
				default:
					pl.PFSBytes += size
					pl.PFSOps++
					g.Put(0, id, size, now)
				}
			}
			pls = append(pls, pl)
		}
		return g, pls
	}
	gLoop, plLoop := run(false)
	gBatch, plBatch := run(true)
	for i := range plLoop {
		if plLoop[i] != plBatch[i] {
			t.Errorf("batch %d: loop %+v != batched %+v", i, plLoop[i], plBatch[i])
		}
	}
	if plBatch[0].RemoteOps == 0 {
		t.Error("fixture never exercised the remote tier")
	}
	sLoop, sBatch := gLoop.AggregateStats(), gBatch.AggregateStats()
	if sLoop != sBatch {
		t.Errorf("stats diverge: loop %+v, batched %+v", sLoop, sBatch)
	}
	for id := 0; id < 10; id++ {
		if gLoop.ReplicaCount(dataset.SampleID(id)) != gBatch.ReplicaCount(dataset.SampleID(id)) {
			t.Errorf("replica count diverges for sample %d", id)
		}
	}
	if err := gBatch.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCrashWipesNodeAndRepairsMap(t *testing.T) {
	g := newGroup(t, 3, 1000)
	// Samples 0-9 on node 1 (5-9 also replicated on node 2).
	for id := dataset.SampleID(0); id < 10; id++ {
		if !g.Put(1, id, 10, 0) {
			t.Fatal("seed insert refused")
		}
	}
	for id := dataset.SampleID(5); id < 10; id++ {
		if !g.Put(2, id, 10, 0) {
			t.Fatal("seed insert refused")
		}
	}

	if lost := g.Crash(1); lost != 10 {
		t.Fatalf("Crash(1) lost %d samples, want 10", lost)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("shard map inconsistent after crash: %v", err)
	}
	// Sole copies are gone (back to PFS); replicated ones survive on
	// node 2 — no peer is promised a copy the dead node no longer has.
	for id := dataset.SampleID(0); id < 5; id++ {
		if got := g.Locate(0, id); got != tier.PFS {
			t.Fatalf("lost sample %d located at %v, want pfs", id, got)
		}
	}
	for id := dataset.SampleID(5); id < 10; id++ {
		if got := g.Locate(0, id); got != tier.Remote {
			t.Fatalf("replicated sample %d located at %v, want remote", id, got)
		}
	}
	// Idempotent: crashing an empty node loses nothing.
	if lost := g.Crash(1); lost != 0 {
		t.Fatalf("second Crash(1) lost %d samples, want 0", lost)
	}
}

// TestGetBatchAfterPeerLoss is the dead-peer error path of the batch
// resolver: samples the group believed were remote must re-resolve to
// the PFS after the holding node crashes, and the crashed node's own
// lookups keep working (its cache refills from scratch).
func TestGetBatchAfterPeerLoss(t *testing.T) {
	sizeOf := func(dataset.SampleID) int64 { return 10 }
	g := newGroup(t, 2, 1000)
	ids := []dataset.SampleID{1, 2, 3, 4}
	for _, id := range ids {
		if !g.Put(1, id, 10, 0) {
			t.Fatal("seed insert refused")
		}
	}

	pl := g.GetBatch(0, ids, sizeOf, 1)
	if pl.RemoteOps != len(ids) {
		t.Fatalf("before crash: %+v, want all remote", pl)
	}

	g.Crash(1)
	// Node 0 cached the batch during the remote fetches above; wipe it
	// too so the placement question starts cold.
	g.Crash(0)
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	pl = g.GetBatch(0, ids, sizeOf, 2)
	if pl.PFSOps != len(ids) || pl.RemoteOps != 0 {
		t.Fatalf("after crash: %+v, want all pfs", pl)
	}

	// The crashed node refills through its own lookups.
	pl = g.GetBatch(1, ids, sizeOf, 3)
	if pl.PFSOps != 0 {
		t.Fatalf("crashed node should see peer copies after refill: %+v", pl)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
