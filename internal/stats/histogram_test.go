package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram([]float64{1}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-increasing edges accepted")
	}
	if _, err := NewLinearHistogram(5, 5, 3); err == nil {
		t.Error("hi == lo accepted")
	}
	if _, err := NewLinearHistogram(0, 1, 0); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := NewLogHistogram(0, 10, 3); err == nil {
		t.Error("log histogram with lo=0 accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewLinearHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, 10, -1} {
		h.Add(v)
	}
	wantCounts := []int64{2, 1, 1, 0, 1} // [0,2):{0,1.9} [2,4):{2} [4,6):{5} [8,10):{9.99}
	for i, want := range wantCounts {
		if _, _, c := h.Bin(i); c != want {
			t.Errorf("bin %d count = %d, want %d", i, c, want)
		}
	}
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1 (value 10)", h.Overflow())
	}
	if h.Underflow() != 1 {
		t.Errorf("underflow = %d, want 1 (value -1)", h.Underflow())
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
}

func TestHistogramCountConservation(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		h, err := NewLinearHistogram(-10, 10, 7)
		if err != nil {
			return false
		}
		r := NewRNG(seed)
		for i := 0; i < n; i++ {
			h.Add(r.NormFloat64() * 8)
		}
		var sum int64 = h.Underflow() + h.Overflow()
		for i := 0; i < h.Bins(); i++ {
			_, _, c := h.Bin(i)
			sum += c
		}
		return sum == h.Total() && h.Total() == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogramEdges(t *testing.T) {
	h, err := NewLogHistogram(1, 1024, 10)
	if err != nil {
		t.Fatal(err)
	}
	lo0, _, _ := h.Bin(0)
	_, hiLast, _ := h.Bin(9)
	if lo0 != 1 {
		t.Errorf("first edge = %g, want 1", lo0)
	}
	if math.Abs(hiLast-1024) > 1e-9 {
		t.Errorf("last edge = %g, want 1024", hiLast)
	}
	// Geometric growth: each bin should be ~2x the previous (1024 = 2^10).
	for i := 0; i < 10; i++ {
		lo, hi, _ := h.Bin(i)
		if math.Abs(hi/lo-2) > 1e-6 {
			t.Errorf("bin %d ratio = %g, want 2", i, hi/lo)
		}
	}
}

func TestFractionAbove(t *testing.T) {
	h, _ := NewLinearHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.FractionAbove(0); math.Abs(got-1) > 0.02 {
		t.Errorf("FractionAbove(0) = %g, want ~1", got)
	}
	if got := h.FractionAbove(50); math.Abs(got-0.5) > 0.02 {
		t.Errorf("FractionAbove(50) = %g, want ~0.5", got)
	}
	if got := h.FractionAbove(100); got != 0 {
		t.Errorf("FractionAbove(100) = %g, want 0", got)
	}
}

func TestFractionAboveWithOverflow(t *testing.T) {
	h, _ := NewLinearHistogram(0, 10, 2)
	h.Add(5)
	h.Add(100) // overflow
	if got := h.FractionAbove(10); got != 0.5 {
		t.Errorf("FractionAbove(10) = %g, want 0.5", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewLinearHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Errorf("largest bin not drawn at full width:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("Render produced %d lines, want 2:\n%s", len(lines), out)
	}
}
