// Package lint implements lobster-lint, the project-specific static
// analysis suite. Lobster's planner assumes the sample access order and
// tier timings it simulates are exactly what the runtime replays;
// nondeterminism leaking into the simulation/planning packages, or
// goroutine/lock bugs in the concurrent runtime, silently invalidate the
// load-balance results. These analyzers turn those conventions into
// machine-checked gates:
//
//	determinism  no wall clocks, global RNG, or map-order-dependent
//	             output in sim/plan packages
//	goroutine    every goroutine literal has a termination signal
//	             (test files included)
//	mutex        Lock/Unlock pairing, no lock copies, no blocking
//	             channel ops under a lock (test files included)
//	errcheck     no silently dropped error returns
//	boundedchan  hot-path request queues are bounded
//	obsnaming    metric registrations follow lobster_<component>_<metric>
//	             with the family-specific suffix rules
//	lockorder    module-wide lock-ordering graph over the call graph:
//	             cycles (potential deadlocks), interprocedural blocking
//	             channel ops under a lock, same-receiver re-locking
//	hotpath      //lint:hotpath functions and everything they call must
//	             not allocate (make/new/append, string concat or
//	             conversion, interface boxing, closures, go, fmt)
//
// The framework uses only the standard library (go/parser, go/ast,
// go/types). Per-package analyzers are pure functions from a
// type-checked package to findings; module analyzers receive a *Module
// (all packages plus a static call graph, callgraph.go) and follow
// facts across package boundaries. Both kinds are unit-testable against
// in-memory fixture sources. Deliberate exceptions are annotated in the
// source as
//
//	//lint:allow <check-id> <justification>
//
// which suppresses findings of that check on the directive's own line
// and the line directly below it. A directive without a justification —
// or one that suppresses nothing — is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"

	"repro/internal/par"
)

// Check IDs, as reported in findings and accepted by //lint:allow.
const (
	idDeterminism = "determinism"
	idGoroutine   = "goroutine"
	idMutex       = "mutex"
	idErrcheck    = "errcheck"
	idBoundedChan = "boundedchan"
	idObsNaming   = "obsnaming"
	idLockOrder   = "lockorder"
	idHotPath     = "hotpath"
	idDirective   = "directive"
)

// Finding is one analyzer hit, positioned for file:line reporting.
type Finding struct {
	Check   string         // analyzer ID, e.g. "determinism"
	Pos     token.Position // file:line:col of the offending node
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Package is one type-checked package of the module under analysis.
// Files holds the production sources; TestFiles the _test.go files
// type-checked alongside them (or, for an external foo_test package,
// all of its files). Analyzers receive it read-only.
type Package struct {
	Path      string // import path, e.g. "repro/internal/sim"
	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	// TestPkg/TestInfo come from the augmented (production + in-package
	// test files) type-check; nil when the package has no in-package
	// tests, or when TestFiles is an external test package checked on
	// its own (then Pkg/Info cover it). Kept separate from Pkg/Info so
	// the call graph and the production-only checks keep the object
	// identities of the production check, which is what other packages'
	// imports resolved against.
	TestPkg  *types.Package
	TestInfo *types.Info
}

func (p *Package) position(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

func (p *Package) finding(check string, n ast.Node, format string, args ...any) Finding {
	return Finding{Check: check, Pos: p.position(n), Message: fmt.Sprintf(format, args...)}
}

// allFiles returns production and test files together, for scans that
// only need positions and comments (the allow directive scan).
func (p *Package) allFiles() []*ast.File {
	if len(p.TestFiles) == 0 {
		return p.Files
	}
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return out
}

// views returns the type-consistent (Files, Info) universes of the
// package for the checks that extend to test code: the production
// files with the production info, plus — when test files exist — a
// shallow view pairing the test files with the info that actually
// type-checked them. Each view is a *Package, so the per-node helpers
// work unchanged.
func (p *Package) views() []*Package {
	out := []*Package{p}
	if len(p.TestFiles) == 0 {
		return out
	}
	tv := &Package{Path: p.Path, Fset: p.Fset, Files: p.TestFiles, Pkg: p.TestPkg, Info: p.TestInfo}
	if tv.Info == nil { // external test package: one self-contained check
		tv.Pkg, tv.Info = p.Pkg, p.Info
	}
	return append(out, tv)
}

// Analyzer is one named check. Exactly one of Run (per-package pure
// function) or RunModule (whole-module, call-graph-aware) is set.
// Tests marks analyzers that also cover _test.go files.
type Analyzer struct {
	ID        string
	Doc       string
	Run       func(*Package) []Finding
	RunModule func(*Module) []Finding
	Tests     bool
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, Goroutine, Mutex, Errcheck, BoundedChan, ObsNaming, LockOrder, HotPath}
}

// Timing is one analyzer's cumulative wall time across the run (summed
// over packages for per-package analyzers).
type Timing struct {
	ID   string
	Wall time.Duration
}

// Run applies the analyzers to every package, filters findings through
// the //lint:allow directives, and returns the survivors sorted by
// position. Malformed and stale directives are reported as findings of
// check "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	fs, _ := RunConcurrent(pkgs, analyzers, nil)
	return fs
}

// RunConcurrent is Run with the units of work — (per-package analyzer ×
// package) pairs and whole-module analyzers — fanned out over pool, and
// per-analyzer wall times reported. Findings are byte-identical to a
// serial run for any pool width: results are slotted by task index and
// allow-filtered in that fixed order. A nil pool runs serially.
func RunConcurrent(pkgs []*Package, analyzers []*Analyzer, pool *par.Pool) ([]Finding, []Timing) {
	allows := newAllowSet()
	var out []Finding
	for _, p := range pkgs {
		out = append(out, allows.collect(p)...)
	}

	// Build the task list in deterministic order: per-package analyzers
	// in suite order over the sorted packages, then module analyzers.
	type task struct {
		a   *Analyzer
		pkg *Package // nil => module task
	}
	var tasks []task
	needModule := false
	for _, a := range analyzers {
		if a.RunModule != nil {
			needModule = true
			tasks = append(tasks, task{a: a})
			continue
		}
		for _, p := range pkgs {
			tasks = append(tasks, task{a: a, pkg: p})
		}
	}
	var mod *Module
	if needModule {
		mod = NewModule(pkgs)
	}

	results := make([][]Finding, len(tasks))
	elapsed := make([]time.Duration, len(tasks))
	// Analyzer runs only read the type-checked packages (go/types is
	// safe for concurrent reads), so tasks are independent.
	_ = pool.ForEach(len(tasks), func(i int) error {
		start := time.Now()
		if tasks[i].pkg != nil {
			results[i] = tasks[i].a.Run(tasks[i].pkg)
		} else {
			results[i] = tasks[i].a.RunModule(mod)
		}
		elapsed[i] = time.Since(start)
		return nil
	})

	wall := map[string]time.Duration{}
	for i, t := range tasks {
		wall[t.a.ID] += elapsed[i]
		for _, f := range results[i] {
			if allows.permits(f) {
				continue
			}
			out = append(out, f)
		}
	}
	out = append(out, allows.staleFindings(analyzers)...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, Timing{ID: a.ID, Wall: wall[a.ID]})
	}
	return out, timings
}

// hasSuffixPkg reports whether the package path ends with one of the
// given module-relative suffixes (so checks scoped to e.g.
// "internal/sim" work regardless of the module name).
func hasSuffixPkg(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || len(path) > len(s) && path[len(path)-len(s)-1] == '/' && path[len(path)-len(s):] == s {
			return true
		}
	}
	return false
}

// typeString renders a type compactly for messages.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
