// Package doctor turns a run's observability exhaust — Prometheus
// /metrics scrapes and Chrome-trace /trace.json dumps from any number
// of monitor endpoints — into a ranked bottleneck report: which stall
// cause dominates, per rank; which rank is the straggler; how
// imbalanced each epoch's load was; and whether the recovery machinery
// (hedged reads, failovers) earned its keep. It is the consumer of the
// stall-attribution ledger (DESIGN.md §14) and is deliberately
// dependency-free so it can ingest saved files offline.
package doctor

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed Prometheus exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Metrics holds parsed samples from one or more scrapes.
type Metrics struct {
	Samples []Sample
}

// ParseMetrics parses Prometheus text exposition format 0.0.4 (the
// format obs.Registry.WritePrometheus emits): comment lines are
// skipped, each sample line is `name{k="v",...} value` or `name value`.
// Unparseable lines fail loudly — a half-read scrape silently missing
// the one histogram that mattered would invert the report.
func ParseMetrics(r io.Reader) (*Metrics, error) {
	m := &Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("doctor: metrics line %d: %w", lineNo, err)
		}
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("doctor: reading metrics: %w", err)
	}
	return m, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if brace := strings.IndexByte(line, '{'); brace >= 0 {
		s.Name = line[:brace]
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(line[brace+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	// A timestamp may trail the value; the value is the first field.
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `k1="v1",k2="v2"`, honoring the exposition
// format's \\, \" and \n escapes in values.
func parseLabels(in string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(in) {
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without value in %q", in)
		}
		key := strings.TrimSpace(in[i : i+eq])
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, fmt.Errorf("unterminated label value in %q", in)
			}
			c := in[i]
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
	}
	return labels, nil
}

// Merge appends another scrape's samples (e.g. a second node's
// /metrics) into m.
func (m *Metrics) Merge(other *Metrics) {
	if other == nil {
		return
	}
	m.Samples = append(m.Samples, other.Samples...)
}

// matches reports whether the sample carries every key=value in want.
func (s *Sample) matches(name string, want map[string]string) bool {
	if s.Name != name {
		return false
	}
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Sum totals every sample named name whose labels include want (nil
// matches all). Counters and histogram _sum series from several nodes
// add naturally.
func (m *Metrics) Sum(name string, want map[string]string) float64 {
	total := 0.0
	for i := range m.Samples {
		if m.Samples[i].matches(name, want) {
			total += m.Samples[i].Value
		}
	}
	return total
}

// Value returns the first matching sample's value.
func (m *Metrics) Value(name string, want map[string]string) (float64, bool) {
	for i := range m.Samples {
		if m.Samples[i].matches(name, want) {
			return m.Samples[i].Value, true
		}
	}
	return 0, false
}

// LabelValues returns the sorted distinct values of key across samples
// named name.
func (m *Metrics) LabelValues(name, key string) []string {
	seen := make(map[string]bool)
	for i := range m.Samples {
		if m.Samples[i].Name == name {
			if v, ok := m.Samples[i].Labels[key]; ok {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
