package trace

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
)

func record(epoch, iter int, stalls ...float64) pipeline.IterRecord {
	rec := pipeline.IterRecord{Epoch: epoch, Iter: iter, BatchTime: 0.1}
	for _, s := range stalls {
		rec.PerGPU = append(rec.PerGPU, pipeline.GPUIter{
			Load: 0.02, Preproc: 0.01, Train: 0.05, Stall: s, Idle: 0.01,
		})
	}
	return rec
}

func TestSliceSelectsSections(t *testing.T) {
	var recs []pipeline.IterRecord
	for i := 0; i < 100; i++ {
		recs = append(recs, record(1, i, 0, 0))
	}
	// Mix in another epoch that must be ignored.
	recs = append(recs, record(2, 0, 0, 0))
	got := Slice(recs, 1, 8)
	if len(got) != 24 {
		t.Fatalf("slice length %d, want 24", len(got))
	}
	if got[0].Iter != 0 || got[7].Iter != 7 {
		t.Fatal("beginning section wrong")
	}
	if got[16].Iter != 92 || got[23].Iter != 99 {
		t.Fatalf("end section wrong: %d..%d", got[16].Iter, got[23].Iter)
	}
	for _, r := range got {
		if r.Epoch != 1 {
			t.Fatal("wrong epoch included")
		}
	}
}

func TestSliceShortEpoch(t *testing.T) {
	recs := []pipeline.IterRecord{record(0, 0, 0), record(0, 1, 0)}
	got := Slice(recs, 0, 8)
	if len(got) != 2 {
		t.Fatalf("short epoch slice length %d", len(got))
	}
	if Slice(recs, 5, 8) != nil {
		t.Fatal("missing epoch should give nil")
	}
}

func TestRenderContainsStages(t *testing.T) {
	recs := []pipeline.IterRecord{record(0, 3, 0.02, 0.0)}
	out := Render(recs, []int{0, 1}, 200)
	if !strings.Contains(out, "e00/i003") {
		t.Fatalf("missing iteration label:\n%s", out)
	}
	if !strings.Contains(out, "T") || !strings.Contains(out, "L") {
		t.Fatalf("missing stage bars:\n%s", out)
	}
	// GPU 0 stalls (0.02s), GPU 1 does not: only one row may contain 's'.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[1], "s") {
		t.Fatal("stalling GPU shows no stall")
	}
	if strings.Contains(lines[2], "s") {
		t.Fatal("non-stalling GPU shows stall")
	}
	// Out-of-range GPU indices are skipped silently.
	if out2 := Render(recs, []int{99}, 100); strings.Count(out2, "\n") != 1 {
		t.Fatal("out-of-range GPU not skipped")
	}
}

func TestAnalyzeImbalanceAndBottlenecks(t *testing.T) {
	recs := []pipeline.IterRecord{
		record(0, 0, 0.00, 0.00), // balanced
		record(0, 1, 0.06, 0.00), // spread 0.06 > 0.05 => imbalanced
		record(0, 2, 0.01, 0.01), // balanced
	}
	// Make GPU 0 load-bound in iteration 1 only: creates 2 shifts
	// (0->1 and 1->2).
	recs[1].PerGPU[0].Load = 0.09
	st := Analyze(recs, 0.05, 1.0)
	if st.Iterations != 3 {
		t.Fatalf("iterations %d", st.Iterations)
	}
	if st.ImbalancedFrac < 0.32 || st.ImbalancedFrac > 0.34 {
		t.Fatalf("imbalanced frac %g, want 1/3", st.ImbalancedFrac)
	}
	if st.LoadBottleneckFrac != 1.0/6.0 {
		t.Fatalf("load bottleneck frac %g, want 1/6", st.LoadBottleneckFrac)
	}
	if st.BottleneckShifts != 2 {
		t.Fatalf("bottleneck shifts %d, want 2", st.BottleneckShifts)
	}
	if st.MeanIdleFrac <= 0 {
		t.Fatal("mean idle frac not positive")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	st := Analyze(nil, 0.05, 1.0)
	if st.Iterations != 0 || st.ImbalancedFrac != 0 {
		t.Fatalf("empty analyze = %+v", st)
	}
}
