package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// boundedScope is the set of hot-path packages where DESIGN.md
// specifies bounded per-GPU request queues: an unbuffered data channel
// there couples producer and consumer into lockstep and hides the
// queue-depth knob the thread manager tunes.
var boundedScope = []string{
	"internal/runtime",
	"internal/preproc",
	"internal/pipeline",
	"internal/threadmgr",
	"internal/kvstore",
	"internal/loader",
	"internal/distcache",
}

// BoundedChan flags `make(chan T)` (and explicit zero capacity) for
// data-carrying channels in the hot request-queue packages. Channels of
// struct{} are exempt: they are done/ready signals, where unbuffered
// rendezvous is the point.
var BoundedChan = &Analyzer{
	ID: idBoundedChan,
	Doc: "hot-path packages must use bounded, buffered channels for data " +
		"(make(chan T, n)); unbuffered struct{} signal channels are fine",
	Run: runBoundedChan,
}

func runBoundedChan(p *Package) []Finding {
	if !hasSuffixPkg(p.Path, boundedScope) {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(p.Info, call, "make") || len(call.Args) == 0 {
				return true
			}
			t := p.Info.TypeOf(call.Args[0])
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan || isSignalChanType(t) {
				return true
			}
			unbuffered := len(call.Args) < 2
			if !unbuffered {
				if tv, ok := p.Info.Types[call.Args[1]]; ok && tv.Value != nil {
					if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v == 0 {
						unbuffered = true
					}
				}
			}
			if unbuffered {
				out = append(out, p.finding(idBoundedChan, call,
					"unbuffered channel of %s in hot-path package %s; size it explicitly (make(chan T, n)) per DESIGN.md's bounded-queue contract",
					typeString(t.Underlying().(*types.Chan).Elem()), p.Path))
			}
			return true
		})
	}
	return out
}
