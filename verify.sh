#!/usr/bin/env bash
# Tier-1 verification gate for the Lobster reproduction. Everything a PR
# must pass, in dependency order:
#
#   1. go build        — the tree compiles
#   2. go vet          — the stock correctness checks
#   3. go test -race   — the full suite, module-wide, under the race detector
#   4. lobster-lint    — the project's own static analysis (determinism,
#                        goroutine/mutex hygiene, errcheck, bounded queues)
#   5. bench smoke     — quick protocol sanity pass of the kvstore
#                        benchmark harness (full run: make bench-kv)
#   6. sim bench smoke — BENCH_sim.json schema validation
#                        (full regeneration: make bench-sim)
#
# Run from anywhere: the script cds to the repo root. `make check` is an
# alias for this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> lobster-lint ./..."
go run ./cmd/lobster-lint ./...

echo "==> kvstore bench smoke"
# Short protocol sanity pass of the bench harness (the full run is
# `make bench-kv`, which writes BENCH_kv.json).
go test ./internal/kvstore -run TestBenchKVJSON -count=1

echo "==> sim bench smoke"
# Schema validation of the committed BENCH_sim.json (the full run is
# `make bench-sim`, which regenerates it).
go test . -run TestBenchSimJSON -count=1

echo "ALL CHECKS PASSED"
