package monitor

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsEndpoint checks /metrics 404s without a registry and
// serves the exposition format once one is attached.
func TestMetricsEndpoint(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, _ := get(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusNotFound {
		t.Fatalf("/metrics without registry = %d, want 404", code)
	}

	reg := obs.NewRegistry()
	reg.Counter("lobster_test_hits_total", "Hits.", "node", "0").Add(7)
	s.SetRegistry(reg)
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, `lobster_test_hits_total{node="0"} 7`) {
		t.Fatalf("scrape missing counter sample:\n%s", body)
	}
}

// TestTraceEndpoint checks /trace.json 404s without a ring and serves
// parseable Chrome trace JSON once one is attached.
func TestTraceEndpoint(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	code, _ := get(t, "http://"+s.Addr()+"/trace.json")
	if code != http.StatusNotFound {
		t.Fatalf("/trace.json without ring = %d, want 404", code)
	}

	tr := obs.NewTraceRing(64)
	tid := tr.NewThread("rank0")
	tr.Span("stall", "gpu", tid, time.Now(), time.Millisecond)
	s.SetTrace(tr)
	code, body := get(t, "http://"+s.Addr()+"/trace.json")
	if code != http.StatusOK {
		t.Fatalf("/trace.json = %d, want 200", code)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("trace dump does not parse: %v", err)
	}
	var haveSpan bool
	for _, e := range out.TraceEvents {
		if e["name"] == "stall" && e["ph"] == "X" {
			haveSpan = true
		}
	}
	if !haveSpan {
		t.Fatalf("trace dump missing the recorded span:\n%s", body)
	}
}

// TestHealthzStaleness checks the probe fails once the snapshot is
// older than the configured window, and recovers on the next Update.
func TestHealthzStaleness(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetMaxStale(30 * time.Millisecond)

	s.Update(map[string]int{"iter": 1})
	if code, _ := get(t, "http://"+s.Addr()+"/healthz"); code != http.StatusOK {
		t.Fatalf("fresh healthz = %d, want 200", code)
	}
	time.Sleep(60 * time.Millisecond)
	code, body := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("stale healthz = %d, want 503 (%s)", code, body)
	}
	if !strings.Contains(body, "stale") {
		t.Fatalf("stale healthz body %q does not say why", body)
	}
	s.Update(map[string]int{"iter": 2})
	if code, _ := get(t, "http://"+s.Addr()+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after recovery = %d, want 200", code)
	}

	// Disabling the window makes the frozen snapshot healthy again.
	s.SetMaxStale(0)
	time.Sleep(10 * time.Millisecond)
	if code, _ := get(t, "http://"+s.Addr()+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz with window disabled = %d, want 200", code)
	}
}

// TestGracefulClose checks Close lets an in-flight scrape finish
// instead of cutting the connection under it.
func TestGracefulClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	reg.Counter("lobster_test_total", "t").Inc()
	s.SetRegistry(reg)

	// Hold a connection open with a request already accepted, then Close.
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	//lint:allow goroutine one-shot Close whose result lands in the buffered done channel the test receives from
	go func() { done <- s.Close() }()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	resp.Body.Close()
	if n == 0 {
		t.Fatal("in-flight scrape got no body across Close")
	}
	if err := <-done; err != nil {
		t.Fatalf("graceful Close returned %v", err)
	}
}
