package preproc

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func testPayload(t *testing.T, size int, id dataset.SampleID) []byte {
	t.Helper()
	buf := make([]byte, size)
	dataset.FillPayload(buf, 42, id)
	return buf
}

func TestDecodeValid(t *testing.T) {
	p := testPayload(t, 4096, 7)
	tensor, err := Decode(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.ID != 7 {
		t.Fatalf("tensor id = %d, want 7", tensor.ID)
	}
	if len(tensor.Data) != 4096-dataset.PayloadHeaderSize {
		t.Fatalf("tensor has %d elements", len(tensor.Data))
	}
	if tensor.Checksum == 0 {
		t.Fatal("checksum not computed")
	}
	for i, v := range tensor.Data {
		if v < -1.5 || v > 1.5 || math.IsNaN(float64(v)) {
			t.Fatalf("element %d = %g outside normalized range", i, v)
		}
	}
}

func TestDecodeRejectsWrongID(t *testing.T) {
	p := testPayload(t, 1024, 3)
	if _, err := Decode(p, 4); err == nil {
		t.Fatal("wrong id accepted")
	}
}

func TestDecodeRejectsShortPayload(t *testing.T) {
	if _, err := Decode(make([]byte, 4), 0); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	p := testPayload(t, 1024, 3)
	if _, err := Decode(p[:512], 3); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestDecodeDeterministic(t *testing.T) {
	p := testPayload(t, 2048, 9)
	a, _ := Decode(p, 9)
	b, _ := Decode(p, 9)
	if a.Checksum != b.Checksum {
		t.Fatal("decode not deterministic")
	}
}

func TestAugmentFlipAndJitter(t *testing.T) {
	p := testPayload(t, 1024, 1)
	base, _ := Decode(p, 1)
	flipped, _ := Decode(p, 1)
	Augment(flipped, 1) // odd seed => flip, jitter = -0.05
	n := len(base.Data)
	for i := 0; i < n; i++ {
		want := base.Data[n-1-i] - 0.05
		if math.Abs(float64(flipped.Data[i]-want)) > 1e-6 {
			t.Fatalf("flip+jitter wrong at %d: got %g want %g", i, flipped.Data[i], want)
		}
	}
	unflipped, _ := Decode(p, 1)
	Augment(unflipped, 2) // even seed => no flip, jitter = (1%100)/1000-0.05 = -0.049
	for i := 0; i < n; i++ {
		want := base.Data[i] - 0.049
		if math.Abs(float64(unflipped.Data[i]-want)) > 1e-6 {
			t.Fatalf("jitter wrong at %d", i)
		}
	}
}

func TestAugmentEmptyTensor(t *testing.T) {
	Augment(&Tensor{}, 3) // must not panic
}

func TestAssemble(t *testing.T) {
	a := &Tensor{Data: make([]float32, 10)}
	b := &Tensor{Data: make([]float32, 20)}
	batch := Assemble([]*Tensor{a, b})
	if batch.Bytes != 30 || len(batch.Tensors) != 2 {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestModelValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ThroughputModel{
		{PerThreadMBps: 0, MemBWMBps: 1},
		{PerThreadMBps: 10, MemBWMBps: 5},
		{PerThreadMBps: 10, MemBWMBps: 100, ParallelLoss: 1},
		{PerThreadMBps: 10, MemBWMBps: 100, DegradePerThread: -0.1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v accepted", m)
		}
	}
}

func TestModelObservation3Shape(t *testing.T) {
	m := DefaultModel()
	// Rising region.
	for n := 1; n < 6; n++ {
		if m.Throughput(n+1) <= m.Throughput(n) {
			t.Fatalf("throughput not rising at %d threads", n)
		}
	}
	// Peak at 6 threads, as in Figure 6.
	if got := m.PeakThreads(16); got != 6 {
		t.Fatalf("PeakThreads = %d, want 6", got)
	}
	// Declining (or flat) beyond the peak.
	peak := m.Throughput(6)
	for n := 7; n <= 16; n++ {
		if m.Throughput(n) > peak {
			t.Fatalf("throughput at %d threads exceeds the peak", n)
		}
	}
	if m.Throughput(12) >= m.Throughput(7) {
		t.Fatal("no degradation visible in the oversubscribed region")
	}
	if m.Throughput(0) != 0 {
		t.Fatal("zero threads should give zero throughput")
	}
}

func TestModelTime(t *testing.T) {
	m := DefaultModel()
	bytes := int64(10e6)
	t6 := m.Time(bytes, 6)
	t1 := m.Time(bytes, 1)
	if t6 >= t1 {
		t.Fatalf("6 threads (%gs) not faster than 1 (%gs)", t6, t1)
	}
	want := float64(bytes) / (m.Throughput(6) * 1e6)
	if math.Abs(t6-want) > 1e-12 {
		t.Fatalf("Time = %g, want %g", t6, want)
	}
	if m.Time(bytes, 0) != 0 {
		t.Fatal("zero-thread time should be 0 (no work submitted)")
	}
}
