package access

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sampler"
)

func windowedFixtures(t *testing.T) (*sampler.Schedule, *Plan, *Windowed, int) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "w", NumSamples: 600, MeanSize: 100, Classes: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sampler.New(ds, sampler.Config{WorldSize: 2, BatchSize: 10, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 10
	full, err := Build(s, 0, 2, epochs, 0)
	if err != nil {
		t.Fatal(err)
	}
	win, err := BuildWindowed(s, 0, 2, epochs, 3)
	if err != nil {
		t.Fatal(err)
	}
	return s, full, win, epochs
}

func TestBuildWindowedValidation(t *testing.T) {
	if _, err := BuildWindowed(nil, 0, 1, 1, 3); err == nil {
		t.Error("nil schedule accepted")
	}
	ds, _ := dataset.Generate(dataset.Spec{Name: "v", NumSamples: 100, MeanSize: 10, Classes: 1, Seed: 1})
	s, _ := sampler.New(ds, sampler.Config{WorldSize: 1, BatchSize: 5, Seed: 1})
	if _, err := BuildWindowed(s, 0, 1, 0, 3); err == nil {
		t.Error("zero epochs accepted")
	}
	if _, err := BuildWindowed(s, 5, 1, 2, 3); err == nil {
		t.Error("node beyond world accepted")
	}
	// Window longer than the run clamps.
	w, err := BuildWindowed(s, 0, 1, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if _, end := w.WindowBounds(); end != 2 {
		t.Fatalf("window end %d, want clamp at 2", end)
	}
}

func TestWindowedMatchesFullWithinWindow(t *testing.T) {
	s, full, win, _ := windowedFixtures(t)
	iters := s.IterationsPerEpoch()
	// Queries with `after` inside epoch 0 must match the full plan
	// whenever the full plan's answer lies within the 3-epoch window.
	for id := 0; id < 600; id++ {
		sid := dataset.SampleID(id)
		for _, after := range []Iter{-1, 0, Iter(iters / 2), Iter(iters - 1)} {
			fullNext := full.NextUse(sid, after)
			gotNext := win.NextUse(sid, after)
			if fullNext != NoAccess && fullNext < Iter(3*iters) {
				if gotNext != fullNext {
					t.Fatalf("sample %d after %d: windowed NextUse %d, full %d", id, after, gotNext, fullNext)
				}
			} else if fullNext == NoAccess {
				if gotNext != NoAccess {
					t.Fatalf("sample %d: windowed %d, full NoAccess", id, gotNext)
				}
			} else if gotNext != Iter(3*iters) {
				t.Fatalf("sample %d: beyond-window NextUse %d, want horizon %d", id, gotNext, 3*iters)
			}
			if got, want := win.UsesRemaining(sid, after), full.UsesRemaining(sid, after); got != want {
				t.Fatalf("sample %d after %d: windowed UsesRemaining %d, full %d", id, after, got, want)
			}
		}
	}
}

func TestWindowedAdvanceStaysExact(t *testing.T) {
	s, full, win, epochs := windowedFixtures(t)
	iters := s.IterationsPerEpoch()
	for epoch := 1; epoch < epochs; epoch++ {
		win.Advance(epoch)
		start, end := win.WindowBounds()
		if start != epoch {
			t.Fatalf("window start %d, want %d", start, epoch)
		}
		wantEnd := epoch + 3
		if wantEnd > epochs {
			wantEnd = epochs
		}
		if end != wantEnd {
			t.Fatalf("window end %d, want %d", end, wantEnd)
		}
		after := Iter(epoch * iters) // current-iteration queries
		for id := 0; id < 600; id += 7 {
			sid := dataset.SampleID(id)
			if got, want := win.UsesRemaining(sid, after), full.UsesRemaining(sid, after); got != want {
				t.Fatalf("epoch %d sample %d: UsesRemaining %d, want %d", epoch, id, got, want)
			}
			fullNext := full.NextUse(sid, after)
			gotNext := win.NextUse(sid, after)
			switch {
			case fullNext == NoAccess:
				if gotNext != NoAccess {
					t.Fatalf("epoch %d sample %d: got %d, want NoAccess", epoch, id, gotNext)
				}
			case fullNext < Iter(end*iters):
				if gotNext != fullNext {
					t.Fatalf("epoch %d sample %d: got %d, want exact %d", epoch, id, gotNext, fullNext)
				}
			default:
				if gotNext != Iter(end*iters) {
					t.Fatalf("epoch %d sample %d: got %d, want horizon %d", epoch, id, gotNext, end*iters)
				}
			}
		}
	}
}

func TestWindowedAdvanceBackwardsNoop(t *testing.T) {
	_, _, win, _ := windowedFixtures(t)
	win.Advance(2)
	start, _ := win.WindowBounds()
	win.Advance(1) // must not rewind
	if s2, _ := win.WindowBounds(); s2 != start {
		t.Fatalf("Advance rewound the window: %d -> %d", start, s2)
	}
}

func TestWindowedMemoryBounded(t *testing.T) {
	s, _, win, epochs := windowedFixtures(t)
	// After advancing to the end, total detailed entries are bounded by
	// window size x node accesses per epoch.
	for epoch := 1; epoch < epochs; epoch++ {
		win.Advance(epoch)
	}
	total := 0
	for _, list := range win.window {
		total += len(list)
	}
	perEpoch := s.SamplesPerEpoch() / 2 // this node's share (1 of 2 nodes)
	if total > 3*perEpoch {
		t.Fatalf("window holds %d entries, want <= %d", total, 3*perEpoch)
	}
	// And all beyond-window counters must have drained to zero.
	for id, c := range win.afterWindow {
		if c != 0 {
			t.Fatalf("sample %d still has afterWindow %d at the end", id, c)
		}
	}
}
