package preproc

import "fmt"

// ThroughputModel is the roofline model of preprocessing throughput as a
// function of thread count (Observation 3 / Figure 6):
//
//   - below saturation, throughput scales nearly linearly:
//     PerThreadMBps * n (with a small parallelization loss);
//   - the memory system caps aggregate throughput at MemBWMBps
//     ("intensive memory bandwidth consumption is the major performance
//     bottleneck when the number of threads is large");
//   - beyond the saturation point, each extra thread costs
//     DegradePerThread fraction of throughput (cache thrash, bandwidth
//     contention) — "flattens and even slightly becomes worse".
type ThroughputModel struct {
	PerThreadMBps    float64 // single-thread decode+augment rate
	MemBWMBps        float64 // roofline ceiling
	ParallelLoss     float64 // per-extra-thread efficiency loss below the roof (0..1)
	DegradePerThread float64 // fractional decline per thread beyond saturation
}

// Validate reports whether the model is usable.
func (m ThroughputModel) Validate() error {
	if m.PerThreadMBps <= 0 {
		return fmt.Errorf("preproc: PerThreadMBps %g <= 0", m.PerThreadMBps)
	}
	if m.MemBWMBps < m.PerThreadMBps {
		return fmt.Errorf("preproc: MemBWMBps %g below single-thread rate %g", m.MemBWMBps, m.PerThreadMBps)
	}
	if m.ParallelLoss < 0 || m.ParallelLoss >= 1 {
		return fmt.Errorf("preproc: ParallelLoss %g outside [0,1)", m.ParallelLoss)
	}
	if m.DegradePerThread < 0 || m.DegradePerThread >= 1 {
		return fmt.Errorf("preproc: DegradePerThread %g outside [0,1)", m.DegradePerThread)
	}
	return nil
}

// Throughput returns aggregate MB/s with n preprocessing threads.
func (m ThroughputModel) Throughput(n int) float64 {
	if n <= 0 {
		return 0
	}
	t := float64(n)
	linear := m.PerThreadMBps * t * (1 - m.ParallelLoss*(t-1))
	if linear < m.PerThreadMBps {
		linear = m.PerThreadMBps // never below one thread's worth
	}
	if linear <= m.MemBWMBps {
		return linear
	}
	// Saturated: at the roof, degraded by oversubscription.
	over := t - m.saturation()
	if over < 0 {
		over = 0
	}
	return m.MemBWMBps * (1 - m.DegradePerThread*over)
}

// saturation returns the (fractional) thread count at which the linear
// region meets the roof.
func (m ThroughputModel) saturation() float64 {
	// Solve PerThread * t * (1 - loss*(t-1)) = MemBW approximately by
	// scanning unit steps, which is how the planner uses it anyway.
	for t := 1.0; t < 1024; t++ {
		linear := m.PerThreadMBps * t * (1 - m.ParallelLoss*(t-1))
		if linear >= m.MemBWMBps {
			return t
		}
	}
	return 1024
}

// PeakThreads returns the smallest thread count achieving maximum
// throughput — the paper's "minimum number of threads needed to reach the
// peak preprocessing throughput and not exceed it" (Observation 3's
// implication).
func (m ThroughputModel) PeakThreads(maxThreads int) int {
	best, bestN := 0.0, 1
	for n := 1; n <= maxThreads; n++ {
		tp := m.Throughput(n)
		if tp > best+1e-9 {
			best, bestN = tp, n
		}
	}
	return bestN
}

// Time returns the seconds to preprocess `bytes` with n threads.
func (m ThroughputModel) Time(bytes int64, n int) float64 {
	tp := m.Throughput(n)
	if tp <= 0 {
		return 0
	}
	return float64(bytes) / (tp * 1e6)
}

// DefaultModel returns a calibration matching the paper's Figure 6 shape:
// throughput peaks at 6 threads and declines slightly beyond. The absolute
// rate is sized against the ThetaGPU-like tier curves so that, with the
// peak thread count, preprocessing a mini-batch is faster than training it
// (preprocessing "did not become a bottleneck by itself", Observation 2) —
// but takes enough time that stealing too many of its threads would make
// it one.
func DefaultModel() ThroughputModel {
	return ThroughputModel{
		PerThreadMBps:    165,
		MemBWMBps:        900,
		ParallelLoss:     0.015,
		DegradePerThread: 0.01,
	}
}
