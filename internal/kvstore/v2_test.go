package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testClientV2(t *testing.T, s *Server) *ClientV2 {
	t.Helper()
	c, err := NewClientV2(s.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestV2PutGetDelete covers the single-op surface over the pipelined
// protocol, against the same server that serves v1.
func TestV2PutGetDelete(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClientV2(t, s)

	if _, found, err := c.Get("missing"); err != nil || found {
		t.Fatalf("Get(missing) = %v, %v", found, err)
	}
	if err := c.Put("k1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("k1")
	if err != nil || !found || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get(k1) = %q, %v, %v", v, found, err)
	}
	if err := c.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.Get("k1"); found {
		t.Fatal("deleted key still present")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestV2OversizedValueRefused checks statusTooLarge surfaces through
// the pipelined client, for Put and MultiPut, and that the connection
// survives.
func TestV2OversizedValueRefused(t *testing.T) {
	s := testServer(t, 10)
	c := testClientV2(t, s)
	if err := c.Put("big", make([]byte, 100)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Put(oversized) = %v, want ErrTooLarge", err)
	}
	err := c.MultiPut([]string{"a", "big", "b"},
		[][]byte{[]byte("x"), make([]byte, 100), []byte("y")})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("MultiPut(oversized) = %v, want ErrTooLarge", err)
	}
	// Best-effort semantics: the admissible pairs around the refusal
	// must still have been stored.
	for _, k := range []string{"a", "b"} {
		if _, found, err := c.Get(k); err != nil || !found {
			t.Fatalf("batch neighbor %q lost: %v %v", k, found, err)
		}
	}
	// Both refusals must be observable even by writers that drop the Put
	// error (the striped admission bound is per stripe, so silent drops
	// would otherwise be invisible).
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TooLarge != 2 {
		t.Fatalf("client TooLarge = %d, want 2", st.TooLarge)
	}
	if got := s.Stats().TooLarge; got != 2 {
		t.Fatalf("server TooLarge = %d, want 2", got)
	}
}

// TestMultiGetMixed exercises a shard-local batch with hits, misses and
// an empty value.
func TestMultiGetMixed(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClientV2(t, s)
	if err := c.MultiPut(
		[]string{"a", "empty", "c"},
		[][]byte{[]byte("va"), {}, []byte("vc")}); err != nil {
		t.Fatal(err)
	}
	vals, err := c.MultiGet([]string{"missing1", "a", "empty", "missing2", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 {
		t.Fatalf("got %d values", len(vals))
	}
	if vals[0] != nil || vals[3] != nil {
		t.Fatalf("absent keys returned values: %q %q", vals[0], vals[3])
	}
	if string(vals[1]) != "va" || string(vals[4]) != "vc" {
		t.Fatalf("wrong values: %q %q", vals[1], vals[4])
	}
	if vals[2] == nil || len(vals[2]) != 0 {
		t.Fatalf("present empty value must be non-nil empty, got %v", vals[2])
	}
}

// TestClusterMultiGetSpansShards drives a batch across a 3-shard v2
// cluster with mixed hits and misses, verifying order-preserving
// reassembly.
func TestClusterMultiGetSpansShards(t *testing.T) {
	var addrs []string
	var servers []*Server
	for i := 0; i < 3; i++ {
		s := testServer(t, 1<<20)
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	cluster, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	const n = 90
	var keys []string
	var vals [][]byte
	for i := 0; i < n; i++ {
		keys = append(keys, fmt.Sprintf("sample-%d", i))
		vals = append(vals, []byte(fmt.Sprintf("payload-%d", i)))
	}
	// Store only the even keys; odd keys are batch misses.
	var putKeys []string
	var putVals [][]byte
	for i := 0; i < n; i += 2 {
		putKeys = append(putKeys, keys[i])
		putVals = append(putVals, vals[i])
	}
	if err := cluster.MultiPut(putKeys, putVals); err != nil {
		t.Fatal(err)
	}
	// The batch must genuinely span shards.
	spread := 0
	for _, s := range servers {
		if s.Stats().Items > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("keys on %d/3 shards; hashing not spreading", spread)
	}
	got, err := cluster.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			if !bytes.Equal(got[i], vals[i]) {
				t.Fatalf("key %d: got %q want %q", i, got[i], vals[i])
			}
		} else if got[i] != nil {
			t.Fatalf("key %d: miss returned %q", i, got[i])
		}
	}
	// A v1 cluster must satisfy the same contract (loop fallback).
	v1, err := NewClusterV1(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	got1, err := v1.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(got1[i], got[i]) {
			t.Fatalf("v1/v2 disagree on key %d: %q vs %q", i, got1[i], got[i])
		}
	}
}

// TestV2Pipelining verifies many concurrent ops share few connections:
// 32 goroutines over a single-connection client must all complete and
// observe their own writes.
func TestV2Pipelining(t *testing.T) {
	s := testServer(t, 8<<20)
	c, err := NewClientV2(s.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				want := []byte(fmt.Sprintf("v-%d-%d", g, i))
				if err := c.Put(key, want); err != nil {
					errs <- err
					return
				}
				got, found, err := c.Get(key)
				if err != nil || !found || !bytes.Equal(got, want) {
					errs <- fmt.Errorf("get %s = %q %v %v", key, got, found, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st, _ := c.Stats(); st.Items != 32*25 {
		t.Fatalf("items = %d, want %d", st.Items, 32*25)
	}
}

// TestV2Reconnect kills the client's sockets behind its back and
// verifies the next ops heal via the lazy redial path.
func TestV2Reconnect(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClientV2(t, s)
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	conns := append([]*pipeConn(nil), c.conns...)
	c.mu.Unlock()
	for _, p := range conns {
		p.fail(errors.New("test: injected drop"))
	}
	// The first op after the drop may race the failure; the client must
	// heal within a couple of attempts, not poison its pool.
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		v, found, err := c.Get("k")
		if err == nil && found && string(v) == "v" {
			return
		}
		lastErr = err
	}
	t.Fatalf("client did not recover from dropped connections: %v", lastErr)
}

// TestV2FailureUnderLoad repeatedly kills the client's connections
// while pipelined ops are in flight. Regression for a race between the
// writer goroutine and connection failure: fail() used to complete
// calls that were still queued for — or being serialized by — the
// writer, letting the caller recycle the call object and reuse its
// value buffers (which this test mutates between iterations) under the
// writer's reads. Under -race this must be silent, and every op must
// return rather than hang.
func TestV2FailureUnderLoad(t *testing.T) {
	s := testServer(t, 8<<20)
	c, err := NewClientV2(s.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys := make([]string, 4)
			vals := make([][]byte, 4)
			for i := range keys {
				keys[i] = fmt.Sprintf("g%d-k%d", g, i)
				vals[i] = bytes.Repeat([]byte{byte(g)}, 512)
			}
			for i := 0; !stop.Load(); i++ {
				// Errors are expected around each injected drop; what
				// matters is that the op returns, and that touching the
				// buffers afterwards cannot race a writer still
				// serializing them.
				if i%2 == 0 {
					_ = c.MultiPut(keys, vals)
				} else {
					_, _, _ = c.Get(keys[i%len(keys)])
				}
				for _, v := range vals {
					v[i%len(v)]++
				}
			}
		}()
	}
	for round := 0; round < 8; round++ {
		time.Sleep(2 * time.Millisecond)
		c.mu.Lock()
		conns := append([]*pipeConn(nil), c.conns...)
		c.mu.Unlock()
		for _, p := range conns {
			p.fail(errors.New("test: injected drop"))
		}
	}
	stop.Store(true)
	done := make(chan struct{})
	//lint:allow goroutine exits when wg.Wait returns; the select below bounds the wait at 30s
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipelined ops hung across injected connection failures")
	}
}

// TestV2MismatchedResponseErrors serves a response whose op byte does
// not match the request it answers. The waiter must get an error — not
// hang forever — and the connection must be dropped.
func TestV2MismatchedResponseErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	//lint:allow goroutine serves exactly one connection and exits; Cleanup closing the listener unblocks a pending Accept
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Consume the Get("k") request frame:
		// magic(1) op(1) id(4) keyLen(4) "k"(1) valLen(4).
		buf := make([]byte, 15)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		// Answer request 0 with the wrong op byte and an empty body.
		_, _ = conn.Write([]byte{opPut, 0, 0, 0, 0, statusOK, 0, 0, 0, 0})
	}()
	c, err := NewClientV2(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	errc := make(chan error, 1)
	//lint:allow goroutine one-shot Get whose result lands in the buffered errc; Cleanup(c.Close) fails it if the server never answers
	go func() {
		_, _, err := c.Get("k")
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Get succeeded against a desynced server")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Get hung on a mismatched response")
	}
}

// TestStripingSpreadsAndBounds checks that a striped server both uses
// multiple stripes and keeps total bytes within capacity.
func TestStripingSpreadsAndBounds(t *testing.T) {
	s, err := NewServerStriped("127.0.0.1:0", 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if s.Stripes() != 8 {
		t.Fatalf("stripes = %d, want 8", s.Stripes())
	}
	c := testClientV2(t, s)
	val := make([]byte, 4<<10)
	for i := 0; i < 1000; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.UsedBytes > 1<<20 {
		t.Fatalf("used %d > capacity", st.UsedBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 4x oversubscription")
	}
	occupied := 0
	for _, sp := range s.st.stripes {
		sp.mu.Lock()
		if len(sp.items) > 0 {
			occupied++
		}
		sp.mu.Unlock()
	}
	if occupied < 4 {
		t.Fatalf("only %d/8 stripes occupied; hashing not spreading", occupied)
	}
}

// TestAutoStripeCollapse: tiny capacities must collapse to one stripe so
// the global LRU eviction order of the v1 store is preserved exactly.
func TestAutoStripeCollapse(t *testing.T) {
	small := testServer(t, 100)
	if small.Stripes() != 1 {
		t.Fatalf("tiny shard got %d stripes, want 1", small.Stripes())
	}
	big := testServer(t, 64<<20)
	if big.Stripes() != defaultStripes {
		t.Fatalf("big shard got %d stripes, want %d", big.Stripes(), defaultStripes)
	}
}
