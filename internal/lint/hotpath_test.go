package lint

import (
	"strings"
	"testing"
)

// hotpathFixture runs the hotpath analyzer over one fixture package.
type hotpathFixture struct {
	name string
	src  string
	want int
	grep string // substring expected in the first finding's message
}

func TestHotPathConstructs(t *testing.T) {
	tests := []hotpathFixture{
		{
			name: "make",
			src: `package hot

//lint:hotpath test fixture
func bad() {
	_ = make([]int, 4)
}
`,
			want: 1, grep: "make allocates",
		},
		{
			name: "new",
			src: `package hot

//lint:hotpath test fixture
func bad() {
	_ = new(int)
}
`,
			want: 1, grep: "new allocates",
		},
		{
			name: "append_growth",
			src: `package hot

//lint:hotpath test fixture
func bad(s []int, v int) []int {
	return append(s, v)
}
`,
			want: 1, grep: "append may grow the backing array",
		},
		{
			name: "slice_literal",
			src: `package hot

//lint:hotpath test fixture
func bad() []int {
	return []int{1, 2, 3}
}
`,
			want: 1, grep: "slice literal allocates",
		},
		{
			name: "map_literal",
			src: `package hot

//lint:hotpath test fixture
func bad() map[int]int {
	return map[int]int{}
}
`,
			want: 1, grep: "map literal allocates",
		},
		{
			name: "string_concat",
			src: `package hot

//lint:hotpath test fixture
func bad(a, b string) string {
	return a + b
}
`,
			want: 1, grep: "string concatenation allocates",
		},
		{
			name: "string_plus_equals",
			src: `package hot

//lint:hotpath test fixture
func bad(parts []string) string {
	out := ""
	for _, p := range parts {
		out += p
	}
	return out
}
`,
			want: 1, grep: "string += allocates",
		},
		{
			name: "string_conversion",
			src: `package hot

//lint:hotpath test fixture
func bad(b []byte) string {
	return string(b)
}
`,
			want: 1, grep: "allocates a copy",
		},
		{
			name: "fmt_call",
			src: `package hot

import "fmt"

//lint:hotpath test fixture
func bad() {
	fmt.Println("x")
}
`,
			want: 1, grep: "must not call fmt",
		},
		{
			name: "closure",
			src: `package hot

//lint:hotpath test fixture
func bad() {
	f := func() {}
	f()
}
`,
			want: 1, grep: "function literal",
		},
		{
			name: "go_stmt",
			src: `package hot

//lint:hotpath test fixture
func bad(done chan struct{}) {
	go close(done)
}
`,
			want: 1, grep: "go statement",
		},
		{
			name: "interface_boxing",
			src: `package hot

//lint:hotpath test fixture
func bad(v int) {
	sink(v)
}

func sink(x interface{}) {}
`,
			want: 1, grep: "boxes it onto the heap",
		},
		{
			name: "boxing_skips_pointers_and_constants",
			src: `package hot

//lint:hotpath test fixture
func ok(v *int) {
	sink(v)
	sink(nil)
	sink("literal")
}

func sink(x interface{}) {}
`,
			want: 0,
		},
		{
			name: "allow_suppresses",
			src: `package hot

//lint:hotpath test fixture
func grown(s []int, n int) []int {
	//lint:allow hotpath amortized doubling growth
	out := make([]int, n)
	copy(out, s)
	return out
}
`,
			want: 0,
		},
		{
			name: "clean_negative",
			src: `package hot

//lint:hotpath test fixture
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
`,
			want: 0,
		},
		{
			name: "unannotated_function_ignored",
			src: `package hot

func coldPath() []int {
	return make([]int, 64)
}
`,
			want: 0,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pkgs := checkFixtureModule(t, fixtureSrc{path: "fix/hot", src: tc.src})
			got := moduleFindings(t, HotPath, pkgs)
			if len(got) != tc.want {
				t.Fatalf("got %d hotpath findings, want %d:\n%s", len(got), tc.want, renderFindings(got))
			}
			if tc.grep != "" && !strings.Contains(got[0].Message, tc.grep) {
				t.Fatalf("first finding does not contain %q:\n%s", tc.grep, renderFindings(got))
			}
		})
	}
}

func TestHotPathTransitiveChain(t *testing.T) {
	pkgs := checkFixtureModule(t, fixtureSrc{path: "fix/hot", src: `package hot

//lint:hotpath test fixture
func root() {
	middle()
}

func middle() {
	leaf()
}

func leaf() {
	_ = make([]int, 4)
}
`})
	got := moduleFindings(t, HotPath, pkgs)
	if len(got) != 1 {
		t.Fatalf("got %d hotpath findings, want 1:\n%s", len(got), renderFindings(got))
	}
	msg := got[0].Message
	// The finding must spell out the call chain from the annotated root
	// to the allocating function.
	if !strings.Contains(msg, "hot path hot.root → hot.middle → hot.leaf") {
		t.Fatalf("chain not reported: %s", msg)
	}
}

func TestHotPathCrossPackageReach(t *testing.T) {
	pkgs := checkFixtureModule(t,
		fixtureSrc{path: "fix/inner", src: `package inner

func Alloc() []byte {
	return make([]byte, 16)
}
`},
		fixtureSrc{path: "fix/outer", src: `package outer

import "fix/inner"

//lint:hotpath test fixture
func Root() []byte {
	return inner.Alloc()
}
`})
	got := moduleFindings(t, HotPath, pkgs)
	if len(got) != 1 {
		t.Fatalf("got %d hotpath findings, want 1:\n%s", len(got), renderFindings(got))
	}
	if !strings.Contains(got[0].Message, "outer.Root → inner.Alloc") {
		t.Fatalf("cross-package chain not reported: %s", got[0].Message)
	}
}

func TestHotPathVisitedOnce(t *testing.T) {
	// Two annotated roots reaching the same allocating helper: the helper
	// is scanned once (first chain wins), so exactly one finding.
	pkgs := checkFixtureModule(t, fixtureSrc{path: "fix/hot", src: `package hot

//lint:hotpath test fixture
func rootA() {
	leaf()
}

//lint:hotpath test fixture
func rootB() {
	leaf()
}

func leaf() {
	_ = make([]int, 4)
}
`})
	got := moduleFindings(t, HotPath, pkgs)
	if len(got) != 1 {
		t.Fatalf("got %d hotpath findings, want 1 (helper scanned once):\n%s", len(got), renderFindings(got))
	}
}
