package obs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// histStripes is the number of independently locked shards an Observe
// can land on. Power of two so the stripe pick is a mask. Eight stripes
// keep a 64-GPU runtime's load workers from serializing on one mutex
// while the per-stripe state stays cache-resident.
const histStripes = 8

// Histogram is a concurrent latency histogram: fixed bucket upper
// bounds shared across histStripes lock-striped shards, each shard a
// stats.Histogram (the same binning that backs the offline Fig. 4 /
// Fig. 8c analysis) plus a running sum for the Prometheus _sum series.
// Observe picks a stripe round-robin with one relaxed atomic add, takes
// only that stripe's mutex, and allocates nothing.
type Histogram struct {
	en     *atomic.Bool
	bounds []float64 // bucket upper bounds (le), strictly increasing
	next   atomic.Uint64
	shards [histStripes]histShard
}

type histShard struct {
	mu  sync.Mutex
	h   *stats.Histogram
	sum float64
	// pad the shard to a 64-byte cache line so neighboring stripes do
	// not false-share under concurrent Observe.
	_ [40]byte
}

// newHistogram builds the striped histogram; bounds must be strictly
// increasing and non-empty. Panics on misuse (registration-time code).
func newHistogram(en *atomic.Bool, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	// stats.Histogram bins are [edge[i], edge[i+1]); prepending edge 0
	// makes bin i count observations in (prev bound, bounds[i]], with
	// Underflow catching v < 0 and Overflow the +Inf bucket.
	edges := make([]float64, 0, len(bounds)+1)
	edges = append(edges, 0)
	edges = append(edges, bounds...)
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{en: en, bounds: b}
	for i := range h.shards {
		sh, err := stats.NewHistogram(edges)
		if err != nil {
			panic(fmt.Sprintf("obs: histogram bounds %v: %v", bounds, err))
		}
		h.shards[i].h = sh
	}
	return h
}

// On reports whether observations are currently being recorded — the
// cheap pre-check hot paths use to skip the clock reads that feed
// Observe.
func (h *Histogram) On() bool { return h != nil && h.en.Load() }

// Observe records one value (typically seconds). Allocation-free;
// no-op when nil or disabled.
//
//lint:hotpath recording must stay allocation-free (BENCH_obs.json asserts 0 allocs/op)
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.en.Load() {
		return
	}
	sh := &h.shards[h.next.Add(1)&(histStripes-1)]
	sh.mu.Lock()
	sh.h.Add(v)
	sh.sum += v
	sh.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		n += uint64(sh.h.Total())
		sh.mu.Unlock()
	}
	return n
}

// snapshot aggregates the stripes: cumulative counts per bound
// (cum[i] = observations <= bounds[i], Prometheus le semantics with
// negative observations clamped into the first bucket), the +Inf total,
// and the running sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.bounds))
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		running := uint64(sh.h.Underflow()) // v < 0: clamp into bucket 0
		for b := 0; b < sh.h.Bins(); b++ {
			_, _, c := sh.h.Bin(b)
			running += uint64(c)
			cum[b] += running
		}
		count += uint64(sh.h.Total())
		sum += sh.sum
		sh.mu.Unlock()
	}
	return cum, count, sum
}

// Quantile estimates the q-quantile (0 < q < 1) of the recorded
// distribution by linear interpolation inside the bucket that crosses
// the target rank — Prometheus histogram_quantile semantics, so
// /metrics consumers and in-process callers (the kv overload benchmark,
// the p999 gauges) agree on the same tail numbers. Returns 0 with no
// observations; ranks landing in the +Inf bucket clamp to the last
// bound. The estimate's resolution is the bucket width, so tails
// asserted against it need buckets finer than the contrast measured.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum, count, _ := h.snapshot()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	prevCum := uint64(0)
	prevBound := 0.0
	for i, c := range cum {
		if float64(c) >= rank {
			binCount := c - prevCum
			lower, upper := prevBound, h.bounds[i]
			if binCount == 0 {
				return upper
			}
			frac := (rank - float64(prevCum)) / float64(binCount)
			return lower + (upper-lower)*frac
		}
		prevCum = c
		prevBound = h.bounds[i]
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n geometrically spaced bucket bounds from lo to hi
// (inclusive), the natural binning for latencies spanning orders of
// magnitude. Built on stats.NewLogHistogram so the edge math matches
// the offline reuse-distance histograms. Panics on invalid shape
// (registration-time code).
func ExpBuckets(lo, hi float64, n int) []float64 {
	h, err := stats.NewLogHistogram(lo, hi, n)
	if err != nil {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d): %v", lo, hi, n, err))
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		_, upper, _ := h.Bin(i)
		out[i] = upper
	}
	return out
}

// LatencyBuckets is the default latency binning: 1µs to 10s over 24
// geometric buckets, wide enough for both an in-memory cache hit and a
// stalled PFS read under failure-injection backoff.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 10, 24) }
