package lint

import (
	"strings"
	"testing"
)

func TestAllowDirectiveMissingJustification(t *testing.T) {
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"
//lint:allow determinism
func Stamp() time.Time { return time.Now() }
`)
	fs := Run([]*Package{p}, Analyzers())
	var directive, determinism int
	for _, f := range fs {
		switch f.Check {
		case "directive":
			directive++
			if !strings.Contains(f.Message, "no justification") {
				t.Fatalf("unexpected directive message: %s", f.Message)
			}
		case "determinism":
			determinism++
		}
	}
	if directive != 1 {
		t.Fatalf("want 1 directive finding, got %d:\n%s", directive, renderFindings(fs))
	}
	// A malformed directive must not suppress the underlying finding.
	if determinism != 1 {
		t.Fatalf("want 1 determinism finding (directive is void), got %d:\n%s", determinism, renderFindings(fs))
	}
}

func TestAllowDirectiveNoCheckID(t *testing.T) {
	p := checkFixture(t, "repro/internal/sim", `package sim
//lint:allow
func F() {}
`)
	fs := Run([]*Package{p}, Analyzers())
	if len(fs) != 1 || fs[0].Check != "directive" {
		t.Fatalf("want exactly one directive finding, got:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveScopedToCheck(t *testing.T) {
	// The directive names errcheck, so the determinism finding on the
	// same line must survive.
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"
//lint:allow errcheck wrong check named here
func Stamp() time.Time { return time.Now() }
`)
	fs := Run([]*Package{p}, Analyzers())
	found := false
	for _, f := range fs {
		if f.Check == "determinism" {
			found = true
		}
	}
	if !found {
		t.Fatalf("determinism finding should survive an errcheck allow:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveEndOfLine(t *testing.T) {
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"
func Stamp() time.Time { return time.Now() } //lint:allow determinism calibration-only helper
`)
	if fs := Run([]*Package{p}, Analyzers()); len(fs) != 0 {
		t.Fatalf("end-of-line allow should suppress:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveStale(t *testing.T) {
	// The directive names a check that ran over the file but had nothing
	// to suppress: the directive itself becomes the finding.
	p := checkFixture(t, "repro/internal/sim", `package sim
//lint:allow determinism left over from a deleted time.Now call
func F() int { return 1 }
`)
	fs := Run([]*Package{p}, Analyzers())
	if len(fs) != 1 || fs[0].Check != "directive" ||
		!strings.Contains(fs[0].Message, "suppresses nothing") {
		t.Fatalf("want one stale-directive finding, got:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveUnknownCheck(t *testing.T) {
	p := checkFixture(t, "repro/internal/sim", `package sim
//lint:allow nosuchcheck typo in the id
func F() int { return 1 }
`)
	fs := Run([]*Package{p}, Analyzers())
	if len(fs) != 1 || fs[0].Check != "directive" ||
		!strings.Contains(fs[0].Message, "unknown check nosuchcheck") {
		t.Fatalf("want one unknown-check finding, got:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveNotStaleForUnranCheck(t *testing.T) {
	// Running a single analyzer must not declare directives for other
	// (known) checks stale: fixture tests and partial runs would drown
	// in noise otherwise.
	p := checkFixture(t, "repro/internal/sim", `package sim
//lint:allow errcheck held for a check this run does not include
func F() int { return 1 }
`)
	fs := Run([]*Package{p}, []*Analyzer{Determinism})
	if len(fs) != 0 {
		t.Fatalf("partial run flagged a directive for an unran check:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveProdOnlyCheckInTestFile(t *testing.T) {
	// determinism does not run on test files, so a determinism allow in
	// a _test.go file can never fire; it must be reported as stale with
	// a message explaining why.
	p := checkFixtureWithTest(t, "repro/internal/sim", `package sim

func F() int { return 1 }
`, `package sim

//lint:allow determinism tests may use wall time
func helper() int { return F() }
`)
	fs := Run([]*Package{p}, Analyzers())
	if len(fs) != 1 || fs[0].Check != "directive" ||
		!strings.Contains(fs[0].Message, "does not run on test files") {
		t.Fatalf("want one test-file stale finding, got:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveUsedInTestFileNotStale(t *testing.T) {
	// goroutine DOES run on test files; a used allow there is not stale.
	p := checkFixtureWithTest(t, "repro/internal/sim", `package sim

func F() int { return 1 }
`, `package sim

func spawn() {
	//lint:allow goroutine fixture goroutine is intentionally unbounded
	go func() {
		for {
		}
	}()
}
`)
	fs := Run([]*Package{p}, Analyzers())
	if len(fs) != 0 {
		t.Fatalf("used test-file allow reported findings:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveMultiLineStatement(t *testing.T) {
	// The directive covers its own line and the line directly below.
	// A multi-line statement whose finding position lands on that next
	// line is suppressed...
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"

//lint:allow determinism calibration-only helper
var T = time.
	Now()
`)
	if fs := Run([]*Package{p}, Analyzers()); len(fs) != 0 {
		t.Fatalf("directive above a wrapped statement should suppress:\n%s", renderFindings(fs))
	}
}

func TestAllowDirectiveDoesNotReachDeepIntoStatement(t *testing.T) {
	// ...but a finding two or more lines below the directive is out of
	// range: the offending call must carry its own (end-of-line) allow.
	// The out-of-range directive is then itself stale.
	p := checkFixture(t, "repro/internal/sim", `package sim
import "time"

func wrap(_ int, t time.Time) time.Time { return t }

//lint:allow determinism too far from the call to cover it
var T = wrap(
	0,
	time.Now())
`)
	fs := Run([]*Package{p}, Analyzers())
	var determinism, stale int
	for _, f := range fs {
		switch {
		case f.Check == "determinism":
			determinism++
		case f.Check == "directive" && strings.Contains(f.Message, "suppresses nothing"):
			stale++
		}
	}
	if determinism != 1 || stale != 1 {
		t.Fatalf("want 1 determinism + 1 stale finding, got:\n%s", renderFindings(fs))
	}
}
