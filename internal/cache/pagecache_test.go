package cache

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestPageCacheName(t *testing.T) {
	if NewPageCache().Name() != "page-cache" {
		t.Fatal("wrong name")
	}
}

func TestPageCacheProbationLRUVictim(t *testing.T) {
	c := mustCache(t, 30, NewPageCache())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Put(3, 10, 2)
	// No hits: all probationary; the OLDEST (1) is the victim.
	ev, ok := c.Put(4, 10, 3)
	if !ok || len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
}

func TestPageCachePromotionProtects(t *testing.T) {
	c := mustCache(t, 30, NewPageCache())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Put(3, 10, 2)
	c.Get(1, 3) // promote 1 to protected
	// Capacity pressure evicts probation (2, then 3) before touching 1.
	ev, _ := c.Put(4, 10, 4)
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2]", ev)
	}
	ev, _ = c.Put(5, 10, 5)
	if len(ev) != 1 || ev[0] != 3 {
		t.Fatalf("evicted %v, want [3]", ev)
	}
	if !c.Contains(1) {
		t.Fatal("protected sample evicted while probation had victims")
	}
}

func TestPageCacheProtectedEvictedWhenProbationEmpty(t *testing.T) {
	c := mustCache(t, 20, NewPageCache())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Get(1, 2)
	c.Get(2, 3) // both protected, probation empty
	ev, ok := c.Put(3, 10, 4)
	if !ok || len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1] (protected LRU)", ev)
	}
}

func TestPageCacheProtectedShareBounded(t *testing.T) {
	// With the 6/8 share, promoting everything must demote the protected
	// tail back to probation so the segment stays within its bound.
	c := mustCache(t, 80, NewPageCache())
	for id := dataset.SampleID(1); id <= 8; id++ {
		c.Put(id, 10, Iter(id))
	}
	for id := dataset.SampleID(1); id <= 8; id++ {
		c.Get(id, Iter(10+id)) // promote all 8
	}
	// Protected cap = 6/8 of 8 entries = 6, so two were demoted back to
	// probation; capacity pressure must evict a demoted (probationary)
	// entry, not the most-recently-promoted one.
	ev, ok := c.Put(9, 10, 20)
	if !ok || len(ev) != 1 {
		t.Fatalf("evicted %v", ev)
	}
	if ev[0] == 8 || ev[0] == 7 {
		t.Fatalf("evicted recently promoted %d; share bound not enforced", ev[0])
	}
}

func TestPageCacheRemoveFromBothSegments(t *testing.T) {
	c := mustCache(t, 40, NewPageCache())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Get(1, 2) // protected
	if !c.Remove(1) || !c.Remove(2) {
		t.Fatal("remove failed")
	}
	if c.Len() != 0 {
		t.Fatal("entries left after removal")
	}
	// Reinsert must work cleanly after removal.
	if _, ok := c.Put(1, 10, 3); !ok {
		t.Fatal("reinsert after remove failed")
	}
}

func TestPageCacheDuplicatePutTouches(t *testing.T) {
	p := NewPageCache().(*pageCache)
	p.OnPut(1, 0)
	p.OnPut(2, 1)
	p.OnPut(1, 2) // duplicate: acts as a reference -> promotion
	if !p.protected.contains(1) {
		t.Fatal("duplicate OnPut did not promote")
	}
}

// TestPageCacheEpochReuseConvergence is the behavioural contract behind
// the PyTorch baseline's measured hit ratio: under epoch-period reuse the
// policy converges to a stable protected set of roughly the protected
// share of the cache, unlike plain LRU (whose hit ratio collapses to
// ~(cache fraction)^2/2).
func TestPageCacheEpochReuseConvergence(t *testing.T) {
	const nSamples = 3000
	const cacheFrac = 0.3
	capacity := int64(nSamples * cacheFrac)

	run := func(p Policy) float64 {
		c, err := New(capacity, p)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(7)
		var lateHits, lateLookups uint64
		const epochs = 30
		for epoch := 0; epoch < epochs; epoch++ {
			perm := rng.Perm(nSamples)
			for i, idx := range perm {
				now := Iter(epoch*nSamples + i)
				id := dataset.SampleID(idx)
				hit := c.Get(id, now)
				if !hit {
					c.Put(id, 1, now)
				}
				if epoch >= epochs/2 {
					lateLookups++
					if hit {
						lateHits++
					}
				}
			}
		}
		return float64(lateHits) / float64(lateLookups)
	}

	pc := run(NewPageCache())
	lru := run(NewLRU())
	t.Logf("steady-state hit ratios: page-cache %.3f, lru %.3f", pc, lru)
	if pc < 0.15 {
		t.Fatalf("page-cache steady hit %.3f; expected a stable protected set near 0.75*%.2f", pc, cacheFrac)
	}
	if pc < 3*lru {
		t.Fatalf("page-cache (%.3f) not clearly above LRU (%.3f) under epoch reuse", pc, lru)
	}
}
