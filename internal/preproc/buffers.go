package preproc

import (
	"math/bits"
	"sync"
	"unsafe"
)

// Size-classed pools for the two per-sample buffers on the data path:
// raw payload bytes (loading thread -> preprocessing input) and decoded
// Tensors (preprocessing output -> training loop). Classes are powers
// of two by capacity; Get draws from the smallest class that fits and
// every pooled buffer is allocated at exactly its class capacity, so a
// recycled buffer always satisfies the class it is filed under.
//
// Ownership rules (DESIGN.md §12): a buffer may be recycled only by the
// party that holds its sole reference. Payloads the node cache retained
// — and payloads fetched from a peer cache, which the peer still
// references — must never be recycled; the loading path marks the
// exclusively-owned ones with Job.Owned and the preprocessing worker
// recycles those after decode. Tensors are owned by the training loop
// once delivered; it returns them with PutTensor after consuming the
// batch.

// numSizeClasses covers buffers up to 2^27 = 128 MiB; anything larger
// falls through to the garbage collector.
const numSizeClasses = 28

var (
	payloadPools [numSizeClasses]sync.Pool // of *byte (class-capacity arrays)
	tensorPools  [numSizeClasses]sync.Pool // of *Tensor (class-capacity Data)
)

// sizeClass returns the pool index whose capacity (1<<class) is the
// smallest power of two >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// capClass returns the class a capacity files under, or -1 when the
// capacity is not an exact class size (only class-sized buffers are
// poolable; anything else is left to the garbage collector).
func capClass(c int) int {
	if c <= 0 || c&(c-1) != 0 {
		return -1
	}
	k := bits.Len(uint(c)) - 1
	if k >= numSizeClasses {
		return -1
	}
	return k
}

// GetPayloadBuf leases a payload buffer of length n from the
// size-classed pool. The buffer's contents are arbitrary; callers
// overwrite every byte (dataset.FillPayload, wire decode).
func GetPayloadBuf(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c < numSizeClasses {
		if v := payloadPools[c].Get(); v != nil {
			// Pooled as a *byte to keep the pool's interface word
			// pointer-shaped (no allocation on Put); the class invariant
			// restores len and cap.
			return unsafe.Slice(v.(*byte), 1<<c)[:n]
		}
		return make([]byte, n, 1<<c)
	}
	return make([]byte, n)
}

// PutPayloadBuf recycles a payload buffer previously leased from
// GetPayloadBuf. The caller must hold the buffer's only reference; its
// contents become invalid immediately. Buffers whose capacity is not an
// exact class size are dropped for the GC.
func PutPayloadBuf(b []byte) {
	k := capClass(cap(b))
	if k < 0 {
		return
	}
	payloadPools[k].Put(unsafe.SliceData(b[:1]))
}

// getTensor leases a tensor whose Data has length n, drawing from the
// size-classed pool when a recycled tensor of the right class exists.
func getTensor(n int) *Tensor {
	c := sizeClass(n)
	if c < numSizeClasses {
		if v := tensorPools[c].Get(); v != nil {
			t := v.(*Tensor)
			t.Data = t.Data[:n]
			return t
		}
		return &Tensor{Data: make([]float32, n, 1<<c)}
	}
	return &Tensor{Data: make([]float32, n)}
}

// PutTensor returns a decoded tensor to the size-classed pool for
// reuse. The caller must be done with the tensor — its ID, Checksum and
// Data become invalid immediately. Tensors whose Data capacity is not
// an exact class size (or nil tensors) are dropped for the GC.
func PutTensor(t *Tensor) {
	if t == nil {
		return
	}
	if capClass(cap(t.Data)) < 0 {
		return
	}
	tensorPools[capClass(cap(t.Data))].Put(t)
}
