package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestBenchChaosJSON is the chaos-recovery recording harness behind
// `make bench-chaos`.
//
// Default (no env) it is a CI-safe smoke test over the committed
// BENCH_chaos.json: the env section is present, the
// straggler/brownout/nodeloss scenarios are all recorded as passed with
// non-empty event logs, and every scenario verified all its samples.
//
// With LOBSTER_BENCH_CHAOS=tiny it additionally runs the scenario
// suite live at tiny scale with the structural recovery criteria — the
// verify.sh gate. With LOBSTER_BENCH_CHAOS=1 it runs the full-scale
// suite with the wall-clock criteria (degradation observed, bounded
// recovery time) and rewrites BENCH_chaos.json at the repository root.
func TestBenchChaosJSON(t *testing.T) {
	switch os.Getenv("LOBSTER_BENCH_CHAOS") {
	case "":
		benchChaosSmoke(t)
	case "tiny":
		benchChaosSmoke(t)
		benchChaosMeasure(t, false)
	default:
		benchChaosMeasure(t, true)
	}
}

// chaosBenchFile is the schema of BENCH_chaos.json.
type chaosBenchFile struct {
	Generated string `json:"generated"`
	Scale     string `json:"scale"`
	Note      string `json:"note"`
	Env       struct {
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"env"`
	Scenarios []experiments.ChaosResult `json:"scenarios"`
	Headline  struct {
		ScenariosPassed int  `json:"scenarios_passed"`
		ScenariosTotal  int  `json:"scenarios_total"`
		AllPassed       bool `json:"all_passed"`
	} `json:"headline"`
}

func benchChaosSmoke(t *testing.T) {
	root, err := simRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(root, "BENCH_chaos.json"))
	if err != nil {
		t.Fatalf("BENCH_chaos.json missing (regenerate with `make bench-chaos`): %v", err)
	}
	var f chaosBenchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatalf("BENCH_chaos.json does not parse: %v", err)
	}
	if f.Generated == "" || f.Scale == "" {
		t.Fatalf("BENCH_chaos.json header incomplete: %+v", f)
	}
	if f.Env.GoVersion == "" || f.Env.NumCPU < 1 || f.Env.GOMAXPROCS < 1 || f.Env.GOOS == "" || f.Env.GOARCH == "" {
		t.Fatalf("BENCH_chaos.json env section incomplete: %+v", f.Env)
	}
	seen := map[string]bool{}
	for _, s := range f.Scenarios {
		seen[s.Name] = true
		if !s.Passed {
			t.Fatalf("committed scenario %s is recorded as failed:\n  %s",
				s.Name, strings.Join(s.Criteria, "\n  "))
		}
		if len(s.EventLog) == 0 || len(s.Criteria) == 0 {
			t.Fatalf("scenario %s missing event log or criteria", s.Name)
		}
		if s.SamplesExpected == 0 || s.SamplesVerified != s.SamplesExpected {
			t.Fatalf("scenario %s verified %d/%d samples", s.Name, s.SamplesVerified, s.SamplesExpected)
		}
		if s.Injected == 0 || s.Reverted != s.Injected {
			t.Fatalf("scenario %s: injected=%d reverted=%d", s.Name, s.Injected, s.Reverted)
		}
		if s.Iterations <= 0 || s.DegradedIters <= 0 {
			t.Fatalf("scenario %s has a degenerate run: %+v", s.Name, s)
		}
		if s.RecoveryIters < 0 || s.RecoveryIters > s.Iterations {
			t.Fatalf("scenario %s recovery_iters %d out of range", s.Name, s.RecoveryIters)
		}
	}
	for _, want := range []string{"straggler", "brownout", "nodeloss"} {
		if !seen[want] {
			t.Fatalf("BENCH_chaos.json missing the %s scenario", want)
		}
	}
	if !f.Headline.AllPassed || f.Headline.ScenariosPassed != f.Headline.ScenariosTotal ||
		f.Headline.ScenariosTotal != len(f.Scenarios) {
		t.Fatalf("headline inconsistent: %+v over %d scenarios", f.Headline, len(f.Scenarios))
	}
}

func benchChaosMeasure(t *testing.T, full bool) {
	p := experiments.ChaosParams{Seed: 42}
	scale := "tiny"
	if full {
		// Longer runs make the wall-clock criteria (degradation, bounded
		// recovery) meaningful; Strict gates on them.
		p.Samples, p.Epochs, p.Strict = 512, 6, true
		scale = "full"
	}
	results, err := experiments.ChaosScenarios(p)
	if err != nil {
		t.Fatal(err)
	}
	passed := 0
	for _, r := range results {
		if r.Passed {
			passed++
		} else {
			t.Errorf("scenario %s failed recovery:\n  %s", r.Name, strings.Join(r.Criteria, "\n  "))
		}
		t.Logf("%-10s passed=%-5v failovers=%-4d retries=%-4d degraded=%-3d recovery=%-3d degradation=%+.1f%%",
			r.Name, r.Passed, r.Failovers, r.PFSRetries, r.DegradedIters, r.RecoveryIters, r.DegradationPct)
	}
	if !full {
		return
	}
	if passed != len(results) {
		t.Fatalf("%d/%d scenarios passed; not committing BENCH_chaos.json", passed, len(results))
	}

	var out chaosBenchFile
	out.Generated = time.Now().UTC().Format(time.RFC3339)
	out.Scale = scale
	out.Note = fmt.Sprintf("each scenario runs the online runtime (2 nodes x 2 GPUs, %d samples, batch 8, "+
		"%d epochs, Lobster dynamic strategy) under a seeded chaos schedule; verdicts combine structural "+
		"criteria (all samples verified, faults reverted, failovers/retries observed) with wall-clock "+
		"criteria (throughput degradation during the fault window, recovery within a bounded number of "+
		"iterations after the last revert)", p.Samples, p.Epochs)
	out.Env.GoVersion = goruntime.Version()
	out.Env.GOOS = goruntime.GOOS
	out.Env.GOARCH = goruntime.GOARCH
	out.Env.NumCPU = goruntime.NumCPU()
	out.Env.GOMAXPROCS = goruntime.GOMAXPROCS(0)
	out.Scenarios = results
	out.Headline.ScenariosPassed = passed
	out.Headline.ScenariosTotal = len(results)
	out.Headline.AllPassed = true

	root, err := simRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "BENCH_chaos.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
