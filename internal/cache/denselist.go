package cache

import "repro/internal/dataset"

// Sample IDs are dense and non-negative (dataset.SampleID indexes
// [0, Len)), so policy state can live in flat slices indexed by id instead
// of maps and pointer-linked nodes. Negative values are free to act as
// sentinels.
const (
	listEnd   int32 = -1 // no neighbour in this direction
	notInList int32 = -2 // id is not in the list at all
)

// grown returns s extended to cover index idx, filling new slots with
// fill. Growth at least doubles, so per-id amortized cost is O(1).
func grown[T any](s []T, idx int, fill T) []T {
	old := len(s)
	if idx < old {
		return s
	}
	need := idx + 1
	if need < 2*old {
		need = 2 * old
	}
	//lint:allow hotpath amortized doubling growth: O(1) per id, and flat after the warm-up pass over the dataset
	ns := make([]T, need)
	copy(ns, s)
	for i := old; i < need; i++ {
		ns[i] = fill
	}
	return ns
}

// denseList is a doubly-linked recency list over dense sample IDs, backed
// by flat prev/next slices instead of container/list nodes: push, remove
// and move-to-front touch a couple of int32 slots and never allocate
// (beyond amortized growth to the largest id seen). Every list-based
// policy (LRU, FIFO, NoPFS's fallback order, the segmented page cache)
// performs one of these operations per cache access, which made
// container/list's per-entry node allocation the single largest source of
// per-iteration garbage in the simulator.
type denseList struct {
	prev, next []int32 // prev[id] == notInList => id absent from this list
	head, tail int32
	n          int
}

func newDenseList() *denseList { return &denseList{head: listEnd, tail: listEnd} }

func (l *denseList) len() int { return l.n }

//lint:hotpath one list op per simulated cache access; allocation here was the top source of per-iteration garbage
func (l *denseList) contains(id dataset.SampleID) bool {
	return uint(id) < uint(len(l.prev)) && l.prev[id] != notInList
}

// pushFront inserts id at the most-recent end. id must not be in the list.
//
//lint:hotpath one list op per simulated cache access; allocation here was the top source of per-iteration garbage
func (l *denseList) pushFront(id dataset.SampleID) {
	if int(id) >= len(l.prev) {
		l.prev = grown(l.prev, int(id), notInList)
		l.next = grown(l.next, int(id), notInList)
	}
	i := int32(id)
	l.prev[i] = listEnd
	l.next[i] = l.head
	if l.head != listEnd {
		l.prev[l.head] = i
	} else {
		l.tail = i
	}
	l.head = i
	l.n++
}

// remove unlinks id. id must be in the list.
//
//lint:hotpath one list op per simulated cache access; allocation here was the top source of per-iteration garbage
func (l *denseList) remove(id dataset.SampleID) {
	i := int32(id)
	p, nx := l.prev[i], l.next[i]
	if p != listEnd {
		l.next[p] = nx
	} else {
		l.head = nx
	}
	if nx != listEnd {
		l.prev[nx] = p
	} else {
		l.tail = p
	}
	l.prev[i] = notInList
	l.next[i] = notInList
	l.n--
}

// moveToFront promotes an id already in the list to the most-recent end.
//
//lint:hotpath one list op per simulated cache access; allocation here was the top source of per-iteration garbage
func (l *denseList) moveToFront(id dataset.SampleID) {
	if l.head == int32(id) {
		return
	}
	l.remove(id)
	l.pushFront(id)
}

// back returns the least-recent id, if any.
//
//lint:hotpath one list op per simulated cache access; allocation here was the top source of per-iteration garbage
func (l *denseList) back() (dataset.SampleID, bool) {
	if l.tail == listEnd {
		return NoSample, false
	}
	return dataset.SampleID(l.tail), true
}
