package cache

import (
	"repro/internal/dataset"
)

// NoAccess mirrors access.NoAccess: the sample is never used again.
const NoAccess Iter = -1

// farFuture is the heap key for samples never accessed again; larger than
// any real iteration index.
const farFuture Iter = 1 << 30

// Oracle exposes the future-access knowledge a clairvoyant policy needs.
// access.Plan satisfies it.
type Oracle interface {
	// NextUse returns the first iteration strictly after `after` at which
	// this node accesses the sample, or NoAccess.
	NextUse(id dataset.SampleID, after Iter) Iter
	// UsesRemaining returns the number of accesses strictly after `after`.
	UsesRemaining(id dataset.SampleID, after Iter) int
	// IterationsPerEpoch returns I.
	IterationsPerEpoch() int
}

// heapEntry is one (id, nextUse, version) record in the lazy max-heap.
// Stale entries (older versions of an id, or removed ids) are skipped at
// pop time.
type heapEntry struct {
	id  dataset.SampleID
	key Iter
	ver uint32
}

// plannedPolicy is the clairvoyant machinery shared by Belady and Lobster:
// it tracks, for every cached sample, its next use according to the oracle
// and can evict the sample whose next use is farthest away, refusing to
// evict anything needed sooner than the incoming sample (the "prioritize
// the prefetches with the nearest reuse distance" rule).
//
// All per-sample state is slice-indexed by the dense id — vers[id] == 0
// means "not cached" and live versions start at 1 — and the max-heap is
// hand-rolled over []heapEntry, so the one-push-per-access hot path does
// not allocate (container/heap's any-boxed Push was the top allocation
// site of a simulated iteration).
type plannedPolicy struct {
	name   string
	oracle Oracle
	h      []heapEntry
	vers   []uint32 // per dense id; 0 = absent, live versions start at 1

	// Lobster-specific features, disabled for plain Belady.
	reuseCountRule    bool
	reuseDistanceRule bool
	isLastCopy        func(dataset.SampleID) bool
	expired           []dataset.SampleID
	expiredSet        []bool // per dense id
}

// NewBelady returns the clairvoyant OPT policy: evict the cached sample
// with the farthest next use; refuse inserts whose own next use is the
// farthest. It is the hit-ratio upper bound used in tests and ablations.
func NewBelady(oracle Oracle) Policy {
	return &plannedPolicy{
		name:   "belady",
		oracle: oracle,
	}
}

// LobsterOptions configures the Lobster eviction policy.
type LobsterOptions struct {
	// IsLastCopy, when non-nil, protects the last cached copy of a sample
	// in the node group from reuse-count eviction ("unless no other node
	// in the group holds a copy", Section 4.4).
	IsLastCopy func(dataset.SampleID) bool
	// DisableReuseCount and DisableReuseDistance switch off the
	// corresponding sub-policy (for ablations).
	DisableReuseCount    bool
	DisableReuseDistance bool
}

// NewLobster returns the paper's eviction policy: the Belady-style
// farthest-next-use victim selection coordinated with prefetching, plus the
// two proactive sub-policies of Section 4.4 (reuse count, reuse distance).
func NewLobster(oracle Oracle, opts LobsterOptions) Policy {
	return &plannedPolicy{
		name:              "lobster",
		oracle:            oracle,
		reuseCountRule:    !opts.DisableReuseCount,
		reuseDistanceRule: !opts.DisableReuseDistance,
		isLastCopy:        opts.IsLastCopy,
	}
}

func (p *plannedPolicy) Name() string { return p.name }

func (p *plannedPolicy) push(id dataset.SampleID, now Iter) {
	next := p.oracle.NextUse(id, now)
	key := next
	if next == NoAccess {
		key = farFuture
	}
	if int(id) >= len(p.vers) {
		p.vers = grown(p.vers, int(id), 0)
		p.expiredSet = grown(p.expiredSet, int(id), false)
	}
	v := p.vers[id] + 1
	p.vers[id] = v
	p.heapPush(heapEntry{id: id, key: key, ver: v})
}

// heapPush and heapPop implement the standard binary max-heap sift (the
// same comparison and child-selection order as container/heap with
// Less(i,j) = key_i > key_j), minus the interface boxing.

//lint:hotpath one heap op per simulated cache access; container/heap's interface boxing was why this heap is hand-rolled
func (p *plannedPolicy) heapPush(e heapEntry) {
	//lint:allow hotpath amortized doubling growth: O(1) per push, and flat once the heap reaches the cache's working-set size
	p.h = append(p.h, e)
	j := len(p.h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if p.h[i].key >= p.h[j].key {
			break
		}
		p.h[i], p.h[j] = p.h[j], p.h[i]
		j = i
	}
}

//lint:hotpath one heap op per simulated cache access; container/heap's interface boxing was why this heap is hand-rolled
func (p *plannedPolicy) heapPop() {
	n := len(p.h) - 1
	p.h[0], p.h[n] = p.h[n], p.h[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && p.h[j2].key > p.h[j].key {
			j = j2
		}
		if p.h[j].key <= p.h[i].key {
			break
		}
		p.h[i], p.h[j] = p.h[j], p.h[i]
		i = j
	}
	p.h = p.h[:n]
}

func (p *plannedPolicy) OnPut(id dataset.SampleID, now Iter) {
	p.push(id, now)
	p.applyRules(id, now)
}

func (p *plannedPolicy) OnGet(id dataset.SampleID, now Iter) {
	// The access at `now` just happened; the relevant key is the use
	// after it.
	p.push(id, now)
	p.applyRules(id, now)
}

// applyRules queues proactive evictions per the Lobster sub-policies.
// Checks run when a sample is touched — the only moments its future
// changes — so the cost is O(1) per access. push has already grown the
// per-id slices to cover id.
func (p *plannedPolicy) applyRules(id dataset.SampleID, now Iter) {
	if !p.reuseCountRule && !p.reuseDistanceRule {
		return
	}
	if p.expiredSet[id] {
		return
	}
	// Reuse count rule: no accesses left on this node => evict, unless
	// this is the group's last copy.
	if p.reuseCountRule && p.oracle.UsesRemaining(id, now) == 0 {
		if p.isLastCopy == nil || !p.isLastCopy(id) {
			p.expiredSet[id] = true
			p.expired = append(p.expired, id)
		}
		return
	}
	// Reuse distance rule: next use beyond the end of the next epoch
	// (distance > 2I - h, h = position within the current epoch) => the
	// sample is safe to drop to make room for prefetches.
	if p.reuseDistanceRule {
		next := p.oracle.NextUse(id, now)
		if next == NoAccess {
			return // handled by the count rule when enabled
		}
		iters := Iter(p.oracle.IterationsPerEpoch())
		h := now % iters
		if next-now > 2*iters-h {
			p.expiredSet[id] = true
			p.expired = append(p.expired, id)
		}
	}
}

func (p *plannedPolicy) OnRemove(id dataset.SampleID) {
	if int(id) < len(p.vers) {
		p.vers[id] = 0
		p.expiredSet[id] = false
	}
	// Heap entries become stale and are skipped lazily.
}

func (p *plannedPolicy) Victim(now Iter, incoming dataset.SampleID) (dataset.SampleID, bool) {
	top, ok := p.peek()
	if !ok {
		return NoSample, false
	}
	if incoming != NoSample {
		inKey := p.oracle.NextUse(incoming, now)
		if inKey == NoAccess {
			inKey = farFuture
		}
		// Never evict something needed sooner than (or when) the incoming
		// sample is: rejecting the insert wastes less cache.
		if top.key <= inKey {
			return NoSample, false
		}
	}
	return top.id, true
}

// peek returns the live max entry without removing it, discarding stale
// heap entries on the way.
//
//lint:hotpath called once per eviction decision inside the simulated access loop
func (p *plannedPolicy) peek() (heapEntry, bool) {
	for len(p.h) > 0 {
		top := p.h[0]
		if v := p.vers[top.id]; v != 0 && v == top.ver {
			return top, true
		}
		p.heapPop() // stale
	}
	return heapEntry{}, false
}

func (p *plannedPolicy) DrainExpired(_ Iter, emit func(dataset.SampleID)) {
	for _, id := range p.expired {
		if p.expiredSet[id] {
			emit(id) // cache calls OnRemove, clearing expiredSet
		}
	}
	p.expired = p.expired[:0]
}

// nopfsPolicy models the NoPFS eviction: clairvoyant prefetching upstream,
// but "a simpler cache eviction policy" — it drops samples that are fully
// consumed (reuse count zero, without last-copy protection) and otherwise
// falls back to LRU order. It cannot "immediately evict data samples with
// long reuse distances" (Section 6), which is exactly the gap Lobster's
// reuse-distance rule closes.
type nopfsPolicy struct {
	lru        *lruPolicy
	oracle     Oracle
	expired    []dataset.SampleID
	expiredSet []bool // per dense id
}

// NewNoPFS returns the NoPFS-style eviction policy.
func NewNoPFS(oracle Oracle) Policy {
	return &nopfsPolicy{
		lru:    NewLRU().(*lruPolicy),
		oracle: oracle,
	}
}

func (p *nopfsPolicy) Name() string { return "nopfs" }

func (p *nopfsPolicy) OnPut(id dataset.SampleID, now Iter) {
	p.lru.OnPut(id, now)
	p.check(id, now)
}

func (p *nopfsPolicy) OnGet(id dataset.SampleID, now Iter) {
	p.lru.OnGet(id, now)
	p.check(id, now)
}

func (p *nopfsPolicy) check(id dataset.SampleID, now Iter) {
	if int(id) >= len(p.expiredSet) {
		p.expiredSet = grown(p.expiredSet, int(id), false)
	}
	if !p.expiredSet[id] && p.oracle.UsesRemaining(id, now) == 0 {
		p.expiredSet[id] = true
		p.expired = append(p.expired, id)
	}
}

func (p *nopfsPolicy) OnRemove(id dataset.SampleID) {
	p.lru.OnRemove(id)
	if int(id) < len(p.expiredSet) {
		p.expiredSet[id] = false
	}
}

func (p *nopfsPolicy) Victim(now Iter, incoming dataset.SampleID) (dataset.SampleID, bool) {
	return p.lru.Victim(now, incoming)
}

func (p *nopfsPolicy) DrainExpired(_ Iter, emit func(dataset.SampleID)) {
	for _, id := range p.expired {
		if p.expiredSet[id] {
			emit(id)
		}
	}
	p.expired = p.expired[:0]
}
