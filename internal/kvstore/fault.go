package kvstore

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// FaultOps selects which data ops a FaultConfig applies to. Zero means
// all data ops; opStats is always exempt so monitoring survives chaos.
type FaultOps uint8

const (
	FaultGet FaultOps = 1 << iota
	FaultPut
	FaultDelete
	FaultMultiGet
	FaultMultiPut
)

// matches reports whether the mask covers a wire op.
func (o FaultOps) matches(op byte) bool {
	if o == 0 {
		return op != opStats
	}
	switch op {
	case opGet:
		return o&FaultGet != 0
	case opPut:
		return o&FaultPut != 0
	case opDelete:
		return o&FaultDelete != 0
	case opMultiGet:
		return o&FaultMultiGet != 0
	case opMultiPut:
		return o&FaultMultiPut != 0
	default:
		return false
	}
}

// FaultConfig is a shard's fault-injection profile (Server.SetFault):
// per-request service lag with optional seeded jitter, a probability of
// answering with statusError, and a probability of severing the
// connection mid-op — the generalization of the old lag-only SetLag
// hook, shared by the chaos harness, the hedged-read tests and the
// overload benchmarks.
type FaultConfig struct {
	// Lag is a fixed extra service delay per matched request, applied
	// while the request occupies its in-flight slot.
	Lag time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter), drawn from the
	// config's seeded RNG.
	Jitter time.Duration
	// ErrRate is the per-request probability of answering statusError
	// (the request is otherwise well-formed; framing is preserved).
	ErrRate float64
	// DropRate is the per-request probability of severing the connection
	// mid-op — the crashed-shard failure mode clients must redial
	// through.
	DropRate float64
	// Ops scopes the fault to specific ops (zero = all data ops).
	Ops FaultOps
	// Seed seeds the jitter/error draws; 0 derives an arbitrary fixed
	// seed, so even unseeded configs are deterministic per process.
	Seed uint64
}

// IsZero reports whether the config injects nothing.
func (c FaultConfig) IsZero() bool {
	return c.Lag == 0 && c.Jitter == 0 && c.ErrRate == 0 && c.DropRate == 0
}

// faultVerdict is applyFault's decision for one request.
type faultVerdict uint8

const (
	faultNone faultVerdict = iota
	faultErr               // answer statusError
	faultDrop              // sever the connection
)

// faultState is one installed FaultConfig plus its RNG. Installed
// whole-sale behind an atomic pointer so SetFault is safe mid-serve and
// the healthy fast path costs one pointer load.
type faultState struct {
	cfg FaultConfig
	mu  sync.Mutex
	rng *stats.RNG
}

// applyFault runs the shard's fault profile against one request: sleeps
// the injected lag (outside the draw lock) and returns whether the
// request should error out or the connection drop. Counted on the
// store's injection counters so tests and harnesses can assert faults
// actually fired.
func (st *store) applyFault(op byte) faultVerdict {
	fs := st.fault.Load()
	if fs == nil || !fs.cfg.Ops.matches(op) {
		return faultNone
	}
	extra := fs.cfg.Lag
	v := faultNone
	fs.mu.Lock()
	if fs.cfg.Jitter > 0 {
		extra += time.Duration(fs.rng.Int63() % int64(fs.cfg.Jitter))
	}
	if fs.cfg.DropRate > 0 && fs.rng.Float64() < fs.cfg.DropRate {
		v = faultDrop
	} else if fs.cfg.ErrRate > 0 && fs.rng.Float64() < fs.cfg.ErrRate {
		v = faultErr
	}
	fs.mu.Unlock()
	if extra > 0 {
		time.Sleep(extra)
	}
	switch v {
	case faultErr:
		st.faultErrs.Add(1)
	case faultDrop:
		st.faultDrops.Add(1)
	}
	return v
}

// setFault installs (or with a zero config clears) the fault profile.
func (st *store) setFault(cfg FaultConfig) {
	if cfg.IsZero() {
		st.fault.Store(nil)
		return
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x10b57e4 // arbitrary fixed default: unseeded != nondeterministic
	}
	st.fault.Store(&faultState{cfg: cfg, rng: stats.NewRNG(seed)})
}

// FaultCounts reports how many requests the installed fault profiles
// have errored and dropped so far.
func (s *Server) FaultCounts() (errs, drops uint64) {
	return s.st.faultErrs.Load(), s.st.faultDrops.Load()
}
