package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Module is the unit of interprocedural analysis: every type-checked
// package of the module plus a static call graph over the function
// declarations found in their non-test files. Per-package analyzers see
// one *Package at a time; module analyzers (lockorder, hotpath) see the
// whole graph, which is what lets them follow a lock or an allocation
// through call chains that cross package boundaries.
//
// The graph is deliberately static and syntactic: an edge exists for a
// direct call to a declared function or method (generic calls resolve
// to their origin declaration). Calls through interfaces, function
// values, and function fields are not resolved — the analyzers built on
// top document that blind spot. Call sites inside `go` statements and
// function literals are excluded: they execute on another goroutine or
// at another time, so they are not part of the caller's own execution.
type Module struct {
	Pkgs []*Package

	// funcs indexes every function/method declaration with a body.
	funcs map[*types.Func]*moduleFunc
	// order lists the declared functions deterministically (package
	// path, then file position), so module analyzers iterate and report
	// independently of map order.
	order []*types.Func
}

// moduleFunc is one declared function with its package context and the
// static calls its body makes (excluding go statements and function
// literals).
type moduleFunc struct {
	fn    *types.Func
	pkg   *Package
	decl  *ast.FuncDecl
	calls []callSite
}

// callSite is one direct call to a module-declared function.
type callSite struct {
	callee *types.Func
	call   *ast.CallExpr
	// recv renders the receiver expression for method calls ("s",
	// "p.pool"), "" for package-level calls. Lockorder uses it to tell
	// "re-locks the same receiver" from "locks a sibling instance".
	recv string
}

// NewModule builds the call graph over the packages' non-test files.
func NewModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs, funcs: make(map[*types.Func]*moduleFunc)}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				m.funcs[fn] = &moduleFunc{fn: fn, pkg: p, decl: decl}
			}
		}
	}
	for fn, mf := range m.funcs {
		mf.calls = collectCalls(mf.pkg, mf.decl.Body)
		m.order = append(m.order, fn)
	}
	sort.Slice(m.order, func(i, j int) bool {
		a, b := m.funcs[m.order[i]], m.funcs[m.order[j]]
		if a.pkg.Path != b.pkg.Path {
			return a.pkg.Path < b.pkg.Path
		}
		return a.decl.Pos() < b.decl.Pos()
	})
	return m
}

// declOf returns the module declaration for fn (nil if fn is external,
// body-less, or dynamic). Generic instantiations resolve to the origin.
func (m *Module) declOf(fn *types.Func) *moduleFunc {
	if fn == nil {
		return nil
	}
	if mf := m.funcs[fn]; mf != nil {
		return mf
	}
	return m.funcs[fn.Origin()]
}

// collectCalls walks body for direct calls, skipping go statements and
// function literals (their bodies run elsewhere; the analyzers account
// for the constructs themselves separately).
func collectCalls(p *Package, body *ast.BlockStmt) []callSite {
	var out []callSite
	walkSameFlow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return
		}
		recv := ""
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			recv = types.ExprString(sel.X)
		}
		out = append(out, callSite{callee: fn, call: call, recv: recv})
	})
	return out
}

// walkSameFlow visits every node of root that executes on the caller's
// own goroutine as part of the enclosing function's body: function
// literals and go statements are not descended into.
func walkSameFlow(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// funcDisplay renders fn for findings: "pkg.F" or "(pkg.T).M".
func funcDisplay(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "(" + typeString(sig.Recv().Type()) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// lockAcquire decodes call as x.Lock()/x.RLock() on a sync primitive
// and resolves a stable cross-function lock identity:
//
//	pkg.Type.field  for mutex fields (including promoted embedded
//	                mutexes, keyed by the embedding path), the common
//	                case — every instance of the type shares the
//	                identity, which is exactly the granularity a
//	                lock-ordering discipline is stated at;
//	pkg.var         for package-level mutex variables.
//
// base is the rendered receiver expression owning the lock ("s" for
// s.mu.Lock() or s.Lock()). Locks held in local variables get no
// identity (ok=false): they cannot participate in cross-function
// ordering by construction.
func lockAcquire(p *Package, call *ast.CallExpr) (id, base, unlockName string, ok bool) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", "", false
	}
	switch fn.Name() {
	case "Lock":
		unlockName = "Unlock"
	case "RLock":
		unlockName = "RUnlock"
	default:
		return "", "", "", false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", "", false
	}
	id, base, ok = lockIdentity(p, sel)
	return id, base, unlockName, ok
}

// lockIdentity resolves the identity of the lock addressed by methodSel
// (the `x.mu.Lock` / `x.Lock` selector). See lockAcquire.
func lockIdentity(p *Package, methodSel *ast.SelectorExpr) (id, base string, ok bool) {
	holder := ast.Unparen(methodSel.X)
	switch e := holder.(type) {
	case *ast.SelectorExpr:
		// x.mu — a mutex field, or a qualified package-level var.
		if selinfo := p.Info.Selections[e]; selinfo != nil {
			fld, isVar := selinfo.Obj().(*types.Var)
			if !isVar {
				return "", "", false
			}
			named, isNamed := deref(selinfo.Recv()).(*types.Named)
			if !isNamed || named.Obj().Pkg() == nil {
				return "", "", false
			}
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + fld.Name(),
				types.ExprString(e.X), true
		}
		if v, isVar := p.Info.Uses[e.Sel].(*types.Var); isVar && isPackageLevelVar(v) {
			return v.Pkg().Name() + "." + v.Name(), types.ExprString(e), true
		}
		return "", "", false
	case *ast.Ident:
		v, isVar := p.Info.Uses[e].(*types.Var)
		if !isVar {
			return "", "", false
		}
		if isPackageLevelVar(v) {
			return v.Pkg().Name() + "." + v.Name(), e.Name, true
		}
		// x.Lock() on a value embedding the mutex: key by the embedding
		// path (T.Mutex for an anonymous sync.Mutex field).
		if selinfo := p.Info.Selections[methodSel]; selinfo != nil && len(selinfo.Index()) > 1 {
			named, isNamed := deref(selinfo.Recv()).(*types.Named)
			if !isNamed || named.Obj().Pkg() == nil {
				return "", "", false
			}
			id := named.Obj().Pkg().Name() + "." + named.Obj().Name()
			t := deref(selinfo.Recv())
			for _, fi := range selinfo.Index()[:len(selinfo.Index())-1] {
				st, isStruct := t.Underlying().(*types.Struct)
				if !isStruct || fi >= st.NumFields() {
					return "", "", false
				}
				f := st.Field(fi)
				id += "." + f.Name()
				t = deref(f.Type())
			}
			return id, e.Name, true
		}
		return "", "", false
	}
	return "", "", false
}

func isPackageLevelVar(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// chainString renders a call chain "a → b → c" for findings.
func chainString(names []string) string {
	return strings.Join(names, " → ")
}
