package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into fixed bins. It backs the
// reuse-distance histogram of Fig. 4 and the batch-time distribution of
// Fig. 8c.
type Histogram struct {
	edges  []float64 // len(edges) == len(counts)+1, strictly increasing
	counts []int64
	under  int64 // observations below edges[0]
	over   int64 // observations at or above edges[len-1]
	total  int64
}

// NewHistogram creates a histogram with the given bin edges. Edges must be
// strictly increasing and at least two values long.
func NewHistogram(edges []float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: histogram needs at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: histogram edges must be strictly increasing at index %d", i)
		}
	}
	e := make([]float64, len(edges))
	copy(e, edges)
	return &Histogram{edges: e, counts: make([]int64, len(edges)-1)}, nil
}

// NewLinearHistogram creates nbins equal-width bins covering [lo, hi).
func NewLinearHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: linear histogram needs at least 1 bin, got %d", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: linear histogram needs hi > lo (lo=%g hi=%g)", lo, hi)
	}
	edges := make([]float64, nbins+1)
	w := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*w
	}
	edges[nbins] = hi // avoid accumulation error on the last edge
	return NewHistogram(edges)
}

// NewLogHistogram creates bins whose edges grow geometrically from lo to hi.
// It is the natural binning for reuse distances, which span several orders
// of magnitude (Fig. 4 uses a log-scale X axis).
func NewLogHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: log histogram needs 0 < lo < hi (lo=%g hi=%g)", lo, hi)
	}
	if nbins < 1 {
		return nil, fmt.Errorf("stats: log histogram needs at least 1 bin, got %d", nbins)
	}
	edges := make([]float64, nbins+1)
	ratio := math.Pow(hi/lo, 1/float64(nbins))
	e := lo
	for i := range edges {
		edges[i] = e
		e *= ratio
	}
	edges[nbins] = hi
	return NewHistogram(edges)
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	if v < h.edges[0] {
		h.under++
		return
	}
	if v >= h.edges[len(h.edges)-1] {
		h.over++
		return
	}
	// Binary search for the bin: find the last edge <= v.
	lo, hi := 0, len(h.edges)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if h.edges[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
}

// Total returns the number of observations recorded, including under/overflow.
func (h *Histogram) Total() int64 { return h.total }

// Bins returns the number of regular bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Bin returns the [lo, hi) bounds and count of bin i.
func (h *Histogram) Bin(i int) (lo, hi float64, count int64) {
	return h.edges[i], h.edges[i+1], h.counts[i]
}

// Underflow and Overflow return out-of-range observation counts.
func (h *Histogram) Underflow() int64 { return h.under }

// Overflow returns the number of observations at or above the last edge.
func (h *Histogram) Overflow() int64 { return h.over }

// FractionAbove returns the fraction of observations >= x (including
// overflow). Observations inside the bin containing x are apportioned
// linearly. This implements queries such as "80% of samples have reuse
// distance larger than 1000 iterations".
func (h *Histogram) FractionAbove(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var above float64 = float64(h.over)
	for i := range h.counts {
		lo, hi := h.edges[i], h.edges[i+1]
		switch {
		case lo >= x:
			above += float64(h.counts[i])
		case hi > x:
			above += float64(h.counts[i]) * (hi - x) / (hi - lo)
		}
	}
	if x < h.edges[0] {
		above += float64(h.under)
	}
	return above / float64(h.total)
}

// Render draws an ASCII bar chart with the given maximum bar width. It is
// used by the cmd/ tools to print figure reproductions in the terminal.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	var maxCount int64 = 1
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		bar := int(float64(c) / float64(maxCount) * float64(width))
		fmt.Fprintf(&b, "[%12.4g, %12.4g) %8d %s\n", h.edges[i], h.edges[i+1], c, strings.Repeat("#", bar))
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "overflow  %d\n", h.over)
	}
	return b.String()
}
