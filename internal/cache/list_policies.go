package cache

import (
	"repro/internal/dataset"
)

// lruPolicy evicts the least-recently-used sample. It models the behaviour
// a loader gets "for free" from the OS page cache — the effective policy
// under PyTorch DataLoader and DALI, which have no application-level
// eviction logic of their own.
type lruPolicy struct {
	name       string
	order      *denseList // front = most recent
	touchOnGet bool       // false turns this into FIFO
}

// NewLRU returns a least-recently-used policy.
func NewLRU() Policy {
	return &lruPolicy{
		name:       "lru",
		order:      newDenseList(),
		touchOnGet: true,
	}
}

// NewFIFO returns a first-in-first-out policy (insertion order, ignoring
// hits) — a common low-cost baseline.
func NewFIFO() Policy {
	return &lruPolicy{
		name:  "fifo",
		order: newDenseList(),
	}
}

func (p *lruPolicy) Name() string { return p.name }

func (p *lruPolicy) OnPut(id dataset.SampleID, _ Iter) {
	if p.order.contains(id) {
		p.order.moveToFront(id)
		return
	}
	p.order.pushFront(id)
}

func (p *lruPolicy) OnGet(id dataset.SampleID, _ Iter) {
	if !p.touchOnGet {
		return
	}
	if p.order.contains(id) {
		p.order.moveToFront(id)
	}
}

func (p *lruPolicy) OnRemove(id dataset.SampleID) {
	if p.order.contains(id) {
		p.order.remove(id)
	}
}

func (p *lruPolicy) Victim(_ Iter, _ dataset.SampleID) (dataset.SampleID, bool) {
	return p.order.back()
}

func (p *lruPolicy) DrainExpired(_ Iter, _ func(dataset.SampleID)) {}

// neverEvict refuses all evictions: once the cache fills, further inserts
// are rejected. This is the MinIO behaviour the related-work section calls
// out: "once data samples are cached, they are never evicted out of the
// cache".
type neverEvict struct{}

// NewNeverEvict returns the never-evict (MinIO-style) policy.
func NewNeverEvict() Policy { return neverEvict{} }

func (neverEvict) Name() string                              { return "never-evict" }
func (neverEvict) OnPut(dataset.SampleID, Iter)              {}
func (neverEvict) OnGet(dataset.SampleID, Iter)              {}
func (neverEvict) OnRemove(dataset.SampleID)                 {}
func (neverEvict) DrainExpired(Iter, func(dataset.SampleID)) {}
func (neverEvict) Victim(Iter, dataset.SampleID) (dataset.SampleID, bool) {
	return NoSample, false
}
