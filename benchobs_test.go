package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tier"
)

// TestBenchObsJSON is the observability-overhead recording harness
// behind `make bench-obs`.
//
// Default (no env) it is a CI-safe smoke test over the committed
// BENCH_obs.json: the three runtime variants (baseline / disabled /
// enabled) are present with positive timings, every hot-path micro
// benchmark is allocation-free, and the headline disabled overhead is
// within the 2% budget the obs package promises.
//
// With LOBSTER_BENCH_OBS=1 it reruns the measurements: the real online
// runtime at tiny scale with no instruments, with a disabled registry
// attached, and with an enabled registry plus span tracing — plus
// nanosecond micro-benchmarks of each instrument — and rewrites
// BENCH_obs.json at the repository root.
func TestBenchObsJSON(t *testing.T) {
	if os.Getenv("LOBSTER_BENCH_OBS") == "" {
		benchObsSmoke(t)
		return
	}
	benchObsFull(t)
}

// obsEntry is one benchmark row in BENCH_obs.json.
type obsEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// obsFile is the schema of BENCH_obs.json.
type obsFile struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Scale     string `json:"scale"`
	Note      string `json:"note"`
	// Runtime holds one full online-runtime run per instrumentation
	// variant: "baseline" (no instruments), "disabled" (registry
	// attached, SetEnabled(false)), "enabled" (registry + trace ring).
	Runtime []obsEntry `json:"runtime"`
	// Micro holds per-call instrument costs; all must be 0 allocs/op.
	Micro    []obsEntry `json:"micro"`
	Headline struct {
		DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
		EnabledOverheadPct  float64 `json:"enabled_overhead_pct"`
	} `json:"headline"`
}

// disabledOverheadBudgetPct is the acceptance bound: a disabled
// registry must cost the runtime iteration path at most this much.
const disabledOverheadBudgetPct = 2.0

func benchObsSmoke(t *testing.T) {
	root, err := simRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(root, "BENCH_obs.json"))
	if err != nil {
		t.Fatalf("BENCH_obs.json missing (regenerate with `make bench-obs`): %v", err)
	}
	var f obsFile
	if err := json.Unmarshal(buf, &f); err != nil {
		t.Fatalf("BENCH_obs.json does not parse: %v", err)
	}
	if f.Generated == "" || f.GoVersion == "" || f.NumCPU < 1 || f.Scale == "" {
		t.Fatalf("BENCH_obs.json header incomplete: %+v", f)
	}
	variants := map[string]bool{}
	for _, e := range f.Runtime {
		if e.Name == "" || e.NsPerOp <= 0 {
			t.Fatalf("malformed runtime entry: %+v", e)
		}
		variants[e.Name] = true
	}
	for _, want := range []string{"baseline", "disabled", "enabled"} {
		if !variants[want] {
			t.Fatalf("BENCH_obs.json missing runtime variant %q", want)
		}
	}
	if len(f.Micro) == 0 {
		t.Fatal("BENCH_obs.json has no micro entries")
	}
	for _, e := range f.Micro {
		// A disabled instrument can legitimately round to 0 ns/op.
		if e.Name == "" || e.NsPerOp < 0 {
			t.Fatalf("malformed micro entry: %+v", e)
		}
		if e.AllocsPerOp != 0 {
			t.Fatalf("hot-path instrument %q allocates (%d allocs/op); recording must be allocation-free",
				e.Name, e.AllocsPerOp)
		}
	}
	if f.Headline.DisabledOverheadPct > disabledOverheadBudgetPct {
		t.Fatalf("committed disabled overhead %.2f%% exceeds the %.1f%% budget",
			f.Headline.DisabledOverheadPct, disabledOverheadBudgetPct)
	}
}

// benchObsRuntime times one full online run under the given
// instrumentation variant.
func benchObsRuntime(t *testing.T, name string, instrument func(*runtime.Options)) obsEntry {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "obsbench", NumSamples: 256, MeanSize: 8 << 10, SigmaLog: 0.3,
		MinSize: 1 << 10, Classes: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := cluster.Topology{
		Nodes:       1,
		GPUsPerNode: 2,
		CPUThreads:  8,
		CacheBytes:  ds.TotalBytes() / 3,
		NUMADomains: 2,
		Hierarchy:   tier.ThetaGPULike(),
	}
	model := cluster.DNNModel{Name: "toy", IterTime: 0.004, BatchSize: 8, TargetAccuracy: 0.7, ConvergeEpochs: 10}
	var failed error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := runtime.Options{
				Topology:  top,
				Dataset:   ds,
				Model:     model,
				Epochs:    1,
				Seed:      7,
				Strategy:  loader.Lobster(),
				TimeScale: 0.01,
			}
			instrument(&opts)
			if _, err := runtime.Run(opts); err != nil {
				failed = err
				b.Skip()
			}
		}
	})
	if failed != nil {
		t.Fatalf("bench %s: %v", name, failed)
	}
	e := obsEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		WallSeconds: r.T.Seconds(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	t.Logf("%-10s %12.1f ms/run  %10d B/run  %9d allocs/run",
		name, e.NsPerOp/1e6, e.BytesPerOp, e.AllocsPerOp)
	return e
}

// benchObsMicro times one instrument call under testing.Benchmark.
func benchObsMicro(t *testing.T, name string, fn func(b *testing.B)) obsEntry {
	t.Helper()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	e := obsEntry{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	t.Logf("%-28s %8.2f ns/op  %d allocs/op", name, e.NsPerOp, e.AllocsPerOp)
	return e
}

func benchObsFull(t *testing.T) {
	// Runtime variants. Three reps each, keep the fastest — the modeled
	// sleeps dominate and the minimum is the least noisy estimator of
	// the instrumentation delta.
	best := func(name string, instrument func(*runtime.Options)) obsEntry {
		e := benchObsRuntime(t, name, instrument)
		for i := 0; i < 2; i++ {
			if r := benchObsRuntime(t, name, instrument); r.NsPerOp < e.NsPerOp {
				r.Name = name
				e = r
			}
		}
		return e
	}
	baseline := best("baseline", func(*runtime.Options) {})
	disabled := best("disabled", func(o *runtime.Options) {
		reg := obs.NewRegistry()
		reg.SetEnabled(false)
		o.Obs = reg
	})
	enabled := best("enabled", func(o *runtime.Options) {
		o.Obs = obs.NewRegistry()
		o.Trace = obs.NewTraceRing(8192)
	})

	// Micro costs per instrument call.
	reg := obs.NewRegistry()
	counter := reg.Counter("lobster_bench_ops_total", "bench")
	gauge := reg.Gauge("lobster_bench_depth", "bench")
	hist := reg.Histogram("lobster_bench_seconds", "bench", obs.LatencyBuckets())
	ring := obs.NewTraceRing(1024)
	tid := ring.NewThread("bench")
	start := time.Now()
	micro := []obsEntry{
		benchObsMicro(t, "counter_inc", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				counter.Inc()
			}
		}),
		benchObsMicro(t, "gauge_set", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gauge.Set(int64(i))
			}
		}),
		benchObsMicro(t, "histogram_observe", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hist.Observe(0.001)
			}
		}),
		benchObsMicro(t, "trace_span", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ring.Span("op", "bench", tid, start, time.Microsecond)
			}
		}),
	}
	reg.SetEnabled(false)
	micro = append(micro,
		benchObsMicro(t, "counter_inc_disabled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				counter.Inc()
			}
		}),
		benchObsMicro(t, "histogram_observe_disabled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hist.Observe(0.001)
			}
		}),
	)

	var out obsFile
	out.Generated = time.Now().UTC().Format(time.RFC3339)
	out.GoVersion = goruntime.Version()
	out.NumCPU = goruntime.NumCPU()
	out.Scale = "tiny"
	out.Note = "runtime rows are full online runs (1 node x 2 GPUs, 1 epoch, TimeScale 0.01), " +
		"best of 3; micro rows are per-call instrument costs and must stay 0 allocs/op"
	out.Runtime = []obsEntry{baseline, disabled, enabled}
	out.Micro = micro
	out.Headline.DisabledOverheadPct = (disabled.NsPerOp - baseline.NsPerOp) / baseline.NsPerOp * 100
	out.Headline.EnabledOverheadPct = (enabled.NsPerOp - baseline.NsPerOp) / baseline.NsPerOp * 100
	t.Logf("headline: disabled %+.2f%%, enabled %+.2f%% vs baseline",
		out.Headline.DisabledOverheadPct, out.Headline.EnabledOverheadPct)

	root, err := simRepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "BENCH_obs.json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
	if out.Headline.DisabledOverheadPct > disabledOverheadBudgetPct {
		t.Errorf("disabled overhead %.2f%% exceeds the %.1f%% budget; box may be loaded — rerun",
			out.Headline.DisabledOverheadPct, disabledOverheadBudgetPct)
	}
}
