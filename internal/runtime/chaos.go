package runtime

import (
	"fmt"

	"repro/internal/chaos"
)

// registerChaosInjectors wires the fault kinds the runtime owns into the
// controller (DESIGN.md §13). Registration is soft (RegisterDefault), so
// a harness that registered its own injector for a kind — e.g. to crash
// a real kv server process it owns — always wins. The controller calls
// Inject/Revert from the barrier's last arriver, one at a time, so the
// closures need no synchronization beyond what the touched subsystems
// already provide.
//
// Kinds wired here:
//
//   - Brownout: degrade the PFS (extra latency, jitter, transient read
//     failures). Revert restores the run's configured baseline failure
//     rate rather than a pristine store, so chaos composes with
//     Options.PFSFailureRate.
//   - Straggler: lag (+jitter, +errors) on one node's peer-cache
//     serving, via the distribution manager.
//   - CacheCrash: wipe one node's cache as a process loss — payloads
//     dropped, directory repaired atomically (nodeCache.crash) — and
//     take its peer serving down until the event reverts ("restart").
//     The node's own training continues on a cold cache.
//   - SlowDecode: per-job decode latency on one node's preprocessing
//     pool.
//
// ShardCrash and ConnDrop are not wired: the runtime has no handle on
// the kv servers behind its cluster client; the harness that owns them
// registers those injectors (see internal/experiments).
func (rt *Runtime) registerChaosInjectors(c *chaos.Controller) {
	c.RegisterDefault(chaos.KindBrownout, chaos.Funcs(
		func(ev chaos.Event) error {
			rt.pfs.SetFault(ev.Fault)
			return nil
		},
		func(chaos.Event) error {
			rt.pfs.SetFault(chaos.Fault{ErrRate: rt.opts.PFSFailureRate})
			return nil
		}))
	c.RegisterDefault(chaos.KindStraggler, chaos.Funcs(
		func(ev chaos.Event) error {
			if err := rt.checkNode(ev); err != nil {
				return err
			}
			rt.dm.SetNodeFault(ev.Target, ev.Fault)
			return nil
		},
		func(ev chaos.Event) error {
			rt.dm.SetNodeFault(ev.Target, chaos.Fault{})
			return nil
		}))
	c.RegisterDefault(chaos.KindCacheCrash, chaos.Funcs(
		func(ev chaos.Event) error {
			if err := rt.checkNode(ev); err != nil {
				return err
			}
			// Down first, wipe second: a peer that wins the race sees
			// either a down node (nil fetch -> failover) or a repaired
			// directory (no holder -> PFS); never a promised copy served
			// from a wiped cache.
			rt.dm.SetNodeDown(ev.Target, true)
			rt.nodes[ev.Target].cache.crash()
			return nil
		},
		func(ev chaos.Event) error {
			// "Restart": peer serving returns; the cache refills through
			// the node's own demand misses and prefetcher.
			rt.dm.SetNodeDown(ev.Target, false)
			return nil
		}))
	c.RegisterDefault(chaos.KindSlowDecode, chaos.Funcs(
		func(ev chaos.Event) error {
			if err := rt.checkNode(ev); err != nil {
				return err
			}
			rt.nodes[ev.Target].pre.SetDecodeDelay(ev.Fault.Lag, ev.Fault.Jitter, ev.Fault.Seed)
			return nil
		},
		func(ev chaos.Event) error {
			rt.nodes[ev.Target].pre.SetDecodeDelay(0, 0, 0)
			return nil
		}))
}

// checkNode bounds-checks an event's node target.
func (rt *Runtime) checkNode(ev chaos.Event) error {
	if ev.Target >= len(rt.nodes) {
		return fmt.Errorf("runtime: %s target %d out of range (%d nodes)", ev.Kind, ev.Target, len(rt.nodes))
	}
	return nil
}
