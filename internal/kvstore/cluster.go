package kvstore

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// shardClient is the per-shard surface Cluster runs on; both the v1
// Client and the pipelined ClientV2 implement it.
type shardClient interface {
	Get(key string) ([]byte, bool, error)
	Put(key string, val []byte) error
	Delete(key string) error
	Stats() (Stats, error)
	MultiGet(keys []string) ([][]byte, error)
	MultiPut(keys []string, vals [][]byte) error
	Close()
}

// Cluster shards keys across several servers by FNV-1a hash — the
// KV-store alternative to the node-to-node distribution manager. Batch
// ops group keys by shard and fan the per-shard batches out
// concurrently, one round trip per shard.
type Cluster struct {
	clients []shardClient

	// scratch pools the per-shard grouping state MultiGet/MultiPut
	// rebuild on every call, so the prefetch hot path stops allocating.
	scratch sync.Pool
}

// clusterScratch is one batch op's reusable grouping state.
type clusterScratch struct {
	keys [][]string // per shard: keys routed there
	vals [][][]byte // per shard: values routed there (MultiPut)
	idx  [][]int    // per shard: original positions
}

// NewCluster connects to every shard address with the pipelined v2
// protocol (conns multiplexed connections per shard). Use NewClusterV1
// for v1-only peers.
func NewCluster(addrs []string, conns int) (*Cluster, error) {
	return newCluster(addrs, func(addr string) (shardClient, error) {
		return NewClientV2(addr, conns)
	})
}

// NewClusterV1 connects with the legacy one-op-per-round-trip protocol
// (poolSize pooled connections per shard). Batch ops degrade to key-
// at-a-time loops; kept for compatibility and as the benchmark
// baseline.
func NewClusterV1(addrs []string, poolSize int) (*Cluster, error) {
	return newCluster(addrs, func(addr string) (shardClient, error) {
		return NewClient(addr, poolSize)
	})
}

func newCluster(addrs []string, dial func(string) (shardClient, error)) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("kvstore: no shard addresses")
	}
	c := &Cluster{}
	shards := len(addrs)
	c.scratch.New = func() any {
		return &clusterScratch{
			keys: make([][]string, shards),
			vals: make([][][]byte, shards),
			idx:  make([][]int, shards),
		}
	}
	for _, addr := range addrs {
		cl, err := dial(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// shardIndex picks the shard for a key.
func (c *Cluster) shardIndex(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // hash.Hash.Write never returns an error
	return int(h.Sum32()) % len(c.clients)
}

// shard picks the client for a key.
func (c *Cluster) shard(key string) shardClient {
	return c.clients[c.shardIndex(key)]
}

// Get fetches a key from its shard.
func (c *Cluster) Get(key string) ([]byte, bool, error) { return c.shard(key).Get(key) }

// Put stores a key on its shard.
func (c *Cluster) Put(key string, val []byte) error { return c.shard(key).Put(key, val) }

// Delete removes a key from its shard.
func (c *Cluster) Delete(key string) error { return c.shard(key).Delete(key) }

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.clients) }

// MultiGet fetches a batch of keys: grouped by shard, fanned out
// concurrently (one round trip per shard on v2 clients), reassembled in
// request order. vals[i] is nil when keys[i] is absent and non-nil
// (possibly empty) when present.
func (c *Cluster) MultiGet(keys []string) ([][]byte, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	if len(c.clients) == 1 {
		return c.clients[0].MultiGet(keys)
	}
	sc := c.scratch.Get().(*clusterScratch)
	defer c.putScratch(sc)
	for i, key := range keys {
		s := c.shardIndex(key)
		sc.keys[s] = append(sc.keys[s], key)
		sc.idx[s] = append(sc.idx[s], i)
	}
	out := make([][]byte, len(keys))
	var wg sync.WaitGroup
	errs := make([]error, len(c.clients))
	for s, cl := range c.clients {
		if len(sc.keys[s]) == 0 {
			continue
		}
		s, cl := s, cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals, err := cl.MultiGet(sc.keys[s])
			if err != nil {
				errs[s] = err
				return
			}
			for j, v := range vals {
				out[sc.idx[s][j]] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MultiPut stores a batch of key/value pairs, grouped by shard and
// fanned out concurrently. Storage is best-effort per key; the first
// error is returned after every shard's batch completes.
func (c *Cluster) MultiPut(keys []string, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("kvstore: MultiPut got %d keys, %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	if len(c.clients) == 1 {
		return c.clients[0].MultiPut(keys, vals)
	}
	sc := c.scratch.Get().(*clusterScratch)
	defer c.putScratch(sc)
	for i, key := range keys {
		s := c.shardIndex(key)
		sc.keys[s] = append(sc.keys[s], key)
		sc.vals[s] = append(sc.vals[s], vals[i])
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.clients))
	for s, cl := range c.clients {
		if len(sc.keys[s]) == 0 {
			continue
		}
		s, cl := s, cl
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[s] = cl.MultiPut(sc.keys[s], sc.vals[s])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// putScratch clears and recycles a grouping scratch. Value references
// are nilled so the pool never pins payload bytes across calls.
func (c *Cluster) putScratch(sc *clusterScratch) {
	for s := range sc.keys {
		for j := range sc.vals[s] {
			sc.vals[s][j] = nil
		}
		sc.keys[s] = sc.keys[s][:0]
		sc.vals[s] = sc.vals[s][:0]
		sc.idx[s] = sc.idx[s][:0]
	}
	c.scratch.Put(sc)
}

// Stats aggregates all shards' counters.
func (c *Cluster) Stats() (Stats, error) {
	var total Stats
	for _, cl := range c.clients {
		st, err := cl.Stats()
		if err != nil {
			return Stats{}, err
		}
		total.Items += st.Items
		total.UsedBytes += st.UsedBytes
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		total.TooLarge += st.TooLarge
	}
	return total, nil
}

// Close closes every shard client.
func (c *Cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
}
