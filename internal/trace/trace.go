// Package trace renders per-iteration pipeline breakdowns — the textual
// reproduction of Figure 3 ("Execution time breakdown for the training
// pipeline"), plus the summary statistics the motivation section draws
// from it (imbalance frequency, bottleneck-shift counts).
package trace

import (
	"fmt"
	"strings"

	"repro/internal/pipeline"
)

// Slice selects the iterations Fig. 3 displays: "eight each in the
// beginning, middle, and end" of an epoch.
func Slice(records []pipeline.IterRecord, epoch, perSection int) []pipeline.IterRecord {
	var epochRecs []pipeline.IterRecord
	for _, r := range records {
		if r.Epoch == epoch {
			epochRecs = append(epochRecs, r)
		}
	}
	n := len(epochRecs)
	if n == 0 {
		return nil
	}
	if n <= 3*perSection {
		return epochRecs
	}
	out := make([]pipeline.IterRecord, 0, 3*perSection)
	out = append(out, epochRecs[:perSection]...)
	mid := n/2 - perSection/2
	out = append(out, epochRecs[mid:mid+perSection]...)
	out = append(out, epochRecs[n-perSection:]...)
	return out
}

// Render draws the breakdown of the selected GPUs as horizontal stacked
// bars, one row per (iteration, GPU): L=loading, P=preprocessing,
// T=training, s=stall (waiting for own data), i=idle (waiting for
// stragglers). widthPerSecond scales bar length.
func Render(records []pipeline.IterRecord, gpus []int, widthPerSecond float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %-5s %8s  %s\n", "iter", "gpu", "batch(s)", "L=load P=preproc T=train s=stall i=idle")
	for _, rec := range records {
		for _, g := range gpus {
			if g < 0 || g >= len(rec.PerGPU) {
				continue
			}
			gi := rec.PerGPU[g]
			bar := bar(gi, widthPerSecond)
			fmt.Fprintf(&b, "e%02d/i%03d  g%-4d %8.4f  %s\n", rec.Epoch, rec.Iter, g, rec.BatchTime, bar)
		}
	}
	return b.String()
}

func bar(g pipeline.GPUIter, scale float64) string {
	var b strings.Builder
	b.WriteString(strings.Repeat("L", chars(g.Load, scale)))
	b.WriteString(strings.Repeat("P", chars(g.Preproc, scale)))
	b.WriteString(strings.Repeat("s", chars(g.Stall, scale)))
	b.WriteString(strings.Repeat("T", chars(g.Train, scale)))
	b.WriteString(strings.Repeat("i", chars(g.Idle, scale)))
	return b.String()
}

func chars(seconds, scale float64) int {
	n := int(seconds * scale)
	if n < 0 {
		n = 0
	}
	if n > 400 {
		n = 400
	}
	return n
}

// Stats summarises a trace the way Section 3 does.
type Stats struct {
	Iterations int
	// ImbalancedFrac is the fraction of iterations in which the spread of
	// per-GPU stalls exceeds the given fraction of the training time
	// (Observation 1: "data load imbalances occur ... in 65.3% of our
	// iterations").
	ImbalancedFrac float64
	// LoadBottleneckFrac is the fraction of (iteration, GPU) pairs whose
	// loading stage exceeded the training stage (Observation 2's
	// bottleneck shifts).
	LoadBottleneckFrac float64
	// BottleneckShifts counts iteration-to-iteration changes of the
	// bottleneck stage on some GPU.
	BottleneckShifts int
	// MeanIdleFrac is the average fraction of the batch time GPUs spend
	// idle (stall + barrier wait).
	MeanIdleFrac float64
}

// Analyze computes trace statistics. imbalanceFrac mirrors
// pipeline.Config.ImbalanceFrac.
func Analyze(records []pipeline.IterRecord, trainTime, imbalanceFrac float64) Stats {
	var st Stats
	st.Iterations = len(records)
	if len(records) == 0 {
		return st
	}
	var loadBound, pairs int
	var idleSum float64
	prevBound := make([]bool, len(records[0].PerGPU))
	for ri, rec := range records {
		minStall, maxStall := rec.PerGPU[0].Stall, rec.PerGPU[0].Stall
		for g, gi := range rec.PerGPU {
			if gi.Stall < minStall {
				minStall = gi.Stall
			}
			if gi.Stall > maxStall {
				maxStall = gi.Stall
			}
			bound := gi.Load > gi.Train
			if bound {
				loadBound++
			}
			if ri > 0 && bound != prevBound[g] {
				st.BottleneckShifts++
			}
			prevBound[g] = bound
			if rec.BatchTime > 0 {
				idleSum += (gi.Stall + gi.Idle) / rec.BatchTime
			}
			pairs++
		}
		if maxStall-minStall > imbalanceFrac*trainTime {
			st.ImbalancedFrac++
		}
	}
	st.ImbalancedFrac /= float64(len(records))
	st.LoadBottleneckFrac = float64(loadBound) / float64(pairs)
	st.MeanIdleFrac = idleSum / float64(pairs)
	return st
}
