// Command lobster-kv runs one shard of the key-value cache tier as a
// standalone process, so a cluster can be deployed across machines (the
// "alternatives to distributed caching like for example KV-stores" of the
// paper's Section 2). Point the online runtime's KVCache at the shard
// addresses. The shard speaks both wire protocols — v1 blocking
// round trips and the pipelined/batched v2 — classifying each frame by
// its first byte, so old and new clients can share a deployment.
//
// Example:
//
//	lobster-kv -addr 127.0.0.1:7001 -capacity 512MiB -stripes 16
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/kvstore"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
		capacity = flag.String("capacity", "256MiB", "shard capacity (bytes; supports KiB/MiB/GiB suffixes)")
		statsSec = flag.Int("stats-interval", 30, "seconds between stats log lines (0 = silent)")
		stripes  = flag.Int("stripes", 0, "LRU lock stripes (0 = auto-size from capacity)")
	)
	flag.Parse()

	bytes, err := parseBytes(*capacity)
	if err != nil {
		fatal(err)
	}
	srv, err := kvstore.NewServerStriped(*addr, bytes, *stripes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lobster-kv shard listening on %s (capacity %s, %d stripes)\n",
		srv.Addr(), *capacity, srv.Stripes())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statsSec > 0 {
		ticker = time.NewTicker(time.Duration(*statsSec) * time.Second)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-tick:
			st := srv.Stats()
			fmt.Printf("items=%d used=%.1fMB hits=%d misses=%d evictions=%d toolarge=%d\n",
				st.Items, float64(st.UsedBytes)/1e6, st.Hits, st.Misses, st.Evictions, st.TooLarge)
		case <-stop:
			fmt.Println("shutting down")
			if err := srv.Close(); err != nil {
				fatal(err)
			}
			return
		}
	}
}

// parseBytes understands plain integers and KiB/MiB/GiB suffixes.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad capacity %q: %w", s, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("capacity must be positive, got %d", v)
	}
	return v * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-kv:", err)
	os.Exit(1)
}
