package preproc

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 1); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewPool(1, 0); err == nil {
		t.Error("zero queue accepted")
	}
}

func TestPoolProcessesJobs(t *testing.T) {
	p, err := NewPool(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 20
	done := make(chan Result, n)
	for i := 0; i < n; i++ {
		buf := make([]byte, 2048)
		dataset.FillPayload(buf, 1, dataset.SampleID(i))
		p.Submit(Job{ID: dataset.SampleID(i), Payload: buf, Seed: uint64(i), Done: done})
	}
	seen := map[dataset.SampleID]bool{}
	for i := 0; i < n; i++ {
		r := <-done
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if seen[r.Tensor.ID] {
			t.Fatalf("sample %d processed twice", r.Tensor.ID)
		}
		seen[r.Tensor.ID] = true
	}
	if p.Processed() != n {
		t.Fatalf("Processed = %d, want %d", p.Processed(), n)
	}
}

func TestPoolReportsDecodeErrors(t *testing.T) {
	p, _ := NewPool(1, 1)
	defer p.Close()
	done := make(chan Result, 1)
	buf := make([]byte, 2048)
	dataset.FillPayload(buf, 1, 5)
	p.Submit(Job{ID: 6, Payload: buf, Done: done}) // wrong id
	r := <-done
	if r.Err == nil {
		t.Fatal("decode error not reported")
	}
}

func TestPoolResize(t *testing.T) {
	p, _ := NewPool(1, 64)
	defer p.Close()
	if err := p.Resize(4); err != nil {
		t.Fatal(err)
	}
	if got := p.Workers(); got != 4 {
		t.Fatalf("Workers = %d, want 4", got)
	}
	if err := p.Resize(2); err != nil {
		t.Fatal(err)
	}
	if got := p.Workers(); got != 2 {
		t.Fatalf("Workers = %d, want 2", got)
	}
	if err := p.Resize(0); err == nil {
		t.Fatal("Resize(0) accepted")
	}
	// The pool must still process work after shrinking.
	done := make(chan Result, 8)
	for i := 0; i < 8; i++ {
		buf := make([]byte, 1024)
		dataset.FillPayload(buf, 1, dataset.SampleID(i))
		p.Submit(Job{ID: dataset.SampleID(i), Payload: buf, Done: done})
	}
	timeout := time.After(5 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case r := <-done:
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		case <-timeout:
			t.Fatal("pool stalled after resize")
		}
	}
}

func TestPoolConcurrentSubmitAndResize(t *testing.T) {
	p, _ := NewPool(2, 16)
	defer p.Close()
	var wg sync.WaitGroup
	done := make(chan Result, 256)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			buf := make([]byte, 512)
			dataset.FillPayload(buf, 1, dataset.SampleID(i))
			p.Submit(Job{ID: dataset.SampleID(i), Payload: buf, Seed: uint64(i), Done: done})
		}
	}()
	go func() {
		defer wg.Done()
		sizes := []int{1, 3, 2, 5, 1, 4}
		for _, s := range sizes {
			if err := p.Resize(s); err != nil {
				t.Errorf("Resize: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	for i := 0; i < 200; i++ {
		r := <-done
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p, _ := NewPool(1, 1)
	p.Close()
	p.Close() // must not panic
	if err := p.Resize(2); err == nil {
		t.Fatal("Resize after Close accepted")
	}
}

func TestPoolSetDecodeDelay(t *testing.T) {
	p, err := NewPool(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	decode := func() time.Duration {
		done := make(chan Result, 1)
		buf := make([]byte, 2048)
		dataset.FillPayload(buf, 1, 0)
		start := time.Now()
		p.Submit(Job{ID: 0, Payload: buf, Done: done})
		r := <-done
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		return time.Since(start)
	}

	p.SetDecodeDelay(25*time.Millisecond, 0, 1)
	if d := decode(); d < 20*time.Millisecond {
		t.Fatalf("injected decode delay not applied: job took %v", d)
	}
	// Clearing restores fast decodes.
	p.SetDecodeDelay(0, 0, 0)
	if d := decode(); d > 15*time.Millisecond {
		t.Fatalf("decode delay survived clearing: job took %v", d)
	}
}

func TestPoolDecodeDelayJitterDeterministic(t *testing.T) {
	// Same seed => same jitter sequence: pin via the RNG the fault type
	// draws from (the sleep itself is wall clock; the draws must not be).
	draws := func(seed uint64) []time.Duration {
		f := &decodeFault{jitter: time.Second, rng: stats.NewRNG(seed)}
		var out []time.Duration
		for i := 0; i < 8; i++ {
			f.mu.Lock()
			out = append(out, time.Duration(f.rng.Int63()%int64(f.jitter)))
			f.mu.Unlock()
		}
		return out
	}
	a, b := draws(7), draws(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
