// Package loader defines the data-loading strategies the paper evaluates:
// the three baselines (PyTorch DataLoader, DALI, NoPFS) and Lobster with
// its two ablations (Lobster_th, Lobster_evict, Section 5.6).
//
// A Spec is a declarative description — which eviction policy the
// node-local cache uses, how deep prefetching looks ahead, and how CPU
// threads are assigned to the loading and preprocessing stages. The
// pipeline simulator (internal/pipeline) and the online runtime
// (internal/runtime) both interpret Specs, so baselines and Lobster run on
// identical mechanics and differ only in policy — the property a fair
// comparison needs.
package loader

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dataset"
)

// PolicyKind selects the node-local cache eviction policy.
type PolicyKind int

const (
	// PolicyPageCache is the segmented-LRU OS page cache the PyTorch and
	// DALI baselines effectively rely on.
	PolicyPageCache PolicyKind = iota
	// PolicyLRU is a plain LRU baseline.
	PolicyLRU
	// PolicyNoPFS is the NoPFS eviction (consumed-sample drop + LRU).
	PolicyNoPFS
	// PolicyLobster is the full reuse-count + reuse-distance policy.
	PolicyLobster
	// PolicyFIFO, PolicyNeverEvict, PolicyLFU and PolicyARC are extra
	// baselines for ablations and the policy-zoo extension experiment.
	PolicyFIFO
	PolicyNeverEvict
	PolicyLFU
	PolicyARC
	// PolicyBelady is the clairvoyant upper bound (ablation only).
	PolicyBelady
)

// ThreadMode selects how CPU threads are assigned.
type ThreadMode int

const (
	// ThreadsStatic gives every GPU a fixed loading thread count and the
	// preprocessing pool a fixed size (PyTorch, NoPFS).
	ThreadsStatic ThreadMode = iota
	// ThreadsSharedPool uses one node-wide loading pool of fixed size
	// serving all GPU queues fairly (DALI's "three threads for data
	// loading by default").
	ThreadsSharedPool
	// ThreadsDynamic runs Lobster's thread manager every iteration.
	ThreadsDynamic
)

// Spec declares one loading strategy.
type Spec struct {
	Name          string
	Policy        PolicyKind
	PrefetchDepth int // lookahead in iterations; 0 = demand-only
	Mode          ThreadMode
	// PreprocThreads / LoadingPerGPU apply to ThreadsStatic;
	// PreprocThreads / SharedLoading to ThreadsSharedPool.
	PreprocThreads int
	LoadingPerGPU  int
	SharedLoading  int
	// NUMAAware co-locates each GPU's loading threads with its share of
	// the preprocessing pool on the same socket (Section 5.2: "Lobster is
	// NUMA-aware, and co-locates data loading and preprocessing
	// threads"). The baselines place threads naively.
	NUMAAware bool
	// PrefetchThreads is the fixed background prefetching concurrency of
	// the static strategies (NoPFS's double-buffering helpers). Strategies
	// with dynamic thread management instead convert *idle* loading
	// thread-seconds into prefetch work — the coordination the paper's
	// second challenge is about ("a bottleneck in one stage will lead to
	// idle threads in the other stages that instead could have been used
	// to alleviate the bottleneck").
	PrefetchThreads int
	// LoadChunk is the batched data path's chunk size: one request-queue
	// message carries up to this many samples. 0 (the default) picks an
	// automatic size — the batch spread evenly over the queue's current
	// workers, capped so one worker never serializes a whole batch's
	// latency-bound fetches. Negative is invalid.
	LoadChunk int
}

// Validate reports whether the spec is coherent for a node with the given
// GPU count and thread budget.
func (s Spec) Validate(gpusPerNode, totalThreads int) error {
	if s.Name == "" {
		return fmt.Errorf("loader: unnamed spec")
	}
	if s.PrefetchDepth < 0 {
		return fmt.Errorf("loader: %s: negative prefetch depth", s.Name)
	}
	if s.LoadChunk < 0 {
		return fmt.Errorf("loader: %s: negative load chunk", s.Name)
	}
	switch s.Mode {
	case ThreadsStatic:
		if s.LoadingPerGPU < 1 || s.PreprocThreads < 1 {
			return fmt.Errorf("loader: %s: static mode needs positive thread counts", s.Name)
		}
		if s.LoadingPerGPU*gpusPerNode+s.PreprocThreads > totalThreads {
			return fmt.Errorf("loader: %s: static threads %d exceed budget %d",
				s.Name, s.LoadingPerGPU*gpusPerNode+s.PreprocThreads, totalThreads)
		}
	case ThreadsSharedPool:
		if s.SharedLoading < 1 || s.PreprocThreads < 1 {
			return fmt.Errorf("loader: %s: shared mode needs positive thread counts", s.Name)
		}
		if s.SharedLoading+s.PreprocThreads > totalThreads {
			return fmt.Errorf("loader: %s: shared threads %d exceed budget %d",
				s.Name, s.SharedLoading+s.PreprocThreads, totalThreads)
		}
	case ThreadsDynamic:
		// The thread manager enforces the budget itself.
	default:
		return fmt.Errorf("loader: %s: unknown thread mode %d", s.Name, s.Mode)
	}
	return nil
}

// BuildPolicy constructs the spec's eviction policy for one node, given
// the node's future-access oracle (a full access.Plan or a memory-bounded
// access.Windowed) and a last-copy predicate (used only by the Lobster
// policy; may be nil).
func (s Spec) BuildPolicy(plan cache.Oracle, isLastCopy func(dataset.SampleID) bool) cache.Policy {
	switch s.Policy {
	case PolicyPageCache:
		return cache.NewPageCache()
	case PolicyLRU:
		return cache.NewLRU()
	case PolicyFIFO:
		return cache.NewFIFO()
	case PolicyNeverEvict:
		return cache.NewNeverEvict()
	case PolicyLFU:
		return cache.NewLFU()
	case PolicyARC:
		return cache.NewARC()
	case PolicyNoPFS:
		return cache.NewNoPFS(plan)
	case PolicyBelady:
		return cache.NewBelady(plan)
	case PolicyLobster:
		return cache.NewLobster(plan, cache.LobsterOptions{IsLastCopy: isLastCopy})
	default:
		panic(fmt.Sprintf("loader: unknown policy kind %d", int(s.Policy)))
	}
}

// DeepPrefetchDepth is the lookahead (iterations) used by the clairvoyant
// prefetchers (NoPFS and Lobster). Two epochs of a small run would be
// deeper, but prefetch utility decays fast past the point where the cache
// cycles; 64 iterations keeps planning cheap and matches NoPFS's bounded
// prefetch buffers.
const DeepPrefetchDepth = 64

// PyTorch returns the PyTorch DataLoader baseline: "a constant number of
// threads for data loading and another constant number of threads for
// preprocessing", demand-only I/O, page-cache-like LRU.
// The split divides the node budget evenly between the two stages.
func PyTorch(gpusPerNode, totalThreads int) Spec {
	loadingPerGPU := totalThreads / 2 / gpusPerNode
	if loadingPerGPU < 1 {
		loadingPerGPU = 1
	}
	pre := totalThreads - loadingPerGPU*gpusPerNode
	if pre < 1 {
		pre = 1
	}
	return Spec{
		Name:           "pytorch",
		Policy:         PolicyPageCache,
		PrefetchDepth:  0,
		Mode:           ThreadsStatic,
		PreprocThreads: pre,
		LoadingPerGPU:  loadingPerGPU,
	}
}

// DALI returns the DALI baseline: a small node-wide shared loading pool
// ("three threads for data loading by default", plus the pipeline's own
// I/O helper), the rest of the budget on preprocessing, shallow
// double-buffered prefetch, page-cache caching.
func DALI(totalThreads int) Spec {
	// DALI's documented default is 3 CPU loading threads, but its reader
	// also issues asynchronous I/O; in this model's units (synchronous
	// I/O slots) its effective loading concurrency is about a quarter of
	// the node budget.
	shared := totalThreads / 4
	if shared < 3 {
		shared = 3
	}
	if shared > totalThreads-1 {
		shared = totalThreads - 1
	}
	return Spec{
		Name:            "dali",
		Policy:          PolicyPageCache,
		PrefetchDepth:   6,
		Mode:            ThreadsSharedPool,
		PreprocThreads:  totalThreads - shared,
		SharedLoading:   shared,
		PrefetchThreads: 2,
	}
}

// NoPFS returns the NoPFS baseline: clairvoyant deep prefetching over the
// storage hierarchy with the NoPFS eviction policy; "the thread management
// for NoPFS is the same as that with PyTorch I/O".
func NoPFS(gpusPerNode, totalThreads int) Spec {
	base := PyTorch(gpusPerNode, totalThreads)
	return Spec{
		Name:            "nopfs",
		Policy:          PolicyNoPFS,
		PrefetchDepth:   DeepPrefetchDepth,
		Mode:            ThreadsStatic,
		PreprocThreads:  base.PreprocThreads,
		LoadingPerGPU:   base.LoadingPerGPU,
		PrefetchThreads: 5,
	}
}

// Lobster returns the full system: dynamic thread management (Algorithm
// 1 + preprocessing throttling, plus conversion of idle loading threads
// into prefetch work), deep prefetching with background helpers, and the
// reuse-based eviction policy coordinating with it.
func Lobster() Spec {
	return Spec{
		Name:            "lobster",
		Policy:          PolicyLobster,
		PrefetchDepth:   DeepPrefetchDepth,
		Mode:            ThreadsDynamic,
		PrefetchThreads: 3,
		NUMAAware:       true,
	}
}

// LobsterTh is the Section 5.6 ablation with thread management only,
// built — like the paper's online runtime — on the DALI base: dynamic
// thread management replaces DALI's rigid shared pool, while caching and
// prefetching stay at DALI's level (page cache, shallow depth,
// background helpers). "Includes thread management but excludes cache
// eviction based on reuse distance."
func LobsterTh() Spec {
	dali := DALI(24) // prefetch defaults only; thread counts are dynamic
	return Spec{
		Name:            "lobster_th",
		Policy:          PolicyPageCache,
		PrefetchDepth:   dali.PrefetchDepth,
		Mode:            ThreadsDynamic,
		PrefetchThreads: dali.PrefetchThreads,
		NUMAAware:       true,
	}
}

// LobsterEvict is the opposite ablation: the reuse-based eviction policy
// (with deterministic deep prefetching, which it coordinates with) on top
// of DALI's rigid thread assignment.
func LobsterEvict(gpusPerNode, totalThreads int) Spec {
	_ = gpusPerNode // thread shape comes from the DALI base
	base := DALI(totalThreads)
	return Spec{
		Name:            "lobster_evict",
		Policy:          PolicyLobster,
		PrefetchDepth:   DeepPrefetchDepth,
		Mode:            ThreadsSharedPool,
		PreprocThreads:  base.PreprocThreads,
		SharedLoading:   base.SharedLoading,
		PrefetchThreads: base.PrefetchThreads,
		NUMAAware:       true,
	}
}

// Baselines returns the paper's three comparison systems for a node shape.
func Baselines(gpusPerNode, totalThreads int) []Spec {
	return []Spec{
		PyTorch(gpusPerNode, totalThreads),
		DALI(totalThreads),
		NoPFS(gpusPerNode, totalThreads),
	}
}
