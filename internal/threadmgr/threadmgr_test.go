package threadmgr

import (
	"math"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/preproc"
	"repro/internal/tier"
)

func testManager(t *testing.T, totalThreads int) *Manager {
	t.Helper()
	pm := preproc.DefaultModel()
	portfolio, err := perfmodel.FitPortfolio(nil, []int64{32 << 10, 105 << 10}, 16, 6,
		func(size int64, threads int) float64 { return pm.Time(size, threads) })
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Hierarchy:    tier.ThetaGPULike(),
		Portfolio:    portfolio,
		TotalThreads: totalThreads,
		Tau:          0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// demand builds a GPUDemand with the given PFS miss count out of 32
// samples of ~105 KB; the rest are local hits.
func demand(pfsMisses int) GPUDemand {
	const batch = 32
	const size = 105 << 10
	local := batch - pfsMisses
	return GPUDemand{
		Placement: perfmodel.BatchPlacement{
			LocalBytes: int64(local) * size, LocalOps: local,
			PFSBytes: int64(pfsMisses) * size, PFSOps: pfsMisses,
		},
		QueueLen:     batch,
		PreprocBytes: batch * size,
		PreprocCount: batch,
	}
}

func TestNewValidation(t *testing.T) {
	pm := preproc.DefaultModel()
	portfolio, _ := perfmodel.FitPortfolio(nil, []int64{1 << 10}, 4, 2,
		func(size int64, threads int) float64 { return pm.Time(size, threads) })
	if _, err := New(Config{Portfolio: nil, TotalThreads: 4, Tau: 1, Hierarchy: tier.ThetaGPULike()}); err == nil {
		t.Error("nil portfolio accepted")
	}
	if _, err := New(Config{Portfolio: portfolio, TotalThreads: 1, Tau: 1, Hierarchy: tier.ThetaGPULike()}); err == nil {
		t.Error("1 thread accepted")
	}
	if _, err := New(Config{Portfolio: portfolio, TotalThreads: 4, Tau: 0, Hierarchy: tier.ThetaGPULike()}); err == nil {
		t.Error("zero tau accepted")
	}
	bad := tier.ThetaGPULike()
	bad.PFSGlobalMBps = 0
	if _, err := New(Config{Portfolio: portfolio, TotalThreads: 4, Tau: 1, Hierarchy: bad}); err == nil {
		t.Error("invalid hierarchy accepted")
	}
}

func TestDecideBudgetRespected(t *testing.T) {
	m := testManager(t, 16)
	for _, misses := range [][]int{{0, 0, 0, 0}, {32, 0, 0, 0}, {8, 8, 8, 8}, {32, 32, 32, 32}} {
		gpus := make([]GPUDemand, len(misses))
		for j, mm := range misses {
			gpus[j] = demand(mm)
		}
		dec := m.Decide(gpus, 0.050, 1)
		sum := dec.PreprocThreads
		for _, l := range dec.Loading {
			sum += l
			if l < 1 {
				t.Fatalf("misses=%v: GPU got %d threads", misses, l)
			}
		}
		if sum > 16 {
			t.Fatalf("misses=%v: total threads %d > budget 16", misses, sum)
		}
		if dec.PreprocThreads < 1 {
			t.Fatalf("misses=%v: no preprocessing threads", misses)
		}
	}
}

func TestDecideBalancedNoAlgorithm1(t *testing.T) {
	m := testManager(t, 16)
	// All-local batches: loading is trivially fast, no straggler expected.
	gpus := []GPUDemand{demand(0), demand(0), demand(0), demand(0)}
	dec := m.Decide(gpus, 0.050, 1)
	if dec.UsedAlgorithm1 {
		t.Fatal("Algorithm 1 ran for a balanced, fast workload")
	}
	// Equal queues => allocations within one thread of each other (the
	// budget may not divide evenly).
	min, max := dec.Loading[0], dec.Loading[0]
	for _, l := range dec.Loading {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if max-min > 1 {
		t.Fatalf("equal queues got unequal threads: %v", dec.Loading)
	}
}

func TestDecideStragglerGetsMoreThreads(t *testing.T) {
	m := testManager(t, 16)
	// GPU 0 must fetch most of its batch from the PFS; others are local.
	// The train time is short enough that GPU 0's loading cannot hide.
	gpus := []GPUDemand{demand(24), demand(0), demand(0), demand(0)}
	dec := m.Decide(gpus, 0.030, 1)
	if !dec.UsedAlgorithm1 {
		t.Fatal("straggler did not trigger Algorithm 1")
	}
	for j := 1; j < 4; j++ {
		if dec.Loading[0] <= dec.Loading[j] {
			t.Fatalf("straggler GPU 0 got %d threads, GPU %d got %d", dec.Loading[0], j, dec.Loading[j])
		}
	}
}

func TestDecideStealsFromPreprocessingUnderPressure(t *testing.T) {
	m := testManager(t, 16)
	balanced := m.Decide([]GPUDemand{demand(0), demand(0), demand(0), demand(0)}, 0.030, 1)
	pressured := m.Decide([]GPUDemand{demand(32), demand(32), demand(32), demand(32)}, 0.030, 1)
	if pressured.PreprocThreads >= balanced.PreprocThreads {
		t.Fatalf("pipeline pressure did not shrink preprocessing: %d -> %d",
			balanced.PreprocThreads, pressured.PreprocThreads)
	}
	if pressured.PreprocThreads < 1 {
		t.Fatal("preprocessing starved below the floor")
	}
}

func TestDecideImprovesWorstGap(t *testing.T) {
	m := testManager(t, 16)
	gpus := []GPUDemand{demand(28), demand(2), demand(2), demand(2)}
	const train = 0.030

	// Naive equal split for comparison.
	naive := make([]float64, 4)
	for j, d := range gpus {
		naive[j] = m.timeDiff(d, 3, 4, 4, train, 1) // 12 loading + 4 preproc
	}
	dec := m.Decide(gpus, train, 1)
	worstNaive, worstDec := math.Inf(-1), math.Inf(-1)
	for j := range gpus {
		if naive[j] > worstNaive {
			worstNaive = naive[j]
		}
		if dec.PredictedDiff[j] > worstDec {
			worstDec = dec.PredictedDiff[j]
		}
	}
	if worstDec >= worstNaive {
		t.Fatalf("Decide did not improve the worst gap: naive %g vs decided %g", worstNaive, worstDec)
	}
}

func TestProportionalAlloc(t *testing.T) {
	gpus := []GPUDemand{{QueueLen: 30}, {QueueLen: 10}, {QueueLen: 0}}
	got := proportionalAlloc(gpus, 9)
	sum := 0
	for _, l := range got {
		sum += l
		if l < 1 {
			t.Fatalf("allocation below 1: %v", got)
		}
	}
	if sum != 9 {
		t.Fatalf("allocated %d, want 9: %v", sum, got)
	}
	if got[0] <= got[1] || got[1] < got[2] {
		t.Fatalf("allocation not monotone in queue length: %v", got)
	}
}

func TestProportionalAllocIdleQueues(t *testing.T) {
	gpus := []GPUDemand{{}, {}, {}}
	got := proportionalAlloc(gpus, 7)
	sum := 0
	for _, l := range got {
		sum += l
	}
	if sum != 7 {
		t.Fatalf("allocated %d, want 7", sum)
	}
	// Spread must be even within 1.
	if got[0]-got[2] > 1 {
		t.Fatalf("idle spread uneven: %v", got)
	}
}

func TestProportionalAllocTightBudget(t *testing.T) {
	gpus := []GPUDemand{{QueueLen: 5}, {QueueLen: 5}}
	got := proportionalAlloc(gpus, 2)
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("tight budget alloc = %v, want [1 1]", got)
	}
}

func TestSearchThreadsConverges(t *testing.T) {
	m := testManager(t, 16)
	d := demand(24)
	const train = 0.030
	got := m.searchThreads(d, 1, 12, 4, 4, train, 1)
	if got < 1 || got > 12 {
		t.Fatalf("searchThreads out of range: %d", got)
	}
	// The found count must be at least as good as the start.
	start := math.Abs(m.timeDiff(d, 1, 4, 4, train, 1))
	found := math.Abs(m.timeDiff(d, got, 4, 4, train, 1))
	if found > start {
		t.Fatalf("search made things worse: start %g, found %g", start, found)
	}
}

func TestSearchThreadsAlreadyConverged(t *testing.T) {
	m := testManager(t, 16)
	d := demand(0) // trivially fast: |diff| dominated by -train, still >= tau
	got := m.searchThreads(d, 2, 12, 4, 4, 1000.0, 1)
	// With an absurd train time every allocation has the same huge |diff|;
	// the search must terminate and return something in range.
	if got < 1 || got > 12 {
		t.Fatalf("got %d", got)
	}
}

func TestWindowStalled(t *testing.T) {
	if windowStalled([]float64{1}) {
		t.Error("single entry reported stalled")
	}
	if !windowStalled([]float64{3, 2, 2}) {
		t.Error("repeated tail not reported stalled")
	}
	if windowStalled([]float64{2, 3}) {
		t.Error("progressing window reported stalled")
	}
}

func TestDecideEmptyGPUs(t *testing.T) {
	m := testManager(t, 8)
	dec := m.Decide(nil, 0.05, 1)
	if len(dec.Loading) != 0 || dec.PreprocThreads < 1 {
		t.Fatalf("empty decide = %+v", dec)
	}
}
