// Command lobster-plan runs the offline planner (the simulator, as in the
// paper's Section 4.5) and prints the per-iteration thread-management plan
// it pre-computes: preprocessing pool size and per-GPU loading threads.
//
// Example:
//
//	lobster-plan -dataset imagenet-1k -scale tiny -iterations 12
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	var (
		datasetName = flag.String("dataset", "imagenet-1k", "imagenet-1k | imagenet-22k")
		scale       = flag.String("scale", "tiny", "tiny | small | medium | full")
		model       = flag.String("model", "resnet50", "DNN model")
		nodes       = flag.Int("nodes", 1, "number of nodes (8 GPUs each)")
		strategy    = flag.String("strategy", "lobster", "loading strategy to plan for")
		iterations  = flag.Int("iterations", 16, "iterations to plan")
		seed        = flag.Uint64("seed", 42, "schedule seed")
		output      = flag.String("o", "", "write the plan as JSON to this file (interpretable by the online runtime)")
	)
	flag.Parse()

	cfg, err := core.NewConfig(core.Workload{
		Dataset: *datasetName, Scale: *scale, Model: *model,
		Nodes: *nodes, Epochs: 2, Strategy: *strategy, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	plan, err := core.BuildPlan(cfg, *iterations)
	if err != nil {
		fatal(err)
	}
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatal(err)
		}
		if err := plan.File.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("plan written to %s (%d iterations)\n\n", *output, len(plan.File.Iterations))
	}
	fmt.Printf("plan for %s on %s (%d nodes, I=%d iterations/epoch)\n\n",
		*strategy, *datasetName, *nodes, plan.IterationsPerEpoch)
	fmt.Printf("%-9s %10s   %s\n", "iter", "batch(s)", "per-node threads: preproc | loading per GPU")
	for _, rec := range plan.PerIteration {
		fmt.Printf("e%02d/i%03d  %10.4f", rec.Epoch, rec.Iter, rec.BatchTime)
		for n, th := range rec.Threads {
			fmt.Printf("   node%d: %d |", n, th.Preproc)
			for _, l := range th.Loading {
				fmt.Printf(" %d", l)
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-plan:", err)
	os.Exit(1)
}
