// Package par is the bounded fan-out helper behind every concurrent
// campaign sweep in the simulator: the experiments layer runs independent
// pipeline campaigns through one shared Pool, and perfmodel fits its
// per-size preprocessing models the same way.
//
// Design contract (DESIGN.md §9):
//
//   - Bounded: a Pool of W workers never has more than W goroutines
//     executing submitted work, no matter how many fan-outs share it.
//   - Deterministic: results are slotted by item index and errors are
//     reported lowest-index-first, so the output of a fan-out — and
//     therefore every experiment report built from it — is independent
//     of goroutine scheduling. Only wall time may change with W.
//   - Deadlock-free under nesting: the calling goroutine always executes
//     items itself, so a fan-out inside a fan-out (an experiment's
//     campaigns inside lobster-bench's experiment sweep, or FitPortfolio's
//     per-size fits inside a campaign) makes progress even when the pool
//     has no spare workers.
package par

import (
	"sync"
	"sync/atomic"
)

// Pool is a shared concurrency budget for fan-outs. The zero of *Pool
// (nil) is valid and means "run serially in the caller": callers thread
// an optional pool through without branching.
type Pool struct {
	workers int
	// spare holds the launch tokens for extra worker goroutines beyond
	// the caller itself: W-1 tokens, so that callers + extras never
	// exceed W running items. Tokens are taken non-blockingly — an
	// exhausted pool degrades to caller-only execution instead of
	// queueing, which is what makes nested fan-outs deadlock-free.
	spare chan struct{}
}

// NewPool returns a pool allowing up to `workers` items to execute
// concurrently across all fan-outs sharing it. workers < 1 is treated
// as 1 (serial).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, spare: make(chan struct{}, workers-1)}
	for i := 0; i < workers-1; i++ {
		p.spare <- struct{}{}
	}
	return p
}

// Workers returns the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n). All items are attempted even
// after a failure (campaigns are independent; partial sweeps would make
// reports depend on scheduling), and the returned error is the one from
// the lowest failing index. fn must be safe for concurrent invocation
// with distinct i when the pool is wider than one; writes that item i
// makes to index i of a results slice are visible to the caller when
// ForEach returns.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p == nil || p.workers == 1 || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			errs[i] = fn(i)
		}
	}
	var wg sync.WaitGroup
	// Recruit extra workers only while spare tokens exist; each worker
	// returns its token when the fan-out drains. At most n-1 extras:
	// the caller is the n-th.
recruit:
	for extras := 0; extras < n-1; extras++ {
		select {
		case <-p.spare:
		default:
			break recruit // no spare capacity; caller-only from here
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { p.spare <- struct{}{} }()
			work()
		}()
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) with the pool and returns the results slotted
// by index. Error semantics match ForEach.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
