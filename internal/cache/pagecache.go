package cache

import (
	"repro/internal/dataset"
)

// pageCache approximates the OS page cache the PyTorch DataLoader and DALI
// effectively rely on: a segmented LRU (Linux's active/inactive lists).
// New samples enter a probationary segment and are evicted from its LRU
// end; a hit promotes the sample to a protected segment that eviction only
// touches when probation is empty. Promotion demotes the protected LRU
// tail once the protected segment exceeds its share of entries.
//
// Under epoch-period reuse (every reuse distance ≈ one epoch, Fig. 4) a
// plain LRU almost never holds a sample long enough to hit (hit ratio
// ~c²/2 for cache fraction c), which contradicts the measured 24.5% of
// Section 5.5. Segmented LRU converges instead to a stable protected set
// of roughly the cache size that hits every epoch — reproducing the
// page-cache behaviour the paper's baselines actually enjoy.
//
// Both segments are denseLists: an id is in at most one of the two, and
// membership doubles as the "which segment" bit, so no per-entry node or
// map is needed.
type pageCache struct {
	probation *denseList // front = most recent
	protected *denseList
	// protectedShare is protected's maximum fraction of total entries,
	// in eighths (e.g. 6 => 6/8 = 75%).
	protectedShareEighths int
}

// NewPageCache returns the segmented-LRU page-cache model with the Linux
// default-ish 75% protected share.
func NewPageCache() Policy {
	return &pageCache{
		probation:             newDenseList(),
		protected:             newDenseList(),
		protectedShareEighths: 6,
	}
}

func (p *pageCache) Name() string { return "page-cache" }

func (p *pageCache) OnPut(id dataset.SampleID, _ Iter) {
	if p.probation.contains(id) || p.protected.contains(id) {
		p.touch(id)
		return
	}
	p.probation.pushFront(id)
}

func (p *pageCache) OnGet(id dataset.SampleID, _ Iter) {
	if p.probation.contains(id) || p.protected.contains(id) {
		p.touch(id)
	}
}

// touch promotes on re-reference, keeping the protected share bounded.
func (p *pageCache) touch(id dataset.SampleID) {
	if p.protected.contains(id) {
		p.protected.moveToFront(id)
		return
	}
	p.probation.remove(id)
	p.protected.pushFront(id)
	// Re-balance: protected must not exceed its share of all entries.
	total := p.probation.len() + p.protected.len()
	for p.protected.len()*8 > total*p.protectedShareEighths {
		tid, ok := p.protected.back()
		if !ok {
			break
		}
		p.protected.remove(tid)
		p.probation.pushFront(tid)
	}
}

func (p *pageCache) OnRemove(id dataset.SampleID) {
	if p.protected.contains(id) {
		p.protected.remove(id)
	} else if p.probation.contains(id) {
		p.probation.remove(id)
	}
}

// Victim evicts the oldest probationary entry; protected entries are
// only touched when probation is empty. Use-once pages therefore wash
// through probation quickly (surviving for roughly probationBytes /
// missRate — long enough for prefetched-ahead samples to be consumed)
// while re-referenced pages accumulate in the protected segment, which
// converges to a stable set of about the cache size that hits once per
// epoch.
func (p *pageCache) Victim(_ Iter, _ dataset.SampleID) (dataset.SampleID, bool) {
	if tid, ok := p.probation.back(); ok {
		return tid, true
	}
	return p.protected.back()
}

func (p *pageCache) DrainExpired(_ Iter, _ func(dataset.SampleID)) {}
