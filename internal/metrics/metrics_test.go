package metrics

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleRun(strategy string, total float64) *Run {
	r := &Run{
		Strategy: strategy, Model: "resnet50", Dataset: "d",
		Nodes: 1, GPUs: 8, Epochs: 2,
		TotalTime:      total,
		TrainTimeTotal: total * 8 * 0.5, // 50% utilization
		Iterations:     100,
		CacheHits:      300,
		CacheMisses:    700,
		RemoteHits:     200,
		PFSFetches:     500,
		BatchTimes:     stats.NewSummary(),
	}
	for i := 0; i < 100; i++ {
		r.BatchTimes.Add(total / 100)
	}
	return r
}

func TestDerivedMetrics(t *testing.T) {
	r := sampleRun("x", 10)
	if got := r.HitRatio(); got != 0.3 {
		t.Fatalf("HitRatio = %g, want 0.3", got)
	}
	if got := r.GPUUtilization(); got != 0.5 {
		t.Fatalf("GPUUtilization = %g, want 0.5", got)
	}
	r.ImbalancedIterations = 25
	if got := r.ImbalanceFraction(); got != 0.25 {
		t.Fatalf("ImbalanceFraction = %g, want 0.25", got)
	}
	if got := r.Throughput(256); got != 2560 {
		t.Fatalf("Throughput = %g, want 2560", got)
	}
}

func TestZeroSafety(t *testing.T) {
	r := &Run{BatchTimes: stats.NewSummary()}
	if r.HitRatio() != 0 || r.GPUUtilization() != 0 || r.ImbalanceFraction() != 0 ||
		r.Throughput(1) != 0 || r.Speedup(r) != 0 {
		t.Fatal("zero-value run not safe")
	}
}

func TestSpeedup(t *testing.T) {
	base := sampleRun("pytorch", 20)
	fast := sampleRun("lobster", 10)
	if got := fast.Speedup(base); got != 2 {
		t.Fatalf("Speedup = %g, want 2", got)
	}
	if got := base.Speedup(base); got != 1 {
		t.Fatalf("self speedup = %g, want 1", got)
	}
}

func TestTable(t *testing.T) {
	base := sampleRun("pytorch", 20)
	fast := sampleRun("lobster", 10)
	out := Table([]*Run{base, fast})
	if !strings.Contains(out, "pytorch") || !strings.Contains(out, "lobster") {
		t.Fatalf("table missing strategies:\n%s", out)
	}
	if !strings.Contains(out, "2.00") {
		t.Fatalf("table missing speedup:\n%s", out)
	}
	if Table(nil) != "" {
		t.Fatal("empty table should be empty string")
	}
}

func TestString(t *testing.T) {
	s := sampleRun("lobster", 10).String()
	if !strings.Contains(s, "lobster") || !strings.Contains(s, "resnet50") {
		t.Fatalf("String() = %q", s)
	}
}
