// Command lobster-kv runs one shard of the key-value cache tier as a
// standalone process, so a cluster can be deployed across machines (the
// "alternatives to distributed caching like for example KV-stores" of the
// paper's Section 2). Point the online runtime's KVCache at the shard
// addresses. The shard speaks both wire protocols — v1 blocking
// round trips and the pipelined/batched v2 — classifying each frame by
// its first byte, so old and new clients can share a deployment.
//
// Overload control (DESIGN.md §11) is off by default; arm it with the
// -max-inflight / -max-queue / -quota-rate / -quota-burst flags to make
// the shard shed excess load cheaply (statusRetryLater) instead of
// queueing without bound.
//
// Example:
//
//	lobster-kv -addr 127.0.0.1:7001 -capacity 512MiB -stripes 16 -monitor 127.0.0.1:7101 \
//	  -max-inflight 256 -quota-rate 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/kvstore"
	"repro/internal/monitor"
	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
		capacity = flag.String("capacity", "256MiB", "shard capacity (bytes; supports KiB/MiB/GiB suffixes)")
		statsSec = flag.Int("stats-interval", 30, "seconds between stats log lines (0 = silent)")
		stripes  = flag.Int("stripes", 0, "LRU lock stripes (0 = auto-size from capacity)")
		monAddr  = flag.String("monitor", "", "serve /metrics, /healthz, /trace.json and pprof on this address (empty = off)")

		maxInflight = flag.Int("max-inflight", 0, "max requests executing concurrently (0 = unlimited)")
		maxQueue    = flag.Int("max-queue", 0, "max requests waiting for an in-flight slot (0 = 4x max-inflight)")
		maxWait     = flag.Duration("max-wait", 0, "max slot wait for deadline-less requests (0 = 50ms)")
		quotaRate   = flag.Float64("quota-rate", 0, "per-connection sustained requests/sec (0 = no quota)")
		quotaBurst  = flag.Float64("quota-burst", 0, "per-connection token-bucket depth (0 = quota-rate)")
	)
	flag.Parse()

	bytes, err := parseBytes(*capacity)
	if err != nil {
		fatal(err)
	}
	// With a monitor, the shard records server-side spans for traced
	// (0xA4-framed) requests. The ring's process identity is this shard's
	// pid, so its /trace.json merges with client-side dumps in one
	// timeline (lobster-doctor correlates them on rank/iter).
	var ring *obs.TraceRing
	if *monAddr != "" {
		ring = obs.NewTraceRing(1 << 16)
		ring.SetProcess(os.Getpid(), "lobster-kv "+*addr)
	}
	srv, err := kvstore.NewServerOptions(*addr, kvstore.ServerOptions{
		Capacity: bytes,
		Stripes:  *stripes,
		Admission: kvstore.AdmissionConfig{
			MaxInFlight: *maxInflight,
			MaxQueue:    *maxQueue,
			MaxWait:     *maxWait,
			QuotaRate:   *quotaRate,
			QuotaBurst:  *quotaBurst,
		},
		Trace: ring,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("lobster-kv shard listening on %s (capacity %s, %d stripes)\n",
		srv.Addr(), *capacity, srv.Stripes())

	var mon *monitor.Server
	if *monAddr != "" {
		reg := obs.NewRegistry()
		kvstore.InstrumentServer(reg, srv)
		mon, err = monitor.Serve(*monAddr)
		if err != nil {
			fatal(err)
		}
		mon.SetRegistry(reg)
		mon.SetTrace(ring)
		mon.Update(srv.Stats())
		fmt.Printf("monitor at http://%s/metrics\n", mon.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	// The snapshot refresh doubles as the /healthz heartbeat, so it runs
	// even when stats logging is silenced.
	heartbeat := time.NewTicker(heartbeatEvery(*statsSec))
	defer heartbeat.Stop()
	if mon != nil {
		mon.SetMaxStale(3 * heartbeatEvery(*statsSec))
	}
	var lastLog time.Time
	for {
		select {
		case now := <-heartbeat.C:
			st := srv.Stats()
			if mon != nil {
				mon.Update(st)
			}
			if *statsSec > 0 && now.Sub(lastLog) >= time.Duration(*statsSec)*time.Second {
				lastLog = now
				fmt.Printf("items=%d used=%.1fMB hits=%d misses=%d evictions=%d toolarge=%d shed=%d/%d/%d\n",
					st.Items, float64(st.UsedBytes)/1e6, st.Hits, st.Misses, st.Evictions, st.TooLarge,
					st.ShedDeadline, st.ShedQuota, st.ShedQueue)
			}
		case <-stop:
			fmt.Println("shutting down")
			if mon != nil {
				_ = mon.Close() // best-effort; the shard close below is what matters
			}
			if err := srv.Close(); err != nil {
				fatal(err)
			}
			return
		}
	}
}

// heartbeatEvery picks the snapshot refresh period: frequent enough for
// a useful /healthz staleness bound, and aligned with the logging
// cadence when one is configured.
func heartbeatEvery(statsSec int) time.Duration {
	if statsSec > 0 && statsSec < 5 {
		return time.Duration(statsSec) * time.Second
	}
	return 5 * time.Second
}

// parseBytes understands plain integers and KiB/MiB/GiB suffixes.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad capacity %q: %w", s, err)
	}
	if v <= 0 {
		return 0, fmt.Errorf("capacity must be positive, got %d", v)
	}
	return v * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-kv:", err)
	os.Exit(1)
}
