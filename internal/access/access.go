// Package access derives, from a deterministic schedule, everything the
// Lobster policies need to know about the future: for every training
// sample, when a given node will access it next, and how many times it will
// still be accessed before training ends.
//
// Section 4.4: "we can determine, at each moment during training, two
// parameters: (1) how many times each training sample will be reused by all
// GPUs until the end of training; (2) the minimum reuse distance of each
// training sample across all GPUs. To obtain these parameters efficiently,
// we maintain a list of future accesses for each training sample."
// This package is exactly that list.
package access

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/sampler"
	"repro/internal/stats"
)

// Iter is a global iteration index: epoch*I + iterationWithinEpoch.
// It is an alias (not a defined type) so that access.Plan satisfies
// oracle interfaces declared in consumer packages (e.g. cache.Oracle)
// without adapters.
type Iter = int32

// NoAccess marks "never accessed again".
const NoAccess Iter = -1

// Plan holds the future-access lists of one node for an entire training
// run. It is immutable after Build and safe for concurrent readers.
//
// Memory: one int32 per (sample, access-by-this-node). A node accesses
// |D|/N samples per epoch, so a full plan costs 4*E*|D|/N bytes — a few MB
// at the reduced experiment scales, and bounded by the horizon argument for
// full-scale runs (the Lobster policies only ever look 2 epochs ahead; see
// the reuse-distance policy in Section 4.4).
//
// The per-sample lists live in one flat backing array addressed by an
// offsets table (sample id's accesses are flat[offsets[id]:offsets[id+1]])
// rather than a slice-of-slices: building it is two allocations instead of
// one growing slice per sample, and NextUse/UsesRemaining — the innermost
// queries of every Lobster policy decision — binary-search a contiguous
// window.
type Plan struct {
	node        int
	gpusPerNode int
	iters       int // iterations per epoch
	epochs      int
	numSamples  int
	offsets     []int32 // len numSamples+1; per sample: [start, end) into flat
	flat        []Iter  // ascending global iterations, grouped by sample
}

// Build constructs the plan of `node` (0-based) for `epochs` epochs of the
// schedule. horizonEpochs bounds how far ahead the detailed lists extend;
// pass epochs (or 0) for a full-horizon plan.
func Build(s *sampler.Schedule, node, gpusPerNode, epochs, horizonEpochs int) (*Plan, error) {
	if s == nil {
		return nil, fmt.Errorf("access: nil schedule")
	}
	if node < 0 || gpusPerNode < 1 || (node+1)*gpusPerNode > s.WorldSize() {
		return nil, fmt.Errorf("access: node %d with %d GPUs out of world %d", node, gpusPerNode, s.WorldSize())
	}
	if epochs < 1 {
		return nil, fmt.Errorf("access: epochs %d < 1", epochs)
	}
	if horizonEpochs <= 0 || horizonEpochs > epochs {
		horizonEpochs = epochs
	}
	p := &Plan{
		node:        node,
		gpusPerNode: gpusPerNode,
		iters:       s.IterationsPerEpoch(),
		epochs:      epochs,
		numSamples:  s.Dataset().Len(),
	}
	// Single schedule walk (epoch permutations are expensive to
	// regenerate): record the node's whole access sequence plus where each
	// iteration ends, count per-sample accesses, then scatter the sequence
	// into the flat per-sample layout via an offsets prefix sum.
	counts := make([]int32, p.numSamples)
	seq := make([]dataset.SampleID, 0, horizonEpochs*p.iters)
	iterEnds := make([]int32, 0, horizonEpochs*p.iters)
	var batch []dataset.SampleID
	for epoch := 0; epoch < horizonEpochs; epoch++ {
		for it := 0; it < p.iters; it++ {
			batch = s.NodeBatch(batch[:0], epoch, it, node, gpusPerNode)
			seq = append(seq, batch...)
			iterEnds = append(iterEnds, int32(len(seq)))
			for _, id := range batch {
				counts[id]++
			}
		}
	}
	p.offsets = make([]int32, p.numSamples+1)
	var sum int32
	for id, n := range counts {
		p.offsets[id] = sum
		sum += n
		counts[id] = 0 // reuse as the fill cursor below
	}
	p.offsets[p.numSamples] = sum
	p.flat = make([]Iter, sum)
	pos := 0
	for gi, end := range iterEnds {
		g := Iter(gi)
		for ; pos < int(end); pos++ {
			id := seq[pos]
			p.flat[p.offsets[id]+counts[id]] = g
			counts[id]++
		}
	}
	return p, nil
}

// Node returns the node this plan belongs to.
func (p *Plan) Node() int { return p.node }

// IterationsPerEpoch returns I.
func (p *Plan) IterationsPerEpoch() int { return p.iters }

// TotalIterations returns epochs * I.
func (p *Plan) TotalIterations() Iter { return Iter(p.epochs * p.iters) }

// NextUse returns the first iteration strictly after `after` at which this
// node accesses the sample, or NoAccess if it never does (within the plan
// horizon).
func (p *Plan) NextUse(id dataset.SampleID, after Iter) Iter {
	i := p.searchAfter(id, after)
	if i == p.offsets[id+1] {
		return NoAccess
	}
	return p.flat[i]
}

// searchAfter returns the index into flat of the first access of id
// strictly after `after`, or the sample's end offset. Hand-rolled binary
// search: this runs on every policy decision, and avoiding the
// sort.Search closure call per probe measurably cheapens the hot path.
func (p *Plan) searchAfter(id dataset.SampleID, after Iter) int32 {
	lo, hi := p.offsets[id], p.offsets[id+1]
	for lo < hi {
		mid := int32(uint32(lo+hi) >> 1)
		if p.flat[mid] > after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// NextReuseDistance returns NextUse(id, after) - after, or NoAccess if the
// sample is not used again. This is the quantity the reuse-distance
// eviction policy thresholds against 2I - h.
func (p *Plan) NextReuseDistance(id dataset.SampleID, after Iter) Iter {
	n := p.NextUse(id, after)
	if n == NoAccess {
		return NoAccess
	}
	return n - after
}

// UsesRemaining returns how many accesses of the sample by this node occur
// strictly after `after`. This is the reuse count of Section 4.4.
func (p *Plan) UsesRemaining(id dataset.SampleID, after Iter) int {
	return int(p.offsets[id+1] - p.searchAfter(id, after))
}

// AccessesOf returns the full access list of a sample (shared slice; do not
// modify). Used by tests and the trace tooling.
func (p *Plan) AccessesOf(id dataset.SampleID) []Iter {
	return p.flat[p.offsets[id]:p.offsets[id+1]]
}

// ReuseDistanceHistogram computes the distribution of reuse distances (in
// iterations) between consecutive accesses of the same sample on this node
// — the measurement behind Fig. 4. Distances are collected into a
// log-scaled histogram from 1 to the run length.
func (p *Plan) ReuseDistanceHistogram(bins int) (*stats.Histogram, error) {
	maxD := float64(p.TotalIterations())
	if maxD < 2 {
		maxD = 2
	}
	h, err := stats.NewLogHistogram(1, maxD, bins)
	if err != nil {
		return nil, err
	}
	for id := 0; id < p.numSamples; id++ {
		list := p.flat[p.offsets[id]:p.offsets[id+1]]
		for i := 1; i < len(list); i++ {
			h.Add(float64(list[i] - list[i-1]))
		}
	}
	return h, nil
}

// MeanReuseDistance returns the average distance between consecutive
// accesses, and the number of reuse pairs observed.
func (p *Plan) MeanReuseDistance() (float64, int) {
	var sum float64
	var n int
	for id := 0; id < p.numSamples; id++ {
		list := p.flat[p.offsets[id]:p.offsets[id+1]]
		for i := 1; i < len(list); i++ {
			sum += float64(list[i] - list[i-1])
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}
