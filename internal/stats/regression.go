package stats

import (
	"fmt"
	"math"
	"sort"
)

// LinearFit is a least-squares line y = Intercept + Slope*x.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination on the fitted points
}

// FitLinear computes the ordinary least-squares fit of y on x. It returns
// an error if fewer than two distinct x values are provided.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: FitLinear length mismatch (%d vs %d)", len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLinear needs at least 2 points, got %d", len(x))
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("stats: FitLinear needs at least 2 distinct x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range x {
		pred := intercept + slope*x[i]
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Eval returns the fitted value at x.
func (f LinearFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// PiecewiseLinear is a continuous piecewise-linear function defined by knot
// points. Between knots it interpolates linearly; outside the knot range it
// extrapolates with the nearest segment's slope clamped to flat (the
// physically sensible behaviour for throughput curves).
//
// This is the model family the paper uses for the preprocessing stage
// ("a piece-wise linear regression model that takes the number of threads
// as input and predicts the execution time of processing one training
// sample", Section 4.1).
type PiecewiseLinear struct {
	xs []float64 // strictly increasing knot positions
	ys []float64
}

// NewPiecewiseLinear builds a piecewise-linear function from knot points.
// The xs must be strictly increasing.
func NewPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: piecewise knots length mismatch (%d vs %d)", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("stats: piecewise needs at least 2 knots, got %d", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("stats: piecewise knots must be strictly increasing at index %d", i)
		}
	}
	p := &PiecewiseLinear{xs: make([]float64, len(xs)), ys: make([]float64, len(ys))}
	copy(p.xs, xs)
	copy(p.ys, ys)
	return p, nil
}

// FitPiecewiseLinear fits a piecewise-linear model with the given number of
// segments to (x, y) observations by placing knots at x quantiles and
// setting each knot's value to a local least-squares estimate. The input
// need not be sorted. It is deliberately simple — the planner refits it
// rarely (offline), and throughput-vs-threads curves are smooth.
func FitPiecewiseLinear(x, y []float64, segments int) (*PiecewiseLinear, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("stats: FitPiecewiseLinear length mismatch (%d vs %d)", len(x), len(y))
	}
	if segments < 1 {
		return nil, fmt.Errorf("stats: FitPiecewiseLinear needs at least 1 segment, got %d", segments)
	}
	if len(x) < 2 {
		return nil, fmt.Errorf("stats: FitPiecewiseLinear needs at least 2 points, got %d", len(x))
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, len(x))
	for i := range x {
		pts[i] = pt{x[i], y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })

	// Deduplicate identical x by averaging y: knots must be strictly
	// increasing.
	uniq := pts[:0]
	for i := 0; i < len(pts); {
		j := i
		sum := 0.0
		for j < len(pts) && pts[j].x == pts[i].x {
			sum += pts[j].y
			j++
		}
		uniq = append(uniq, pt{pts[i].x, sum / float64(j-i)})
		i = j
	}
	pts = uniq
	if len(pts) < 2 {
		return nil, fmt.Errorf("stats: FitPiecewiseLinear needs at least 2 distinct x values")
	}
	if segments > len(pts)-1 {
		segments = len(pts) - 1
	}

	nk := segments + 1
	xs := make([]float64, nk)
	ys := make([]float64, nk)
	for k := 0; k < nk; k++ {
		// Knot at the quantile position of the sorted x values.
		idx := k * (len(pts) - 1) / segments
		xs[k] = pts[idx].x
		ys[k] = pts[idx].y
	}
	return NewPiecewiseLinear(xs, ys)
}

// Eval evaluates the function at x, extrapolating flat beyond the knots.
func (p *PiecewiseLinear) Eval(x float64) float64 {
	if x <= p.xs[0] {
		return p.ys[0]
	}
	last := len(p.xs) - 1
	if x >= p.xs[last] {
		return p.ys[last]
	}
	// Binary search for the segment containing x.
	lo, hi := 0, last
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (x - p.xs[lo]) / (p.xs[hi] - p.xs[lo])
	return p.ys[lo]*(1-frac) + p.ys[hi]*frac
}

// Knots returns copies of the knot positions and values.
func (p *PiecewiseLinear) Knots() (xs, ys []float64) {
	xs = make([]float64, len(p.xs))
	ys = make([]float64, len(p.ys))
	copy(xs, p.xs)
	copy(ys, p.ys)
	return xs, ys
}

// ArgMax returns the knot-grid x in [lo, hi] that maximises the function,
// scanning at unit steps (thread counts are integers). Used to find the
// peak-throughput preprocessing thread count (Observation 3).
func (p *PiecewiseLinear) ArgMax(lo, hi float64) (bestX, bestY float64) {
	bestX, bestY = lo, math.Inf(-1)
	for x := lo; x <= hi; x++ {
		if y := p.Eval(x); y > bestY {
			bestX, bestY = x, y
		}
	}
	return bestX, bestY
}
