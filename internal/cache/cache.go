// Package cache implements the node-local training-sample cache with
// pluggable eviction policies.
//
// It provides the baseline policies the paper compares against (LRU as used
// implicitly by PyTorch/DALI through the OS page cache, FIFO, the
// never-evict policy of MinIO, the NoPFS eviction) as well as the paper's
// contribution: the Lobster policy combining the reuse-count rule, the
// reuse-distance rule, and coordination with prefetching (Section 4.4).
// A clairvoyant Belady/OPT policy is included as the upper bound used in
// tests and ablations.
package cache

import (
	"fmt"

	"repro/internal/dataset"
)

// NoSample is passed to Victim when eviction is driven by capacity
// pressure without a specific incoming sample.
const NoSample dataset.SampleID = -1

// Iter is a global iteration timestamp (mirrors access.Iter; redeclared to
// keep this package independent of plan construction).
type Iter = int32

// Policy is the eviction-decision interface. Implementations keep whatever
// per-entry metadata they need; the Cache guarantees the call protocol:
// OnPut for every inserted id, OnGet for every hit, OnRemove exactly once
// when an id leaves the cache for any reason.
type Policy interface {
	// Name identifies the policy in metrics and logs.
	Name() string
	// OnPut records an insertion at iteration now.
	OnPut(id dataset.SampleID, now Iter)
	// OnGet records a hit at iteration now.
	OnGet(id dataset.SampleID, now Iter)
	// OnRemove records that id left the cache.
	OnRemove(id dataset.SampleID)
	// Victim proposes the next eviction candidate, given that we are
	// making room for `incoming` (or NoSample). ok=false means the policy
	// refuses to evict anything for this incoming sample — the insert is
	// rejected instead.
	Victim(now Iter, incoming dataset.SampleID) (dataset.SampleID, bool)
	// DrainExpired emits ids the policy wants evicted proactively
	// (independent of capacity pressure), e.g. Lobster's reuse-count and
	// reuse-distance rules. May emit nothing.
	DrainExpired(now Iter, emit func(dataset.SampleID))
}

// Cache is a byte-capacity cache of sample IDs. It stores no payloads —
// in the simulator only membership matters; the online runtime pairs it
// with a payload store. Not safe for concurrent use; the online runtime
// wraps it in a mutex.
type Cache struct {
	capacity int64
	used     int64
	// sizes is indexed by the dense sample id; 0 means "not cached"
	// (Put validates sizes are positive). A flat slice instead of a map
	// keeps the membership probe — executed several times per sample
	// access across Get/Contains/Put — allocation-free and branch-cheap.
	sizes  []int64
	count  int
	policy Policy

	// Statistics.
	hits      uint64
	misses    uint64
	evictions uint64
	rejected  uint64

	// scratch collects evicted ids; reused across calls so the hot path
	// (millions of Puts per simulated epoch) does not allocate. emit is
	// the pre-bound callback handed to Policy.DrainExpired for the same
	// reason.
	scratch []dataset.SampleID
	emit    func(dataset.SampleID)
}

// New creates a cache with the given byte capacity and policy.
func New(capacity int64, policy Policy) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity %d <= 0", capacity)
	}
	if policy == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	c := &Cache{
		capacity: capacity,
		policy:   policy,
	}
	c.emit = func(id dataset.SampleID) {
		if !c.Contains(id) {
			return // already gone
		}
		c.removeLocked(id)
		c.evictions++
		c.scratch = append(c.scratch, id)
	}
	return c, nil
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached.
func (c *Cache) Used() int64 { return c.used }

// Free returns the remaining capacity in bytes.
func (c *Cache) Free() int64 { return c.capacity - c.used }

// Len returns the number of cached samples.
func (c *Cache) Len() int { return c.count }

// PolicyName returns the eviction policy's name.
func (c *Cache) PolicyName() string { return c.policy.Name() }

// Contains reports membership without touching policy state or stats.
func (c *Cache) Contains(id dataset.SampleID) bool {
	return uint(id) < uint(len(c.sizes)) && c.sizes[id] != 0
}

// Get looks up id at iteration now, recording a hit or miss.
func (c *Cache) Get(id dataset.SampleID, now Iter) bool {
	if c.Contains(id) {
		c.hits++
		c.policy.OnGet(id, now)
		return true
	}
	c.misses++
	return false
}

// Put inserts id with the given size, evicting as needed. It returns the
// evicted ids (possibly empty) and whether the insert happened. Inserts
// are rejected when the sample is larger than the whole cache, when it is
// already present (no-op, reported as inserted), or when the policy
// refuses to evict for it.
//
// The returned slice is reused by the next Put or Maintain call: consume
// it before calling back into the cache.
func (c *Cache) Put(id dataset.SampleID, size int64, now Iter) (evicted []dataset.SampleID, ok bool) {
	if size <= 0 {
		panic(fmt.Sprintf("cache: Put sample %d with size %d", id, size))
	}
	if c.Contains(id) {
		return nil, true
	}
	if size > c.capacity {
		c.rejected++
		return nil, false
	}
	// Proactive (policy-initiated) evictions first: they may free enough.
	c.scratch = c.scratch[:0]
	c.drainExpired(now)
	for c.used+size > c.capacity {
		victim, vok := c.policy.Victim(now, id)
		if !vok {
			c.rejected++
			return c.scratch, false
		}
		c.removeLocked(victim)
		c.evictions++
		c.scratch = append(c.scratch, victim)
	}
	c.sizes = grown(c.sizes, int(id), 0)
	c.sizes[id] = size
	c.count++
	c.used += size
	c.policy.OnPut(id, now)
	return c.scratch, true
}

// Remove deletes id (e.g. invalidation), returning whether it was present.
// It does not count as an eviction.
func (c *Cache) Remove(id dataset.SampleID) bool {
	if !c.Contains(id) {
		return false
	}
	c.removeLocked(id)
	return true
}

// Maintain runs the policy's proactive eviction rules at iteration now and
// returns any evicted ids. Lobster calls this after every iteration; for
// baseline policies it is a no-op. The returned slice is reused by the
// next Put or Maintain call.
func (c *Cache) Maintain(now Iter) []dataset.SampleID {
	c.scratch = c.scratch[:0]
	c.drainExpired(now)
	return c.scratch
}

func (c *Cache) drainExpired(now Iter) {
	c.policy.DrainExpired(now, c.emit)
}

func (c *Cache) removeLocked(id dataset.SampleID) {
	if !c.Contains(id) {
		panic(fmt.Sprintf("cache: internal remove of absent sample %d", id))
	}
	c.used -= c.sizes[id]
	c.sizes[id] = 0
	c.count--
	c.policy.OnRemove(id)
}

// Stats is a snapshot of cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Rejected  uint64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Rejected: c.rejected}
}

// HitRatio returns hits / (hits + misses), or 0 with no lookups.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
