package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %v, want 3", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.At(1, func() {
		times = append(times, e.Now())
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v, want [1 3]", times)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	h := e.At(1, func() { ran = true })
	if !e.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(h) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.EventsRun() != 0 {
		t.Fatalf("EventsRun = %d, want 0", e.EventsRun())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	e.RunUntil(2.5)
	if len(ran) != 2 {
		t.Fatalf("ran %v, want events at 1 and 2 only", ran)
	}
	if e.Now() != 2.5 {
		t.Fatalf("Now = %v, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("after Run, ran %v", ran)
	}
}

func TestEngineClockMonotone(t *testing.T) {
	f := func(seed int64, deltasRaw []uint8) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if depth > 0 {
				e.After(Time(depth)*0.5, func() { schedule(depth - 1) })
			}
		}
		for _, d := range deltasRaw {
			e.At(Time(d), func() { schedule(3) })
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceQueueing(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "threads", 2)
	var grants []Time
	hold := func(d Time) {
		r.Acquire(func() {
			grants = append(grants, e.Now())
			e.After(d, r.Release)
		})
	}
	e.At(0, func() {
		hold(10)
		hold(10)
		hold(10) // queued until t=10
		hold(10) // queued until t=10
	})
	e.Run()
	if len(grants) != 4 {
		t.Fatalf("grants = %v, want 4 entries", grants)
	}
	if grants[0] != 0 || grants[1] != 0 {
		t.Fatalf("first two grants at %v %v, want 0 0", grants[0], grants[1])
	}
	if grants[2] != 10 || grants[3] != 10 {
		t.Fatalf("queued grants at %v %v, want 10 10", grants[2], grants[3])
	}
}

func TestResourceFIFOGrants(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	var order []int
	e.At(0, func() {
		r.Acquire(func() { e.After(1, r.Release) })
		for i := 0; i < 5; i++ {
			i := i
			r.Acquire(func() {
				order = append(order, i)
				e.After(1, r.Release)
			})
		}
	})
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grants not FIFO: %v", order)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "u", 2)
	e.At(0, func() {
		r.Acquire(func() { e.After(10, r.Release) })
	})
	e.At(0, func() {
		r.Acquire(func() { e.After(10, r.Release) })
	})
	// Let the clock reach t=20 with the resource idle for the second half.
	e.At(20, func() {})
	e.Run()
	u := r.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %g, want ~0.5", u)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "p", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceInvalidCapacityPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewResource(e, "bad", 0)
}
