// Package core is the public facade of the Lobster reproduction: one place
// to configure a training workload, pick a loading strategy, and run it —
// either through the virtual-time simulator (fast, deterministic, any
// scale; what the experiments use) or through the online goroutine runtime
// (real concurrency, real bytes, scaled wall time).
//
// Typical use:
//
//	cfg, err := core.NewConfig(core.Workload{
//		Dataset:  "imagenet-1k",
//		Scale:    "small",
//		Model:    "resnet50",
//		Nodes:    1,
//		Epochs:   10,
//		Strategy: "lobster",
//	})
//	res, err := core.Simulate(cfg)
//	fmt.Println(res.Metrics)
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/runtime"
	"repro/internal/trainsim"
)

// Workload is the user-facing description of a run.
type Workload struct {
	// Dataset is "imagenet-1k" or "imagenet-22k".
	Dataset string
	// Scale is "tiny", "small", "medium" or "full" (see dataset.Scale).
	Scale string
	// Model is one of the six Section 5.1 networks (e.g. "resnet50").
	Model string
	// Nodes is the node count (8 GPUs each).
	Nodes int
	// Epochs to train.
	Epochs int
	// Strategy is "pytorch", "dali", "nopfs", "lobster", "lobster_th" or
	// "lobster_evict".
	Strategy string
	// Seed for the deterministic schedule (default 42).
	Seed uint64
	// CacheRatio overrides the node cache : dataset size ratio
	// (default: the paper's ratio for the chosen dataset).
	CacheRatio float64
}

// Config is a fully-resolved run configuration.
type Config struct {
	Pipeline pipeline.Config
	Scale    dataset.Scale
}

// Strategies lists the available strategy names.
func Strategies() []string {
	return []string{"pytorch", "dali", "nopfs", "lobster", "lobster_th", "lobster_evict"}
}

// StrategyByName resolves a strategy spec for a node shape.
func StrategyByName(name string, gpusPerNode, cpuThreads int) (loader.Spec, error) {
	switch name {
	case "pytorch":
		return loader.PyTorch(gpusPerNode, cpuThreads), nil
	case "dali":
		return loader.DALI(cpuThreads), nil
	case "nopfs":
		return loader.NoPFS(gpusPerNode, cpuThreads), nil
	case "lobster":
		return loader.Lobster(), nil
	case "lobster_th":
		return loader.LobsterTh(), nil
	case "lobster_evict":
		return loader.LobsterEvict(gpusPerNode, cpuThreads), nil
	default:
		return loader.Spec{}, fmt.Errorf("core: unknown strategy %q (want one of %v)", name, Strategies())
	}
}

// NewConfig resolves a Workload into a runnable Config.
func NewConfig(w Workload) (*Config, error) {
	if w.Seed == 0 {
		w.Seed = 42
	}
	if w.Nodes == 0 {
		w.Nodes = 1
	}
	if w.Epochs == 0 {
		w.Epochs = 10
	}
	if w.Scale == "" {
		w.Scale = "small"
	}
	scale, err := dataset.ParseScale(w.Scale)
	if err != nil {
		return nil, err
	}

	var spec dataset.Spec
	ratio := w.CacheRatio
	switch w.Dataset {
	case "", "imagenet-1k":
		spec = dataset.ImageNet1K(scale, w.Seed)
		if ratio == 0 {
			ratio = 40.0 / 135.0
		}
	case "imagenet-22k":
		spec = dataset.ImageNet22K(scale, w.Seed)
		if ratio == 0 {
			ratio = 40.0 / 1331.0
		}
	default:
		return nil, fmt.Errorf("core: unknown dataset %q (want imagenet-1k or imagenet-22k)", w.Dataset)
	}
	model, err := cluster.ModelByName(defaulted(w.Model, "resnet50"))
	if err != nil {
		return nil, err
	}
	// The dataset must cover at least a few iterations per epoch.
	minSamples := 8 * w.Nodes * 8 * model.BatchSize
	if spec.NumSamples < minSamples {
		spec.NumSamples = minSamples
	}
	ds, err := dataset.Generate(spec)
	if err != nil {
		return nil, err
	}
	top := cluster.ThetaGPULike(w.Nodes, int64(float64(ds.TotalBytes())*ratio))
	strat, err := StrategyByName(defaulted(w.Strategy, "lobster"), top.GPUsPerNode, top.CPUThreads)
	if err != nil {
		return nil, err
	}
	return &Config{
		Scale: scale,
		Pipeline: pipeline.Config{
			Topology: top,
			Model:    model,
			Dataset:  ds,
			Epochs:   w.Epochs,
			Seed:     w.Seed,
			Strategy: strat,
		},
	}, nil
}

func defaulted(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// Simulate runs the configuration through the virtual-time simulator.
func Simulate(cfg *Config) (*pipeline.Result, error) {
	return pipeline.Run(cfg.Pipeline)
}

// Train runs the configuration as a full training campaign, attaching the
// accuracy curve (Fig. 9 semantics).
func Train(cfg *Config) (*trainsim.Campaign, error) {
	return trainsim.Run(cfg.Pipeline)
}

// RunOnline executes the configuration on the concurrent goroutine
// runtime with the given time scale (0 = default).
func RunOnline(cfg *Config, timeScale float64) (*runtime.Stats, error) {
	return runtime.Run(runtime.Options{
		Topology:  cfg.Pipeline.Topology,
		Dataset:   cfg.Pipeline.Dataset,
		Model:     cfg.Pipeline.Model,
		Epochs:    cfg.Pipeline.Epochs,
		Seed:      cfg.Pipeline.Seed,
		Strategy:  cfg.Pipeline.Strategy,
		TimeScale: timeScale,
	})
}

// RunOnlineWithPlan executes the online runtime in plan-following mode:
// thread assignments come from the pre-computed plan instead of the live
// controller — the exact offline-plan / online-enforcement split of
// Section 4.5.
func RunOnlineWithPlan(cfg *Config, pf *plan.Plan, timeScale float64) (*runtime.Stats, error) {
	return runtime.Run(runtime.Options{
		Topology:   cfg.Pipeline.Topology,
		Dataset:    cfg.Pipeline.Dataset,
		Model:      cfg.Pipeline.Model,
		Epochs:     cfg.Pipeline.Epochs,
		Seed:       cfg.Pipeline.Seed,
		Strategy:   cfg.Pipeline.Strategy,
		TimeScale:  timeScale,
		ThreadPlan: pf,
	})
}

// Plan is the offline planner's output for the first iterations of a run:
// the thread-management plan the online runtime enforces (Section 4.5's
// "pre-compute an efficient thread management plan"). The serializable
// half lives in internal/plan; PerIteration keeps the full trace records
// (timings) for display.
type Plan struct {
	IterationsPerEpoch int
	PerIteration       []pipeline.IterRecord
	// File is the serializable plan (internal/plan format) the online
	// runtime can interpret directly.
	File *plan.Plan
}

// BuildPlan runs the planner (the simulator, as in the paper) for the
// given number of iterations and returns the per-iteration thread
// decisions and timings.
func BuildPlan(cfg *Config, iterations int) (*Plan, error) {
	pc := cfg.Pipeline
	pc.CollectTrace = true
	pc.MaxTraceIters = iterations
	res, err := pipeline.Run(pc)
	if err != nil {
		return nil, err
	}
	recs := res.Trace
	if len(recs) > iterations {
		recs = recs[:iterations]
	}
	pf := &plan.Plan{
		Version:            plan.Version,
		Strategy:           cfg.Pipeline.Strategy.Name,
		Dataset:            cfg.Pipeline.Dataset.Name(),
		Model:              cfg.Pipeline.Model.Name,
		Nodes:              cfg.Pipeline.Topology.Nodes,
		GPUsPerNode:        cfg.Pipeline.Topology.GPUsPerNode,
		IterationsPerEpoch: res.IterationsPerEpoch,
		Seed:               cfg.Pipeline.Seed,
	}
	for _, rec := range recs {
		pf.Iterations = append(pf.Iterations, plan.Iteration{
			Epoch:          rec.Epoch,
			Iter:           rec.Iter,
			Threads:        rec.Threads,
			PredictedBatch: rec.BatchTime,
		})
	}
	if err := pf.Validate(); err != nil {
		return nil, fmt.Errorf("core: planner produced invalid plan: %w", err)
	}
	return &Plan{IterationsPerEpoch: res.IterationsPerEpoch, PerIteration: recs, File: pf}, nil
}
