package kvstore

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hedged reads (DESIGN.md §11): when a cluster is configured with read
// replicas, Get and the per-shard halves of MultiGet race a primary
// request against a delayed "hedge" to the shard's first replica. The
// hedge fires only after the primary has been outstanding longer than a
// tracked latency quantile — so in the common case it never fires and
// costs nothing — and whichever response arrives first wins, with the
// loser cancelled through its context. One straggling shard therefore
// no longer sets the completion time of a whole prefetch window
// (NoPFS's observation: straggler remote reads become training stalls).
//
// Replication is write-through and best-effort: a failed or missed
// replica write degrades a future hedge to a cache miss, never to wrong
// data, because the kv tier is a cache — a hedged "not found" just
// sends the caller down its normal miss path.

// ctxShardClient is the optional per-shard surface hedging needs;
// ClientV2 implements it, the v1 Client does not (so v1 clusters
// replicate writes but never hedge).
type ctxShardClient interface {
	GetContext(ctx context.Context, key string) ([]byte, bool, error)
	MultiGetContext(ctx context.Context, keys []string) ([][]byte, error)
}

// Defaults for the adaptive hedge delay.
const (
	defaultHedgeQuantile = 0.95
	defaultHedgeMin      = 200 * time.Microsecond
	defaultHedgeMax      = 5 * time.Millisecond
	// hedgeRingSize is the latency sample window behind the quantile.
	hedgeRingSize = 128
	// hedgeRecompute is how many new samples trigger a quantile
	// recomputation once the ring has warmed up.
	hedgeRecompute = 32
)

// hedgeTracker picks the hedge delay: a fixed configured value, or a
// tracked quantile of recent successful primary-read latencies, clamped
// to [min, max]. The current delay is cached atomically so the read hot
// path pays one load; the quantile itself is recomputed every
// hedgeRecompute samples (every sample while warming up).
type hedgeTracker struct {
	fixed    time.Duration
	quantile float64
	min, max time.Duration

	cached atomic.Int64 // current delay, nanoseconds

	mu    sync.Mutex
	ring  [hedgeRingSize]time.Duration
	pos   int
	n     int
	since int
}

func newHedgeTracker(fixed time.Duration, quantile float64, min, max time.Duration) *hedgeTracker {
	if quantile <= 0 || quantile >= 1 {
		quantile = defaultHedgeQuantile
	}
	if min <= 0 {
		min = defaultHedgeMin
	}
	if max <= min {
		max = defaultHedgeMax
		if max < min {
			max = 2 * min
		}
	}
	t := &hedgeTracker{fixed: fixed, quantile: quantile, min: min, max: max}
	// Until samples arrive, hedge conservatively late.
	t.cached.Store(int64(max))
	return t
}

// delay returns the current hedge delay.
func (t *hedgeTracker) delay() time.Duration {
	if t.fixed > 0 {
		return t.fixed
	}
	return time.Duration(t.cached.Load())
}

// observe records one successful primary-read latency. Hedged wins are
// not recorded: feeding replica latencies back in would ratchet the
// delay downward and fire ever more hedges.
func (t *hedgeTracker) observe(d time.Duration) {
	if t.fixed > 0 {
		return
	}
	t.mu.Lock()
	t.ring[t.pos] = d
	t.pos = (t.pos + 1) % hedgeRingSize
	if t.n < hedgeRingSize {
		t.n++
	}
	t.since++
	if t.since >= hedgeRecompute || t.n < hedgeRecompute {
		t.since = 0
		t.recomputeLocked()
	}
	t.mu.Unlock()
}

// recomputeLocked re-derives the cached delay from the ring. Called
// with t.mu held.
func (t *hedgeTracker) recomputeLocked() {
	var scratch [hedgeRingSize]time.Duration
	s := scratch[:t.n]
	copy(s, t.ring[:t.n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	d := s[int(t.quantile*float64(t.n-1)+0.5)]
	if d < t.min {
		d = t.min
	}
	if d > t.max {
		d = t.max
	}
	t.cached.Store(int64(d))
}

// hedgeRes is one arm's outcome in a hedged race.
type hedgeRes struct {
	vals   [][]byte
	val    []byte
	found  bool
	err    error
	hedged bool
}

// hedgePair returns the ctx-capable clients for a routed shard s and
// its hedge shard h (picked by Cluster.hedgeIndex, so h is always a
// live copy-holder of the keys being read); nils when hedging is off
// for this read (h < 0) or a v1 client sits on either end.
func (c *Cluster) hedgePair(s, h int) (ctxShardClient, ctxShardClient) {
	if h < 0 {
		return nil, nil
	}
	pc, ok := c.clients[s].(ctxShardClient)
	if !ok {
		return nil, nil
	}
	rc, ok := c.clients[h].(ctxShardClient)
	if !ok {
		return nil, nil
	}
	return pc, rc
}

// hedgedRace runs the primary arm, fires the hedge arm after the
// tracked delay (or immediately on a fast primary error — failover),
// and returns the first success. The losing arm's request is cancelled
// through ctx; its late completion is absorbed by the buffered channel.
func (c *Cluster) hedgedRace(run func(ctx context.Context, hedged bool) hedgeRes) hedgeRes {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan hedgeRes, 2)
	launch := func(hedged bool) {
		go func() {
			r := run(ctx, hedged)
			r.hedged = hedged
			ch <- r
		}()
	}
	start := time.Now()
	launch(false)
	timer := time.NewTimer(c.hedge.delay())
	defer timer.Stop()
	outstanding, fired := 1, false
	fire := func() {
		fired = true
		c.hedgeFired.Add(1)
		launch(true)
		outstanding++
	}
	var firstErr hedgeRes
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedged {
					c.hedgeWon.Add(1)
				} else {
					c.hedge.observe(time.Since(start))
				}
				return r
			}
			if firstErr.err == nil {
				firstErr = r
			}
			if !fired {
				// The primary failed before the timer: fail over now
				// rather than waiting out the delay.
				fire()
			}
		case <-timer.C:
			if !fired {
				fire()
			}
		}
	}
	return firstErr
}

// hedgedGet races a single-key Get between primary and replica.
func (c *Cluster) hedgedGet(pc, rc ctxShardClient, key string) ([]byte, bool, error) {
	r := c.hedgedRace(func(ctx context.Context, hedged bool) hedgeRes {
		cl := pc
		if hedged {
			cl = rc
		}
		val, found, err := cl.GetContext(ctx, key)
		return hedgeRes{val: val, found: found, err: err}
	})
	return r.val, r.found, r.err
}

// hedgedMultiGet races one shard's batch between primary and replica.
func (c *Cluster) hedgedMultiGet(pc, rc ctxShardClient, keys []string) ([][]byte, error) {
	r := c.hedgedRace(func(ctx context.Context, hedged bool) hedgeRes {
		cl := pc
		if hedged {
			cl = rc
		}
		vals, err := cl.MultiGetContext(ctx, keys)
		return hedgeRes{vals: vals, err: err}
	})
	return r.vals, r.err
}

// PartialError reports a cluster batch op that failed on some shards
// while others succeeded. The values returned alongside it hold the
// healthy shards' results (failed shards' entries are nil, i.e. cache
// misses), so callers that can tolerate partial data — the runtime's
// prefetcher — keep what arrived instead of discarding the batch.
type PartialError struct {
	// Failed and Attempted count per-shard batches in the fan-out.
	Failed    int
	Attempted int
	// Err is the first per-shard error.
	Err error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("kvstore: %d/%d shard batches failed: %v", e.Failed, e.Attempted, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }
