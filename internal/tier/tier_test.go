package tier

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCurveValidate(t *testing.T) {
	bad := []Curve{
		{PeakMBps: 0, HalfThreads: 1},
		{PeakMBps: 1, HalfThreads: 0},
		{PeakMBps: 1, HalfThreads: 1, OpLatency: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("curve %+v accepted", c)
		}
	}
	if err := (Curve{PeakMBps: 100, HalfThreads: 2}).Validate(); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
}

func TestAggregateMonotoneSaturating(t *testing.T) {
	c := Curve{PeakMBps: 1000, HalfThreads: 4}
	prev := 0.0
	for n := 1; n <= 64; n++ {
		a := c.Aggregate(n)
		if a <= prev {
			t.Fatalf("aggregate not strictly increasing at n=%d: %g <= %g", n, a, prev)
		}
		if a >= c.PeakMBps {
			t.Fatalf("aggregate exceeded peak at n=%d: %g", n, a)
		}
		prev = a
	}
	// Half the peak at n = HalfThreads.
	if got := c.Aggregate(4); math.Abs(got-500) > 1e-9 {
		t.Fatalf("Aggregate(half) = %g, want 500", got)
	}
}

func TestPerThreadDecreasing(t *testing.T) {
	c := Curve{PeakMBps: 1000, HalfThreads: 4}
	prev := math.Inf(1)
	for n := 1; n <= 32; n++ {
		p := c.PerThread(n)
		if p >= prev {
			t.Fatalf("per-thread throughput not decreasing at n=%d", n)
		}
		prev = p
	}
	if c.Aggregate(0) != 0 || c.PerThread(0) != 0 {
		t.Fatal("zero threads should deliver zero throughput")
	}
}

func TestReadTimeComponents(t *testing.T) {
	c := Curve{PeakMBps: 100, HalfThreads: 1, OpLatency: 0.01}
	// 1 thread: aggregate = 50 MB/s. 50 MB transfer = 1 s; 10 ops = 0.1 s.
	got := c.ReadTime(50e6, 10, 1)
	if math.Abs(got-1.1) > 1e-9 {
		t.Fatalf("ReadTime = %g, want 1.1", got)
	}
	// More threads reduce both terms.
	if c.ReadTime(50e6, 10, 4) >= got {
		t.Fatal("more threads did not reduce read time")
	}
	if c.ReadTime(0, 0, 4) != 0 {
		t.Fatal("empty read should take zero time")
	}
	if c.ReadTime(100, 1, 0) != 0 {
		t.Fatal("zero threads should report zero (no work submitted)")
	}
}

func TestReadTimeMonotoneInWork(t *testing.T) {
	f := func(bytesRaw uint32, opsRaw, nRaw uint8) bool {
		c := Curve{PeakMBps: 500, HalfThreads: 3, OpLatency: 1e-3}
		bytes := int64(bytesRaw)
		ops := int(opsRaw)
		n := int(nRaw%16) + 1
		t1 := c.ReadTime(bytes, ops, n)
		t2 := c.ReadTime(bytes+1000, ops+1, n)
		return t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyOrdering(t *testing.T) {
	h := ThetaGPULike()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// A typical sample (105 KB) read with 4 threads must be much faster
	// from local than remote, and remote than PFS — the premise of the
	// whole storage-hierarchy design.
	const sample = 105 * 1024
	local := h.ReadTime(Local, sample, 1, 4, 1)
	remote := h.ReadTime(Remote, sample, 1, 4, 1)
	pfs := h.ReadTime(PFS, sample, 1, 4, 1)
	if !(local < remote && remote < pfs) {
		t.Fatalf("tier ordering violated: local=%g remote=%g pfs=%g", local, remote, pfs)
	}
	if pfs/local < 50 {
		t.Fatalf("PFS only %.1fx slower than local; paper needs orders of magnitude", pfs/local)
	}
}

func TestPFSGlobalContention(t *testing.T) {
	h := ThetaGPULike()
	alone := h.ReadTime(PFS, 10e6, 100, 8, 1)
	crowded := h.ReadTime(PFS, 10e6, 100, 8, 16)
	if crowded <= alone {
		t.Fatalf("16-node contention did not slow PFS reads: alone=%g crowded=%g", alone, crowded)
	}
	// The per-node share must be Global/k when that is below the node peak.
	c := h.PFSNodeCurve(12)
	want := h.PFSGlobalMBps / 12
	if c.PeakMBps != want {
		t.Fatalf("node share = %g, want %g", c.PeakMBps, want)
	}
	// With one node the local ceiling applies.
	if got := h.PFSNodeCurve(1).PeakMBps; got != h.PFS.PeakMBps {
		t.Fatalf("single-node PFS peak = %g, want %g", got, h.PFS.PeakMBps)
	}
	if got := h.PFSNodeCurve(0).PeakMBps; got != h.PFS.PeakMBps {
		t.Fatalf("activeNodes=0 should clamp to 1")
	}
}

func TestCurveOfPanicsOnUnknown(t *testing.T) {
	h := ThetaGPULike()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	h.CurveOf(Kind(99))
}

func TestKindString(t *testing.T) {
	if Local.String() != "local" || Remote.String() != "remote" || PFS.String() != "pfs" {
		t.Fatal("kind names wrong")
	}
	if len(Kinds()) != 3 {
		t.Fatal("Kinds() should list 3 tiers")
	}
}

func TestHierarchyValidateRejectsBadGlobal(t *testing.T) {
	h := ThetaGPULike()
	h.PFSGlobalMBps = 0
	if err := h.Validate(); err == nil {
		t.Fatal("zero global PFS capacity accepted")
	}
	h = ThetaGPULike()
	h.Remote.PeakMBps = -1
	if err := h.Validate(); err == nil {
		t.Fatal("negative remote peak accepted")
	}
}
