package kvstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMixedOps drives every client operation — Put, Get,
// Delete, client Stats and server Stats — from concurrent goroutines
// against one shard. Under -race this covers the server's single-mutex
// LRU (the paths the mutex-discipline analyzer audits) end to end over
// real TCP connections.
func TestConcurrentMixedOps(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClient(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%8)
				switch i % 4 {
				case 0:
					if err := c.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, _, err := c.Get(key); err != nil {
						errs <- err
						return
					}
				case 2:
					if err := c.Delete(key); err != nil {
						errs <- err
						return
					}
				default:
					if _, err := c.Stats(); err != nil {
						errs <- err
						return
					}
					s.Stats() // in-process snapshot racing the TCP path
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
