package kvstore

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// Sustained-overload and hedged-read benchmark (DESIGN.md §11).
//
// The overload bench models a shard whose cost is service time, not
// CPU: SetLag (a fixed-lag FaultConfig, the same injection mechanism
// the chaos harness uses) adds a per-request delay held across the
// admission slot, so capacity is maxInFlight/serviceTime regardless of
// core count — which makes the measurement deterministic on the 1-CPU
// CI box. A saturation phase (just enough closed-loop workers to keep
// every slot busy) establishes the ceiling; overload phases then
// oversubscribe it 10–100x with short-deadline clients and record how
// much goodput the admission gate + client backpressure window
// preserve, how many requests were shed and where, and the latency
// tail of the survivors.

// overloadScale sizes one run: tiny keeps verify.sh fast, full feeds
// BENCH_kv.json.
type overloadScale struct {
	serviceTime  time.Duration
	maxInFlight  int
	conns        int // client pool; > maxInFlight so the gate is the bottleneck
	window       int // per-conn backpressure window (see DESIGN.md §11)
	opDeadline   time.Duration
	phase        time.Duration
	factors      []int // oversubscription multipliers over maxInFlight workers
	hedgeWindows int
	hedgeLag     time.Duration
	hedgeDelay   time.Duration
}

var (
	overloadTiny = overloadScale{
		serviceTime: time.Millisecond, maxInFlight: 2, conns: 4, window: 2,
		opDeadline: 25 * time.Millisecond, phase: 150 * time.Millisecond,
		factors:      []int{10, 30, 100},
		hedgeWindows: 20, hedgeLag: 20 * time.Millisecond, hedgeDelay: 2 * time.Millisecond,
	}
	overloadFull = overloadScale{
		serviceTime: time.Millisecond, maxInFlight: 4, conns: 8, window: 2,
		opDeadline: 25 * time.Millisecond, phase: 2 * time.Second,
		factors:      []int{10, 30, 100},
		hedgeWindows: 200, hedgeLag: 20 * time.Millisecond, hedgeDelay: 2 * time.Millisecond,
	}
)

// overloadPhase is one oversubscription level's outcome in
// BENCH_kv.json.
type overloadPhase struct {
	Oversubscription int     `json:"oversubscription"`
	Workers          int     `json:"workers"`
	GoodputOpsPerSec float64 `json:"goodput_ops_per_sec"`
	ShedRatePerSec   float64 `json:"shed_rate_per_sec"`
	OK               uint64  `json:"ok"`
	DeadlineExceeded uint64  `json:"deadline_exceeded"`
	RetryLater       uint64  `json:"retry_later"`
	ShedDeadline     uint64  `json:"shed_deadline"`
	ShedQuota        uint64  `json:"shed_quota"`
	ShedQueue        uint64  `json:"shed_queue"`
	P99Ms            float64 `json:"p99_ms"`
	P999Ms           float64 `json:"p999_ms"`
	HistP99Ms        float64 `json:"hist_p99_ms"`
	HistP999Ms       float64 `json:"hist_p999_ms"`
	HistSamples      uint64  `json:"hist_samples"`
	Goroutines       int     `json:"goroutines"`
}

type overloadReport struct {
	ServiceTimeMs       float64         `json:"service_time_ms"`
	MaxInFlight         int             `json:"max_inflight"`
	Conns               int             `json:"conns"`
	Window              int             `json:"window_per_conn"`
	OpDeadlineMs        float64         `json:"op_deadline_ms"`
	PhaseSeconds        float64         `json:"phase_seconds"`
	SaturationOpsPerSec float64         `json:"saturation_ops_per_sec"`
	GoodputRatioAt10x   float64         `json:"goodput_ratio_at_10x"`
	Phases              []overloadPhase `json:"phases"`
}

type hedgeReport struct {
	SlowShardLagMs float64 `json:"slow_shard_lag_ms"`
	HedgeDelayMs   float64 `json:"hedge_delay_ms"`
	Windows        int     `json:"windows"`
	UnhedgedP50Ms  float64 `json:"unhedged_p50_ms"`
	UnhedgedP99Ms  float64 `json:"unhedged_p99_ms"`
	HedgedP50Ms    float64 `json:"hedged_p50_ms"`
	HedgedP99Ms    float64 `json:"hedged_p99_ms"`
	P99Improvement float64 `json:"p99_improvement"`
	HedgeFired     uint64  `json:"hedge_fired"`
	HedgeWon       uint64  `json:"hedge_won"`
}

// benchEnv records the machine shape alongside the numbers so a reader
// can judge them (satellite: GOMAXPROCS, goroutine counts, histogram
// sample counts).
type benchEnv struct {
	GOMAXPROCS         int    `json:"gomaxprocs"`
	GoroutinesIdle     int    `json:"goroutines_idle"`
	GoroutinesOverload int    `json:"goroutines_overload"`
	HistogramSamples   uint64 `json:"histogram_samples"`
}

// pctMs returns the exact q-quantile of sorted nanosecond latencies in
// milliseconds. Exact order statistics, not histogram interpolation:
// the hedge acceptance compares p99s at a 2x bar, finer than the
// ~1.96x resolution of the exponential bucket ladder.
func pctMs(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / 1e6
}

func sortedNs(lats [][]int64) []int64 {
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// runOverloadBench drives the saturation + oversubscription phases and
// returns the report plus the environment snapshot.
func runOverloadBench(t *testing.T, sc overloadScale) (overloadReport, benchEnv) {
	t.Helper()
	env := benchEnv{GOMAXPROCS: runtime.GOMAXPROCS(0), GoroutinesIdle: runtime.NumGoroutine()}
	s := testServerOptions(t, ServerOptions{
		Capacity: 64 << 20,
		Admission: AdmissionConfig{
			MaxInFlight: sc.maxInFlight,
			MaxQueue:    4 * sc.maxInFlight,
			MaxWait:     sc.opDeadline,
		},
	})
	cl, err := NewClientV2Options(s.Addr(), ClientV2Options{Conns: sc.conns, Window: sc.window})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const keys = 256
	val := make([]byte, 64)
	for i := 0; i < keys; i++ {
		if err := cl.Put(benchKey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	// After preload: service time models I/O, not setup. Uses the shared
	// FaultConfig mechanism (the chaos harness's SetFault) as lag-only.
	s.SetFault(FaultConfig{Lag: sc.serviceTime})

	rep := overloadReport{
		ServiceTimeMs: float64(sc.serviceTime) / 1e6,
		MaxInFlight:   sc.maxInFlight,
		Conns:         sc.conns,
		Window:        sc.window,
		OpDeadlineMs:  float64(sc.opDeadline) / 1e6,
		PhaseSeconds:  sc.phase.Seconds(),
	}

	// Saturation: exactly maxInFlight closed-loop workers, no deadline
	// pressure — the ceiling the overload phases are judged against.
	var satOps atomic.Uint64
	runPhase(sc.phase, sc.maxInFlight, func(w, i int) {
		_, _, err := cl.Get(benchKey((w*31 + i) % keys))
		if err == nil {
			satOps.Add(1)
		}
	})
	rep.SaturationOpsPerSec = float64(satOps.Load()) / sc.phase.Seconds()

	reg := obs.NewRegistry()
	hist := reg.Histogram("lobster_bench_overload_seconds",
		"Successful-op latency under sustained overload.", obs.LatencyBuckets())
	for _, factor := range sc.factors {
		workers := factor * sc.maxInFlight
		before := s.Stats()
		var ok, dle, retry atomic.Uint64
		lats := make([][]int64, workers)
		var midGoroutines atomic.Int64
		runPhase(sc.phase, workers, func(w, i int) {
			if w == 0 && i == 8 {
				midGoroutines.Store(int64(runtime.NumGoroutine()))
			}
			ctx, cancel := context.WithTimeout(context.Background(), sc.opDeadline)
			start := time.Now()
			_, _, err := cl.GetContext(ctx, benchKey((w*31+i)%keys))
			cancel()
			switch {
			case err == nil:
				ok.Add(1)
				ns := time.Since(start).Nanoseconds()
				lats[w] = append(lats[w], ns)
				hist.Observe(float64(ns) / 1e9)
			case errors.Is(err, context.DeadlineExceeded):
				dle.Add(1)
			case errors.Is(err, ErrRetryLater):
				retry.Add(1)
			}
		})
		after := s.Stats()
		all := sortedNs(lats)
		ph := overloadPhase{
			Oversubscription: factor,
			Workers:          workers,
			GoodputOpsPerSec: float64(ok.Load()) / sc.phase.Seconds(),
			OK:               ok.Load(),
			DeadlineExceeded: dle.Load(),
			RetryLater:       retry.Load(),
			ShedDeadline:     after.ShedDeadline - before.ShedDeadline,
			ShedQuota:        after.ShedQuota - before.ShedQuota,
			ShedQueue:        after.ShedQueue - before.ShedQueue,
			P99Ms:            pctMs(all, 0.99),
			P999Ms:           pctMs(all, 0.999),
			HistP99Ms:        hist.Quantile(0.99) * 1e3,
			HistP999Ms:       hist.Quantile(0.999) * 1e3,
			HistSamples:      hist.Count(),
			Goroutines:       int(midGoroutines.Load()),
		}
		shed := ph.ShedDeadline + ph.ShedQuota + ph.ShedQueue
		ph.ShedRatePerSec = float64(shed) / sc.phase.Seconds()
		rep.Phases = append(rep.Phases, ph)
		if env.GoroutinesOverload < ph.Goroutines {
			env.GoroutinesOverload = ph.Goroutines
		}
		t.Logf("overload %dx: goodput %.0f/s (sat %.0f/s), shed %.0f/s (dl=%d q=%d), "+
			"client ok=%d dle=%d retry=%d, p99 %.2fms p999 %.2fms",
			factor, ph.GoodputOpsPerSec, rep.SaturationOpsPerSec, ph.ShedRatePerSec,
			ph.ShedDeadline, ph.ShedQueue, ph.OK, ph.DeadlineExceeded, ph.RetryLater,
			ph.P99Ms, ph.P999Ms)
	}
	env.HistogramSamples = hist.Count()
	if len(rep.Phases) > 0 && rep.SaturationOpsPerSec > 0 {
		rep.GoodputRatioAt10x = rep.Phases[0].GoodputOpsPerSec / rep.SaturationOpsPerSec
	}
	s.SetLag(0)
	return rep, env
}

// runPhase runs `workers` closed-loop goroutines calling op until the
// phase duration elapses.
func runPhase(d time.Duration, workers int, op func(w, i int)) {
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				op(w, i)
			}
		}()
	}
	wg.Wait()
}

// runHedgeBench measures MultiGet tail latency over three shards with
// one straggler, unhedged (plain cluster) vs hedged (one replica,
// fixed hedge delay), against the same servers and the same keys.
func runHedgeBench(t *testing.T, sc overloadScale) hedgeReport {
	t.Helper()
	servers, addrs := testClusterServers(t, 3)
	plain, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	repl, err := NewClusterConfig(addrs, ClusterConfig{
		Conns: 2, Replicas: 1, HedgeDelay: sc.hedgeDelay,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()

	keys := clusterKeysFor(t, repl, 3) // 3 keys per shard => every window hits the straggler
	vals := make([][]byte, len(keys))
	for i := range vals {
		vals[i] = make([]byte, 256)
	}
	if err := repl.MultiPut(keys, vals); err != nil { // write-through populates replicas
		t.Fatal(err)
	}
	const slow = 0
	servers[slow].SetFault(FaultConfig{Lag: sc.hedgeLag})

	measure := func(c *Cluster) []int64 {
		lats := make([]int64, 0, sc.hedgeWindows)
		for i := 0; i < sc.hedgeWindows; i++ {
			start := time.Now()
			got, err := c.MultiGet(keys)
			if err != nil {
				t.Fatalf("hedge bench MultiGet: %v", err)
			}
			if len(got) != len(keys) || got[0] == nil {
				t.Fatalf("hedge bench MultiGet returned %d values", len(got))
			}
			lats = append(lats, time.Since(start).Nanoseconds())
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats
	}
	unhedged := measure(plain)
	hedged := measure(repl)
	fired, won := repl.HedgeCounters()
	rep := hedgeReport{
		SlowShardLagMs: float64(sc.hedgeLag) / 1e6,
		HedgeDelayMs:   float64(sc.hedgeDelay) / 1e6,
		Windows:        sc.hedgeWindows,
		UnhedgedP50Ms:  pctMs(unhedged, 0.5),
		UnhedgedP99Ms:  pctMs(unhedged, 0.99),
		HedgedP50Ms:    pctMs(hedged, 0.5),
		HedgedP99Ms:    pctMs(hedged, 0.99),
		HedgeFired:     fired,
		HedgeWon:       won,
	}
	if rep.HedgedP99Ms > 0 {
		rep.P99Improvement = rep.UnhedgedP99Ms / rep.HedgedP99Ms
	}
	servers[slow].SetFault(FaultConfig{})
	t.Logf("hedge: unhedged p99 %.2fms vs hedged p99 %.2fms = %.1fx (fired=%d won=%d)",
		rep.UnhedgedP99Ms, rep.HedgedP99Ms, rep.P99Improvement, fired, won)
	return rep
}

// TestOverloadGoodput is the tier-1 acceptance check in tiny form: at
// 10x oversubscription the gate must preserve at least 80% of
// saturation goodput, and the hedged MultiGet p99 with one slow shard
// must beat unhedged by at least 2x. The full-size measurement lands
// in BENCH_kv.json via LOBSTER_BENCH_KV=1.
func TestOverloadGoodput(t *testing.T) {
	rep, _ := runOverloadBench(t, overloadTiny)
	if rep.SaturationOpsPerSec == 0 {
		t.Fatal("saturation phase recorded zero throughput")
	}
	if rep.GoodputRatioAt10x < 0.8 {
		t.Fatalf("goodput at 10x = %.0f%% of saturation, want >= 80%%",
			100*rep.GoodputRatioAt10x)
	}
	hr := runHedgeBench(t, overloadTiny)
	if hr.P99Improvement < 2 {
		t.Fatalf("hedged p99 improvement = %.2fx, want >= 2x (unhedged %.2fms, hedged %.2fms)",
			hr.P99Improvement, hr.UnhedgedP99Ms, hr.HedgedP99Ms)
	}
	if hr.HedgeFired == 0 || hr.HedgeWon == 0 {
		t.Fatalf("hedge counters fired=%d won=%d, want both > 0", hr.HedgeFired, hr.HedgeWon)
	}
}
