package runtime

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/tier"
)

func TestPFSStoreFailureInjection(t *testing.T) {
	ds, _ := dataset.Generate(dataset.Spec{
		Name: "f", NumSamples: 10, MeanSize: 1 << 10, Classes: 1, Seed: 3,
	})
	store := NewPFSStore(ds, 3, tier.ThetaGPULike().PFS, 0.0001)
	store.SetFailureRate(1.0)
	if _, err := store.Read(0); !errors.Is(err, ErrTransient) {
		t.Fatalf("expected injected failure, got %v", err)
	}
	if store.Failures() != 1 {
		t.Fatalf("failures = %d, want 1", store.Failures())
	}
	store.SetFailureRate(0)
	if _, err := store.Read(0); err != nil {
		t.Fatalf("read after clearing failure rate: %v", err)
	}
}

func TestTrainingSurvivesTransientPFSFailures(t *testing.T) {
	opts := testOptions(t, loader.NoPFS(2, 8), 1, 2)
	opts.PFSFailureRate = 0.15 // 15% of PFS reads time out
	stats, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(stats.Iterations) * uint64(2*opts.Model.BatchSize)
	if stats.SamplesVerified != want {
		t.Fatalf("verified %d/%d under failure injection", stats.SamplesVerified, want)
	}
	if stats.PFSRetries == 0 {
		t.Fatal("no retries recorded despite 15% failure rate")
	}
}
