package doctor

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace-event entry as obs.TraceRing.WriteJSON
// emits it (ts/dur in microseconds). Args hold the attribution the
// runtime stamps on spans: "rank" and "iter" on stall-ledger and
// server-side kv spans.
type TraceEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat"`
	Ph   string             `json:"ph"`
	Pid  int                `json:"pid"`
	Tid  int64              `json:"tid"`
	Ts   float64            `json:"ts"`
	Dur  float64            `json:"dur"`
	Args map[string]float64 `json:"-"`
	// rawArgs defers decoding: metadata events carry string args
	// ("name"), data events carry numbers.
	RawArgs map[string]json.RawMessage `json:"args"`
}

// Trace is one parsed (or merged) trace file.
type Trace struct {
	Events []TraceEvent
	// Processes maps pid -> process_name metadata, post-merge remap.
	Processes map[int]string
}

// ParseTrace decodes a Chrome trace-event JSON file (the object form
// with a traceEvents array, which is what /trace.json serves).
func ParseTrace(r io.Reader) (*Trace, error) {
	var file struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("doctor: parsing trace: %w", err)
	}
	t := &Trace{Events: file.TraceEvents, Processes: make(map[int]string)}
	for i := range t.Events {
		e := &t.Events[i]
		e.Args = make(map[string]float64, len(e.RawArgs))
		for k, raw := range e.RawArgs {
			var v float64
			if err := json.Unmarshal(raw, &v); err == nil {
				e.Args[k] = v
				continue
			}
			if e.Ph == "M" && k == "name" {
				var s string
				if err := json.Unmarshal(raw, &s); err == nil && e.Name == "process_name" {
					t.Processes[e.Pid] = s
				}
			}
		}
	}
	return t, nil
}

// Merge combines trace dumps from several processes into one timeline.
// Sources whose pid collides with an already-merged source are remapped
// to a fresh pid so their tracks do not interleave; span correlation
// across sources rides on the rank/iter args (which the 0xA4 frame
// carries server-side), not on pids, so remapping loses nothing.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{Processes: make(map[int]string)}
	used := make(map[int]bool)
	nextFree := 0
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		// One remap decision per distinct pid in this source.
		remap := make(map[int]int)
		for pid := range tr.Processes {
			remap[pid] = pid
		}
		for i := range tr.Events {
			pid := tr.Events[i].Pid
			if _, ok := remap[pid]; !ok {
				remap[pid] = pid
			}
		}
		for pid := range remap {
			if used[pid] {
				for used[nextFree] {
					nextFree++
				}
				remap[pid] = nextFree
				used[nextFree] = true
			} else {
				used[pid] = true
			}
		}
		for pid, name := range tr.Processes {
			out.Processes[remap[pid]] = name
		}
		for _, e := range tr.Events {
			e.Pid = remap[e.Pid]
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// stallSpans visits every stall-attribution span (the ledger flush
// emits them with category "stall"; names are the cause names).
func (t *Trace) stallSpans(fn func(e *TraceEvent)) {
	for i := range t.Events {
		e := &t.Events[i]
		if e.Ph == "X" && e.Cat == "stall" {
			fn(e)
		}
	}
}

// CauseTotal is one cause's aggregate stall time.
type CauseTotal struct {
	Cause   string
	Seconds float64
}

// CauseTotalsInWindow aggregates stall-attribution span time by cause
// over iterations in [from, to) across all ranks, sorted dominant
// first. The iteration comes from each span's "iter" arg (global
// iteration index).
func (t *Trace) CauseTotalsInWindow(from, to int64) []CauseTotal {
	bycause := make(map[string]float64)
	t.stallSpans(func(e *TraceEvent) {
		it, ok := e.Args["iter"]
		if !ok || int64(it) < from || int64(it) >= to {
			return
		}
		bycause[e.Name] += e.Dur / 1e6 // µs -> s
	})
	out := make([]CauseTotal, 0, len(bycause))
	for c, s := range bycause {
		out = append(out, CauseTotal{Cause: c, Seconds: s})
	}
	sortCauses(out)
	return out
}

// WindowCause is one cause's diagnosis for a suspect window: its
// absolute stall time inside the window, and its per-iteration excess
// over the rest of the run.
type WindowCause struct {
	Cause   string
	Seconds float64
	// ExcessPerIter is the cause's per-iteration rate inside the window
	// minus its rate outside (seconds/iteration). A constant background
	// cost — decode queueing, cache serving — nets out to ~0; whatever
	// the window injected stands out.
	ExcessPerIter float64
}

// DiagnoseWindow ranks stall causes for iterations [from, to) by how
// much they exceed their baseline rate over the rest of the run —
// "what changed in the bad window", not "what is expensive everywhere".
// Ranked by excess, absolute seconds breaking ties. When the window
// covers every recorded iteration there is no baseline and the excess
// equals the inside rate.
func (t *Trace) DiagnoseWindow(from, to int64) []WindowCause {
	inside := make(map[string]float64)
	outside := make(map[string]float64)
	insideIters := make(map[int64]bool)
	outsideIters := make(map[int64]bool)
	t.stallSpans(func(e *TraceEvent) {
		it, ok := e.Args["iter"]
		if !ok {
			return
		}
		i := int64(it)
		if i >= from && i < to {
			inside[e.Name] += e.Dur / 1e6
			insideIters[i] = true
		} else {
			outside[e.Name] += e.Dur / 1e6
			outsideIters[i] = true
		}
	})
	if len(insideIters) == 0 {
		return nil
	}
	nIn, nOut := float64(len(insideIters)), float64(len(outsideIters))
	out := make([]WindowCause, 0, len(inside))
	for c, s := range inside {
		wc := WindowCause{Cause: c, Seconds: s, ExcessPerIter: s / nIn}
		if nOut > 0 {
			wc.ExcessPerIter -= outside[c] / nOut
		}
		out = append(out, wc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ExcessPerIter != out[j].ExcessPerIter {
			return out[i].ExcessPerIter > out[j].ExcessPerIter
		}
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}

// TopCauseInWindow names the cause the doctor blames for [from, to):
// the data-path cause with the largest positive baseline excess.
// Pipeline queueing causes are blamed only when no data-path cause
// moved at all — they inflate second-hand whenever any data-path leg
// slows down, so their excess is a symptom, not a diagnosis. Returns
// "" when the window holds no attribution spans.
func (t *Trace) TopCauseInWindow(from, to int64) string {
	diag := t.DiagnoseWindow(from, to)
	for _, wc := range diag {
		if DataPathCause(wc.Cause) && wc.ExcessPerIter > 0 {
			return wc.Cause
		}
	}
	if len(diag) == 0 {
		return ""
	}
	return diag[0].Cause
}
