// Command lobster-trace renders Fig. 3-style per-iteration pipeline
// breakdowns: stacked load/preprocess/stall/train/idle bars for selected
// GPUs, plus the motivation-section statistics (imbalance frequency,
// bottleneck shifts).
//
// Example:
//
//	lobster-trace -strategy dali -epoch 1 -gpus 0,1,8 -nodes 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	var (
		datasetName = flag.String("dataset", "imagenet-1k", "imagenet-1k | imagenet-22k")
		scale       = flag.String("scale", "tiny", "tiny | small | medium | full")
		model       = flag.String("model", "resnet50", "DNN model")
		nodes       = flag.Int("nodes", 8, "number of nodes (8 GPUs each)")
		strategy    = flag.String("strategy", "dali", "loading strategy")
		epochs      = flag.Int("epochs", 3, "epochs to simulate")
		epoch       = flag.Int("epoch", 1, "epoch to display")
		perSection  = flag.Int("per-section", 8, "iterations per begin/middle/end section")
		gpuList     = flag.String("gpus", "0,1,8", "comma-separated global GPU indices to display")
		seed        = flag.Uint64("seed", 42, "schedule seed")
	)
	flag.Parse()

	cfg, err := core.NewConfig(core.Workload{
		Dataset: *datasetName, Scale: *scale, Model: *model,
		Nodes: *nodes, Epochs: *epochs, Strategy: *strategy, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	cfg.Pipeline.CollectTrace = true
	cfg.Pipeline.MaxTraceIters = 1 << 20
	res, err := core.Simulate(cfg)
	if err != nil {
		fatal(err)
	}
	gpus, err := parseGPUs(*gpuList)
	if err != nil {
		fatal(err)
	}
	slice := trace.Slice(res.Trace, *epoch, *perSection)
	fmt.Print(trace.Render(slice, gpus, 120))

	st := trace.Analyze(res.Trace, cfg.Pipeline.Model.IterTime, 1.0)
	fmt.Printf("\niterations: %d\n", st.Iterations)
	fmt.Printf("iterations with load imbalance: %.1f%%\n", st.ImbalancedFrac*100)
	fmt.Printf("(iteration,GPU) pairs where loading > training: %.1f%%\n", st.LoadBottleneckFrac*100)
	fmt.Printf("bottleneck shifts: %d\n", st.BottleneckShifts)
	fmt.Printf("mean GPU idle fraction: %.1f%%\n", st.MeanIdleFrac*100)
}

func parseGPUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad gpu list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-trace:", err)
	os.Exit(1)
}
