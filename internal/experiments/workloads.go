package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/pipeline"
)

// CacheRatio1K is the paper's node cache : dataset ratio for ImageNet-1K
// (40 GB / 135 GB).
const CacheRatio1K = 40.0 / 135.0

// CacheRatio22K is the ratio for ImageNet-22K (40 GB / 1.3 TB); the
// aggregate 8-node cache covers ~24.6% of the dataset.
const CacheRatio22K = 40.0 / 1331.0

// minItersPerEpoch keeps reduced-scale runs meaningful: an experiment
// whose epoch collapses to a couple of iterations has no steady state to
// measure, so dataset sizes are raised to provide at least this many
// iterations per epoch for the experiment's world size.
const minItersPerEpoch = 12

// imagenet1K generates the scaled ImageNet-1K stand-in, sized for at
// least minItersPerEpoch iterations on `world` GPUs.
func imagenet1K(p Params, world int) (*dataset.Dataset, error) {
	spec := dataset.ImageNet1K(p.Scale, p.Seed)
	ensureIters(&spec, world)
	return dataset.Generate(spec)
}

// imagenet22K generates the scaled ImageNet-22K stand-in.
func imagenet22K(p Params, world int) (*dataset.Dataset, error) {
	spec := dataset.ImageNet22K(p.Scale, p.Seed)
	ensureIters(&spec, world)
	return dataset.Generate(spec)
}

func ensureIters(spec *dataset.Spec, world int) {
	min := minItersPerEpoch * world * resnet50().BatchSize
	if spec.NumSamples < min {
		spec.NumSamples = min
	}
}

// topology builds a ThetaGPU-like cluster whose per-node cache keeps the
// paper's cache:dataset ratio at any scale.
func topology(nodes int, ds *dataset.Dataset, cacheRatio float64) cluster.Topology {
	cache := int64(float64(ds.TotalBytes()) * cacheRatio)
	if cache < 1 {
		cache = 1
	}
	return cluster.ThetaGPULike(nodes, cache)
}

// strategies returns the paper's four comparison systems for a topology,
// PyTorch first (the speedup baseline of Fig. 7).
func strategies(top cluster.Topology) []loader.Spec {
	return []loader.Spec{
		loader.PyTorch(top.GPUsPerNode, top.CPUThreads),
		loader.DALI(top.CPUThreads),
		loader.NoPFS(top.GPUsPerNode, top.CPUThreads),
		loader.Lobster(),
	}
}

// baseConfig assembles a pipeline config for one run.
func baseConfig(p Params, top cluster.Topology, ds *dataset.Dataset, model cluster.DNNModel, spec loader.Spec) pipeline.Config {
	return pipeline.Config{
		Topology: top,
		Model:    model,
		Dataset:  ds,
		Epochs:   p.epochs(),
		Seed:     p.Seed,
		Strategy: spec,
	}
}

// resnet50 returns the workhorse model used by most experiments.
func resnet50() cluster.DNNModel {
	m, err := cluster.ModelByName("resnet50")
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return m
}
