package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerLifecycle(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Before any snapshot: unhealthy, but the endpoints respond.
	code, _ := get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz before snapshot = %d", code)
	}
	_, text := get(t, "http://"+s.Addr()+"/")
	if !strings.Contains(text, "no snapshot") {
		t.Fatalf("dashboard before snapshot:\n%s", text)
	}

	s.Update(map[string]any{"iteration": 3, "hit_ratio": 0.5})
	if s.Updates() != 1 {
		t.Fatalf("updates = %d", s.Updates())
	}
	code, body := get(t, "http://"+s.Addr()+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	var out struct {
		Updates  uint64         `json:"updates"`
		Snapshot map[string]any `json:"snapshot"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Updates != 1 || out.Snapshot["iteration"].(float64) != 3 {
		t.Fatalf("snapshot wrong: %+v", out)
	}
	code, _ = get(t, "http://"+s.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz after snapshot = %d", code)
	}
	_, text = get(t, "http://"+s.Addr()+"/")
	if !strings.Contains(text, "hit_ratio") {
		t.Fatalf("dashboard missing fields:\n%s", text)
	}
}

func TestServerConcurrentUpdates(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	//lint:allow goroutine runs a fixed 200 updates, closes done, and the test blocks on <-done before asserting
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.Update(map[string]int{"i": i})
		}
	}()
	for i := 0; i < 50; i++ {
		get(t, "http://"+s.Addr()+"/metrics.json")
	}
	<-done
	if s.Updates() != 200 {
		t.Fatalf("updates = %d", s.Updates())
	}
}
