package cache

import (
	"container/heap"
	"container/list"

	"repro/internal/dataset"
)

// lfuPolicy evicts the least-frequently-used sample (ties broken by
// recency). Under epoch-uniform sampling all long-lived samples converge
// to the same frequency, so LFU degenerates gracefully toward LRU — a
// useful control in the eviction ablation: frequency carries no signal
// when the access law gives every sample the same long-run rate.
type lfuPolicy struct {
	entries map[dataset.SampleID]*lfuEntry
	h       lfuHeap
	tick    uint64 // recency tie-break
}

type lfuEntry struct {
	id    dataset.SampleID
	count uint64
	last  uint64
	idx   int
}

type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].last < h[j].last
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *lfuHeap) Push(x any) {
	e := x.(*lfuEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewLFU returns a least-frequently-used policy.
func NewLFU() Policy {
	return &lfuPolicy{entries: make(map[dataset.SampleID]*lfuEntry)}
}

func (p *lfuPolicy) Name() string { return "lfu" }

func (p *lfuPolicy) OnPut(id dataset.SampleID, _ Iter) {
	p.tick++
	if e, ok := p.entries[id]; ok {
		e.count++
		e.last = p.tick
		heap.Fix(&p.h, e.idx)
		return
	}
	e := &lfuEntry{id: id, count: 1, last: p.tick}
	p.entries[id] = e
	heap.Push(&p.h, e)
}

func (p *lfuPolicy) OnGet(id dataset.SampleID, _ Iter) {
	p.tick++
	if e, ok := p.entries[id]; ok {
		e.count++
		e.last = p.tick
		heap.Fix(&p.h, e.idx)
	}
}

func (p *lfuPolicy) OnRemove(id dataset.SampleID) {
	if e, ok := p.entries[id]; ok {
		heap.Remove(&p.h, e.idx)
		delete(p.entries, id)
	}
}

func (p *lfuPolicy) Victim(_ Iter, _ dataset.SampleID) (dataset.SampleID, bool) {
	if len(p.h) == 0 {
		return NoSample, false
	}
	return p.h[0].id, true
}

func (p *lfuPolicy) DrainExpired(_ Iter, _ func(dataset.SampleID)) {}

// arcPolicy is a simplified ARC (Adaptive Replacement Cache): two resident
// LRU lists — T1 (seen once) and T2 (seen at least twice) — plus ghost
// lists B1/B2 of recently evicted ids that steer the adaptive target size
// `p` for T1. Ghost hits on B1 grow p (favour recency); ghost hits on B2
// shrink it (favour frequency).
//
// ARC adapts by entry count rather than bytes, which is the standard
// formulation; for the sample-cache workload (sizes within one order of
// magnitude) the distinction is immaterial.
type arcPolicy struct {
	t1, t2, b1, b2 *list.List
	where          map[dataset.SampleID]*arcEntry
	p              int // target |T1|
	capHint        int // adaptation scale: max resident entries seen
}

type arcEntry struct {
	elem *list.Element
	loc  byte // 1=T1 2=T2 3=B1 4=B2
}

// NewARC returns the adaptive replacement policy.
func NewARC() Policy {
	return &arcPolicy{
		t1: list.New(), t2: list.New(), b1: list.New(), b2: list.New(),
		where: make(map[dataset.SampleID]*arcEntry),
	}
}

func (a *arcPolicy) Name() string { return "arc" }

func (a *arcPolicy) resident() int { return a.t1.Len() + a.t2.Len() }

func (a *arcPolicy) OnPut(id dataset.SampleID, _ Iter) {
	e, ok := a.where[id]
	switch {
	case ok && (e.loc == 1 || e.loc == 2):
		a.promote(id, e)
	case ok && e.loc == 3: // ghost hit in B1: favour recency
		a.p = min(a.p+max(a.b2.Len()/max(a.b1.Len(), 1), 1), a.capHint)
		a.b1.Remove(e.elem)
		e.elem = a.t2.PushFront(id)
		e.loc = 2
	case ok && e.loc == 4: // ghost hit in B2: favour frequency
		a.p = max(a.p-max(a.b1.Len()/max(a.b2.Len(), 1), 1), 0)
		a.b2.Remove(e.elem)
		e.elem = a.t2.PushFront(id)
		e.loc = 2
	default:
		a.where[id] = &arcEntry{elem: a.t1.PushFront(id), loc: 1}
	}
	if r := a.resident(); r > a.capHint {
		a.capHint = r
	}
	a.trimGhosts()
}

func (a *arcPolicy) OnGet(id dataset.SampleID, _ Iter) {
	if e, ok := a.where[id]; ok && (e.loc == 1 || e.loc == 2) {
		a.promote(id, e)
	}
}

func (a *arcPolicy) promote(id dataset.SampleID, e *arcEntry) {
	switch e.loc {
	case 1:
		a.t1.Remove(e.elem)
	case 2:
		a.t2.Remove(e.elem)
	}
	e.elem = a.t2.PushFront(id)
	e.loc = 2
}

// OnRemove is called when the cache evicts: the id moves into the matching
// ghost list instead of vanishing, which is where ARC's adaptivity lives.
func (a *arcPolicy) OnRemove(id dataset.SampleID) {
	e, ok := a.where[id]
	if !ok {
		return
	}
	switch e.loc {
	case 1:
		a.t1.Remove(e.elem)
		e.elem = a.b1.PushFront(id)
		e.loc = 3
	case 2:
		a.t2.Remove(e.elem)
		e.elem = a.b2.PushFront(id)
		e.loc = 4
	case 3:
		a.b1.Remove(e.elem)
		delete(a.where, id)
	case 4:
		a.b2.Remove(e.elem)
		delete(a.where, id)
	}
	a.trimGhosts()
}

// trimGhosts bounds each ghost list to the adaptation scale.
func (a *arcPolicy) trimGhosts() {
	for _, g := range []*list.List{a.b1, a.b2} {
		for g.Len() > a.capHint && g.Len() > 0 {
			tail := g.Back()
			id := tail.Value.(dataset.SampleID)
			g.Remove(tail)
			delete(a.where, id)
		}
	}
}

func (a *arcPolicy) Victim(_ Iter, _ dataset.SampleID) (dataset.SampleID, bool) {
	// Prefer T1's LRU while it exceeds the target p, else T2's LRU.
	if a.t1.Len() > 0 && (a.t1.Len() > a.p || a.t2.Len() == 0) {
		return a.t1.Back().Value.(dataset.SampleID), true
	}
	if a.t2.Len() > 0 {
		return a.t2.Back().Value.(dataset.SampleID), true
	}
	if a.t1.Len() > 0 {
		return a.t1.Back().Value.(dataset.SampleID), true
	}
	return NoSample, false
}

func (a *arcPolicy) DrainExpired(_ Iter, _ func(dataset.SampleID)) {}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
