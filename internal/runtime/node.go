package runtime

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/access"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/kvstore"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/preproc"
	"repro/internal/retry"
)

// cachedBuf is one resident payload plus its recycling provenance.
// pooled marks buffers drawn from preproc's size-classed payload pool
// (PFS regenerated reads, peer-fetch copies): only those are returned to
// the pool on eviction. Buffers of unknown provenance — KV client
// copies, data-file reads, test-injected dataset slices — are never
// recycled, even when their capacity happens to be class-sized, because
// someone else may still reference the memory.
type cachedBuf struct {
	b      []byte
	pooled bool
}

// nodeCache pairs the policy-managed membership cache with the payload
// store, behind one mutex, and keeps the distributed directory consistent
// with local contents.
//
// It is also the lessor of DESIGN.md §12's buffer-recycling protocol: a
// demand read leases the resident buffer to the decode pipeline
// (leases), eviction recycles unleased pooled buffers immediately and
// parks leased ones (zombies) until the preprocessing worker releases
// the lease after decode. This closes the payload-buffer loop — evicted
// bytes go back to the pool that PFS reads draw from — instead of
// feeding every cache turnover to the garbage collector.
type nodeCache struct {
	mu       sync.Mutex
	node     int
	c        *cache.Cache
	payloads map[dataset.SampleID]cachedBuf
	dir      *Directory
	// leases counts in-flight decodes per buffer (keyed by the buffer's
	// base pointer, so an id evicted and refetched into a new buffer
	// cannot be confused with outstanding leases on the old one).
	leases map[*byte]int
	// zombies holds evicted-but-still-leased pooled buffers until their
	// last lease is released.
	zombies map[*byte][]byte
}

func newNodeCache(node int, capacity int64, policy cache.Policy, dir *Directory) (*nodeCache, error) {
	c, err := cache.New(capacity, policy)
	if err != nil {
		return nil, err
	}
	return &nodeCache{
		node:     node,
		c:        c,
		payloads: make(map[dataset.SampleID]cachedBuf),
		dir:      dir,
		leases:   make(map[*byte]int),
		zombies:  make(map[*byte][]byte),
	}, nil
}

// get returns the cached payload and records the hit/miss. On a hit of a
// pooled buffer the caller receives a lease (leased=true) and must
// arrange for ReleasePayload after the decode finishes reading it.
func (nc *nodeCache) get(id dataset.SampleID, now cache.Iter) (payload []byte, ok, leased bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.c.Get(id, now) {
		e := nc.payloads[id]
		if e.pooled {
			nc.leases[unsafe.SliceData(e.b)]++
			return e.b, true, true
		}
		return e.b, true, false
	}
	return nil, false, false
}

// ReleasePayload implements preproc.PayloadOwner: the decode pipeline is
// done reading a leased buffer. If the buffer was evicted while leased
// it is recycled now; otherwise it simply becomes evictable again.
func (nc *nodeCache) ReleasePayload(p []byte) {
	base := unsafe.SliceData(p)
	nc.mu.Lock()
	n := nc.leases[base] - 1
	if n > 0 {
		nc.leases[base] = n
		nc.mu.Unlock()
		return
	}
	delete(nc.leases, base)
	z, dead := nc.zombies[base]
	if dead {
		delete(nc.zombies, base)
	}
	nc.mu.Unlock()
	if dead {
		preproc.PutPayloadBuf(z)
	}
}

// discard routes an evicted entry: pooled buffers go back to the payload
// pool, unless a decode still reads them — then they park in zombies for
// ReleasePayload to recycle. Called with nc.mu held.
func (nc *nodeCache) discard(e cachedBuf) {
	if !e.pooled {
		return
	}
	base := unsafe.SliceData(e.b)
	if nc.leases[base] > 0 {
		nc.zombies[base] = e.b
		return
	}
	preproc.PutPayloadBuf(e.b)
}

// contains reports residency without touching stats (peer/prefetch
// checks must not perturb the owner's hit accounting, Section 5.5
// measures per-node cache hits).
func (nc *nodeCache) contains(id dataset.SampleID) bool {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	_, ok := nc.payloads[id]
	return ok
}

// copyPayload returns a pooled copy of a resident payload (nil when
// absent), without touching the hit/miss stats. Remote serves hand out
// copies rather than aliases so buffer ownership stays node-local: the
// requester exclusively owns what it receives, and this node can recycle
// the original on eviction without a cross-node read racing it.
func (nc *nodeCache) copyPayload(id dataset.SampleID) []byte {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	e, ok := nc.payloads[id]
	if !ok {
		return nil
	}
	buf := preproc.GetPayloadBuf(len(e.b))
	copy(buf, e.b)
	return buf
}

// peekBatch fills out[i] with whether ids[i] is resident, taking the
// cache lock once for the whole batch. Like contains it does not touch
// the hit/miss stats.
func (nc *nodeCache) peekBatch(ids []dataset.SampleID, out []bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	for i, id := range ids {
		_, out[i] = nc.payloads[id]
	}
}

// put inserts a payload (policy permitting) and syncs the directory.
// ok reports whether the sample is cached after the call (inserted now
// or already present); retained reports whether the cache kept a
// reference to *this* slice. Callers deciding buffer ownership
// (DESIGN.md §12) must use retained — an already-cached sample keeps
// the cache's earlier copy, so the caller's duplicate stays exclusively
// the caller's. pooled declares the buffer recyclable on eviction (see
// cachedBuf); lease additionally takes out a decode lease when the
// cache retains a pooled buffer the caller is about to submit for
// decode, in the same critical section so no eviction can slip between
// insert and lease.
func (nc *nodeCache) put(id dataset.SampleID, payload []byte, now cache.Iter, pooled, lease bool) (ok, retained bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.c.Contains(id) {
		return true, false
	}
	evicted, inserted := nc.c.Put(id, int64(len(payload)), now)
	for _, ev := range evicted {
		nc.discard(nc.payloads[ev])
		delete(nc.payloads, ev)
		nc.dir.Remove(nc.node, ev)
	}
	if inserted {
		nc.payloads[id] = cachedBuf{b: payload, pooled: pooled}
		nc.dir.Add(nc.node, id)
		if pooled && lease {
			nc.leases[unsafe.SliceData(payload)]++
		}
	}
	return inserted, inserted
}

// maintain runs proactive policy evictions.
func (nc *nodeCache) maintain(now cache.Iter) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	for _, ev := range nc.c.Maintain(now) {
		nc.discard(nc.payloads[ev])
		delete(nc.payloads, ev)
		nc.dir.Remove(nc.node, ev)
	}
}

func (nc *nodeCache) stats() cache.Stats {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.c.Stats()
}

// crash wipes the cache as a process loss would: every resident entry is
// dropped from the membership cache, its payload discarded, and its
// directory bit cleared — all in one critical section, so the shard map
// is repaired atomically with the loss and no peer can be promised a
// copy the node no longer has. Pooled buffers go through discard, which
// parks still-leased ones as zombies instead of recycling memory a
// decode worker is reading. Returns the number of entries dropped.
func (nc *nodeCache) crash() int {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	n := 0
	for id, e := range nc.payloads {
		nc.c.Remove(id)
		nc.discard(e)
		delete(nc.payloads, id)
		nc.dir.Remove(nc.node, id)
		n++
	}
	return n
}

// loadRequest asks a loading worker to materialize one sample for one GPU.
type loadRequest struct {
	id   dataset.SampleID
	seed uint64
	out  chan<- preproc.Result
	// ctx attributes the load to its (rank, epoch, iter); enq timestamps
	// the submit for queue-wait attribution. Both zero when the run is
	// un-instrumented (see loadWork).
	ctx obs.TraceCtx
	enq time.Time
}

// loadWork is one message on a gpuQueue: either a single legacy request
// (ids nil) or a contiguous chunk of a batch enqueued by submitBatch.
type loadWork struct {
	single loadRequest
	// Batched variant: materialize ids and complete comp's slots
	// base..base+len(ids)-1. The per-sample preprocessing seed is
	// seed ^ id. ids is borrowed from the submitting rank's batch
	// scratch; every read of it happens-before the completion's wake,
	// which happens-before the rank reuses the scratch.
	ids  []dataset.SampleID
	base int
	seed uint64
	comp *preproc.Completion
	// ctx carries the requesting (rank, epoch, iter) down the demand
	// path: into the stall ledger, the preproc jobs, and — through the
	// KV client's 0xA4 frames — onto the server's trace ring. Zero when
	// the run is un-instrumented.
	ctx obs.TraceCtx
	// enq, when non-zero, timestamps the submit so the claiming worker
	// can charge the queue wait to ctx's rank. Stamped only while
	// attribution records, keeping the disabled path clock-free.
	enq time.Time
}

// maxLoadChunk caps the automatic chunk size of submitBatch: loading is
// latency-bound (modeled storage waits), so one worker must never
// serialize a whole large batch.
const maxLoadChunk = 8

// gpuStopsCap bounds the stop-token channel. Overflow past it goes to
// stopDebt (see resize), so a resize storm can never block the caller.
const gpuStopsCap = 256

// gpuQueue is the per-GPU request queue of Section 4.2 with a resizable
// worker set — "a separate request queue for each GPU, each of which can
// be assigned a different number of threads".
type gpuQueue struct {
	reqs    chan loadWork
	node    *nodeRuntime
	label   string // trace track-name prefix, "node<n>/gpu<j>"
	mu      sync.Mutex
	target  int
	stops   chan struct{}
	wg      *sync.WaitGroup
	pending atomic.Int64

	// stopDebt holds stop requests that did not fit in stops; workers
	// claim debt at the top of their loop and resize's grow path cancels
	// it against spawns.
	stopDebt atomic.Int64

	// tidFree recycles trace thread IDs across worker generations so
	// per-iteration resizing does not mint unbounded trace tracks.
	tidMu   sync.Mutex
	tidFree []int64
	tidSeq  int
}

func newGPUQueue(node *nodeRuntime, gpu, workers int, wg *sync.WaitGroup) *gpuQueue {
	return newGPUQueueCap(node, gpu, workers, wg, gpuStopsCap)
}

// newGPUQueueCap is newGPUQueue with the stop-token capacity exposed so
// tests can force the overflow path without hundreds of workers.
func newGPUQueueCap(node *nodeRuntime, gpu, workers int, wg *sync.WaitGroup, stopsCap int) *gpuQueue {
	q := &gpuQueue{
		reqs:  make(chan loadWork, 1024),
		node:  node,
		label: fmt.Sprintf("node%d/gpu%d", node.node, gpu),
		stops: make(chan struct{}, stopsCap),
		wg:    wg,
	}
	q.resize(workers)
	return q
}

// takeTID leases a trace track for one loading worker, reusing
// returned IDs before minting new ones.
func (q *gpuQueue) takeTID(tr *obs.TraceRing) int64 {
	q.tidMu.Lock()
	if n := len(q.tidFree); n > 0 {
		tid := q.tidFree[n-1]
		q.tidFree = q.tidFree[:n-1]
		q.tidMu.Unlock()
		return tid
	}
	q.tidSeq++
	seq := q.tidSeq
	q.tidMu.Unlock()
	return tr.NewThread(fmt.Sprintf("%s/loader%d", q.label, seq))
}

func (q *gpuQueue) putTID(tid int64) {
	if tid == 0 {
		return
	}
	q.tidMu.Lock()
	q.tidFree = append(q.tidFree, tid)
	q.tidMu.Unlock()
}

func (q *gpuQueue) submit(r loadRequest) {
	q.pending.Add(1)
	q.reqs <- loadWork{single: r}
}

// submitBatch enqueues one GPU batch as contiguous chunks of at most
// `chunk` samples — one channel send per chunk instead of one per
// sample. comp must be armed (Reset) for len(ids) results; slots map
// 1:1 to batch positions, so the results come back in batch order. ids
// is borrowed until comp's Wait returns; the caller must not mutate it
// before then. chunk <= 0 picks an automatic size: the batch spread
// evenly over the queue's current workers, capped at maxLoadChunk.
//
//lint:hotpath one call per iteration per rank on the batched data path; BENCH_runtime.json pins 0 allocs/op
func (q *gpuQueue) submitBatch(ids []dataset.SampleID, seed uint64, comp *preproc.Completion, chunk int, tctx obs.TraceCtx, enq time.Time) {
	if chunk <= 0 {
		w := q.workers()
		chunk = (len(ids) + w - 1) / w
		if chunk > maxLoadChunk {
			chunk = maxLoadChunk
		}
		if chunk < 1 {
			chunk = 1
		}
	}
	q.pending.Add(int64(len(ids)))
	for base := 0; base < len(ids); base += chunk {
		end := base + chunk
		if end > len(ids) {
			end = len(ids)
		}
		q.reqs <- loadWork{ids: ids[base:end], base: base, seed: seed, comp: comp, ctx: tctx, enq: enq}
	}
}

// claimStopDebt consumes one overflowed stop request, if any.
func (q *gpuQueue) claimStopDebt() bool {
	for {
		d := q.stopDebt.Load()
		if d <= 0 {
			return false
		}
		if q.stopDebt.CompareAndSwap(d, d-1) {
			return true
		}
	}
}

func (q *gpuQueue) resize(n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	for q.target < n {
		q.target++
		// A pending stop cancels against a spawn: claiming the debt
		// keeps an already-running worker alive instead of starting a
		// goroutine whose sibling is about to retire.
		if q.claimStopDebt() {
			continue
		}
		q.wg.Add(1)
		go q.worker()
	}
	shrink := 0
	for q.target > n {
		q.target--
		shrink++
	}
	q.mu.Unlock()
	// Deliver stop tokens after releasing the lock, and never block on
	// them: overflow past the channel bound becomes debt that workers
	// claim at the top of their loop, so a resize storm stalls nobody.
	for ; shrink > 0; shrink-- {
		select {
		case q.stops <- struct{}{}:
		default:
			q.stopDebt.Add(1)
		}
	}
}

func (q *gpuQueue) workers() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.target
}

func (q *gpuQueue) worker() {
	defer q.wg.Done()
	var tid int64
	defer func() { q.putTID(tid) }()
	var jobs []preproc.Job // reused batched-chunk scratch
	for {
		if q.claimStopDebt() {
			return
		}
		select {
		case <-q.stops:
			return
		case w, ok := <-q.reqs:
			if !ok {
				return
			}
			if tid == 0 {
				if ro := q.node.rt.ro; ro != nil && ro.trace != nil {
					tid = q.takeTID(ro.trace)
				}
			}
			if w.ids == nil {
				q.node.load(w.single, tid)
				q.pending.Add(-1)
				break
			}
			jobs = q.node.loadChunk(w, tid, jobs[:0])
			q.pending.Add(-int64(len(w.ids)))
		}
	}
}

// nodeRuntime is everything co-located on one node.
type nodeRuntime struct {
	node    int
	rt      *Runtime
	cache   *nodeCache
	queues  []*gpuQueue
	pre     *preproc.Pool
	plan    *access.Plan
	iterNow atomic.Int32 // current global iteration (policy timestamps)

	remoteHits atomic.Uint64
	pfsReads   atomic.Uint64
	prefetched atomic.Uint64
	pfsRetries atomic.Uint64
	// failovers counts shared-tier reads that fell over to the PFS: a
	// directory-promised peer copy that did not arrive (crashed or
	// flaky peer — or the benign advisory-directory race), a KV Get that
	// errored, or a whole prefetch window degraded by a full MultiGet
	// failure.
	failovers atomic.Uint64
	// partials counts KV MultiGet fan-outs that came back partial (some
	// shards failed, the rest delivered — kvstore.PartialError).
	partials atomic.Uint64

	// loadHist times each sample materialization (runtimeObs; nil when
	// un-instrumented — nil-safe to observe).
	loadHist *obs.Histogram

	loadWG   sync.WaitGroup
	serverWG sync.WaitGroup
	prefWG   sync.WaitGroup
	stopPref chan struct{}
}

// load materializes one sample and hands it to preprocessing with
// per-sample channel delivery — the legacy path (see loadChunk for the
// batched one). tid is the worker's trace track (0 when untraced).
func (n *nodeRuntime) load(r loadRequest, tid int64) {
	if !r.enq.IsZero() {
		if ro := n.rt.ro; ro != nil {
			ro.ledger.add(r.ctx.Rank(), causeQueueWait, time.Since(r.enq))
		}
	}
	payload, owned, owner := n.loadPayload(r.id, tid, r.ctx)
	job := preproc.Job{ID: r.id, Payload: payload, Seed: r.seed, Done: r.out, Owned: owned, Owner: owner, Ctx: r.ctx}
	if !r.enq.IsZero() {
		job.EnqueuedAt = time.Now()
	}
	n.pre.Submit(job)
}

// loadChunk materializes one contiguous chunk of a GPU batch and hands
// it to preprocessing in a single SubmitBatch. jobs is the worker's
// reused scratch, passed length-zero; the returned slice carries its
// grown capacity back to the worker loop.
func (n *nodeRuntime) loadChunk(w loadWork, tid int64, jobs []preproc.Job) []preproc.Job {
	if !w.enq.IsZero() {
		if ro := n.rt.ro; ro != nil {
			// The whole chunk sat in the queue from submit to this pickup;
			// charge it once (chunks are the queue's unit of work).
			ro.ledger.add(w.ctx.Rank(), causeQueueWait, time.Since(w.enq))
		}
	}
	for i, id := range w.ids {
		payload, owned, owner := n.loadPayload(id, tid, w.ctx)
		jobs = append(jobs, preproc.Job{
			ID:      id,
			Payload: payload,
			Seed:    w.seed ^ uint64(id),
			Comp:    w.comp,
			Slot:    w.base + i,
			Owned:   owned,
			Owner:   owner,
			Ctx:     w.ctx,
		})
	}
	if !w.enq.IsZero() {
		enq := time.Now()
		for i := range jobs {
			jobs[i].EnqueuedAt = enq
		}
	}
	n.pre.SubmitBatch(jobs)
	return jobs
}

// loadPayload materializes one sample's bytes: local cache, else peer
// cache/KV cluster, else PFS. This is the Equation 1 path, executed for
// real. owned reports whether the returned slice is exclusively the
// data path's — recyclable after decode; a non-nil owner means the
// slice is leased from a cache that still retains it and must be
// released (never recycled) after decode (DESIGN.md §12).
func (n *nodeRuntime) loadPayload(id dataset.SampleID, tid int64, tctx obs.TraceCtx) (payload []byte, owned bool, owner preproc.PayloadOwner) {
	ro := n.rt.ro
	rec := ro != nil && (ro.trace != nil || n.loadHist.On())
	var start time.Time
	var led *stallLedger
	if rec {
		start = time.Now()
		led = ro.ledger
	}
	now := cache.Iter(n.iterNow.Load())
	payload, ok, leased := n.cache.get(id, now)
	if ok {
		if leased {
			owner = n.cache
		}
	} else {
		payload, owned, owner = n.fetchMiss(id, now, tctx, led)
	}
	if rec {
		d := time.Since(start)
		if ok {
			// The miss path attributes its own legs inside fetchMiss; a hit
			// is entirely the local cache's time.
			led.add(tctx.Rank(), causeLocalHit, d)
		}
		n.loadHist.Observe(d.Seconds())
		if tid != 0 {
			ro.trace.SpanArgs("load", "io", tid, start, d, "sample", int64(id), "", 0)
		}
	}
	return payload, owned, owner
}

// fetchMiss pulls a missing sample from the shared cache tier (peer
// caches via the distribution manager, or a KV cluster when configured)
// or the PFS, and caches it locally. Ownership (DESIGN.md §12): when the
// local cache retained a pooled buffer, the caller gets a decode lease
// (owner = the cache); when the cache kept its own earlier copy or
// refused, the fetched buffer is exclusively the caller's (owned).
//
// led, when non-nil, receives the stall attribution (DESIGN.md §14):
// the shared-tier leg is peer_fetch whether it delivers or fails; a PFS
// read is pfs on the normal path (no holder, or a clean KV miss) and
// recovery when the tier broke a promise — exactly the failover events.
func (n *nodeRuntime) fetchMiss(id dataset.SampleID, now cache.Iter, tctx obs.TraceCtx, led *stallLedger) (payload []byte, owned bool, owner preproc.PayloadOwner) {
	rank := tctx.Rank()
	recovering := false
	if n.rt.kv != nil {
		var legStart time.Time
		if led != nil {
			legStart = time.Now()
		}
		payload, found, err := n.rt.kv.GetTraced(kvKey(id), tctx)
		if led != nil {
			led.add(rank, causePeerFetch, time.Since(legStart))
		}
		if err == nil && found {
			n.remoteHits.Add(1)
			// The KV client allocated this copy at exact value size; it
			// is not pool-recyclable, so ownership only decides whether
			// the worker's PutPayloadBuf (a capacity-checked no-op here)
			// runs.
			_, retained := n.cache.put(id, payload, now, false, false)
			return payload, !retained, nil
		}
		if err != nil {
			n.failovers.Add(1) // shard unreachable: fall to the PFS
			recovering = true
		}
	} else if peer := n.rt.dir.Holder(id, n.node); peer >= 0 {
		var legStart time.Time
		if led != nil {
			legStart = time.Now()
		}
		fetched := n.rt.dm.Fetch(peer, id, n.rt.ds.Size(id))
		if led != nil {
			led.add(rank, causePeerFetch, time.Since(legStart))
		}
		if fetched != nil {
			n.remoteHits.Add(1)
			// The serving node copied into a pooled buffer just for us.
			if _, retained := n.cache.put(id, fetched, now, true, true); retained {
				return fetched, false, n.cache
			}
			return fetched, true, nil
		}
		// The directory promised a holder and the peer delivered nothing
		// — a crashed/flaky peer, or the benign eviction race.
		n.failovers.Add(1)
		recovering = true
	}
	var pfsStart time.Time
	if led != nil {
		pfsStart = time.Now()
	}
	payload = n.pfsReadRetry(id)
	if led != nil {
		c := causePFS
		if recovering {
			c = causeRecovery
		}
		led.add(rank, c, time.Since(pfsStart))
	}
	n.pfsReads.Add(1)
	pooled := n.rt.pfs.PooledReads()
	_, retained := n.cache.put(id, payload, now, pooled, true)
	if n.rt.kv != nil {
		// Write-back so other nodes find it in the shared tier; the
		// cluster's own LRU bounds its memory. Put is synchronous — the
		// payload is fully on the wire before it returns — so it does
		// not extend the buffer's ownership.
		_ = n.rt.kv.Put(kvKey(id), payload)
	}
	if retained && pooled {
		return payload, false, n.cache
	}
	return payload, !retained, nil
}

// pfsRetryPolicy shapes the PFS read backoff: exponential from 1ms
// capped at 16ms, unbounded attempts — training cannot proceed without
// the sample, so real loaders surface storage outages as hangs rather
// than corrupt batches.
var pfsRetryPolicy = retry.Policy{Base: time.Millisecond, Max: 16 * time.Millisecond}

// pfsReadRetry reads from the PFS through the shared retry helper,
// retrying transient failures (errors.Is on the ErrTransient sentinel,
// so wrapped transients match too) and counting each retry for the
// failure-injection diagnostics.
func (n *nodeRuntime) pfsReadRetry(id dataset.SampleID) []byte {
	var payload []byte
	err := retry.Do(pfsRetryPolicy,
		func(err error) bool { return errors.Is(err, ErrTransient) },
		func(int, error) { n.pfsRetries.Add(1) },
		func() error {
			var err error
			payload, err = n.rt.pfs.Read(id)
			return err
		})
	if err != nil {
		// Unreachable for in-range ids; surface loudly if it happens.
		panic(fmt.Sprintf("runtime: PFS read failed: %v", err))
	}
	return payload
}

// kvKey renders a sample's cluster key.
func kvKey(id dataset.SampleID) string {
	return "sample/" + strconv.FormatUint(uint64(id), 10)
}

// serveRemote answers peer-cache fetches until the inbox closes. Each
// reply is a pooled copy of the resident payload (nil when absent), so
// the requester owns what it receives and this node's eviction-time
// recycling never races a remote read (DESIGN.md §12).
func (n *nodeRuntime) serveRemote() {
	defer n.serverWG.Done()
	for req := range n.rt.dm.Inbox(n.node) {
		req.reply <- n.cache.copyPayload(req.id)
	}
}

// prefetcher walks the node's future accesses, keeping the cache filled
// ahead of training. It runs in its own (small) worker set so it competes
// with demand loading for storage bandwidth exactly as real background
// prefetching does.
func (n *nodeRuntime) prefetcher(workers, depthIters int) {
	for w := 0; w < workers; w++ {
		w := w
		n.prefWG.Add(1)
		go func() {
			defer n.prefWG.Done()
			var ptid int64
			if ro := n.rt.ro; ro != nil && ro.trace != nil {
				ptid = ro.trace.NewThread(fmt.Sprintf("node%d/prefetch%d", n.node, w))
			}
			cursor := access.Iter(0)
			var batch []dataset.SampleID
			for {
				select {
				case <-n.stopPref:
					return
				default:
				}
				now := access.Iter(n.iterNow.Load())
				if cursor <= now {
					cursor = now + 1
				}
				if cursor > now+access.Iter(depthIters) || int(cursor) >= int(n.rt.totalIters) {
					// Caught up: yield briefly.
					select {
					case <-n.stopPref:
						return
					case <-n.rt.tick:
					}
					continue
				}
				epoch := int(cursor) / n.rt.itersPerEpoch
				it := int(cursor) % n.rt.itersPerEpoch
				batch = n.rt.sched.NodeBatch(batch[:0], epoch, it, n.node, n.rt.gpus)
				var wstart time.Time
				var before uint64
				if ptid != 0 {
					wstart, before = time.Now(), n.prefetched.Load()
				}
				if n.rt.kv != nil {
					n.prefetchWindowKV(batch)
				} else {
					for _, id := range batch {
						select {
						case <-n.stopPref:
							return
						default:
						}
						nowC := cache.Iter(n.iterNow.Load())
						if n.cache.contains(id) {
							continue
						}
						if !n.fetchPrefetch(id, nowC) {
							break // cache refused: later candidates are needed later
						}
						n.prefetched.Add(1)
					}
				}
				if ptid != 0 {
					n.rt.ro.trace.SpanArgs("prefetch_window", "io", ptid,
						wstart, time.Since(wstart),
						"iter", int64(cursor), "fetched", int64(n.prefetched.Load()-before))
				}
				cursor++
			}
		}()
	}
}

// prefetchWindowKV fills the cache for one plan window through the KV
// cluster: the window's misses are fetched in a single MultiGet round
// trip per shard, and every PFS fallback read is written back to the
// cluster in one batched MultiPut. Semantics match the per-id path:
// a KV hit counts only toward prefetched, a PFS fallback also counts a
// PFS read, and a local-cache refusal abandons the rest of the window
// (later candidates are needed later).
func (n *nodeRuntime) prefetchWindowKV(batch []dataset.SampleID) {
	resident := make([]bool, len(batch))
	n.cache.peekBatch(batch, resident)
	need := batch[:0:0]
	var keys []string
	for i, id := range batch {
		if !resident[i] {
			need = append(need, id)
			keys = append(keys, kvKey(id))
		}
	}
	if len(need) == 0 {
		return
	}
	vals, err := n.rt.kv.MultiGet(keys)
	if err != nil {
		// A partial fan-out failure still returns the healthy shards'
		// values (failed shards' entries are nil, i.e. misses); anything
		// else degrades the whole window to misses.
		var pe *kvstore.PartialError
		if errors.As(err, &pe) {
			n.partials.Add(1)
		} else {
			n.failovers.Add(1)
			vals = nil
		}
	}
	// Write-backs accumulate across the loop and flush in one MultiPut,
	// including when a cache refusal abandons the window early. The flush
	// still reads every queued buffer, so pooled ones stay protected
	// until after it: retained buffers hold a lease (eviction must not
	// recycle them mid-flush), unretained ones are recycled only once the
	// flush is done with them.
	var wbKeys []string
	var wbVals [][]byte
	var freeAfterWB, releaseAfterWB [][]byte
	defer func() {
		if len(wbKeys) > 0 {
			_ = n.rt.kv.MultiPut(wbKeys, wbVals) // best-effort, like the per-id write-back
		}
		for _, b := range freeAfterWB {
			preproc.PutPayloadBuf(b)
		}
		for _, b := range releaseAfterWB {
			n.cache.ReleasePayload(b)
		}
	}()
	for i, id := range need {
		select {
		case <-n.stopPref:
			return
		default:
		}
		now := cache.Iter(n.iterNow.Load())
		var payload []byte
		pooled := false
		if vals != nil && vals[i] != nil {
			payload = vals[i] // KV client copy: not pool-recyclable
		} else {
			payload = n.pfsReadRetry(id)
			n.pfsReads.Add(1)
			pooled = n.rt.pfs.PooledReads()
			wbKeys = append(wbKeys, keys[i])
			wbVals = append(wbVals, payload)
		}
		ok, retained := n.cache.put(id, payload, now, pooled, pooled)
		if pooled {
			if retained {
				releaseAfterWB = append(releaseAfterWB, payload)
			} else {
				freeAfterWB = append(freeAfterWB, payload)
			}
		}
		if !ok {
			return // cache refused: later candidates are needed later
		}
		n.prefetched.Add(1)
	}
}

// fetchPrefetch fetches a sample for the cache only; reports whether the
// cache accepted it. A pooled buffer the cache did not retain (earlier
// copy already resident, or insert refused) is recycled on the spot —
// nothing will ever read it.
func (n *nodeRuntime) fetchPrefetch(id dataset.SampleID, now cache.Iter) bool {
	size := n.rt.ds.Size(id)
	var payload []byte
	pooled := false
	if n.rt.kv != nil {
		p, found, err := n.rt.kv.Get(kvKey(id))
		if err == nil && found {
			payload = p
		}
		if err != nil {
			n.failovers.Add(1) // shard unreachable: fall to the PFS
		}
	} else if peer := n.rt.dir.Holder(id, n.node); peer >= 0 {
		if p := n.rt.dm.Fetch(peer, id, size); p != nil {
			payload, pooled = p, true
		} else {
			// Promised holder delivered nothing (crashed/flaky peer, or the
			// benign eviction race): fall to the PFS.
			n.failovers.Add(1)
		}
	}
	if payload == nil {
		payload = n.pfsReadRetry(id)
		n.pfsReads.Add(1)
		pooled = n.rt.pfs.PooledReads()
		if n.rt.kv != nil {
			_ = n.rt.kv.Put(kvKey(id), payload)
		}
	}
	ok, retained := n.cache.put(id, payload, now, pooled, false)
	if !retained && pooled {
		preproc.PutPayloadBuf(payload)
	}
	return ok
}

// buildNodePolicy instantiates the strategy's cache policy for this node.
func buildNodePolicy(spec loader.Spec, plan *access.Plan, node int, dir *Directory) cache.Policy {
	return spec.BuildPolicy(plan, func(id dataset.SampleID) bool {
		return dir.IsLastCopy(node, id)
	})
}
