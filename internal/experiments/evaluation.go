package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/loader"
	"repro/internal/pipeline"
	"repro/internal/trainsim"
)

// Fig09Accuracy reproduces Figure 9: ResNet50 training-accuracy curves on
// ImageNet-1K with PyTorch DataLoader and with Lobster, eight nodes.
// Paper: the two curves coincide per epoch ("Lobster does not change the
// randomness of data accessing"), converging to 76.0% around epoch 40,
// while Lobster reaches any accuracy earlier in wall time.
func Fig09Accuracy() Experiment {
	return Experiment{
		ID:    "fig09",
		Title: "Training accuracy curves, ResNet50, ImageNet-1K, 8x8 GPUs (Fig. 9)",
		Paper: "identical per-epoch curves; ~76.0% around epoch 40; Lobster faster in wall time",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 64)
			if err != nil {
				return nil, err
			}
			top := topology(8, ds, CacheRatio1K/8)
			rep := &Report{ID: "fig09", Title: "Accuracy curves (Fig. 9)"}

			campaigns, err := runAllTrain(p, []pipeline.Config{
				baseConfig(p, top, ds, resnet50(), loader.PyTorch(top.GPUsPerNode, top.CPUThreads)),
				baseConfig(p, top, ds, resnet50(), loader.Lobster()),
			})
			if err != nil {
				return nil, err
			}
			base, lob := campaigns[0], campaigns[1]
			rep.Printf("%6s %12s %12s %14s %14s", "epoch", "acc(pyt)", "acc(lob)", "t(pyt,s)", "t(lob,s)")
			step := len(base.Curve)/10 + 1
			for e := 0; e < len(base.Curve); e += step {
				rep.Printf("%6d %12.4f %12.4f %14.2f %14.2f", e+1,
					base.Curve[e].Accuracy, lob.Curve[e].Accuracy,
					base.Curve[e].Time, lob.Curve[e].Time)
			}
			last := len(base.Curve) - 1
			rep.Printf("final accuracy: pytorch %.4f, lobster %.4f (identical by construction)",
				base.FinalAccuracy(), lob.FinalAccuracy())
			rep.Printf("wall time to final epoch: pytorch %.2fs, lobster %.2fs (%.2fx faster)",
				base.Curve[last].Time, lob.Curve[last].Time,
				base.Curve[last].Time/lob.Curve[last].Time)
			rep.Set("final_acc", lob.FinalAccuracy())
			rep.Set("walltime_speedup", base.Curve[last].Time/lob.Curve[last].Time)
			rep.Set("curves_identical", boolTo01(curvesEqual(base, lob)))
			return rep, nil
		},
	}
}

func curvesEqual(a, b *trainsim.Campaign) bool {
	if len(a.Curve) != len(b.Curve) {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i].Accuracy != b.Curve[i].Accuracy {
			return false
		}
	}
	return true
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TabHitRatio reproduces the Section 5.5 in-text comparison: memory-cache
// hit ratios over the whole training, single node, ResNet50, ImageNet-1K.
// Paper: Lobster 63.2% vs PyTorch 24.5%, DALI 32.6%, NoPFS 48.9%
// (improvements of 14.3-38.7 pp).
func TabHitRatio() Experiment {
	return Experiment{
		ID:    "tab-hitratio",
		Title: "Memory cache hit ratio, single node, ImageNet-1K (Section 5.5)",
		Paper: "Lobster 63.2%; PyTorch 24.5%; DALI 32.6%; NoPFS 48.9%",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio1K)
			rep := &Report{ID: "tab-hitratio", Title: "Cache hit ratios (Section 5.5)"}
			paper := map[string]float64{"pytorch": 24.5, "dali": 32.6, "nopfs": 48.9, "lobster": 63.2}
			rep.Printf("%-12s %12s %12s", "strategy", "hit%(ours)", "hit%(paper)")
			var lobster, nopfs float64
			specs := strategies(top)
			var cfgs []pipeline.Config
			for _, spec := range specs {
				cfgs = append(cfgs, baseConfig(p, top, ds, resnet50(), spec))
			}
			results, err := runAll(p, cfgs)
			if err != nil {
				return nil, err
			}
			for si, spec := range specs {
				hr := results[si].Metrics.HitRatio() * 100
				rep.Printf("%-12s %12.1f %12.1f", spec.Name, hr, paper[spec.Name])
				rep.Set("hit_"+spec.Name, hr/100)
				switch spec.Name {
				case "lobster":
					lobster = hr
				case "nopfs":
					nopfs = hr
				}
			}
			rep.Printf("Lobster improvement over NoPFS: %.1f pp (paper: 14.3 pp)", lobster-nopfs)
			rep.Set("improvement_vs_nopfs_pp", lobster-nopfs)
			return rep, nil
		},
	}
}

// Fig10GPUUtil reproduces Figure 10: average GPU utilization across the
// six benchmark DNNs, single node, ImageNet-1K. Paper averages:
// Lobster 76.1% vs PyTorch 52.3%, DALI 57.5%, NoPFS 72.4%.
func Fig10GPUUtil() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "GPU utilization across six DNNs, single node, ImageNet-1K (Fig. 10)",
		Paper: "Lobster 76.1% vs PyTorch 52.3%, DALI 57.5%, NoPFS 72.4%",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio1K)
			rep := &Report{ID: "fig10", Title: "GPU utilization (Fig. 10)"}
			specs := strategies(top)
			rep.Printf("%-12s %10s %10s %10s %10s", "model",
				specs[0].Name, specs[1].Name, specs[2].Name, specs[3].Name)
			sums := make([]float64, len(specs))
			models := benchModels()
			var cfgs []pipeline.Config
			for _, m := range models {
				for _, spec := range specs {
					cfgs = append(cfgs, baseConfig(p, top, ds, m, spec))
				}
			}
			results, err := runAll(p, cfgs)
			if err != nil {
				return nil, err
			}
			for mi, m := range models {
				row := fmt.Sprintf("%-12s", m.Name)
				for i, spec := range specs {
					u := results[mi*len(specs)+i].Metrics.GPUUtilization()
					sums[i] += u
					row += fmt.Sprintf(" %9.1f%%", u*100)
					rep.Set(fmt.Sprintf("util_%s_%s", m.Name, spec.Name), u)
				}
				rep.Lines = append(rep.Lines, row)
			}
			row := fmt.Sprintf("%-12s", "average")
			for i, spec := range specs {
				avg := sums[i] / float64(len(models))
				row += fmt.Sprintf(" %9.1f%%", avg*100)
				rep.Set("avg_util_"+spec.Name, avg)
			}
			rep.Lines = append(rep.Lines, row)
			return rep, nil
		},
	}
}

// Fig11Ablation reproduces Figure 11: per-model training-time speedup over
// DALI for Lobster_th (thread management only), Lobster_evict (reuse-based
// eviction only) and full Lobster, single node, ImageNet-1K. Paper: thread
// management contributes more (up to 1.4x, avg 1.3x) than eviction
// (~1.15x avg), and eviction helps the small models most.
func Fig11Ablation() Experiment {
	return Experiment{
		ID:    "fig11",
		Title: "Ablation: speedup over DALI per component (Fig. 11)",
		Paper: "Lobster_th avg 1.3x (up to 1.4x); Lobster_evict ~1.15x; eviction helps small models more",
		Run: func(p Params) (*Report, error) {
			p = p.withDefaults()
			ds, err := imagenet1K(p, 8)
			if err != nil {
				return nil, err
			}
			top := topology(1, ds, CacheRatio1K)
			rep := &Report{ID: "fig11", Title: "Ablation vs DALI (Fig. 11)"}
			variants := []loader.Spec{
				loader.LobsterTh(),
				loader.LobsterEvict(top.GPUsPerNode, top.CPUThreads),
				loader.Lobster(),
			}
			rep.Printf("%-12s %12s %14s %10s", "model", "lobster_th", "lobster_evict", "lobster")
			sums := make([]float64, len(variants))
			models := benchModels()
			// Per model: the DALI baseline plus each variant (stride 1+len(variants)).
			var cfgs []pipeline.Config
			for _, m := range models {
				cfgs = append(cfgs, baseConfig(p, top, ds, m, loader.DALI(top.CPUThreads)))
				for _, v := range variants {
					cfgs = append(cfgs, baseConfig(p, top, ds, m, v))
				}
			}
			results, err := runAll(p, cfgs)
			if err != nil {
				return nil, err
			}
			stride := 1 + len(variants)
			for mi, m := range models {
				base := results[mi*stride]
				row := fmt.Sprintf("%-12s", m.Name)
				for i, v := range variants {
					res := results[mi*stride+1+i]
					sp := base.Metrics.TotalTime / res.Metrics.TotalTime
					sums[i] += sp
					row += fmt.Sprintf(" %12.2fx", sp)
					rep.Set(fmt.Sprintf("speedup_%s_%s", m.Name, v.Name), sp)
				}
				rep.Lines = append(rep.Lines, row)
			}
			row := fmt.Sprintf("%-12s", "average")
			for i, v := range variants {
				avg := sums[i] / float64(len(models))
				row += fmt.Sprintf(" %12.2fx", avg)
				rep.Set("avg_speedup_"+v.Name, avg)
			}
			rep.Lines = append(rep.Lines, row)
			return rep, nil
		},
	}
}

// benchModels returns the six Section 5.1 models.
func benchModels() []cluster.DNNModel {
	return cluster.Models()
}
