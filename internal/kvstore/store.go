package kvstore

import (
	"bufio"
	"encoding/binary"
	"hash/maphash"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// minStripeBytes is the smallest per-stripe byte budget worth striping
// for: below it the auto-sizing collapses stripes so tiny shards keep
// the exact global-LRU semantics of the v1 store.
const minStripeBytes = 64 << 10

// defaultStripes caps the automatic stripe count.
const defaultStripes = 16

// stripeSeed keys the per-process stripe hash. maphash gives a strong,
// per-process-randomized distribution so hostile key sets cannot pin
// every op onto one stripe.
var stripeSeed = maphash.MakeSeed()

// store is the striped in-memory LRU behind one Server: keys hash to one
// of N lock stripes, each with its own LRU list and byte budget, so
// concurrent connections stop serializing on a single shard mutex.
type store struct {
	stripes []*stripe
	mask    uint64

	// adm is the overload-control layer (admission.go); nil admits
	// everything. It lives on the store rather than the Server so the
	// protocol fuzzers can drive admission without a TCP listener.
	adm *admitter

	// fault is the injected fault profile (Server.SetFault; nil =
	// healthy): per-request lag/jitter while the request occupies its
	// in-flight slot, error and connection-drop rates — the
	// straggler/chaos hook behind the hedged-read tests, the overload
	// benchmark and the chaos harness (fault.go).
	fault      atomic.Pointer[faultState]
	faultErrs  atomic.Uint64
	faultDrops atomic.Uint64

	// trace records one server-side span per traced (0xA4) request,
	// stamped with the originating rank/iter from the frame's TraceCtx
	// (ServerOptions.Trace; nil records nothing).
	trace *obs.TraceRing
}

// stripe is one lock-striped sub-shard.
type stripe struct {
	mu       sync.Mutex
	capacity int64
	items    map[string]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	used     int64

	hits      uint64
	misses    uint64
	evictions uint64
	tooLarge  uint64
}

type entry struct {
	key        string
	val        []byte
	prev, next *entry
}

// pickStripes chooses the stripe count for a capacity: the configured
// cap, halved until every stripe holds at least minStripeBytes. Small
// shards (e.g. tests with double-digit capacities) get one stripe and
// behave exactly like the old single-LRU store.
func pickStripes(capacity int64) int {
	n := defaultStripes
	for n > 1 && capacity/int64(n) < minStripeBytes {
		n /= 2
	}
	return n
}

// newStore builds the striped LRU. stripes <= 0 selects automatically;
// an explicit count is rounded down to a power of two.
func newStore(capacity int64, stripes int) *store {
	if stripes <= 0 {
		stripes = pickStripes(capacity)
	}
	for stripes&(stripes-1) != 0 {
		stripes &= stripes - 1 // round down to a power of two
	}
	st := &store{mask: uint64(stripes - 1)}
	per := capacity / int64(stripes)
	rem := capacity % int64(stripes)
	for i := 0; i < stripes; i++ {
		c := per
		if int64(i) < rem {
			c++
		}
		st.stripes = append(st.stripes, &stripe{
			capacity: c,
			items:    make(map[string]*entry),
		})
	}
	return st
}

// stripeFor hashes a key (as raw bytes, no allocation) to its stripe.
func (st *store) stripeFor(key []byte) *stripe {
	return st.stripes[maphash.Bytes(stripeSeed, key)&st.mask]
}

// get looks a key up and promotes it. The returned value slice is
// immutable (overwrites install a fresh slice), so callers may read it
// after the stripe lock is released.
func (st *store) get(key []byte) ([]byte, bool) {
	sp := st.stripeFor(key)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	e, ok := sp.items[string(key)] // map lookup: no string allocation
	if !ok {
		sp.misses++
		return nil, false
	}
	sp.hits++
	sp.moveToFront(e)
	return e.val, true
}

// put inserts or replaces a value, evicting LRU entries of its stripe to
// fit. Values larger than the stripe budget (shard capacity / stripe
// count, not the full shard capacity) can never be admitted and yield
// statusTooLarge; the refusal is counted in Stats.TooLarge so callers
// that drop Put errors can still observe the degradation.
func (st *store) put(key []byte, val []byte) byte {
	sp := st.stripeFor(key)
	size := int64(len(val))
	if size > sp.capacity {
		sp.mu.Lock()
		sp.tooLarge++
		sp.mu.Unlock()
		return statusTooLarge
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if e, ok := sp.items[string(key)]; ok {
		sp.used += size - int64(len(e.val))
		e.val = val
		sp.moveToFront(e)
	} else {
		e := &entry{key: string(key), val: val}
		sp.items[e.key] = e
		sp.pushFront(e)
		sp.used += size
	}
	for sp.used > sp.capacity && sp.tail != nil {
		sp.evict(sp.tail)
	}
	return statusOK
}

func (st *store) delete(key []byte) {
	sp := st.stripeFor(key)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if e, ok := sp.items[string(key)]; ok {
		sp.remove(e)
		delete(sp.items, e.key)
		sp.used -= int64(len(e.val))
	}
}

// stats aggregates the counters across stripes.
func (st *store) stats() Stats {
	var total Stats
	for _, sp := range st.stripes {
		sp.mu.Lock()
		total.Items += len(sp.items)
		total.UsedBytes += sp.used
		total.Hits += sp.hits
		total.Misses += sp.misses
		total.Evictions += sp.evictions
		total.TooLarge += sp.tooLarge
		sp.mu.Unlock()
	}
	total.ShedDeadline, total.ShedQuota, total.ShedQueue = st.adm.sheds()
	return total
}

func (sp *stripe) evict(e *entry) {
	sp.remove(e)
	delete(sp.items, e.key)
	sp.used -= int64(len(e.val))
	sp.evictions++
}

// Intrusive doubly-linked LRU list, one per stripe.
func (sp *stripe) pushFront(e *entry) {
	e.prev = nil
	e.next = sp.head
	if sp.head != nil {
		sp.head.prev = e
	}
	sp.head = e
	if sp.tail == nil {
		sp.tail = e
	}
}

func (sp *stripe) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sp.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sp.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sp *stripe) moveToFront(e *entry) {
	if sp.head == e {
		return
	}
	sp.remove(e)
	sp.pushFront(e)
}

// ---- protocol handlers ----
//
// Both handlers live on the store (not the Server) so the fuzzers can
// drive them over in-memory readers without a TCP listener.

// handleV1 serves one v1 request whose op byte has already been
// consumed. Responses are buffered in w; the serve loop flushes when no
// further request bytes are pending. The admission gates apply to the
// data ops (v1 has no deadline extension, so only the quota and queue
// gates can fire); Stats is exempt so monitoring survives overload.
func (st *store) handleV1(op byte, r *bufio.Reader, w *bufio.Writer, q *connQuota) error {
	key, val, err := readKV(r)
	if err != nil {
		return err
	}
	defer putBuf(key)
	if op == opStats {
		writeStats(w, st.stats())
		return nil
	}
	if st.adm != nil {
		if v := st.adm.admit(q, time.Time{}, time.Now()); v != admitOK {
			writeResponse(w, statusRetryLater, nil)
			return nil
		}
		defer st.adm.release()
	}
	switch st.applyFault(op) {
	case faultDrop:
		return errFrame // sever: the crashed-shard failure mode
	case faultErr:
		writeResponse(w, statusError, nil)
		return nil
	}
	switch op {
	case opGet:
		if v, ok := st.get(key.b); ok {
			writeResponse(w, statusOK, v)
		} else {
			writeResponse(w, statusNotFound, nil)
		}
	case opPut:
		writeResponse(w, st.put(key.b, val), nil)
	case opDelete:
		st.delete(key.b)
		writeResponse(w, statusOK, nil)
	default:
		writeResponse(w, statusError, nil)
	}
	return nil
}

// handleV2 serves one v2 request whose magic byte has already been
// consumed. magic selects the frame extension: 0xA3 carries the
// client's remaining deadline budget, 0xA4 a trace context (the span
// recorded for a traced request lands on track tid, stamped with the
// originating rank/iter).
//
// v2 request frame (big-endian lengths):
//
//	magic(1)=0xA2 op(1) reqID(u32) body
//	magic(1)=0xA3 op(1) reqID(u32) budgetMicros(u32) body
//	magic(1)=0xA4 op(1) reqID(u32) traceCtx(u64) body
//	  single ops : keyLen(u32) key valLen(u32) val
//	  opMultiGet : count(u32) { keyLen(u32) key }*
//	  opMultiPut : count(u32) { keyLen(u32) key valLen(u32) val }*
//
// v2 response frame:
//
//	op(1) reqID(u32) status(1) body
//	  single ops : valLen(u32) val
//	  opMultiGet : count(u32) { status(1) valLen(u32) val }*
//	  opMultiPut : count(u32) { status(1) }*
//
// A shed request (statusRetryLater) answers batch ops with count 0: the
// server drained the request body to preserve framing but did none of
// the work.
func (st *store) handleV2(r *bufio.Reader, w *bufio.Writer, q *connQuota, magic byte, tid int64) error {
	op, err := r.ReadByte()
	if err != nil {
		return err
	}
	id, err := readU32(r)
	if err != nil {
		return err
	}
	var expiry time.Time
	switch magic {
	case frameV2DeadlineMagic:
		budget, err := readU32(r)
		if err != nil {
			return err
		}
		if budget > 0 {
			expiry = time.Now().Add(time.Duration(budget) * time.Microsecond)
		}
	case frameV2TraceMagic:
		raw, err := readU64(r)
		if err != nil {
			return err
		}
		if tctx := obs.TraceCtx(raw); tctx.Valid() && st.trace != nil {
			start := time.Now()
			defer func() {
				st.trace.SpanArgs(opTraceName(op), "kv", tid, start, time.Since(start),
					"rank", int64(tctx.Rank()), "iter", tctx.Iter())
			}()
		}
	}
	switch op {
	case opGet, opPut, opDelete, opStats:
		if st.adm != nil && op != opStats {
			if v := st.adm.admit(q, expiry, time.Now()); v != admitOK {
				// Drain the body without materializing the value, then
				// answer with the cheap shed status.
				if err := drainChunk(r, maxKeyLen); err != nil {
					return err
				}
				if err := drainChunk(r, maxValLen); err != nil {
					return err
				}
				writeV2Response(w, op, id, statusRetryLater, nil)
				return nil
			}
			defer st.adm.release()
		}
		key, val, err := readKV(r)
		if err != nil {
			return err
		}
		defer putBuf(key)
		if op == opStats {
			s := st.stats()
			buf := getBuf(statsWireLen)
			encodeStats(buf.b, s)
			writeV2Response(w, op, id, statusOK, buf.b)
			putBuf(buf)
			return nil
		}
		switch st.applyFault(op) {
		case faultDrop:
			return errFrame // sever: the crashed-shard failure mode
		case faultErr:
			writeV2Response(w, op, id, statusError, nil)
			return nil
		}
		switch op {
		case opGet:
			if v, ok := st.get(key.b); ok {
				writeV2Response(w, op, id, statusOK, v)
			} else {
				writeV2Response(w, op, id, statusNotFound, nil)
			}
		case opPut:
			writeV2Response(w, op, id, st.put(key.b, val), nil)
		case opDelete:
			st.delete(key.b)
			writeV2Response(w, op, id, statusOK, nil)
		}
		return nil
	case opMultiGet:
		count, err := readLen(r, maxBatchLen)
		if err != nil {
			return err
		}
		if st.adm != nil {
			if v := st.adm.admit(q, expiry, time.Now()); v != admitOK {
				// Drain the batch body cheaply, then answer with an
				// empty shed response.
				for i := uint32(0); i < count; i++ {
					if err := drainChunk(r, maxKeyLen); err != nil {
						return err
					}
				}
				writeV2Shed(w, op, id)
				return nil
			}
			defer st.adm.release()
		}
		switch st.applyFault(op) {
		case faultDrop:
			return errFrame // sever: the crashed-shard failure mode
		case faultErr:
			// Drain the batch body to preserve framing, then answer with
			// an empty error response (count 0, like a shed).
			for i := uint32(0); i < count; i++ {
				if err := drainChunk(r, maxKeyLen); err != nil {
					return err
				}
			}
			writeV2Empty(w, op, id, statusError)
			return nil
		}
		// Stream the response while decoding: each key is looked up and
		// its entry written as soon as it is read, so the batch needs no
		// materialized request and only one key buffer of scratch.
		_ = w.WriteByte(op)
		writeU32(w, id)
		_ = w.WriteByte(statusOK)
		writeU32(w, count)
		for i := uint32(0); i < count; i++ {
			key, err := readChunk(r, maxKeyLen)
			if err != nil {
				return err
			}
			if v, ok := st.get(key.b); ok {
				_ = w.WriteByte(statusOK)
				writeU32(w, uint32(len(v)))
				_, _ = w.Write(v)
			} else {
				_ = w.WriteByte(statusNotFound)
				writeU32(w, 0)
			}
			putBuf(key)
		}
		return nil
	case opMultiPut:
		count, err := readLen(r, maxBatchLen)
		if err != nil {
			return err
		}
		shed := false
		if st.adm != nil {
			if v := st.adm.admit(q, expiry, time.Now()); v != admitOK {
				shed = true
			} else {
				defer st.adm.release()
			}
		}
		if shed {
			for i := uint32(0); i < count; i++ {
				if err := drainChunk(r, maxKeyLen); err != nil {
					return err
				}
				if err := drainChunk(r, maxValLen); err != nil {
					return err
				}
			}
			writeV2Shed(w, op, id)
			return nil
		}
		switch st.applyFault(op) {
		case faultDrop:
			return errFrame // sever: the crashed-shard failure mode
		case faultErr:
			for i := uint32(0); i < count; i++ {
				if err := drainChunk(r, maxKeyLen); err != nil {
					return err
				}
				if err := drainChunk(r, maxValLen); err != nil {
					return err
				}
			}
			writeV2Empty(w, op, id, statusError)
			return nil
		}
		statuses := getBuf(int(count))
		defer putBuf(statuses)
		for i := uint32(0); i < count; i++ {
			key, val, err := readKV(r)
			if err != nil {
				return err
			}
			statuses.b[i] = st.put(key.b, val)
			putBuf(key)
		}
		_ = w.WriteByte(op)
		writeU32(w, id)
		_ = w.WriteByte(statusOK)
		writeU32(w, count)
		_, _ = w.Write(statuses.b)
		return nil
	default:
		// Unknown op: the frame boundary is lost, drop the connection.
		return errFrame
	}
}

// opTraceName maps a wire op to the constant span name recorded for a
// traced (0xA4) request. Constants, so recording stays allocation-free.
func opTraceName(op byte) string {
	switch op {
	case opGet:
		return "kv.get"
	case opPut:
		return "kv.put"
	case opDelete:
		return "kv.delete"
	case opMultiGet:
		return "kv.multiget"
	case opMultiPut:
		return "kv.multiput"
	default:
		return "kv.op"
	}
}

// writeV2Shed writes the zero-count batch response of a shed batch op.
func writeV2Shed(w *bufio.Writer, op byte, id uint32) {
	writeV2Empty(w, op, id, statusRetryLater)
}

// writeV2Empty writes a zero-count batch response carrying only a
// status — the frame of a shed (statusRetryLater) or fault-injected
// (statusError) batch op: the request body was drained to preserve
// framing, but none of the work was done.
func writeV2Empty(w *bufio.Writer, op byte, id uint32, status byte) {
	_ = w.WriteByte(op)
	writeU32(w, id)
	_ = w.WriteByte(status)
	writeU32(w, 0)
}

// drainChunk consumes one length-prefixed blob without materializing
// it — the cheap path shed requests take through their body.
func drainChunk(r *bufio.Reader, max uint32) error {
	n, err := readLen(r, max)
	if err != nil {
		return err
	}
	_, err = r.Discard(int(n))
	return err
}

// readChunk reads one length-prefixed blob into a pooled buffer.
func readChunk(r *bufio.Reader, max uint32) (*pbuf, error) {
	n, err := readLen(r, max)
	if err != nil {
		return nil, err
	}
	buf := getBuf(int(n))
	if _, err := io.ReadFull(r, buf.b); err != nil {
		putBuf(buf)
		return nil, err
	}
	return buf, nil
}

// readKV reads the key+value body shared by every single-op request.
// The key comes from the buffer pool (caller returns it via putBuf); the
// value is heap-allocated because Put hands it to the store for keeps.
func readKV(r *bufio.Reader) (key *pbuf, val []byte, err error) {
	key, err = readChunk(r, maxKeyLen)
	if err != nil {
		return nil, nil, err
	}
	valLen, err := readLen(r, maxValLen)
	if err != nil {
		putBuf(key)
		return nil, nil, err
	}
	val = make([]byte, valLen)
	if _, err := io.ReadFull(r, val); err != nil {
		putBuf(key)
		return nil, nil, err
	}
	return key, val, nil
}

func encodeStats(buf []byte, s Stats) {
	binary.BigEndian.PutUint64(buf[0:], uint64(s.Items))
	binary.BigEndian.PutUint64(buf[8:], uint64(s.UsedBytes))
	binary.BigEndian.PutUint64(buf[16:], s.Hits)
	binary.BigEndian.PutUint64(buf[24:], s.Misses)
	binary.BigEndian.PutUint64(buf[32:], s.Evictions)
	binary.BigEndian.PutUint64(buf[40:], s.TooLarge)
	binary.BigEndian.PutUint64(buf[48:], s.ShedDeadline)
	binary.BigEndian.PutUint64(buf[56:], s.ShedQuota)
	binary.BigEndian.PutUint64(buf[64:], s.ShedQueue)
}

func writeStats(w *bufio.Writer, s Stats) {
	buf := getBuf(statsWireLen)
	encodeStats(buf.b, s)
	writeResponse(w, statusOK, buf.b)
	putBuf(buf)
}

func writeResponse(w *bufio.Writer, status byte, val []byte) {
	// bufio.Writer errors are sticky; the caller's Flush surfaces the
	// first one and drops the connection.
	_ = w.WriteByte(status)
	writeU32(w, uint32(len(val)))
	_, _ = w.Write(val)
}

func writeV2Response(w *bufio.Writer, op byte, id uint32, status byte, val []byte) {
	_ = w.WriteByte(op)
	writeU32(w, id)
	_ = w.WriteByte(status)
	writeU32(w, uint32(len(val)))
	_, _ = w.Write(val)
}
