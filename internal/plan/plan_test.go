package plan

import (
	"bytes"
	"strings"
	"testing"
)

func samplePlan(iters int) *Plan {
	p := &Plan{
		Version:            Version,
		Strategy:           "lobster",
		Dataset:            "imagenet-1k",
		Model:              "resnet50",
		Nodes:              2,
		GPUsPerNode:        3,
		IterationsPerEpoch: 4,
		Seed:               42,
	}
	for h := 0; h < iters; h++ {
		it := Iteration{
			Epoch:          h / 4,
			Iter:           h % 4,
			PredictedBatch: 0.05,
		}
		for n := 0; n < 2; n++ {
			it.Threads = append(it.Threads, NodeThreads{
				Preproc: 4 + h%2,
				Loading: []int{1 + h%3, 2, 1},
			})
		}
		p.Iterations = append(p.Iterations, it)
	}
	return p
}

func TestValidateGood(t *testing.T) {
	if err := samplePlan(8).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutate := []func(*Plan){
		func(p *Plan) { p.Version = 99 },
		func(p *Plan) { p.Nodes = 0 },
		func(p *Plan) { p.IterationsPerEpoch = 0 },
		func(p *Plan) { p.Iterations = nil },
		func(p *Plan) { p.Iterations[0].Threads = p.Iterations[0].Threads[:1] },
		func(p *Plan) { p.Iterations[0].Threads[0].Preproc = 0 },
		func(p *Plan) { p.Iterations[0].Threads[0].Loading = []int{1} },
		func(p *Plan) { p.Iterations[0].Threads[0].Loading[2] = 0 },
	}
	for i, m := range mutate {
		p := samplePlan(8)
		m(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNodeThreadsTotal(t *testing.T) {
	th := NodeThreads{Preproc: 4, Loading: []int{1, 2, 3}}
	if got := th.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
}

func TestThreadsAtWithinPlan(t *testing.T) {
	p := samplePlan(8)
	for h := 0; h < 8; h++ {
		got := p.ThreadsAt(h)
		want := p.Iterations[h].Threads
		if &got[0] != &want[0] {
			t.Fatalf("ThreadsAt(%d) did not return the planned entry", h)
		}
	}
}

func TestThreadsAtWrapsLastEpoch(t *testing.T) {
	p := samplePlan(8) // 2 epochs of 4
	// Beyond the plan: wraps within the final planned epoch [4, 8).
	for h := 8; h < 20; h++ {
		got := p.ThreadsAt(h)
		want := p.Iterations[4+(h-4)%4].Threads
		if &got[0] != &want[0] {
			t.Fatalf("ThreadsAt(%d) wrapped wrong", h)
		}
	}
}

func TestThreadsAtShortPlan(t *testing.T) {
	p := samplePlan(2) // shorter than one epoch
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for h := 2; h < 6; h++ {
		got := p.ThreadsAt(h)
		want := p.Iterations[h%2].Threads
		if &got[0] != &want[0] {
			t.Fatalf("short-plan wrap wrong at %d", h)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePlan(8)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"strategy": "lobster"`) {
		t.Fatalf("JSON missing fields:\n%s", buf.String())
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Strategy != p.Strategy || q.Seed != p.Seed || len(q.Iterations) != 8 {
		t.Fatalf("round trip lost data: %+v", q)
	}
	if q.Iterations[3].Threads[1].Loading[0] != p.Iterations[3].Threads[1].Loading[0] {
		t.Fatal("nested thread counts lost")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(strings.NewReader("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Decode(strings.NewReader(`{"version":1,"unknown_field":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Decode(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("invalid plan accepted")
	}
}
