package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func testServer(t *testing.T, capacity int64) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func testClient(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := NewClient(s.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestPutGetDelete(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClient(t, s)

	if _, found, err := c.Get("missing"); err != nil || found {
		t.Fatalf("Get(missing) = %v, %v", found, err)
	}
	if err := c.Put("k1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("k1")
	if err != nil || !found || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Get(k1) = %q, %v, %v", v, found, err)
	}
	if err := c.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.Get("k1"); found {
		t.Fatal("deleted key still present")
	}
	if err := c.Delete("k1"); err != nil {
		t.Fatal("delete of absent key must be a no-op")
	}
}

func TestOverwrite(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClient(t, s)
	c.Put("k", []byte("one"))
	c.Put("k", []byte("twotwo"))
	v, found, _ := c.Get("k")
	if !found || string(v) != "twotwo" {
		t.Fatalf("overwrite lost: %q", v)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != 1 || st.UsedBytes != 6 {
		t.Fatalf("stats after overwrite: %+v", st)
	}
}

func TestLRUEvictionUnderCapacity(t *testing.T) {
	s := testServer(t, 100)
	c := testClient(t, s)
	val := make([]byte, 40)
	c.Put("a", val)
	c.Put("b", val)
	// Touch "a" so "b" is LRU.
	c.Get("a")
	c.Put("c", val) // 120 bytes > 100: evicts "b"
	if _, found, _ := c.Get("b"); found {
		t.Fatal("LRU victim b still present")
	}
	for _, k := range []string{"a", "c"} {
		if _, found, _ := c.Get(k); !found {
			t.Fatalf("%s wrongly evicted", k)
		}
	}
	st, _ := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.UsedBytes > 100 {
		t.Fatalf("used %d > capacity", st.UsedBytes)
	}
}

func TestOversizedValueRefused(t *testing.T) {
	s := testServer(t, 10)
	c := testClient(t, s)
	err := c.Put("big", make([]byte, 100))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Put(oversized) = %v, want ErrTooLarge", err)
	}
	if _, found, _ := c.Get("big"); found {
		t.Fatal("oversized value stored")
	}
	// The connection must survive the refusal.
	if err := c.Put("small", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	s := testServer(t, 1<<10)
	c := testClient(t, s)
	if err := c.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("empty")
	if err != nil || !found || len(v) != 0 {
		t.Fatalf("empty value round trip: %v %v %v", v, found, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := testServer(t, 10<<20)
	c := testClient(t, s)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				want := []byte(fmt.Sprintf("v-%d-%d", g, i))
				if err := c.Put(key, want); err != nil {
					errs <- err
					return
				}
				got, found, err := c.Get(key)
				if err != nil || !found || !bytes.Equal(got, want) {
					errs <- fmt.Errorf("get %s = %q %v %v", key, got, found, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, _ := c.Stats()
	if st.Items != 400 {
		t.Fatalf("items = %d, want 400", st.Items)
	}
}

func TestClusterSharding(t *testing.T) {
	var addrs []string
	var servers []*Server
	for i := 0; i < 3; i++ {
		s := testServer(t, 1<<20)
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	cluster, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Shards() != 3 {
		t.Fatalf("shards = %d", cluster.Shards())
	}
	const n = 120
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("sample-%d", i)
		if err := cluster.Put(key, []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("sample-%d", i)
		v, found, err := cluster.Get(key)
		if err != nil || !found || string(v) != key {
			t.Fatalf("cluster get %s: %q %v %v", key, v, found, err)
		}
	}
	// Keys must actually spread across shards.
	spread := 0
	for _, s := range servers {
		if s.Stats().Items > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("keys on %d/3 shards; hashing not spreading", spread)
	}
	st, err := cluster.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != n {
		t.Fatalf("cluster items = %d, want %d", st.Items, n)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 1); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster([]string{"127.0.0.1:1"}, 1); err == nil {
		t.Fatal("unreachable shard accepted")
	}
}

func TestClientReconnects(t *testing.T) {
	s := testServer(t, 1<<20)
	c := testClient(t, s)
	c.Put("k", []byte("v"))
	// Kill the client's pooled connections behind its back by closing and
	// restarting... we cannot restart on the same port reliably, so
	// instead verify that a server-side connection drop is healed: close
	// all server-side conns via Close+reopen is overkill. Exercise the
	// retry path by closing the client's own sockets.
	c.mu.Lock()
	for _, cc := range c.all {
		cc.c.Close()
	}
	c.mu.Unlock()
	v, found, err := c.Get("k")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("client did not recover from dropped connection: %v %v %v", v, found, err)
	}
}
