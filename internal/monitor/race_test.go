package monitor

import (
	"net/http"
	"sync"
	"testing"
)

// TestServerMultiWriterRace publishes snapshots from several goroutines
// while all three endpoints are scraped concurrently — the monitor's
// RWMutex and the atomic update counter under full contention. The
// per-node progress callbacks of a multi-node runtime produce exactly
// this pattern.
func TestServerMultiWriterRace(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	const writers, updates = 4, 50
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < updates; i++ {
				s.Update(map[string]int{"writer": w, "i": i})
			}
		}()
	}
	for _, path := range []string{"/metrics.json", "/healthz", "/", "/metrics.json"} {
		path := path
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get("http://" + s.Addr() + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				_ = resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if got := s.Updates(); got != writers*updates {
		t.Fatalf("updates = %d, want %d", got, writers*updates)
	}
}
