package pipeline

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/loader"
)

// testConfig builds a small single-node run: 8 GPUs, cache at 30% of the
// dataset (the paper's ImageNet-1K ratio).
func testConfig(t testing.TB, spec loader.Spec, epochs int) Config {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{
		Name: "test-1k", NumSamples: 6000, MeanSize: 105 << 10, SigmaLog: 0.45,
		MinSize: 4 << 10, MaxSize: 1 << 20, Classes: 10, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := cluster.ThetaGPULike(1, ds.TotalBytes()*30/100)
	model, err := cluster.ModelByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topology: top,
		Model:    model,
		Dataset:  ds,
		Epochs:   epochs,
		Seed:     7,
		Strategy: spec,
	}
}

func TestRunValidation(t *testing.T) {
	cfg := testConfig(t, loader.PyTorch(8, 24), 1)
	bad := cfg
	bad.Dataset = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil dataset accepted")
	}
	bad = cfg
	bad.Epochs = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero epochs accepted")
	}
	bad = cfg
	bad.Topology.Nodes = 0
	if _, err := Run(bad); err == nil {
		t.Error("invalid topology accepted")
	}
	bad = cfg
	bad.Strategy.Mode = loader.ThreadsStatic
	bad.Strategy.LoadingPerGPU = 0
	if _, err := Run(bad); err == nil {
		t.Error("invalid strategy accepted")
	}
}

func TestRunBasicInvariants(t *testing.T) {
	res, err := Run(testConfig(t, loader.PyTorch(8, 24), 2))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.TotalTime <= 0 {
		t.Fatal("non-positive total time")
	}
	if m.Iterations != 2*res.IterationsPerEpoch {
		t.Fatalf("iterations = %d, want %d", m.Iterations, 2*res.IterationsPerEpoch)
	}
	// Every sample access is either a hit or a miss; misses split into
	// remote hits and PFS fetches.
	accesses := uint64(m.Iterations) * uint64(8*32)
	if m.CacheHits+m.CacheMisses != accesses {
		t.Fatalf("hits %d + misses %d != accesses %d", m.CacheHits, m.CacheMisses, accesses)
	}
	if m.RemoteHits+m.PFSFetches != m.CacheMisses {
		t.Fatalf("remote %d + pfs %d != misses %d", m.RemoteHits, m.PFSFetches, m.CacheMisses)
	}
	// Single node: there are no peers, so every miss goes to the PFS.
	if m.RemoteHits != 0 {
		t.Fatalf("single node recorded %d remote hits", m.RemoteHits)
	}
	u := m.GPUUtilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %g outside (0,1]", u)
	}
	if m.BatchTimes.N() != m.Iterations {
		t.Fatalf("batch time samples %d != iterations %d", m.BatchTimes.N(), m.Iterations)
	}
	// Wall time can never beat perfect overlap (= sum of mean batch
	// compute), nor the pure compute lower bound.
	lower := m.TrainTimeTotal / float64(8)
	if m.TotalTime < lower*0.99 {
		t.Fatalf("total %g below compute lower bound %g", m.TotalTime, lower)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(testConfig(t, loader.Lobster(), 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(t, loader.Lobster(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.TotalTime != b.Metrics.TotalTime {
		t.Fatalf("non-deterministic: %g vs %g", a.Metrics.TotalTime, b.Metrics.TotalTime)
	}
	if a.Metrics.CacheHits != b.Metrics.CacheHits {
		t.Fatalf("non-deterministic hits: %d vs %d", a.Metrics.CacheHits, b.Metrics.CacheHits)
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := testConfig(t, loader.DALI(24), 1)
	cfg.CollectTrace = true
	cfg.MaxTraceIters = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 10 {
		t.Fatalf("trace length %d, want 10 (capped)", len(res.Trace))
	}
	for _, rec := range res.Trace {
		if len(rec.PerGPU) != 8 {
			t.Fatalf("trace row has %d GPUs", len(rec.PerGPU))
		}
		if rec.BatchTime <= 0 {
			t.Fatal("non-positive batch time in trace")
		}
		for _, g := range rec.PerGPU {
			if g.Train <= 0 || g.Load < 0 || g.Preproc < 0 || g.Stall < 0 || g.Idle < 0 {
				t.Fatalf("negative component in %+v", g)
			}
			// Stall + train never exceeds the batch time.
			if g.Stall+g.Train > rec.BatchTime*1.0001 {
				t.Fatalf("stall %g + train %g > batch %g", g.Stall, g.Train, rec.BatchTime)
			}
		}
	}
}

func TestSharedPoolTimes(t *testing.T) {
	out := make([]float64, 3)
	sharedPoolTimes([]float64{1, 1, 1}, out, make([]poolQueue, 3))
	for _, v := range out {
		if math.Abs(v-3) > 1e-9 {
			t.Fatalf("equal works: %v, want all 3", out)
		}
	}
	// One short and one long queue: short finishes at 2*w_short (two
	// active sharers), long finishes when all pool-seconds are served.
	out = out[:2]
	sharedPoolTimes([]float64{1, 4}, out, make([]poolQueue, 2))
	if math.Abs(out[0]-2) > 1e-9 {
		t.Fatalf("short queue finished at %g, want 2", out[0])
	}
	if math.Abs(out[1]-5) > 1e-9 {
		t.Fatalf("long queue finished at %g, want 5 (total pool-seconds)", out[1])
	}
	// Zero work completes immediately.
	sharedPoolTimes([]float64{0, 2}, out, make([]poolQueue, 2))
	if out[0] != 0 || math.Abs(out[1]-2) > 1e-9 {
		t.Fatalf("zero-work case: %v", out)
	}
}

func TestPrefetchingStrategiesFetchAhead(t *testing.T) {
	demand, err := Run(testConfig(t, loader.PyTorch(8, 24), 2))
	if err != nil {
		t.Fatal(err)
	}
	pref, err := Run(testConfig(t, loader.NoPFS(8, 24), 2))
	if err != nil {
		t.Fatal(err)
	}
	if demand.Metrics.PrefetchedBytes != 0 {
		t.Fatal("demand-only strategy prefetched")
	}
	if pref.Metrics.PrefetchedBytes == 0 {
		t.Fatal("NoPFS did not prefetch")
	}
	if pref.Metrics.HitRatio() <= demand.Metrics.HitRatio() {
		t.Fatalf("prefetching did not raise hit ratio: %g vs %g",
			pref.Metrics.HitRatio(), demand.Metrics.HitRatio())
	}
}

func TestJitterDisabled(t *testing.T) {
	cfg := testConfig(t, loader.PyTorch(8, 24), 1)
	cfg.TrainJitter = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With zero jitter, total training time is exactly iters*gpus*IterTime.
	want := float64(res.Metrics.Iterations) * 8 * cfg.Model.IterTime
	if math.Abs(res.Metrics.TrainTimeTotal-want) > 1e-6*want {
		t.Fatalf("train total %g, want %g", res.Metrics.TrainTimeTotal, want)
	}
}
