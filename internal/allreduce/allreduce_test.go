package allreduce

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// runRound executes one collective across all ranks and returns each
// rank's resulting slice.
func runRound(t *testing.T, r *Ring, grads [][]float64, average bool) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(grads))
	for rank := range grads {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			if average {
				errs[rank] = r.Average(rank, grads[rank])
			} else {
				errs[rank] = r.Reduce(rank, grads[rank])
			}
		}()
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("world 0 accepted")
	}
	r, err := NewRing(4)
	if err != nil || r.World() != 4 {
		t.Fatalf("NewRing: %v", err)
	}
}

func TestReduceSumsAcrossRanks(t *testing.T) {
	const world, n = 4, 10
	r, err := NewRing(world)
	if err != nil {
		t.Fatal(err)
	}
	grads := make([][]float64, world)
	want := make([]float64, n)
	for rank := range grads {
		grads[rank] = make([]float64, n)
		for i := range grads[rank] {
			grads[rank][i] = float64(rank*100 + i)
			want[i] += grads[rank][i]
		}
	}
	runRound(t, r, grads, false)
	for rank := range grads {
		for i := range want {
			if math.Abs(grads[rank][i]-want[i]) > 1e-9 {
				t.Fatalf("rank %d element %d = %g, want %g", rank, i, grads[rank][i], want[i])
			}
		}
	}
}

func TestAverageDividesByWorld(t *testing.T) {
	const world = 3
	r, _ := NewRing(world)
	grads := [][]float64{{3, 6}, {3, 6}, {3, 6}}
	runRound(t, r, grads, true)
	for rank := range grads {
		if grads[rank][0] != 3 || grads[rank][1] != 6 {
			t.Fatalf("rank %d average = %v, want [3 6]", rank, grads[rank])
		}
	}
}

func TestSingleRankNoop(t *testing.T) {
	r, _ := NewRing(1)
	g := []float64{1, 2, 3}
	if err := r.Reduce(0, g); err != nil {
		t.Fatal(err)
	}
	if g[0] != 1 || g[2] != 3 {
		t.Fatal("single-rank reduce modified data")
	}
}

func TestRankValidation(t *testing.T) {
	r, _ := NewRing(2)
	if err := r.Reduce(2, []float64{1}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if err := r.Reduce(-1, []float64{1}); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestRepeatedRounds(t *testing.T) {
	// The group must be reusable: 20 consecutive collectives with
	// changing data.
	const world, n = 3, 7
	r, _ := NewRing(world)
	for round := 0; round < 20; round++ {
		grads := make([][]float64, world)
		want := make([]float64, n)
		for rank := range grads {
			grads[rank] = make([]float64, n)
			for i := range grads[rank] {
				grads[rank][i] = float64(round + rank + i)
				want[i] += grads[rank][i]
			}
		}
		runRound(t, r, grads, false)
		for rank := range grads {
			for i := range want {
				if grads[rank][i] != want[i] {
					t.Fatalf("round %d rank %d: %v, want %v", round, rank, grads[rank], want)
				}
			}
		}
	}
}

func TestUnevenChunks(t *testing.T) {
	// Gradient length not divisible by world: chunking must still cover
	// every element exactly once.
	for _, n := range []int{1, 2, 5, 13} {
		for _, world := range []int{2, 3, 4, 7} {
			r, _ := NewRing(world)
			grads := make([][]float64, world)
			want := make([]float64, n)
			for rank := range grads {
				grads[rank] = make([]float64, n)
				for i := range grads[rank] {
					grads[rank][i] = float64((rank + 1) * (i + 2))
					want[i] += grads[rank][i]
				}
			}
			runRound(t, r, grads, false)
			for rank := range grads {
				for i := range want {
					if math.Abs(grads[rank][i]-want[i]) > 1e-9 {
						t.Fatalf("n=%d world=%d rank %d element %d: %g, want %g",
							n, world, rank, i, grads[rank][i], want[i])
					}
				}
			}
		}
	}
}

func TestReducePropertyRandom(t *testing.T) {
	f := func(seed uint64, worldRaw, nRaw uint8) bool {
		world := int(worldRaw%6) + 1
		n := int(nRaw%32) + 1
		r, err := NewRing(world)
		if err != nil {
			return false
		}
		rng := stats.NewRNG(seed)
		grads := make([][]float64, world)
		want := make([]float64, n)
		for rank := range grads {
			grads[rank] = make([]float64, n)
			for i := range grads[rank] {
				grads[rank][i] = rng.Float64()*200 - 100
				want[i] += grads[rank][i]
			}
		}
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for rank := range grads {
			rank := rank
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := r.Reduce(rank, grads[rank]); err != nil {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if !ok {
			return false
		}
		for rank := range grads {
			for i := range want {
				if math.Abs(grads[rank][i]-want[i]) > 1e-6*(math.Abs(want[i])+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
