package lint

import "testing"

func TestBoundedChan(t *testing.T) {
	runFixtures(t, BoundedChan, []fixtureTest{
		{
			name: "unbuffered data channel flagged",
			pkg:  "repro/internal/runtime",
			src: `package runtime
func queue() chan int {
	return make(chan int)
}
`,
			want: 1,
			grep: "unbuffered channel of int",
		},
		{
			name: "explicit zero capacity flagged",
			pkg:  "repro/internal/preproc",
			src: `package preproc
const depth = 0
type job struct{ id int }
func queue() chan job {
	return make(chan job, depth)
}
`,
			want: 1,
		},
		{
			name: "buffered channel passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
func queue() chan int {
	return make(chan int, 1024)
}
`,
			want: 0,
		},
		{
			name: "runtime-sized capacity passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
func queue(depth int) chan int {
	return make(chan int, depth)
}
`,
			want: 0,
		},
		{
			name: "signal channel passes",
			pkg:  "repro/internal/runtime",
			src: `package runtime
func done() chan struct{} {
	return make(chan struct{})
}
`,
			want: 0,
		},
		{
			name: "out-of-scope package passes",
			pkg:  "repro/internal/experiments",
			src: `package experiments
func queue() chan int {
	return make(chan int)
}
`,
			want: 0,
		},
		{
			name: "allow directive suppresses",
			pkg:  "repro/internal/runtime",
			src: `package runtime
func handshake() chan int {
	//lint:allow boundedchan rendezvous handoff is the protocol here
	return make(chan int)
}
`,
			want: 0,
		},
	})
}
