package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
)

// Client is a pooled connection to one shard. Safe for concurrent use:
// requests are one round trip each, multiplexed over a small connection
// pool.
type Client struct {
	addr string
	pool chan *clientConn
	mu   sync.Mutex
	all  []*clientConn
}

type clientConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// NewClient connects to a shard with the given pool size.
func NewClient(addr string, poolSize int) (*Client, error) {
	if poolSize < 1 {
		poolSize = 1
	}
	cl := &Client{addr: addr, pool: make(chan *clientConn, poolSize)}
	for i := 0; i < poolSize; i++ {
		cc, err := cl.dial()
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.pool <- cc
	}
	return cl, nil
}

func (cl *Client) dial() (*clientConn, error) {
	c, err := net.Dial("tcp", cl.addr)
	if err != nil {
		return nil, fmt.Errorf("kvstore: dial %s: %w", cl.addr, err)
	}
	cc := &clientConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	cl.mu.Lock()
	cl.all = append(cl.all, cc)
	cl.mu.Unlock()
	return cc, nil
}

// Close closes all pooled connections.
func (cl *Client) Close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, cc := range cl.all {
		_ = cc.c.Close() // best-effort teardown of pooled connections
	}
	cl.all = nil
}

// roundTrip runs one request. A broken connection is replaced once.
func (cl *Client) roundTrip(op byte, key string, val []byte) (byte, []byte, error) {
	cc := <-cl.pool
	status, out, err := cc.do(op, key, val)
	if err != nil {
		_ = cc.c.Close() // broken connection; the round-trip error is what matters
		if cc2, derr := cl.dial(); derr == nil {
			status, out, err = cc2.do(op, key, val)
			cc = cc2
		}
	}
	cl.pool <- cc
	return status, out, err
}

func (cc *clientConn) do(op byte, key string, val []byte) (byte, []byte, error) {
	// bufio.Writer errors are sticky; the Flush below surfaces the first.
	_ = cc.w.WriteByte(op)
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(len(key)))
	_, _ = cc.w.Write(buf[:])
	_, _ = cc.w.WriteString(key)
	binary.BigEndian.PutUint32(buf[:], uint32(len(val)))
	_, _ = cc.w.Write(buf[:])
	_, _ = cc.w.Write(val)
	if err := cc.w.Flush(); err != nil {
		return 0, nil, err
	}
	status, err := cc.r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	n, err := readLen(cc.r, maxValLen)
	if err != nil {
		return 0, nil, err
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(cc.r, out); err != nil {
		return 0, nil, err
	}
	return status, out, nil
}

// Get fetches a value; found=false when the key is absent.
func (cl *Client) Get(key string) (val []byte, found bool, err error) {
	status, out, err := cl.roundTrip(opGet, key, nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case statusOK:
		return out, true, nil
	case statusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("kvstore: server error on Get(%q)", key)
	}
}

// Put stores a value.
func (cl *Client) Put(key string, val []byte) error {
	status, _, err := cl.roundTrip(opPut, key, val)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("kvstore: server error on Put(%q)", key)
	}
	return nil
}

// Delete removes a key (no-op when absent).
func (cl *Client) Delete(key string) error {
	status, _, err := cl.roundTrip(opDelete, key, nil)
	if err != nil {
		return err
	}
	if status != statusOK {
		return fmt.Errorf("kvstore: server error on Delete(%q)", key)
	}
	return nil
}

// Stats fetches the shard's counters.
func (cl *Client) Stats() (Stats, error) {
	status, out, err := cl.roundTrip(opStats, "", nil)
	if err != nil {
		return Stats{}, err
	}
	if status != statusOK || len(out) != 40 {
		return Stats{}, fmt.Errorf("kvstore: bad stats response")
	}
	return Stats{
		Items:     int(binary.BigEndian.Uint64(out[0:])),
		UsedBytes: int64(binary.BigEndian.Uint64(out[8:])),
		Hits:      binary.BigEndian.Uint64(out[16:]),
		Misses:    binary.BigEndian.Uint64(out[24:]),
		Evictions: binary.BigEndian.Uint64(out[32:]),
	}, nil
}

// Cluster shards keys across several servers by FNV-1a hash — the
// KV-store alternative to the node-to-node distribution manager.
type Cluster struct {
	clients []*Client
}

// NewCluster connects to every shard address.
func NewCluster(addrs []string, poolSize int) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("kvstore: no shard addresses")
	}
	c := &Cluster{}
	for _, addr := range addrs {
		cl, err := NewClient(addr, poolSize)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// shard picks the client for a key.
func (c *Cluster) shard(key string) *Client {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // hash.Hash.Write never returns an error
	return c.clients[int(h.Sum32())%len(c.clients)]
}

// Get fetches a key from its shard.
func (c *Cluster) Get(key string) ([]byte, bool, error) { return c.shard(key).Get(key) }

// Put stores a key on its shard.
func (c *Cluster) Put(key string, val []byte) error { return c.shard(key).Put(key, val) }

// Delete removes a key from its shard.
func (c *Cluster) Delete(key string) error { return c.shard(key).Delete(key) }

// Shards returns the number of shards.
func (c *Cluster) Shards() int { return len(c.clients) }

// Stats aggregates all shards' counters.
func (c *Cluster) Stats() (Stats, error) {
	var total Stats
	for _, cl := range c.clients {
		st, err := cl.Stats()
		if err != nil {
			return Stats{}, err
		}
		total.Items += st.Items
		total.UsedBytes += st.UsedBytes
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
	}
	return total, nil
}

// Close closes every shard client.
func (c *Cluster) Close() {
	for _, cl := range c.clients {
		cl.Close()
	}
}
