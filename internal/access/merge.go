package access

import (
	"fmt"

	"repro/internal/dataset"
)

// MergePlans combines the future-access plans of several training jobs
// that share the same node and training data — the paper's "different DNN
// models sharing the same training data" scenario (Section 2). The merged
// plan answers NextUse/UsesRemaining across all jobs, so a shared
// node-local cache can apply the Lobster eviction rules against the union
// of futures: a sample one job is done with may still be hot for another.
//
// The plans must share the same iteration geometry (iterations per epoch
// and epoch count); jobs are assumed to advance in lockstep on the shared
// node, which is how co-located trainers sharing a cache behave once the
// slowest job paces the I/O.
func MergePlans(plans ...*Plan) (*Plan, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("access: no plans to merge")
	}
	first := plans[0]
	for _, p := range plans[1:] {
		if p.iters != first.iters || p.epochs != first.epochs {
			return nil, fmt.Errorf("access: cannot merge plans with geometry %dx%d vs %dx%d",
				p.epochs, p.iters, first.epochs, first.iters)
		}
		if p.numSamples != first.numSamples {
			return nil, fmt.Errorf("access: cannot merge plans over different datasets (%d vs %d samples)",
				p.numSamples, first.numSamples)
		}
	}
	merged := &Plan{
		node:        first.node,
		gpusPerNode: first.gpusPerNode,
		iters:       first.iters,
		epochs:      first.epochs,
		numSamples:  first.numSamples,
		offsets:     make([]int32, first.numSamples+1),
	}
	var total int32
	for id := 0; id < merged.numSamples; id++ {
		merged.offsets[id] = total
		for _, p := range plans {
			total += p.offsets[id+1] - p.offsets[id]
		}
	}
	merged.offsets[merged.numSamples] = total
	merged.flat = make([]Iter, total)
	idx := make([]int, len(plans))
	for id := 0; id < merged.numSamples; id++ {
		mergeSorted(plans, dataset.SampleID(id),
			merged.flat[merged.offsets[id]:merged.offsets[id+1]], idx)
	}
	return merged, nil
}

// mergeSorted k-way merges the (already ascending) access lists of one
// sample into out, which has exactly the combined length. Duplicate
// timestamps (two jobs touching the sample in the same iteration) are
// kept: they are distinct future uses. idx is caller-provided scratch of
// len(plans).
func mergeSorted(plans []*Plan, id dataset.SampleID, out []Iter, idx []int) {
	for pi := range idx {
		idx[pi] = 0
	}
	for k := range out {
		best := -1
		var bestV Iter
		for pi, p := range plans {
			list := p.AccessesOf(id)
			if idx[pi] >= len(list) {
				continue
			}
			if best == -1 || list[idx[pi]] < bestV {
				best, bestV = pi, list[idx[pi]]
			}
		}
		out[k] = bestV
		idx[best]++
	}
}
