// Package retry is the shared retry/backoff helper behind the
// reproduction's recovery paths: the runtime's PFS read loop, the chaos
// experiments' repair steps, and any future caller that needs "try
// again, politely". It generalizes the ad-hoc loop the runtime grew for
// transient PFS failures into one policy type with capped exponential
// backoff and bounded-or-unbounded attempts.
package retry

import (
	"fmt"
	"time"
)

// Policy shapes the backoff between attempts.
type Policy struct {
	// Base is the first backoff (default 1ms).
	Base time.Duration
	// Max caps the backoff (0 = uncapped).
	Max time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
	// Attempts bounds the total tries; 0 means retry forever. Training
	// cannot proceed without its sample, so the runtime's PFS loop uses
	// 0 — matching real loaders, which surface storage outages as hangs
	// rather than corrupt batches.
	Attempts int
}

// Do runs op until it succeeds, returns a non-retryable error, or the
// attempt budget runs out. retryable decides which errors are worth
// another try (nil retries everything); onRetry — may be nil — observes
// each failed-but-retryable attempt (1-based) before its backoff sleep,
// which is where callers count retries for diagnostics.
//
// An exhausted budget returns the last error wrapped with %w, so
// errors.Is/As still match the sentinel underneath — which is why
// ErrTransient-style sentinels must be errors.New values, not bare
// comparisons.
func Do(p Policy, retryable func(error) bool, onRetry func(attempt int, err error), op func() error) error {
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	backoff := p.Base
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		if p.Attempts > 0 && attempt >= p.Attempts {
			return fmt.Errorf("retry: %d attempts exhausted: %w", attempt, err)
		}
		if onRetry != nil {
			onRetry(attempt, err)
		}
		time.Sleep(backoff)
		next := time.Duration(float64(backoff) * p.Multiplier)
		if p.Max > 0 && next > p.Max {
			next = p.Max
		}
		backoff = next
	}
}
