package kvstore

import (
	"sync"
	"sync/atomic"
	"time"
)

// Overload control for one shard server (DESIGN.md §11). Three gates
// run, cheapest first, before a request may touch the store:
//
//  1. Deadline: a request whose client-supplied budget (the 0xA3 frame
//     extension) has already expired is answered statusRetryLater
//     without any store work — finishing it late helps no one.
//  2. Per-connection token bucket: each connection earns QuotaRate
//     tokens/sec up to QuotaBurst; a request with no token available is
//     shed. This stops one hot client from starving its peers.
//  3. Bounded in-flight gate: at most MaxInFlight requests execute
//     concurrently. A request arriving at a full gate queues — up to
//     MaxQueue waiters, each waiting at most its own deadline budget
//     (or MaxWait without one) — and is shed when the wait runs out.
//
// Shed responses are cheap by construction: the frame body still has to
// be drained to keep the connection's frame boundary, but no store
// locks are taken, no value bytes are looked up or sent, and the
// response is a fixed six-byte frame. Under sustained overload the
// server's work per excess request is bounded, which is what keeps
// goodput flat instead of collapsing (the BENCH_kv.json overload
// section measures exactly this).
//
// Stats ops are exempt from gates 2 and 3: monitoring must keep working
// while the data path sheds.

// AdmissionConfig bounds what a Server accepts before store work. The
// zero value disables every gate (the pre-admission behaviour).
type AdmissionConfig struct {
	// MaxInFlight caps requests executing concurrently against the
	// store; 0 = unlimited. Excess requests queue behind the gate.
	MaxInFlight int
	// MaxQueue caps requests waiting for an in-flight slot; a request
	// beyond it is shed immediately. 0 with MaxInFlight set defaults to
	// 4×MaxInFlight.
	MaxQueue int
	// MaxWait bounds how long a request with no client deadline may
	// wait for an in-flight slot. 0 defaults to 50ms. Requests carrying
	// a deadline wait at most their remaining budget.
	MaxWait time.Duration
	// QuotaRate is the sustained per-connection request rate
	// (tokens/sec); 0 = no quota.
	QuotaRate float64
	// QuotaBurst is the per-connection token-bucket depth; 0 with
	// QuotaRate set defaults to QuotaRate (a one-second burst).
	QuotaBurst float64
}

// defaultMaxWait bounds the slot wait of deadline-less requests.
const defaultMaxWait = 50 * time.Millisecond

// enabled reports whether any gate is configured.
func (c AdmissionConfig) enabled() bool {
	return c.MaxInFlight > 0 || c.QuotaRate > 0
}

// admitVerdict is one admission decision.
type admitVerdict int

const (
	admitOK admitVerdict = iota
	shedDeadline
	shedQuota
	shedQueue
)

// admitter is a Server's admission state. A nil admitter admits
// everything (every method is nil-safe), so the un-configured data path
// pays one pointer check per request.
type admitter struct {
	cfg   AdmissionConfig
	slots chan struct{} // in-flight gate; nil = unlimited

	waiters atomic.Int64 // requests queued for a slot right now

	shedDeadline atomic.Uint64
	shedQuota    atomic.Uint64
	shedQueue    atomic.Uint64
}

// newAdmitter builds the admission state; nil when cfg disables it.
func newAdmitter(cfg AdmissionConfig) *admitter {
	if !cfg.enabled() {
		return nil
	}
	if cfg.MaxInFlight > 0 && cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = defaultMaxWait
	}
	if cfg.QuotaRate > 0 && cfg.QuotaBurst <= 0 {
		cfg.QuotaBurst = cfg.QuotaRate
	}
	a := &admitter{cfg: cfg}
	if cfg.MaxInFlight > 0 {
		a.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	return a
}

// queueDepth reports requests executing plus requests waiting for a
// slot — the live backlog behind the gate, exported as
// lobster_kvstore_shard_queue_depth.
func (a *admitter) queueDepth() int64 {
	if a == nil {
		return 0
	}
	return int64(len(a.slots)) + a.waiters.Load()
}

// sheds snapshots the three shed counters.
func (a *admitter) sheds() (deadline, quota, queue uint64) {
	if a == nil {
		return 0, 0, 0
	}
	return a.shedDeadline.Load(), a.shedQuota.Load(), a.shedQueue.Load()
}

// connQuota is one connection's token bucket, refilled lazily on use.
type connQuota struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// newConnQuota starts a connection's bucket full, so short-lived
// clients are not taxed before their first refill.
func (a *admitter) newConnQuota(now time.Time) *connQuota {
	if a == nil || a.cfg.QuotaRate <= 0 {
		return nil
	}
	return &connQuota{tokens: a.cfg.QuotaBurst, last: now}
}

// allow spends one token if the bucket has one.
func (a *admitter) allow(q *connQuota, now time.Time) bool {
	if a == nil || q == nil {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	elapsed := now.Sub(q.last).Seconds()
	if elapsed > 0 {
		q.tokens += elapsed * a.cfg.QuotaRate
		if q.tokens > a.cfg.QuotaBurst {
			q.tokens = a.cfg.QuotaBurst
		}
		q.last = now
	}
	if q.tokens < 1 {
		return false
	}
	q.tokens--
	return true
}

// admit runs the quota and in-flight gates for one request. expiry is
// the request's deadline (zero = none); the deadline gate itself runs
// earlier, at frame parse, so an already-expired request never reaches
// here. On admitOK the caller owns one in-flight slot and must release()
// it when the request's store work is done.
func (a *admitter) admit(q *connQuota, expiry time.Time, now time.Time) admitVerdict {
	if a == nil {
		return admitOK
	}
	if !a.allow(q, now) {
		a.shedQuota.Add(1)
		return shedQuota
	}
	if a.slots == nil {
		return admitOK
	}
	select {
	case a.slots <- struct{}{}:
		return admitOK
	default:
	}
	return a.admitQueued(expiry, now)
}

// admitQueued is the slow path: the gate is full, so the request waits
// — bounded by the queue cap and by its deadline budget (or MaxWait).
// This wait is the "deadline-aware request queue": work that cannot
// start before its deadline is shed while still cheap, instead of
// executing after the client has given up.
func (a *admitter) admitQueued(expiry time.Time, now time.Time) admitVerdict {
	if a.waiters.Add(1) > int64(a.cfg.MaxQueue) {
		a.waiters.Add(-1)
		a.shedQueue.Add(1)
		return shedQueue
	}
	defer a.waiters.Add(-1)
	wait := a.cfg.MaxWait
	deadlined := !expiry.IsZero()
	if deadlined {
		wait = expiry.Sub(now)
		if wait <= 0 {
			a.shedDeadline.Add(1)
			return shedDeadline
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return admitOK
	case <-timer.C:
		if deadlined {
			a.shedDeadline.Add(1)
			return shedDeadline
		}
		a.shedQueue.Add(1)
		return shedQueue
	}
}

// release returns an in-flight slot taken by admit.
func (a *admitter) release() {
	if a == nil || a.slots == nil {
		return
	}
	<-a.slots
}
