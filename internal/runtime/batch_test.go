package runtime

import (
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/loader"
	"repro/internal/preproc"
)

// TestBatchedPathMatchesPerSample is the differential gate for the
// batched data path: the same seed and topology run through the legacy
// per-sample path (Options.PerSample) and the batched path must load,
// verify, and fold byte-identical data — batching is a transport
// change, not a semantic one. 8 ranks with the dynamic strategy, so
// batched submits run concurrently with live pool resizes.
func TestBatchedPathMatchesPerSample(t *testing.T) {
	opts := testOptions(t, loader.Lobster(), 4, 2)

	batched, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	legacy := opts
	legacy.PerSample = true
	perSample, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}

	if batched.DataFold == 0 {
		t.Fatal("batched run produced zero DataFold")
	}
	if batched.DataFold != perSample.DataFold {
		t.Fatalf("DataFold diverged: batched %#x, per-sample %#x",
			batched.DataFold, perSample.DataFold)
	}
	if batched.SamplesVerified != perSample.SamplesVerified {
		t.Fatalf("SamplesVerified diverged: batched %d, per-sample %d",
			batched.SamplesVerified, perSample.SamplesVerified)
	}
	if batched.SamplesLoaded != perSample.SamplesLoaded {
		t.Fatalf("SamplesLoaded diverged: batched %d, per-sample %d",
			batched.SamplesLoaded, perSample.SamplesLoaded)
	}
	if batched.SamplesVerified != batched.SamplesLoaded {
		t.Fatalf("verified %d of %d loaded samples", batched.SamplesVerified, batched.SamplesLoaded)
	}

	// An explicit chunk size must not change semantics either — only
	// how many samples ride in each queue message.
	chunked := opts
	chunked.Strategy.LoadChunk = 3
	withChunk, err := Run(chunked)
	if err != nil {
		t.Fatal(err)
	}
	if withChunk.DataFold != batched.DataFold {
		t.Fatalf("DataFold diverged under LoadChunk=3: %#x vs %#x",
			withChunk.DataFold, batched.DataFold)
	}

	// And the batched path must be deterministic run to run.
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.DataFold != batched.DataFold {
		t.Fatalf("batched DataFold not reproducible: %#x vs %#x",
			again.DataFold, batched.DataFold)
	}
}

// TestGPUQueueResizeStormDoesNotBlock wedges every loading worker (the
// preprocessing pool below them is plugged), then storms resize far
// past the stop-token channel bound. Before the stop-debt mechanism the
// controller would block forever on the full channel.
func TestGPUQueueResizeStormDoesNotBlock(t *testing.T) {
	ds, err := dataset.Generate(dataset.Spec{
		Name: "storm", NumSamples: 16, MeanSize: 4 << 10, SigmaLog: 0.1,
		MinSize: 1 << 10, Classes: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir, err := NewDirectory(ds.Len(), 1)
	if err != nil {
		t.Fatal(err)
	}
	nc, err := newNodeCache(0, 1<<30, cache.NewLRU(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Len(); i++ {
		id := dataset.SampleID(i)
		nc.put(id, ds.Payload(id), 0, false, false)
	}
	// A one-worker, one-slot preprocessing pool, wedged by a job whose
	// unbuffered Done has no receiver yet: the loading workers' Submits
	// back up behind it.
	pre, err := preproc.NewPool(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	stuck := make(chan preproc.Result)
	pre.Submit(preproc.Job{ID: 0, Payload: ds.Payload(0), Done: stuck})

	node := &nodeRuntime{node: 0, rt: &Runtime{}, cache: nc, pre: pre}
	var wg sync.WaitGroup
	q := newGPUQueueCap(node, 0, 4, &wg, 2) // stop channel bound of 2

	const reqs = 8
	out := make(chan preproc.Result, reqs)
	for i := 0; i < reqs; i++ {
		q.submit(loadRequest{id: dataset.SampleID(i % ds.Len()), seed: uint64(i), out: out})
	}
	// Give the four workers time to wedge inside pre.Submit, then storm.
	for i := 0; i < 50; i++ {
		q.resize(1)
		q.resize(32)
	}
	q.resize(4)
	if got := q.workers(); got != 4 {
		t.Fatalf("target %d after storm, want 4", got)
	}

	// Unplug the pool and drain everything the queue accepted.
	if res := <-stuck; res.Err != nil {
		t.Fatal(res.Err)
	}
	for i := 0; i < reqs; i++ {
		if res := <-out; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	close(q.reqs)
	wg.Wait()
	pre.Close()
}
