//go:build race

package experiments

// raceEnabled reports whether the race detector is on. Its 10-20x
// instrumentation overhead swamps the chaos harness's wall-clock fault
// injection (a healthy fetch costs as much as a lagged one, and the
// slowed consumer lets prefetch absorb the demand misses the faults
// target), so attribution-magnitude pins skip themselves.
const raceEnabled = true
