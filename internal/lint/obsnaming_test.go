package lint

import "testing"

// obsFixtureDecls is a minimal stand-in for the real obs.Registry: the
// analyzer keys on the receiver type name, the package-path suffix, and
// the registration method names, so the signatures only need the name
// argument in first position.
const obsFixtureDecls = `
type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Counter         { return nil }
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {}
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge             { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string)   {}
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	return nil
}
`

func TestObsNaming(t *testing.T) {
	runFixtures(t, ObsNaming, []fixtureTest{
		{
			name: "conforming names pass",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	r.Counter("lobster_kvstore_hits_total", "h")
	r.CounterFunc("lobster_runtime_pfs_reads_total", "h", func() int64 { return 0 })
	r.Gauge("lobster_runtime_queue_depth", "h", "node", "0")
	r.GaugeFunc("lobster_preproc_threads", "h", func() int64 { return 0 })
	r.Histogram("lobster_kvstore_op_seconds", "h", nil)
	r.Histogram("lobster_kvstore_value_bytes", "h", nil)
}
`,
		},
		{
			name: "counter must end in total",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	r.Counter("lobster_kvstore_hits", "h")
}
`,
			want: 1,
			grep: "must end in _total",
		},
		{
			name: "counterfunc checked like counter",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	r.CounterFunc("lobster_runtime_pfs_reads", "h", func() int64 { return 0 })
}
`,
			want: 1,
			grep: "must end in _total",
		},
		{
			name: "histogram must end in seconds or bytes",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	r.Histogram("lobster_kvstore_op_latency", "h", nil)
}
`,
			want: 1,
			grep: "must end in _seconds or _bytes",
		},
		{
			name: "gauge must not borrow total suffix",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	r.Gauge("lobster_runtime_threads_total", "h")
}
`,
			want: 1,
			grep: "must not end in _total",
		},
		{
			name: "missing lobster prefix",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	r.Counter("kvstore_hits_total", "h")
}
`,
			want: 1,
			grep: "lobster_<component>_<metric>",
		},
		{
			name: "too few segments",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	r.Gauge("lobster_depth", "h")
}
`,
			want: 1,
			grep: "lobster_<component>_<metric>",
		},
		{
			name: "uppercase segment is malformed",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	r.Gauge("lobster_runtime_queueDepth", "h")
}
`,
			want: 1,
			grep: "malformed segment",
		},
		{
			name: "name must be a constant",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry, name string) {
	r.Counter(name+"_total", "h")
}
`,
			want: 1,
			grep: "compile-time constant",
		},
		{
			name: "declared constants are fine",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
const hitsName = "lobster_cache_hits_total"

func setup(r *Registry) {
	r.Counter(hitsName, "h")
}
`,
		},
		{
			name: "unrelated Registry type is ignored",
			pkg:  "repro/internal/sched",
			src: `package sched

type Registry struct{}

func (r *Registry) Counter(name, help string) {}

func setup(r *Registry) {
	r.Counter("whatever", "h")
}
`,
		},
		{
			name: "allow directive suppresses",
			pkg:  "repro/internal/obs",
			src: `package obs
` + obsFixtureDecls + `
func setup(r *Registry) {
	//lint:allow obsnaming legacy dashboard keys on this name
	r.Counter("legacy_hits", "h")
}
`,
		},
	})
}
