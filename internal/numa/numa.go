// Package numa models the NUMA topology of a training node and the
// placement of loading/preprocessing threads onto its sockets.
//
// Section 5.2(b) attributes part of Lobster's advantage over DALI to the
// fact that "Lobster is NUMA-aware, and co-locates data loading and
// preprocessing threads": a sample fetched by a loader thread on socket 0
// that is decoded by a preprocessing thread on socket 1 pays an
// inter-socket hop for every byte, eating into the memory bandwidth
// Observation 3 showed preprocessing is bound by. This package computes,
// for a thread assignment, which fraction of the loaded bytes crosses
// sockets, so the pipeline can charge the corresponding throughput
// penalty.
package numa

import "fmt"

// Placement assigns each GPU's loading threads and the preprocessing pool
// to NUMA domains.
type Placement struct {
	Domains int
	// LoadingDomain[j][d] is how many of GPU j's loading threads sit on
	// domain d.
	LoadingDomain [][]int
	// PreprocDomain[d] is how many preprocessing threads sit on domain d.
	PreprocDomain []int
}

// Assign places loading threads (per GPU) and preprocessing threads onto
// `domains` sockets with `perDomain` thread slots each.
//
// aware=true is Lobster's placement: GPUs are partitioned across domains
// and each domain receives preprocessing threads in proportion to the
// loading threads it hosts, so a loaded sample is decoded where it
// landed. aware=false is the naive placement of the baselines: loading
// threads pack into domains from the bottom up and the preprocessing pool
// packs from the bottom up independently — whatever overlap results is
// incidental.
func Assign(domains, perDomain int, loading []int, preproc int, aware bool) (Placement, error) {
	if domains < 1 || perDomain < 1 {
		return Placement{}, fmt.Errorf("numa: invalid shape %d domains x %d threads", domains, perDomain)
	}
	p := Placement{
		Domains:       domains,
		LoadingDomain: make([][]int, len(loading)),
		PreprocDomain: make([]int, domains),
	}
	for j := range p.LoadingDomain {
		p.LoadingDomain[j] = make([]int, domains)
	}
	free := make([]int, domains)
	for d := range free {
		free[d] = perDomain
	}

	place := func(j, n int, preferred int) {
		// Fill the preferred domain first, then spill round-robin.
		for d := 0; d < domains && n > 0; d++ {
			dd := (preferred + d) % domains
			take := n
			if take > free[dd] {
				take = free[dd]
			}
			p.LoadingDomain[j][dd] += take
			free[dd] -= take
			n -= take
		}
		// Oversubscription beyond all slots lands on the preferred domain
		// (time-sharing; the placement stays well-defined).
		if n > 0 {
			p.LoadingDomain[j][preferred] += n
		}
	}

	if aware {
		// When the whole pipeline fits on one socket, co-locate everything
		// there — no traffic can cross at all.
		totalLoading := 0
		for _, n := range loading {
			totalLoading += n
		}
		if totalLoading+preproc <= perDomain {
			for j, n := range loading {
				p.LoadingDomain[j][0] = n
			}
			p.PreprocDomain[0] = preproc
			return p, nil
		}
		// Partition GPUs across domains: GPU j prefers domain
		// j*domains/len(loading).
		for j, n := range loading {
			pref := 0
			if len(loading) > 0 {
				pref = j * domains / len(loading)
			}
			place(j, n, pref)
		}
		// Preprocessing proportional to the loading threads per domain.
		loadPerDomain := make([]int, domains)
		totalLoad := 0
		for j := range p.LoadingDomain {
			for d, n := range p.LoadingDomain[j] {
				loadPerDomain[d] += n
				totalLoad += n
			}
		}
		assigned := 0
		for d := 0; d < domains; d++ {
			share := preproc / domains
			if totalLoad > 0 {
				share = preproc * loadPerDomain[d] / totalLoad
			}
			p.PreprocDomain[d] = share
			assigned += share
		}
		for d := 0; assigned < preproc; d = (d + 1) % domains {
			p.PreprocDomain[d]++
			assigned++
		}
	} else {
		// Naive: everything packs bottom-up.
		for j, n := range loading {
			place(j, n, 0)
		}
		left := preproc
		for d := 0; d < domains && left > 0; d++ {
			take := left
			if take > free[d] {
				take = free[d]
			}
			if d == domains-1 && take < left {
				take = left // spill the remainder onto the last socket
			}
			p.PreprocDomain[d] += take
			left -= take
		}
	}
	return p, nil
}

// CrossTrafficFraction returns the fraction of loaded bytes whose
// preprocessing happens on a different domain than the load. Bytes arrive
// on domains in proportion to each GPU's loading threads there, and are
// decoded on domains in proportion to the preprocessing threads — the
// mismatch between the two distributions is the cross-socket traffic.
func CrossTrafficFraction(p Placement, perGPUBytes []int64) float64 {
	if p.Domains <= 1 {
		return 0
	}
	var totalBytes float64
	arrive := make([]float64, p.Domains)
	for j, b := range perGPUBytes {
		if j >= len(p.LoadingDomain) {
			break
		}
		loadTotal := 0
		for _, n := range p.LoadingDomain[j] {
			loadTotal += n
		}
		if loadTotal == 0 {
			continue
		}
		for d, n := range p.LoadingDomain[j] {
			arrive[d] += float64(b) * float64(n) / float64(loadTotal)
		}
		totalBytes += float64(b)
	}
	if totalBytes == 0 {
		return 0
	}
	preTotal := 0
	for _, n := range p.PreprocDomain {
		preTotal += n
	}
	if preTotal == 0 {
		return 0
	}
	// Optimal matching of arrivals to decode capacity: local decode up to
	// min(arrivals_d, capacity share_d); the rest crosses.
	local := 0.0
	for d := 0; d < p.Domains; d++ {
		capShare := totalBytes * float64(p.PreprocDomain[d]) / float64(preTotal)
		if arrive[d] < capShare {
			local += arrive[d]
		} else {
			local += capShare
		}
	}
	return 1 - local/totalBytes
}

// Penalty converts a cross-traffic fraction into a multiplicative
// preprocessing-throughput factor: each crossing byte is read once over
// the inter-socket link, costing `perByte` of its bandwidth (default
// model: crossing bytes are ~35% slower to stream, so throughput scales
// by 1/(1 + 0.35*fraction)).
func Penalty(crossFraction float64) float64 {
	const interSocketSlowdown = 0.35
	return 1 / (1 + interSocketSlowdown*crossFraction)
}
