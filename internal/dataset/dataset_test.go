package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{Name: "n", NumSamples: 0, MeanSize: 1, Classes: 1},
		{Name: "m", NumSamples: 1, MeanSize: 0, Classes: 1},
		{Name: "s", NumSamples: 1, MeanSize: 1, SigmaLog: -1, Classes: 1},
		{Name: "c", NumSamples: 1, MeanSize: 1, Classes: 0},
		{Name: "x", NumSamples: 1, MeanSize: 1, Classes: 1, MinSize: 10, MaxSize: 5},
	}
	for _, spec := range bad {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "d", NumSamples: 1000, MeanSize: 100 << 10, SigmaLog: 0.4, Classes: 10, Seed: 7}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		id := SampleID(i)
		if a.Size(id) != b.Size(id) || a.Label(id) != b.Label(id) {
			t.Fatalf("sample %d differs between identical specs", i)
		}
	}
}

func TestGenerateMeanSize(t *testing.T) {
	spec := Spec{Name: "m", NumSamples: 50000, MeanSize: 100 << 10, SigmaLog: 0.45, Classes: 5, Seed: 3}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(d.MeanSize())
	want := float64(spec.MeanSize)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("mean size = %g, want within 5%% of %g", mean, want)
	}
	if d.TotalBytes() <= 0 {
		t.Fatal("total bytes not positive")
	}
}

func TestGenerateSizeClamps(t *testing.T) {
	spec := Spec{Name: "c", NumSamples: 20000, MeanSize: 30 << 10, SigmaLog: 1.2,
		MinSize: 10 << 10, MaxSize: 50 << 10, Classes: 2, Seed: 11}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		sz := d.Size(SampleID(i))
		if sz < spec.MinSize || sz > spec.MaxSize {
			t.Fatalf("sample %d size %d outside clamp [%d, %d]", i, sz, spec.MinSize, spec.MaxSize)
		}
	}
}

func TestGenerateConstantSizes(t *testing.T) {
	spec := Spec{Name: "k", NumSamples: 100, MeanSize: 4096, Classes: 1, Seed: 1}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		if d.Size(SampleID(i)) != 4096 {
			t.Fatalf("SigmaLog=0 should give constant sizes, sample %d = %d", i, d.Size(SampleID(i)))
		}
	}
}

func TestLabelsInRange(t *testing.T) {
	spec := Spec{Name: "l", NumSamples: 5000, MeanSize: 1024, SigmaLog: 0.2, Classes: 17, Seed: 5}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for i := 0; i < d.Len(); i++ {
		l := d.Label(SampleID(i))
		if l < 0 || l >= 17 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) != 17 {
		t.Fatalf("only %d/17 classes observed", len(seen))
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	spec := Spec{Name: "p", NumSamples: 50, MeanSize: 32 << 10, SigmaLog: 0.5, Classes: 3, Seed: 9}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		id := SampleID(i)
		p := d.Payload(id)
		if int64(len(p)) != d.Size(id) {
			t.Fatalf("payload length %d != size %d", len(p), d.Size(id))
		}
		if err := VerifyPayload(p, spec.Seed, id); err != nil {
			t.Fatalf("verify failed: %v", err)
		}
	}
}

func TestVerifyPayloadDetectsCorruption(t *testing.T) {
	spec := Spec{Name: "v", NumSamples: 3, MeanSize: 8 << 10, Classes: 1, Seed: 2}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := d.Payload(0)
	p[0] ^= 0xFF // corrupt the header id
	if err := VerifyPayload(p, spec.Seed, 0); err == nil {
		t.Fatal("corrupted header not detected")
	}
	q := d.Payload(1)
	if err := VerifyPayload(q, spec.Seed, 2); err == nil {
		t.Fatal("wrong-id payload not detected")
	}
}

func TestPayloadDiffersAcrossSamples(t *testing.T) {
	spec := Spec{Name: "u", NumSamples: 2, MeanSize: 4096, Classes: 1, Seed: 4}
	d, _ := Generate(spec)
	a, b := d.Payload(0), d.Payload(1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if float64(same)/float64(len(a)) > 0.1 {
		t.Fatalf("payloads of different samples are %d/%d identical", same, len(a))
	}
}

func TestFillPayloadPropertyDeterministic(t *testing.T) {
	f := func(seed uint64, idRaw uint16, szRaw uint16) bool {
		sz := int(szRaw%4096) + 1
		id := SampleID(idRaw)
		a := make([]byte, sz)
		b := make([]byte, sz)
		FillPayload(a, seed, id)
		FillPayload(b, seed, id)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return VerifyPayload(a, seed, id) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogSpecs(t *testing.T) {
	for _, scale := range []Scale{ScaleTiny, ScaleSmall, ScaleMedium} {
		for _, spec := range []Spec{ImageNet1K(scale, 1), ImageNet22K(scale, 1)} {
			if err := spec.Validate(); err != nil {
				t.Errorf("catalog spec %s@%s invalid: %v", spec.Name, scale, err)
			}
		}
	}
	// Scaling must strictly reduce the sample count.
	if ImageNet1K(ScaleTiny, 1).NumSamples >= ImageNet1K(ScaleSmall, 1).NumSamples {
		t.Error("tiny scale not smaller than small scale")
	}
	if ImageNet1K(ScaleFull, 1).NumSamples != 1281167 {
		t.Errorf("full-scale ImageNet-1K count = %d, want 1281167", ImageNet1K(ScaleFull, 1).NumSamples)
	}
	if ImageNet22K(ScaleFull, 1).NumSamples != 14197103 {
		t.Errorf("full-scale ImageNet-22K count = %d", ImageNet22K(ScaleFull, 1).NumSamples)
	}
}

func TestParseScale(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "full"} {
		s, err := ParseScale(name)
		if err != nil {
			t.Fatalf("ParseScale(%q): %v", name, err)
		}
		if s.String() != name {
			t.Fatalf("round trip %q -> %q", name, s.String())
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("invalid scale accepted")
	}
}
