# Convenience targets around the tier-1 gate (verify.sh is the source
# of truth; CI runs it directly).

GO ?= go

.PHONY: check build vet test race lint bench bench-kv bench-sim bench-obs bench-runtime bench-chaos

## check: the full tier-1 gate (build + vet + race tests + lobster-lint)
check:
	./verify.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## lint: the project-specific static analysis suite (analyzers run
## concurrently; -time prints per-analyzer wall time)
lint:
	$(GO) run ./cmd/lobster-lint -time ./...

bench:
	$(GO) test -bench=. -benchmem .

## bench-kv: run the kvstore micro-benchmarks and record ops/sec, B/op
## and p99 per protocol in BENCH_kv.json at the repo root.
bench-kv:
	LOBSTER_BENCH_KV=1 $(GO) test ./internal/kvstore -run TestBenchKVJSON -count=1 -v -timeout 30m

## bench-sim: rerun the representative figure benchmarks plus the
## multi-campaign sweep fan-out bench and record wall time, ns/op, B/op
## and allocs/op in BENCH_sim.json at the repo root.
bench-sim:
	LOBSTER_BENCH_SIM=1 $(GO) test . -run TestBenchSimJSON -count=1 -v -timeout 30m

## bench-obs: measure the instrumentation layer's overhead — full online
## runs with no/disabled/enabled instruments plus per-call instrument
## micro-benchmarks — and record it in BENCH_obs.json at the repo root.
bench-obs:
	LOBSTER_BENCH_OBS=1 $(GO) test . -run TestBenchObsJSON -count=1 -v -timeout 30m

## bench-runtime: measure the live data path at 1/8/64 ranks — legacy
## per-sample vs batched — and record samples/sec, stall p99 and
## allocs/sample per path in BENCH_runtime.json at the repo root.
bench-runtime:
	LOBSTER_BENCH_RUNTIME=1 $(GO) test . -run TestBenchRuntimeJSON -count=1 -v -timeout 30m

## bench-chaos: run the full-scale chaos recovery suite (straggler, PFS
## brownout, node loss mid-epoch) with the wall-clock criteria enabled
## and record per-scenario verdicts, event logs, failover counters and
## degradation/recovery in BENCH_chaos.json at the repo root.
bench-chaos:
	LOBSTER_BENCH_CHAOS=1 $(GO) test . -run TestBenchChaosJSON -count=1 -v -timeout 30m
