package runtime

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/preproc"
)

// runtimeObs is one run's observability wiring: the latency histograms
// fed from the iteration hot paths, the trace tracks the per-stage
// spans land on, and (at registration time only) the scrape-time
// callbacks that surface the runtime's existing atomics as gauges and
// counters. Built by newRuntimeObs when Options.Obs or Options.Trace is
// set; a nil *runtimeObs means the run is un-instrumented and every hot
// path pays exactly one pointer check.
//
// Per-stage span layout (what a /trace.json dump shows in Perfetto):
//
//	rank<r>                 "stall" (GPU waiting on its batch) and
//	                        "train" (compute + allreduce) spans
//	rank<r>/stalls          per-cause attribution spans, one per cause
//	                        per iteration, flushed at the barrier
//	                        (names from stallCauseNames, DESIGN.md §14)
//	node<n>/gpu<j>/loader<k> "load" spans, one per sample materialized
//	node<n>/preproc/worker<k> "preproc" spans (via preproc.Instruments)
//	node<n>/prefetch<w>     "prefetch_window" spans, one per plan window
//	node<n>/controller      "thread_resize" instants (decision events)
type runtimeObs struct {
	reg   *obs.Registry
	trace *obs.TraceRing

	// Per-rank GPU-loop instruments, indexed by global rank.
	stallSeconds []*obs.Histogram
	trainSeconds []*obs.Histogram
	rankTID      []int64

	// Per-node thread-controller instant track, indexed by node.
	ctrlTID []int64

	// Stall attribution (ledger.go): per-rank accumulators, the
	// per-cause histograms ([cause][rank], empty when reg is nil), the
	// per-rank attribution trace tracks, and the load-imbalance gauge's
	// backing store (float64 bits; written at each barrier flush).
	ledger     *stallLedger
	causeHists [numStallCauses][]*obs.Histogram
	ledgerTID  []int64
	imbalance  atomic.Uint64
}

// newRuntimeObs builds the run's wiring; nil when the run is
// un-instrumented. reg and trace are each optional.
func newRuntimeObs(reg *obs.Registry, trace *obs.TraceRing, world, nodes, itersPerEpoch int) *runtimeObs {
	if reg == nil && trace == nil {
		return nil
	}
	ro := &runtimeObs{
		reg:          reg,
		trace:        trace,
		stallSeconds: make([]*obs.Histogram, world),
		trainSeconds: make([]*obs.Histogram, world),
		rankTID:      make([]int64, world),
		ctrlTID:      make([]int64, nodes),
		ledger:       newStallLedger(world),
		ledgerTID:    make([]int64, world),
	}
	if reg != nil {
		for c := range ro.causeHists {
			ro.causeHists[c] = make([]*obs.Histogram, world)
		}
	}
	for r := 0; r < world; r++ {
		if reg != nil {
			rank := strconv.Itoa(r)
			ro.stallSeconds[r] = reg.Histogram("lobster_runtime_stall_seconds",
				"Time each GPU spent waiting for its batch (data stall).",
				obs.LatencyBuckets(), "rank", rank)
			ro.trainSeconds[r] = reg.Histogram("lobster_runtime_train_seconds",
				"Modeled per-iteration compute plus allreduce time per GPU.",
				obs.LatencyBuckets(), "rank", rank)
			ro.registerCauseHists(r, rank)
		}
		ro.rankTID[r] = trace.NewThread("rank" + strconv.Itoa(r))
		ro.ledgerTID[r] = trace.NewThread("rank" + strconv.Itoa(r) + "/stalls")
	}
	for n := 0; n < nodes; n++ {
		ro.ctrlTID[n] = trace.NewThread("node" + strconv.Itoa(n) + "/controller")
	}
	if reg != nil {
		reg.GaugeFunc("lobster_runtime_load_imbalance",
			"Max over mean of per-rank load time for the last completed iteration (1.0 = perfectly balanced).",
			func() float64 { return math.Float64frombits(ro.imbalance.Load()) })
		ipe := float64(itersPerEpoch)
		reg.GaugeFunc("lobster_runtime_iters_per_epoch",
			"Iterations per epoch for this run (lets scrapers group per-iteration series by epoch).",
			func() float64 { return ipe })
	}
	return ro
}

// registerCauseHists registers rank r's six per-cause stall histograms.
// One literal call per cause: registration names must be compile-time
// constants (tools/lint obsnaming).
func (ro *runtimeObs) registerCauseHists(r int, rank string) {
	b := obs.LatencyBuckets()
	ro.causeHists[causeLocalHit][r] = ro.reg.Histogram("lobster_runtime_stall_local_hit_seconds",
		"Stall time attributed to serving samples from the local cache, per iteration and rank.",
		b, "rank", rank)
	ro.causeHists[causePeerFetch][r] = ro.reg.Histogram("lobster_runtime_stall_peer_fetch_seconds",
		"Stall time attributed to shared-tier legs (peer-cache or KV fetches, delivered or failed), per iteration and rank.",
		b, "rank", rank)
	ro.causeHists[causePFS][r] = ro.reg.Histogram("lobster_runtime_stall_pfs_seconds",
		"Stall time attributed to normal-path demand PFS reads (clean shared-tier miss), per iteration and rank.",
		b, "rank", rank)
	ro.causeHists[causeDecodeWait][r] = ro.reg.Histogram("lobster_runtime_stall_decode_wait_seconds",
		"Stall time attributed to decode jobs waiting in the preprocessing queue, per iteration and rank.",
		b, "rank", rank)
	ro.causeHists[causeQueueWait][r] = ro.reg.Histogram("lobster_runtime_stall_queue_wait_seconds",
		"Stall time attributed to load requests waiting in per-GPU queues, per iteration and rank.",
		b, "rank", rank)
	ro.causeHists[causeRecovery][r] = ro.reg.Histogram("lobster_runtime_stall_recovery_seconds",
		"Stall time attributed to fallback PFS reads after a broken shared-tier promise (failover events), per iteration and rank.",
		b, "rank", rank)
}

// ledgerOn returns the run's stall ledger when attribution is being
// recorded — a trace ring is attached or the registry is enabled — and
// nil otherwise (including on a nil *runtimeObs), so disabled runs pay
// one pointer check and no clock reads.
func (ro *runtimeObs) ledgerOn() *stallLedger {
	if ro == nil {
		return nil
	}
	if ro.trace == nil && !ro.stallSeconds[0].On() {
		return nil
	}
	return ro.ledger
}

// flushLedger drains every rank's attribution row for the iteration the
// barrier just completed: per-cause histograms observe the totals,
// per-cause spans land on the rank's stall track (backdated so the span
// ends at the flush), and the load-imbalance gauge gets max/mean of the
// per-rank load-side time. Runs on the barrier's last arriver while all
// ranks wait, which is what makes the lock-free drain safe (see
// stallLedger).
func (ro *runtimeObs) flushLedger(completed int) {
	led := ro.ledgerOn()
	if led == nil {
		return
	}
	end := time.Now()
	var durs [numStallCauses]time.Duration
	var sum, max float64
	for r := range led.rows {
		led.drain(r, &durs)
		var loadSide time.Duration
		for c, d := range durs {
			if d == 0 {
				continue
			}
			cause := stallCause(c)
			if loadSideCause(cause) {
				loadSide += d
			}
			if ro.causeHists[c] != nil {
				ro.causeHists[c][r].Observe(d.Seconds())
			}
			if ro.trace != nil {
				ro.trace.SpanArgs(stallCauseNames[c], "stall", ro.ledgerTID[r],
					end.Add(-d), d, "iter", int64(completed), "rank", int64(r))
			}
		}
		s := loadSide.Seconds()
		sum += s
		if s > max {
			max = s
		}
	}
	if sum > 0 {
		mean := sum / float64(len(led.rows))
		ro.imbalance.Store(math.Float64bits(max / mean))
	}
}

// instrumentNode registers one node's instruments: the load-latency
// histogram fed from the demand path, scrape-time gauges over the
// queues and pools, scrape-time counters over the node's existing
// atomics, and the preprocessing pool's own instruments. Must run
// before the node receives load requests (the histogram field is
// published to the loading workers by the request channel send).
func (ro *runtimeObs) instrumentNode(node *nodeRuntime) {
	n := strconv.Itoa(node.node)
	if ro.trace != nil || ro.reg != nil {
		ins := &preproc.Instruments{Trace: ro.trace, TraceLabel: "node" + n + "/preproc"}
		if ro.reg != nil {
			ins.JobSeconds = ro.reg.Histogram("lobster_preproc_job_seconds",
				"Decode+augment time per preprocessing job.",
				obs.LatencyBuckets(), "node", n)
		}
		ins.QueueWait = func(ctx obs.TraceCtx, wait time.Duration) {
			ro.ledger.add(ctx.Rank(), causeDecodeWait, wait)
		}
		node.pre.SetInstruments(ins)
	}
	if ro.reg == nil {
		return
	}
	node.loadHist = ro.reg.Histogram("lobster_runtime_load_seconds",
		"Time to materialize one sample (local cache, peer/KV tier, or PFS).",
		obs.LatencyBuckets(), "node", n)

	for j, q := range node.queues {
		q := q
		g := strconv.Itoa(j)
		ro.reg.GaugeFunc("lobster_runtime_queue_depth",
			"Load requests pending in each per-GPU queue.",
			func() float64 { return float64(q.pending.Load()) }, "node", n, "gpu", g)
		ro.reg.GaugeFunc("lobster_runtime_load_threads",
			"Loading workers currently assigned to each per-GPU queue.",
			func() float64 { return float64(q.workers()) }, "node", n, "gpu", g)
	}
	pre := node.pre
	ro.reg.GaugeFunc("lobster_preproc_threads",
		"Preprocessing workers currently assigned per node.",
		func() float64 { return float64(pre.Workers()) }, "node", n)
	ro.reg.GaugeFunc("lobster_preproc_queue_depth",
		"Jobs waiting in the preprocessing queue.",
		func() float64 { return float64(pre.QueueLen()) }, "node", n)
	ro.reg.CounterFunc("lobster_preproc_jobs_total",
		"Preprocessing jobs completed.",
		func() float64 { return float64(pre.Processed()) }, "node", n)

	nc := node.cache
	ro.reg.CounterFunc("lobster_runtime_cache_hits_total",
		"Local cache hits on the demand path.",
		func() float64 { return float64(nc.stats().Hits) }, "node", n)
	ro.reg.CounterFunc("lobster_runtime_cache_misses_total",
		"Local cache misses on the demand path.",
		func() float64 { return float64(nc.stats().Misses) }, "node", n)
	ro.reg.CounterFunc("lobster_runtime_remote_hits_total",
		"Misses served by the shared tier (peer caches or KV cluster).",
		func() float64 { return float64(node.remoteHits.Load()) }, "node", n)
	ro.reg.CounterFunc("lobster_runtime_pfs_reads_total",
		"Samples read from the parallel file system.",
		func() float64 { return float64(node.pfsReads.Load()) }, "node", n)
	ro.reg.CounterFunc("lobster_runtime_pfs_retries_total",
		"Transient PFS read failures retried.",
		func() float64 { return float64(node.pfsRetries.Load()) }, "node", n)
	ro.reg.CounterFunc("lobster_runtime_prefetched_total",
		"Samples staged into the cache by the background prefetcher.",
		func() float64 { return float64(node.prefetched.Load()) }, "node", n)
	ro.reg.CounterFunc("lobster_runtime_failover_total",
		"Shared-tier reads that fell over to the PFS (lost peer copy, unreachable KV shard, or degraded prefetch window).",
		func() float64 { return float64(node.failovers.Load()) }, "node", n)
	ro.reg.CounterFunc("lobster_runtime_partial_fanout_total",
		"KV MultiGet fan-outs that returned a partial result (some shards failed).",
		func() float64 { return float64(node.partials.Load()) }, "node", n)
}

// resizeInstant records one thread-controller decision as an instant
// event on the node's controller track.
func (ro *runtimeObs) resizeInstant(node, preThreads, loadTotal int) {
	if ro == nil || ro.trace == nil {
		return
	}
	ro.trace.Instant("thread_resize", "ctrl", ro.ctrlTID[node],
		"preproc", int64(preThreads), "load_total", int64(loadTotal))
}

// gpuSpan records one GPU-loop stage ("stall" or "train") into both the
// histogram and the rank's trace track.
func (ro *runtimeObs) gpuSpan(name string, h *obs.Histogram, tid int64, iter int, start time.Time) {
	d := time.Since(start)
	h.Observe(d.Seconds())
	if ro.trace != nil {
		ro.trace.SpanArgs(name, "gpu", tid, start, d, "iter", int64(iter), "", 0)
	}
}
