package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ObsNaming enforces the obs package's metric naming convention at
// every registration call site: names are lobster_<component>_<metric>
// (lowercase, underscore-separated), counters end in _total, histograms
// in _seconds or _bytes, and gauges must not borrow the _total suffix.
// Registration calls are setup code, so the name must be a compile-time
// constant — a dynamic name cannot be checked and would defeat the
// convention the /metrics dashboards key on.
var ObsNaming = &Analyzer{
	ID: idObsNaming,
	Doc: "obs.Registry registrations must use lobster_<component>_<metric> names: " +
		"counters end in _total, histograms in _seconds or _bytes",
	Run: runObsNaming,
}

// obsKindByMethod maps Registry registration methods to the family kind
// their naming rule keys on.
var obsKindByMethod = map[string]string{
	"Counter":     "counter",
	"CounterFunc": "counter",
	"Gauge":       "gauge",
	"GaugeFunc":   "gauge",
	"Histogram":   "histogram",
}

func runObsNaming(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := obsKindByMethod[sel.Sel.Name]
			if !ok || !isObsRegistryMethod(p.Info, sel) {
				return true
			}
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				out = append(out, p.finding(idObsNaming, call.Args[0],
					"obs metric name must be a compile-time constant string (got %s)",
					typeString(tv.Type)))
				return true
			}
			name := constant.StringVal(tv.Value)
			if msg := obsNameProblem(name, kind); msg != "" {
				out = append(out, p.finding(idObsNaming, call.Args[0], "%s", msg))
			}
			return true
		})
	}
	return out
}

// isObsRegistryMethod reports whether sel resolves to a method on
// (*Registry) from an internal/obs package.
func isObsRegistryMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	rt := recv.Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && hasSuffixPkg(pkg.Path(), []string{"internal/obs"})
}

// obsNameProblem validates one metric name against the convention;
// empty string means it conforms.
func obsNameProblem(name, kind string) string {
	segs := strings.Split(name, "_")
	if len(segs) < 3 || segs[0] != "lobster" {
		return "obs metric " + quote(name) + " must be named lobster_<component>_<metric>"
	}
	for _, s := range segs {
		if !obsSegmentOK(s) {
			return "obs metric " + quote(name) + " has malformed segment " + quote(s) +
				" (lowercase letters and digits, starting with a letter)"
		}
	}
	last := segs[len(segs)-1]
	switch kind {
	case "counter":
		if last != "total" {
			return "obs counter " + quote(name) + " must end in _total"
		}
	case "histogram":
		if last != "seconds" && last != "bytes" {
			return "obs histogram " + quote(name) + " must end in _seconds or _bytes"
		}
	case "gauge":
		if last == "total" {
			return "obs gauge " + quote(name) + " must not end in _total (that suffix marks counters)"
		}
	}
	return ""
}

func obsSegmentOK(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func quote(s string) string { return `"` + s + `"` }
