package kvstore

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzReadRequest throws arbitrary bytes at the server-side frame parser:
// it must never panic, and must either produce a well-formed request or an
// error — no partial state.
func FuzzReadRequest(f *testing.F) {
	// Seed corpus: a valid PUT, a valid GET, truncations, and oversized
	// length fields.
	valid := func(op byte, key string, val []byte) []byte {
		var buf bytes.Buffer
		buf.WriteByte(op)
		buf.Write([]byte{0, 0, 0, byte(len(key))})
		buf.WriteString(key)
		buf.Write([]byte{0, 0, 0, byte(len(val))})
		buf.Write(val)
		return buf.Bytes()
	}
	f.Add(valid(opPut, "k", []byte("v")))
	f.Add(valid(opGet, "key", nil))
	f.Add([]byte{opGet})
	f.Add([]byte{opPut, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		op, key, val, err := readRequest(r)
		if err != nil {
			return
		}
		if len(key) > maxKeyLen || len(val) > int(maxValLen) {
			t.Fatalf("parser accepted oversized frame: key %d, val %d", len(key), len(val))
		}
		_ = op
	})
}

// FuzzServerRoundTrip drives the real TCP server with fuzzed keys and
// values through the typed client: data integrity must hold for whatever
// fits the protocol limits.
func FuzzServerRoundTrip(f *testing.F) {
	s, err := NewServer("127.0.0.1:0", 1<<20)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })
	c, err := NewClient(s.Addr(), 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(c.Close)

	f.Add("key", []byte("value"))
	f.Add("", []byte{})
	f.Add("unicode-κλειδί", []byte{0, 1, 2, 255})
	f.Fuzz(func(t *testing.T, key string, val []byte) {
		if len(key) > maxKeyLen || len(val) > 1<<16 {
			return
		}
		if err := c.Put(key, val); err != nil {
			t.Fatal(err)
		}
		got, found, err := c.Get(key)
		if err != nil || !found {
			t.Fatalf("Get(%q) = %v %v", key, found, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("round trip corrupted %q: %d vs %d bytes", key, len(got), len(val))
		}
	})
}
