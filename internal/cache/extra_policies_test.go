package cache

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := mustCache(t, 30, NewLFU())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Put(3, 10, 2)
	c.Get(1, 3)
	c.Get(1, 4)
	c.Get(3, 5)
	// Frequencies: 1 -> 3, 3 -> 2, 2 -> 1.
	ev, ok := c.Put(4, 10, 6)
	if !ok || len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2]", ev)
	}
	// Next victim is the new entry (freq 1) vs 3 (freq 2): recency breaks
	// the tie between equal frequencies.
	c.Get(4, 7) // 4 -> 2, tied with 3; 3 touched earlier => 3 evicted
	ev, ok = c.Put(5, 10, 8)
	if !ok || len(ev) != 1 || ev[0] != 3 {
		t.Fatalf("evicted %v, want [3] (older among tied frequencies)", ev)
	}
}

func TestLFUName(t *testing.T) {
	if NewLFU().Name() != "lfu" || NewARC().Name() != "arc" {
		t.Fatal("names wrong")
	}
}

func TestARCBasicEviction(t *testing.T) {
	c := mustCache(t, 30, NewARC())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Put(3, 10, 2)
	// All in T1; victim is T1's LRU: 1.
	ev, ok := c.Put(4, 10, 3)
	if !ok || len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
}

func TestARCFrequencyProtection(t *testing.T) {
	c := mustCache(t, 30, NewARC())
	c.Put(1, 10, 0)
	c.Get(1, 1) // 1 promoted to T2
	c.Put(2, 10, 2)
	c.Put(3, 10, 3)
	// T1 = {2, 3}, T2 = {1}: victim comes from T1.
	ev, ok := c.Put(4, 10, 4)
	if !ok || len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2] (T1 LRU), protecting the re-referenced 1", ev)
	}
	if !c.Contains(1) {
		t.Fatal("frequent sample evicted")
	}
}

func TestARCGhostHitAdapts(t *testing.T) {
	c := mustCache(t, 20, NewARC())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Put(3, 10, 2) // evicts 1 into ghost B1
	if c.Contains(1) {
		t.Fatal("1 should be evicted")
	}
	// Re-inserting 1 is a B1 ghost hit: it enters T2 directly.
	ev, ok := c.Put(1, 10, 3)
	if !ok {
		t.Fatalf("ghost re-insert rejected (evicted %v)", ev)
	}
	if !c.Contains(1) {
		t.Fatal("ghost hit did not readmit")
	}
	p := NewARC().(*arcPolicy)
	_ = p // type assertion sanity
}

func TestARCRemoveGhostCleanup(t *testing.T) {
	c := mustCache(t, 20, NewARC())
	c.Put(1, 10, 0)
	c.Put(2, 10, 1)
	c.Put(3, 10, 2) // 1 -> ghost
	// Explicit removal of resident entries must not corrupt state.
	if !c.Remove(2) || !c.Remove(3) {
		t.Fatal("remove failed")
	}
	// Reinsert everything; no panics, capacity respected.
	for id := dataset.SampleID(1); id <= 6; id++ {
		c.Put(id, 10, Iter(10+id))
		if c.Used() > c.Capacity() {
			t.Fatal("capacity exceeded")
		}
	}
}

// TestExtraPoliciesReplaySanity replays an epoch-shuffled stream against
// LFU and ARC: both must respect capacity and produce sane hit ratios,
// with ARC at or above plain LRU (it strictly generalizes it).
func TestExtraPoliciesReplaySanity(t *testing.T) {
	const nSamples = 2000
	capacity := int64(nSamples * 30 / 100)
	run := func(p Policy) float64 {
		c, err := New(capacity, p)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(5)
		const epochs = 10
		for epoch := 0; epoch < epochs; epoch++ {
			perm := rng.Perm(nSamples)
			for i, idx := range perm {
				now := Iter(epoch*nSamples + i)
				if !c.Get(dataset.SampleID(idx), now) {
					c.Put(dataset.SampleID(idx), 1, now)
				}
				if c.Used() > c.Capacity() {
					t.Fatalf("%s exceeded capacity", p.Name())
				}
			}
		}
		return c.Stats().HitRatio()
	}
	lru := run(NewLRU())
	lfu := run(NewLFU())
	arc := run(NewARC())
	t.Logf("epoch-reuse hit ratios: lru %.3f, lfu %.3f, arc %.3f", lru, lfu, arc)
	if arc < lru-0.01 {
		t.Fatalf("ARC (%.3f) clearly below LRU (%.3f)", arc, lru)
	}
	for _, v := range []float64{lru, lfu, arc} {
		if v < 0 || v > 1 {
			t.Fatalf("hit ratio %v out of range", v)
		}
	}
}
