// Package threadmgr implements Lobster's flexible thread management
// (Sections 4.1, 4.2, 4.4): deciding how many CPU threads the
// preprocessing stage gets, distributing the remaining loading threads
// across the co-located GPUs' request queues, and running the Algorithm 1
// heuristic when a straggler is predicted.
package threadmgr

import (
	"fmt"
	"math"

	"repro/internal/perfmodel"
	"repro/internal/tier"
)

// GPUDemand describes one GPU's upcoming work, as seen by the manager.
type GPUDemand struct {
	// Placement is the tier composition of the GPU's next mini-batch
	// (B_HL, B_HR, B_M of Equation 1).
	Placement perfmodel.BatchPlacement
	// QueueLen is the number of pending requests in the GPU's loading
	// queue (Section 4.2: proportional allocation when no straggler is
	// predicted).
	QueueLen int
	// PreprocBytes/PreprocCount describe the preprocessing work of the
	// batch (normally the batch itself).
	PreprocBytes int64
	PreprocCount int
	// PFSSlowdown is the recently observed ratio of actual to predicted
	// PFS read time for this GPU (1 = nominal, 0 = unknown). Lustre OST
	// congestion persists across iterations, so the previous iteration's
	// slowdown predicts the next one — the runtime feedback that lets the
	// manager "adapt quickly to changing performance bottleneck shifts"
	// (Section 4.1).
	PFSSlowdown float64
}

// Decision is the manager's output for one node and iteration.
type Decision struct {
	// PreprocThreads is the node's preprocessing pool size.
	PreprocThreads int
	// Loading[j] is GPU j's loading-thread budget; the per-tier split is
	// derived with perfmodel.SplitThreads.
	Loading []int
	// PredictedDiff[j] is the Equation 2 gap predicted for GPU j under
	// this decision (diagnostics; positive = pipeline-bound).
	PredictedDiff []float64
	// UsedAlgorithm1 reports whether the straggler path ran.
	UsedAlgorithm1 bool
}

// Config parameterises a Manager.
type Config struct {
	Hierarchy tier.Hierarchy
	// Portfolio predicts preprocessing times (Section 4.1's piecewise
	// models).
	Portfolio *perfmodel.PreprocPortfolio
	// TotalThreads is the node's CPU budget shared by loading and
	// preprocessing.
	TotalThreads int
	// Tau is Algorithm 1's convergence threshold τ, in seconds.
	Tau float64
	// MinPreprocThreads floors the preprocessing pool (default 1).
	MinPreprocThreads int
	// MaxPreprocThreads caps it (0 = no cap beyond the budget).
	MaxPreprocThreads int
}

// Manager makes thread decisions for one node. It is stateless between
// calls except for configuration, so one instance may serve many
// iterations.
type Manager struct {
	cfg Config
}

// New validates the configuration and returns a Manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Portfolio == nil {
		return nil, fmt.Errorf("threadmgr: nil portfolio")
	}
	if cfg.TotalThreads < 2 {
		return nil, fmt.Errorf("threadmgr: TotalThreads %d < 2", cfg.TotalThreads)
	}
	if cfg.Tau <= 0 {
		return nil, fmt.Errorf("threadmgr: Tau %g <= 0", cfg.Tau)
	}
	if cfg.MinPreprocThreads < 1 {
		cfg.MinPreprocThreads = 1
	}
	if err := cfg.Hierarchy.Validate(); err != nil {
		return nil, fmt.Errorf("threadmgr: %w", err)
	}
	return &Manager{cfg: cfg}, nil
}

// preprocTime predicts GPU j's preprocessing duration when the node pool
// has p threads shared by m GPUs: the GPU's batch is processed at an equal
// share of the pool's throughput.
func (m *Manager) preprocTime(d GPUDemand, p, gpus int) float64 {
	if d.PreprocCount == 0 || p <= 0 {
		return 0
	}
	return m.cfg.Portfolio.BatchTime(d.PreprocBytes, d.PreprocCount, p) * float64(gpus)
}

// loadTime predicts GPU j's loading duration with n threads, applying the
// observed PFS slowdown feedback to the PFS term.
func (m *Manager) loadTime(d GPUDemand, n, activeNodes int) float64 {
	if d.Placement.TotalOps() == 0 {
		return 0
	}
	if n <= 0 {
		return math.Inf(1)
	}
	alloc := perfmodel.SplitThreads(m.cfg.Hierarchy, d.Placement, n, activeNodes)
	local, remote, pfs := perfmodel.LoadTimeParts(m.cfg.Hierarchy, d.Placement, alloc, activeNodes)
	if d.PFSSlowdown > 0 {
		pfs *= d.PFSSlowdown
	}
	return local + remote + pfs
}

// timeDiff is Equation 2 for one GPU under (loading threads n, preproc p).
func (m *Manager) timeDiff(d GPUDemand, n, p, gpus int, trainTime float64, activeNodes int) float64 {
	return perfmodel.TimeDifference(m.loadTime(d, n, activeNodes), m.preprocTime(d, p, gpus), trainTime)
}

// Decide produces the node's thread plan for the next iteration.
//
// The strategy follows Section 4's three steps: (1) pick the preprocessing
// thread count from the performance model (peak throughput, Observation 3);
// (2) when no straggler is predicted, split loading threads across GPUs in
// proportion to queue length; (3) when a straggler is predicted, run the
// Algorithm 1 binary search per GPU, then rebalance to the budget, and as
// long as the pipeline remains the bottleneck, move threads from
// preprocessing to loading (Section 4.1, Step 2).
func (m *Manager) Decide(gpus []GPUDemand, trainTime float64, activeNodes int) Decision {
	nGPU := len(gpus)
	if nGPU == 0 {
		return Decision{PreprocThreads: m.cfg.MinPreprocThreads}
	}

	// Step 1: preprocessing threads at peak throughput for the average
	// sample size, bounded so every GPU can keep at least one loading
	// thread.
	avgSize := int64(100 << 10)
	var bytes int64
	var count int
	for _, d := range gpus {
		bytes += d.PreprocBytes
		count += d.PreprocCount
	}
	if count > 0 {
		avgSize = bytes / int64(count)
	}
	maxPre := m.cfg.TotalThreads - nGPU
	if m.cfg.MaxPreprocThreads > 0 && maxPre > m.cfg.MaxPreprocThreads {
		maxPre = m.cfg.MaxPreprocThreads
	}
	if maxPre < m.cfg.MinPreprocThreads {
		maxPre = m.cfg.MinPreprocThreads
	}
	p := m.cfg.Portfolio.PeakThreads(avgSize, maxPre)
	if p < m.cfg.MinPreprocThreads {
		p = m.cfg.MinPreprocThreads
	}

	budget := m.cfg.TotalThreads - p
	if budget < nGPU {
		budget = nGPU
		p = m.cfg.TotalThreads - budget
		if p < m.cfg.MinPreprocThreads {
			p = m.cfg.MinPreprocThreads
		}
	}

	// Step 2: proportional initial allocation (Section 4.2).
	loading := proportionalAlloc(gpus, budget)

	// Straggler prediction: a GPU whose Equation 2 gap is positive beyond
	// τ will finish assembling its mini-batch after training wants it —
	// it is "predicted to become a straggler due to data loading"
	// (Section 4.2). Negative gaps (pipeline headroom) do not trigger the
	// heuristic; proportional allocation already serves them.
	diffs := make([]float64, nGPU)
	straggler := false
	for j, d := range gpus {
		diffs[j] = m.timeDiff(d, loading[j], p, nGPU, trainTime, activeNodes)
		if diffs[j] >= m.cfg.Tau {
			straggler = true
		}
	}
	if !straggler {
		return Decision{PreprocThreads: p, Loading: loading, PredictedDiff: diffs}
	}

	// Step 3: Algorithm 1 per GPU, then fit the budget, then steal from
	// preprocessing while it stays off the critical path.
	for j, d := range gpus {
		loading[j] = m.searchThreads(d, loading[j], budget, p, nGPU, trainTime, activeNodes)
	}
	m.rebalance(gpus, loading, budget, p, nGPU, trainTime, activeNodes)

	for p > m.cfg.MinPreprocThreads {
		worst, worstDiff := -1, m.cfg.Tau
		for j, d := range gpus {
			diff := m.timeDiff(d, loading[j], p, nGPU, trainTime, activeNodes)
			if diff > worstDiff {
				worst, worstDiff = j, diff
			}
		}
		if worst < 0 {
			break // no GPU pipeline-bound beyond τ
		}
		// Taking a preprocessing thread must not make preprocessing the
		// bottleneck (Section 4.1, Step 2's guard).
		preBottleneck := false
		for _, d := range gpus {
			if m.preprocTime(d, p-1, nGPU) >= trainTime {
				preBottleneck = true
				break
			}
		}
		if preBottleneck {
			break
		}
		p--
		loading[worst]++
	}

	for j, d := range gpus {
		diffs[j] = m.timeDiff(d, loading[j], p, nGPU, trainTime, activeNodes)
	}
	return Decision{PreprocThreads: p, Loading: loading, PredictedDiff: diffs, UsedAlgorithm1: true}
}

// proportionalAlloc splits the budget by queue length, guaranteeing one
// thread per GPU.
func proportionalAlloc(gpus []GPUDemand, budget int) []int {
	n := len(gpus)
	loading := make([]int, n)
	totalQ := 0
	for _, d := range gpus {
		totalQ += d.QueueLen
	}
	remaining := budget - n // one thread each is reserved
	for j := range gpus {
		loading[j] = 1
	}
	if remaining <= 0 {
		return loading
	}
	if totalQ == 0 {
		// Idle queues: spread evenly.
		for j := 0; remaining > 0; j = (j + 1) % n {
			loading[j]++
			remaining--
		}
		return loading
	}
	assigned := 0
	for j, d := range gpus {
		k := remaining * d.QueueLen / totalQ
		loading[j] += k
		assigned += k
	}
	// Distribute the rounding remainder one thread per GPU, longest
	// queues first (each GPU at most once per sweep, so ties spread
	// evenly instead of piling onto the first GPU).
	for left := remaining - assigned; left > 0; {
		given := make([]bool, n)
		for ; left > 0; left-- {
			best, bestQ := -1, -1
			for j, d := range gpus {
				if !given[j] && d.QueueLen > bestQ {
					best, bestQ = j, d.QueueLen
				}
			}
			if best < 0 {
				break // all GPUs served this sweep
			}
			given[best] = true
			loading[best]++
		}
	}
	return loading
}

// searchThreads is Algorithm 1's per-GPU binary search: find the loading
// thread count in [1, lmax] minimizing |T_L + T_P - T_train|, recording
// explored gaps in the window W and stopping early when the search stops
// making progress.
//
// Note on fidelity: the paper's listing updates ℓmin when T_dif < 0. With
// T_dif = (T_L+T_P) - T_train and loading time decreasing in threads, the
// physically consistent move is the opposite (more threads when the
// pipeline is too slow), which is what we implement; the listing's
// variable naming appears inverted.
func (m *Manager) searchThreads(d GPUDemand, initial, lmax, p, gpus int, trainTime float64, activeNodes int) int {
	if lmax < 1 {
		lmax = 1
	}
	cur := initial
	if cur < 1 {
		cur = 1
	}
	if cur > lmax {
		cur = lmax
	}
	diff := m.timeDiff(d, cur, p, gpus, trainTime, activeNodes)
	if math.Abs(diff) < m.cfg.Tau {
		return cur
	}
	best, bestDiff := cur, math.Abs(diff)
	lo, hi := 0, lmax // open-below, closed-above interval
	window := make([]float64, 0, lmax+1)
	for math.Abs(diff) >= m.cfg.Tau {
		window = append(window, diff)
		if len(window) > lmax || windowStalled(window) {
			break
		}
		if diff > 0 {
			lo = cur // pipeline too slow: need more threads
		} else {
			hi = cur // headroom: release threads
		}
		next := (lo + hi + 1) / 2
		if next == cur || next < 1 || next > lmax {
			break
		}
		cur = next
		diff = m.timeDiff(d, cur, p, gpus, trainTime, activeNodes)
		if math.Abs(diff) < bestDiff {
			best, bestDiff = cur, math.Abs(diff)
		}
	}
	return best
}

// windowStalled is Algorithm 1's IsConsistent check: the last two explored
// gaps are identical, so the search is oscillating without progress.
func windowStalled(w []float64) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2]
}

// rebalance adjusts per-GPU counts to exactly the budget while minimizing
// the Equation 3 spread: threads are taken from the GPU with the most
// headroom (most negative gap) and given to the GPU with the worst gap.
func (m *Manager) rebalance(gpus []GPUDemand, loading []int, budget, p, nGPU int, trainTime float64, activeNodes int) {
	sum := 0
	for _, l := range loading {
		sum += l
	}
	for sum > budget {
		best, bestDiff := -1, math.Inf(1)
		for j, d := range gpus {
			if loading[j] <= 1 {
				continue
			}
			diff := m.timeDiff(d, loading[j]-1, p, nGPU, trainTime, activeNodes)
			if diff < bestDiff {
				best, bestDiff = j, diff
			}
		}
		if best < 0 {
			break // every GPU at its floor
		}
		loading[best]--
		sum--
	}
	for sum < budget {
		worst, worstDiff := 0, math.Inf(-1)
		for j, d := range gpus {
			diff := m.timeDiff(d, loading[j], p, nGPU, trainTime, activeNodes)
			if diff > worstDiff {
				worst, worstDiff = j, diff
			}
		}
		loading[worst]++
		sum++
	}
}
