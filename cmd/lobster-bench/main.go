// Command lobster-bench regenerates the paper's tables and figures: it
// runs every experiment (or a selected one) at the chosen scale and prints
// the reproduced rows/series with the paper's published values alongside.
//
// Examples:
//
//	lobster-bench                         # everything at small scale
//	lobster-bench -experiment fig07a      # one figure
//	lobster-bench -scale medium -seed 7
//	lobster-bench -parallel 1             # serial (identical output)
package main

import (
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/par"
)

func main() {
	var (
		scaleName = flag.String("scale", "small", "tiny | small | medium | full")
		expID     = flag.String("experiment", "", "run only this experiment id (e.g. fig07a); empty = all")
		epochs    = flag.Int("epochs", 0, "override epochs (0 = per-scale default)")
		seed      = flag.Uint64("seed", 42, "base seed")
		parallel  = flag.Int("parallel", goruntime.GOMAXPROCS(0),
			"worker budget shared by independent experiments and within-experiment campaigns (1 = serial; reports are identical for any value)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		mdPath = flag.String("markdown", "", "also write the full report as a Markdown file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-13s %s\n              paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}
	scale, err := dataset.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	// One bounded pool serves both levels of fan-out: independent
	// experiments below, and each experiment's independent campaigns via
	// Params.Pool. Nested fan-outs recruit spare workers without blocking
	// (see internal/par), so total concurrency stays <= -parallel.
	var pool *par.Pool
	if *parallel > 1 {
		pool = par.NewPool(*parallel)
	}
	params := experiments.Params{Scale: scale, Epochs: *epochs, Seed: *seed, Pool: pool}

	todo := experiments.All()
	if *expID != "" {
		e, err := experiments.ByID(*expID)
		if err != nil {
			fatal(err)
		}
		todo = []experiments.Experiment{e}
	}
	// Experiments run concurrently but render strictly in figure order from
	// the index-slotted results, so stdout and the markdown file list them
	// identically at any -parallel value (only the timings vary).
	type outcome struct {
		rep *experiments.Report
		dur time.Duration
	}
	outs, err := par.Map(pool, len(todo), func(i int) (outcome, error) {
		start := time.Now()
		rep, err := todo[i].Run(params)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", todo[i].ID, err)
		}
		return outcome{rep: rep, dur: time.Since(start)}, nil
	})
	if err != nil {
		fatal(err)
	}
	var md strings.Builder
	if *mdPath != "" {
		fmt.Fprintf(&md, "# Lobster reproduction report\n\nscale: %s, seed: %d\n\n", scale, *seed)
	}
	for i, e := range todo {
		rep, dur := outs[i].rep, outs[i].dur
		fmt.Printf("################ %s — %s\n", e.ID, e.Title)
		fmt.Printf("paper: %s\n\n", e.Paper)
		fmt.Print(rep.Text())
		fmt.Printf("(%.1fs)\n\n", dur.Seconds())
		if *mdPath != "" {
			fmt.Fprintf(&md, "## %s — %s\n\npaper: %s\n\n```\n", e.ID, e.Title, e.Paper)
			for _, line := range rep.Lines {
				md.WriteString(line)
				md.WriteByte('\n')
			}
			fmt.Fprintf(&md, "```\n\nheadline values: %s\n\nwall time: %.1fs\n\n",
				strings.Join(rep.SortedValues(), ", "), dur.Seconds())
		}
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("markdown report written to %s\n", *mdPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lobster-bench:", err)
	os.Exit(1)
}
